// Package fastsc is a Go reproduction of "Systematic Crosstalk Mitigation
// for Superconducting Qubits via Frequency-Aware Compilation" (Ding et al.,
// MICRO 2020): the ColorDynamic frequency-aware compiler, its four baseline
// strategies, the transmon-physics substrate, NISQ benchmark generators, a
// noisy state-vector simulator, and a harness regenerating every table and
// figure of the paper's evaluation.
//
// The library lives under internal/; see internal/core for the compilation
// entry point, cmd/fastsc for the CLI, cmd/experiments for the paper
// harness, and bench_test.go for the per-figure benchmarks.
//
// # Batch compilation
//
// internal/compile is the throughput layer: a batch engine that fans
// (circuit, compiler, system) jobs across a bounded worker pool and a
// concurrency-safe sharded LRU cache that memoizes the solver stages — SMT
// frequency solutions keyed by (k, band, anharmonicity), crosstalk graphs
// and static palettes keyed by the device's content signature, and
// per-slice coloring/frequency assignments keyed by the exact sorted
// vertex set of the active interaction subgraph (collision-proof by
// construction: a cache hit is always the right frequency assignment). A
// compile.Context carries both and is injected into every
// schedule.Compiler; core.BatchCompile streams results over a channel, and
// the experiment harness (internal/expt) runs the full Fig 9–13 sweeps
// through it.
//
// The cache deduplicates concurrent misses on the same key through a
// single-flight group (one solve per key no matter how many workers need
// it), shards its lock across a power of two of independent LRU lists so
// large worker pools do not serialize, and snapshots its
// process-independent regions to disk (versioned gob; see
// compile.Cache.Save/Load). Both CLIs expose the snapshot as -cache-file,
// so repeated sweeps start warm; a missing, corrupt or version-mismatched
// snapshot silently degrades to a cold cache.
package fastsc
