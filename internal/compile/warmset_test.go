package compile

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"fastsc/internal/circuit"
	"fastsc/internal/graph"
	"fastsc/internal/mapping"
	"fastsc/internal/topology"
)

// warmSnapshot saves a small multi-region cache (park, slice, smt, route)
// to a fresh path and returns the path plus the keys it holds.
func warmSnapshot(t *testing.T) (path, parkKey, sliceKey string) {
	t.Helper()
	parkKey = "warm-sys-sig"
	sliceKey = SliceKey("00ff00ff00ff00ff", 2, 3, []int{0, 2})
	src := NewCache(0)
	src.Put(RegionParking, parkKey, []float64{5.1, 5.3})
	src.Put(RegionSlice, sliceKey, SliceSolution{Coloring: graph.Coloring{0}, NumColors: 1, Assign: []float64{6.4}, Delta: 0.2})
	src.Put(RegionSMT, "2|a|b|c|d", smtResult{xs: []float64{6.0, 6.4}, delta: 0.4})
	path = snapshotPath(t)
	if err := src.Save(path); err != nil {
		t.Fatal(err)
	}
	return path, parkKey, sliceKey
}

// TestWarmSetProbeOrderAndPromotion pins the tier contract: local shards
// first, then the warm set; a warm hit is promoted so the next lookup for
// the same key is a local hit; exactly one counter moves per lookup.
func TestWarmSetProbeOrderAndPromotion(t *testing.T) {
	path, parkKey, _ := warmSnapshot(t)
	c := NewCache(0)
	c.AttachWarmSet(OpenWarmSet(path))

	v, ok := c.Get(RegionParking, parkKey)
	if !ok {
		t.Fatal("warm-set entry not served")
	}
	if xs := v.([]float64); len(xs) != 2 || xs[0] != 5.1 {
		t.Fatalf("warm-set entry corrupted: %v", xs)
	}
	if st := c.StatsByRegion()[RegionParking]; st.WarmHits != 1 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("after warm hit: %+v, want exactly one WarmHit", st)
	}

	// Promotion: the same key now lives in the local shards.
	if _, ok := c.Get(RegionParking, parkKey); !ok {
		t.Fatal("promoted entry missing from local tier")
	}
	if st := c.StatsByRegion()[RegionParking]; st.Hits != 1 || st.WarmHits != 1 {
		t.Fatalf("after promotion: %+v, want one local hit and one warm hit", st)
	}

	// Absent keys still miss through both tiers.
	if _, ok := c.Get(RegionParking, "nowhere"); ok {
		t.Fatal("phantom hit")
	}
	if st := c.StatsByRegion()[RegionParking]; st.Misses != 1 {
		t.Fatalf("after full miss: %+v, want one miss", st)
	}
	if got := c.TotalStats().HitRate(); got != 2.0/3.0 {
		t.Fatalf("HitRate = %v, want 2/3 (warm hits count toward the rate)", got)
	}
}

// TestWarmSetDoTieredSkipsCompute: DoTiered must serve a warm entry
// without running compute, reporting TierWarm once and TierLocal after
// promotion.
func TestWarmSetDoTieredSkipsCompute(t *testing.T) {
	path, parkKey, _ := warmSnapshot(t)
	c := NewCache(0)
	c.AttachWarmSet(OpenWarmSet(path))
	computed := 0
	compute := func() (any, error) { computed++; return nil, nil }
	if _, tier, err := c.DoTiered(RegionParking, parkKey, compute); err != nil || tier != TierWarm {
		t.Fatalf("first lookup: tier=%v err=%v, want TierWarm", tier, err)
	}
	if _, tier, _ := c.DoTiered(RegionParking, parkKey, compute); tier != TierLocal {
		t.Fatalf("second lookup: tier=%v, want TierLocal after promotion", tier)
	}
	if computed != 0 {
		t.Fatalf("compute ran %d times for warm-served key", computed)
	}
}

// TestWarmSetRecorderAttribution: a request-scoped Recorder attributes a
// memo lookup served by the warm set as a WarmHit, not a local hit or a
// miss.
func TestWarmSetRecorderAttribution(t *testing.T) {
	path, parkKey, _ := warmSnapshot(t)
	c := NewCache(0)
	c.AttachWarmSet(OpenWarmSet(path))
	ctx := &Context{Cache: c, Record: NewRecorder()}
	if _, err := ctx.Parking(parkKey, func() ([]float64, error) {
		t.Fatal("compute ran for warm-served key")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := ctx.Record.StatsByRegion()[RegionParking]; st.WarmHits != 1 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("recorder after warm hit: %+v, want exactly one WarmHit", st)
	}
}

// TestWarmSetMissingAndCorrupt: a warm set backed by a missing or corrupt
// file serves misses forever and reports why — never an error on the
// lookup path.
func TestWarmSetMissingAndCorrupt(t *testing.T) {
	w := OpenWarmSet(snapshotPath(t))
	if _, ok := w.get(RegionParking, "k"); ok {
		t.Fatal("missing warm set served a hit")
	}
	res, err := w.Result()
	if err != nil || !res.Missing || res.Degraded != "" {
		t.Fatalf("missing warm set: res=%+v err=%v", res, err)
	}

	path := snapshotPath(t)
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	w = OpenWarmSet(path)
	if w.Len() != 0 {
		t.Fatal("corrupt warm set holds entries")
	}
	res, err = w.Result()
	if err != nil || res.Degraded != DegradedCorrupt {
		t.Fatalf("corrupt warm set: res=%+v err=%v, want Degraded=%q", res, err, DegradedCorrupt)
	}

	// A nil warm set (and a cache without one) also just misses.
	var nilSet *WarmSet
	if _, ok := nilSet.get(RegionParking, "k"); ok {
		t.Fatal("nil warm set served a hit")
	}
	if nilSet.Len() != 0 || nilSet.Path() != "" {
		t.Fatal("nil warm set not inert")
	}
}

// TestWarmSetPreviousVersionMigrates: a warm set built by the previous
// release (snapshot v5, KeyVersion 5) goes through the same migration walk
// as a local snapshot, so its re-keyed slice entries serve under current
// keys.
func TestWarmSetPreviousVersionMigrates(t *testing.T) {
	path := snapshotPath(t)
	sliceKeyV6 := makeV5Snapshot(t, path)
	w := OpenWarmSet(path)
	res, err := w.Result()
	if err != nil || res.Degraded != "" {
		t.Fatalf("v5 warm set degraded: res=%+v err=%v", res, err)
	}
	if res.Migrated == 0 || res.FromVersion != 5 || res.Restored == 0 {
		t.Fatalf("v5 warm set: %+v, want migrated restore from version 5", res)
	}
	c := NewCache(0)
	c.AttachWarmSet(w)
	if _, ok := c.Get(RegionSlice, sliceKeyV6); !ok {
		t.Fatal("migrated warm-set entry does not hit under its v6 key")
	}
	if st := c.StatsByRegion()[RegionSlice]; st.WarmHits != 1 {
		t.Fatalf("migrated entry not attributed to the warm tier: %+v", st)
	}
}

// TestWarmSetReadOnlyUnderContention hammers one warm-backed cache from
// 8×GOMAXPROCS goroutines mixing warm-served keys, novel computes and raw
// Gets. Under -race this demonstrates the warm tier is genuinely read-only
// concurrent state (the immutable maps are read lock-free by every
// goroutine, including the racing lazy load); the byte comparison
// afterwards demonstrates nothing ever writes the backing file.
func TestWarmSetReadOnlyUnderContention(t *testing.T) {
	path, parkKey, sliceKey := warmSnapshot(t)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(0)
	c.AttachWarmSet(OpenWarmSet(path))

	workers := 8 * runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					if _, ok := c.Get(RegionParking, parkKey); !ok {
						t.Error("warm park entry lost under contention")
						return
					}
				case 1:
					if _, ok := c.Get(RegionSlice, sliceKey); !ok {
						t.Error("warm slice entry lost under contention")
						return
					}
				case 2:
					key := fmt.Sprintf("novel-%d-%d", g, i)
					if _, _, err := c.DoTiered(RegionSMT, key, func() (any, error) {
						return smtResult{delta: float64(i)}, nil
					}); err != nil {
						t.Error(err)
						return
					}
				default:
					c.Get(RegionSMT, "absent-everywhere")
				}
			}
		}(g)
	}
	wg.Wait()

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("warm-set file bytes changed under contention: tier is not read-only")
	}
	st := c.TotalStats()
	if st.WarmHits == 0 {
		t.Fatalf("contention run recorded no warm hits: %+v", st)
	}
}

// TestWarmSetDetach: attaching nil detaches the tier; lookups fall back to
// two-tier behavior.
func TestWarmSetDetach(t *testing.T) {
	path, parkKey, _ := warmSnapshot(t)
	c := NewCache(0)
	c.AttachWarmSet(OpenWarmSet(path))
	c.AttachWarmSet(nil)
	if c.WarmSet() != nil {
		t.Fatal("warm set still attached")
	}
	if _, ok := c.Get(RegionParking, parkKey); ok {
		t.Fatal("detached warm set still served")
	}
}

// TestWarmSetRouteEntries: a warm set carries route-region results through
// the content-addressed pool, so a fresh process routes entirely from the
// shared tier.
func TestWarmSetRouteEntries(t *testing.T) {
	build := func() *circuit.Circuit {
		c := circuit.New(9)
		c.H(0).CNOT(0, 8).CZ(3, 5)
		return c
	}
	dev := topology.SquareGrid(9)
	src := NewContext(1)
	want, err := src.Route(build(), dev, mapping.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := snapshotPath(t)
	if err := src.Cache.Save(path); err != nil {
		t.Fatal(err)
	}

	c := NewCache(0)
	c.AttachWarmSet(OpenWarmSet(path))
	ctx := &Context{Cache: c, Record: NewRecorder()}
	got, err := ctx.Route(build(), dev, mapping.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.SwapCount != want.SwapCount || got.Routed.Signature() != want.Routed.Signature() {
		t.Fatal("warm-served route differs from the original")
	}
	if st := ctx.Record.StatsByRegion()[RegionRoute]; st.WarmHits != 1 || st.Misses != 0 {
		t.Fatalf("route lookup not served by the warm tier: %+v", st)
	}
}
