package circuit

import "sync"

// Dependency analysis. Two gates depend on each other when they share a
// qubit; the earlier one (program order) must complete first. This induces
// the layered view of a circuit ("circuit slicing", §V-B2) and the
// critical-path criticality used by the noise-aware queueing scheduler
// (§V-B6).
//
// The methods on Circuit below are the straightforward reference
// implementations. Hot paths use Analyze, which computes the same
// structures once, flat, and shares them (equivalence is pinned by
// property test in analysis_test.go).

// ASAPLayers partitions gate indices into as-soon-as-possible layers: a gate
// is placed one layer after the latest layer among the gates it depends on.
// The result is the standard "sliced" circuit; len(result) is the depth.
func (c *Circuit) ASAPLayers() [][]int {
	lastLayer := make([]int, c.NumQubits) // per qubit: layer of its last gate + 1
	for i := range lastLayer {
		lastLayer[i] = 0
	}
	var layers [][]int
	for idx, g := range c.Gates {
		layer := 0
		for _, q := range g.Qubits {
			if lastLayer[q] > layer {
				layer = lastLayer[q]
			}
		}
		for len(layers) <= layer {
			layers = append(layers, nil)
		}
		layers[layer] = append(layers[layer], idx)
		for _, q := range g.Qubits {
			lastLayer[q] = layer + 1
		}
	}
	return layers
}

// Depth returns the number of ASAP layers.
func (c *Circuit) Depth() int { return len(c.ASAPLayers()) }

// Criticality returns, for each gate index, the length (in gates) of the
// longest dependency chain starting at that gate, itself included. Gates
// with larger criticality lie on the program critical path and are
// scheduled first by the queueing scheduler.
func (c *Circuit) Criticality() []int {
	n := len(c.Gates)
	crit := make([]int, n)
	// nextOnQubit[q] tracks, while scanning backwards, the criticality of
	// the next gate touching q.
	nextCrit := make([]int, c.NumQubits)
	for i := n - 1; i >= 0; i-- {
		g := c.Gates[i]
		best := 0
		for _, q := range g.Qubits {
			if nextCrit[q] > best {
				best = nextCrit[q]
			}
		}
		crit[i] = best + 1
		for _, q := range g.Qubits {
			nextCrit[q] = crit[i]
		}
	}
	return crit
}

// Frontier iterates a circuit in dependency order while letting the caller
// postpone ready gates — exactly the queueing discipline of Algorithm 1. At
// any point, Ready() lists the gates whose per-qubit predecessors have all
// been issued; the scheduler issues a subset and the rest remain ready in
// later rounds.
//
// A Frontier is a cheap resettable view over an Analysis: the per-qubit
// gate streams live in the shared immutable Analysis, and only the cursor
// state (next position per qubit, issued flags, the reusable Ready buffer)
// belongs to the Frontier. That state comes from a sync.Pool, so acquiring
// a frontier per compilation costs no steady-state allocations; call
// Release when done to return it.
type Frontier struct {
	a      *Analysis
	next   []int32 // per qubit: position in its QubitStream
	issued []bool
	ready  []int // reusable Ready result buffer
	remain int
}

var frontierPool = sync.Pool{New: func() any { return new(Frontier) }}

// NewFrontier builds (analyzes c and) returns a frontier at the start of c.
// Prefer Analysis.NewFrontier when an analysis is already at hand.
func NewFrontier(c *Circuit) *Frontier { return Analyze(c).NewFrontier() }

// NewFrontier returns a frontier over a's circuit with every gate unissued,
// drawing its cursor state from a pool. Multiple frontiers over one shared
// Analysis are independent.
func (a *Analysis) NewFrontier() *Frontier {
	//fastsc:ignore poolpair -- escapes: constructor hands the pooled frontier to the caller, whose contract pairs it with Release (builder.releasePooled, router defer)
	f := frontierPool.Get().(*Frontier)
	f.a = a
	f.next = resizeZero(f.next, a.NumQubits)
	f.issued = resizeZero(f.issued, a.NumGates)
	if f.ready == nil {
		f.ready = make([]int, 0, 16)
	}
	f.remain = a.NumGates
	return f
}

// Reset rewinds the frontier to the start of the circuit, reusing its
// buffers (no allocation).
func (f *Frontier) Reset() {
	for i := range f.next {
		f.next[i] = 0
	}
	for i := range f.issued {
		f.issued[i] = false
	}
	f.remain = f.a.NumGates
}

// Release returns the frontier's cursor state to the pool. The frontier
// must not be used afterwards.
func (f *Frontier) Release() {
	f.a = nil
	frontierPool.Put(f)
}

// Ready returns the indices of gates whose dependencies are satisfied, in
// ascending program order. The returned slice is the frontier's reusable
// buffer: it is valid (and may be reordered in place by the caller) until
// the next Ready call. Ready performs no allocation beyond growing that
// buffer to the widest frontier seen.
//
//fastsc:hotpath every strategy drains the frontier once per slice; the zero-alloc contract is pinned by TestFrontierReadyZeroAlloc
func (f *Frontier) Ready() []int {
	ready := f.ready[:0]
	a := f.a
	for q := 0; q < a.NumQubits; q++ {
		s := a.stream[a.streamOff[q]:a.streamOff[q+1]]
		pos := f.next[q]
		if int(pos) >= len(s) {
			continue
		}
		idx := s[pos]
		q0, q1 := a.gq[idx][0], a.gq[idx][1]
		if q1 >= 0 {
			// Two-qubit gate: it heads two streams, so emit it only from
			// its smaller operand (dedup without a map), and only when it
			// is also the head on the larger one.
			lo, hi := q0, q1
			if lo > hi {
				lo, hi = hi, lo
			}
			if int32(q) != lo {
				continue
			}
			hs := a.stream[a.streamOff[hi]:a.streamOff[hi+1]]
			if int(f.next[hi]) >= len(hs) || hs[f.next[hi]] != idx {
				continue
			}
		}
		ready = append(ready, int(idx))
	}
	sortInts(ready)
	f.ready = ready
	return ready
}

// Issue marks gate idx as executed. It panics if the gate is not ready.
func (f *Frontier) Issue(idx int) {
	if f.issued[idx] {
		panic("circuit: gate issued twice")
	}
	a := f.a
	for _, q := range a.gq[idx] {
		if q < 0 {
			continue
		}
		s := a.stream[a.streamOff[q]:a.streamOff[q+1]]
		if int(f.next[q]) >= len(s) || s[f.next[q]] != int32(idx) {
			panic("circuit: issuing gate with unmet dependencies")
		}
	}
	for _, q := range a.gq[idx] {
		if q >= 0 {
			f.next[q]++
		}
	}
	f.issued[idx] = true
	f.remain--
}

// Done reports whether every gate has been issued.
func (f *Frontier) Done() bool { return f.remain == 0 }

// Remaining returns the number of unissued gates.
func (f *Frontier) Remaining() int { return f.remain }

// resizeZero returns a zeroed slice of length n, reusing s's storage when
// it is large enough.
func resizeZero[T int32 | bool](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func sortInts(xs []int) {
	// insertion sort; frontiers are small.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
