package graph

// Unreachable is the distance reported by BFS for vertices that cannot be
// reached from the source.
const Unreachable = -1

// BFSDistances returns the unweighted shortest-path distance from src to
// every vertex of g. Vertices not reachable from src (including vertices
// absent from g) map to Unreachable.
func (g *Graph) BFSDistances(src int) map[int]int {
	dist := make(map[int]int, g.NumNodes())
	for v := range g.adj {
		dist[v] = Unreachable
	}
	if !g.HasNode(src) {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for u := range g.adj[v] {
			if dist[u] == Unreachable {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Distance returns the unweighted shortest-path distance between a and b,
// or Unreachable if no path exists.
func (g *Graph) Distance(a, b int) int {
	if !g.HasNode(a) || !g.HasNode(b) {
		return Unreachable
	}
	if a == b {
		return 0
	}
	// Bidirectional-ish early exit: plain BFS with target check.
	dist := map[int]int{a: 0}
	queue := []int{a}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for u := range g.adj[v] {
			if _, seen := dist[u]; !seen {
				dist[u] = dist[v] + 1
				if u == b {
					return dist[u]
				}
				queue = append(queue, u)
			}
		}
	}
	return Unreachable
}

// ShortestPath returns one shortest path from a to b inclusive of both
// endpoints, or nil if b is unreachable from a.
func (g *Graph) ShortestPath(a, b int) []int {
	if !g.HasNode(a) || !g.HasNode(b) {
		return nil
	}
	if a == b {
		return []int{a}
	}
	prev := map[int]int{a: a}
	queue := []int{a}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		// Deterministic expansion order keeps routed circuits stable.
		for _, u := range g.Neighbors(v) {
			if _, seen := prev[u]; seen {
				continue
			}
			prev[u] = v
			if u == b {
				return reconstruct(prev, a, b)
			}
			queue = append(queue, u)
		}
	}
	return nil
}

func reconstruct(prev map[int]int, a, b int) []int {
	var rev []int
	for v := b; ; v = prev[v] {
		rev = append(rev, v)
		if v == a {
			break
		}
	}
	path := make([]int, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path
}

// Connected reports whether g is connected (the empty graph counts as
// connected).
func (g *Graph) Connected() bool {
	nodes := g.Nodes()
	if len(nodes) == 0 {
		return true
	}
	dist := g.BFSDistances(nodes[0])
	for _, d := range dist {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// AllPairsDistances computes BFS distances from every vertex. The result
// maps source -> (vertex -> distance).
func (g *Graph) AllPairsDistances() map[int]map[int]int {
	all := make(map[int]map[int]int, g.NumNodes())
	for _, v := range g.Nodes() {
		all[v] = g.BFSDistances(v)
	}
	return all
}

// EdgeDistance returns the distance between two edges of g, defined (as in
// the paper, §IV-C) as the length of the shortest path connecting the two
// edges: 0 if they share a vertex, otherwise the minimum vertex distance
// between any pair of their endpoints. Returns Unreachable when the edges
// lie in different components.
func (g *Graph) EdgeDistance(e, f Edge) int {
	if e.SharesVertex(f) {
		return 0
	}
	best := Unreachable
	for _, a := range [2]int{e.U, e.V} {
		dist := g.BFSDistances(a)
		for _, b := range [2]int{f.U, f.V} {
			if d := dist[b]; d != Unreachable && (best == Unreachable || d < best) {
				best = d
			}
		}
	}
	return best
}
