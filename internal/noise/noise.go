// Package noise estimates the worst-case success rate of a compiled
// schedule — the paper's heuristic metric (eq. 4):
//
//	P_success = Π_g (1 − ε_g) · Π_q (1 − ε_q)
//
// The gate crosstalk factors ε_g are evaluated per slice from the frequency
// configuration the compiler chose, channel by channel:
//
//   - Gate–gate channels: two simultaneous two-qubit gates whose couplers
//     are within crosstalk distance 2 exchange population with the
//     detuned-Rabi probability (eq. 5/6) at their interaction-frequency
//     difference δω. Distance-1 pairs (couplers sharing or neighboring a
//     qubit) interact at the bare coupling g₀; distance-2 pairs couple
//     through a mediating qubit with an effective NextNeighborFactor·g₀.
//     The ω12 sideband channels (shifted by the anharmonicity) are included.
//   - Spectator channels: an idle qubit directly coupled to an active gate
//     qubit exchanges population at the parked-vs-interaction detuning.
//   - Ambient channels: parked neighbor pairs interact weakly through their
//     always-on coupler; this is the background the frequency partition
//     (§V-B4) and checkerboard parking suppress.
//   - Flux-noise dephasing: qubits operated away from their sweet spots
//     dephase at a rate ∝ σ_Φ·|dω/dφ| (Fig 4, Appendix C).
//
// Decoherence ε_q follows §II-B1: ε_q(t) = (1 − e^{−t/T1})(1 − e^{−t/T2}).
// On gmon hardware (Baseline G) couplers outside the active set retain only
// Residual·g₀ of their coupling, which rescales every parasitic channel —
// with perfect deactivation (r = 0) only decoherence, flux noise and
// intrinsic gate error remain, the paper's conservative Fig 9 assumption.
package noise

import (
	"math"

	"fastsc/internal/graph"
	"fastsc/internal/phys"
	"fastsc/internal/schedule"
	"fastsc/internal/xtalk"
)

// Options tunes the evaluator.
type Options struct {
	// NextNeighborFactor scales the bare coupling for distance-2 gate–gate
	// channels (virtual exchange through the mediating qubit).
	NextNeighborFactor float64
	// SidebandWeight discounts sideband channels involving idle qubits,
	// whose |2⟩ population is small (active channels use weight 1).
	SidebandWeight float64
	// Gate1Error and Gate2Error are intrinsic per-gate error floors
	// (control imprecision independent of crosstalk; Kjaergaard et al.
	// report ≳99.5% two-qubit fidelity, i.e. ε₂ ≈ a few 10⁻³).
	Gate1Error, Gate2Error float64
	// FluxNoiseSigma is the RMS flux-noise amplitude in units of Φ₀; the
	// dephasing rate of a qubit at flux φ is 2π·σ_Φ·|dω/dφ|. Zero
	// disables the channel.
	FluxNoiseSigma float64
	// DisableAmbient turns off the idle-idle background (for ablations).
	DisableAmbient bool
}

// DefaultOptions returns the evaluation settings used for the paper
// reproduction.
func DefaultOptions() Options {
	return Options{
		NextNeighborFactor: 0.12,
		SidebandWeight:     0.15,
		Gate1Error:         0.0005,
		Gate2Error:         0.002,
		FluxNoiseSigma:     3e-7,
	}
}

// Report breaks a schedule's estimated worst-case success rate into its
// factors. Success is the product of the survival probabilities of every
// channel family.
type Report struct {
	Success float64
	// CrosstalkError aggregates gate-gate, spectator and ambient channels:
	// 1 − Π(1−ε).
	CrosstalkError float64
	// GateGateError, SpectatorError and AmbientError are the individual
	// crosstalk families (each 1 − Π(1−ε) over its channels).
	GateGateError  float64
	SpectatorError float64
	AmbientError   float64
	// FluxError is the flux-noise dephasing aggregate.
	FluxError float64
	// DecoherenceError is 1 − Π_q(1−ε_q), the Fig 10 metric.
	DecoherenceError float64
	// IntrinsicError is the control-error floor 1 − Π(1−ε_gate).
	IntrinsicError float64
	Duration       float64 // ns
	Depth          int     // slices
	NumGates       int
	Num2Q          int
}

// Evaluate computes the worst-case success estimate for a schedule.
func Evaluate(s *schedule.Schedule, opt Options) *Report {
	ev := &evaluator{
		s:         s,
		opt:       opt,
		fluxCache: map[fluxKey]float64{},
		x1:        xtalk.Build(s.System.Device, 1),
		x2:        xtalk.Build(s.System.Device, 2),
	}
	return ev.run()
}

type fluxKey struct {
	qubit int
	freq  float64
}

type evaluator struct {
	s         *schedule.Schedule
	opt       Options
	fluxCache map[fluxKey]float64
	x1, x2    *xtalk.Graph

	logGate float64
	logSpec float64
	logAmb  float64
	logFlux float64
}

func (ev *evaluator) run() *Report {
	s := ev.s
	rep := &Report{Duration: s.TotalTime, Depth: s.Depth()}
	numVirtual := 0

	for si := range s.Slices {
		sl := &s.Slices[si]
		active := make(map[graph.Edge]bool, len(sl.ActiveCouplers))
		for _, e := range sl.ActiveCouplers {
			active[e] = true
		}
		ev.gateGateChannels(sl)
		ev.spectatorChannels(sl, active)
		if !ev.opt.DisableAmbient {
			ev.ambientChannels(sl, active)
		}
		if ev.opt.FluxNoiseSigma > 0 {
			ev.fluxChannels(sl)
		}
		for _, g := range sl.Gates {
			rep.NumGates++
			switch {
			case g.Gate.Kind.IsTwoQubit():
				rep.Num2Q++
			case g.Gate.Kind.IsVirtual():
				numVirtual++ // software frame updates carry no control error
			}
		}
	}

	// Decoherence over the full program duration for the qubits the
	// program touches.
	logDec := 0.0
	for _, q := range usedQubits(s) {
		eq := s.System.Transmon(q).DecoherenceError(s.TotalTime)
		logDec += math.Log1p(-clampProb(eq))
	}
	logIntr := float64(rep.NumGates-rep.Num2Q-numVirtual)*math.Log1p(-ev.opt.Gate1Error) +
		float64(rep.Num2Q)*math.Log1p(-ev.opt.Gate2Error)

	rep.GateGateError = 1 - math.Exp(ev.logGate)
	rep.SpectatorError = 1 - math.Exp(ev.logSpec)
	rep.AmbientError = 1 - math.Exp(ev.logAmb)
	rep.CrosstalkError = 1 - math.Exp(ev.logGate+ev.logSpec+ev.logAmb)
	rep.FluxError = 1 - math.Exp(ev.logFlux)
	rep.DecoherenceError = 1 - math.Exp(logDec)
	rep.IntrinsicError = 1 - math.Exp(logIntr)
	rep.Success = math.Exp(ev.logGate + ev.logSpec + ev.logAmb + ev.logFlux + logDec + logIntr)
	return rep
}

// pairCoupling returns the effective parasitic coupling between two active
// couplers at crosstalk distance 1 or 2, honoring gmon coupler switching.
func (ev *evaluator) pairCoupling(e1, e2 graph.Edge) float64 {
	v1, ok1 := ev.x1.VertexOf(e1.U, e1.V)
	v2, ok2 := ev.x1.VertexOf(e2.U, e2.V)
	if !ok1 || !ok2 {
		return 0
	}
	s := ev.s
	// v1/v2 are the couplers' dense edge ids, so the coupling reads are
	// direct indexes — no map probe, no second edge-id search.
	g0 := (s.System.G0ByID(int32(v1)) + s.System.G0ByID(int32(v2))) / 2
	switch {
	case ev.x1.G.HasEdge(v1, v2):
		// Distance 1: a single off-path coupler connects the pairs.
		if s.Gmon {
			g0 *= s.Residual
		}
		return g0
	case ev.x2.G.HasEdge(v1, v2):
		// Distance 2: exchange through a mediating idle qubit crosses two
		// off-path couplers.
		g0 *= ev.opt.NextNeighborFactor
		if s.Gmon {
			g0 *= s.Residual * s.Residual
		}
		return g0
	}
	return 0
}

// gateGateChannels accumulates crosstalk between pairs of simultaneous
// two-qubit gates (the frequency-crowding errors of Fig 6).
func (ev *evaluator) gateGateChannels(sl *schedule.Slice) {
	events := sl.Gates
	for i := 0; i < len(events); i++ {
		gi := events[i]
		if !gi.Gate.Kind.IsTwoQubit() {
			continue
		}
		ei := graph.NewEdge(gi.Gate.Qubits[0], gi.Gate.Qubits[1])
		for j := i + 1; j < len(events); j++ {
			gj := events[j]
			if !gj.Gate.Kind.IsTwoQubit() {
				continue
			}
			ej := graph.NewEdge(gj.Gate.Qubits[0], gj.Gate.Qubits[1])
			g := ev.pairCoupling(ei, ej)
			if g == 0 {
				continue
			}
			tau := math.Min(gi.Duration, gj.Duration)
			ec := ev.s.System.Transmon(ei.U).EC
			delta := gi.Freq - gj.Freq
			eps := phys.TransitionProbability(g, delta, tau)
			// Active qubits are excited, so sideband channels carry full
			// weight and the √2 two-photon enhancement.
			eps += phys.TransitionProbability(math.Sqrt2*g, delta-ec, tau)
			eps += phys.TransitionProbability(math.Sqrt2*g, delta+ec, tau)
			ev.logGate += math.Log1p(-clampProb(eps))
		}
	}
}

// spectatorChannels accumulates exchange between each active gate qubit and
// its idle direct neighbors.
func (ev *evaluator) spectatorChannels(sl *schedule.Slice, active map[graph.Edge]bool) {
	s := ev.s
	busy := make(map[int]bool)
	for _, e := range sl.ActiveCouplers {
		busy[e.U] = true
		busy[e.V] = true
	}
	for _, e := range sl.ActiveCouplers {
		for _, q := range [2]int{e.U, e.V} {
			for _, spec := range s.System.Device.NeighborsSorted(q) {
				if busy[spec] || e.Has(spec) {
					continue
				}
				cpl := graph.NewEdge(q, spec)
				g0 := s.System.G0(q, spec)
				if s.Gmon && !active[cpl] {
					g0 *= s.Residual
				}
				if g0 == 0 {
					continue
				}
				fq, fs := sl.Freqs[q], sl.Freqs[spec]
				ec := s.System.Transmon(q).EC
				tau := sl.Duration
				eps := phys.TransitionProbability(g0, fq-fs, tau)
				sb := phys.TransitionProbability(math.Sqrt2*g0, (fq-ec)-fs, tau) +
					phys.TransitionProbability(math.Sqrt2*g0, fq-(fs-ec), tau)
				eps += ev.opt.SidebandWeight * sb
				ev.logSpec += math.Log1p(-clampProb(eps))
			}
		}
	}
}

// ambientChannels accumulates the idle-idle background through couplers
// whose both endpoints are parked.
func (ev *evaluator) ambientChannels(sl *schedule.Slice, active map[graph.Edge]bool) {
	s := ev.s
	busy := make(map[int]bool)
	for _, e := range sl.ActiveCouplers {
		busy[e.U] = true
		busy[e.V] = true
	}
	for id, e := range s.System.Device.Edges() {
		if busy[e.U] || busy[e.V] {
			continue // spectator/gate channels cover these
		}
		g0 := s.System.G0ByID(int32(id))
		if s.Gmon {
			g0 *= s.Residual
		}
		if g0 == 0 {
			continue
		}
		fu, fv := sl.Freqs[e.U], sl.Freqs[e.V]
		ec := s.System.Transmon(e.U).EC
		tau := sl.Duration
		eps := phys.TransitionProbability(g0, fu-fv, tau)
		sb := phys.TransitionProbability(math.Sqrt2*g0, (fu-ec)-fv, tau) +
			phys.TransitionProbability(math.Sqrt2*g0, fu-(fv-ec), tau)
		eps += ev.opt.SidebandWeight * sb
		ev.logAmb += math.Log1p(-clampProb(eps))
	}
}

// fluxChannels accumulates dephasing from flux noise for qubits operated
// away from their sweet spots.
func (ev *evaluator) fluxChannels(sl *schedule.Slice) {
	s := ev.s
	for q := 0; q < s.System.Device.Qubits; q++ {
		sens := ev.sensitivity(q, sl.Freqs[q])
		if sens == 0 {
			continue
		}
		rate := phys.TwoPi * ev.opt.FluxNoiseSigma * sens // GHz
		eps := 1 - math.Exp(-rate*sl.Duration)
		ev.logFlux += math.Log1p(-clampProb(eps))
	}
}

func (ev *evaluator) sensitivity(q int, freq float64) float64 {
	key := fluxKey{q, freq}
	if v, ok := ev.fluxCache[key]; ok {
		return v
	}
	tr := ev.s.System.Transmon(q)
	sens := 0.0
	if phi, err := tr.FluxFor(freq); err == nil {
		sens = tr.FluxSensitivity(phi)
	}
	ev.fluxCache[key] = sens
	return sens
}

func usedQubits(s *schedule.Schedule) []int {
	seen := make(map[int]bool)
	for _, g := range s.Compiled.Gates {
		for _, q := range g.Qubits {
			seen[q] = true
		}
	}
	out := make([]int, 0, len(seen))
	for q := range seen {
		out = append(out, q)
	}
	sortInts(out)
	return out
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 0.999999 {
		return 0.999999
	}
	return p
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
