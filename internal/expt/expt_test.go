package expt

import (
	"fmt"
	"strings"
	"testing"

	"fastsc/internal/compile"
	"fastsc/internal/core"
)

// exptCtx returns a fresh batch-engine context (default workers, fresh
// cache) for one figure run.
func exptCtx() *compile.Context { return compile.NewContext(0) }

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "t",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	s := tab.String()
	for _, want := range []string{"== t: demo ==", "333", "a note", "---"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestSuiteComposition(t *testing.T) {
	suite := Suite()
	if len(suite) != 22 {
		t.Fatalf("Fig 9 suite has %d entries, want 22 (as in the paper)", len(suite))
	}
	names := map[string]bool{}
	for _, b := range suite {
		if names[b.Name] {
			t.Fatalf("duplicate benchmark %s", b.Name)
		}
		names[b.Name] = true
		if b.Qubits < 2 {
			t.Fatalf("%s has %d qubits", b.Name, b.Qubits)
		}
	}
	// The paper's exclusions must hold.
	if names["qaoa(16)"] || names["ising(16)"] {
		t.Fatal("qaoa(16)/ising(16) are excluded in the paper (success < 1e-4)")
	}
	// The headline families must all be present.
	for _, want := range []string{"bv(16)", "qgan(25)", "xeb(25,15)", "ising(4)"} {
		if !names[want] {
			t.Fatalf("suite missing %s", want)
		}
	}
}

func TestBenchmarkCircuitsCompile(t *testing.T) {
	for _, b := range Suite() {
		sys := GridSystem(b.Qubits)
		c := b.Circuit(sys.Device)
		if c.NumQubits > sys.Device.Qubits {
			t.Fatalf("%s: circuit too wide", b.Name)
		}
		if c.NumGates() == 0 {
			t.Fatalf("%s: empty circuit", b.Name)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	tab := Fig2InteractionStrength()
	if len(tab.Rows) < 10 {
		t.Fatalf("sweep too coarse: %d rows", len(tab.Rows))
	}
	// Peak must sit at resonance (ωA = 5.44), i.e. in the middle rows.
	var maxRow int
	var maxVal float64
	for i, row := range tab.Rows {
		var v float64
		if _, err := sscan(row[1], &v); err != nil {
			t.Fatal(err)
		}
		if v > maxVal {
			maxVal, maxRow = v, i
		}
	}
	if maxRow == 0 || maxRow == len(tab.Rows)-1 {
		t.Fatal("interaction strength should peak at resonance, not at the sweep edge")
	}
}

func TestFig4Shape(t *testing.T) {
	tab := Fig4TransmonSpectrum()
	if len(tab.Rows) != 41 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// ω01 at φ=0 (middle row) must exceed the mid-band value at φ=0.25
	// (the flux period is 1, so φ=±1 are sweet spots again).
	var atZero, atQuarter float64
	if _, err := sscan(tab.Rows[20][1], &atZero); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tab.Rows[25][1], &atQuarter); err != nil {
		t.Fatal(err)
	}
	if atZero <= atQuarter {
		t.Fatalf("spectrum should peak at zero flux: %v vs %v at φ=0.25", atZero, atQuarter)
	}
}

func TestFig7Claims(t *testing.T) {
	tab := Fig7MeshColoring()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][3] != "2" {
		t.Fatalf("connectivity graph should 2-color, got %s", tab.Rows[0][3])
	}
	for _, row := range tab.Rows {
		if row[4] != "true" {
			t.Fatalf("coloring of %s not proper", row[0])
		}
	}
}

func TestFig9Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig 9 sweep in -short mode")
	}
	r, err := Fig9SuccessRates(exptCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) != 22 {
		t.Fatalf("rows = %d", len(r.Table.Rows))
	}
	// Headline claims (direction, not magnitude).
	if r.MeanCDOverU < 2 {
		t.Fatalf("ColorDynamic should clearly beat Baseline U on average, ratio %v", r.MeanCDOverU)
	}
	if r.GeoMeanCDOverG < 0.2 || r.GeoMeanCDOverG > 5 {
		t.Fatalf("ColorDynamic should be within a small factor of Baseline G, got %v", r.GeoMeanCDOverG)
	}
	// Per-benchmark: CD must beat U on the parallel deep workloads.
	for _, name := range []string{"xeb(16,15)", "xeb(25,15)", "qgan(25)"} {
		cd := r.Success[name][core.ColorDynamic]
		u := r.Success[name][core.BaselineU]
		if cd <= u {
			t.Fatalf("%s: CD %v should beat U %v", name, cd, u)
		}
	}
}

func TestFig10Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig 10 sweep in -short mode")
	}
	r, err := Fig10DepthDecoherence(exptCtx())
	if err != nil {
		t.Fatal(err)
	}
	// Baseline U must serialize: strictly deeper than ColorDynamic on the
	// largest parallel workload.
	if r.Depth["xeb(25,15)"][core.BaselineU] <= r.Depth["xeb(25,15)"][core.ColorDynamic] {
		t.Fatal("Baseline U should be deeper than ColorDynamic on xeb(25,15)")
	}
	// ColorDynamic's decoherence should be below Baseline U's on average
	// (paper: 0.90x).
	if r.MeanDecCDOverU >= 1.05 {
		t.Fatalf("CD decoherence ratio vs U = %v, want < 1.05", r.MeanDecCDOverU)
	}
}

func TestFig11Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig 11 sweep in -short mode")
	}
	r, err := Fig11ColorSweep(exptCtx())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's sweet spot: best tunability at 1 or 2 colors for the
	// majority of benchmarks.
	atSweetSpot := 0
	for _, k := range r.BestColors {
		if k <= 2 {
			atSweetSpot++
		}
	}
	if atSweetSpot < len(r.BestColors)*2/3 {
		t.Fatalf("only %d/%d benchmarks peak at <= 2 colors", atSweetSpot, len(r.BestColors))
	}
}

func TestFig12Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig 12 sweep in -short mode")
	}
	r, err := Fig12ResidualCoupling(exptCtx())
	if err != nil {
		t.Fatal(err)
	}
	for name, series := range r.Success {
		// Monotone decay in r.
		for i := 1; i < len(series); i++ {
			if series[i] > series[i-1]+1e-9 {
				t.Fatalf("%s: success increased with residual at step %d", name, i)
			}
		}
		// Substantial total decay on the 16-qubit workloads.
		if strings.Contains(name, "16") && series[len(series)-1] > series[0]/10 {
			t.Fatalf("%s: decay too flat: %v -> %v", name, series[0], series[len(series)-1])
		}
	}
}

func TestFig13Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig 13 sweep in -short mode")
	}
	r, err := Fig13Connectivity(exptCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 50 { // 5 benchmarks x 10 topologies
		t.Fatalf("points = %d, want 50", len(r.Points))
	}
	if r.GeoMeanCDOverU < 1 {
		t.Fatalf("ColorDynamic should improve on U across connectivities, geomean %v", r.GeoMeanCDOverU)
	}
	for _, p := range r.Points {
		if p.CompileTime.Seconds() > 30 {
			t.Fatalf("%s/%s: compile time %v exceeds the paper's 30 s bound",
				p.Benchmark, p.Topology, p.CompileTime)
		}
		if p.Colors > 8 {
			t.Fatalf("%s/%s: %d colors, should stay small", p.Benchmark, p.Topology, p.Colors)
		}
	}
}

func TestFig15Bounds(t *testing.T) {
	tab := Fig15Chevrons()
	for _, row := range tab.Rows {
		for _, cell := range row[2:] {
			var v float64
			if _, err := sscan(cell, &v); err != nil {
				t.Fatal(err)
			}
			if v < -1e-9 || v > 1+1e-9 {
				t.Fatalf("transition probability %v out of range", v)
			}
		}
	}
}

func TestValidationCorrelation(t *testing.T) {
	if testing.Short() {
		t.Skip("trajectory simulation in -short mode")
	}
	r, err := ValidationHeuristic(exptCtx(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Heuristic) != len(r.Simulated) || len(r.Heuristic) < 8 {
		t.Fatalf("validation rows: %d", len(r.Heuristic))
	}
	// Rank correlation: the heuristic must order (benchmark, strategy)
	// pairs like the simulator does, at least weakly (Spearman > 0.5).
	if rho := spearman(r.Heuristic, r.Simulated); rho < 0.5 {
		t.Fatalf("heuristic/simulation rank correlation %v too weak", rho)
	}
}

func spearman(a, b []float64) float64 {
	ra, rb := ranks(a), ranks(b)
	n := float64(len(a))
	var d2 float64
	for i := range ra {
		d := ra[i] - rb[i]
		d2 += d * d
	}
	return 1 - 6*d2/(n*(n*n-1))
}

func ranks(xs []float64) []float64 {
	r := make([]float64, len(xs))
	for i, x := range xs {
		rank := 1.0
		for j, y := range xs {
			if y < x || (y == x && j < i) {
				rank++
			}
		}
		r[i] = rank
	}
	return r
}

func sscan(s string, v *float64) (int, error) {
	return fmtSscan(s, v)
}

func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

func TestExtRouterComparisonClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("router-comparison sweep in -short mode")
	}
	r, err := ExtRouterComparison(exptCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) != len(extRouterSuite()) {
		t.Fatalf("rows = %d, want %d", len(r.Table.Rows), len(extRouterSuite()))
	}
	// The lookahead router must never insert more SWAPs than greedy on
	// this suite, and must strictly win on the random-MAX-CUT QAOA
	// workloads that stress routing (the acceptance claim).
	strictQAOAWin := false
	for name, sw := range r.Swaps {
		g, l := sw["greedy"], sw["lookahead"]
		if l > g {
			t.Fatalf("%s: lookahead swaps %d > greedy %d", name, l, g)
		}
		if strings.HasPrefix(name, "qaoa") && g > 2 && l < g {
			strictQAOAWin = true
		}
	}
	if !strictQAOAWin {
		t.Fatal("lookahead should strictly reduce SwapCount on a QAOA workload")
	}
	// Fewer swaps must show up as shallower or equal ColorDynamic
	// schedules on the big QAOA instance.
	if r.Depth["qaoa(16)"]["lookahead"] > r.Depth["qaoa(16)"]["greedy"] {
		t.Fatalf("qaoa(16): lookahead depth %d > greedy %d",
			r.Depth["qaoa(16)"]["lookahead"], r.Depth["qaoa(16)"]["greedy"])
	}
}
