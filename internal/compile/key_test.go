package compile

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"fastsc/internal/circuit"
	"fastsc/internal/mapping"
	"fastsc/internal/phys"
	"fastsc/internal/smt"
	"fastsc/internal/topology"
)

// TestSliceKeyCollisionProof is the regression test for the v1 key bug:
// SliceKey used to reduce the active vertex set to a 64-bit FNV digest
// plus a length, so two distinct slices could alias and silently serve
// the wrong frequency assignment. The v2 key encodes the exact sorted
// vertex set, so distinct sets can never map to the same key. The test
// stresses the aliasing families a digest or a sloppy encoding would
// merge: every subset of a small universe (exhaustive injectivity), sets
// with equal length and equal sum (defeats additive hashes), multi-digit
// concatenation ambiguity (defeats separator-free encodings), and
// duplicate-vs-distinct multiplicity.
func TestSliceKeyCollisionProof(t *testing.T) {
	seen := make(map[string][]int)
	record := func(verts []int) {
		k := SliceKey("sig", 2, 2, verts)
		sorted := append([]int(nil), verts...)
		sort.Ints(sorted)
		if prev, ok := seen[k]; ok && !reflect.DeepEqual(prev, sorted) {
			t.Fatalf("collision: %v and %v share key %q", prev, sorted, k)
		}
		seen[k] = sorted
	}

	// Exhaustive: all 2^16 subsets of {0..15}.
	for mask := 0; mask < 1<<16; mask++ {
		var verts []int
		for v := 0; v < 16; v++ {
			if mask&(1<<v) != 0 {
				verts = append(verts, v)
			}
		}
		record(verts)
	}

	// Concatenation-ambiguity pairs: {1,2,3} vs {12,3} vs {1,23} vs {123}.
	for _, verts := range [][]int{{1, 2, 3}, {12, 3}, {1, 23}, {123}, {0x12, 3}, {1, 0x23}} {
		record(verts)
	}

	// Equal length + equal sum, and duplicate multiplicity.
	for _, verts := range [][]int{{0, 3}, {1, 2}, {0, 1, 5}, {0, 2, 4}, {1, 1, 4}, {2, 2, 2}, {1, 2, 2}, {1, 1, 2}} {
		record(verts)
	}

	// Randomized large sets (vertex ids up to realistic coupler counts).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(40)
		verts := make([]int, n)
		for j := range verts {
			verts[j] = rng.Intn(2048)
		}
		record(verts)
	}
}

// TestSliceKeyVersioned checks that the key carries the key-scheme version
// so a snapshot written under an older scheme can never satisfy a v2
// lookup (Load additionally rejects such snapshots wholesale).
func TestSliceKeyVersioned(t *testing.T) {
	k := SliceKey("sig", 2, 2, []int{1, 2})
	if want := fmt.Sprintf("v%d|", KeyVersion); !strings.HasPrefix(k, want) {
		t.Fatalf("key %q does not carry version prefix %q", k, want)
	}
}

// assertExactFields fails unless typ has exactly the named fields. Every
// key/signature in this package was written against a specific struct
// layout; when a field is added, this guard forces the author to fold it
// into the key (or consciously exclude it), update the expected list and
// bump KeyVersion — otherwise the new field would silently alias cache
// entries across configurations that differ only in it.
func assertExactFields(t *testing.T, typ reflect.Type, keyFunc string, want ...string) {
	t.Helper()
	var got []string
	for i := 0; i < typ.NumField(); i++ {
		got = append(got, typ.Field(i).Name)
	}
	sort.Strings(got)
	sorted := append([]string(nil), want...)
	sort.Strings(sorted)
	if !reflect.DeepEqual(got, sorted) {
		t.Fatalf("%s has fields %v, but %s was written against %v.\n"+
			"Fold the new field into %s (or document its exclusion here), "+
			"update this list, and bump compile.KeyVersion.",
			typ, got, keyFunc, sorted, keyFunc)
	}
}

// TestKeySchemaDrift pins the struct layouts the cache keys hash. See
// assertExactFields for the contract.
func TestKeySchemaDrift(t *testing.T) {
	// All four Config fields are folded into SMTKey.
	assertExactFields(t, reflect.TypeOf(smt.Config{}), "SMTKey",
		"Lo", "Hi", "Alpha", "MinDelta")

	// All Device fields are folded into DeviceSignature: Name, Qubits,
	// Coupling (via the sorted edge list) and Coords (the parking stagger
	// pattern reads them).
	assertExactFields(t, reflect.TypeOf(topology.Device{}), "DeviceSignature",
		"Name", "Qubits", "Coupling", "Coords")
	assertExactFields(t, reflect.TypeOf(topology.Coord{}), "DeviceSignature",
		"Row", "Col")

	// SystemSignature folds Device, Qubits (every Transmon field) and the
	// dense Coupling slice (hashed in coupler-id order, which is Edges()
	// order). Params is excluded on purpose: phys.NewSystem copies every
	// Params field the compilers read into the Transmon draws (OmegaMax,
	// EC, Asymmetry, T1, T2) and the dense Coupling slice (G0); OmegaSigma
	// only shapes the sampling. If System or Transmon gains a field, fold
	// it in or extend this justification.
	assertExactFields(t, reflect.TypeOf(phys.System{}), "SystemSignature",
		"Device", "Qubits", "Coupling", "Params")
	assertExactFields(t, reflect.TypeOf(phys.Transmon{}), "SystemSignature",
		"OmegaMax", "EC", "Asymmetry", "T1", "T2")

	// The circ region is keyed by circuit.Signature, which folds NumQubits
	// and every Gate field (Kind, Qubits, Theta).
	assertExactFields(t, reflect.TypeOf(circuit.Circuit{}), "circuit.Signature",
		"NumQubits", "Gates")
	assertExactFields(t, reflect.TypeOf(circuit.Gate{}), "circuit.Signature",
		"Kind", "Qubits", "Theta")

	// The route region is keyed by RouteKey, which folds the circuit and
	// device signatures plus every mapping.Options field: the placement
	// name and the full router config (algorithm, lookahead window and
	// decay).
	assertExactFields(t, reflect.TypeOf(mapping.Options{}), "RouteKey",
		"Placement", "Router")
	assertExactFields(t, reflect.TypeOf(mapping.RouterConfig{}), "RouteKey",
		"Algorithm", "Window", "Decay")

	// The snapshot codec structs are pinned for a different failure mode:
	// they are on-disk gob shapes, so a field added to the in-memory type
	// without a codec twin (plus a SnapshotVersion bump and a migration
	// entry in migrate.go) would silently drop data across a Save/Load
	// round trip rather than alias a key. persistedRoute flattens
	// mapping.Result and mapping.Mapping field for field, so those two are
	// pinned alongside it.
	assertExactFields(t, reflect.TypeOf(diskSnapshot{}), "the snapshot codec (Save/Load)",
		"Magic", "Version", "KeyVersion", "SMT", "Park",
		"Slice", "SliceComp", "Static", "Circuits", "Route", "Circ")
	assertExactFields(t, reflect.TypeOf(persistedRoute{}), "the snapshot codec (Save/Load)",
		"RoutedSig", "LogToPhys", "PhysToLog", "Inserted", "SwapCount")
	assertExactFields(t, reflect.TypeOf(mapping.Result{}), "the snapshot codec (persistedRoute)",
		"Routed", "Final", "Inserted", "SwapCount")
	assertExactFields(t, reflect.TypeOf(mapping.Mapping{}), "the snapshot codec (persistedRoute)",
		"LogToPhys", "PhysToLog")
}

// TestRouteKeyDistinguishesConfigs checks RouteKey injectivity across the
// configuration dimensions and its normalization: configurations that
// WithDefaults maps to the same effective pipeline share a key, every
// other pair differs, and the key carries the key-scheme version plus the
// exact circuit dimensions (the circ-region discipline: a digest
// collision between differently-shaped circuits can never alias).
func TestRouteKeyDistinguishesConfigs(t *testing.T) {
	circ := circuit.New(4)
	circ.H(0).CZ(0, 1).CZ(2, 3)
	seen := map[string]string{}
	record := func(label string, o mapping.Options) {
		k := RouteKey(circ, "dsig", o)
		if prev, ok := seen[k]; ok {
			t.Fatalf("configs %q and %q share route key %q", prev, label, k)
		}
		seen[k] = label
	}
	record("default", mapping.Options{})
	record("snake", mapping.Options{Placement: mapping.PlaceSnake})
	record("degree", mapping.Options{Placement: mapping.PlaceDegree})
	record("lookahead", mapping.Options{Router: mapping.RouterConfig{Algorithm: mapping.RouterLookahead}})
	record("lookahead-w4", mapping.Options{Router: mapping.RouterConfig{Algorithm: mapping.RouterLookahead, Window: 4}})
	record("lookahead-d.25", mapping.Options{Router: mapping.RouterConfig{Algorithm: mapping.RouterLookahead, Decay: 0.25}})

	// Normalization: the zero value, the explicit defaults, and a greedy
	// config with stale lookahead tuning all name the same pipeline.
	def := RouteKey(circ, "dsig", mapping.Options{})
	for label, o := range map[string]mapping.Options{
		"explicit":     {Placement: mapping.PlaceIdentity, Router: mapping.RouterConfig{Algorithm: mapping.RouterGreedy}},
		"stale-tuning": {Router: mapping.RouterConfig{Algorithm: mapping.RouterGreedy, Window: 9, Decay: 0.9}},
	} {
		if k := RouteKey(circ, "dsig", o); k != def {
			t.Fatalf("%s config key %q != default key %q", label, k, def)
		}
	}
	if want := fmt.Sprintf("v%d|", KeyVersion); !strings.HasPrefix(def, want) {
		t.Fatalf("route key %q does not carry version prefix %q", def, want)
	}
	// Distinct circuits and devices must never alias, and the key encodes
	// the exact qubit and gate counts ahead of the digest.
	other := circuit.New(4)
	other.H(0).CZ(0, 1).CZ(2, 3).H(3)
	if RouteKey(other, "dsig", mapping.Options{}) == def || RouteKey(circ, "dsig2", mapping.Options{}) == def {
		t.Fatal("route key ignores the circuit or device identity")
	}
	if want := fmt.Sprintf("v%d|%d|%d|", KeyVersion, circ.NumQubits, len(circ.Gates)); !strings.HasPrefix(def, want) {
		t.Fatalf("route key %q does not encode the exact circuit dimensions %q", def, want)
	}
}

// TestAnalysisMemoSharesAcrossAllocations checks the circ region's
// contract: content-identical circuits (distinct allocations, as produced
// by per-strategy decomposition) share one Analysis, while circuits that
// differ in any content component do not.
func TestAnalysisMemoSharesAcrossAllocations(t *testing.T) {
	build := func() *circuit.Circuit {
		c := circuit.New(4)
		c.H(0).CZ(0, 1).CZ(2, 3).RZ(3, 0.7)
		return c
	}
	ctx := NewContext(1)
	a1 := ctx.Analysis(build())
	a2 := ctx.Analysis(build())
	if a1 != a2 {
		t.Fatal("content-identical circuits must share one cached Analysis")
	}
	other := circuit.New(4)
	other.H(0).CZ(0, 1).CZ(2, 3).RZ(3, 0.8)
	if ctx.Analysis(other) == a1 {
		t.Fatal("distinct circuits must not share an Analysis")
	}
	st := ctx.Stats()[RegionCircuit]
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("circ region stats = %+v, want 1 hit / 2 misses", st)
	}
	// A nil context analyzes directly (no cache probe, no key built).
	var nilCtx *Context
	if nilCtx.Analysis(build()) == nil {
		t.Fatal("nil-context Analysis must still analyze")
	}
}

// TestRouteMemoShares checks the route region's contract: content-
// identical circuits on the same device and options share one routed
// Result across allocations; a different placement, router, circuit or
// device resolves to a different entry; and a nil context still routes.
func TestRouteMemoShares(t *testing.T) {
	build := func() *circuit.Circuit {
		c := circuit.New(9)
		c.H(0).CNOT(0, 8).CZ(3, 5)
		return c
	}
	dev := topology.SquareGrid(9)
	ctx := NewContext(1)
	r1, err := ctx.Route(build(), dev, mapping.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ctx.Route(build(), dev, mapping.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("content-identical route requests must share one cached Result")
	}
	if r1.SwapCount == 0 {
		t.Fatal("corner-to-corner CNOT should have inserted swaps")
	}
	r3, err := ctx.Route(build(), dev, mapping.Options{Placement: mapping.PlaceSnake})
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Fatal("different placements must not share a route entry")
	}
	r4, err := ctx.Route(build(), dev, mapping.Options{Router: mapping.RouterConfig{Algorithm: mapping.RouterLookahead}})
	if err != nil {
		t.Fatal(err)
	}
	if r4 == r1 {
		t.Fatal("different routers must not share a route entry")
	}
	st := ctx.Stats()[RegionRoute]
	if st.Hits != 1 || st.Misses != 3 {
		t.Fatalf("route region stats = %+v, want 1 hit / 3 misses", st)
	}
	var nilCtx *Context
	if r, err := nilCtx.Route(build(), dev, mapping.Options{}); err != nil || r == nil {
		t.Fatalf("nil-context Route must still route: %v", err)
	}
	// An unroutable request must error and never cache.
	wide := circuit.New(16)
	wide.H(0)
	if _, err := ctx.Route(wide, topology.SquareGrid(9), mapping.Options{}); err == nil {
		t.Fatal("oversized circuit must fail to route")
	}
}

// TestDeviceSignatureCoversCoords is the regression test for the v1
// signature gap: staggerOffset reads qubit coordinates, so two devices
// identical except for coordinates must not share parking cache entries.
func TestDeviceSignatureCoversCoords(t *testing.T) {
	a := topology.Linear(4)
	b := topology.Linear(4)
	if DeviceSignature(a) != DeviceSignature(b) {
		t.Fatal("identical devices must share a signature")
	}
	b.Coords[2] = topology.Coord{Row: 5, Col: 7}
	if DeviceSignature(a) == DeviceSignature(b) {
		t.Fatal("devices differing only in coordinates must not share a signature")
	}
}
