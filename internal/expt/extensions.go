package expt

import (
	"fmt"

	"fastsc/internal/compile"
	"fastsc/internal/core"
	"fastsc/internal/schedule"
)

// ExtGmonResult carries the §VIII extension study: ColorDynamic applied on
// tunable-coupler hardware versus the plain gmon baseline, across the
// residual-coupling sweep of Fig 12.
type ExtGmonResult struct {
	Table *Table
	// SuccessG and SuccessCDG are indexed like Residuals.
	SuccessG, SuccessCDG map[string][]float64
	Residuals            []float64
}

// ExtGmonDynamic runs the extension experiment: "complementing the Gmon
// architecture with ColorDynamic optimization" (§VIII). When couplers leak
// (r > 0), the baseline's simultaneous gates sit on the static palette
// while ColorDynamic-G additionally spreads them per slice; the frequency-
// aware variant should therefore degrade more slowly with r.
func ExtGmonDynamic(ctx *compile.Context) (*ExtGmonResult, error) {
	residuals := []float64{0, 0.2, 0.4, 0.6, 0.8}
	strategies := []string{core.BaselineG, "ColorDynamic-G"}
	suite := []Benchmark{xebBench(16, 10), xebBench(16, 15)}
	var jobs []core.BatchJob
	for _, b := range suite {
		sys := GridSystem(b.Qubits)
		circ := b.Circuit(sys.Device)
		for _, s := range strategies {
			for _, r := range residuals {
				cfg := jobConfig(b)
				cfg.Schedule = schedule.Options{Residual: r}
				jobs = append(jobs, core.BatchJob{
					Key:      fmt.Sprintf("%s/%s/r=%.1f", b.Name, s, r),
					Circuit:  circ,
					System:   sys,
					Strategy: s,
					Config:   cfg,
				})
			}
		}
	}
	results, err := core.BatchCollect(ctx, jobs)
	if err != nil {
		return nil, fmt.Errorf("ext-gmon: %w", err)
	}

	res := &ExtGmonResult{
		SuccessG:   map[string][]float64{},
		SuccessCDG: map[string][]float64{},
		Residuals:  residuals,
	}
	cols := []string{"benchmark", "strategy"}
	for _, r := range residuals {
		cols = append(cols, fmt.Sprintf("r=%.1f", r))
	}
	t := &Table{
		ID:      "ext-gmon",
		Title:   "Extension (§VIII): ColorDynamic on tunable-coupler hardware vs Baseline G",
		Columns: cols,
	}
	for _, b := range suite {
		rowG := []string{b.Name, core.BaselineG}
		rowCDG := []string{b.Name, "ColorDynamic-G"}
		for _, r := range residuals {
			g := results[fmt.Sprintf("%s/%s/r=%.1f", b.Name, core.BaselineG, r)]
			cdg := results[fmt.Sprintf("%s/%s/r=%.1f", b.Name, "ColorDynamic-G", r)]
			res.SuccessG[b.Name] = append(res.SuccessG[b.Name], g.Report.Success)
			res.SuccessCDG[b.Name] = append(res.SuccessCDG[b.Name], cdg.Report.Success)
			rowG = append(rowG, fmtG(g.Report.Success))
			rowCDG = append(rowCDG, fmtG(cdg.Report.Success))
		}
		t.Rows = append(t.Rows, rowG, rowCDG)
	}
	t.Notes = append(t.Notes,
		"with leaky couplers, program-specific frequency tuning slows the Fig 12 decay — the paper's proposed extension")
	res.Table = t
	return res, nil
}
