// QAOA MAX-CUT end to end: generate a random MAX-CUT instance, compile it
// under every strategy of Table I, compare the worst-case success
// estimates, and cross-check the best and worst strategies with noisy
// state-vector simulation.
//
// Run with: go run ./examples/qaoa_maxcut
package main

import (
	"fmt"
	"log"
	"sort"

	"fastsc/internal/bench"
	"fastsc/internal/core"
	"fastsc/internal/phys"
	"fastsc/internal/sim"
	"fastsc/internal/topology"
)

func main() {
	const (
		n    = 9
		seed = 11
	)
	dev := topology.SquareGrid(n)
	sys := phys.NewSystem(dev, phys.DefaultParams(), 42)
	prog := bench.QAOA(n, seed)
	fmt.Printf("QAOA MAX-CUT on %d qubits: %d gates (%d two-qubit) before routing\n",
		n, prog.NumGates(), prog.TwoQubitGateCount())

	results, err := core.CompileAll(prog, sys, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	type row struct {
		name    string
		success float64
	}
	var rows []row
	for name, res := range results {
		rows = append(rows, row{name, res.Report.Success})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].success > rows[j].success })
	fmt.Println("\nstrategy ranking by worst-case success estimate:")
	for i, r := range rows {
		res := results[r.name]
		fmt.Printf("  %d. %-13s success %.4g  depth %4d  swaps %d  compile %s\n",
			i+1, r.name, r.success, res.Schedule.Depth(), res.SwapCount,
			res.CompileTime.Round(1000))
	}

	// Cross-check the extremes with trajectory simulation.
	fmt.Println("\nnoisy simulation cross-check (120 trajectories):")
	for _, name := range []string{rows[0].name, rows[len(rows)-1].name} {
		opt := sim.DefaultTrajectoryOptions(seed)
		opt.Shots = 120
		traj := sim.RunNoisy(results[name].Schedule, opt)
		fmt.Printf("  %-13s heuristic %.4g  simulated fidelity %.4g ± %.4g\n",
			name, results[name].Report.Success, traj.MeanFidelity, traj.StdErr)
	}
}
