package phys

import "math"

// ResidualCoupling returns the residual coupling strength g'(δω) between two
// detuned transmons (paper eq 5): g' = g₀²/δω, clamped to g₀ near resonance
// (the perturbative expression diverges as δω → 0 while the physical
// coupling saturates at the bare g₀).
func ResidualCoupling(g0, deltaOmega float64) float64 {
	d := math.Abs(deltaOmega)
	if d <= g0 {
		return g0
	}
	return g0 * g0 / d
}

// DressedCoupling returns the effective interaction strength of two coupled
// qubits at detuning δω, computed from the avoided-crossing splitting of the
// single-excitation doublet {|01⟩, |10⟩}:
//
//	g_eff(δω) = (√(δω² + 4g₀²) − |δω|) / 2
//
// It equals g₀ on resonance and decays as g₀²/δω far from resonance — the
// exact curve of Fig 2.
func DressedCoupling(g0, deltaOmega float64) float64 {
	d := math.Abs(deltaOmega)
	return (math.Sqrt(d*d+4*g0*g0) - d) / 2
}

// TransitionProbability returns the detuned-Rabi population-transfer
// probability between two states coupled with strength g (GHz) at detuning
// delta (GHz) after time t (ns):
//
//	P(t) = (4g² / (δ² + 4g²)) · sin²(π·√(δ² + 4g²)·t)
//
// On resonance this is sin²(π·√(4g²)·t) = sin²(2π·g·t/... )  — a complete
// transfer first occurs at t = 1/(4g). This produces the chevron patterns of
// Fig 15 when swept over flux (δ) and time.
func TransitionProbability(g, delta, t float64) float64 {
	omega := math.Sqrt(delta*delta + 4*g*g) // generalized Rabi frequency, GHz
	if omega == 0 {
		return 0
	}
	amp := 4 * g * g / (omega * omega)
	s := math.Sin(math.Pi * omega * t)
	return amp * s * s
}

// CrosstalkError returns the unwanted population exchange between two
// spectrally adjacent channels separated by δω after time t, driven by the
// residual coupling g'(δω) (the paper's eq 6; the printed equation contains
// a typo — the error is the stray transition probability sin²(g't), not its
// complement, which would diverge to 1 at infinite detuning):
//
//	ε(δω, t) = sin²(2π · g'(δω)/2 · t)  — i.e. TransitionProbability with
//	g = g'(δω) on resonance of the parasitic channel.
func CrosstalkError(g0, deltaOmega, t float64) float64 {
	gp := ResidualCoupling(g0, deltaOmega)
	// The parasitic exchange is a resonant Rabi oscillation at the residual
	// coupling rate; at full resonance (δω → 0) this reduces to the bare
	// swap oscillation, reaching ε = 1 at the iSWAP time 1/(4g₀).
	return TransitionProbability(gp, 0, t)
}

// Native two-qubit gate durations (Appendix B). With coupling g in GHz the
// resonant exchange completes its first full transfer at t = 1/(4g); √iSWAP
// stops halfway, and CZ uses the |11⟩↔|20⟩ channel whose matrix element is
// √2·g and must complete a full return trip.

// ISwapTime returns the duration of an iSWAP at coupling g (GHz): t = 1/(4g).
func ISwapTime(g float64) float64 { return 1 / (4 * g) }

// SqrtISwapTime returns the duration of a √iSWAP: t = 1/(8g).
func SqrtISwapTime(g float64) float64 { return 1 / (8 * g) }

// CZTime returns the duration of a CZ via the |11⟩↔|20⟩ avoided crossing:
// the coupling is √2·g and the population must complete a full cycle,
// t = 1/(√2·2g).
func CZTime(g float64) float64 { return 1 / (2 * math.Sqrt2 * g) }

// CouplingAt scales the bare coupling with the interaction frequency. The
// paper notes t_gate ~ 1/ω (§V-B3): higher interaction frequencies couple
// more strongly, hence gate faster. We model g(ω) = g₀ · ω/ωref.
func CouplingAt(g0, omega, omegaRef float64) float64 {
	if omegaRef <= 0 {
		return g0
	}
	return g0 * omega / omegaRef
}
