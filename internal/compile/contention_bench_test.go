package compile

import (
	"fmt"
	"testing"
)

// BenchmarkCacheContention measures the hot-path cost of the cache under
// concurrent access at increasing shard counts. shards=1 is exactly the
// pre-v2 single-mutex cache (one shard, one lock, one LRU list), so the
// shards=1 vs shards=N sub-benchmarks quantify the sharding win. The
// workload is the engine's: read-mostly lookups over a recurring working
// set with occasional inserts, from many goroutines (SetParallelism(8)
// runs 8×GOMAXPROCS goroutines, covering the "8+ goroutines" regime even
// on small CI hosts).
func BenchmarkCacheContention(b *testing.B) {
	const workingSet = 4096
	keys := make([]string, workingSet)
	for i := range keys {
		keys[i] = fmt.Sprintf("v2|sig|2|2|%x", i)
	}
	shardCounts := []int{1, 8, defaultShardCount()}
	if shardCounts[2] <= 8 {
		shardCounts = shardCounts[:2]
	}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := NewCacheSharded(2*workingSet, shards)
			for i, k := range keys {
				c.Put(RegionSlice, k, i)
			}
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					i++
					k := keys[(i*31)%workingSet]
					if i%64 == 0 {
						c.Put(RegionSlice, k, i)
						continue
					}
					if _, ok := c.Get(RegionSlice, k); !ok {
						b.Error("prefilled key missed")
						return
					}
				}
			})
		})
	}
}

// BenchmarkCacheDoSingleFlight measures Do's fast path (hits through the
// single-flight guard) — the cost every memoized solver lookup pays.
func BenchmarkCacheDoSingleFlight(b *testing.B) {
	c := NewCache(1024)
	c.Put(RegionSlice, "k", 1)
	b.SetParallelism(8)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Do(RegionSlice, "k", func() (any, error) { return 1, nil }); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
