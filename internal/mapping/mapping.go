// Package mapping places logical circuits onto physical devices and routes
// two-qubit gates through SWAP insertion. Qubit mapping is not the paper's
// contribution (it cites [34], [39]), but every benchmark needs it: QAOA's
// random MAX-CUT edges and BV's star-shaped CNOTs rarely land on couplers.
// The router is the standard greedy shortest-path SWAP inserter used by
// baseline compilers.
package mapping

import (
	"fmt"
	"sort"

	"fastsc/internal/circuit"
	"fastsc/internal/topology"
)

// Mapping is a bijection between logical and physical qubits.
type Mapping struct {
	LogToPhys []int
	PhysToLog []int
}

// Identity returns the identity mapping over n logical qubits on a device
// with at least n physical qubits.
func Identity(nLogical, nPhysical int) *Mapping {
	if nLogical > nPhysical {
		panic(fmt.Sprintf("mapping: %d logical qubits exceed %d physical", nLogical, nPhysical))
	}
	m := &Mapping{
		LogToPhys: make([]int, nLogical),
		PhysToLog: make([]int, nPhysical),
	}
	for p := range m.PhysToLog {
		m.PhysToLog[p] = -1
	}
	for l := 0; l < nLogical; l++ {
		m.LogToPhys[l] = l
		m.PhysToLog[l] = l
	}
	return m
}

// FromOrder places logical qubit i on physical qubit order[i].
func FromOrder(nLogical int, order []int, nPhysical int) *Mapping {
	if nLogical > len(order) {
		panic(fmt.Sprintf("mapping: order has %d entries for %d logical qubits", len(order), nLogical))
	}
	m := &Mapping{
		LogToPhys: make([]int, nLogical),
		PhysToLog: make([]int, nPhysical),
	}
	for p := range m.PhysToLog {
		m.PhysToLog[p] = -1
	}
	for l := 0; l < nLogical; l++ {
		p := order[l]
		if p < 0 || p >= nPhysical {
			panic(fmt.Sprintf("mapping: physical qubit %d out of range", p))
		}
		if m.PhysToLog[p] != -1 {
			panic(fmt.Sprintf("mapping: physical qubit %d assigned twice", p))
		}
		m.LogToPhys[l] = p
		m.PhysToLog[p] = l
	}
	return m
}

// Clone deep-copies the mapping.
func (m *Mapping) Clone() *Mapping {
	c := &Mapping{
		LogToPhys: make([]int, len(m.LogToPhys)),
		PhysToLog: make([]int, len(m.PhysToLog)),
	}
	copy(c.LogToPhys, m.LogToPhys)
	copy(c.PhysToLog, m.PhysToLog)
	return c
}

// SwapPhys updates the mapping after a routing SWAP between physical qubits
// a and b (either may currently be unoccupied).
func (m *Mapping) SwapPhys(a, b int) {
	la, lb := m.PhysToLog[a], m.PhysToLog[b]
	m.PhysToLog[a], m.PhysToLog[b] = lb, la
	if la != -1 {
		m.LogToPhys[la] = b
	}
	if lb != -1 {
		m.LogToPhys[lb] = a
	}
}

// SnakeOrder returns the device qubits in boustrophedon (snake) order by
// coordinates: row 0 left-to-right, row 1 right-to-left, and so on. Placing
// a chain along this order makes every consecutive logical pair physically
// coupled on a grid — the natural embedding for ISING and QGAN chains.
func SnakeOrder(dev *topology.Device) []int {
	qs := dev.QubitsSorted()
	sort.SliceStable(qs, func(i, j int) bool {
		ci, cj := dev.Coords[qs[i]], dev.Coords[qs[j]]
		if ci.Row != cj.Row {
			return ci.Row < cj.Row
		}
		if ci.Row%2 == 0 {
			return ci.Col < cj.Col
		}
		return ci.Col > cj.Col
	})
	return qs
}

// Result is a routed circuit over physical qubits.
type Result struct {
	// Routed acts on the device's physical qubits; every two-qubit gate
	// touches a coupler.
	Routed *circuit.Circuit
	// Final is the logical-to-physical mapping after execution.
	Final *Mapping
	// Inserted flags, per gate of Routed, whether the gate is a routing
	// SWAP added by the router (true) or a translated program gate.
	Inserted []bool
	// SwapCount is the number of routing SWAPs inserted.
	SwapCount int
}

// Route translates c onto dev starting from the given initial mapping
// (Identity when nil). Two-qubit gates between uncoupled physical qubits
// trigger SWAP insertion along a shortest coupling path. The returned
// circuit has dev.Qubits qubits.
func Route(c *circuit.Circuit, dev *topology.Device, initial *Mapping) (*Result, error) {
	if c.NumQubits > dev.Qubits {
		return nil, fmt.Errorf("mapping: circuit needs %d qubits, device %q has %d",
			c.NumQubits, dev.Name, dev.Qubits)
	}
	m := initial
	if m == nil {
		m = Identity(c.NumQubits, dev.Qubits)
	} else {
		m = m.Clone()
	}
	out := circuit.New(dev.Qubits)
	var inserted []bool
	swaps := 0
	for _, g := range c.Gates {
		if g.Arity() == 1 {
			out.Add(circuit.Gate{Kind: g.Kind, Qubits: []int{m.LogToPhys[g.Qubits[0]]}, Theta: g.Theta})
			inserted = append(inserted, false)
			continue
		}
		pa, pb := m.LogToPhys[g.Qubits[0]], m.LogToPhys[g.Qubits[1]]
		if !dev.Coupling.HasEdge(pa, pb) {
			path := dev.Coupling.ShortestPath(pa, pb)
			if path == nil {
				return nil, fmt.Errorf("mapping: no path between physical qubits %d and %d on %q",
					pa, pb, dev.Name)
			}
			// Walk pa toward pb, stopping one hop short.
			for i := 0; i+2 < len(path); i++ {
				out.SWAP(path[i], path[i+1])
				inserted = append(inserted, true)
				m.SwapPhys(path[i], path[i+1])
				swaps++
			}
			pa = m.LogToPhys[g.Qubits[0]]
			pb = m.LogToPhys[g.Qubits[1]]
		}
		out.Add(circuit.Gate{Kind: g.Kind, Qubits: []int{pa, pb}, Theta: g.Theta})
		inserted = append(inserted, false)
	}
	return &Result{Routed: out, Final: m, Inserted: inserted, SwapCount: swaps}, nil
}
