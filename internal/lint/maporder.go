package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrderAnalyzer flags `for range` loops over maps whose bodies feed an
// order-sensitive sink: appending to a slice declared outside the loop,
// writing to a writer/builder/hasher declared outside the loop, sending
// on an outer channel, or storing through an outer counter index. Go map
// iteration order is random per run, so any such loop makes output or a
// hash nondeterministic — the exact bug class that once made fig13's
// express-XEB rows depend on map iteration order. Accumulating into
// another map, or counting/summing, is commutative and not flagged; an
// append whose destination is sorted immediately after the loop (the
// collect-then-sort idiom) is recognized and not flagged.
var MapOrderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration feeding order-sensitive sinks (appends, writers, " +
		"hashes, channel sends) unless the result is sorted",
	Run: runMapOrder,
}

// sinkMethods are method names that write a sequential stream: calling
// one on a value that outlives the loop makes the stream order-dependent.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "Encode": true,
}

func runMapOrder(pass *Pass) {
	inspectStack(pass.Files, func(n ast.Node, stack []ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMap(pass.TypeOf(rs.X)) {
			return
		}
		for _, s := range mapRangeSinks(pass, rs) {
			if s.sortable && sortedAfter(pass, stack, rs, s.obj) {
				continue
			}
			pass.Reportf(rs.For,
				"iteration over map %s feeds %s; map order is nondeterministic — iterate sorted keys or sort the result",
				render(rs.X), s.what)
		}
	})
}

type mapSink struct {
	what     string
	obj      types.Object
	sortable bool // an append, excusable by a post-loop sort
}

// mapRangeSinks collects the order-sensitive sinks inside rs's body.
// "Outside" means declared before the range statement: per-iteration
// locals reset every round and carry no cross-iteration order.
func mapRangeSinks(pass *Pass, rs *ast.RangeStmt) []mapSink {
	var sinks []mapSink
	outside := func(e ast.Expr) (types.Object, bool) {
		obj := rootObject(pass.Info, e)
		if obj == nil {
			return nil, false
		}
		return obj, !declaredWithin(obj, rs.Pos(), rs.End())
	}
	// counters incremented in the body, for the s[i] = v; i++ idiom.
	counters := map[types.Object]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				counters[pass.ObjectOf(id)] = true
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && (n.Tok.String() == "+=" || n.Tok.String() == "-=") {
				if id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok {
					counters[pass.ObjectOf(id)] = true
				}
			}
		}
		return true
	})
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinCall(pass.Info, n, "append") && len(n.Args) > 0 {
				if obj, out := outside(n.Args[0]); out {
					sinks = append(sinks, mapSink{"an append to " + quote(obj.Name()), obj, true})
				}
				return true
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if fn := calleeObject(pass.Info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
					name := fn.Name()
					switch {
					case strings.HasPrefix(name, "Print"):
						sinks = append(sinks, mapSink{what: "fmt." + name + " output"})
					case strings.HasPrefix(name, "Fprint") && len(n.Args) > 0:
						if obj, out := outside(n.Args[0]); out {
							sinks = append(sinks, mapSink{what: "a fmt." + name + " write to " + quote(obj.Name()), obj: obj})
						}
					}
					return true
				}
				if recvT := pass.TypeOf(sel.X); recvT != nil {
					if sinkMethods[sel.Sel.Name] || isNamedType(recvT, "fastsc/internal/compile", "hasher") {
						if obj, out := outside(sel.X); out {
							sinks = append(sinks, mapSink{what: "a " + sel.Sel.Name + " on " + quote(obj.Name()), obj: obj})
						}
					}
				}
			}
		case *ast.SendStmt:
			if obj, out := outside(n.Chan); out {
				sinks = append(sinks, mapSink{what: "a send on " + quote(obj.Name()), obj: obj})
			}
		case *ast.AssignStmt:
			// s[i] = v with outer s and a counter index: positional append.
			for _, lhs := range n.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				id, ok := ast.Unparen(ix.Index).(*ast.Ident)
				if !ok || !counters[pass.ObjectOf(id)] {
					continue
				}
				if obj, out := outside(ix.X); out {
					sinks = append(sinks, mapSink{"a counter-indexed store into " + quote(obj.Name()), obj, true})
				}
			}
		}
		return true
	})
	return sinks
}

// sortedAfter reports whether a statement following rs — in any enclosing
// statement list, so a sort after an outer loop that contains rs counts —
// sorts the slice held by obj, which makes the in-loop append order
// irrelevant.
func sortedAfter(pass *Pass, stack []ast.Node, rs *ast.RangeStmt, obj types.Object) bool {
	if obj == nil {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		var list []ast.Stmt
		switch s := stack[i].(type) {
		case *ast.BlockStmt:
			list = s.List
		case *ast.CaseClause:
			list = s.Body
		case *ast.CommClause:
			list = s.Body
		default:
			continue
		}
		for j, stmt := range list {
			if stmt.Pos() <= rs.Pos() && rs.End() <= stmt.End() {
				for _, after := range list[j+1:] {
					if sortsObject(pass, after, obj) {
						return true
					}
				}
				break // keep walking outward: a post-outer-loop sort also excuses
			}
		}
	}
	return false
}

// sortsObject reports whether stmt contains a call that sorts obj's
// slice: a sort/slices package function or any function whose name
// mentions sorting (sortInts, sortByCriticality, ...), taking obj as an
// argument.
func sortsObject(pass *Pass, stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := calleeObject(pass.Info, call)
		if fn == nil {
			return true
		}
		pkgPath := ""
		if fn.Pkg() != nil {
			pkgPath = fn.Pkg().Path()
		}
		sortish := ((pkgPath == "sort" || pkgPath == "slices") && strings.Contains(strings.ToLower(fn.Name()), "sort")) ||
			(pkgPath == "sort" || pkgPath == "slices") && (fn.Name() == "Strings" || fn.Name() == "Ints" || fn.Name() == "Float64s" || fn.Name() == "Slice" || fn.Name() == "SliceStable") ||
			strings.Contains(strings.ToLower(fn.Name()), "sort")
		if !sortish {
			return true
		}
		for _, arg := range call.Args {
			if rootObject(pass.Info, arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// render prints a short source form of e for messages.
func render(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return quote(e.Name)
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			return quote(x.Name + "." + e.Sel.Name)
		}
		return quote("…." + e.Sel.Name)
	case *ast.CallExpr:
		return "returned by " + render(e.Fun)
	}
	return "value"
}
