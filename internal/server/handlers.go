package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// routes mounts the API surface documented in docs/api.md.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/compile", s.handleCompileStream)
	s.mux.HandleFunc("POST /v1/batches", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/batches/{id}", s.handlePoll)
	s.mux.HandleFunc("GET /v1/meta", s.handleMeta)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
}

// decodeRequest reads and validates a CompileRequest body.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*parsedBatch, *apiError) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req CompileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, &apiError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return nil, badRequest("invalid JSON: %v", err)
	}
	return s.parseRequest(&req)
}

// handleCompileStream serves POST /v1/compile: parse, admit, then stream
// one NDJSON ResultLine per job in completion order followed by the
// DoneLine. The HTTP status is committed before the first result, so
// per-job failures arrive as "error" lines, not as an HTTP error.
func (s *Server) handleCompileStream(w http.ResponseWriter, r *http.Request) {
	s.mStreams.Add(1)
	pb, aerr := s.decodeRequest(w, r)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	release, aerr := s.admit()
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	defer release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(line any) error {
		if err := enc.Encode(line); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	s.runBatch(r.Context(), pb, "", emit, nil)
}

// handleSubmit serves POST /v1/batches: parse, admit, then run the batch
// in the background and acknowledge with 202 and a poll URL. Accepted
// batches always run to completion (they are not tied to the submitting
// connection), including across a drain.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.mSubmits.Add(1)
	pb, aerr := s.decodeRequest(w, r)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	release, aerr := s.admit()
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	rec := s.store.add(len(pb.jobs))
	go func() {
		defer release()
		done := s.runBatch(context.Background(), pb, rec.id, rec.appendLine, rec.setRunning)
		rec.finish(done)
	}()
	w.Header().Set("Location", "/v1/batches/"+rec.id)
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		Batch:  rec.id,
		Status: "queued",
		Jobs:   len(pb.jobs),
		URL:    "/v1/batches/" + rec.id,
	})
}

// handlePoll serves GET /v1/batches/{id}.
func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	s.mPolls.Add(1)
	rec := s.store.get(r.PathValue("id"))
	if rec == nil {
		writeError(w, &apiError{status: http.StatusNotFound,
			msg: fmt.Sprintf("unknown batch %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, rec.snapshot())
}

// handleMeta serves GET /v1/meta.
func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, meta())
}

// handleHealth serves GET /healthz: 200 "ok" while accepting, 503
// "draining" afterwards — the signal load balancers use to rotate a
// terminating instance out before its in-flight batches finish.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ok\n")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, aerr *apiError) {
	if aerr.status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, aerr.status, ErrorResponse{Error: aerr.msg})
}
