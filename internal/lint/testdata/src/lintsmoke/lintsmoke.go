// Package lintsmoke deliberately violates the fastscvet analyzers. The CI
// lint-smoke step runs the real driver over this package and asserts a
// NONZERO exit, proving the vet wiring actually fails the build on a
// finding (a silently-green lint would otherwise look identical to a
// clean one). The `want` comments double as expectations for the in-tree
// harness test, which keeps the seeded violations honest offline.
//
// This package lives under testdata so `go build ./...` and `go vet ./...`
// never see it; only explicit paths reach it.
package lintsmoke

import "fmt"

// Keys returns m's keys in map-iteration order — a seeded maporder
// violation: the order changes run to run.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `maporder: iteration over map "m" feeds an append to "keys"`
		keys = append(keys, k)
	}
	return keys
}

// Hot is a seeded hotalloc violation: annotated as a hot path, yet it
// formats.
//
//fastsc:hotpath seeded violation for the lint-smoke self-test
func Hot(x int) string {
	return fmt.Sprintf("%d", x) // want `hotalloc: fmt\.Sprintf on a hot path`
}
