package server

import (
	"fmt"
	"sync"
)

// batchStore holds async batches for polling. It is bounded: adding a
// batch beyond the limit evicts the oldest *finished* batch (running and
// queued batches are never evicted, so an accepted batch can always be
// polled at least until it completes and one poll-window later).
type batchStore struct {
	mu    sync.Mutex
	m     map[string]*batchRecord
	order []string
	limit int
	seq   int64
}

func newBatchStore(limit int) *batchStore {
	return &batchStore{m: make(map[string]*batchRecord), limit: limit}
}

// add registers a new queued batch and returns its record.
func (st *batchStore) add(jobs int) *batchRecord {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	rec := &batchRecord{id: fmt.Sprintf("b-%06d", st.seq), status: "queued", jobs: jobs}
	st.m[rec.id] = rec
	st.order = append(st.order, rec.id)
	if len(st.m) > st.limit {
		for i, oid := range st.order {
			if old := st.m[oid]; old != nil && old.isDone() {
				delete(st.m, oid)
				st.order = append(st.order[:i], st.order[i+1:]...)
				break
			}
		}
	}
	return rec
}

// get returns the record for id, or nil.
func (st *batchStore) get(id string) *batchRecord {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.m[id]
}

// len returns the number of stored batches.
func (st *batchStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// batchRecord is one async batch's poll state. Results accumulate in
// completion order as the engine streams them.
type batchRecord struct {
	id        string
	mu        sync.Mutex
	status    string // "queued" | "running" | "done"
	jobs      int
	failed    int
	results   []ResultLine
	cache     *CacheReport
	elapsedUs int64
}

// appendLine records one emitted stream line; DoneLines are applied by
// finish instead.
func (r *batchRecord) appendLine(line any) error {
	rl, ok := line.(ResultLine)
	if !ok {
		return nil
	}
	r.mu.Lock()
	r.results = append(r.results, rl)
	if rl.Type == "error" {
		r.failed++
	}
	r.mu.Unlock()
	return nil
}

// setRunning marks the batch as holding a compile slot.
func (r *batchRecord) setRunning() {
	r.mu.Lock()
	if r.status == "queued" {
		r.status = "running"
	}
	r.mu.Unlock()
}

// finish applies the terminal DoneLine.
func (r *batchRecord) finish(done DoneLine) {
	r.mu.Lock()
	r.status = "done"
	r.failed = done.Failed
	r.cache = done.Cache
	r.elapsedUs = done.ElapsedMicros
	r.mu.Unlock()
}

func (r *batchRecord) isDone() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status == "done"
}

// snapshot renders the record as a poll response.
func (r *batchRecord) snapshot() BatchStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return BatchStatus{
		Batch:         r.id,
		Status:        r.status,
		Jobs:          r.jobs,
		Completed:     len(r.results),
		Failed:        r.failed,
		Results:       append([]ResultLine(nil), r.results...),
		Cache:         r.cache,
		ElapsedMicros: r.elapsedUs,
	}
}
