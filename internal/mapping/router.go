package mapping

import (
	"fmt"
	"slices"
	"sync"

	"fastsc/internal/circuit"
	"fastsc/internal/graph"
	"fastsc/internal/topology"
)

// Router algorithm names accepted by RouterConfig.Algorithm.
const (
	// RouterGreedy is the greedy shortest-path SWAP inserter (the default;
	// the empty string selects it too).
	RouterGreedy = "greedy"
	// RouterLookahead is the SABRE-style lookahead swap search.
	RouterLookahead = "lookahead"
)

// Lookahead tuning defaults.
const (
	// DefaultLookaheadWindow is the number of upcoming two-qubit gates the
	// lookahead router's extended term scores.
	DefaultLookaheadWindow = 16
	// DefaultLookaheadDecay is the geometric decay per extended-window
	// position.
	DefaultLookaheadDecay = 0.6
)

// RouterConfig selects and tunes a routing algorithm. It is part of the
// compile cache's route key (compile.RouteKey), so every field must feed
// the key — the reflection guard in compile/key_test.go pins the layout.
type RouterConfig struct {
	// Algorithm names the router: RouterGreedy (default; "" selects it) or
	// RouterLookahead.
	Algorithm string
	// Window is the lookahead router's extended-window size: how many
	// upcoming two-qubit gates beyond the blocked frontier contribute to a
	// candidate SWAP's score. 0 selects DefaultLookaheadWindow; ignored by
	// the greedy router.
	Window int
	// Decay is the geometric weight decay per extended-window position, in
	// (0, 1). 0 selects DefaultLookaheadDecay; ignored by the greedy
	// router.
	Decay float64
}

// Options is the full layout/routing configuration of one Plan invocation:
// the placement strategy plus the router. The compile cache keys routed
// results by it (alongside the circuit and device signatures).
type Options struct {
	// Placement names the initial-layout strategy: PlaceIdentity (default;
	// "" selects it), PlaceSnake or PlaceDegree.
	Placement string
	// Router selects and tunes the routing algorithm.
	Router RouterConfig
}

// WithDefaults returns opts with every zero field replaced by its default,
// so that equivalent configurations normalize to one cache key.
func (o Options) WithDefaults() Options {
	if o.Placement == "" {
		o.Placement = PlaceIdentity
	}
	o.Router = o.Router.withDefaults()
	return o
}

func (rc RouterConfig) withDefaults() RouterConfig {
	if rc.Algorithm == "" {
		rc.Algorithm = RouterGreedy
	}
	if rc.Algorithm != RouterLookahead {
		// Tuning fields are meaningless for the greedy router; zero them so
		// greedy configs differing only in stale tuning share a cache key.
		rc.Window, rc.Decay = 0, 0
		return rc
	}
	if rc.Window <= 0 {
		rc.Window = DefaultLookaheadWindow
	}
	// The negated-range form also maps NaN to the default, so a poisoned
	// decay can neither disable the scoring heuristic nor fragment the
	// route cache key.
	if !(rc.Decay > 0 && rc.Decay < 1) {
		rc.Decay = DefaultLookaheadDecay
	}
	return rc
}

// NeedsAnalysis reports whether the configuration reads the circuit's
// dependency analysis (the lookahead router and the degree placement do).
// Callers holding a memoizing cache use it to decide whether to resolve
// the shared Analysis before Plan.
func (o Options) NeedsAnalysis() bool {
	return o.Router.Algorithm == RouterLookahead || o.Placement == PlaceDegree
}

// Router plans SWAP insertion: it translates a logical circuit onto a
// device's physical qubits starting from an initial mapping, so that every
// two-qubit gate of the result acts on a coupler.
//
// Contract: the returned Result is immutable; routing is deterministic
// (identical inputs yield identical gate lists); ana may be nil, in which
// case implementations that need the dependency analysis compute it
// themselves; initial may be nil (identity) and is never mutated, though
// Result.Final may alias it when no SWAPs were inserted.
type Router interface {
	Name() string
	Route(c *circuit.Circuit, ana *circuit.Analysis, dev *topology.Device, initial *Mapping) (*Result, error)
}

// NewRouter returns the router named by cfg.
func NewRouter(cfg RouterConfig) (Router, error) {
	cfg = cfg.withDefaults()
	switch cfg.Algorithm {
	case RouterGreedy:
		return &GreedyRouter{}, nil
	case RouterLookahead:
		return &LookaheadRouter{Window: cfg.Window, Decay: cfg.Decay}, nil
	}
	return nil, fmt.Errorf("mapping: unknown router %q (want %q or %q)",
		cfg.Algorithm, RouterGreedy, RouterLookahead)
}

// RouterNames lists the selectable router algorithms.
func RouterNames() []string { return []string{RouterGreedy, RouterLookahead} }

// routeState is the mutable working set of one routing call: the output
// circuit under construction and the copy-on-write current mapping.
type routeState struct {
	c        *circuit.Circuit
	dev      *topology.Device
	out      *circuit.Circuit
	inserted []bool
	swaps    int
	m        *Mapping
	// owned reports whether m is this call's private copy. The initial
	// mapping is cloned lazily on the first SWAP, so the routing of an
	// already-embedded circuit allocates no mapping at all.
	owned bool
}

func newRouteState(c *circuit.Circuit, dev *topology.Device, initial *Mapping) (*routeState, error) {
	if c.NumQubits > dev.Qubits {
		return nil, fmt.Errorf("mapping: circuit needs %d qubits, device %q has %d",
			c.NumQubits, dev.Name, dev.Qubits)
	}
	s := &routeState{c: c, dev: dev, out: circuit.New(dev.Qubits)}
	// Preallocate for the common case of little or no routing; SWAP-heavy
	// circuits grow these by the usual append doubling.
	s.out.Gates = make([]circuit.Gate, 0, len(c.Gates))
	s.inserted = make([]bool, 0, len(c.Gates))
	if initial == nil {
		s.m, s.owned = Identity(c.NumQubits, dev.Qubits), true
	} else {
		s.m, s.owned = initial, false
	}
	return s, nil
}

// swap emits a routing SWAP between physical qubits a and b, cloning the
// borrowed initial mapping on first use.
func (s *routeState) swap(a, b int) {
	if !s.owned {
		s.m, s.owned = s.m.Clone(), true
	}
	s.out.SWAP(a, b)
	s.inserted = append(s.inserted, true)
	s.m.SwapPhys(a, b)
	s.swaps++
}

// emit appends the physical translation of program gate g at the given
// physical operands.
func (s *routeState) emit1q(g circuit.Gate) {
	s.out.Add(circuit.Gate{Kind: g.Kind, Qubits: []int{s.m.LogToPhys[g.Qubits[0]]}, Theta: g.Theta})
	s.inserted = append(s.inserted, false)
}

func (s *routeState) emit2q(g circuit.Gate, pa, pb int) {
	s.out.Add(circuit.Gate{Kind: g.Kind, Qubits: []int{pa, pb}, Theta: g.Theta})
	s.inserted = append(s.inserted, false)
}

func (s *routeState) result() *Result {
	return &Result{Routed: s.out, Final: s.m, Inserted: s.inserted, SwapCount: s.swaps}
}

// GreedyRouter inserts SWAPs along greedy shortest coupling paths: each
// two-qubit gate on uncoupled operands walks its first operand toward the
// second along the lexicographically smallest shortest path, stopping one
// hop short. This reproduces, gate for gate, the classic BFS-based router
// (BFS with ascending neighbor exploration finds exactly the lex-smallest
// shortest path), but resolves every hop against the device's cached
// DistanceMatrix — no per-gate path allocation, no per-gate BFS.
type GreedyRouter struct{}

// Name implements Router.
func (*GreedyRouter) Name() string { return RouterGreedy }

// Route implements Router. ana is unused (the greedy policy is purely
// program-ordered) and may be nil.
func (*GreedyRouter) Route(c *circuit.Circuit, ana *circuit.Analysis, dev *topology.Device, initial *Mapping) (*Result, error) {
	s, err := newRouteState(c, dev, initial)
	if err != nil {
		return nil, err
	}
	gc := dev.Coupling
	var dm *graph.DistanceMatrix // resolved on the first uncoupled gate
	for _, g := range c.Gates {
		if g.Arity() == 1 {
			s.emit1q(g)
			continue
		}
		pa, pb := s.m.LogToPhys[g.Qubits[0]], s.m.LogToPhys[g.Qubits[1]]
		if !gc.HasEdge(pa, pb) {
			if dm == nil {
				dm = gc.Distances()
			}
			if err := walkGreedy(s, dm, pa, pb); err != nil {
				return nil, err
			}
			pa = s.m.LogToPhys[g.Qubits[0]]
			pb = s.m.LogToPhys[g.Qubits[1]]
		}
		s.emit2q(g, pa, pb)
	}
	return s.result(), nil
}

// walkGreedy swaps physical qubit pa toward pb along the lexicographically
// smallest shortest coupling path, stopping one hop short — the greedy
// router's whole policy and the lookahead router's stuck fallback.
func walkGreedy(s *routeState, dm *graph.DistanceMatrix, pa, pb int) error {
	if dm.At(pa, pb) == graph.Unreachable {
		return fmt.Errorf("mapping: no path between physical qubits %d and %d on %q",
			pa, pb, s.dev.Name)
	}
	for cur := pa; dm.At(cur, pb) > 1; {
		next := stepToward(s.dev.Coupling, dm, cur, pb)
		s.swap(cur, next)
		cur = next
	}
	return nil
}

// stepToward returns the smallest neighbor of cur that is one step closer
// to dst — the next vertex of the lexicographically smallest shortest path.
func stepToward(gc *graph.Graph, dm *graph.DistanceMatrix, cur, dst int) int {
	want := dm.At(cur, dst) - 1
	for _, u := range gc.Adj(cur) { // ascending
		if dm.At(int(u), dst) == want {
			return int(u)
		}
	}
	panic(fmt.Sprintf("mapping: no neighbor of %d approaches %d (inconsistent distance matrix)", cur, dst))
}

// LookaheadRouter is a SABRE-style swap search (Li, Ding, Xie, ASPLOS
// 2019): gates are issued from the dependency frontier as soon as their
// operands are coupled; when every frontier two-qubit gate is blocked, the
// router scores all candidate SWAPs adjacent to a blocked gate by the
// summed post-swap distance of the frontier plus a geometrically decaying
// term over the next Window upcoming two-qubit gates, and applies the best
// one. Distances come from the device's cached DistanceMatrix; the gate
// order within the frontier follows the circuit.Analysis CSR streams.
//
// The search never cycles: a SWAP that undoes the immediately preceding
// one is excluded while the frontier makes no progress, and after
// stuckLimit consecutive SWAPs without issuing a gate the router falls
// back to walking the oldest blocked gate's greedy shortest path, which
// strictly reduces its distance.
type LookaheadRouter struct {
	// Window is the extended-window size (how many upcoming two-qubit
	// gates are scored); <= 0 selects DefaultLookaheadWindow.
	Window int
	// Decay is the geometric decay per window position, in (0, 1); values
	// outside select DefaultLookaheadDecay.
	Decay float64
}

// Name implements Router.
func (*LookaheadRouter) Name() string { return RouterLookahead }

// lookScratch holds the reusable buffers of one lookahead routing call.
type lookScratch struct {
	blocked []int32      // frontier gate indices currently blocked
	window  []int32      // upcoming 2q gate indices for the extended term
	cand    []graph.Edge // candidate swaps, deduplicated and sorted
	done    []bool       // per gate: issued
}

var lookPool = sync.Pool{New: func() any { return new(lookScratch) }}

// Route implements Router. ana may be nil; it is computed when missing.
func (r *LookaheadRouter) Route(c *circuit.Circuit, ana *circuit.Analysis, dev *topology.Device, initial *Mapping) (*Result, error) {
	s, err := newRouteState(c, dev, initial)
	if err != nil {
		return nil, err
	}
	if ana == nil {
		ana = circuit.Analyze(c)
	}
	// One normalization authority: the same clamping that feeds the cache
	// key, so a directly constructed router can never route differently
	// from what RouteKey names.
	cfg := RouterConfig{Algorithm: RouterLookahead, Window: r.Window, Decay: r.Decay}.withDefaults()
	window, decay := cfg.Window, cfg.Decay

	gc := dev.Coupling
	dm := gc.Distances()
	front := ana.NewFrontier()
	defer front.Release()
	scr := lookPool.Get().(*lookScratch)
	defer lookPool.Put(scr)
	if cap(scr.done) < len(c.Gates) {
		scr.done = make([]bool, len(c.Gates))
	}
	scr.done = scr.done[:len(c.Gates)]
	for i := range scr.done {
		scr.done[i] = false
	}

	// stuckLimit bounds consecutive SWAPs without frontier progress before
	// the deterministic greedy fallback; one device diameter of swaps is
	// always enough to bring any single pair together.
	stuckLimit := dev.Qubits
	if stuckLimit < 4 {
		stuckLimit = 4
	}
	stuck := 0
	lastSwap := graph.Edge{U: -1, V: -1}
	// cursor trails the first unissued gate, so extended-window scans are
	// amortized O(gates) over the whole call.
	cursor := 0

	issue := func(idx int, g circuit.Gate) {
		if g.Arity() == 1 {
			s.emit1q(g)
		} else {
			s.emit2q(g, s.m.LogToPhys[g.Qubits[0]], s.m.LogToPhys[g.Qubits[1]])
		}
		front.Issue(idx)
		scr.done[idx] = true
	}

	for !front.Done() {
		ready := front.Ready() // ascending program order
		progressed := false
		scr.blocked = scr.blocked[:0]
		for _, idx := range ready {
			g := c.Gates[idx]
			if g.Arity() == 1 {
				issue(idx, g)
				progressed = true
				continue
			}
			if gc.HasEdge(s.m.LogToPhys[g.Qubits[0]], s.m.LogToPhys[g.Qubits[1]]) {
				issue(idx, g)
				progressed = true
			} else {
				scr.blocked = append(scr.blocked, int32(idx))
			}
		}
		if progressed {
			stuck = 0
			lastSwap = graph.Edge{U: -1, V: -1}
			continue
		}
		// Every ready gate is a blocked two-qubit gate. Pick a SWAP.
		stuck++
		if stuck > stuckLimit {
			// Deterministic escape hatch: walk the oldest blocked gate's
			// operands together along the greedy shortest path.
			g := c.Gates[scr.blocked[0]]
			if err := walkGreedy(s, dm, s.m.LogToPhys[g.Qubits[0]], s.m.LogToPhys[g.Qubits[1]]); err != nil {
				return nil, err
			}
			stuck = 0
			continue
		}
		if err := r.chooseSwap(s, ana, dm, scr, window, decay, cursor, &lastSwap); err != nil {
			return nil, err
		}
		// Advance the window cursor past fully issued prefix.
		for cursor < len(c.Gates) && scr.done[cursor] {
			cursor++
		}
	}
	return s.result(), nil
}

// chooseSwap scores every candidate SWAP adjacent to a blocked frontier
// gate and applies the best-scoring one (ties break toward the smaller
// edge). The score of a candidate is the summed post-swap coupling
// distance of the blocked frontier gates plus Decay^(k+1)-weighted
// distances of the next Window unissued two-qubit gates in program order.
//
//fastsc:hotpath runs once per inserted SWAP (BenchmarkRoute guards it); candidate/window buffers come from the pooled lookScratch and the scoring loop must not allocate
func (r *LookaheadRouter) chooseSwap(s *routeState, ana *circuit.Analysis, dm *graph.DistanceMatrix,
	scr *lookScratch, window int, decay float64, cursor int, lastSwap *graph.Edge) error {

	gc := s.dev.Coupling
	// Candidate swaps: every coupler touching an operand of a blocked gate.
	scr.cand = scr.cand[:0]
	for _, idx := range scr.blocked {
		g := s.c.Gates[idx]
		for _, lq := range g.Qubits {
			p := s.m.LogToPhys[lq]
			for _, u := range gc.Adj(p) {
				e := graph.NewEdge(p, int(u))
				if e != *lastSwap {
					scr.cand = append(scr.cand, e)
				}
			}
		}
	}
	if len(scr.cand) == 0 {
		if lastSwap.U < 0 {
			// No couplers touch any blocked operand at all (isolated
			// qubits): the gate can never be routed.
			g := s.c.Gates[scr.blocked[0]]
			//fastsc:ignore hotalloc -- cold path: unroutable circuit aborts the compile; formatting the error here is fine
			return fmt.Errorf("mapping: no path between physical qubits %d and %d on %q",
				s.m.LogToPhys[g.Qubits[0]], s.m.LogToPhys[g.Qubits[1]], s.dev.Name)
		}
		// Every candidate was the excluded previous swap (degenerate tiny
		// device); permit it rather than stalling.
		scr.cand = append(scr.cand, *lastSwap)
	}
	slices.SortFunc(scr.cand, func(a, b graph.Edge) int {
		if a.U != b.U {
			return a.U - b.U
		}
		return a.V - b.V
	})
	// Deduplicate (sorted, so duplicates are adjacent).
	uniq := scr.cand[:0]
	for i, e := range scr.cand {
		if i == 0 || e != scr.cand[i-1] {
			uniq = append(uniq, e)
		}
	}
	scr.cand = uniq

	// Extended window: the next `window` unissued two-qubit gates in
	// program order, frontier gates excluded (they are the base term).
	scr.window = scr.window[:0]
	inBlocked := func(idx int) bool {
		for _, b := range scr.blocked {
			if int(b) == idx {
				return true
			}
		}
		return false
	}
	for i := cursor; i < len(s.c.Gates) && len(scr.window) < window; i++ {
		if scr.done[i] || inBlocked(i) {
			continue
		}
		if _, q1 := ana.Operands(i); q1 >= 0 {
			scr.window = append(scr.window, int32(i))
		}
	}

	// distAfter returns the coupling distance of gate idx's operands under
	// the hypothetical swap (a, b).
	distAfter := func(idx int, a, b int) float64 {
		g := s.c.Gates[idx]
		pa, pb := s.m.LogToPhys[g.Qubits[0]], s.m.LogToPhys[g.Qubits[1]]
		if pa == a {
			pa = b
		} else if pa == b {
			pa = a
		}
		if pb == a {
			pb = b
		} else if pb == b {
			pb = a
		}
		return float64(dm.At(pa, pb))
	}

	best, bestScore := graph.Edge{U: -1, V: -1}, 0.0
	for _, e := range scr.cand {
		score := 0.0
		for _, idx := range scr.blocked {
			score += distAfter(int(idx), e.U, e.V)
		}
		w := decay
		for _, idx := range scr.window {
			score += w * distAfter(int(idx), e.U, e.V)
			w *= decay
		}
		if best.U < 0 || score < bestScore {
			best, bestScore = e, score
		}
	}
	s.swap(best.U, best.V)
	*lastSwap = best
	return nil
}
