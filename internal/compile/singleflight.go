package compile

import "sync"

// flightGroup deduplicates concurrent computations of the same key: the
// first caller (the leader) runs the function while every concurrent
// caller for that key blocks on the leader's WaitGroup and shares its
// result. This is the classic singleflight pattern (cf.
// golang.org/x/sync/singleflight), reimplemented here because the module
// takes no external dependencies.
//
// Errors are shared with the waiters of the in-flight call but are never
// remembered: once the leader returns, the key is forgotten and the next
// caller computes afresh. That matches Cache.Do's "errors are not
// cached" contract.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

// do runs fn exactly once per key among concurrent callers and returns
// its result to all of them. Callers that arrive after the in-flight
// call completes start a new one.
func (g *flightGroup) do(key string, fn func() (any, error)) (any, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	return c.val, c.err
}
