package compile

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"fastsc/internal/circuit"
	"fastsc/internal/phys"
	"fastsc/internal/smt"
	"fastsc/internal/topology"
)

// TestSliceKeyCollisionProof is the regression test for the v1 key bug:
// SliceKey used to reduce the active vertex set to a 64-bit FNV digest
// plus a length, so two distinct slices could alias and silently serve
// the wrong frequency assignment. The v2 key encodes the exact sorted
// vertex set, so distinct sets can never map to the same key. The test
// stresses the aliasing families a digest or a sloppy encoding would
// merge: every subset of a small universe (exhaustive injectivity), sets
// with equal length and equal sum (defeats additive hashes), multi-digit
// concatenation ambiguity (defeats separator-free encodings), and
// duplicate-vs-distinct multiplicity.
func TestSliceKeyCollisionProof(t *testing.T) {
	seen := make(map[string][]int)
	record := func(verts []int) {
		k := SliceKey("sig", 2, 2, verts)
		sorted := append([]int(nil), verts...)
		sort.Ints(sorted)
		if prev, ok := seen[k]; ok && !reflect.DeepEqual(prev, sorted) {
			t.Fatalf("collision: %v and %v share key %q", prev, sorted, k)
		}
		seen[k] = sorted
	}

	// Exhaustive: all 2^16 subsets of {0..15}.
	for mask := 0; mask < 1<<16; mask++ {
		var verts []int
		for v := 0; v < 16; v++ {
			if mask&(1<<v) != 0 {
				verts = append(verts, v)
			}
		}
		record(verts)
	}

	// Concatenation-ambiguity pairs: {1,2,3} vs {12,3} vs {1,23} vs {123}.
	for _, verts := range [][]int{{1, 2, 3}, {12, 3}, {1, 23}, {123}, {0x12, 3}, {1, 0x23}} {
		record(verts)
	}

	// Equal length + equal sum, and duplicate multiplicity.
	for _, verts := range [][]int{{0, 3}, {1, 2}, {0, 1, 5}, {0, 2, 4}, {1, 1, 4}, {2, 2, 2}, {1, 2, 2}, {1, 1, 2}} {
		record(verts)
	}

	// Randomized large sets (vertex ids up to realistic coupler counts).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(40)
		verts := make([]int, n)
		for j := range verts {
			verts[j] = rng.Intn(2048)
		}
		record(verts)
	}
}

// TestSliceKeyVersioned checks that the key carries the key-scheme version
// so a snapshot written under an older scheme can never satisfy a v2
// lookup (Load additionally rejects such snapshots wholesale).
func TestSliceKeyVersioned(t *testing.T) {
	k := SliceKey("sig", 2, 2, []int{1, 2})
	if want := fmt.Sprintf("v%d|", KeyVersion); !strings.HasPrefix(k, want) {
		t.Fatalf("key %q does not carry version prefix %q", k, want)
	}
}

// assertExactFields fails unless typ has exactly the named fields. Every
// key/signature in this package was written against a specific struct
// layout; when a field is added, this guard forces the author to fold it
// into the key (or consciously exclude it), update the expected list and
// bump KeyVersion — otherwise the new field would silently alias cache
// entries across configurations that differ only in it.
func assertExactFields(t *testing.T, typ reflect.Type, keyFunc string, want ...string) {
	t.Helper()
	var got []string
	for i := 0; i < typ.NumField(); i++ {
		got = append(got, typ.Field(i).Name)
	}
	sort.Strings(got)
	sorted := append([]string(nil), want...)
	sort.Strings(sorted)
	if !reflect.DeepEqual(got, sorted) {
		t.Fatalf("%s has fields %v, but %s was written against %v.\n"+
			"Fold the new field into %s (or document its exclusion here), "+
			"update this list, and bump compile.KeyVersion.",
			typ, got, keyFunc, sorted, keyFunc)
	}
}

// TestKeySchemaDrift pins the struct layouts the cache keys hash. See
// assertExactFields for the contract.
func TestKeySchemaDrift(t *testing.T) {
	// All four Config fields are folded into SMTKey.
	assertExactFields(t, reflect.TypeOf(smt.Config{}), "SMTKey",
		"Lo", "Hi", "Alpha", "MinDelta")

	// All Device fields are folded into DeviceSignature: Name, Qubits,
	// Coupling (via the sorted edge list) and Coords (the parking stagger
	// pattern reads them).
	assertExactFields(t, reflect.TypeOf(topology.Device{}), "DeviceSignature",
		"Name", "Qubits", "Coupling", "Coords")
	assertExactFields(t, reflect.TypeOf(topology.Coord{}), "DeviceSignature",
		"Row", "Col")

	// SystemSignature folds Device, Qubits (every Transmon field) and the
	// dense Coupling slice (hashed in coupler-id order, which is Edges()
	// order). Params is excluded on purpose: phys.NewSystem copies every
	// Params field the compilers read into the Transmon draws (OmegaMax,
	// EC, Asymmetry, T1, T2) and the dense Coupling slice (G0); OmegaSigma
	// only shapes the sampling. If System or Transmon gains a field, fold
	// it in or extend this justification.
	assertExactFields(t, reflect.TypeOf(phys.System{}), "SystemSignature",
		"Device", "Qubits", "Coupling", "Params")
	assertExactFields(t, reflect.TypeOf(phys.Transmon{}), "SystemSignature",
		"OmegaMax", "EC", "Asymmetry", "T1", "T2")

	// The circ region is keyed by circuit.Signature, which folds NumQubits
	// and every Gate field (Kind, Qubits, Theta).
	assertExactFields(t, reflect.TypeOf(circuit.Circuit{}), "circuit.Signature",
		"NumQubits", "Gates")
	assertExactFields(t, reflect.TypeOf(circuit.Gate{}), "circuit.Signature",
		"Kind", "Qubits", "Theta")
}

// TestAnalysisMemoSharesAcrossAllocations checks the circ region's
// contract: content-identical circuits (distinct allocations, as produced
// by per-strategy decomposition) share one Analysis, while circuits that
// differ in any content component do not.
func TestAnalysisMemoSharesAcrossAllocations(t *testing.T) {
	build := func() *circuit.Circuit {
		c := circuit.New(4)
		c.H(0).CZ(0, 1).CZ(2, 3).RZ(3, 0.7)
		return c
	}
	ctx := NewContext(1)
	a1 := ctx.Analysis(build())
	a2 := ctx.Analysis(build())
	if a1 != a2 {
		t.Fatal("content-identical circuits must share one cached Analysis")
	}
	other := circuit.New(4)
	other.H(0).CZ(0, 1).CZ(2, 3).RZ(3, 0.8)
	if ctx.Analysis(other) == a1 {
		t.Fatal("distinct circuits must not share an Analysis")
	}
	st := ctx.Stats()[RegionCircuit]
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("circ region stats = %+v, want 1 hit / 2 misses", st)
	}
	// A nil context analyzes directly (no cache probe, no key built).
	var nilCtx *Context
	if nilCtx.Analysis(build()) == nil {
		t.Fatal("nil-context Analysis must still analyze")
	}
}

// TestDeviceSignatureCoversCoords is the regression test for the v1
// signature gap: staggerOffset reads qubit coordinates, so two devices
// identical except for coordinates must not share parking cache entries.
func TestDeviceSignatureCoversCoords(t *testing.T) {
	a := topology.Linear(4)
	b := topology.Linear(4)
	if DeviceSignature(a) != DeviceSignature(b) {
		t.Fatal("identical devices must share a signature")
	}
	b.Coords[2] = topology.Coord{Row: 5, Col: 7}
	if DeviceSignature(a) == DeviceSignature(b) {
		t.Fatal("devices differing only in coordinates must not share a signature")
	}
}
