package bench_test

import (
	"math/rand"
	"testing"

	"fastsc/internal/circuit"
	"fastsc/internal/compile"
	"fastsc/internal/core"
	"fastsc/internal/expt"
	"fastsc/internal/phys"
	"fastsc/internal/schedule"
)

// largeCircuit builds one deep 100-qubit workload for the intra-circuit
// parallelism benchmark: a randomized native circuit on a 10×10 grid whose
// two-qubit gates land on random couplers. Unlike the tiled XEB patterns,
// almost every slice has a distinct scattered active set, so the compile is
// dominated by whole-slice cache misses — the path the component fan-out
// and the pioneer prefetch accelerate. The seed is fixed: both benchmark
// variants compile the identical circuit.
func largeCircuit(sys *phys.System) *circuit.Circuit {
	rng := rand.New(rand.NewSource(7))
	edges := sys.Device.Coupling.Edges()
	n := sys.Device.Qubits
	c := circuit.New(n)
	for i := 0; i < 6000; i++ {
		switch rng.Intn(4) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.RZ(rng.Intn(n), rng.Float64())
		default:
			e := edges[rng.Intn(len(edges))]
			c.CNOT(e.U, e.V)
		}
	}
	return c
}

// BenchmarkLargeCircuitCompile measures ColorDynamic on one deep
// 100-qubit circuit — the intra-circuit parallelism case, where batch-level
// parallelism cannot help because there is only one job:
//
//   - serial: Workers=1, so the component fan-out runs inline, the SMT
//     probes evaluate serially, and no pioneer spawns — the
//     pre-parallelism compilation path.
//   - parallel: Workers=GOMAXPROCS; independent slice components solve
//     concurrently and the pioneer prefetch warms each next slice while
//     the main loop issues the current one.
//
// Both variants start every iteration from a cold cache and produce
// byte-identical schedules (pinned by TestParallelCompilationMatchesSerialReference).
func BenchmarkLargeCircuitCompile(b *testing.B) {
	sys := expt.GridSystem(100)
	circ := largeCircuit(sys)
	run := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx := compile.NewContext(workers)
			if _, err := (schedule.ColorDynamic{}).Compile(ctx, circ, sys, schedule.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, 0) })
}

// BenchmarkLargeCircuitBatch is the same workload through the engine (the
// daemon's single-large-request path), where core-level pre-stages
// (analysis, routing) run ahead of the schedule loop.
func BenchmarkLargeCircuitBatch(b *testing.B) {
	sys := expt.GridSystem(100)
	circ := largeCircuit(sys)
	job := []core.BatchJob{{Key: "large", Circuit: circ, System: sys, Strategy: "ColorDynamic"}}
	run := func(b *testing.B, workers int) {
		for i := 0; i < b.N; i++ {
			ctx := compile.NewContext(workers)
			if _, err := core.BatchCollect(ctx, job); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, 0) })
}
