package schedule

import (
	"math"
	"testing"

	"fastsc/internal/bench"
	"fastsc/internal/circuit"
	"fastsc/internal/graph"
	"fastsc/internal/mapping"
	"fastsc/internal/phys"
	"fastsc/internal/smt"
	"fastsc/internal/topology"
	"fastsc/internal/xtalk"
)

func testSystem(n int) *phys.System {
	return phys.NewSystem(topology.SquareGrid(n), phys.DefaultParams(), 42)
}

// smallCircuit acts on coupler pairs (0,1) and (4,5), which are coupled on
// every square grid of at least 9 qubits.
func smallCircuit() *circuit.Circuit {
	c := circuit.New(6)
	c.H(0).H(1).H(4).H(5)
	c.CNOT(0, 1).CNOT(4, 5)
	c.H(0).H(4)
	return c
}

// routedIsing places the Ising chain along the device snake so every bond
// lands on a coupler.
func routedIsing(t *testing.T, sys *phys.System, n, steps int) *circuit.Circuit {
	t.Helper()
	res, err := mapping.Route(bench.Ising(n, steps), sys.Device,
		mapping.FromOrder(n, mapping.SnakeOrder(sys.Device), sys.Device.Qubits))
	if err != nil {
		t.Fatal(err)
	}
	return res.Routed
}

func TestAllStrategiesCompileAndVerify(t *testing.T) {
	sys := testSystem(9)
	circs := map[string]*circuit.Circuit{
		"small": smallCircuit(),
		"xeb":   bench.XEB(sys.Device, 4, 3),
		"ising": routedIsing(t, sys, 9, 3),
	}
	for name, c := range circs {
		for _, comp := range Registry() {
			s, err := comp.Compile(nil, c, sys, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", comp.Name(), name, err)
			}
			if err := s.Verify(); err != nil {
				t.Fatalf("%s/%s: %v", comp.Name(), name, err)
			}
			if s.TotalTime <= 0 {
				t.Fatalf("%s/%s: nonpositive duration", comp.Name(), name)
			}
			if s.Strategy != comp.Name() {
				t.Fatalf("schedule strategy label %q != %q", s.Strategy, comp.Name())
			}
		}
	}
}

func TestScheduleDeterministic(t *testing.T) {
	sys := testSystem(9)
	c := bench.XEB(sys.Device, 3, 7)
	for _, comp := range Registry() {
		s1, err1 := comp.Compile(nil, c, sys, Options{})
		s2, err2 := comp.Compile(nil, c, sys, Options{})
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", comp.Name(), err1, err2)
		}
		if s1.Depth() != s2.Depth() || s1.TotalTime != s2.TotalTime {
			t.Fatalf("%s: nondeterministic schedule", comp.Name())
		}
		for i := range s1.Slices {
			if len(s1.Slices[i].Gates) != len(s2.Slices[i].Gates) {
				t.Fatalf("%s: slice %d differs", comp.Name(), i)
			}
			for q, f := range s1.Slices[i].Freqs {
				if s2.Slices[i].Freqs[q] != f {
					t.Fatalf("%s: frequency differs at slice %d qubit %d", comp.Name(), i, q)
				}
			}
		}
	}
}

// TestCompiledDepthMatchesReference pins Schedule.CompiledDepth — taken
// from the shared circuit.Analysis at build time — to the reference
// ASAPLayers depth of the compiled circuit, for every strategy and several
// circuit shapes.
func TestCompiledDepthMatchesReference(t *testing.T) {
	sys := testSystem(9)
	circs := map[string]*circuit.Circuit{
		"small": smallCircuit(),
		"xeb":   bench.XEB(sys.Device, 4, 3),
		"ising": routedIsing(t, sys, 9, 3),
	}
	for name, c := range circs {
		for _, comp := range Registry() {
			s, err := comp.Compile(nil, c, sys, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", comp.Name(), name, err)
			}
			if want := s.Compiled.Depth(); s.CompiledDepth != want {
				t.Fatalf("%s/%s: CompiledDepth %d != reference ASAP depth %d",
					comp.Name(), name, s.CompiledDepth, want)
			}
			if s.CompiledDepth <= 0 {
				t.Fatalf("%s/%s: CompiledDepth %d not positive", comp.Name(), name, s.CompiledDepth)
			}
		}
	}
}

func TestCompileRejectsOversizedCircuit(t *testing.T) {
	sys := testSystem(4)
	c := circuit.New(9)
	c.H(0)
	for _, comp := range Registry() {
		if _, err := comp.Compile(nil, c, sys, Options{}); err == nil {
			t.Fatalf("%s accepted oversized circuit", comp.Name())
		}
	}
}

func TestParkingFrequenciesCheckerboard(t *testing.T) {
	sys := testSystem(16)
	s, err := (ColorDynamic{}).Compile(nil, smallCircuit(), sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Parked neighbors must be well separated (different classes).
	for _, e := range sys.Device.Edges() {
		gap := math.Abs(s.ParkingFreqs[e.U] - s.ParkingFreqs[e.V])
		if gap < 0.2 {
			t.Fatalf("parked neighbors %v only %.3f GHz apart", e, gap)
		}
	}
	// Same-class distance-2 pairs must be staggered apart.
	for _, q := range sys.Device.QubitsSorted() {
		nbrs := sys.Device.NeighborsSorted(q)
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				u, v := nbrs[i], nbrs[j]
				if sys.Device.Coupling.HasEdge(u, v) {
					continue
				}
				gap := math.Abs(s.ParkingFreqs[u] - s.ParkingFreqs[v])
				if gap < 0.01 {
					t.Fatalf("distance-2 parked pair (%d,%d) nearly resonant: %.4f GHz", u, v, gap)
				}
			}
		}
	}
}

func TestParkingInsideParkingBand(t *testing.T) {
	sys := testSystem(9)
	s, err := (Uniform{}).Compile(nil, smallCircuit(), sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := sys.CommonRange()
	for q, f := range s.ParkingFreqs {
		if f < lo-1e-9 || f > hi+1e-9 {
			t.Fatalf("qubit %d parked at %.3f outside common range [%.3f, %.3f]", q, f, lo, hi)
		}
		if !sys.Transmon(q).Reaches(f) {
			t.Fatalf("qubit %d cannot reach its parking frequency %.3f", q, f)
		}
	}
}

func TestInteractionFrequenciesReachable(t *testing.T) {
	sys := testSystem(9)
	c := bench.XEB(sys.Device, 4, 1)
	for _, comp := range Registry() {
		s, err := comp.Compile(nil, c, sys, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for si, sl := range s.Slices {
			for _, ev := range sl.Gates {
				if !ev.Gate.Kind.IsTwoQubit() {
					continue
				}
				for _, q := range ev.Gate.Qubits {
					if !sys.Transmon(q).Reaches(ev.Freq) {
						t.Fatalf("%s slice %d: qubit %d cannot reach %.3f GHz",
							comp.Name(), si, q, ev.Freq)
					}
				}
			}
		}
	}
}

func TestUniformSingleFrequency(t *testing.T) {
	sys := testSystem(9)
	c := bench.XEB(sys.Device, 4, 1)
	s, err := (Uniform{}).Compile(nil, c, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	freq := -1.0
	for _, sl := range s.Slices {
		for _, ev := range sl.Gates {
			if !ev.Gate.Kind.IsTwoQubit() {
				continue
			}
			if freq < 0 {
				freq = ev.Freq
			}
			if ev.Freq != freq {
				t.Fatalf("Baseline U used two interaction frequencies: %v and %v", freq, ev.Freq)
			}
		}
	}
	if freq < 0 {
		t.Fatal("no two-qubit gates scheduled")
	}
}

func TestUniformSerializesAdjacentGates(t *testing.T) {
	sys := testSystem(9)
	c := bench.XEB(sys.Device, 4, 1)
	s, err := (Uniform{}).Compile(nil, c, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x1 := xtalk.Build(sys.Device, 1)
	for si, sl := range s.Slices {
		for i := 0; i < len(sl.ActiveCouplers); i++ {
			for j := i + 1; j < len(sl.ActiveCouplers); j++ {
				a, b := sl.ActiveCouplers[i], sl.ActiveCouplers[j]
				va, _ := x1.VertexOf(a.U, a.V)
				vb, _ := x1.VertexOf(b.U, b.V)
				if x1.G.HasEdge(va, vb) {
					t.Fatalf("Baseline U slice %d runs adjacent couplers %v and %v", si, a, b)
				}
			}
		}
	}
}

func TestColorDynamicSeparatesNearbyGates(t *testing.T) {
	sys := testSystem(16)
	c := bench.XEB(sys.Device, 6, 2)
	s, err := (ColorDynamic{}).Compile(nil, c, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x2 := xtalk.Build(sys.Device, 2)
	minSep := math.Inf(1)
	checked := 0
	for si := range s.Slices {
		sl := &s.Slices[si]
		var events []GateEvent
		for _, ev := range sl.Gates {
			if ev.Gate.Kind.IsTwoQubit() {
				events = append(events, ev)
			}
		}
		for i := 0; i < len(events); i++ {
			for j := i + 1; j < len(events); j++ {
				a := graph.NewEdge(events[i].Gate.Qubits[0], events[i].Gate.Qubits[1])
				b := graph.NewEdge(events[j].Gate.Qubits[0], events[j].Gate.Qubits[1])
				va, _ := x2.VertexOf(a.U, a.V)
				vb, _ := x2.VertexOf(b.U, b.V)
				if !x2.G.HasEdge(va, vb) {
					continue
				}
				checked++
				sep := math.Abs(events[i].Freq - events[j].Freq)
				if sep < minSep {
					minSep = sep
				}
			}
		}
	}
	if checked == 0 {
		t.Skip("no simultaneous nearby gates scheduled")
	}
	if minSep < 0.05 {
		t.Fatalf("ColorDynamic left nearby simultaneous gates only %.3f GHz apart", minSep)
	}
}

func TestColorDynamicMaxColorsBound(t *testing.T) {
	sys := testSystem(16)
	c := bench.XEB(sys.Device, 6, 2)
	for _, k := range []int{1, 2, 3, 4} {
		s, err := (ColorDynamic{}).Compile(nil, c, sys, Options{MaxColors: k})
		if err != nil {
			t.Fatal(err)
		}
		if s.MaxColorsUsed > k {
			t.Fatalf("MaxColors=%d but schedule used %d", k, s.MaxColorsUsed)
		}
		if err := s.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestColorDynamicFewerColorsMeansDeeper(t *testing.T) {
	sys := testSystem(16)
	c := bench.XEB(sys.Device, 6, 2)
	s1, err := (ColorDynamic{}).Compile(nil, c, sys, Options{MaxColors: 1})
	if err != nil {
		t.Fatal(err)
	}
	s4, err := (ColorDynamic{}).Compile(nil, c, sys, Options{MaxColors: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Depth() < s4.Depth() {
		t.Fatalf("1-color schedule depth %d should be >= 4-color depth %d",
			s1.Depth(), s4.Depth())
	}
}

func TestGmonActiveCouplersTracked(t *testing.T) {
	sys := testSystem(9)
	c := bench.XEB(sys.Device, 4, 1)
	s, err := (Gmon{}).Compile(nil, c, sys, Options{Residual: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Gmon || s.Residual != 0.3 {
		t.Fatal("gmon flags not propagated")
	}
	for si, sl := range s.Slices {
		n2q := 0
		for _, ev := range sl.Gates {
			if ev.Gate.Kind.IsTwoQubit() {
				n2q++
			}
		}
		if n2q != len(sl.ActiveCouplers) {
			t.Fatalf("slice %d: %d 2q gates but %d active couplers", si, n2q, len(sl.ActiveCouplers))
		}
	}
}

func TestGmonTilingOnePatternPerSlice(t *testing.T) {
	sys := testSystem(16)
	c := bench.XEB(sys.Device, 4, 1)
	s, err := (Gmon{}).Compile(nil, c, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	patterns := tilingPatterns(sys.Device)
	for si, sl := range s.Slices {
		seen := make(map[int]bool)
		for _, e := range sl.ActiveCouplers {
			id, ok := sys.Device.Coupling.EdgeID(e.U, e.V)
			if !ok {
				t.Fatalf("slice %d: active coupler %v is not a device edge", si, e)
			}
			seen[patterns[id]] = true
		}
		if len(seen) > 1 {
			t.Fatalf("gmon slice %d mixes tiling patterns: %v", si, seen)
		}
	}
}

func TestTilingPatternsAreMatchings(t *testing.T) {
	for _, dev := range []*topology.Device{
		topology.Grid(4, 4),
		topology.Express1D(9, 3),
		topology.Ring(8),
	} {
		patterns := tilingPatterns(dev)
		byClass := make(map[int][]graph.Edge)
		for id, e := range dev.Edges() {
			byClass[patterns[id]] = append(byClass[patterns[id]], e)
		}
		for p, edges := range byClass {
			used := make(map[int]bool)
			for _, e := range edges {
				if used[e.U] || used[e.V] {
					t.Fatalf("%s pattern %d is not a matching", dev.Name, p)
				}
				used[e.U] = true
				used[e.V] = true
			}
		}
		if len(patterns) != dev.Coupling.NumEdges() {
			t.Fatalf("%s: %d patterned couplers, want %d", dev.Name, len(patterns), dev.Coupling.NumEdges())
		}
	}
}

func TestNaiveASAPDepthMatchesCircuit(t *testing.T) {
	sys := testSystem(9)
	c := circuit.Decompose(smallCircuit(), circuit.Hybrid)
	wide := circuit.New(9)
	wide.Gates = c.Gates
	s, err := (Naive{}).Compile(nil, smallCircuit(), sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth() != wide.Depth() {
		t.Fatalf("naive depth %d != ASAP circuit depth %d", s.Depth(), wide.Depth())
	}
}

func TestSlicesNeverReuseQubits(t *testing.T) {
	sys := testSystem(9)
	c := routedIsing(t, sys, 9, 4)
	for _, comp := range Registry() {
		s, err := comp.Compile(nil, c, sys, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Verify() checks this invariant; also check frequencies exist for
		// every qubit.
		if err := s.Verify(); err != nil {
			t.Fatalf("%s: %v", comp.Name(), err)
		}
		for si, sl := range s.Slices {
			if len(sl.Freqs) != sys.Device.Qubits {
				t.Fatalf("%s slice %d: %d frequencies for %d qubits",
					comp.Name(), si, len(sl.Freqs), sys.Device.Qubits)
			}
		}
	}
}

func TestByNameAndRegistry(t *testing.T) {
	if len(Registry()) != 5 {
		t.Fatalf("registry has %d strategies, want 5", len(Registry()))
	}
	for _, name := range Names() {
		if ByName(name) == nil {
			t.Fatalf("ByName(%q) = nil", name)
		}
	}
	if ByName("nonsense") != nil {
		t.Fatal("ByName should return nil for unknown strategies")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.XtalkDistance != 2 || o.MaxColors != 2 || o.ConflictLimit != 4 {
		t.Fatalf("unexpected defaults: %+v", o)
	}
	u := Options{MaxColors: -1}.withDefaults()
	if u.MaxColors != -1 {
		t.Fatal("MaxColors=-1 (unlimited) should be preserved")
	}
}

func TestSortByCriticality(t *testing.T) {
	crit := []int32{5, 1, 9, 3}
	ready := []int{0, 1, 2, 3}
	sortByCriticality(ready, crit)
	want := []int{2, 0, 3, 1}
	for i := range want {
		if ready[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", ready, want)
		}
	}
}

func TestMaxColorsFeasible(t *testing.T) {
	sys := testSystem(4)
	lo, hi := sys.CommonRange()
	part := smt.PartitionFor(lo, hi)
	k := maxColorsFeasible(nil, part.InteractionConfig(sys.MeanAnharmonicity()), 16)
	if k < 2 {
		t.Fatalf("interaction band should host at least 2 colors, got %d", k)
	}
}

func TestDecomposeOptionRespected(t *testing.T) {
	sys := testSystem(4)
	c := circuit.New(4)
	c.CNOT(0, 1)
	s, err := (ColorDynamic{}).Compile(nil, c, sys, Options{Decompose: circuit.PureISwap})
	if err != nil {
		t.Fatal(err)
	}
	if n := s.Compiled.CountKind(circuit.ISwap); n != 2 {
		t.Fatalf("pure-iSWAP CNOT should compile to 2 iSWAPs, got %d", n)
	}
}

func TestFluxRampIncludedInSliceDuration(t *testing.T) {
	sys := testSystem(4)
	c := circuit.New(4)
	c.H(0)
	s, err := (ColorDynamic{}).Compile(nil, c, sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Slices) != 1 {
		t.Fatalf("depth = %d", len(s.Slices))
	}
	want := phys.SingleQubitGateTime + phys.FluxRampTime
	if math.Abs(s.Slices[0].Duration-want) > 1e-9 {
		t.Fatalf("slice duration = %v, want %v", s.Slices[0].Duration, want)
	}
}
