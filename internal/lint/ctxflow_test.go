package lint_test

import (
	"testing"

	"fastsc/internal/lint"
	"fastsc/internal/lint/linttest"
)

func TestCtxFlowFixture(t *testing.T) {
	linttest.Run(t, "ctxflow", lint.CtxFlowAnalyzer)
}
