package compile

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fastsc/internal/faultpoint"
	"fastsc/internal/graph"
	"fastsc/internal/smt"
)

// testPalette stands in for the opaque values schedule stores in the
// static region; it is registered with the snapshot codec like any real
// provider type.
type testPalette struct {
	Assign map[int]float64
	Delta  float64
}

func init() { RegisterSnapshotType(&testPalette{}) }

func snapshotPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "cache.snap")
}

func TestSnapshotRoundTrip(t *testing.T) {
	c := NewCache(0)
	infeasible := &persistedErr{msg: "smt: no feasible frequency assignment: 9 colors", base: smt.ErrInfeasible}
	c.Put(RegionSMT, "ok", smtResult{xs: []float64{6.1, 6.4}, delta: 0.25})
	c.Put(RegionSMT, "bad", smtResult{err: infeasible})
	c.Put(RegionParking, "sys1", []float64{5.1, 5.2})
	c.Put(RegionStatic, "sys1", &testPalette{Assign: map[int]float64{0: 6.3}, Delta: 0.1})
	c.Put(RegionSlice, "v2|sig|2|2|1,1", SliceSolution{
		Coloring:  graph.Coloring{-1, -1, -1, 0, -1, -1, -1, 1},
		Deferred:  []int{9},
		NumColors: 2,
		Assign:    []float64{6.2, 6.6},
		Delta:     0.3,
	})
	c.Put(RegionXtalk, "dev|2", "not persisted")

	path := snapshotPath(t)
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	warm := NewCache(0)
	n, err := warm.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("restored %d entries, want 5", n)
	}

	v, ok := warm.Get(RegionSMT, "ok")
	if !ok {
		t.Fatal("smt entry missing after round trip")
	}
	if r := v.(smtResult); !reflect.DeepEqual(r.xs, []float64{6.1, 6.4}) || r.delta != 0.25 || r.err != nil {
		t.Fatalf("smt entry corrupted: %+v", r)
	}
	v, ok = warm.Get(RegionSMT, "bad")
	if !ok {
		t.Fatal("infeasibility verdict missing after round trip")
	}
	if r := v.(smtResult); r.err == nil || !errors.Is(r.err, smt.ErrInfeasible) || r.err.Error() != infeasible.Error() {
		t.Fatalf("infeasibility verdict lost identity or message: %v", r.err)
	}
	if v, ok := warm.Get(RegionParking, "sys1"); !ok || !reflect.DeepEqual(v, []float64{5.1, 5.2}) {
		t.Fatalf("parking entry corrupted: %v (%v)", v, ok)
	}
	if v, ok := warm.Get(RegionStatic, "sys1"); !ok || !reflect.DeepEqual(v, &testPalette{Assign: map[int]float64{0: 6.3}, Delta: 0.1}) {
		t.Fatalf("static entry corrupted: %v (%v)", v, ok)
	}
	v, ok = warm.Get(RegionSlice, "v2|sig|2|2|1,1")
	if !ok {
		t.Fatal("slice entry missing after round trip")
	}
	sol := v.(SliceSolution)
	if !reflect.DeepEqual(sol.Coloring, graph.Coloring{-1, -1, -1, 0, -1, -1, -1, 1}) || sol.NumColors != 2 ||
		!reflect.DeepEqual(sol.Assign, []float64{6.2, 6.6}) || sol.Delta != 0.3 ||
		!reflect.DeepEqual(sol.Deferred, []int{9}) {
		t.Fatalf("slice entry corrupted: %+v", sol)
	}
	if _, ok := warm.Get(RegionXtalk, "dev|2"); ok {
		t.Fatal("xtalk region must not be persisted")
	}
}

// TestSnapshotGzipRoundTrip checks the compressed snapshot path: a ".gz"
// path writes a genuinely gzip-compressed stream, Load restores it by
// sniffing the magic bytes (not the name), and a truncated compressed
// snapshot degrades to a cold cache like any other corruption.
func TestSnapshotGzipRoundTrip(t *testing.T) {
	c := NewCache(0)
	c.Put(RegionSMT, "ok", smtResult{xs: []float64{6.1, 6.4}, delta: 0.25})
	c.Put(RegionParking, "sys1", []float64{5.1, 5.2})
	c.Put(RegionSlice, "v2|sig|2|2|1,1", SliceSolution{
		Coloring:  graph.Coloring{0, 1},
		NumColors: 2,
		Assign:    []float64{6.2, 6.6},
		Delta:     0.3,
	})

	dir := t.TempDir()
	gzPath := filepath.Join(dir, "cache.snap.gz")
	plainPath := filepath.Join(dir, "cache.snap")
	if err := c.Save(gzPath); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(plainPath); err != nil {
		t.Fatal(err)
	}
	gzData, err := os.ReadFile(gzPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(gzData) < 2 || gzData[0] != 0x1f || gzData[1] != 0x8b {
		t.Fatal("gz snapshot does not start with the gzip magic")
	}
	plainData, err := os.ReadFile(plainPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(gzData) >= len(plainData) {
		t.Fatalf("compressed snapshot (%d B) not smaller than plain (%d B)", len(gzData), len(plainData))
	}

	warm := NewCache(0)
	if n, err := warm.Load(gzPath); err != nil || n != 3 {
		t.Fatalf("compressed load: n=%d err=%v, want 3 entries", n, err)
	}
	if v, ok := warm.Get(RegionParking, "sys1"); !ok || !reflect.DeepEqual(v, []float64{5.1, 5.2}) {
		t.Fatalf("parking entry corrupted after compressed round trip: %v (%v)", v, ok)
	}

	// Auto-detection is content-based: the compressed stream loads from a
	// name without the suffix too.
	renamed := filepath.Join(dir, "renamed.snap")
	if err := os.Rename(gzPath, renamed); err != nil {
		t.Fatal(err)
	}
	warm2 := NewCache(0)
	if n, err := warm2.Load(renamed); err != nil || n != 3 {
		t.Fatalf("renamed compressed load: n=%d err=%v, want 3 entries", n, err)
	}

	// Truncation corrupts the gzip stream: cold start, no error.
	trunc := filepath.Join(dir, "trunc.snap.gz")
	if err := os.WriteFile(trunc, gzData[:len(gzData)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	cold := NewCache(0)
	if n, err := cold.Load(trunc); n != 0 || err != nil || cold.Len() != 0 {
		t.Fatalf("truncated compressed snapshot: n=%d err=%v len=%d, want cold start", n, err, cold.Len())
	}
}

func TestSnapshotLoadMissingFileIsCold(t *testing.T) {
	c := NewCache(0)
	n, err := c.Load(filepath.Join(t.TempDir(), "nope.snap"))
	if n != 0 || err != nil {
		t.Fatalf("missing snapshot: n=%d err=%v, want cold start", n, err)
	}
}

func TestSnapshotLoadCorruptIsCold(t *testing.T) {
	path := snapshotPath(t)
	if err := os.WriteFile(path, []byte("definitely not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCache(0)
	n, err := c.Load(path)
	if n != 0 || err != nil || c.Len() != 0 {
		t.Fatalf("corrupt snapshot: n=%d err=%v len=%d, want cold start", n, err, c.Len())
	}
	// The cache must stay fully usable after a failed load.
	c.Put("r", "k", 1)
	if v, ok := c.Get("r", "k"); !ok || v.(int) != 1 {
		t.Fatal("cache unusable after corrupt load")
	}
}

// writeDoctoredSnapshot saves a valid one-entry snapshot, then rewrites
// its header through mutate and writes it back.
func writeDoctoredSnapshot(t *testing.T, path string, mutate func(*diskSnapshot)) {
	t.Helper()
	c := NewCache(0)
	c.Put(RegionParking, "sys", []float64{5.0})
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap diskSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mutate(&snap)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotVersionMismatchIsCold(t *testing.T) {
	cases := map[string]func(*diskSnapshot){
		"format-version": func(s *diskSnapshot) { s.Version = SnapshotVersion + 1 },
		"key-version":    func(s *diskSnapshot) { s.KeyVersion = KeyVersion - 1 },
		"magic":          func(s *diskSnapshot) { s.Magic = "something-else" },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			path := snapshotPath(t)
			writeDoctoredSnapshot(t, path, mutate)
			c := NewCache(0)
			if n, err := c.Load(path); n != 0 || err != nil || c.Len() != 0 {
				t.Fatalf("mismatched snapshot: n=%d err=%v len=%d, want cold start", n, err, c.Len())
			}
		})
	}
}

// TestSnapshotSkipsUnencodableStatics checks that an unregistered type in
// the opaque static region drops that entry, not the snapshot.
func TestSnapshotSkipsUnencodableStatics(t *testing.T) {
	type unregistered struct{ X chan int } // channels never gob-encode
	c := NewCache(0)
	c.Put(RegionStatic, "bad", &unregistered{})
	c.Put(RegionParking, "sys", []float64{5.0})
	path := snapshotPath(t)
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	warm := NewCache(0)
	n, err := warm.Load(path)
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v, want the one encodable entry", n, err)
	}
	if _, ok := warm.Get(RegionStatic, "bad"); ok {
		t.Fatal("unencodable entry should have been skipped")
	}
}

func TestSnapshotNilCache(t *testing.T) {
	var c *Cache
	if err := c.Save(filepath.Join(t.TempDir(), "x")); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Load("anything"); n != 0 || err != nil {
		t.Fatalf("nil cache Load = %d, %v", n, err)
	}
}

// TestSaveFaultpointError: the snapshot.save.err fault point makes Save
// fail with an injected error the caller can identify, leaving no partial
// file behind.
func TestSaveFaultpointError(t *testing.T) {
	defer faultpoint.Reset()
	faultpoint.Reset()
	if err := faultpoint.Arm(faultpoint.SnapshotSaveErr + "*1"); err != nil {
		t.Fatal(err)
	}
	c := NewCache(0)
	c.Put(RegionParking, "sys", []float64{5.0})
	path := snapshotPath(t)
	if err := c.Save(path); !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("Save = %v, want injected error", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("snapshot file exists after injected save failure")
	}
	// The point is consumed: the next Save succeeds.
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
}

// TestSaveFaultpointCorrupt: the snapshot.save.corrupt fault point writes
// flipped bytes; Load must honor the degrade-to-empty contract (cold
// cache, nil error) instead of failing compilation.
func TestSaveFaultpointCorrupt(t *testing.T) {
	defer faultpoint.Reset()
	faultpoint.Reset()
	if err := faultpoint.Arm(faultpoint.SnapshotSaveCorrupt + "*1"); err != nil {
		t.Fatal(err)
	}
	c := NewCache(0)
	c.Put(RegionParking, "sys", []float64{5.0})
	path := snapshotPath(t)
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	warm := NewCache(0)
	n, err := warm.Load(path)
	if err != nil {
		t.Fatalf("Load of corrupt snapshot = %v, want nil (degrade to cold)", err)
	}
	if n != 0 {
		t.Fatalf("restored %d entries from corrupt snapshot, want 0", n)
	}
}
