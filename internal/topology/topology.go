// Package topology builds the device connectivity graphs studied in the
// paper: 2-D meshes (the primary target, §IV), 1-D linear chains, rings, and
// the express-cube families 1EX-k / 2EX-k (Dally '91) used in the general
// device-connectivity study of §VII-F / Fig 13.
//
// A Device couples a connectivity graph with planar coordinates for each
// qubit. Coordinates drive the Sycamore-style ABCD tiling scheduler
// (Baseline G) and make schedules human-readable; they carry no physics.
package topology

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"fastsc/internal/graph"
)

// Coord is the planar position of a qubit (row, column).
type Coord struct {
	Row, Col int
}

// Device is a quantum chip layout: a set of qubits (0..N-1), the coupling
// graph between them (the paper's connectivity graph G_c), and optional
// planar coordinates.
type Device struct {
	// Name identifies the layout family, e.g. "grid-4x4" or "1EX-3(9)".
	Name string
	// Qubits is the number of qubits; vertex ids are 0..Qubits-1.
	Qubits int
	// Coupling is the connectivity graph G_c: one vertex per qubit, one
	// edge per fixed capacitive coupler.
	Coupling *graph.Graph
	// Coords maps qubit id to planar position. Always populated by the
	// constructors in this package.
	Coords map[int]Coord
}

// Edges returns the coupler list sorted by (U, V).
func (d *Device) Edges() []graph.Edge { return d.Coupling.Edges() }

// Degree returns the number of couplers attached to qubit q.
func (d *Device) Degree(q int) int { return d.Coupling.Degree(q) }

// Validate checks internal consistency: vertex ids dense in [0, Qubits),
// coordinates present, and no self couplings (guaranteed by graph.Graph).
func (d *Device) Validate() error {
	if d.Coupling.NumNodes() != d.Qubits {
		return fmt.Errorf("topology: device %q has %d graph vertices, want %d",
			d.Name, d.Coupling.NumNodes(), d.Qubits)
	}
	for q := 0; q < d.Qubits; q++ {
		if !d.Coupling.HasNode(q) {
			return fmt.Errorf("topology: device %q missing qubit %d", d.Name, q)
		}
		if _, ok := d.Coords[q]; !ok {
			return fmt.Errorf("topology: device %q missing coords for qubit %d", d.Name, q)
		}
	}
	return nil
}

// Grid returns a rows×cols nearest-neighbor mesh. Qubit (r,c) has id
// r*cols+c. This is the paper's primary topology; it is bipartite, so its
// connectivity graph is 2-colorable (Fig 7, left).
func Grid(rows, cols int) *Device {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("topology: invalid grid %dx%d", rows, cols))
	}
	g := graph.New()
	coords := make(map[int]Coord, rows*cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			q := id(r, c)
			g.AddNode(q)
			coords[q] = Coord{Row: r, Col: c}
			if c+1 < cols {
				g.AddEdge(q, id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(q, id(r+1, c))
			}
		}
	}
	return &Device{
		Name:     fmt.Sprintf("grid-%dx%d", rows, cols),
		Qubits:   rows * cols,
		Coupling: g,
		Coords:   coords,
	}
}

// SquareGrid returns the n-qubit square mesh for perfect-square n (the
// evaluation uses n = 4, 9, 16, 25, 81). It panics if n is not a perfect
// square.
func SquareGrid(n int) *Device {
	side := intSqrt(n)
	if side*side != n {
		panic(fmt.Sprintf("topology: %d is not a perfect square", n))
	}
	return Grid(side, side)
}

func intSqrt(n int) int {
	s := 0
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

// Linear returns the n-qubit path graph 0-1-…-(n-1).
func Linear(n int) *Device {
	if n <= 0 {
		panic(fmt.Sprintf("topology: invalid linear size %d", n))
	}
	g := graph.New()
	coords := make(map[int]Coord, n)
	for q := 0; q < n; q++ {
		g.AddNode(q)
		coords[q] = Coord{Row: 0, Col: q}
		if q+1 < n {
			g.AddEdge(q, q+1)
		}
	}
	return &Device{
		Name:     fmt.Sprintf("linear-%d", n),
		Qubits:   n,
		Coupling: g,
		Coords:   coords,
	}
}

// Ring returns the n-qubit cycle graph.
func Ring(n int) *Device {
	if n < 3 {
		panic(fmt.Sprintf("topology: ring needs >= 3 qubits, got %d", n))
	}
	d := Linear(n)
	d.Coupling.AddEdge(0, n-1)
	d.Name = fmt.Sprintf("ring-%d", n)
	return d
}

// Express1D returns the 1EX-k express cube on n qubits: the linear path plus
// express channels connecting every k-th node to the node k further along
// (edges (i, i+k) for i = 0, k, 2k, …). Smaller k means denser connectivity;
// the paper sweeps k = 5, 4, 3, 2 (Fig 13, x-axis left of "grid").
func Express1D(n, k int) *Device {
	if k < 2 {
		panic(fmt.Sprintf("topology: express interval must be >= 2, got %d", k))
	}
	d := Linear(n)
	for i := 0; i+k < n; i += k {
		d.Coupling.AddEdge(i, i+k)
	}
	d.Name = fmt.Sprintf("1EX-%d(%d)", k, n)
	return d
}

// Express2D returns the 2EX-k express cube on a rows×cols mesh: the grid
// plus express channels every k nodes along every row and every column.
func Express2D(rows, cols, k int) *Device {
	if k < 2 {
		panic(fmt.Sprintf("topology: express interval must be >= 2, got %d", k))
	}
	d := Grid(rows, cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c+k < cols; c += k {
			d.Coupling.AddEdge(id(r, c), id(r, c+k))
		}
	}
	for c := 0; c < cols; c++ {
		for r := 0; r+k < rows; r += k {
			d.Coupling.AddEdge(id(r, c), id(r+k, c))
		}
	}
	d.Name = fmt.Sprintf("2EX-%d(%dx%d)", k, rows, cols)
	return d
}

// FromSpec builds a device from a textual topology spec — the vocabulary
// shared by the CLIs' -topology flags and the compile server's device
// field: "grid" (perfect-square n), "linear", "ring", "1ex-K" and "2ex-K"
// (express cubes with interval K >= 2, e.g. "1ex-3"; 2EX needs a
// perfect-square n). Unlike the panicking constructors it validates its
// inputs and returns an error, so untrusted specs can be parsed safely.
func FromSpec(spec string, n int) (*Device, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: invalid qubit count %d", n)
	}
	switch {
	case spec == "grid":
		side := intSqrt(n)
		if side*side != n {
			return nil, fmt.Errorf("topology: grid needs a perfect-square qubit count, got %d", n)
		}
		return Grid(side, side), nil
	case spec == "linear":
		return Linear(n), nil
	case spec == "ring":
		return Ring(n), nil
	case strings.HasPrefix(spec, "1ex-"):
		k, err := expressInterval(spec)
		if err != nil {
			return nil, err
		}
		return Express1D(n, k), nil
	case strings.HasPrefix(spec, "2ex-"):
		k, err := expressInterval(spec)
		if err != nil {
			return nil, err
		}
		side := intSqrt(n)
		if side*side != n {
			return nil, fmt.Errorf("topology: 2ex needs a perfect-square qubit count, got %d", n)
		}
		return Express2D(side, side, k), nil
	}
	return nil, fmt.Errorf("topology: unknown spec %q (want grid | linear | ring | 1ex-K | 2ex-K)", spec)
}

// SpecNames lists the topology spec forms FromSpec accepts.
func SpecNames() []string { return []string{"grid", "linear", "ring", "1ex-K", "2ex-K"} }

// expressInterval parses the K of a "1ex-K"/"2ex-K" spec.
func expressInterval(spec string) (int, error) {
	k, err := strconv.Atoi(spec[4:])
	if err != nil || k < 2 {
		return 0, fmt.Errorf("topology: bad express interval in %q (want an integer >= 2)", spec)
	}
	return k, nil
}

// FromEdges builds a device over qubits 0..n-1 with the given couplers.
// Qubits absent from the edge list become isolated vertices. Coordinates
// default to a single row.
func FromEdges(name string, n int, edges []graph.Edge) *Device {
	g := graph.New()
	coords := make(map[int]Coord, n)
	for q := 0; q < n; q++ {
		g.AddNode(q)
		coords[q] = Coord{Row: 0, Col: q}
	}
	for _, e := range edges {
		if e.U < 0 || e.V >= n {
			panic(fmt.Sprintf("topology: edge %v out of range [0,%d)", e, n))
		}
		g.AddEdge(e.U, e.V)
	}
	return &Device{Name: name, Qubits: n, Coupling: g, Coords: coords}
}

// NeighborsSorted returns the sorted neighbor qubits of q.
func (d *Device) NeighborsSorted(q int) []int { return d.Coupling.Neighbors(q) }

// EdgeIndex returns a dense index for the device's couplers: a map from
// normalized edge to its position in Edges(). The crosstalk graph uses these
// indices as vertex ids.
func (d *Device) EdgeIndex() map[graph.Edge]int {
	idx := make(map[graph.Edge]int)
	for i, e := range d.Edges() {
		idx[e] = i
	}
	return idx
}

// IsGrid reports whether the device was built by Grid/SquareGrid (by
// checking coordinates match the row-major id convention and all couplings
// are unit-distance). Express and linear devices return false unless they
// degenerate to a grid.
func (d *Device) IsGrid() bool {
	for q := 0; q < d.Qubits; q++ {
		c, ok := d.Coords[q]
		if !ok {
			return false
		}
		for _, n := range d.NeighborsSorted(q) {
			cn := d.Coords[n]
			dr, dc := abs(c.Row-cn.Row), abs(c.Col-cn.Col)
			if dr+dc != 1 {
				return false
			}
		}
	}
	return true
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// QubitsSorted returns 0..Qubits-1; a convenience for deterministic loops.
func (d *Device) QubitsSorted() []int {
	qs := make([]int, d.Qubits)
	for i := range qs {
		qs[i] = i
	}
	sort.Ints(qs)
	return qs
}
