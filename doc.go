// Package fastsc is a Go reproduction of "Systematic Crosstalk Mitigation
// for Superconducting Qubits via Frequency-Aware Compilation" (Ding et al.,
// MICRO 2020): the ColorDynamic frequency-aware compiler, its four baseline
// strategies, the transmon-physics substrate, NISQ benchmark generators, a
// noisy state-vector simulator, and a harness regenerating every table and
// figure of the paper's evaluation.
//
// The library lives under internal/; see internal/core for the compilation
// entry point, cmd/fastsc for the CLI, cmd/experiments for the paper
// harness, and bench_test.go for the per-figure benchmarks.
package fastsc
