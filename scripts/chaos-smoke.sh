#!/usr/bin/env bash
# chaos-smoke.sh — fault-injection and crash-recovery smoke test of fastscd
# (run from repo root, or via `make chaos-smoke`). Mirrors the CI
# chaos-smoke job:
#
#   1. build fastscd + fastscload; start the daemon cold with a durable
#      batch store, periodic cache snapshots, and fault points armed
#      (one injected per-job panic, slow SMT solves)
#   2. submit a batch whose first job panics; assert the daemon survives,
#      the victim job fails, its sibling succeeds, and
#      fastscd_job_panics_total = 1
#   3. drive it with fastscload (concurrent clients, jittered backoff
#      honoring Retry-After), recording every acked batch id
#   4. submit a unique slow batch, wait until it is running, kill -9
#   5. restart; assert the store recovered at epoch 2, finished batches
#      poll "done" with their results, the mid-flight batch polls
#      "interrupted", and every id fastscload recorded is still pollable
#      (no lost or duplicated acks across the crash)
#   6. resubmit the pre-crash batch; assert the periodic snapshot left a
#      warm cache (hit rate > 0.5)
set -euo pipefail

PORT="${PORT:-8078}"
BASE="http://localhost:$PORT"
WORKDIR="$(mktemp -d)"
SNAP="$WORKDIR/cache.snap.gz"
STORE="$WORKDIR/batches.store"
IDS="$WORKDIR/ids.txt"
DAEMON_PID=""

cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() { echo "chaos-smoke: FAIL: $*" >&2; exit 1; }

wait_ready() {
    for _ in $(seq 1 100); do
        if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    fail "daemon did not become ready on $BASE"
}

start_daemon() { # $1 = extra flags (e.g. -faultpoints ...), may be empty
    # shellcheck disable=SC2086
    "$WORKDIR/fastscd" -addr ":$PORT" -cache-file "$SNAP" -store-file "$STORE" \
        -snapshot-interval 300ms -max-concurrent 2 $1 \
        >>"$WORKDIR/daemon.log" 2>&1 &
    DAEMON_PID=$!
    wait_ready
}

metric() { # $1 = metric name; prints its value or empty
    curl -fsS "$BASE/metrics" | awk -v m="$1" '$1 == m {print $2}'
}

echo "== build"
go build -o "$WORKDIR/fastscd" ./cmd/fastscd
go build -o "$WORKDIR/fastscload" ./cmd/fastscload

echo "== start cold with fault points armed (job.panic*1, solve.slow=150ms)"
start_daemon "-faultpoints job.panic*1,solve.slow=150ms"

echo "== a panicking job must fail alone; the daemon and its sibling survive"
cat > "$WORKDIR/panic.json" <<'EOF'
{"device":{"topology":"linear","qubits":4},
 "jobs":[{"id":"victim","qasm":"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\nh q[0];\ncz q[0],q[1];\ncz q[1],q[2];\n"},
         {"id":"survivor","qasm":"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\nh q[0];\ncz q[0],q[1];\ncz q[1],q[2];\n"}],
 "workers":1}
EOF
curl -fsS -N "$BASE/v1/compile" -d @"$WORKDIR/panic.json" > "$WORKDIR/panic.ndjson"
python3 - "$WORKDIR/panic.ndjson" <<'PYEOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
by_id = {l["id"]: l for l in lines if l["type"] in ("result", "error")}
done = [l for l in lines if l["type"] == "done"][0]
assert by_id["victim"]["type"] == "error", f"victim did not fail: {by_id['victim']}"
assert "panic" in by_id["victim"]["error"], f"victim error not a panic: {by_id['victim']}"
assert by_id["survivor"]["type"] == "result", f"survivor damaged: {by_id['survivor']}"
assert done["failed"] == 1, done
print("panic containment: victim failed, survivor ok")
PYEOF
panics="$(metric fastscd_job_panics_total)"
[ "$panics" = "1" ] || fail "fastscd_job_panics_total = '$panics', want 1"

echo "== load: concurrent clients with backoff, ids recorded"
"$WORKDIR/fastscload" -addr "$BASE" -clients 8 -batches 40 -jobs 2 -qubits 5 \
    -ids-out "$IDS" || fail "fastscload load phase"
[ "$(wc -l < "$IDS")" -eq 40 ] || fail "expected 40 recorded ids"

echo "== submit a unique slow batch, kill -9 while it is mid-flight"
cat > "$WORKDIR/slow.json" <<'EOF'
{"device":{"topology":"grid","qubits":9},
 "jobs":[{"id":"doomed","qasm":"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[9];\nh q[0];\ncz q[0],q[1];\ncz q[3],q[4];\ncz q[1],q[2];\ncz q[4],q[5];\nrz(13*pi/311) q[8];\n"}]}
EOF
ACK=$(curl -fsS -d @"$WORKDIR/slow.json" "$BASE/v1/batches")
DOOMED=$(python3 -c 'import json,sys; print(json.loads(sys.argv[1])["batch"])' "$ACK")
for _ in $(seq 1 100); do
    status=$(curl -fsS "$BASE/v1/batches/$DOOMED" \
        | python3 -c 'import json,sys; print(json.load(sys.stdin)["status"])')
    [ "$status" = "running" ] && break
    [ "$status" = "done" ] && fail "slow batch finished before kill -9 (solve.slow not effective)"
    sleep 0.02
done
[ "$status" = "running" ] || fail "slow batch never started running (status $status)"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
echo "killed mid-batch: $DOOMED was running"

echo "== restart (fault points disarmed): store must recover"
start_daemon ""
epoch="$(metric fastscd_store_epoch)"
[ "$epoch" = "2" ] || fail "fastscd_store_epoch = '$epoch', want 2"
restored="$(metric fastscd_store_restored_batches)"
[ -n "$restored" ] && [ "$restored" -ge 41 ] \
    || fail "fastscd_store_restored_batches = '$restored', want >= 41"
interrupted="$(metric fastscd_store_interrupted_batches)"
[ -n "$interrupted" ] && [ "$interrupted" -ge 1 ] \
    || fail "fastscd_store_interrupted_batches = '$interrupted', want >= 1"
echo "recovery: epoch $epoch, $restored records restored, $interrupted interrupted"

echo "== the mid-flight batch must poll interrupted, not vanish"
status=$(curl -fsS "$BASE/v1/batches/$DOOMED" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["status"])')
[ "$status" = "interrupted" ] || fail "batch $DOOMED polls '$status', want interrupted"

echo "== every acked batch id must survive the crash (no lost, no dup)"
"$WORKDIR/fastscload" -addr "$BASE" -check "$IDS" || fail "fastscload check phase"

echo "== a finished pre-crash batch keeps its results"
FIRST_ID=$(head -1 "$IDS")
curl -fsS "$BASE/v1/batches/$FIRST_ID" > "$WORKDIR/first.json"
python3 - "$WORKDIR/first.json" <<'PYEOF'
import json, sys
st = json.load(open(sys.argv[1]))
assert st["status"] == "done", st["status"]
assert st["completed"] == st["jobs"] and st["failed"] == 0, st
assert all(r["type"] == "result" for r in st["results"]), st["results"]
print(f"batch {st['batch']}: {st['completed']} results intact across kill -9")
PYEOF

echo "== the periodic snapshot must have left a warm cache behind"
curl -fsS -N "$BASE/v1/compile" -d @"$WORKDIR/panic.json" > "$WORKDIR/rewarm.ndjson"
python3 - "$WORKDIR/rewarm.ndjson" <<'PYEOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
done = [l for l in lines if l["type"] == "done"][0]
assert done["failed"] == 0, done  # fault points disarmed: no panic now
rate = done["cache"]["hit_rate"]
assert rate > 0.5, f"post-crash hit rate {rate} is not > 0.5 (periodic snapshot missing?)"
print(f"post-crash warm start: hit rate {rate:.3f}")
PYEOF

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "chaos-smoke: PASS"
