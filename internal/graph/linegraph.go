package graph

// LineGraph computes the line graph L(g): one vertex per edge of g, with two
// line-graph vertices adjacent when the corresponding edges of g share an
// endpoint. It returns the line graph together with the slice mapping
// line-graph vertex id -> original edge (ids are indices into that slice,
// which is sorted by (U,V) so the construction is deterministic).
//
// This is the first step of the paper's crosstalk-graph construction
// (Algorithm 2, line 2: networkx.line_graph).
func LineGraph(g *Graph) (*Graph, []Edge) {
	edges := g.Edges()
	lg := NewDense(len(edges))
	// Bucket edge ids by endpoint; edges sharing a bucket are adjacent in
	// L(g). Buckets fill in edge-id order, so each is sorted ascending.
	byVertex := make([][]int32, g.Cap())
	for i, e := range edges {
		byVertex[e.U] = append(byVertex[e.U], int32(i))
		byVertex[e.V] = append(byVertex[e.V], int32(i))
	}
	for _, ids := range byVertex {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				lg.AddEdge(int(ids[i]), int(ids[j]))
			}
		}
	}
	return lg, edges
}
