# Targets mirror .github/workflows/ci.yml so local runs and CI stay in
# lockstep.

GO ?= go

.PHONY: all build test lint bench

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... | tee bench-results.txt
