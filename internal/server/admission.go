package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"fastsc/internal/compile"
)

// errQueueFull rejects a submission that found every compile slot busy and
// the wait queue full of work it cannot displace.
var errQueueFull = errors.New("server: admission queue full")

// ErrShed is the cause reported by a queued batch that was evicted from
// the admission queue to make room for higher-priority work.
var ErrShed = errors.New("server: shed from admission queue by higher-priority work")

// admitter allocates the server's compile slots. It replaces the FIFO
// slot semaphore of PR 6 with a priority queue: a reservation either takes
// a free slot immediately or waits; when the bounded queue is full, an
// arriving reservation sheds the most shed-worthy waiter — any waiter
// whose deadline has already expired first, then the lowest-priority
// waiter younger than the arrival's priority class — or is itself
// rejected with errQueueFull. Waiters whose own deadline or context
// expires remove themselves without ever holding a slot, so expired work
// cannot occupy workers. Running batches are never preempted.
type admitter struct {
	mu       sync.Mutex
	free     int
	maxQueue int
	queue    []*ticket
	seq      int64
}

func newAdmitter(slots, maxQueue int) *admitter {
	return &admitter{free: slots, maxQueue: maxQueue}
}

// ticket is one reservation: created by reserve, redeemed by wait, and —
// when wait returned nil — released exactly once after the batch finishes.
type ticket struct {
	a        *admitter
	prio     int
	seq      int64
	deadline time.Time // zero = none
	ready    chan struct{}
	granted  bool
	queued   bool
	shedErr  error
}

// reserve claims a slot or a queue position for a batch of the given
// priority. It returns errQueueFull when the queue is full of live work
// of equal or higher priority; otherwise the returned ticket is either
// already granted or queued, and the caller must call wait.
func (a *admitter) reserve(prio int, deadline time.Time) (*ticket, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seq++
	t := &ticket{a: a, prio: prio, seq: a.seq, deadline: deadline, ready: make(chan struct{})}
	if a.free > 0 {
		a.free--
		t.granted = true
		close(t.ready)
		return t, nil
	}
	if len(a.queue) >= a.maxQueue {
		victim := a.shedVictimLocked(prio)
		if victim == nil {
			return nil, errQueueFull
		}
		cause := ErrShed
		if !victim.deadline.IsZero() && time.Now().After(victim.deadline) {
			cause = compile.ErrDeadline
		}
		a.shedLocked(victim, cause)
	}
	t.queued = true
	a.queue = append(a.queue, t)
	return t, nil
}

// shedVictimLocked picks the waiter to evict for an arrival of priority
// prio: any already-expired waiter first (regardless of priority — its
// work is dead either way), else the lowest-priority waiter strictly below
// prio, newest first. Nil when nothing may be displaced.
func (a *admitter) shedVictimLocked(prio int) *ticket {
	now := time.Now()
	var lowest *ticket
	for _, w := range a.queue {
		if !w.deadline.IsZero() && now.After(w.deadline) {
			return w
		}
		if w.prio < prio && (lowest == nil || w.prio < lowest.prio ||
			(w.prio == lowest.prio && w.seq > lowest.seq)) {
			lowest = w
		}
	}
	return lowest
}

// shedLocked evicts w from the queue with the given cause.
func (a *admitter) shedLocked(w *ticket, cause error) {
	a.removeLocked(w)
	w.shedErr = cause
	close(w.ready)
}

// removeLocked takes w out of the queue.
func (a *admitter) removeLocked(w *ticket) {
	for i, q := range a.queue {
		if q == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			break
		}
	}
	w.queued = false
}

// releaseLocked returns one slot: the best live waiter (highest priority,
// oldest within a priority) is granted it; already-expired waiters are
// shed instead of granted. With no waiters the slot goes back to the pool.
func (a *admitter) releaseLocked() {
	now := time.Now()
	for {
		var best *ticket
		for _, w := range a.queue {
			if best == nil || w.prio > best.prio || (w.prio == best.prio && w.seq < best.seq) {
				best = w
			}
		}
		if best == nil {
			a.free++
			return
		}
		if !best.deadline.IsZero() && now.After(best.deadline) {
			a.shedLocked(best, compile.ErrDeadline)
			continue
		}
		a.removeLocked(best)
		best.granted = true
		close(best.ready)
		return
	}
}

// depth returns the number of batches waiting for a slot.
func (a *admitter) depth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// wait blocks until the ticket is granted a slot (nil), shed (ErrShed or
// compile.ErrDeadline), or ctx expires (its cause; a ticket granted in
// the same instant hands the slot straight back). After a non-nil return
// the ticket is dead; after nil the caller owns a slot and must call
// release exactly once.
func (t *ticket) wait(ctx context.Context) error {
	select {
	case <-t.ready:
		// shedErr and granted are written before close(ready) under the
		// admitter lock; the channel close orders them before this read.
		if t.shedErr != nil {
			return t.shedErr
		}
		return nil
	case <-ctx.Done():
		a := t.a
		a.mu.Lock()
		defer a.mu.Unlock()
		if t.granted {
			// Lost the race against a concurrent grant: hand the slot on.
			a.releaseLocked()
		} else if t.queued {
			a.removeLocked(t)
		}
		return context.Cause(ctx)
	}
}

// release frees the slot held by a granted ticket.
func (t *ticket) release() {
	t.a.mu.Lock()
	t.a.releaseLocked()
	t.a.mu.Unlock()
}
