package compile

import "sync"

// WarmSet is the read-only third cache tier: a snapshot file (the same
// format Save writes, typically shipped once per release and shared by a
// fleet of daemons) loaded lazily into immutable per-region maps. It is
// probed after a local shard miss and before compute (see
// Cache.getTiered), is never written, and takes no locks on the read path
// — after the one-time load the maps are immutable, so concurrent readers
// share them without contending with the local shards' mutexes. Hits are
// promoted into the local shards and counted as Stats.WarmHits.
//
// Because the warm-set file is an ordinary snapshot, it goes through the
// same decode path as Cache.LoadSnapshot — including the per-version
// migration steps — so a warm set built by the previous release still
// serves (re-keyed) after an upgrade.
type WarmSet struct {
	path string
	once sync.Once
	// regions is region → key → value, immutable once built. A nil map
	// (load degraded or file missing) serves every probe a miss.
	regions map[string]map[string]any
	res     LoadResult
	err     error
}

// OpenWarmSet prepares a warm set backed by the snapshot at path. The file
// is not touched until the first probe (or Result call): opening is free,
// so CLIs and daemons can attach a warm set unconditionally and let the
// first compilation pay the one-time load.
func OpenWarmSet(path string) *WarmSet {
	return &WarmSet{path: path}
}

// load reads and indexes the snapshot exactly once. Degradation follows
// the snapshot contract: corrupt, version-skewed or missing files leave
// the warm set empty (every probe misses), never broken.
func (w *WarmSet) load() {
	w.once.Do(func() {
		snap, res, err := readSnapshot(w.path)
		w.res, w.err = res, err
		if snap == nil {
			return
		}
		regions := make(map[string]map[string]any)
		w.res.Restored = snap.restore(func(region, key string, value any) {
			m, ok := regions[region]
			if !ok {
				m = make(map[string]any)
				regions[region] = m
			}
			m[key] = value
		})
		w.regions = regions
	})
}

// get probes the warm set for (region, key), loading the backing snapshot
// on first use. Nil-safe: a nil warm set always misses.
func (w *WarmSet) get(region, key string) (any, bool) {
	if w == nil {
		return nil, false
	}
	w.load()
	v, ok := w.regions[region][key]
	return v, ok
}

// Result forces the load and reports it: entry count, migration count,
// on-disk version and degradation reason, plus any genuine I/O error.
// Callers surface degraded warm sets to operators (fastscd exports the
// reason on /metrics) — a fleet silently serving cold because its warm
// set got truncated is exactly the failure this distinguishes.
func (w *WarmSet) Result() (LoadResult, error) {
	if w == nil {
		return LoadResult{}, nil
	}
	w.load()
	return w.res, w.err
}

// Len forces the load and returns the number of resident entries.
func (w *WarmSet) Len() int {
	if w == nil {
		return 0
	}
	w.load()
	n := 0
	for _, m := range w.regions {
		n += len(m)
	}
	return n
}

// Path returns the backing snapshot path.
func (w *WarmSet) Path() string {
	if w == nil {
		return ""
	}
	return w.path
}
