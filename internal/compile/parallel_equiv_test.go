package compile_test

import (
	"fmt"
	"math/rand"
	"testing"

	"fastsc/internal/bench"
	"fastsc/internal/circuit"
	"fastsc/internal/compile"
	"fastsc/internal/graph"
	"fastsc/internal/mapping"
	"fastsc/internal/phys"
	"fastsc/internal/schedule"
)

// routedOnto places a logical circuit along the device snake so every
// two-qubit gate lands on a coupler.
func routedOnto(t *testing.T, c *circuit.Circuit, sys *phys.System) *circuit.Circuit {
	t.Helper()
	res, err := mapping.Route(c, sys.Device,
		mapping.FromOrder(c.NumQubits, mapping.SnakeOrder(sys.Device), sys.Device.Qubits))
	if err != nil {
		t.Fatal(err)
	}
	return res.Routed
}

// randomNativeCircuit builds a random circuit whose two-qubit gates all land
// on couplers of a square-grid device, mixing sparse and dense slices so the
// active subgraphs span one-component and many-component shapes.
func randomNativeCircuit(dev interface {
	Edges() []graph.Edge
}, nQubits int, nGates int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	edges := dev.Edges()
	c := circuit.New(nQubits)
	for i := 0; i < nGates; i++ {
		switch rng.Intn(4) {
		case 0:
			c.H(rng.Intn(nQubits))
		case 1:
			c.RZ(rng.Intn(nQubits), rng.Float64())
		default:
			e := edges[rng.Intn(len(edges))]
			c.CNOT(e.U, e.V)
		}
	}
	return c
}

// TestParallelCompilationMatchesSerialReference is the determinism contract
// of the intra-circuit parallel path: compiling with a multi-worker cached
// Context — component fan-out, parallel SMT probes and the pioneer prefetch
// all active — must produce schedules byte-identical to the nil-Context
// serial reference, across the Fig 9–13 workload shapes and randomized
// circuits. Run under -race this doubles as the data-race proof for the
// speculative machinery.
func TestParallelCompilationMatchesSerialReference(t *testing.T) {
	sys := testSystem(16)
	circs := map[string]*circuit.Circuit{
		"xeb-deep": bench.XEB(sys.Device, 6, 7),
		"bv":       routedOnto(t, bench.BV(16, 3), sys),
		"qaoa":     routedOnto(t, bench.QAOA(16, 5), sys),
	}
	for seed := int64(0); seed < 4; seed++ {
		name := fmt.Sprintf("rand-%d", seed)
		circs[name] = randomNativeCircuit(sys.Device.Coupling, sys.Device.Qubits, 160, seed)
	}
	for name, c := range circs {
		ctx := compile.NewContext(8)
		for _, comp := range schedule.Extended() {
			label := comp.Name() + "/" + name
			want, err := comp.Compile(nil, c, sys, schedule.Options{})
			if err != nil {
				t.Fatalf("%s serial: %v", label, err)
			}
			// Cold cache, then warm: both must reproduce the reference.
			for _, pass := range []string{"cold", "warm"} {
				got, err := comp.Compile(ctx, c, sys, schedule.Options{})
				if err != nil {
					t.Fatalf("%s %s: %v", label, pass, err)
				}
				sameSchedule(t, label+"/"+pass, got, want)
			}
		}
	}
}

// TestComponentDecompositionMatchesMonolith pins the component solver
// against the pre-decomposition monolithic slice solve at its most
// sensitive spot: a constrained color budget, where deferral decisions
// must agree exactly between the merged component colorings and the
// whole-subgraph coloring.
func TestComponentDecompositionMatchesMonolith(t *testing.T) {
	sys := testSystem(16)
	c := bench.XEB(sys.Device, 5, 11)
	for _, maxColors := range []int{1, 2, 3, -1} {
		opts := schedule.Options{MaxColors: maxColors}
		want, err := schedule.ColorDynamic{}.Compile(nil, c, sys, opts)
		if err != nil {
			t.Fatalf("serial maxColors=%d: %v", maxColors, err)
		}
		got, err := schedule.ColorDynamic{}.Compile(compile.NewContext(4), c, sys, opts)
		if err != nil {
			t.Fatalf("parallel maxColors=%d: %v", maxColors, err)
		}
		sameSchedule(t, fmt.Sprintf("maxColors=%d", maxColors), got, want)
	}
}
