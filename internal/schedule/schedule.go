// Package schedule implements the five compilation strategies of Table I:
// the paper's ColorDynamic frequency-aware compiler (Algorithm 1) and the
// four baselines it is evaluated against (naive, gmon/tunable-coupler,
// uniform-frequency serialization, and static frequency-aware). Each
// strategy lowers a decomposed native circuit into a timed Schedule: a
// sequence of slices, each holding the gates issued in that time step and
// the frequency of every qubit during it.
package schedule

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"fastsc/internal/circuit"
	"fastsc/internal/compile"
	"fastsc/internal/graph"
	"fastsc/internal/phys"
	"fastsc/internal/smt"
	"fastsc/internal/xtalk"
)

// GateEvent is one gate placed in a slice.
type GateEvent struct {
	Gate circuit.Gate
	// Duration in ns.
	Duration float64
	// Freq is the interaction frequency for two-qubit gates (GHz); for
	// single-qubit gates it is the qubit's frequency during the gate.
	Freq float64
	// Color is the crosstalk-graph color of a two-qubit gate's coupler
	// (-1 for single-qubit gates or strategies that do not color).
	Color int
}

// Slice is one time step of the schedule.
type Slice struct {
	Start    float64 // ns
	Duration float64 // ns, including the flux-retune overhead
	Gates    []GateEvent
	// Freqs holds every qubit's frequency (GHz) during this slice, indexed
	// by qubit id; idle qubits sit at their parking frequency.
	Freqs []float64
	// ActiveCouplers lists the couplers executing two-qubit gates.
	ActiveCouplers []graph.Edge
	// Colors is the number of interaction colors used by this slice.
	Colors int
	// Delta is the frequency separation achieved by the solver for this
	// slice (0 when not applicable).
	Delta float64
}

// Schedule is a fully compiled program: timed slices plus the device
// context needed to evaluate it.
type Schedule struct {
	System   *phys.System
	Strategy string
	Slices   []Slice
	// TotalTime is the program duration in ns.
	TotalTime float64
	// Compiled is the decomposed native circuit that was scheduled.
	Compiled *circuit.Circuit
	// CompiledDepth is Compiled's ASAP dependency depth, taken from the
	// shared circuit.Analysis at build time so reporting never re-derives
	// it through the reference ASAPLayers implementation. It equals
	// Compiled.Depth() (pinned by test) and measures program parallelism;
	// Depth() counts emitted slices, which strategies may stretch.
	CompiledDepth int
	// Gmon marks schedules for tunable-coupler hardware: couplers not in
	// a slice's ActiveCouplers are switched off, retaining only Residual
	// times the bare coupling.
	Gmon     bool
	Residual float64
	// MaxColorsUsed is the largest per-slice color count.
	MaxColorsUsed int
	// ParkingFreqs holds each qubit's idle frequency, indexed by qubit id.
	ParkingFreqs []float64
}

// Depth returns the number of slices.
func (s *Schedule) Depth() int { return len(s.Slices) }

// Options tunes a compilation.
type Options struct {
	// XtalkDistance is the crosstalk-graph distance d (default 2, which
	// covers both direct and mediated next-neighbor crosstalk — the
	// generalization of §IV-C3; set 1 for the nearest-neighbor-only
	// construction of Fig 7).
	XtalkDistance int
	// MaxColors bounds the interaction colors per slice; gates that cannot
	// be colored within the budget are postponed, trading parallelism for
	// spectral separation (Fig 11). 0 selects the paper's sweet spot of 2
	// colors (two frequency sweet spots per qubit, §VII-D); -1 removes the
	// bound entirely.
	MaxColors int
	// ConflictLimit is the noise_conflict threshold of Algorithm 1: a
	// gate is postponed when at least this many of its crosstalk-graph
	// neighbors are already scheduled in the slice (default 4).
	ConflictLimit int
	// Decompose selects the native-gate family (default Hybrid).
	Decompose circuit.DecomposeStrategy
	// Residual is the gmon baseline's residual coupling factor r in
	// [0, 1): the fraction of bare coupling that leaks through a switched
	// off tunable coupler (default 0, the paper's conservative Fig 9
	// assumption; Fig 12 sweeps it).
	Residual float64
}

func (o Options) withDefaults() Options {
	if o.XtalkDistance <= 0 {
		o.XtalkDistance = 2
	}
	if o.MaxColors == 0 {
		o.MaxColors = 2
	}
	if o.ConflictLimit <= 0 {
		o.ConflictLimit = 4
	}
	return o
}

// Compiler turns a circuit into a timed schedule on a system. The injected
// compile.Context supplies the cross-job memoization cache and parallelism
// budget; nil is always valid and compiles without caching.
type Compiler interface {
	Name() string
	Compile(ctx *compile.Context, c *circuit.Circuit, sys *phys.System, opts Options) (*Schedule, error)
}

// sliceScratch holds the per-slice working buffers a builder reuses across
// every slice of a compilation (and, through a sync.Pool, across
// compilations): the per-qubit frequency staging area, the active-coupler
// set, and the selection lists of the queueing scheduler. Only the
// structures a Slice retains (Gates, Freqs, ActiveCouplers) are freshly
// allocated per slice.
type sliceScratch struct {
	freqs   []float64 // qubit -> staged interaction frequency
	freqSet []bool    // whether freqs[q] was staged this slice
	staged  []int32   // qubits staged this slice, for O(staged) reset

	active      []graph.Edge // couplers selected so far this slice
	activeVerts []int        // their crosstalk-graph vertices, same order
	keyVerts    []int        // sorted copy of activeVerts for the cache key
	selected    []int32      // gate indices admitted this slice
	selVerts    []int32      // per-selected coupler vertex (-1 for 1q gates)

	colorSeen []bool  // palette colors observed this slice (Baseline S)
	colorList []int32 // observed palette colors, for O(used) reset
}

var scratchPool = sync.Pool{New: func() any { return new(sliceScratch) }}

// acquireScratch returns a scratch sized for nQubits qubits, reusing pooled
// buffers when they are large enough.
func acquireScratch(nQubits int) *sliceScratch {
	//fastsc:ignore poolpair -- escapes: constructor hands the pooled scratch to the builder, which releases it in finish/abort (releasePooled)
	s := scratchPool.Get().(*sliceScratch)
	if cap(s.freqs) < nQubits {
		s.freqs = make([]float64, nQubits)
		s.freqSet = make([]bool, nQubits)
	}
	s.freqs = s.freqs[:nQubits]
	s.freqSet = s.freqSet[:nQubits]
	for q := range s.freqSet {
		s.freqSet[q] = false
	}
	s.resetSlice()
	return s
}

// resetSlice clears the per-slice state in O(touched).
func (s *sliceScratch) resetSlice() {
	for _, q := range s.staged {
		s.freqSet[q] = false
	}
	s.staged = s.staged[:0]
	s.active = s.active[:0]
	s.activeVerts = s.activeVerts[:0]
	s.selected = s.selected[:0]
	s.selVerts = s.selVerts[:0]
	for _, c := range s.colorList {
		s.colorSeen[c] = false
	}
	s.colorList = s.colorList[:0]
}

// ensureColors sizes the palette-color scratch for colors 0..k-1.
func (s *sliceScratch) ensureColors(k int) {
	if len(s.colorSeen) < k {
		s.colorSeen = make([]bool, k)
	}
}

func (s *sliceScratch) release() { scratchPool.Put(s) }

// builder carries the state shared by every strategy: the decomposed
// circuit with its shared dependency analysis, the frequency partition,
// parking frequencies, and the crosstalk graph.
type builder struct {
	ctx  *compile.Context
	sys  *phys.System
	sig  string // content signature of sys, the cache-key prefix
	opts Options
	part smt.Partition
	circ *circuit.Circuit // decomposed, native
	// ana is the analyzed-circuit IR, shared read-only across every
	// strategy compiling the same circuit (memoized in the ctx's circ
	// region by content signature); front is this compilation's private
	// cursor view over it.
	ana   *circuit.Analysis
	front *circuit.Frontier
	crit  []int32 // ana's per-gate criticality (shared read-only)
	xg    *xtalk.Graph
	park  []float64 // qubit -> parking frequency (shared read-only)
	scr   *sliceScratch
	sched *Schedule
	now   float64

	// pioneerStop and pioneerDone coordinate the speculative slice-prefetch
	// goroutine (startPioneer in colordynamic.go); pioneerDone is nil when
	// no pioneer was spawned.
	pioneerStop atomic.Bool
	pioneerDone chan struct{}
}

func newBuilder(ctx *compile.Context, name string, c *circuit.Circuit, sys *phys.System, opts Options) (*builder, error) {
	opts = opts.withDefaults()
	if c.NumQubits > sys.Device.Qubits {
		return nil, fmt.Errorf("schedule: circuit needs %d qubits, device has %d",
			c.NumQubits, sys.Device.Qubits)
	}
	lo, hi := sys.CommonRange()
	if hi <= lo {
		return nil, fmt.Errorf("schedule: empty common tunable range [%v, %v]", lo, hi)
	}
	part := smt.PartitionFor(lo, hi)
	for _, g := range c.Gates {
		if g.Kind.IsTwoQubit() && !sys.Device.Coupling.HasEdge(g.Qubits[0], g.Qubits[1]) {
			return nil, fmt.Errorf("schedule: gate %v acts on uncoupled qubits; route the circuit onto %q first",
				g, sys.Device.Name)
		}
	}
	dec := circuit.Decompose(c, opts.Decompose)
	// Widen the circuit to the full device so every qubit gets a parking
	// frequency even if unused.
	if dec.NumQubits < sys.Device.Qubits {
		wide := circuit.New(sys.Device.Qubits)
		wide.Gates = dec.Gates
		dec = wide
	}
	sig := compile.SystemSignature(sys)
	park, err := ctx.Parking(sig, func() ([]float64, error) {
		return parkingFrequencies(ctx, sys, part)
	})
	if err != nil {
		return nil, err
	}
	ana := ctx.Analysis(dec)
	b := &builder{
		ctx:   ctx,
		sys:   sys,
		sig:   sig,
		opts:  opts,
		part:  part,
		circ:  dec,
		ana:   ana,
		front: ana.NewFrontier(),
		crit:  ana.Criticality(),
		xg:    ctx.Xtalk(sys.Device, opts.XtalkDistance),
		park:  park,
		scr:   acquireScratch(sys.Device.Qubits),
		sched: &Schedule{
			System:        sys,
			Strategy:      name,
			Compiled:      dec,
			CompiledDepth: ana.Depth(),
			ParkingFreqs:  park,
			Residual:      opts.Residual,
		},
	}
	return b, nil
}

// setFreq stages qubit q's interaction frequency for the slice being built.
func (b *builder) setFreq(q int, f float64) {
	s := b.scr
	if !s.freqSet[q] {
		s.freqSet[q] = true
		s.staged = append(s.staged, int32(q))
	}
	s.freqs[q] = f
}

// parkingStagger is the half-width (GHz) of the deterministic within-class
// idle-frequency scatter, and parkingStaggerLevels the number of distinct
// offsets. Qubits of the same parking class sit at device distance two and
// couple through their common neighbor; staggering their idle frequencies
// detunes that mediated channel. The paper's example frequencies (Fig 14)
// show exactly this ±50 MHz scatter inside each checkerboard class.
const (
	parkingStagger       = 0.06
	parkingStaggerLevels = 5
)

// parkingFrequencies colors the connectivity graph (2 colors on bipartite
// devices), maps colors to well-separated base frequencies in the parking
// band (§IV-C1), and staggers qubits within each class. Sideband separation
// between classes is enforced by the solver.
func parkingFrequencies(ctx *compile.Context, sys *phys.System, part smt.Partition) ([]float64, error) {
	gc := sys.Device.Coupling
	col, ok := graph.TwoColor(gc)
	if !ok {
		col = graph.WelshPowell(gc)
	}
	k := col.NumColors()
	if k == 0 { // single-qubit device with no couplers
		k = 1
		col = make(graph.Coloring, sys.Device.Qubits) // all color 0
	}
	// Reserve the stagger margin at both band edges so offsets stay inside
	// the parking region.
	cfg := part.ParkingConfig(sys.MeanAnharmonicity())
	cfg.Lo += parkingStagger
	cfg.Hi -= parkingStagger
	freqs, _, err := ctx.SolveSMT(k, cfg)
	if err != nil {
		return nil, fmt.Errorf("schedule: parking assignment: %w", err)
	}
	park := make([]float64, sys.Device.Qubits)
	for q := 0; q < sys.Device.Qubits; q++ {
		base := freqs[int(col[q])%len(freqs)]
		park[q] = base + staggerOffset(sys, q)
	}
	return park, nil
}

// staggerOffset returns a deterministic offset in [−parkingStagger,
// +parkingStagger]. On devices with coordinates, the pattern (row + 2·col)
// mod 5 guarantees any two qubits at grid distance two receive different
// offsets, so same-class mediated pairs are always detuned.
func staggerOffset(sys *phys.System, q int) float64 {
	var idx int
	if c, ok := sys.Device.Coords[q]; ok {
		idx = ((c.Row+2*c.Col)%parkingStaggerLevels + parkingStaggerLevels) % parkingStaggerLevels
	} else {
		idx = (q * 3) % parkingStaggerLevels
	}
	step := 2 * parkingStagger / float64(parkingStaggerLevels-1)
	return -parkingStagger + float64(idx)*step
}

// gateDuration returns the duration in ns of a native gate executed at
// frequency freq. Two-qubit durations follow Appendix B with the coupling
// scaled to the interaction frequency (t_gate ~ 1/ω, §V-B3). Z-axis
// rotations are virtual frame updates and take no time.
func (b *builder) gateDuration(g circuit.Gate, freq float64) float64 {
	if !g.Kind.IsTwoQubit() {
		if g.Kind.IsVirtual() {
			return 0
		}
		return phys.SingleQubitGateTime
	}
	g0 := b.sys.G0(g.Qubits[0], g.Qubits[1])
	gAt := phys.CouplingAt(g0, freq, b.part.IntHi)
	switch g.Kind {
	case circuit.ISwap:
		return phys.ISwapTime(gAt)
	case circuit.SqrtISwap:
		return phys.SqrtISwapTime(gAt)
	case circuit.CZ:
		return phys.CZTime(gAt)
	}
	panic(fmt.Sprintf("schedule: non-native two-qubit gate %v reached the scheduler", g.Kind))
}

// emitSlice appends a slice holding the given events, consuming the staged
// per-qubit frequencies (setFreq) of the builder's scratch; parked qubits
// are filled in here. The scratch slice state is reset afterwards.
func (b *builder) emitSlice(events []GateEvent, colors int, delta float64) {
	if len(events) == 0 {
		b.scr.resetSlice()
		return
	}
	s := b.scr
	full := make([]float64, b.sys.Device.Qubits)
	for q := range full {
		if s.freqSet[q] {
			full[q] = s.freqs[q]
		} else {
			full[q] = b.park[q]
		}
	}
	dur := 0.0
	var active []graph.Edge
	n2q := 0
	for _, ev := range events {
		if ev.Gate.Kind.IsTwoQubit() {
			n2q++
		}
	}
	if n2q > 0 {
		active = make([]graph.Edge, 0, n2q)
	}
	for _, ev := range events {
		if ev.Duration > dur {
			dur = ev.Duration
		}
		if ev.Gate.Kind.IsTwoQubit() {
			active = append(active, graph.NewEdge(ev.Gate.Qubits[0], ev.Gate.Qubits[1]))
		}
	}
	if dur > 0 {
		// Retuning overhead applies only when something physical happens;
		// a slice of virtual frame updates is free.
		dur += phys.FluxRampTime
	}
	b.sched.Slices = append(b.sched.Slices, Slice{
		Start:          b.now,
		Duration:       dur,
		Gates:          events,
		Freqs:          full,
		ActiveCouplers: active,
		Colors:         colors,
		Delta:          delta,
	})
	if colors > b.sched.MaxColorsUsed {
		b.sched.MaxColorsUsed = colors
	}
	b.now += dur
	s.resetSlice()
}

func (b *builder) finish() *Schedule {
	b.sched.TotalTime = b.now
	b.releasePooled()
	return b.sched
}

// abort returns the builder's pooled resources on an error path (finish
// does the same for successful compiles); the builder must not be used
// afterwards.
func (b *builder) abort() { b.releasePooled() }

func (b *builder) releasePooled() {
	b.scr.release()
	b.scr = nil
	b.front.Release()
	b.front = nil
}

// sortByCriticality orders ready gate indices by descending criticality
// (Algorithm 1 line 11), breaking ties by program order.
func sortByCriticality(ready []int, crit []int32) {
	for i := 1; i < len(ready); i++ {
		for j := i; j > 0; j-- {
			a, b := ready[j-1], ready[j]
			if crit[b] > crit[a] || (crit[b] == crit[a] && b < a) {
				ready[j-1], ready[j] = b, a
			} else {
				break
			}
		}
	}
}

// Verify checks schedule invariants: every compiled gate appears exactly
// once, slices never reuse a qubit, active frequencies lie in the
// interaction band, and slice times are contiguous. Used by tests and
// available to callers as a safety net.
func (s *Schedule) Verify() error {
	count := 0
	now := 0.0
	used := make([]bool, s.System.Device.Qubits)
	for i, sl := range s.Slices {
		if math.Abs(sl.Start-now) > 1e-6 {
			return fmt.Errorf("schedule: slice %d starts at %v, want %v", i, sl.Start, now)
		}
		now += sl.Duration
		for q := range used {
			used[q] = false
		}
		for _, ev := range sl.Gates {
			count++
			for _, q := range ev.Gate.Qubits {
				if used[q] {
					return fmt.Errorf("schedule: slice %d reuses qubit %d", i, q)
				}
				used[q] = true
			}
		}
	}
	if count != s.Compiled.NumGates() {
		return fmt.Errorf("schedule: issued %d gates, compiled circuit has %d", count, s.Compiled.NumGates())
	}
	if math.Abs(now-s.TotalTime) > 1e-6 {
		return fmt.Errorf("schedule: total time %v, slices sum to %v", s.TotalTime, now)
	}
	return nil
}
