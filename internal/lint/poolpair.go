package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolPairAnalyzer pairs sync.Pool acquisitions with their releases: a
// value bound by `x := pool.Get()` (with or without a type assertion)
// must reach a `pool.Put(x)` or an `x.Release()`/`x.release()` in the
// same function — deferred, or ordered so that no return statement can
// exit the function between the Get and the first release (the classic
// pooled-scratch leak is an early error return). Acquisitions that
// intentionally escape — constructors like circuit.NewFrontier or
// schedule.acquireScratch that hand the pooled value to their caller,
// whose own contract pairs it with a Release — carry the standard
// suppression with an "escapes:" reason, which the driver counts.
//
// The analysis is intraprocedural and tracks only values bound to plain
// identifiers; cross-function custody (a builder releasing in finish())
// stays the province of the runtime alloc-regression tests.
var PoolPairAnalyzer = &Analyzer{
	Name: "poolpair",
	Doc: "sync.Pool Get must be paired with Put/Release on every path " +
		"or carry an //fastsc:ignore poolpair -- escapes: reason",
	Run: runPoolPair,
}

var releaseNames = map[string]bool{"Release": true, "release": true, "Put": true, "put": true}

func runPoolPair(pass *Pass) {
	forEachFuncDecl(pass.Files, func(fn *ast.FuncDecl) {
		checkPoolPairs(pass, fn)
	})
}

type poolAcq struct {
	obj  types.Object
	pool string
	pos  token.Pos
}

type poolRelease struct {
	obj      types.Object
	pos      token.Pos
	deferred bool
}

func checkPoolPairs(pass *Pass, fn *ast.FuncDecl) {
	var acqs []poolAcq
	var rels []poolRelease
	var returns []token.Pos

	inspectStack([]*ast.File{wrapBody(fn)}, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return
			}
			id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident)
			if !ok {
				return
			}
			if pool, ok := poolGetCall(pass, n.Rhs[0]); ok {
				acqs = append(acqs, poolAcq{pass.ObjectOf(id), pool, n.Pos()})
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || !releaseNames[sel.Sel.Name] {
				return
			}
			deferred := false
			for _, anc := range stack {
				if d, ok := anc.(*ast.DeferStmt); ok && d.Call == n {
					deferred = true
				}
			}
			if _, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && isSyncPool(pass.TypeOf(sel.X)) {
				// pool.Put(x): releases every identifier argument.
				for _, arg := range n.Args {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						rels = append(rels, poolRelease{pass.ObjectOf(id), n.Pos(), deferred})
					}
				}
				return
			}
			// x.Release() / x.release(): releases the receiver.
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				rels = append(rels, poolRelease{pass.ObjectOf(id), n.Pos(), deferred})
			}
		}
	})

	for _, a := range acqs {
		if a.obj == nil {
			continue
		}
		first := token.Pos(-1)
		deferred := false
		for _, r := range rels {
			if r.obj != a.obj {
				continue
			}
			if r.deferred {
				deferred = true
			}
			if first < 0 || r.pos < first {
				first = r.pos
			}
		}
		switch {
		case first < 0:
			pass.Reportf(a.pos,
				"%s acquired from %s is never released in this function; pair it with a Put/Release (or suppress with an escapes: reason)",
				a.obj.Name(), a.pool)
		case deferred:
			// A deferred release covers every path.
		default:
			for _, ret := range returns {
				if ret > a.pos && ret < first {
					pass.Reportf(a.pos,
						"%s acquired from %s may leak on the return at %s before its release; release it in a defer or on that path",
						a.obj.Name(), a.pool, pass.Fset.Position(ret))
					break
				}
			}
		}
	}
}

// poolGetCall matches `pool.Get()` optionally wrapped in a type
// assertion, returning a printable pool name.
func poolGetCall(pass *Pass, e ast.Expr) (string, bool) {
	if ta, ok := ast.Unparen(e).(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" || !isSyncPool(pass.TypeOf(sel.X)) {
		return "", false
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		return id.Name, true
	}
	return "sync.Pool", true
}

// wrapBody adapts a single function declaration to inspectStack's file
// slice interface by walking just that declaration.
func wrapBody(fn *ast.FuncDecl) *ast.File {
	return &ast.File{Name: ast.NewIdent("_"), Decls: []ast.Decl{fn}}
}
