package phys

import (
	"math"
	"testing"
	"testing/quick"
)

func TestResidualCouplingClampAndDecay(t *testing.T) {
	g0 := 0.030
	if g := ResidualCoupling(g0, 0); g != g0 {
		t.Fatalf("on-resonance residual = %v, want %v", g, g0)
	}
	if g := ResidualCoupling(g0, 0.001); g != g0 {
		t.Fatalf("near-resonance residual should clamp at g0, got %v", g)
	}
	// Far detuning: g' = g0^2/δω.
	if g := ResidualCoupling(g0, 0.9); math.Abs(g-g0*g0/0.9) > 1e-12 {
		t.Fatalf("far residual = %v", g)
	}
	// Symmetric in sign of detuning.
	if ResidualCoupling(g0, 0.5) != ResidualCoupling(g0, -0.5) {
		t.Fatal("residual coupling should depend on |δω|")
	}
}

func TestDressedCouplingLimits(t *testing.T) {
	g0 := 0.030
	if g := DressedCoupling(g0, 0); math.Abs(g-g0) > 1e-12 {
		t.Fatalf("dressed coupling on resonance = %v, want %v", g, g0)
	}
	// Large detuning limit: g_eff -> g0^2/δω.
	d := 3.0
	want := g0 * g0 / d
	if g := DressedCoupling(g0, d); math.Abs(g-want)/want > 1e-3 {
		t.Fatalf("dressed coupling at δω=%v: %v, want ≈%v", d, g, want)
	}
}

func TestDressedCouplingMonotone(t *testing.T) {
	g0 := 0.030
	prev := DressedCoupling(g0, 0)
	for d := 0.01; d < 2; d += 0.01 {
		g := DressedCoupling(g0, d)
		if g > prev+1e-15 {
			t.Fatalf("dressed coupling increased at δω=%v", d)
		}
		prev = g
	}
}

func TestTransitionProbabilityResonant(t *testing.T) {
	g := 0.030
	// First complete transfer at t = 1/(4g).
	tFull := 1 / (4 * g)
	if p := TransitionProbability(g, 0, tFull); math.Abs(p-1) > 1e-9 {
		t.Fatalf("P(resonant, t=1/4g) = %v, want 1", p)
	}
	// Half period: zero transfer again at t = 1/(2g).
	if p := TransitionProbability(g, 0, 2*tFull); p > 1e-9 {
		t.Fatalf("P(resonant, t=1/2g) = %v, want 0", p)
	}
	if p := TransitionProbability(g, 0, 0); p != 0 {
		t.Fatalf("P(t=0) = %v", p)
	}
}

func TestTransitionProbabilityDetuned(t *testing.T) {
	g := 0.030
	// Peak transfer falls off as 4g²/(δ²+4g²).
	delta := 0.12
	wantMax := 4 * g * g / (delta*delta + 4*g*g)
	// Scan for the max.
	max := 0.0
	for tt := 0.0; tt < 40; tt += 0.01 {
		if p := TransitionProbability(g, delta, tt); p > max {
			max = p
		}
	}
	if math.Abs(max-wantMax) > 0.01 {
		t.Fatalf("max detuned transfer = %v, want %v", max, wantMax)
	}
}

func TestCrosstalkErrorShrinksWithDetuning(t *testing.T) {
	g0, dur := 0.030, 10.0
	eClose := CrosstalkError(g0, 0.05, dur)
	eFar := CrosstalkError(g0, 1.0, dur)
	if eFar >= eClose {
		t.Fatalf("crosstalk at far detuning (%v) should be below near (%v)", eFar, eClose)
	}
	if eFar > 0.01 {
		t.Fatalf("crosstalk at 1 GHz detuning = %v, want small", eFar)
	}
	if e := CrosstalkError(g0, 0, 1/(4*g0)); math.Abs(e-1) > 1e-9 {
		t.Fatalf("full-resonance crosstalk at swap time = %v, want 1", e)
	}
}

func TestGateTimes(t *testing.T) {
	g := 0.030
	iswap := ISwapTime(g)
	sqrt := SqrtISwapTime(g)
	cz := CZTime(g)
	if math.Abs(iswap-1/(4*g)) > 1e-12 {
		t.Fatalf("iSWAP time = %v", iswap)
	}
	if math.Abs(sqrt-iswap/2) > 1e-12 {
		t.Fatalf("√iSWAP should take half an iSWAP, got %v vs %v", sqrt, iswap)
	}
	// CZ uses √2·g and a full cycle: t = 1/(2√2 g) ≈ 1.18× iSWAP time.
	if cz <= iswap || cz >= 2*iswap {
		t.Fatalf("CZ time %v should lie between iSWAP %v and 2×iSWAP", cz, iswap)
	}
}

func TestCouplingAt(t *testing.T) {
	g0 := 0.030
	if g := CouplingAt(g0, 7.0, 7.0); g != g0 {
		t.Fatalf("coupling at reference = %v", g)
	}
	if g := CouplingAt(g0, 7.0, 3.5); math.Abs(g-2*g0) > 1e-12 {
		t.Fatalf("coupling should scale with ω: %v", g)
	}
	if g := CouplingAt(g0, 7.0, 0); g != g0 {
		t.Fatalf("zero reference should fall back to g0, got %v", g)
	}
}

// Property: transition probability is always in [0,1] and bounded by the
// Lorentzian envelope.
func TestTransitionProbabilityPropertyBounded(t *testing.T) {
	prop := func(gRaw, dRaw, tRaw uint16) bool {
		g := 0.001 + 0.1*float64(gRaw)/65535
		d := 2 * float64(dRaw) / 65535
		tt := 100 * float64(tRaw) / 65535
		p := TransitionProbability(g, d, tt)
		env := 4 * g * g / (d*d + 4*g*g)
		return p >= 0 && p <= env+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
