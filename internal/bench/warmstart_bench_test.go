package bench_test

import (
	"path/filepath"
	"testing"

	"fastsc/internal/circuit"
	"fastsc/internal/compile"
	"fastsc/internal/expt"
	"fastsc/internal/mapping"
	"fastsc/internal/topology"
)

// BenchmarkRouteWarmStart measures the layout/routing stage of the Fig 9
// workload set served from a shared read-only warm set (the -warm-set
// path) against computing it cold: one seed process routes everything and
// saves a snapshot; each warm iteration starts a fresh cache, attaches the
// snapshot as its warm tier, and re-routes the whole set, which must be
// warm-set hits end to end. The cold variant bounds what the warm tier
// saves; the warm variant's wall time is dominated by the one-time warm
// set load plus canonical decode of the pooled circuits.
func BenchmarkRouteWarmStart(b *testing.B) {
	suite := expt.Suite()
	circs := make([]*circuit.Circuit, len(suite))
	devs := make([]*topology.Device, len(suite))
	opts := make([]mapping.Options, len(suite))
	for i, bm := range suite {
		devs[i] = topology.SquareGrid(bm.Qubits)
		circs[i] = bm.Circuit(devs[i])
		opts[i] = mapping.Options{Placement: string(bm.Placement)}
	}

	seed := compile.NewContext(1)
	for i, c := range circs {
		if _, err := seed.Route(c, devs[i], opts[i]); err != nil {
			b.Fatal(err)
		}
	}
	path := filepath.Join(b.TempDir(), "route-warm.snap")
	if err := seed.Cache.Save(path); err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, warm bool) {
		var stats compile.Stats
		for i := 0; i < b.N; i++ {
			ctx := compile.NewContext(1)
			if warm {
				ctx.Cache.AttachWarmSet(compile.OpenWarmSet(path))
			}
			for j, c := range circs {
				if _, err := ctx.Route(c, devs[j], opts[j]); err != nil {
					b.Fatal(err)
				}
			}
			stats = ctx.Cache.StatsByRegion()[compile.RegionRoute]
			if warm && stats.WarmHits != uint64(len(suite)) {
				b.Fatalf("route region not fully warm-served: %+v", stats)
			}
		}
		b.ReportMetric(float64(stats.WarmHits), "warm-hits")
	}
	b.Run("cold", func(b *testing.B) { run(b, false) })
	b.Run("warm", func(b *testing.B) { run(b, true) })
}
