package expt

import (
	"fmt"

	"fastsc/internal/compile"
	"fastsc/internal/core"
	"fastsc/internal/schedule"
)

// Fig12Result carries the residual-coupling sensitivity study of Fig 12.
type Fig12Result struct {
	Table *Table
	// Success[benchmark][residual index] aligned with Residuals.
	Success   map[string][]float64
	Residuals []float64
}

// fig12Suite matches the paper's four XEB workloads.
func fig12Suite() []Benchmark {
	return []Benchmark{
		xebBench(9, 10),
		xebBench(16, 10),
		xebBench(9, 15),
		xebBench(16, 15),
	}
}

// Fig12ResidualCoupling reproduces Fig 12: Baseline G (gmon) success rate
// as the residual coupling factor of "switched-off" couplers grows from 0
// to 0.9, run through the batch engine. Fig 9's conservative assumption is
// r = 0; real tunable couplers leak, and performance decays steeply with r.
func Fig12ResidualCoupling(ctx *compile.Context) (*Fig12Result, error) {
	residuals := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	suite := fig12Suite()
	var jobs []core.BatchJob
	for _, b := range suite {
		sys := GridSystem(b.Qubits)
		circ := b.Circuit(sys.Device)
		for _, r := range residuals {
			cfg := jobConfig(b)
			cfg.Schedule = schedule.Options{Residual: r}
			jobs = append(jobs, core.BatchJob{
				Key:      fmt.Sprintf("%s/r=%.1f", b.Name, r),
				Circuit:  circ,
				System:   sys,
				Strategy: core.BaselineG,
				Config:   cfg,
			})
		}
	}
	results, err := core.BatchCollect(ctx, jobs)
	if err != nil {
		return nil, fmt.Errorf("fig12: %w", err)
	}

	res := &Fig12Result{Success: map[string][]float64{}, Residuals: residuals}
	cols := []string{"benchmark"}
	for _, r := range residuals {
		cols = append(cols, fmt.Sprintf("r=%.1f", r))
	}
	t := &Table{
		ID:      "fig12",
		Title:   "Baseline G success rate vs residual coupling factor",
		Columns: cols,
	}
	for _, b := range suite {
		row := []string{b.Name}
		for _, r := range residuals {
			result := results[fmt.Sprintf("%s/r=%.1f", b.Name, r)]
			res.Success[b.Name] = append(res.Success[b.Name], result.Report.Success)
			row = append(row, fmtG(result.Report.Success))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: success decays exponentially with residual coupling, motivating frequency-aware tuning even on gmon hardware")
	res.Table = t
	return res, nil
}
