package circuit

// Hybrid gate decomposition (§V-B5, Fig 8). CNOT and SWAP are not native to
// the tunable-transmon architecture; they are rewritten into sequences over
// {CZ, iSWAP, √iSWAP} plus single-qubit gates. The paper's hybrid strategy
// decomposes CNOT with CZ (1 native two-qubit gate) and SWAP with √iSWAP
// (3 short native gates), which is cheaper than forcing a single native
// family. All sequences below are exact up to global phase; the test suite
// re-verifies each against the logical unitary.

// DecomposeStrategy selects the native-gate family used for CNOT and SWAP.
type DecomposeStrategy int

const (
	// Hybrid implements the paper's strategy: CNOT via CZ, SWAP via √iSWAP.
	Hybrid DecomposeStrategy = iota
	// PureCZ decomposes both CNOT and SWAP into CZ-based sequences.
	PureCZ
	// PureISwap decomposes both into iSWAP-based sequences.
	PureISwap
)

func (s DecomposeStrategy) String() string {
	switch s {
	case Hybrid:
		return "hybrid"
	case PureCZ:
		return "pure-cz"
	case PureISwap:
		return "pure-iswap"
	}
	return "unknown"
}

// Decompose returns a new circuit in which every CNOT and SWAP has been
// replaced by its native sequence under the chosen strategy. Native gates
// pass through unchanged.
func Decompose(c *Circuit, s DecomposeStrategy) *Circuit {
	out := New(c.NumQubits)
	for _, g := range c.Gates {
		switch g.Kind {
		case CNOT:
			ctrl, tgt := g.Qubits[0], g.Qubits[1]
			if s == PureISwap {
				appendCNOTViaISwap(out, ctrl, tgt)
			} else {
				appendCNOTViaCZ(out, ctrl, tgt)
			}
		case SWAP:
			a, b := g.Qubits[0], g.Qubits[1]
			switch s {
			case Hybrid:
				appendSWAPViaSqrtISwap(out, a, b)
			case PureCZ:
				appendSWAPViaCZ(out, a, b)
			case PureISwap:
				// Three iSWAP-decomposed CNOTs.
				appendCNOTViaISwap(out, a, b)
				appendCNOTViaISwap(out, b, a)
				appendCNOTViaISwap(out, a, b)
			}
		default:
			out.Add(g)
		}
	}
	return out
}

// appendCNOTViaCZ emits CNOT(ctrl,tgt) = (I⊗H)·CZ·(I⊗H) (Fig 8c).
func appendCNOTViaCZ(c *Circuit, ctrl, tgt int) {
	c.H(tgt)
	c.CZ(ctrl, tgt)
	c.H(tgt)
}

// appendSWAPViaCZ emits SWAP as three CZ-decomposed CNOTs (Fig 8d).
func appendSWAPViaCZ(c *Circuit, a, b int) {
	appendCNOTViaCZ(c, a, b)
	appendCNOTViaCZ(c, b, a)
	appendCNOTViaCZ(c, a, b)
}

// appendCNOTViaISwap emits the two-iSWAP realization of CNOT (Fig 8a).
// With the paper's iSWAP convention (off-diagonal −i), the exact identity
// (up to global phase) is
//
//	CNOT = (S ⊗ Z·Rx(π/2)) · iSWAP · (Z·Ry(π/2) ⊗ Z) · iSWAP · (Z ⊗ Z)
//
// where the left factor of each tensor product acts on the control. The
// sequence was synthesized by exhaustive search over Clifford local layers
// and is re-verified numerically in the tests.
func appendCNOTViaISwap(c *Circuit, ctrl, tgt int) {
	c.Z(ctrl)
	c.Z(tgt)
	c.ISwap(ctrl, tgt)
	c.RY(ctrl, pi/2)
	c.Z(ctrl)
	c.Z(tgt)
	c.ISwap(ctrl, tgt)
	c.S(ctrl)
	c.RX(tgt, pi/2)
	c.Z(tgt)
}

// appendSWAPViaSqrtISwap emits the three-√iSWAP realization of SWAP
// (Fig 8b). With the paper's √iSWAP convention the exact identity (up to
// global phase) is
//
//	SWAP = (H·S ⊗ H·S) · √iSWAP · (Z·H·S ⊗ Z·H·S) · √iSWAP
//	        · (Z·H·S ⊗ Z·H·S) · √iSWAP · (Z ⊗ Z)
//
// (each local factor listed left-to-right in matrix order, i.e. S applies
// first). Synthesized by Clifford-layer search; verified in tests.
func appendSWAPViaSqrtISwap(c *Circuit, a, b int) {
	c.Z(a)
	c.Z(b)
	c.SqrtISwap(a, b)
	for _, q := range []int{a, b} {
		c.S(q)
		c.H(q)
		c.Z(q)
	}
	c.SqrtISwap(a, b)
	for _, q := range []int{a, b} {
		c.S(q)
		c.H(q)
		c.Z(q)
	}
	c.SqrtISwap(a, b)
	for _, q := range []int{a, b} {
		c.S(q)
		c.H(q)
	}
}

const pi = 3.14159265358979323846
