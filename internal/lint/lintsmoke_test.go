package lint_test

import (
	"testing"

	"fastsc/internal/lint"
	"fastsc/internal/lint/linttest"
)

// TestLintSmokeFixtureFails pins the seeded violations in the lintsmoke
// fixture — the package CI's lint-smoke step feeds to the real fastscvet
// binary expecting a nonzero exit. If a suite change ever stops flagging
// it, this test fails offline before CI's self-test would.
func TestLintSmokeFixtureFails(t *testing.T) {
	res := linttest.Run(t, "lintsmoke", lint.Analyzers()...)
	if len(res.Diagnostics) < 2 {
		t.Fatalf("lintsmoke fixture produced %d findings, want >= 2 (maporder + hotalloc)", len(res.Diagnostics))
	}
	if len(res.Suppressed) != 0 {
		t.Errorf("lintsmoke fixture honored %d suppressions, want 0", len(res.Suppressed))
	}
}

func TestSuiteShape(t *testing.T) {
	as := lint.Analyzers()
	if len(as) != 5 {
		t.Fatalf("suite has %d analyzers, want 5", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
