package lint_test

import (
	"testing"

	"fastsc/internal/lint"
	"fastsc/internal/lint/linttest"
)

func TestHotAllocFixture(t *testing.T) {
	linttest.Run(t, "hotalloc", lint.HotAllocAnalyzer)
}
