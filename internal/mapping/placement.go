package mapping

import (
	"fmt"
	"sort"

	"fastsc/internal/circuit"
	"fastsc/internal/topology"
)

// Placement strategy names accepted by Options.Placement.
const (
	// PlaceIdentity maps logical qubit i to physical qubit i (the default;
	// the empty string selects it too).
	PlaceIdentity = "identity"
	// PlaceSnake lays logical qubits along the device's boustrophedon
	// order, the natural embedding for chain-structured circuits (ISING,
	// QGAN).
	PlaceSnake = "snake"
	// PlaceDegree seats high-interaction logical qubits on high-degree
	// physical qubits: logical qubits ranked by their two-qubit-gate counts
	// (circuit.Analysis.InteractionCounts) are greedily matched to physical
	// qubits ranked by coupling degree. It helps star-shaped interaction
	// patterns (BV's ancilla, dense QAOA vertices) start near the device
	// center instead of a corner.
	PlaceDegree = "degree"
)

// PlacementNames lists the selectable placement strategies.
func PlacementNames() []string { return []string{PlaceIdentity, PlaceSnake, PlaceDegree} }

// InitialMapping computes the initial logical→physical embedding of c on
// dev under the named strategy ("" means PlaceIdentity). ana may be nil;
// the degree strategy analyzes c itself when it is missing. The identity
// strategy returns a nil mapping (routers treat nil as identity without
// allocating).
func InitialMapping(name string, c *circuit.Circuit, ana *circuit.Analysis, dev *topology.Device) (*Mapping, error) {
	if c.NumQubits > dev.Qubits {
		return nil, fmt.Errorf("mapping: circuit needs %d qubits, device %q has %d",
			c.NumQubits, dev.Name, dev.Qubits)
	}
	switch name {
	case "", PlaceIdentity:
		return nil, nil
	case PlaceSnake:
		return FromOrder(c.NumQubits, SnakeOrder(dev), dev.Qubits), nil
	case PlaceDegree:
		if ana == nil {
			ana = circuit.Analyze(c)
		}
		return degreeMapping(c, ana, dev), nil
	}
	return nil, fmt.Errorf("mapping: unknown placement %q (want one of %v)", name, PlacementNames())
}

// degreeMapping greedily matches interaction rank to degree rank: the
// logical qubit with the most two-qubit gates lands on the physical qubit
// with the most couplers, and so on. Ties break toward smaller ids on both
// sides, so the embedding is deterministic.
func degreeMapping(c *circuit.Circuit, ana *circuit.Analysis, dev *topology.Device) *Mapping {
	inter := ana.InteractionCounts()
	logical := make([]int, c.NumQubits)
	for i := range logical {
		logical[i] = i
	}
	sort.SliceStable(logical, func(i, j int) bool {
		return inter[logical[i]] > inter[logical[j]]
	})
	physical := dev.QubitsSorted()
	sort.SliceStable(physical, func(i, j int) bool {
		return dev.Degree(physical[i]) > dev.Degree(physical[j])
	})
	order := make([]int, c.NumQubits)
	for rank, lq := range logical {
		order[lq] = physical[rank]
	}
	return FromOrder(c.NumQubits, order, dev.Qubits)
}
