package phys

import (
	"math"
	"testing"

	"fastsc/internal/topology"
)

func TestNewSystemDeterministic(t *testing.T) {
	dev := topology.Grid(3, 3)
	s1 := NewSystem(dev, DefaultParams(), 42)
	s2 := NewSystem(dev, DefaultParams(), 42)
	for q := 0; q < dev.Qubits; q++ {
		if s1.Qubits[q].OmegaMax != s2.Qubits[q].OmegaMax {
			t.Fatalf("same seed produced different chips at qubit %d", q)
		}
	}
	s3 := NewSystem(dev, DefaultParams(), 43)
	same := true
	for q := 0; q < dev.Qubits; q++ {
		if s1.Qubits[q].OmegaMax != s3.Qubits[q].OmegaMax {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical chips")
	}
}

func TestNewSystemSpread(t *testing.T) {
	dev := topology.Grid(5, 5)
	p := DefaultParams()
	s := NewSystem(dev, p, 7)
	mean := 0.0
	for _, tr := range s.Qubits {
		mean += tr.OmegaMax
	}
	mean /= float64(len(s.Qubits))
	if math.Abs(mean-p.OmegaMax) > 3*p.OmegaSigma {
		t.Fatalf("sampled mean %v too far from %v", mean, p.OmegaMax)
	}
}

func TestSystemG0(t *testing.T) {
	dev := topology.Grid(2, 2)
	s := NewSystem(dev, DefaultParams(), 1)
	if g := s.G0(0, 1); g != DefaultG0 {
		t.Fatalf("G0(0,1) = %v", g)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("G0 on uncoupled pair did not panic")
		}
	}()
	s.G0(0, 3) // diagonal, not coupled on a 2x2 grid
}

func TestCommonRange(t *testing.T) {
	dev := topology.Grid(3, 3)
	s := NewSystem(dev, DefaultParams(), 11)
	lo, hi := s.CommonRange()
	if lo >= hi {
		t.Fatalf("empty common range [%v, %v]", lo, hi)
	}
	for q, tr := range s.Qubits {
		qlo, qhi := tr.TunableRange()
		if lo < qlo-1e-9 || hi > qhi+1e-9 {
			t.Fatalf("common range [%v,%v] exceeds qubit %d range [%v,%v]", lo, hi, q, qlo, qhi)
		}
	}
	// The parking (5 GHz) and interaction (near 6.5-7) regions must be
	// reachable by every qubit for the paper's partition to work.
	if lo > 5.0 || hi < 6.5 {
		t.Fatalf("common range [%v,%v] too narrow for the paper's partition", lo, hi)
	}
}

func TestMeanAnharmonicity(t *testing.T) {
	dev := topology.Grid(2, 2)
	s := NewSystem(dev, DefaultParams(), 1)
	if a := s.MeanAnharmonicity(); math.Abs(a+DefaultEC) > 1e-12 {
		t.Fatalf("mean anharmonicity = %v, want %v", a, -DefaultEC)
	}
}

func TestDefaultSystemStableAcrossCalls(t *testing.T) {
	dev := topology.Grid(3, 3)
	a := DefaultSystem(dev)
	b := DefaultSystem(dev)
	for q := range a.Qubits {
		if a.Qubits[q].OmegaMax != b.Qubits[q].OmegaMax {
			t.Fatal("DefaultSystem not deterministic for same device")
		}
	}
}
