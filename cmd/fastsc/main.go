// Command fastsc compiles a benchmark circuit onto a simulated tunable-
// transmon device with one of the five strategies of Table I and prints the
// schedule summary and the worst-case success estimate.
//
// Examples:
//
//	fastsc -bench xeb -n 16 -cycles 10 -strategy ColorDynamic
//	fastsc -bench qgan -n 25 -strategy "Baseline U" -verbose
//	fastsc -bench ising -n 9 -topology linear -strategy ColorDynamic
//	fastsc -bench bv -n 16 -compare
//	fastsc -qasm mycircuit.qasm -n 16 -strategy ColorDynamic
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"text/tabwriter"

	"fastsc/internal/bench"
	"fastsc/internal/circuit"
	"fastsc/internal/compile"
	"fastsc/internal/core"
	"fastsc/internal/mapping"
	"fastsc/internal/phys"
	"fastsc/internal/qasm"
	"fastsc/internal/schedule"
	"fastsc/internal/topology"
)

func main() {
	var (
		benchName = flag.String("bench", "xeb", "benchmark: bv | qaoa | ising | qgan | xeb")
		qasmFile  = flag.String("qasm", "", "compile an OpenQASM file instead of a generated benchmark")
		n         = flag.Int("n", 16, "number of qubits (square for grid topologies)")
		cycles    = flag.Int("cycles", 10, "XEB cycles / Ising Trotter steps / QGAN layers (0 = default)")
		topo      = flag.String("topology", "grid", "device: grid | linear | ring | 1ex-K | 2ex-K (e.g. 1ex-3)")
		strategy  = flag.String("strategy", core.ColorDynamic, "compilation strategy (Table I name)")
		compare   = flag.Bool("compare", false, "run all five strategies and print a comparison")
		seed      = flag.Int64("seed", 7, "workload seed")
		devSeed   = flag.Int64("device-seed", 42, "chip fabrication seed")
		maxColors = flag.Int("max-colors", 0, "ColorDynamic color budget (0 = default 2, -1 = unlimited)")
		residual  = flag.Float64("residual", 0, "gmon residual coupling factor r")
		dist      = flag.Int("distance", 0, "crosstalk distance d (0 = default 2)")
		workers   = flag.Int("workers", 0, "batch-engine worker pool size for -compare (0 = GOMAXPROCS)")
		cacheFile = flag.String("cache-file", "", "cache snapshot path: loaded before compiling (cold start if missing/stale) and saved afterwards; a .gz suffix writes it compressed")
		warmSet   = flag.String("warm-set", "", "read-only shared warm-set snapshot: probed after a local cache miss, never written")
		router    = flag.String("router", "", "routing algorithm: greedy (default) | lookahead")
		place     = flag.String("placement", "", "initial placement: identity | snake | degree (default: benchmark's natural choice)")
		verbose   = flag.Bool("verbose", false, "print every slice with its frequencies")
	)
	flag.Parse()

	if _, err := mapping.NewRouter(mapping.RouterConfig{Algorithm: *router}); err != nil {
		fatal(err)
	}
	if *place != "" && !slices.Contains(mapping.PlacementNames(), *place) {
		fatal(fmt.Errorf("unknown placement %q (want one of %v)", *place, mapping.PlacementNames()))
	}

	dev, err := buildDevice(*topo, *n)
	if err != nil {
		fatal(err)
	}
	sys := phys.NewSystem(dev, phys.DefaultParams(), *devSeed)
	var circ *circuit.Circuit
	placement := core.PlaceIdentity
	if *qasmFile != "" {
		src, err := os.ReadFile(*qasmFile)
		if err != nil {
			fatal(err)
		}
		parsed, err := qasm.Parse(string(src))
		if err != nil {
			fatal(err)
		}
		for _, skipped := range parsed.Skipped {
			fmt.Fprintf(os.Stderr, "fastsc: ignoring %q\n", skipped)
		}
		circ = parsed.Circuit
	} else {
		var err error
		circ, placement, err = buildCircuit(*benchName, *n, *cycles, dev, *seed)
		if err != nil {
			fatal(err)
		}
	}
	if *place != "" {
		placement = core.Placement(*place)
	}
	cfg := core.Config{
		Placement: placement,
		Router:    mapping.RouterConfig{Algorithm: *router},
		Schedule: schedule.Options{
			MaxColors:     *maxColors,
			Residual:      *residual,
			XtalkDistance: *dist,
		},
	}

	ctx := &compile.Context{Cache: compile.NewCache(0), Workers: *workers}
	if *cacheFile != "" {
		res, err := ctx.Cache.LoadSnapshot(*cacheFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fastsc: cache snapshot: %v (starting cold)\n", err)
		} else if res.Degraded != "" {
			fmt.Fprintf(os.Stderr, "fastsc: cache snapshot %s degraded (%s): starting cold\n", *cacheFile, res.Degraded)
		}
	}
	if *warmSet != "" {
		ws := compile.OpenWarmSet(*warmSet)
		if res, err := ws.Result(); err != nil {
			fmt.Fprintf(os.Stderr, "fastsc: warm set: %v (ignored)\n", err)
		} else if res.Degraded != "" {
			fmt.Fprintf(os.Stderr, "fastsc: warm set %s degraded (%s): ignored\n", *warmSet, res.Degraded)
		}
		ctx.Cache.AttachWarmSet(ws)
	}
	if *compare {
		runComparison(ctx, circ, sys, cfg)
	} else {
		res, err := core.CompileCtx(ctx, circ, sys, *strategy, cfg)
		if err != nil {
			fatal(err)
		}
		printResult(*strategy, dev, circ, res, *verbose)
	}
	if *cacheFile != "" {
		if err := ctx.Cache.Save(*cacheFile); err != nil {
			fmt.Fprintf(os.Stderr, "fastsc: cache snapshot: %v\n", err)
		}
	}
}

func buildDevice(name string, n int) (*topology.Device, error) {
	return topology.FromSpec(name, n)
}

func buildCircuit(name string, n, cycles int, dev *topology.Device, seed int64) (*circuit.Circuit, core.Placement, error) {
	switch name {
	case "bv":
		return bench.BV(n, seed), core.PlaceIdentity, nil
	case "qaoa":
		return bench.QAOA(n, seed), core.PlaceIdentity, nil
	case "ising":
		return bench.Ising(n, cycles), core.PlaceSnake, nil
	case "qgan":
		return bench.QGAN(n, cycles, seed), core.PlaceSnake, nil
	case "xeb":
		if cycles <= 0 {
			cycles = 10
		}
		return bench.XEB(dev, cycles, seed), core.PlaceIdentity, nil
	}
	return nil, core.PlaceIdentity, fmt.Errorf("unknown benchmark %q", name)
}

func runComparison(ctx *compile.Context, circ *circuit.Circuit, sys *phys.System, cfg core.Config) {
	results, err := core.CompileAllCtx(ctx, circ, sys, cfg)
	if err != nil {
		fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tsuccess\tcrosstalk\tdecoherence\tdepth\tduration\tcolors\tcompile")
	for _, name := range core.Strategies() {
		r := results[name]
		fmt.Fprintf(w, "%s\t%.4g\t%.4f\t%.4f\t%d\t%.0f ns\t%d\t%s\n",
			name, r.Report.Success, r.Report.CrosstalkError, r.Report.DecoherenceError,
			r.Schedule.Depth(), r.Schedule.TotalTime, r.Schedule.MaxColorsUsed,
			r.CompileTime.Round(1000))
	}
	w.Flush()
}

func printResult(strategy string, dev *topology.Device, circ *circuit.Circuit, res *core.Result, verbose bool) {
	fmt.Printf("device:        %s (%d qubits, %d couplers)\n",
		dev.Name, dev.Qubits, dev.Coupling.NumEdges())
	// Depth via the flat analyzed-circuit IR, not the reference ASAPLayers.
	fmt.Printf("circuit:       %d gates (%d two-qubit), depth %d\n",
		circ.NumGates(), circ.TwoQubitGateCount(), circuit.Analyze(circ).Depth())
	fmt.Printf("strategy:      %s\n", strategy)
	fmt.Printf("routing swaps: %d\n", res.SwapCount)
	fmt.Printf("schedule:      %d slices, %.0f ns, max %d colors (compiled asap depth %d)\n",
		res.Schedule.Depth(), res.Schedule.TotalTime, res.Schedule.MaxColorsUsed,
		res.Schedule.CompiledDepth)
	fmt.Printf("compile time:  %s\n", res.CompileTime)
	r := res.Report
	fmt.Printf("success:       %.4g\n", r.Success)
	fmt.Printf("  crosstalk    %.4f (gate-gate %.4f, spectator %.4f, ambient %.4f)\n",
		r.CrosstalkError, r.GateGateError, r.SpectatorError, r.AmbientError)
	fmt.Printf("  flux noise   %.4f\n", r.FluxError)
	fmt.Printf("  decoherence  %.4f\n", r.DecoherenceError)
	fmt.Printf("  intrinsic    %.4f\n", r.IntrinsicError)
	if verbose {
		fmt.Println("\nslices:")
		for i, sl := range res.Schedule.Slices {
			fmt.Printf("  [%3d] t=%.0f..%.0f ns, %d gates, %d colors:",
				i, sl.Start, sl.Start+sl.Duration, len(sl.Gates), sl.Colors)
			for _, ev := range sl.Gates {
				if ev.Gate.Kind.IsTwoQubit() {
					fmt.Printf(" %s@%.3f", ev.Gate, ev.Freq)
				} else {
					fmt.Printf(" %s", ev.Gate)
				}
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fastsc:", err)
	os.Exit(1)
}
