package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Shared AST/type predicates used by more than one analyzer.

// isNamedType reports whether t (after pointer stripping) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool { return isNamedType(t, "context", "Context") }

// isSyncPool reports whether t is sync.Pool or *sync.Pool.
func isSyncPool(t types.Type) bool { return isNamedType(t, "sync", "Pool") }

// isMap reports whether t's core type is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// calleeObject resolves the function or method object a call invokes,
// or nil for calls through function values, builtins and conversions.
func calleeObject(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPkgCall reports whether call invokes a function from the package with
// the given import path.
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string) bool {
	fn := calleeObject(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// rootObject resolves an lvalue-ish expression (x, x.f, x[i], *x) to the
// object of its leftmost identifier, the variable whose contents the
// expression reads or writes.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside [lo, hi].
func declaredWithin(obj types.Object, lo, hi token.Pos) bool {
	return obj != nil && obj.Pos() != token.NoPos && obj.Pos() >= lo && obj.Pos() <= hi
}

// funcDocHasMarker reports whether fn's doc comment contains a line whose
// comment text begins with marker (e.g. "//fastsc:hotpath").
func funcDocHasMarker(fn *ast.FuncDecl, marker string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if text := strings.TrimSpace(c.Text); text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// forEachFuncDecl invokes f for every function declaration with a body.
func forEachFuncDecl(files []*ast.File, f func(*ast.FuncDecl)) {
	for _, file := range files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				f(fn)
			}
		}
	}
}

// inspectStack walks the trees rooted at files, maintaining the ancestor
// stack (innermost last, not including n) for each visited node n.
func inspectStack(files []*ast.File, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			visit(n, stack)
			stack = append(stack, n)
			return true
		})
	}
}
