package compile

import "sync/atomic"

// DefaultCacheCapacity is the capacity (in cost units, see entryCost) used
// when NewCache is given a non-positive capacity. One unit covers a small
// entry — a slice solution or SMT solve of a few hundred bytes — so
// thousands of entries cost single-digit megabytes; bulky values
// (crosstalk graphs, whole-device palettes) report their approximate byte
// size and occupy proportionally many units, so eviction under pressure
// sheds them at their real weight.
const DefaultCacheCapacity = 8192

// Stats are the per-tier hit/miss/eviction counters of one cache region.
// Hits counts lookups served by the in-process shards (tier 1); WarmHits
// counts lookups that missed locally but were served by the attached
// read-only warm set (tier 3) and promoted; Misses counts lookups that ran
// their compute function.
type Stats struct {
	Hits, Misses, Evictions uint64
	WarmHits                uint64
}

// HitRate returns (hits + warm hits) / (hits + warm hits + misses), or 0
// when the region is unused: a warm-set hit spared the compute exactly like
// a local hit, so it counts toward the rate.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.WarmHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.WarmHits) / float64(total)
}

// add accumulates counters (used to aggregate regions and shards).
func (s Stats) add(o Stats) Stats {
	return Stats{
		Hits:      s.Hits + o.Hits,
		Misses:    s.Misses + o.Misses,
		Evictions: s.Evictions + o.Evictions,
		WarmHits:  s.WarmHits + o.WarmHits,
	}
}

// Tier identifies which store satisfied a tiered lookup.
type Tier uint8

const (
	// TierMiss: no tier had the entry; the caller's compute ran.
	TierMiss Tier = iota
	// TierLocal: served by the in-process shards (or by sharing another
	// caller's in-flight computation through the single-flight group).
	TierLocal
	// TierWarm: served by the attached read-only warm set after a local
	// miss, and promoted into the local shards.
	TierWarm
)

// Cache is a concurrency-safe sharded LRU cache shared across compilation
// jobs. Entries are namespaced by region (e.g. "smt", "slice", "xtalk") so
// that hit/miss accounting can be reported per pipeline stage.
//
// Keys are hashed onto a power-of-two number of independently locked
// shards, each with its own LRU list, so concurrent lookups from a large
// worker pool do not serialize on one mutex. LRU ordering and the capacity
// bound therefore hold per shard, not globally: an eviction removes the
// least-recently-used entry of the full shard, which is only
// approximately the globally least-recently-used entry. Use shards=1
// (NewCacheSharded) when exact global LRU order matters.
//
// Do deduplicates concurrent misses on the same key through a
// single-flight group: one caller computes, everyone else blocks and
// shares the result.
//
// Values stored in the cache are shared between goroutines and MUST be
// treated as immutable by every consumer.
type Cache struct {
	shards []*cacheShard
	mask   uint64
	flight flightGroup
	// warm is the optional read-only warm set (tier 3), probed after a
	// local miss and before compute. Stored atomically so AttachWarmSet is
	// safe against concurrent lookups; the WarmSet itself is immutable
	// after its lazy load.
	warm atomic.Pointer[WarmSet]
}

// NewCache returns a cache holding at most ~capacity cost units (~entries,
// for small values), sharded for the current GOMAXPROCS. capacity <= 0
// selects DefaultCacheCapacity.
func NewCache(capacity int) *Cache {
	return NewCacheSharded(capacity, 0)
}

// NewCacheSharded returns a cache with an explicit shard count, which is
// rounded up to a power of two, clamped to [1, maxShards], then halved
// until it does not exceed capacity. shards <= 0 selects the
// GOMAXPROCS-derived default. Capacity is split evenly across shards
// (rounding up), so the effective total capacity is
// shards * ceil(capacity/shards).
func NewCacheSharded(capacity, shards int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	if shards <= 0 {
		shards = defaultShardCount()
	}
	n := 1
	for n < shards && n < maxShards {
		n <<= 1
	}
	for n > capacity {
		n >>= 1
	}
	perShard := (capacity + n - 1) / n
	c := &Cache{shards: make([]*cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = newCacheShard(perShard)
	}
	return c
}

func namespaced(region, key string) string { return region + "\x00" + key }

// shardFor hashes a namespaced key onto its shard (FNV-64a).
func (c *Cache) shardFor(nk string) *cacheShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(nk); i++ {
		h ^= uint64(nk[i])
		h *= 1099511628211
	}
	return c.shards[h&c.mask]
}

// NumShards returns the shard count (useful for tests and benchmarks).
func (c *Cache) NumShards() int {
	if c == nil {
		return 0
	}
	return len(c.shards)
}

// AttachWarmSet attaches a read-only warm set as the cache's third tier:
// lookups that miss the local shards probe it before computing, and warm
// hits are promoted into the local shards (and counted as Stats.WarmHits).
// The warm set is never written. Attaching nil detaches. No-op on a nil
// cache.
func (c *Cache) AttachWarmSet(w *WarmSet) {
	if c == nil {
		return
	}
	c.warm.Store(w)
}

// WarmSet returns the attached warm set, or nil.
func (c *Cache) WarmSet() *WarmSet {
	if c == nil {
		return nil
	}
	return c.warm.Load()
}

// Get looks up key through the tiers (local shards, then the attached
// warm set), promoting it to most-recently-used — and, on a warm hit, into
// the local shards — on a hit. Nil caches always miss without accounting.
func (c *Cache) Get(region, key string) (any, bool) {
	v, tier := c.getTiered(region, key)
	return v, tier != TierMiss
}

// getTiered is the accounting lookup behind Get and DoTiered: local shards
// first (tier hit), then the warm set (warm hit, promoted), else a miss.
// Exactly one counter is incremented per call.
func (c *Cache) getTiered(region, key string) (any, Tier) {
	if c == nil {
		return nil, TierMiss
	}
	nk := namespaced(region, key)
	s := c.shardFor(nk)
	s.mu.Lock()
	if v, ok := s.get(region, nk, false); ok {
		s.regionStats(region).Hits++
		s.mu.Unlock()
		return v, TierLocal
	}
	s.mu.Unlock()
	// Local miss: probe the warm set outside the shard lock — warm reads
	// are lock-free (the set is immutable after load), so a slow lazy load
	// or a large warm lookup never blocks the shard.
	if w := c.warm.Load(); w != nil {
		if v, ok := w.get(region, key); ok {
			s.mu.Lock()
			s.regionStats(region).WarmHits++
			s.put(region, nk, v)
			s.mu.Unlock()
			return v, TierWarm
		}
	}
	s.mu.Lock()
	s.regionStats(region).Misses++
	s.mu.Unlock()
	return nil, TierMiss
}

// peek is Get without hit/miss accounting, used by the single-flight
// re-check (whose caller already recorded its miss).
func (c *Cache) peek(region, key string) (any, bool) {
	return c.get(region, key, false)
}

func (c *Cache) get(region, key string, account bool) (any, bool) {
	if c == nil {
		return nil, false
	}
	nk := namespaced(region, key)
	s := c.shardFor(nk)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.get(region, nk, account)
}

// Put stores value under (region, key), evicting the least-recently-used
// entry of the key's shard when that shard is full. Storing an existing
// key refreshes its value and recency. Put on a nil cache is a no-op.
func (c *Cache) Put(region, key string, value any) {
	if c == nil {
		return
	}
	nk := namespaced(region, key)
	s := c.shardFor(nk)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.put(region, nk, value)
}

// Do returns the cached value for (region, key), computing and storing it
// on a miss. Concurrent misses on the same key are deduplicated through a
// single-flight group: exactly one caller runs compute while the others
// block and share its result (including its error). Errors are shared
// with in-flight waiters but never cached — the next caller after a
// failed flight computes afresh; use a value type that embeds the error
// (as the SMT memo does) when negative caching is wanted.
func (c *Cache) Do(region, key string, compute func() (any, error)) (any, error) {
	v, _, err := c.DoTiered(region, key, compute)
	return v, err
}

// DoTiered is Do with tier attribution: it additionally reports which tier
// satisfied the lookup — TierLocal for a shard hit (or for sharing another
// caller's in-flight computation), TierWarm for a warm-set hit, TierMiss
// when this caller's compute ran. Request-scoped Recorders use the tier to
// attribute warm-set traffic separately from local hits.
func (c *Cache) DoTiered(region, key string, compute func() (any, error)) (any, Tier, error) {
	if c == nil {
		v, err := compute()
		return v, TierMiss, err
	}
	if v, tier := c.getTiered(region, key); tier != TierMiss {
		return v, tier, nil
	}
	computed := false
	v, err := c.flight.do(namespaced(region, key), func() (any, error) {
		// Re-check: a previous flight may have stored the value between
		// this caller's miss and its turn as leader. Without this, a
		// caller overlapping the tail of a finished flight would compute
		// a second time.
		if v, ok := c.peek(region, key); ok {
			return v, nil
		}
		computed = true
		v, err := compute()
		if err != nil {
			return nil, err
		}
		c.Put(region, key, v)
		return v, nil
	})
	if err != nil {
		return nil, TierMiss, err
	}
	if computed {
		return v, TierMiss, nil
	}
	return v, TierLocal, nil
}

// Len returns the current number of entries across all shards.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// StatsByRegion returns the per-region counters aggregated across shards.
func (c *Cache) StatsByRegion() map[string]Stats {
	if c == nil {
		return nil
	}
	out := make(map[string]Stats)
	for _, s := range c.shards {
		s.mu.Lock()
		for r, st := range s.stats {
			out[r] = out[r].add(*st)
		}
		s.mu.Unlock()
	}
	return out
}

// TotalStats aggregates the counters across all regions.
func (c *Cache) TotalStats() Stats {
	var total Stats
	for _, s := range c.StatsByRegion() {
		total = total.add(s)
	}
	return total
}

// regionEntries returns a copy of one region's (bare key -> value) map,
// used by the snapshot writer. Values are the shared immutable cache
// values; callers must not mutate them.
func (c *Cache) regionEntries(region string) map[string]any {
	if c == nil {
		return nil
	}
	prefix := namespaced(region, "")
	out := make(map[string]any)
	for _, s := range c.shards {
		s.mu.Lock()
		for nk, el := range s.items {
			ent := el.Value.(*cacheEntry)
			if ent.region == region {
				out[nk[len(prefix):]] = ent.value
			}
		}
		s.mu.Unlock()
	}
	return out
}
