package compile

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastsc/internal/smt"
)

func TestCacheHitMissAccounting(t *testing.T) {
	c := NewCache(8)
	if _, ok := c.Get("r", "a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("r", "a", 1)
	v, ok := c.Get("r", "a")
	if !ok || v.(int) != 1 {
		t.Fatalf("got %v, %v", v, ok)
	}
	s := c.StatsByRegion()["r"]
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", s)
	}
	if hr := s.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", hr)
	}
}

func TestCacheRegionsAreIndependent(t *testing.T) {
	c := NewCache(8)
	c.Put("a", "k", "va")
	c.Put("b", "k", "vb")
	if v, _ := c.Get("a", "k"); v != "va" {
		t.Fatalf("region a: got %v", v)
	}
	if v, _ := c.Get("b", "k"); v != "vb" {
		t.Fatalf("region b: got %v", v)
	}
	st := c.StatsByRegion()
	if st["a"].Hits != 1 || st["b"].Hits != 1 {
		t.Fatalf("per-region stats = %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// One shard: exact global LRU order is only guaranteed per shard.
	c := NewCacheSharded(2, 1)
	c.Put("r", "a", 1)
	c.Put("r", "b", 2)
	c.Get("r", "a")    // promote a
	c.Put("r", "c", 3) // evicts b (least recently used)
	if _, ok := c.Get("r", "b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("r", "a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.Get("r", "c"); !ok {
		t.Fatal("c should be present")
	}
	if ev := c.StatsByRegion()["r"].Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestCachePutRefreshesExistingKey(t *testing.T) {
	c := NewCache(4)
	c.Put("r", "k", 1)
	c.Put("r", "k", 2)
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if v, _ := c.Get("r", "k"); v.(int) != 2 {
		t.Fatalf("got %v, want refreshed value 2", v)
	}
}

func TestCacheDoComputesOnceOnHit(t *testing.T) {
	c := NewCache(8)
	calls := 0
	compute := func() (any, error) { calls++; return calls, nil }
	for i := 0; i < 3; i++ {
		v, err := c.Do("r", "k", compute)
		if err != nil || v.(int) != 1 {
			t.Fatalf("iteration %d: got %v, %v", i, v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}

func TestCacheDoDoesNotCacheErrors(t *testing.T) {
	c := NewCache(8)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		if _, err := c.Do("r", "k", func() (any, error) { calls++; return nil, boom }); !errors.Is(err, boom) {
			t.Fatalf("got err %v", err)
		}
	}
	if calls != 2 {
		t.Fatalf("errored compute should rerun, got %d calls", calls)
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	c.Put("r", "k", 1)
	if _, ok := c.Get("r", "k"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.Len() != 0 || c.StatsByRegion() != nil {
		t.Fatal("nil cache should be empty")
	}
	v, err := c.Do("r", "k", func() (any, error) { return 7, nil })
	if err != nil || v.(int) != 7 {
		t.Fatalf("nil cache Do = %v, %v", v, err)
	}
}

// TestCacheConcurrentStress hammers one cache from many goroutines with
// overlapping keys across regions; run with -race to check synchronization.
func TestCacheConcurrentStress(t *testing.T) {
	c := NewCache(64) // smaller than the working set, to exercise eviction
	const goroutines = 16
	const ops = 2000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				region := fmt.Sprintf("r%d", i%3)
				key := fmt.Sprintf("k%d", (g+i)%100)
				switch i % 3 {
				case 0:
					c.Put(region, key, i)
				case 1:
					c.Get(region, key)
				default:
					if _, err := c.Do(region, key, func() (any, error) { return i, nil }); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache grew past capacity: %d", c.Len())
	}
	total := c.TotalStats()
	if total.Hits+total.Misses == 0 {
		t.Fatal("no accesses recorded")
	}
}

func TestNewCacheShardedDefaults(t *testing.T) {
	if n := NewCache(0).NumShards(); n < 1 || n&(n-1) != 0 {
		t.Fatalf("default shard count %d is not a power of two", n)
	}
	if n := NewCacheSharded(1024, 3).NumShards(); n != 4 {
		t.Fatalf("shards=3 should round up to 4, got %d", n)
	}
	if n := NewCacheSharded(1024, 1<<20).NumShards(); n != maxShards {
		t.Fatalf("shard count should clamp to %d, got %d", maxShards, n)
	}
	if n := NewCacheSharded(2, 16).NumShards(); n > 2 {
		t.Fatalf("shard count should not exceed capacity, got %d", n)
	}
	var nilCache *Cache
	if nilCache.NumShards() != 0 {
		t.Fatal("nil cache should report zero shards")
	}
}

// TestCacheShardedCapacityBound checks that the sharded cache's total size
// stays within shards * ceil(capacity/shards) under a worst-case fill.
func TestCacheShardedCapacityBound(t *testing.T) {
	const capacity, shards = 64, 8
	c := NewCacheSharded(capacity, shards)
	for i := 0; i < 10*capacity; i++ {
		c.Put("r", fmt.Sprintf("k%d", i), i)
	}
	if max := shards * ((capacity + shards - 1) / shards); c.Len() > max {
		t.Fatalf("cache grew to %d entries, cap %d", c.Len(), max)
	}
	if ev := c.StatsByRegion()["r"].Evictions; ev == 0 {
		t.Fatal("overfill recorded no evictions")
	}
}

// TestCacheDoSingleFlight checks the exactly-one-compute contract: many
// goroutines missing on the same key concurrently must trigger one
// computation, with every caller receiving its value. Meaningful under
// -race.
func TestCacheDoSingleFlight(t *testing.T) {
	c := NewCache(64)
	const goroutines = 32
	var computes atomic.Int64
	var ready, done sync.WaitGroup
	ready.Add(goroutines)
	done.Add(goroutines)
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func() {
			defer done.Done()
			ready.Done()
			<-start
			v, err := c.Do("r", "k", func() (any, error) {
				computes.Add(1)
				time.Sleep(10 * time.Millisecond) // widen the dedup window
				return 42, nil
			})
			if err != nil || v.(int) != 42 {
				t.Errorf("Do = %v, %v", v, err)
			}
		}()
	}
	ready.Wait()
	close(start)
	done.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times for one key, want exactly 1", n)
	}
}

// TestCacheDoSingleFlightSharesErrors checks that an in-flight error is
// delivered to every waiter but is not cached: the next (sequential)
// caller computes afresh.
func TestCacheDoSingleFlightSharesErrors(t *testing.T) {
	c := NewCache(64)
	boom := errors.New("boom")
	const goroutines = 8
	var computes atomic.Int64
	var ready, done sync.WaitGroup
	ready.Add(goroutines)
	done.Add(goroutines)
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func() {
			defer done.Done()
			ready.Done()
			<-start
			if _, err := c.Do("r", "k", func() (any, error) {
				computes.Add(1)
				time.Sleep(10 * time.Millisecond)
				return nil, boom
			}); !errors.Is(err, boom) {
				t.Errorf("Do err = %v, want boom", err)
			}
		}()
	}
	ready.Wait()
	close(start)
	done.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("failing compute ran %d times concurrently, want 1", n)
	}
	if _, err := c.Do("r", "k", func() (any, error) { return 1, nil }); err != nil {
		t.Fatalf("error was cached: %v", err)
	}
}

// TestSolveSMTMemoization checks that the SMT memo caches both solutions
// and infeasibility verdicts.
func TestSolveSMTMemoization(t *testing.T) {
	ctx := NewContext(1)
	cfg := smt.Config{Lo: 6.15, Hi: 6.95, Alpha: -0.2}
	xs1, d1, err := ctx.SolveSMT(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	xs2, d2, err := ctx.SolveSMT(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 || len(xs1) != len(xs2) {
		t.Fatal("memoized solve differs from original")
	}
	for i := range xs1 {
		if xs1[i] != xs2[i] {
			t.Fatal("memoized frequencies differ")
		}
	}
	// Infeasible: far more colors than the band can host.
	if _, _, err := ctx.SolveSMT(500, cfg); err == nil {
		t.Fatal("expected infeasible")
	}
	if _, _, err := ctx.SolveSMT(500, cfg); err == nil {
		t.Fatal("expected memoized infeasible")
	}
	st := ctx.Stats()[RegionSMT]
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("smt stats = %+v, want 2 hits / 2 misses", st)
	}
}

func TestSliceKeyCanonicalOverOrder(t *testing.T) {
	a := SliceKey("sig", 2, 2, []int{5, 1, 9})
	b := SliceKey("sig", 2, 2, []int{9, 5, 1})
	if a != b {
		t.Fatal("slice key should not depend on active-vertex order")
	}
	if SliceKey("sig", 2, 2, []int{5, 1}) == a {
		t.Fatal("different vertex sets must not collide")
	}
	if SliceKey("sig", 1, 2, []int{5, 1, 9}) == a {
		t.Fatal("different distances must not collide")
	}
	if SliceKey("other", 2, 2, []int{5, 1, 9}) == a {
		t.Fatal("different systems must not collide")
	}
}
