// Package faultpoint provides named failure points for fault injection:
// deliberately breakable seams compiled into the production binary, inert
// unless armed. The chaos harness (scripts/chaos-smoke.sh, cmd/fastscload)
// arms them via the FASTSC_FAULTPOINTS environment variable or fastscd's
// -faultpoints flag to exercise the failure paths — snapshot I/O errors,
// corrupt snapshot bytes, slow solves, per-job panics — that a clean test
// run never takes.
//
// A spec is a comma-separated list of armed points:
//
//	name            arm name, unlimited firings
//	name*3          arm name for exactly 3 firings
//	name=50ms       arm name with a duration payload (for delay points)
//	name*2=50ms     both
//
// Every probe (Active, Err, Delay, MaybePanic) consumes one firing of an
// armed point and counts it; unarmed points cost one atomic load and
// return the zero answer, so probes are safe to leave on hot-ish paths.
// The package is concurrency-safe. Tests use Arm/Reset directly.
package faultpoint

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Point names wired into the repo. Declared here so call sites and specs
// cannot drift apart silently.
const (
	// JobPanic panics inside one batch job's execution (the engine's
	// per-job recover must convert it to that job's error, not kill the
	// process). Fired by compile.(*Context).RunBatchCtx workers.
	JobPanic = "job.panic"
	// SolveSlow sleeps its duration payload on every SMT-solve cache miss,
	// simulating a pathologically slow solver to build queue pressure.
	SolveSlow = "solve.slow"
	// SnapshotSaveErr fails compile.Cache.Save with an injected error.
	SnapshotSaveErr = "snapshot.save.err"
	// SnapshotSaveCorrupt flips bytes in an encoded cache snapshot before
	// it is written, so the next Load must degrade to a cold start.
	SnapshotSaveCorrupt = "snapshot.save.corrupt"
	// StoreSaveErr fails the server's batch-store persist with an injected
	// error (the store keeps serving from memory).
	StoreSaveErr = "store.save.err"
	// StoreLoadCorrupt corrupts the batch-store snapshot bytes on read, so
	// recovery must degrade to an empty store.
	StoreLoadCorrupt = "store.load.corrupt"
)

// EnvVar is the environment variable ArmFromEnv reads.
const EnvVar = "FASTSC_FAULTPOINTS"

// ErrInjected is the base error of every injected failure; callers assert
// injection with errors.Is(err, faultpoint.ErrInjected).
var ErrInjected = errors.New("faultpoint: injected failure")

// point is one armed failure point.
type point struct {
	remaining int64 // firings left; negative = unlimited
	delay     time.Duration
	fired     int64
}

var (
	mu     sync.Mutex
	points map[string]*point
	// armed is 0 while no point is armed, letting every probe bail on one
	// atomic load in the (overwhelmingly common) inert configuration.
	armed atomic.Int32
)

// Arm parses a spec ("name", "name*3", "name=50ms", comma-separated) and
// arms the named points, adding to whatever is already armed. An empty
// spec arms nothing.
func Arm(spec string) error {
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name := field
		p := &point{remaining: -1}
		if i := strings.IndexByte(name, '='); i >= 0 {
			d, err := time.ParseDuration(name[i+1:])
			if err != nil {
				return fmt.Errorf("faultpoint: bad duration in %q: %v", field, err)
			}
			p.delay = d
			name = name[:i]
		}
		if i := strings.IndexByte(name, '*'); i >= 0 {
			n, err := strconv.ParseInt(name[i+1:], 10, 64)
			if err != nil || n < 1 {
				return fmt.Errorf("faultpoint: bad count in %q", field)
			}
			p.remaining = n
			name = name[:i]
		}
		if name == "" {
			return fmt.Errorf("faultpoint: empty point name in %q", spec)
		}
		mu.Lock()
		if points == nil {
			points = make(map[string]*point)
		}
		points[name] = p
		armed.Store(1)
		mu.Unlock()
	}
	return nil
}

// ArmFromEnv arms the spec in FASTSC_FAULTPOINTS, if any.
func ArmFromEnv() error { return Arm(os.Getenv(EnvVar)) }

// Reset disarms every point and zeroes the fired counters.
func Reset() {
	mu.Lock()
	points = nil
	armed.Store(0)
	mu.Unlock()
}

// consume takes one firing of name if it is armed with firings left,
// returning the point on success.
func consume(name string) *point {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	defer mu.Unlock()
	p := points[name]
	if p == nil || p.remaining == 0 {
		return nil
	}
	if p.remaining > 0 {
		p.remaining--
	}
	p.fired++
	return p
}

// Active consumes one firing of name and reports whether it fired.
func Active(name string) bool { return consume(name) != nil }

// Err consumes one firing of name, returning an error wrapping ErrInjected
// if it fired and nil otherwise.
func Err(name string) error {
	if consume(name) == nil {
		return nil
	}
	return fmt.Errorf("%w at %s", ErrInjected, name)
}

// Delay consumes one firing of name, returning its duration payload (zero
// when not armed or armed without one).
func Delay(name string) time.Duration {
	p := consume(name)
	if p == nil {
		return 0
	}
	return p.delay
}

// Sleep consumes one firing of name and sleeps its duration payload.
func Sleep(name string) {
	if d := Delay(name); d > 0 {
		time.Sleep(d)
	}
}

// MaybePanic consumes one firing of name and panics if it fired.
func MaybePanic(name string) {
	if consume(name) != nil {
		panic("faultpoint: injected panic at " + name)
	}
}

// Corrupt consumes one firing of name; if it fired, it returns a copy of
// data with its leading bytes flipped — corrupting the stream header
// (gzip magic, gob type descriptors) guarantees any decoder rejects it,
// whereas flipping payload bytes can decode "successfully" into garbage.
// Otherwise data is returned unchanged.
func Corrupt(name string, data []byte) []byte {
	if consume(name) == nil || len(data) == 0 {
		return data
	}
	out := append([]byte(nil), data...)
	for i := 0; i < len(out) && i < 16; i++ {
		out[i] ^= 0xff
	}
	return out
}

// Fired returns how many times name has fired since the last Reset.
func Fired(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p := points[name]; p != nil {
		return p.fired
	}
	return 0
}

// FiredAll returns a copy of every armed point's fired counter.
func FiredAll() map[string]int64 {
	mu.Lock()
	defer mu.Unlock()
	out := make(map[string]int64, len(points))
	for name, p := range points {
		out[name] = p.fired
	}
	return out
}
