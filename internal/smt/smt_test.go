package smt

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func cfg() Config {
	return Config{Lo: 6.2, Hi: 6.95, Alpha: -0.2}
}

func TestFeasibleSingleColor(t *testing.T) {
	xs, ok := Feasible(1, cfg(), 0.5)
	if !ok || len(xs) != 1 {
		t.Fatalf("single color placement failed: %v %v", xs, ok)
	}
	if xs[0] != cfg().Lo {
		t.Fatalf("single color should park at band floor, got %v", xs[0])
	}
}

func TestFeasibleZeroColors(t *testing.T) {
	xs, ok := Feasible(0, cfg(), 0.5)
	if !ok || xs != nil {
		t.Fatal("zero colors should be trivially feasible")
	}
}

func TestFeasibleRespectsConstraints(t *testing.T) {
	c := cfg()
	for k := 2; k <= 5; k++ {
		for _, delta := range []float64{0.01, 0.05, 0.1} {
			xs, ok := Feasible(k, c, delta)
			if !ok {
				continue
			}
			if err := Verify(xs, c, delta); err != nil {
				t.Fatalf("k=%d δ=%v: %v", k, delta, err)
			}
		}
	}
}

func TestFeasibleInfeasibleWhenCrowded(t *testing.T) {
	c := cfg() // band width 0.75
	if _, ok := Feasible(10, c, 0.2); ok {
		t.Fatal("10 colors at δ=0.2 cannot fit in a 0.75 GHz band")
	}
}

// referenceFeasible is the original bump loop (repeated full rescans until
// fixpoint); Feasible's single ascending pass must be bit-identical to it.
func referenceFeasible(k int, cfg Config, delta float64) ([]float64, bool) {
	if k <= 0 {
		return nil, true
	}
	if delta <= 0 || cfg.Hi < cfg.Lo {
		return nil, false
	}
	absAlpha := math.Abs(cfg.Alpha)
	xs := make([]float64, 0, k)
	v := cfg.Lo
	for i := 0; i < k; i++ {
		if i > 0 {
			v = xs[i-1] + delta
		}
		for bumped := true; bumped; {
			bumped = false
			for _, xj := range xs {
				lo := xj + absAlpha - delta
				hi := xj + absAlpha + delta
				if v > lo && v < hi {
					v = hi
					bumped = true
				}
			}
		}
		if v > cfg.Hi+1e-12 {
			return nil, false
		}
		xs = append(xs, v)
	}
	return xs, true
}

// TestFeasibleMatchesReferenceBumpLoop pins the single-pass sideband bump
// to the original repeated-rescan implementation, bit for bit, across a
// randomized parameter sweep.
func TestFeasibleMatchesReferenceBumpLoop(t *testing.T) {
	prop := func(kRaw, alphaRaw, deltaRaw, spanRaw uint8) bool {
		k := int(kRaw%12) + 1
		alpha := -0.05 - float64(alphaRaw%40)/100 // [-0.45, -0.05]
		delta := 0.005 + float64(deltaRaw%30)/200 // [0.005, 0.15]
		span := 0.2 + float64(spanRaw%20)/10      // [0.2, 2.1]
		c := Config{Lo: 5.9, Hi: 5.9 + span, Alpha: alpha}
		got, okGot := Feasible(k, c, delta)
		want, okWant := referenceFeasible(k, c, delta)
		if okGot != okWant || len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveMaximizesDelta(t *testing.T) {
	c := cfg()
	for k := 2; k <= 6; k++ {
		xs, delta, err := Solve(k, c)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := Verify(xs, c, delta-1e-6); err != nil {
			t.Fatalf("k=%d solution violates constraints: %v", k, err)
		}
		// Maximality: a slightly larger δ must be infeasible.
		if _, ok := Feasible(k, c, delta*1.01+1e-6); ok {
			t.Fatalf("k=%d: δ=%v not maximal", k, delta)
		}
	}
}

func TestSolveDeltaDecreasesWithColors(t *testing.T) {
	c := cfg()
	prev := math.Inf(1)
	for k := 2; k <= 6; k++ {
		_, delta, err := Solve(k, c)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if delta > prev+1e-9 {
			t.Fatalf("δ should shrink as colors grow: k=%d δ=%v prev=%v", k, delta, prev)
		}
		prev = delta
	}
}

func TestSolveSingleColorUsesFloor(t *testing.T) {
	xs, delta, err := Solve(1, cfg())
	if err != nil || len(xs) != 1 {
		t.Fatalf("Solve(1) failed: %v %v", xs, err)
	}
	if delta <= 0 {
		t.Fatalf("single color should report large separation, got %v", delta)
	}
}

func TestSolveInfeasible(t *testing.T) {
	c := Config{Lo: 6.0, Hi: 6.01, Alpha: -0.2, MinDelta: 0.005}
	_, _, err := Solve(5, c)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestSolveEmptyBand(t *testing.T) {
	if _, _, err := Solve(2, Config{Lo: 7, Hi: 6, Alpha: -0.2}); err == nil {
		t.Fatal("inverted band should error")
	}
}

func TestSolveZeroColors(t *testing.T) {
	xs, delta, err := Solve(0, cfg())
	if err != nil || xs != nil || delta != 0 {
		t.Fatalf("Solve(0) = %v %v %v", xs, delta, err)
	}
}

func TestSidebandAvoidance(t *testing.T) {
	// Force a case where the naive equal spacing would collide through the
	// sideband: 2 colors, band exactly wide enough that x0 + |α| sits where
	// x1 would naively go.
	c := Config{Lo: 6.0, Hi: 6.5, Alpha: -0.2}
	xs, delta, err := Solve(2, c)
	if err != nil {
		t.Fatal(err)
	}
	gap := xs[1] - xs[0]
	if math.Abs(gap-0.2) < delta-1e-9 {
		t.Fatalf("x1 sits on x0's sideband: gap %v, δ %v", gap, delta)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	c := cfg()
	if err := Verify([]float64{6.3, 6.31}, c, 0.05); err == nil {
		t.Fatal("Verify should reject close frequencies")
	}
	if err := Verify([]float64{6.3, 6.5}, c, 0.21); err == nil {
		t.Fatal("Verify should reject sideband collision (gap == |α| = 0.2)")
	}
	if err := Verify([]float64{5.0}, c, 0.01); err == nil {
		t.Fatal("Verify should reject out-of-band frequency")
	}
}

func TestAssignByOccupancy(t *testing.T) {
	occ := []int{5, 2, 9}
	freqs := []float64{6.2, 6.5, 6.8}
	m := AssignByOccupancy(occ, freqs)
	// Color 2 (9 uses) gets the highest frequency, then 0, then 1.
	if m[2] != 6.8 || m[0] != 6.5 || m[1] != 6.2 {
		t.Fatalf("occupancy ordering wrong: %v", m)
	}
}

func TestAssignByOccupancyTieBreak(t *testing.T) {
	occ := []int{3, 3}
	m := AssignByOccupancy(occ, []float64{6.2, 6.8})
	if m[0] != 6.8 || m[1] != 6.2 {
		t.Fatalf("tie should favor smaller color id: %v", m)
	}
}

func TestAssignByOccupancyPanicsOnShortFreqs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AssignByOccupancy([]int{1, 1}, []float64{6.2})
}

func TestPartitionFor(t *testing.T) {
	p := PartitionFor(4.95, 6.95)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.ExclusionWidth() <= 0 {
		t.Fatal("no exclusion region")
	}
	// Proportions: 40/20/40.
	span := 6.95 - 4.95
	if math.Abs((p.ParkHi-p.ParkLo)-0.4*span) > 1e-9 {
		t.Fatalf("parking width = %v", p.ParkHi-p.ParkLo)
	}
	if math.Abs(p.ExclusionWidth()-0.2*span) > 1e-9 {
		t.Fatalf("exclusion width = %v", p.ExclusionWidth())
	}
}

func TestPartitionConfigs(t *testing.T) {
	p := PartitionFor(5.0, 7.0)
	pc := p.ParkingConfig(-0.2)
	ic := p.InteractionConfig(-0.2)
	if pc.Lo != p.ParkLo || pc.Hi != p.ParkHi || ic.Lo != p.IntLo || ic.Hi != p.IntHi {
		t.Fatal("config bands do not match partition")
	}
	if pc.Alpha != -0.2 || ic.Alpha != -0.2 {
		t.Fatal("alpha not propagated")
	}
}

func TestPartitionValidateRejectsMalformed(t *testing.T) {
	bad := Partition{ParkLo: 5, ParkHi: 6, IntLo: 5.5, IntHi: 7}
	if bad.Validate() == nil {
		t.Fatal("overlapping partition should fail validation")
	}
}

// Property: any solution from Solve verifies at its own δ, frequencies are
// strictly ascending, and all lie within the band.
func TestSolvePropertyAlwaysValid(t *testing.T) {
	prop := func(kRaw uint8, loRaw, widthRaw uint16) bool {
		k := int(kRaw%6) + 1
		lo := 5.0 + 2*float64(loRaw)/65535
		width := 0.3 + 1.2*float64(widthRaw)/65535
		c := Config{Lo: lo, Hi: lo + width, Alpha: -0.2}
		xs, delta, err := Solve(k, c)
		if err != nil {
			return true // infeasible is acceptable for narrow bands
		}
		if len(xs) != k {
			return false
		}
		for i := 1; i < len(xs); i++ {
			if xs[i] <= xs[i-1] {
				return false
			}
		}
		if k >= 2 {
			return Verify(xs, c, delta-1e-6) == nil
		}
		return Verify(xs, c, 0) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
