// Fixture for the ctxflow analyzer: functions holding a context.Context
// may not sever it with context.Background/TODO (outside the sanctioned
// nil-guard) or by calling X where an XCtx sibling exists.
package ctxflow

import (
	"context"
	"time"
)

func work() {}

func workCtx(ctx context.Context) { _ = ctx }

type runner struct{}

func (runner) Run() {}

func (runner) RunCtx(ctx context.Context) { _ = ctx }

func background(ctx context.Context) {
	_ = context.Background() // want `ctxflow: background already receives ctx; pass it .* instead of context\.Background`
}

func todo(ctx context.Context) {
	_ = context.TODO() // want `ctxflow: todo already receives ctx; pass it .* instead of context\.TODO`
}

func nilGuard(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background() // sanctioned nil-guard: not flagged
	}
	workCtx(ctx)
}

func detaches(ctx context.Context) {
	work() // want `ctxflow: detaches holds ctx but calls work, which detaches from cancellation; call ctxflow\.workCtx`
}

func detachesMethod(ctx context.Context, r runner) {
	r.Run() // want `ctxflow: detachesMethod holds ctx but calls Run, .* call runner\.RunCtx`
}

func threads(ctx context.Context, r runner) {
	workCtx(ctx) // threading the context: not flagged
	r.RunCtx(ctx)
}

func noCtx() {
	work() // caller holds no context: not checked
	_ = context.Background()
}

// Deadline-threading cases, modeled on the server's per-request deadline
// path: a handler that receives the request context must derive the batch
// deadline FROM it, so canceling the request also cancels the batch.

func deadlineFromCtx(ctx context.Context, at time.Time) (context.Context, context.CancelFunc) {
	// Deriving the deadline from the received ctx keeps the chain: not flagged.
	return context.WithDeadlineCause(ctx, at, context.DeadlineExceeded)
}

func deadlineDetached(ctx context.Context, at time.Time) (context.Context, context.CancelFunc) {
	return context.WithDeadlineCause(context.Background(), at, context.DeadlineExceeded) // want `ctxflow: deadlineDetached already receives ctx; pass it .* instead of context\.Background`
}

func cancelCauseFromCtx(ctx context.Context) {
	cctx, cancel := context.WithCancelCause(ctx) // deriving a cancelable child: not flagged
	defer cancel(nil)
	workCtx(cctx)
}

func deadlineNilGuard(ctx context.Context, at time.Time) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background() // sanctioned nil-guard: not flagged
	}
	return context.WithDeadlineCause(ctx, at, context.DeadlineExceeded)
}

func deadlineThenDetaches(ctx context.Context, at time.Time, r runner) {
	dctx, cancel := context.WithDeadlineCause(ctx, at, context.DeadlineExceeded)
	defer cancel()
	_ = dctx
	r.Run() // want `ctxflow: deadlineThenDetaches holds ctx but calls Run, .* call runner\.RunCtx`
}
