package faultpoint

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestUnarmedIsInert(t *testing.T) {
	Reset()
	if Active("nope") || Err("nope") != nil || Delay("nope") != 0 {
		t.Fatal("unarmed points must be inert")
	}
	MaybePanic("nope") // must not panic
	if got := Corrupt("nope", []byte("abc")); string(got) != "abc" {
		t.Fatalf("Corrupt unarmed = %q", got)
	}
}

func TestArmSpecParsing(t *testing.T) {
	defer Reset()
	cases := []struct {
		spec string
		ok   bool
	}{
		{"a", true},
		{"a*3", true},
		{"a=50ms", true},
		{"a*2=50ms", true},
		{"a, b*1 ,c=1s", true},
		{"", true},
		{"a*x", false},
		{"a*0", false},
		{"a=xyz", false},
		{"*3", false},
	}
	for _, tc := range cases {
		Reset()
		err := Arm(tc.spec)
		if (err == nil) != tc.ok {
			t.Errorf("Arm(%q) = %v, want ok=%v", tc.spec, err, tc.ok)
		}
	}
}

func TestCountedFirings(t *testing.T) {
	defer Reset()
	Reset()
	if err := Arm("p*2"); err != nil {
		t.Fatal(err)
	}
	if !Active("p") || !Active("p") {
		t.Fatal("armed point did not fire twice")
	}
	if Active("p") {
		t.Fatal("point fired beyond its count")
	}
	if Fired("p") != 2 {
		t.Fatalf("Fired = %d, want 2", Fired("p"))
	}
}

func TestUnlimitedAndErr(t *testing.T) {
	defer Reset()
	Reset()
	if err := Arm("q"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := Err("q"); !errors.Is(err, ErrInjected) {
			t.Fatalf("firing %d: err = %v", i, err)
		}
	}
	if Fired("q") != 10 {
		t.Fatalf("Fired = %d", Fired("q"))
	}
}

func TestDelayPayload(t *testing.T) {
	defer Reset()
	Reset()
	if err := Arm("slow=25ms"); err != nil {
		t.Fatal(err)
	}
	if d := Delay("slow"); d != 25*time.Millisecond {
		t.Fatalf("Delay = %v", d)
	}
}

func TestMaybePanic(t *testing.T) {
	defer Reset()
	Reset()
	if err := Arm("boom*1"); err != nil {
		t.Fatal(err)
	}
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		MaybePanic("boom")
		return false
	}
	if !panicked() {
		t.Fatal("armed panic point did not panic")
	}
	if panicked() {
		t.Fatal("panic point fired beyond its count")
	}
}

func TestCorruptFlipsBytes(t *testing.T) {
	defer Reset()
	Reset()
	if err := Arm("c*1"); err != nil {
		t.Fatal(err)
	}
	in := make([]byte, 64)
	out := Corrupt("c", in)
	if string(out) == string(in) {
		t.Fatal("Corrupt returned unchanged bytes while armed")
	}
	if string(in) != string(make([]byte, 64)) {
		t.Fatal("Corrupt mutated its input")
	}
}

func TestConcurrentConsume(t *testing.T) {
	defer Reset()
	Reset()
	if err := Arm("race*100"); err != nil {
		t.Fatal(err)
	}
	var fired sync.WaitGroup
	var hits atomic64
	for i := 0; i < 8; i++ {
		fired.Add(1)
		go func() {
			defer fired.Done()
			for j := 0; j < 50; j++ {
				if Active("race") {
					hits.add(1)
				}
			}
		}()
	}
	fired.Wait()
	if hits.load() != 100 {
		t.Fatalf("fired %d times, want exactly 100", hits.load())
	}
}

type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }
