package lint

import (
	"go/ast"
	"go/types"
)

// HotpathMarker annotates a function as allocation-disciplined: place it
// in the doc comment of functions on the compile hot path (the schedule
// slice loop, circuit.Frontier.Ready, phys.System.G0/G0ByID, xtalk.Build,
// the mapping routers' swap scoring, ...).
const HotpathMarker = "//fastsc:hotpath"

// HotAllocAnalyzer enforces the zero-alloc discipline on functions
// annotated //fastsc:hotpath: no map literals, no make(map...), no calls
// into package fmt, and no implicit interface boxing of non-pointer
// values (the hidden allocation when a concrete value is passed to an
// interface parameter, assigned to an interface variable, or returned as
// one). Arguments of panic calls are exempt — a panicking path is cold by
// definition, and the repo's hot-path panics format their message with
// fmt.Sprintf. Pointer-shaped conversions (pointers, channels, funcs,
// maps) are exempt too: they fit an interface word and do not allocate,
// which keeps the canonical `pool.Put(ptr)` pattern clean.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc: "forbid map allocation, fmt calls and implicit interface boxing in " +
		"functions annotated " + HotpathMarker,
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	forEachFuncDecl(pass.Files, func(fn *ast.FuncDecl) {
		if !funcDocHasMarker(fn, HotpathMarker) {
			return
		}
		def, _ := pass.Info.Defs[fn.Name].(*types.Func)
		if def == nil {
			return
		}
		checkHotBody(pass, fn.Body, def.Signature())
	})
}

func checkHotBody(pass *Pass, body *ast.BlockStmt, sig *types.Signature) {
	results := sig.Results()
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures have their own result signature; recurse so their
			// return statements are checked against it, not the outer one.
			if litSig, ok := pass.TypeOf(n.Type).(*types.Signature); ok {
				checkHotBody(pass, n.Body, litSig)
				return false
			}
		case *ast.CallExpr:
			if isBuiltinCall(pass.Info, n, "panic") {
				return false // cold by definition; fmt.Sprintf in a panic is fine
			}
			checkHotCall(pass, n)
		case *ast.CompositeLit:
			if isMap(pass.TypeOf(n)) {
				pass.Reportf(n.Pos(), "map literal allocates on a hot path; use a flat slice or reuse scratch")
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					checkBoxing(pass, n.Rhs[i], pass.TypeOf(n.Lhs[i]), "assigned to interface")
				}
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				if n.Type != nil {
					checkBoxing(pass, v, pass.TypeOf(n.Type), "assigned to interface")
				}
			}
		case *ast.ReturnStmt:
			if results != nil && len(n.Results) == results.Len() {
				for i, r := range n.Results {
					checkBoxing(pass, r, results.At(i).Type(), "returned as interface")
				}
			}
		}
		return true
	})
}

// checkHotCall flags fmt calls, make(map...), and boxing at argument
// positions (including conversions to interface types).
func checkHotCall(pass *Pass, call *ast.CallExpr) {
	if isBuiltinCall(pass.Info, call, "make") && len(call.Args) > 0 {
		if isMap(pass.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "make(map) allocates on a hot path; use a flat slice or reuse scratch")
		}
		return
	}
	if isBuiltinCall(pass.Info, call, "append") && len(call.Args) > 1 {
		if sl, ok := pass.TypeOf(call.Args[0]).Underlying().(*types.Slice); ok {
			for _, arg := range call.Args[1:] {
				checkBoxing(pass, arg, sl.Elem(), "appended as interface")
			}
		}
		return
	}
	if fn := calleeObject(pass.Info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s on a hot path allocates and boxes its operands", fn.Name())
		return
	}
	// Explicit conversion: T(x). Flag only conversions into interfaces.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		checkBoxing(pass, call.Args[0], tv.Type, "converted to interface")
		return
	}
	sig, _ := pass.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		checkBoxing(pass, arg, pt, "passed to interface parameter")
	}
}

// checkBoxing reports expr when storing it into target type would box a
// non-pointer-shaped concrete value into an interface.
func checkBoxing(pass *Pass, expr ast.Expr, target types.Type, how string) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	at := tv.Type
	if types.IsInterface(at) || !boxingAllocates(at) {
		return
	}
	pass.Reportf(expr.Pos(), "implicit boxing: %s %s %s allocates on a hot path", at.String(), how, target.String())
}

// boxingAllocates reports whether converting a value of concrete type t
// to an interface can allocate: pointer-shaped kinds (pointers, channels,
// maps, funcs, unsafe.Pointer) fit the interface data word and do not.
func boxingAllocates(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer
	}
	return true
}
