package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fastsc/internal/core"
)

const testQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
h q[2];
cz q[0],q[1];
cz q[2],q[3];
cz q[1],q[2];
rz(pi/2) q[3];
`

// testRequest builds a small linear-chain batch, one job per strategy.
func testRequest(strategies ...string) CompileRequest {
	req := CompileRequest{
		Device: DeviceSpec{Topology: "linear", Qubits: 4},
	}
	for i, strat := range strategies {
		req.Jobs = append(req.Jobs, JobSpec{
			ID:       fmt.Sprintf("j%d", i),
			Strategy: strat,
			QASM:     testQASM,
		})
	}
	return req
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func getJSON(t *testing.T, ts *httptest.Server, path string, into any) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if into != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, into); err != nil {
			t.Fatalf("GET %s: decode %q: %v", path, data, err)
		}
	}
	return resp.StatusCode
}

// doStream posts a streaming compile and parses the NDJSON response.
func doStream(t *testing.T, ts *httptest.Server, req CompileRequest) ([]ResultLine, DoneLine) {
	t.Helper()
	raw, _ := json.Marshal(req)
	resp, err := ts.Client().Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST /v1/compile: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/compile: status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var (
		results []ResultLine
		done    DoneLine
		sawDone bool
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var header struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &header); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		switch header.Type {
		case "result", "error":
			var rl ResultLine
			if err := json.Unmarshal(line, &rl); err != nil {
				t.Fatalf("bad result line %q: %v", line, err)
			}
			if sawDone {
				t.Fatalf("result line after done line: %q", line)
			}
			results = append(results, rl)
		case "done":
			if err := json.Unmarshal(line, &done); err != nil {
				t.Fatalf("bad done line %q: %v", line, err)
			}
			sawDone = true
		default:
			t.Fatalf("unknown line type %q in %q", header.Type, line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if !sawDone {
		t.Fatalf("stream ended without a done line")
	}
	return results, done
}

// pollUntilDone polls an async batch until it reports done.
func pollUntilDone(t *testing.T, ts *httptest.Server, url string) BatchStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st BatchStatus
		if code := getJSON(t, ts, url, &st); code != http.StatusOK {
			t.Fatalf("poll %s: status %d", url, code)
		}
		if st.Status == "done" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("poll %s: still %q after 30s", url, st.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCompileStream(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := testRequest(core.ColorDynamic, "Baseline N")
	results, done := doStream(t, ts, req)

	if len(results) != 2 {
		t.Fatalf("got %d result lines, want 2", len(results))
	}
	seen := map[string]bool{}
	for _, rl := range results {
		if rl.Type != "result" {
			t.Fatalf("job %s: type %q, error %q", rl.ID, rl.Type, rl.Error)
		}
		if rl.Result == nil {
			t.Fatalf("job %s: result type without result payload", rl.ID)
		}
		if rl.Result.Success <= 0 || rl.Result.Success > 1 {
			t.Errorf("job %s: success = %v, want (0, 1]", rl.ID, rl.Result.Success)
		}
		if rl.Result.Depth <= 0 {
			t.Errorf("job %s: depth = %d, want > 0", rl.ID, rl.Result.Depth)
		}
		if len(rl.Result.Slices) != 0 {
			t.Errorf("job %s: %d slices on a non-verbose request", rl.ID, len(rl.Result.Slices))
		}
		seen[rl.ID] = true
	}
	if !seen["j0"] || !seen["j1"] {
		t.Errorf("missing job IDs in %v", seen)
	}
	if done.Jobs != 2 || done.Failed != 0 {
		t.Errorf("done = %+v, want jobs 2 failed 0", done)
	}
	if done.Cache == nil || done.Cache.Misses == 0 {
		t.Errorf("first request should report cache misses, got %+v", done.Cache)
	}

	// An identical repeat request is served almost entirely from cache.
	_, done2 := doStream(t, ts, req)
	if done2.Cache == nil || done2.Cache.HitRate < 0.9 {
		t.Errorf("repeat request hit rate = %+v, want > 0.9", done2.Cache)
	}
}

func TestCompileStreamVerbose(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := testRequest(core.ColorDynamic)
	req.Verbose = true
	results, _ := doStream(t, ts, req)
	if len(results) != 1 || results[0].Result == nil {
		t.Fatalf("unexpected results %+v", results)
	}
	if len(results[0].Result.Slices) == 0 {
		t.Fatalf("verbose request returned no slices")
	}
	twoQubit := false
	for _, sl := range results[0].Result.Slices {
		for _, g := range sl.Gates {
			if g.Freq != 0 {
				twoQubit = true
			}
		}
	}
	if !twoQubit {
		t.Errorf("no two-qubit gate carried an interaction frequency")
	}
}

func TestNativeCircuit(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := CompileRequest{
		Device: DeviceSpec{Topology: "linear", Qubits: 3},
		Jobs: []JobSpec{{
			Circuit: &CircuitSpec{
				Qubits: 3,
				Gates: []GateSpec{
					{Op: "h", Qubits: []int{0}},
					{Op: "cz", Qubits: []int{0, 1}},
					{Op: "rz", Qubits: []int{1}, Theta: 1.5708},
					{Op: "cz", Qubits: []int{1, 2}},
				},
			},
		}},
	}
	results, done := doStream(t, ts, req)
	if len(results) != 1 || results[0].Type != "result" {
		t.Fatalf("results = %+v", results)
	}
	if results[0].ID != "job-0" {
		t.Errorf("default job ID = %q, want job-0", results[0].ID)
	}
	if results[0].Strategy != core.ColorDynamic {
		t.Errorf("default strategy = %q, want %q", results[0].Strategy, core.ColorDynamic)
	}
	if done.Failed != 0 {
		t.Errorf("done = %+v", done)
	}
}

func TestSubmitAndPoll(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := postJSON(t, ts, "/v1/batches", testRequest(core.ColorDynamic, "Baseline U"))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, body)
	}
	var ack SubmitResponse
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatalf("submit ack: %v", err)
	}
	if ack.Jobs != 2 || ack.URL == "" {
		t.Fatalf("ack = %+v", ack)
	}

	st := pollUntilDone(t, ts, ack.URL)
	if st.Completed != 2 || st.Failed != 0 || len(st.Results) != 2 {
		t.Fatalf("final status = %+v", st)
	}
	if st.Cache == nil {
		t.Fatalf("final status carries no cache report")
	}
	for _, rl := range st.Results {
		if rl.Type != "result" || rl.Result == nil {
			t.Errorf("job %s: %+v", rl.ID, rl)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	srv := New(Config{MaxJobs: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	qasmJob := func(src string) []JobSpec { return []JobSpec{{QASM: src}} }
	cases := []struct {
		name string
		req  CompileRequest
		want string
	}{
		{"no jobs", CompileRequest{Device: DeviceSpec{Topology: "linear", Qubits: 4}}, "no jobs"},
		{"too many jobs", CompileRequest{
			Device: DeviceSpec{Topology: "linear", Qubits: 4},
			Jobs:   []JobSpec{{QASM: testQASM}, {QASM: testQASM}, {QASM: testQASM}},
		}, "limit is 2"},
		{"bad topology", CompileRequest{
			Device: DeviceSpec{Topology: "moebius", Qubits: 4}, Jobs: qasmJob(testQASM),
		}, "moebius"},
		{"non-square grid", CompileRequest{
			Device: DeviceSpec{Topology: "grid", Qubits: 5}, Jobs: qasmJob(testQASM),
		}, "square"},
		{"bad strategy", CompileRequest{
			Device: DeviceSpec{Topology: "linear", Qubits: 4},
			Jobs:   []JobSpec{{QASM: testQASM, Strategy: "Baseline Q"}},
		}, "unknown strategy"},
		{"malformed qasm", CompileRequest{
			Device: DeviceSpec{Topology: "linear", Qubits: 4},
			Jobs:   qasmJob("OPENQASM 2.0;\nqreg q[4];\nfrobnicate q[0];\n"),
		}, "frobnicate"},
		{"qasm without qreg", CompileRequest{
			Device: DeviceSpec{Topology: "linear", Qubits: 4},
			Jobs:   qasmJob("OPENQASM 2.0;\nh q[0];\n"),
		}, "qreg"},
		{"circuit too wide", CompileRequest{
			Device: DeviceSpec{Topology: "linear", Qubits: 2},
			Jobs:   qasmJob(testQASM),
		}, "device has 2"},
		{"both forms", CompileRequest{
			Device: DeviceSpec{Topology: "linear", Qubits: 4},
			Jobs: []JobSpec{{QASM: testQASM, Circuit: &CircuitSpec{
				Qubits: 2, Gates: []GateSpec{{Op: "h", Qubits: []int{0}}},
			}}},
		}, "exactly one"},
		{"neither form", CompileRequest{
			Device: DeviceSpec{Topology: "linear", Qubits: 4},
			Jobs:   []JobSpec{{ID: "empty"}},
		}, "exactly one"},
		{"unknown native op", CompileRequest{
			Device: DeviceSpec{Topology: "linear", Qubits: 4},
			Jobs: []JobSpec{{Circuit: &CircuitSpec{
				Qubits: 2, Gates: []GateSpec{{Op: "toffoli", Qubits: []int{0}}},
			}}},
		}, "toffoli"},
		{"native qubit out of range", CompileRequest{
			Device: DeviceSpec{Topology: "linear", Qubits: 4},
			Jobs: []JobSpec{{Circuit: &CircuitSpec{
				Qubits: 2, Gates: []GateSpec{{Op: "cz", Qubits: []int{0, 5}}},
			}}},
		}, "out of range"},
		{"bad placement", func() CompileRequest {
			r := testRequest(core.ColorDynamic)
			r.Options.Placement = "random"
			return r
		}(), "placement"},
		{"bad router", func() CompileRequest {
			r := testRequest(core.ColorDynamic)
			r.Options.Router = "astar"
			return r
		}(), "astar"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, path := range []string{"/v1/compile", "/v1/batches"} {
				code, body := postJSON(t, ts, path, tc.req)
				if code != http.StatusBadRequest {
					t.Fatalf("%s: status %d, want 400 (%s)", path, code, body)
				}
				var er ErrorResponse
				if err := json.Unmarshal(body, &er); err != nil {
					t.Fatalf("%s: non-JSON error body %q", path, body)
				}
				if !strings.Contains(er.Error, tc.want) {
					t.Errorf("%s: error %q does not mention %q", path, er.Error, tc.want)
				}
			}
		})
	}
}

func TestBadJSONBody(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/v1/compile", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestBodyTooLarge(t *testing.T) {
	srv := New(Config{MaxBodyBytes: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := testRequest(core.ColorDynamic) // testQASM alone exceeds 64 bytes
	code, body := postJSON(t, ts, "/v1/compile", req)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%s)", code, body)
	}
}

func TestPollUnknownBatch(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code := getJSON(t, ts, "/v1/batches/b-999999", nil); code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", code)
	}
}

func TestQueueFull(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1, MaxQueue: -1})
	gate := make(chan struct{})
	srv.startGate = func() { <-gate }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := postJSON(t, ts, "/v1/batches", testRequest(core.ColorDynamic))
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", code, body)
	}
	var ack SubmitResponse
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}

	// Wait until the first batch holds the compile slot (blocked in the
	// gate), so the admission counter state is deterministic.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st BatchStatus
		getJSON(t, ts, ack.URL, &st)
		if st.Status == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first batch never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}

	for _, path := range []string{"/v1/batches", "/v1/compile"} {
		code, body := postJSON(t, ts, path, testRequest(core.ColorDynamic))
		if code != http.StatusTooManyRequests {
			t.Fatalf("%s while full: status %d, want 429 (%s)", path, code, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || !strings.Contains(er.Error, "queue full") {
			t.Fatalf("%s while full: body %q", path, body)
		}
	}

	close(gate)
	st := pollUntilDone(t, ts, ack.URL)
	if st.Failed != 0 {
		t.Fatalf("blocked batch failed after release: %+v", st)
	}

	// With the slot free again, submissions are admitted once more.
	code, body = postJSON(t, ts, "/v1/batches", testRequest(core.ColorDynamic))
	if code != http.StatusAccepted {
		t.Fatalf("submit after release: status %d: %s", code, body)
	}
	var ack2 SubmitResponse
	if err := json.Unmarshal(body, &ack2); err != nil {
		t.Fatal(err)
	}
	pollUntilDone(t, ts, ack2.URL)
}

func TestMeta(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var m MetaResponse
	if code := getJSON(t, ts, "/v1/meta", &m); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(m.Strategies) != 5 {
		t.Errorf("strategies = %v, want the 5 Table I strategies", m.Strategies)
	}
	for _, want := range []string{"grid", "linear", "ring"} {
		found := false
		for _, topo := range m.Topologies {
			if topo == want {
				found = true
			}
		}
		if !found {
			t.Errorf("topologies %v missing %q", m.Topologies, want)
		}
	}
	if len(m.Placements) == 0 || len(m.Routers) == 0 {
		t.Errorf("meta = %+v", m)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := New(Config{})
	srv.SetRestored(17)
	srv.NoteSnapshotDegraded("corrupt")
	srv.NoteSnapshotDegraded("corrupt")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	doStream(t, ts, testRequest(core.ColorDynamic))
	doStream(t, ts, testRequest(core.ColorDynamic))

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	text := string(data)

	for _, want := range []string{
		`fastscd_cache_hits_total{region="smt"}`,
		`fastscd_cache_misses_total{region="slice"}`,
		"fastscd_snapshot_restored_entries 17",
		`fastscd_snapshot_degraded_total{reason="corrupt"} 2`,
		`fastscd_cache_warm_hits_total{region="smt"}`,
		`fastscd_requests_total{endpoint="compile"} 2`,
		"fastscd_batches_done_total 2",
		"fastscd_jobs_total 2",
		"fastscd_jobs_failed_total 0",
		"fastscd_draining 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// The repeat request must have produced global cache hits.
	if !regionCounterPositive(t, text, "fastscd_cache_hits_total") {
		t.Errorf("no positive fastscd_cache_hits_total counter after a repeat request:\n%s", text)
	}
}

// regionCounterPositive reports whether any sample of the named metric
// family has a positive value.
func regionCounterPositive(t *testing.T, text, family string) bool {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, family+"{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[1] != "0" {
			return true
		}
	}
	return false
}

func TestHealthz(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
}

func TestStoreEviction(t *testing.T) {
	st := newBatchStore(2)
	a := st.add(1, DefaultPriority)
	b := st.add(1, DefaultPriority)
	a.finish(DoneLine{Type: "done"}, "done")
	c := st.add(1, DefaultPriority) // exceeds limit: evicts a (the only finished batch)
	if st.get(a.id) != nil {
		t.Errorf("finished batch %s not evicted", a.id)
	}
	if st.get(b.id) == nil || st.get(c.id) == nil {
		t.Errorf("unfinished batches must never be evicted")
	}
	// With no finished batch to shed, the store grows past the limit
	// rather than dropping pollable state.
	d := st.add(1, DefaultPriority)
	if st.get(d.id) == nil || st.len() != 3 {
		t.Errorf("store len = %d", st.len())
	}
}
