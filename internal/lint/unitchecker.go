package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The go vet -vettool protocol ("unitchecker" in x/tools terms): the go
// command type-plans the build, then invokes the tool once per package
// unit with the path to a JSON config file as its sole argument. The
// config carries the file set and an import-path -> export-data map, so
// the tool never runs the build system itself. Facts are not used by any
// fastscvet analyzer (all five are single-package), so the vetx output
// the go command expects is written empty and dependency vetx inputs are
// never read.

// VetConfig is the go command's per-unit vet configuration (the subset
// fastscvet reads; unknown fields are ignored by encoding/json). The
// format is stable since Go 1.12 — cmd/vet and every -vettool consume it.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnitchecker executes one go vet unit: it reads the config at
// cfgPath, type-checks the unit against the supplied export data, runs
// the analyzers, prints surviving findings (and the suppression audit)
// to w, and returns the process exit code: 0 clean, 2 findings, 1
// operational error.
func RunUnitchecker(analyzers []*Analyzer, cfgPath string, w io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(w, "fastscvet: %v\n", err)
		return 1
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(w, "fastscvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requires the facts file to exist even when empty;
	// write it first so every exit path below satisfies that contract.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(w, "fastscvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	pkg, err := checkFiles(cfg.ImportPath, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(w, "fastscvet: %v\n", err)
		return 1
	}
	res := Analyze(pkg, analyzers)
	PrintResult(w, res)
	if len(res.Diagnostics) > 0 {
		return 2
	}
	return 0
}

// PrintResult writes findings one per line (file:line:col: analyzer:
// message, the go vet diagnostic shape) followed by the suppression
// audit: every honored //fastsc:ignore with its reason.
func PrintResult(w io.Writer, res Result) {
	for _, d := range res.Diagnostics {
		fmt.Fprintln(w, d.String())
	}
	for _, s := range res.Suppressed {
		fmt.Fprintf(w, "fastscvet: suppressed %s at %s -- %s\n", s.Analyzer, s.Pos, s.Reason)
	}
}
