package smt

import (
	"errors"
	"math"
	"sync"
	"testing"
)

// goroutinePar is a genuinely concurrent ParallelFor: every probe of a
// speculative round runs on its own goroutine. The equivalence tests use it
// to show that SolveWith's result cannot depend on scheduling.
func goroutinePar(n int, fn func(int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// serialPar exercises the speculative-tree code path without concurrency.
func serialPar(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func TestSolveWithMatchesSerialBitForBit(t *testing.T) {
	configs := []Config{
		{Lo: 6.2, Hi: 6.95, Alpha: -0.2},
		{Lo: 5.0, Hi: 7.0, Alpha: -0.34},
		{Lo: 6.0, Hi: 6.3, Alpha: -0.2, MinDelta: 0.01},
		{Lo: 4.8, Hi: 6.8, Alpha: -0.15, MinDelta: 0.002},
	}
	for _, cfg := range configs {
		for k := 1; k <= 12; k++ {
			wantXs, wantDelta, wantErr := Solve(k, cfg)
			for name, par := range map[string]ParallelFor{"serial-tree": serialPar, "goroutines": goroutinePar} {
				xs, delta, err := SolveWith(k, cfg, par)
				if (err == nil) != (wantErr == nil) {
					t.Fatalf("k=%d cfg=%+v par=%s: err = %v, serial err = %v", k, cfg, name, err, wantErr)
				}
				if err != nil {
					if errors.Is(wantErr, ErrInfeasible) != errors.Is(err, ErrInfeasible) {
						t.Fatalf("k=%d cfg=%+v par=%s: infeasibility identity diverged", k, cfg, name)
					}
					continue
				}
				if math.Float64bits(delta) != math.Float64bits(wantDelta) {
					t.Fatalf("k=%d cfg=%+v par=%s: delta %v != serial %v", k, cfg, name, delta, wantDelta)
				}
				if len(xs) != len(wantXs) {
					t.Fatalf("k=%d cfg=%+v par=%s: %d freqs, serial %d", k, cfg, name, len(xs), len(wantXs))
				}
				for i := range xs {
					if math.Float64bits(xs[i]) != math.Float64bits(wantXs[i]) {
						t.Fatalf("k=%d cfg=%+v par=%s: xs[%d] = %v, serial %v", k, cfg, name, i, xs[i], wantXs[i])
					}
				}
			}
		}
	}
}

func TestSolveDelegatesToSolveWith(t *testing.T) {
	c := Config{Lo: 6.2, Hi: 6.95, Alpha: -0.2}
	xs1, d1, err1 := Solve(3, c)
	xs2, d2, err2 := SolveWith(3, c, nil)
	if err1 != nil || err2 != nil {
		t.Fatalf("unexpected errors: %v, %v", err1, err2)
	}
	if math.Float64bits(d1) != math.Float64bits(d2) {
		t.Fatalf("delta mismatch: %v vs %v", d1, d2)
	}
	for i := range xs1 {
		if math.Float64bits(xs1[i]) != math.Float64bits(xs2[i]) {
			t.Fatalf("xs[%d] mismatch: %v vs %v", i, xs1[i], xs2[i])
		}
	}
}

func BenchmarkSMTSolve(b *testing.B) {
	cfg := Config{Lo: 5.0, Hi: 7.0, Alpha: -0.2}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := SolveWith(8, cfg, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := SolveWith(8, cfg, goroutinePar); err != nil {
				b.Fatal(err)
			}
		}
	})
}
