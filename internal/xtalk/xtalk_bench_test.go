package xtalk

import (
	"fmt"
	"testing"

	"fastsc/internal/topology"
)

// BenchmarkXtalkBuild measures the crosstalk-graph construction across the
// device sizes and crosstalk distances the experiments sweep. The
// distance-bounded BFS build is O(couplers · reach(d)) instead of the old
// O(couplers²) all-pairs probe, so the gap widens with device size.
func BenchmarkXtalkBuild(b *testing.B) {
	for _, side := range []int{5, 9, 16} {
		dev := topology.Grid(side, side)
		for _, d := range []int{1, 2, 3} {
			b.Run(fmt.Sprintf("grid-%dx%d/d%d", side, side, d), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					Build(dev, d)
				}
			})
		}
	}
	ex := topology.Express2D(9, 9, 3)
	b.Run("2EX-3-9x9/d2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Build(ex, 2)
		}
	})
}
