package compile

// Size-aware eviction: cache capacity is counted in units, where one unit
// approximates a small entry (an SMT solve, a typical slice solution).
// Bulky values — crosstalk graphs, whole-device palettes — report their
// approximate byte size and occupy proportionally more units, so evicting
// under pressure sheds the memory hogs' fair share instead of treating a
// 100 KB adjacency structure like a 100 B frequency list.

// Sizer is implemented by cached values that can report their approximate
// in-memory size in bytes (xtalk.Graph and schedule.StaticPalette do).
// Values without it are weighed by their concrete type's known shape, or
// fall back to one unit.
type Sizer interface{ ApproxSize() int }

// costUnitBytes is the byte size one capacity unit stands for. Entries at
// or below it cost exactly one unit.
const costUnitBytes = 512

// entryCost returns the capacity units an entry occupies: at least 1, plus
// one per costUnitBytes of approximate value size beyond the first.
func entryCost(v any) int {
	var bytes int
	switch x := v.(type) {
	case Sizer:
		bytes = x.ApproxSize()
	case SliceSolution:
		bytes = 4*len(x.Coloring) + 8*len(x.Deferred) + 8*len(x.Assign) + 48
	case smtResult:
		bytes = 8*len(x.xs) + 32
	case []float64:
		bytes = 8*len(x) + 24
	default:
		return 1
	}
	cost := 1 + bytes/costUnitBytes
	return cost
}
