package phys

import (
	"math"
	"testing"
)

func twoTransmonsAt(wa, wb, g float64) TwoTransmon {
	return TwoTransmon{
		A: Transmon{OmegaMax: wa, EC: 0.2, Asymmetry: 0.48, T1: 1, T2: 1},
		B: Transmon{OmegaMax: wb, EC: 0.2, Asymmetry: 0.48, T1: 1, T2: 1},
		// phi = 0 on both: operate at OmegaMax.
		G: g,
	}
}

func TestEvolveExactNormPreserved(t *testing.T) {
	tt := twoTransmonsAt(6.0, 6.1, 0.03)
	final := tt.EvolveExact(BasisState(0, 1), 500)
	if n := final.Norm(); math.Abs(n-1) > 1e-9 {
		t.Fatalf("norm after exact evolution = %v, want 1", n)
	}
}

func TestRK4AgreesWithExact(t *testing.T) {
	tt := twoTransmonsAt(6.0, 6.05, 0.03)
	initial := BasisState(0, 1)
	rk4 := tt.Evolve(initial, 10, 0.001)
	exact := tt.EvolveExact(initial, 10)
	for i := 0; i < TwoTransmonDim; i++ {
		if d := cabs(rk4[i] - exact[i]); d > 1e-3 {
			t.Fatalf("RK4 and exact diverge at amplitude %d by %v", i, d)
		}
	}
	if n := rk4.Norm(); math.Abs(n-1) > 1e-4 {
		t.Fatalf("RK4 norm = %v", n)
	}
}

func cabs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

func TestResonantSwapMatchesAnalytic(t *testing.T) {
	g := 0.03
	tt := twoTransmonsAt(6.0, 6.0, g)
	tFull := ISwapTime(g) // 1/(4g)
	p := tt.SwapTransfer(tFull)
	if math.Abs(p-1) > 1e-3 {
		t.Fatalf("resonant swap transfer at iSWAP time = %v, want ≈1", p)
	}
	// Quarter time: half population.
	pHalf := tt.SwapTransfer(tFull / 2)
	want := TransitionProbability(g, 0, tFull/2)
	if math.Abs(pHalf-want) > 5e-3 {
		t.Fatalf("swap transfer at t/2 = %v, analytic %v", pHalf, want)
	}
}

func TestDetunedSwapMatchesAnalytic(t *testing.T) {
	g := 0.03
	delta := 0.09
	tt := twoTransmonsAt(6.0+delta, 6.0, g)
	for _, dur := range []float64{2, 5, 8} {
		sim := tt.SwapTransfer(dur)
		ana := TransitionProbability(g, delta, dur)
		if math.Abs(sim-ana) > 0.02 {
			t.Fatalf("detuned transfer at t=%v: sim %v vs analytic %v", dur, sim, ana)
		}
	}
}

func TestCZChannelResonance(t *testing.T) {
	// |11⟩↔|20⟩ resonance requires ωB = ωA + αA = ωA − EC.
	g := 0.03
	wa := 6.2
	tt := twoTransmonsAt(wa, wa-0.2, g)
	// Full transfer into |20⟩ at t = 1/(4·√2·g); the √2 comes from the
	// two-photon matrix element.
	tTransfer := 1 / (4 * math.Sqrt2 * g)
	p := tt.LeakTransfer(tTransfer)
	if p < 0.9 {
		t.Fatalf("CZ-channel transfer at resonance = %v, want near 1", p)
	}
	// After the full CZ cycle the population returns to |11⟩.
	pBack := tt.LeakTransfer(CZTime(g))
	if pBack > 0.1 {
		t.Fatalf("CZ-channel residual leakage after full cycle = %v, want near 0", pBack)
	}
}

func TestCZChannelOffResonanceSuppressed(t *testing.T) {
	g := 0.03
	wa := 6.2
	// Detune B far from the |11⟩↔|20⟩ resonance.
	tt := twoTransmonsAt(wa, wa+0.5, g)
	p := tt.LeakTransfer(1 / (4 * math.Sqrt2 * g))
	if p > 0.05 {
		t.Fatalf("off-resonant CZ leakage = %v, want suppressed", p)
	}
}

func TestMinimumGapAtResonance(t *testing.T) {
	g := 0.03
	tt := twoTransmonsAt(6.0, 6.0, g)
	if gap := tt.MinimumGap(); math.Abs(gap-g) > 1e-12 {
		t.Fatalf("resonant half-gap = %v, want g=%v", gap, g)
	}
	tt2 := twoTransmonsAt(6.5, 6.0, g)
	gap2 := tt2.MinimumGap()
	want := math.Sqrt(0.25+4*g*g) / 2
	if math.Abs(gap2-want) > 1e-12 {
		t.Fatalf("detuned half-gap = %v, want %v", gap2, want)
	}
}

func TestBasisStateAndPopulation(t *testing.T) {
	s := BasisState(1, 2)
	if p := s.Population(1, 2); p != 1 {
		t.Fatalf("population of prepared state = %v", p)
	}
	if p := s.Population(0, 0); p != 0 {
		t.Fatalf("population of other state = %v", p)
	}
	if n := s.Norm(); n != 1 {
		t.Fatalf("norm = %v", n)
	}
}

func TestChevronAmplitudeNarrowsWithDetuning(t *testing.T) {
	// The chevron's peak transfer must fall off as detuning grows
	// (Fig 15's V-shape). Sample three detunings at their own peak times.
	g := 0.03
	peak := func(delta float64) float64 {
		tt := twoTransmonsAt(6.0+delta, 6.0, g)
		max := 0.0
		for dur := 0.5; dur <= 20; dur += 0.5 {
			if p := tt.SwapTransfer(dur); p > max {
				max = p
			}
		}
		return max
	}
	p0, p1, p2 := peak(0), peak(0.05), peak(0.12)
	if !(p0 > p1 && p1 > p2) {
		t.Fatalf("chevron peaks should decrease with detuning: %v, %v, %v", p0, p1, p2)
	}
}
