package graph

import "sort"

// Coloring assigns a color (small non-negative integer) to each vertex.
type Coloring map[int]int

// NumColors returns the number of distinct colors used.
func (c Coloring) NumColors() int {
	seen := make(map[int]struct{}, len(c))
	for _, col := range c {
		seen[col] = struct{}{}
	}
	return len(seen)
}

// Classes groups vertices by color; classes[k] lists the vertices with color
// k in ascending order. Colors are assumed to be 0..NumColors-1 (as produced
// by the greedy colorers in this package).
func (c Coloring) Classes() [][]int {
	n := 0
	for _, col := range c {
		if col+1 > n {
			n = col + 1
		}
	}
	classes := make([][]int, n)
	for v, col := range c {
		classes[col] = append(classes[col], v)
	}
	for _, cl := range classes {
		sort.Ints(cl)
	}
	return classes
}

// Valid reports whether c is a proper coloring of g: every vertex of g is
// colored and no edge is monochromatic.
func (c Coloring) Valid(g *Graph) bool {
	for _, v := range g.Nodes() {
		if _, ok := c[v]; !ok {
			return false
		}
	}
	for _, e := range g.Edges() {
		if c[e.U] == c[e.V] {
			return false
		}
	}
	return true
}

// GreedyColoring colors the vertices of g in the given order, assigning each
// vertex the smallest color not used by an already-colored neighbor. The
// order must contain every vertex of g exactly once.
func GreedyColoring(g *Graph, order []int) Coloring {
	c := make(Coloring, g.NumNodes())
	for _, v := range order {
		used := make(map[int]struct{})
		for u := range g.adj[v] {
			if col, ok := c[u]; ok {
				used[col] = struct{}{}
			}
		}
		col := 0
		for {
			if _, taken := used[col]; !taken {
				break
			}
			col++
		}
		c[v] = col
	}
	return c
}

// WelshPowell colors g greedily in order of non-increasing degree, breaking
// degree ties by ascending vertex id. This is the polynomial-time
// approximation named by the paper (§V-B2); it uses at most MaxDegree+1
// colors.
func WelshPowell(g *Graph) Coloring {
	order := g.Nodes()
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	return GreedyColoring(g, order)
}

// BoundedColoring colors g with at most maxColors colors, dropping vertices
// that cannot be colored within the budget. It colors in Welsh–Powell order
// and returns the partial coloring plus the list of deferred (uncolored)
// vertices in ascending order. With maxColors <= 0 it behaves like
// WelshPowell (no budget) and defers nothing.
//
// The compiler uses this to honor the tunability budget of Fig 11: gates
// whose crosstalk-graph vertices are deferred get postponed to a later slice.
func BoundedColoring(g *Graph, maxColors int) (Coloring, []int) {
	if maxColors <= 0 {
		return WelshPowell(g), nil
	}
	order := g.Nodes()
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	c := make(Coloring, len(order))
	var deferred []int
	for _, v := range order {
		used := make(map[int]struct{})
		for u := range g.adj[v] {
			if col, ok := c[u]; ok {
				used[col] = struct{}{}
			}
		}
		col := -1
		for k := 0; k < maxColors; k++ {
			if _, taken := used[k]; !taken {
				col = k
				break
			}
		}
		if col < 0 {
			deferred = append(deferred, v)
			continue
		}
		c[v] = col
	}
	sort.Ints(deferred)
	return c, deferred
}

// TwoColor attempts to 2-color g by BFS. It returns (coloring, true) when g
// is bipartite, and (nil, false) otherwise. A 2-colorable connectivity graph
// (e.g. any 2-D mesh) needs only two idle frequencies (§IV-C1).
func TwoColor(g *Graph) (Coloring, bool) {
	c := make(Coloring, g.NumNodes())
	for _, start := range g.Nodes() {
		if _, done := c[start]; done {
			continue
		}
		c[start] = 0
		queue := []int{start}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if cu, ok := c[u]; ok {
					if cu == c[v] {
						return nil, false
					}
					continue
				}
				c[u] = 1 - c[v]
				queue = append(queue, u)
			}
		}
	}
	return c, true
}
