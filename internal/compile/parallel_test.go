package compile

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachSerialWhenNoSpareWorkers(t *testing.T) {
	for _, tc := range []struct {
		name string
		ctx  *Context
	}{
		{"nil context", nil},
		{"one worker", &Context{Workers: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var order []int
			tc.ctx.ForEach(5, func(i int) { order = append(order, i) })
			if len(order) != 5 {
				t.Fatalf("ran %d iterations, want 5", len(order))
			}
			for i, v := range order {
				if v != i {
					t.Fatalf("serial ForEach ran out of order: %v", order)
				}
			}
		})
	}
}

func TestForEachRunsEveryIteration(t *testing.T) {
	ctx := &Context{Workers: 4}
	const n = 100
	got := make([]int32, n)
	ctx.ForEach(n, func(i int) { atomic.AddInt32(&got[i], 1) })
	for i, v := range got {
		if v != 1 {
			t.Fatalf("iteration %d ran %d times, want 1", i, v)
		}
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	ctx := &Context{Workers: 4}
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	ctx.ForEach(8, func(i int) {
		if i == 2 {
			panic("boom")
		}
	})
	t.Fatal("ForEach returned despite panicking iteration")
}

func TestForEachZeroIterations(t *testing.T) {
	ctx := &Context{Workers: 4}
	ctx.ForEach(0, func(i int) { t.Fatalf("fn(%d) called for n=0", i) })
}

func TestTrySpawnNoSpareWorkers(t *testing.T) {
	ctx := &Context{Workers: 1}
	if ctx.TrySpawn(func() { t.Error("fn ran despite no spare slot") }) {
		t.Fatal("TrySpawn succeeded with Workers=1")
	}
	var nilCtx *Context
	if nilCtx.TrySpawn(func() {}) {
		t.Fatal("TrySpawn succeeded on nil Context")
	}
}

func TestTrySpawnRunsAndReleasesSlot(t *testing.T) {
	ctx := &Context{Workers: 2} // exactly one spare slot
	ran := make(chan struct{})
	release := make(chan struct{})
	if !ctx.TrySpawn(func() { close(ran); <-release }) {
		t.Fatal("first TrySpawn failed with a free slot")
	}
	<-ran
	// The only slot is held for fn's whole duration.
	if ctx.TrySpawn(func() {}) {
		t.Fatal("second TrySpawn succeeded while the slot was held")
	}
	close(release)
	// The slot returns once fn finishes.
	deadline := time.After(5 * time.Second)
	for {
		done := make(chan struct{})
		if ctx.TrySpawn(func() { close(done) }) {
			<-done
			return
		}
		select {
		case <-deadline:
			t.Fatal("slot never released after fn returned")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestParallelForNilWithoutSpareWorkers(t *testing.T) {
	if (&Context{Workers: 1}).parallelFor() != nil {
		t.Fatal("parallelFor non-nil with Workers=1")
	}
	var nilCtx *Context
	if nilCtx.parallelFor() != nil {
		t.Fatal("parallelFor non-nil on nil Context")
	}
	if (&Context{Workers: 4}).parallelFor() == nil {
		t.Fatal("parallelFor nil with spare workers")
	}
}

func TestSingleFlightLeaderPanicCleansUp(t *testing.T) {
	var g flightGroup
	func() {
		defer func() {
			if recover() != "boom" {
				t.Fatal("leader did not re-panic")
			}
		}()
		g.do("k", func() (any, error) { panic("boom") })
	}()
	// The key must have been forgotten: a fresh call computes, not hangs.
	v, err := g.do("k", func() (any, error) { return 7, nil })
	if err != nil || v.(int) != 7 {
		t.Fatalf("do after panic = (%v, %v), want (7, nil)", v, err)
	}
}

func TestSingleFlightPanicReachesWaiters(t *testing.T) {
	var g flightGroup
	inFlight := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		defer func() { _ = recover() }()
		g.do("k", func() (any, error) {
			close(inFlight)
			<-release
			panic("boom")
		})
	}()
	<-inFlight
	waiterPanic := make(chan any, 1)
	go func() {
		defer func() { waiterPanic <- recover() }()
		// Joins the in-flight call (or, if timing loses the race and the
		// flight already resolved, becomes a fresh leader that panics the
		// same way — either path must deliver the panic).
		g.do("k", func() (any, error) { panic("boom") })
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	if r := <-waiterPanic; r != "boom" {
		t.Fatalf("waiter recovered %v, want boom", r)
	}
	<-leaderDone
}
