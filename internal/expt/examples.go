package expt

import (
	"fmt"
	"sort"

	"fastsc/internal/bench"
	"fastsc/internal/circuit"
	"fastsc/internal/core"
	"fastsc/internal/schedule"
)

// Fig6Toy reproduces the Fig 6 walkthrough: the four-qubit toy program
// (H on all, CNOT(0,2), CNOT(1,3) on a 2×2 chip — the paper's q1..q4
// renumbered from zero) compiled naively and with ColorDynamic, showing how
// spectral/temporal separation removes the highlighted crosstalk.
func Fig6Toy() (*Table, error) {
	sys := GridSystem(4)
	c := circuit.New(4)
	c.H(0).H(1).H(2).H(3)
	c.CNOT(0, 2).CNOT(1, 3)
	c.H(0).H(1).H(2).H(3)

	t := &Table{
		ID:      "fig6",
		Title:   "Toy program of Fig 6: naive vs frequency-aware compilation",
		Columns: []string{"strategy", "slice", "gates", "interaction freqs (GHz)", "min sep (GHz)"},
	}
	for _, strat := range []string{core.BaselineN, core.ColorDynamic} {
		res, err := core.Compile(c, sys, strat, routingConfig(core.PlaceIdentity))
		if err != nil {
			return nil, err
		}
		for si, sl := range res.Schedule.Slices {
			var gates string
			var freqs []float64
			for _, ev := range sl.Gates {
				if gates != "" {
					gates += " "
				}
				gates += ev.Gate.String()
				if ev.Gate.Kind.IsTwoQubit() {
					freqs = append(freqs, ev.Freq)
				}
			}
			if len(freqs) == 0 {
				continue // show only the two-qubit slices
			}
			sort.Float64s(freqs)
			fs := ""
			minSep := -1.0
			for i, f := range freqs {
				if i > 0 {
					fs += " "
					if sep := f - freqs[i-1]; minSep < 0 || sep < minSep {
						minSep = sep
					}
				}
				fs += fmt.Sprintf("%.3f", f)
			}
			sep := "n/a"
			if minSep >= 0 {
				sep = fmt.Sprintf("%.3f", minSep)
			}
			t.Rows = append(t.Rows, []string{
				strat, fmt.Sprintf("%d", si), gates, fs, sep,
			})
		}
	}
	t.Notes = append(t.Notes,
		"Baseline N's parallel CNOTs sit at uncoordinated frequencies (possible collision);",
		"ColorDynamic separates them in frequency or postpones one (separation in time), as in Fig 6(c)")
	return t, nil
}

// Fig14ExampleFrequencies reproduces Appendix A / Fig 14: a concrete idle
// and interaction frequency assignment for a 4×4 chip running one XEB
// two-qubit layer, produced by ColorDynamic.
func Fig14ExampleFrequencies() (*Table, error) {
	sys := GridSystem(16)
	circ := bench.XEB(sys.Device, 1, benchSeed)
	res, err := core.Compile(circ, sys, core.ColorDynamic, routingConfig(core.PlaceIdentity))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig14",
		Title:   "Example frequencies on a 4x4 chip (ColorDynamic, one XEB layer)",
		Columns: []string{"qubit", "coords", "idle (GHz)", "role", "interaction (GHz)"},
	}
	// Find the first slice with two-qubit gates.
	var slice *schedule.Slice
	for si := range res.Schedule.Slices {
		if len(res.Schedule.Slices[si].ActiveCouplers) > 0 {
			slice = &res.Schedule.Slices[si]
			break
		}
	}
	gateFreq := map[int]float64{}
	if slice != nil {
		for _, ev := range slice.Gates {
			if ev.Gate.Kind.IsTwoQubit() {
				gateFreq[ev.Gate.Qubits[0]] = ev.Freq
				gateFreq[ev.Gate.Qubits[1]] = ev.Freq
			}
		}
	}
	for q := 0; q < sys.Device.Qubits; q++ {
		coord := sys.Device.Coords[q]
		role, ifreq := "idle", ""
		if f, ok := gateFreq[q]; ok {
			role = "interacting"
			ifreq = fmt.Sprintf("%.3f", f)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("q%d", q),
			fmt.Sprintf("(%d,%d)", coord.Row, coord.Col),
			fmt.Sprintf("%.3f", res.Schedule.ParkingFreqs[q]),
			role, ifreq,
		})
	}
	t.Notes = append(t.Notes,
		"idle frequencies form a staggered checkerboard near the lower sweet spot (≈5 GHz);",
		"interaction frequencies sit in the upper band (≈6.2–7 GHz), as in the paper's Fig 14")
	return t, nil
}
