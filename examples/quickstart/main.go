// Quickstart: compile the paper's Fig 6 toy program on a 2×2 tunable-
// transmon chip and inspect how the frequency-aware compiler separates the
// two parallel CNOTs in frequency (or time) where a naive compiler lets
// them collide.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fastsc/internal/circuit"
	"fastsc/internal/core"
	"fastsc/internal/phys"
	"fastsc/internal/topology"
)

func main() {
	// A 2×2 mesh of flux-tunable transmons with fixed capacitive couplers.
	dev := topology.Grid(2, 2)
	sys := phys.NewSystem(dev, phys.DefaultParams(), 1)

	// The Fig 6 toy program: Hadamards, then two parallel CNOTs on
	// opposite couplers, then Hadamards.
	prog := circuit.New(4)
	for q := 0; q < 4; q++ {
		prog.H(q)
	}
	prog.CNOT(0, 2).CNOT(1, 3)
	for q := 0; q < 4; q++ {
		prog.H(q)
	}

	fmt.Println("program:")
	fmt.Print(prog)

	for _, strategy := range []string{core.BaselineN, core.ColorDynamic} {
		res, err := core.Compile(prog, sys, strategy, core.Config{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %s ---\n", strategy)
		fmt.Printf("success estimate: %.4f (crosstalk %.4f, decoherence %.4f)\n",
			res.Report.Success, res.Report.CrosstalkError, res.Report.DecoherenceError)
		fmt.Printf("schedule: %d slices over %.0f ns\n", res.Schedule.Depth(), res.Schedule.TotalTime)
		for i, sl := range res.Schedule.Slices {
			fmt.Printf("  slice %d (%.0f ns):", i, sl.Duration)
			for _, ev := range sl.Gates {
				if ev.Gate.Kind.IsTwoQubit() {
					fmt.Printf("  %s @ %.3f GHz", ev.Gate, ev.Freq)
				} else {
					fmt.Printf("  %s", ev.Gate)
				}
			}
			fmt.Println()
		}
		fmt.Println("idle (parking) frequencies:")
		for q := 0; q < dev.Qubits; q++ {
			fmt.Printf("  q%d: %.3f GHz\n", q, res.Schedule.ParkingFreqs[q])
		}
	}
}
