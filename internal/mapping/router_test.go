package mapping

import (
	"math"
	"math/rand"
	"testing"

	"fastsc/internal/circuit"
	"fastsc/internal/graph"
	"fastsc/internal/topology"
)

// referenceRoute is the historical mapping.Route implementation — a fresh
// BFS shortest path per uncoupled gate — kept verbatim as the oracle the
// flat GreedyRouter is pinned against.
func referenceRoute(c *circuit.Circuit, dev *topology.Device, initial *Mapping) (*Result, error) {
	m := initial
	if m == nil {
		m = Identity(c.NumQubits, dev.Qubits)
	} else {
		m = m.Clone()
	}
	out := circuit.New(dev.Qubits)
	var inserted []bool
	swaps := 0
	for _, g := range c.Gates {
		if g.Arity() == 1 {
			out.Add(circuit.Gate{Kind: g.Kind, Qubits: []int{m.LogToPhys[g.Qubits[0]]}, Theta: g.Theta})
			inserted = append(inserted, false)
			continue
		}
		pa, pb := m.LogToPhys[g.Qubits[0]], m.LogToPhys[g.Qubits[1]]
		if !dev.Coupling.HasEdge(pa, pb) {
			path := dev.Coupling.ShortestPath(pa, pb)
			if path == nil {
				return nil, nil
			}
			for i := 0; i+2 < len(path); i++ {
				out.SWAP(path[i], path[i+1])
				inserted = append(inserted, true)
				m.SwapPhys(path[i], path[i+1])
				swaps++
			}
			pa = m.LogToPhys[g.Qubits[0]]
			pb = m.LogToPhys[g.Qubits[1]]
		}
		out.Add(circuit.Gate{Kind: g.Kind, Qubits: []int{pa, pb}, Theta: g.Theta})
		inserted = append(inserted, false)
	}
	return &Result{Routed: out, Final: m, Inserted: inserted, SwapCount: swaps}, nil
}

// routeDevices returns the topology families the property tests sweep.
func routeDevices() []*topology.Device {
	return []*topology.Device{
		topology.Grid(2, 2),
		topology.Grid(3, 3),
		topology.Grid(3, 4),
		topology.Linear(7),
		topology.Ring(8),
		topology.Express1D(9, 3),
		topology.Express2D(3, 3, 2),
	}
}

// randomCircuit draws a random logical circuit over n qubits: a mix of
// single-qubit gates and CNOT/CZ pairs on arbitrary (mostly uncoupled)
// operand pairs.
func randomCircuit(rng *rand.Rand, n int) *circuit.Circuit {
	c := circuit.New(n)
	gates := 1 + rng.Intn(24)
	for i := 0; i < gates; i++ {
		switch rng.Intn(4) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.RZ(rng.Intn(n), rng.Float64())
		default:
			a, b := rng.Intn(n), rng.Intn(n)
			for b == a {
				b = rng.Intn(n)
			}
			if rng.Intn(2) == 0 {
				c.CNOT(a, b)
			} else {
				c.CZ(a, b)
			}
		}
	}
	return c
}

// randomInitial draws a random bijective placement, or nil for identity.
func randomInitial(rng *rand.Rand, n, nPhys int) *Mapping {
	if rng.Intn(3) == 0 {
		return nil
	}
	order := rng.Perm(nPhys)[:n]
	return FromOrder(n, order, nPhys)
}

// TestGreedyRouterPinnedToReference pins the flat distance-matrix greedy
// router gate-for-gate to the historical BFS implementation on randomized
// circuits across every topology family: same gates, same operand order,
// same SWAP positions, same final mapping.
func TestGreedyRouterPinnedToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 400; iter++ {
		dev := routeDevices()[iter%len(routeDevices())]
		c := randomCircuit(rng, 2+rng.Intn(dev.Qubits-1))
		initial := randomInitial(rng, c.NumQubits, dev.Qubits)
		want, err := referenceRoute(c, dev, initial)
		if err != nil || want == nil {
			t.Fatalf("reference route failed on %s", dev.Name)
		}
		got, err := (&GreedyRouter{}).Route(c, nil, dev, initial)
		if err != nil {
			t.Fatalf("%s: %v", dev.Name, err)
		}
		if got.SwapCount != want.SwapCount {
			t.Fatalf("%s iter %d: swap count %d != reference %d", dev.Name, iter, got.SwapCount, want.SwapCount)
		}
		if len(got.Routed.Gates) != len(want.Routed.Gates) {
			t.Fatalf("%s iter %d: %d gates != reference %d", dev.Name, iter,
				len(got.Routed.Gates), len(want.Routed.Gates))
		}
		for i, g := range got.Routed.Gates {
			w := want.Routed.Gates[i]
			if g.Kind != w.Kind || g.Theta != w.Theta || got.Inserted[i] != want.Inserted[i] {
				t.Fatalf("%s iter %d gate %d: %v != reference %v", dev.Name, iter, i, g, w)
			}
			for j := range g.Qubits {
				if g.Qubits[j] != w.Qubits[j] {
					t.Fatalf("%s iter %d gate %d operands: %v != reference %v", dev.Name, iter, i, g, w)
				}
			}
		}
		for l, p := range got.Final.LogToPhys {
			if p != want.Final.LogToPhys[l] {
				t.Fatalf("%s iter %d: final mapping diverges at logical %d", dev.Name, iter, l)
			}
		}
	}
}

// checkRoutedInvariants asserts the routed-circuit validity contract:
// every two-qubit gate acts on a coupler, Final is a bijection that equals
// the initial mapping advanced by exactly the inserted SWAPs, and mapping
// every translated gate back through the evolving mapping reconstructs the
// logical gate list.
func checkRoutedInvariants(t *testing.T, label string, c *circuit.Circuit, dev *topology.Device,
	initial *Mapping, res *Result) {
	t.Helper()
	if len(res.Inserted) != len(res.Routed.Gates) {
		t.Fatalf("%s: %d inserted flags for %d gates", label, len(res.Inserted), len(res.Routed.Gates))
	}
	m := initial
	if m == nil {
		m = Identity(c.NumQubits, dev.Qubits)
	} else {
		m = m.Clone()
	}
	var logical []circuit.Gate
	swaps := 0
	for i, g := range res.Routed.Gates {
		if g.Arity() == 2 && !dev.Coupling.HasEdge(g.Qubits[0], g.Qubits[1]) {
			t.Fatalf("%s: gate %d %v not on a coupler", label, i, g)
		}
		if res.Inserted[i] {
			if g.Kind != circuit.SWAP {
				t.Fatalf("%s: inserted gate %d is %v, not SWAP", label, i, g)
			}
			m.SwapPhys(g.Qubits[0], g.Qubits[1])
			swaps++
			continue
		}
		qs := make([]int, len(g.Qubits))
		for j, p := range g.Qubits {
			qs[j] = m.PhysToLog[p]
		}
		logical = append(logical, circuit.Gate{Kind: g.Kind, Qubits: qs, Theta: g.Theta})
	}
	if swaps != res.SwapCount {
		t.Fatalf("%s: %d inserted SWAPs but SwapCount %d", label, swaps, res.SwapCount)
	}
	// Final must equal the initial mapping advanced by the inserted SWAPs,
	// and must be a bijection.
	for l, p := range res.Final.LogToPhys {
		if p != m.LogToPhys[l] {
			t.Fatalf("%s: Final.LogToPhys[%d]=%d, replay says %d", label, l, p, m.LogToPhys[l])
		}
		if p < 0 || p >= dev.Qubits || res.Final.PhysToLog[p] != l {
			t.Fatalf("%s: Final not a bijection at logical %d", label, l)
		}
	}
	occupied := 0
	for _, l := range res.Final.PhysToLog {
		if l != -1 {
			occupied++
		}
	}
	if occupied != c.NumQubits {
		t.Fatalf("%s: Final occupies %d physical qubits, want %d", label, occupied, c.NumQubits)
	}
	// The translated gates, mapped back, must reproduce the program up to
	// a dependency-respecting reorder (the lookahead router issues from
	// the frontier, so independent gates may legally commute past each
	// other). Equality of every per-qubit gate subsequence pins exactly
	// that: it forces the order of any two gates sharing a qubit, which
	// determines the circuit's unitary.
	if len(logical) != c.NumGates() {
		t.Fatalf("%s: reconstructed %d gates, want %d", label, len(logical), c.NumGates())
	}
	for q := 0; q < c.NumQubits; q++ {
		want := qubitStream(c.Gates, q)
		got := qubitStream(logical, q)
		if len(want) != len(got) {
			t.Fatalf("%s: qubit %d stream has %d gates, want %d", label, q, len(got), len(want))
		}
		for i := range want {
			a, b := want[i], got[i]
			if a.Kind != b.Kind || a.Theta != b.Theta || len(a.Qubits) != len(b.Qubits) {
				t.Fatalf("%s: qubit %d stream gate %d: %v != %v", label, q, i, b, a)
			}
			for j := range a.Qubits {
				if a.Qubits[j] != b.Qubits[j] {
					t.Fatalf("%s: qubit %d stream gate %d operands: %v != %v", label, q, i, b, a)
				}
			}
		}
	}
}

// qubitStream returns the subsequence of gates touching qubit q, in order.
func qubitStream(gates []circuit.Gate, q int) []circuit.Gate {
	var out []circuit.Gate
	for _, g := range gates {
		for _, gq := range g.Qubits {
			if gq == q {
				out = append(out, g)
				break
			}
		}
	}
	return out
}

// TestRoutedInvariantsAllRouters sweeps randomized circuits × topology
// families × routers × random placements through the validity invariants.
func TestRoutedInvariantsAllRouters(t *testing.T) {
	routers := []Router{
		&GreedyRouter{},
		&LookaheadRouter{},
		&LookaheadRouter{Window: 4, Decay: 0.3},
	}
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 250; iter++ {
		dev := routeDevices()[iter%len(routeDevices())]
		c := randomCircuit(rng, 2+rng.Intn(dev.Qubits-1))
		initial := randomInitial(rng, c.NumQubits, dev.Qubits)
		for _, r := range routers {
			res, err := r.Route(c, nil, dev, initial)
			if err != nil {
				t.Fatalf("%s on %s: %v", r.Name(), dev.Name, err)
			}
			checkRoutedInvariants(t, r.Name()+"/"+dev.Name, c, dev, initial, res)
		}
	}
}

// TestRoutersDeterministic re-routes the same inputs and demands identical
// output gate lists — the property the compile cache's route region relies
// on to share Results across jobs.
func TestRoutersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dev := topology.Grid(3, 3)
	c := randomCircuit(rng, 9)
	for _, r := range []Router{&GreedyRouter{}, &LookaheadRouter{}} {
		a, err := r.Route(c, nil, dev, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.Route(c, circuit.Analyze(c), dev, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Routed.Gates) != len(b.Routed.Gates) || a.SwapCount != b.SwapCount {
			t.Fatalf("%s: nondeterministic shape", r.Name())
		}
		for i := range a.Routed.Gates {
			ga, gb := a.Routed.Gates[i], b.Routed.Gates[i]
			if ga.Kind != gb.Kind || ga.Qubits[0] != gb.Qubits[0] {
				t.Fatalf("%s: gate %d differs across runs", r.Name(), i)
			}
		}
	}
}

// TestPlan exercises the placement × router matrix through the Plan entry
// point.
func TestPlan(t *testing.T) {
	dev := topology.Grid(3, 3)
	rng := rand.New(rand.NewSource(9))
	c := randomCircuit(rng, 9)
	for _, placement := range PlacementNames() {
		for _, router := range RouterNames() {
			opts := Options{Placement: placement, Router: RouterConfig{Algorithm: router}}
			res, err := Plan(c, nil, dev, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", placement, router, err)
			}
			initial, err := InitialMapping(placement, c, nil, dev)
			if err != nil {
				t.Fatal(err)
			}
			checkRoutedInvariants(t, placement+"/"+router, c, dev, initial, res)
		}
	}
	if _, err := Plan(c, nil, dev, Options{Router: RouterConfig{Algorithm: "astar"}}); err == nil {
		t.Fatal("unknown router should error")
	}
	if _, err := Plan(c, nil, dev, Options{Placement: "random"}); err == nil {
		t.Fatal("unknown placement should error")
	}
}

// TestLookaheadBeatsGreedyOnQAOAShape routes a dense random interaction
// pattern (the QAOA MAX-CUT shape) with both routers: the lookahead search
// must not insert more SWAPs, and on this fixed seed inserts strictly
// fewer.
func TestLookaheadBeatsGreedyOnQAOAShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dev := topology.Grid(4, 4)
	c := circuit.New(16)
	for i := 0; i < 16; i++ {
		for j := i + 1; j < 16; j++ {
			if rng.Float64() < 0.5 {
				c.CZ(i, j)
			}
		}
	}
	greedy, err := (&GreedyRouter{}).Route(c, nil, dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	look, err := (&LookaheadRouter{}).Route(c, nil, dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if look.SwapCount >= greedy.SwapCount {
		t.Fatalf("lookahead inserted %d swaps, greedy %d — lookahead should win on QAOA shapes",
			look.SwapCount, greedy.SwapCount)
	}
}

// TestDegreePlacement checks the greedy degree matching: the
// highest-interaction logical qubit sits on a maximum-degree physical
// qubit, and the embedding is a valid bijection.
func TestDegreePlacement(t *testing.T) {
	dev := topology.Grid(3, 3)
	c := circuit.New(5)
	// Star around logical 3: by far the highest interaction count.
	c.CNOT(3, 0).CNOT(3, 1).CNOT(3, 2).CNOT(3, 4).CNOT(0, 1)
	m, err := InitialMapping(PlaceDegree, c, nil, dev)
	if err != nil {
		t.Fatal(err)
	}
	center := m.LogToPhys[3]
	if dev.Degree(center) != dev.Coupling.MaxDegree() {
		t.Fatalf("hub logical 3 placed on physical %d (degree %d), want a degree-%d qubit",
			center, dev.Degree(center), dev.Coupling.MaxDegree())
	}
	seen := make(map[int]bool)
	for l, p := range m.LogToPhys {
		if seen[p] {
			t.Fatalf("physical %d assigned twice", p)
		}
		seen[p] = true
		if m.PhysToLog[p] != l {
			t.Fatalf("inverse mapping broken at logical %d", l)
		}
	}
	// Degree placement routes no worse than a corner-heavy identity start
	// for the star circuit.
	resID, err := Route(c, dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	resDeg, err := (&GreedyRouter{}).Route(c, nil, dev, m)
	if err != nil {
		t.Fatal(err)
	}
	if resDeg.SwapCount > resID.SwapCount {
		t.Fatalf("degree placement needs %d swaps, identity %d", resDeg.SwapCount, resID.SwapCount)
	}
}

// TestRouteNoSwapFastPath pins the bugfix: routing a circuit that needs no
// SWAPs must not clone the initial mapping (Final aliases it) and must not
// reallocate the inserted flags per gate.
func TestRouteNoSwapFastPath(t *testing.T) {
	dev := topology.Grid(3, 3)
	c := circuit.New(9)
	for i := 0; i+1 < 9; i++ {
		c.CZ(i, i+1)
	}
	initial := FromOrder(9, SnakeOrder(dev), 9)
	res, err := Route(c, dev, initial)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 0 {
		t.Fatalf("snake-placed chain should need 0 swaps, got %d", res.SwapCount)
	}
	if res.Final != initial {
		t.Fatal("no-SWAP route must alias the initial mapping, not clone it")
	}
	if got, want := cap(res.Inserted), c.NumGates(); got < want {
		t.Fatalf("inserted flags capacity %d, want preallocation >= %d", got, want)
	}
}

// TestRouteAllocsLinear is the alloc-count regression test for the
// preallocation bugfix (the analogue of TestFrontierReadyZeroAlloc): the
// per-call allocation count of a no-SWAP route is one fixed-size batch of
// retained output plus exactly one allocation per translated gate — no
// clone of the initial mapping, no append-doubling of the inserted flags
// or the gate list. The per-gate term is the retained operand slice of the
// output circuit, so allocations minus gates must be a small constant
// independent of circuit length.
func TestRouteAllocsLinear(t *testing.T) {
	dev := topology.Linear(64)
	initial := Identity(64, 64)
	measure := func(gates int) float64 {
		c := circuit.New(64)
		for i := 0; i < gates; i++ {
			c.CZ(i%63, i%63+1)
		}
		return testing.AllocsPerRun(20, func() {
			if _, err := Route(c, dev, initial); err != nil {
				t.Fatal(err)
			}
		}) - float64(gates)
	}
	small, large := measure(8), measure(256)
	if small != large {
		t.Fatalf("fixed allocation overhead grew with circuit length: %v vs %v", small, large)
	}
	if small > 8 {
		t.Fatalf("no-SWAP route has %v fixed allocations, want <= 8", small)
	}
}

// TestRoutersErrorOnUnroutableGates is the regression test for the
// lookahead sentinel-swap panic: a blocked gate whose operands are
// isolated (no couplers) or sit in different components must surface the
// contractual "no path" error from every router — never a panic.
func TestRoutersErrorOnUnroutableGates(t *testing.T) {
	// Qubits 2 and 3 have no couplers at all.
	isolated := graph.NewDense(4)
	isolated.AddEdge(0, 1)
	devIsolated := &topology.Device{Name: "isolated", Qubits: 4, Coupling: isolated,
		Coords: map[int]topology.Coord{}}
	// Two disconnected components {0,1} and {2,3}.
	split := graph.NewDense(4)
	split.AddEdge(0, 1)
	split.AddEdge(2, 3)
	devSplit := &topology.Device{Name: "split", Qubits: 4, Coupling: split,
		Coords: map[int]topology.Coord{}}

	for _, tc := range []struct {
		name string
		dev  *topology.Device
	}{{"isolated-operands", devIsolated}, {"cross-component", devSplit}} {
		c := circuit.New(4)
		c.CNOT(2, 3)
		if tc.dev == devSplit {
			c = circuit.New(4)
			c.CNOT(1, 2)
		}
		for _, r := range []Router{&GreedyRouter{}, &LookaheadRouter{}} {
			_, err := r.Route(c, nil, tc.dev, nil)
			if err == nil {
				t.Fatalf("%s/%s: expected a no-path error", r.Name(), tc.name)
			}
		}
	}
}

// TestRouterConfigNormalizesNaN pins the Decay clamp's NaN handling: a
// poisoned decay must normalize to the default instead of silently
// degenerating the scoring heuristic (every NaN comparison is false).
func TestRouterConfigNormalizesNaN(t *testing.T) {
	got := RouterConfig{Algorithm: RouterLookahead, Decay: math.NaN()}.withDefaults()
	if got.Decay != DefaultLookaheadDecay {
		t.Fatalf("NaN decay normalized to %v, want %v", got.Decay, DefaultLookaheadDecay)
	}
}
