// Fixture for the maporder analyzer: map ranges feeding order-sensitive
// sinks are flagged; commutative accumulation and the collect-then-sort
// idiom are not.
package maporder

import (
	"encoding/gob"
	"fmt"
	"sort"
	"strings"
)

func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `maporder: iteration over map "m" feeds an append to "keys"`
		keys = append(keys, k)
	}
	return keys
}

func appendSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // collect-then-sort: not flagged
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func printLoop(m map[string]int) {
	for k, v := range m { // want `maporder: .*fmt\.Println output`
		fmt.Println(k, v)
	}
}

func fprintLoop(m map[string]int, sb *strings.Builder) {
	for k := range m { // want `maporder: .*fmt\.Fprintf write to "sb"`
		fmt.Fprintf(sb, "%s\n", k)
	}
}

func writerLoop(m map[string]int, sb *strings.Builder) {
	for k := range m { // want `maporder: .*WriteString on "sb"`
		sb.WriteString(k)
	}
}

func sendLoop(m map[string]int, ch chan string) {
	for k := range m { // want `maporder: .*send on "ch"`
		ch <- k
	}
}

func counterStore(m map[string]int) []string {
	out := make([]string, len(m))
	i := 0
	for k := range m { // want `maporder: .*counter-indexed store into "out"`
		out[i] = k
		i++
	}
	return out
}

func counterStoreSorted(m map[string]int) []string {
	out := make([]string, len(m))
	i := 0
	for k := range m { // counter-indexed, but sorted after: not flagged
		out[i] = k
		i++
	}
	sort.Strings(out)
	return out
}

func nestedSorted(mm map[string]map[string]bool) []string {
	var pairs []string
	for outer, inner := range mm { // sorted after the enclosing loop: not flagged
		for k := range inner { // likewise for the nested map range
			pairs = append(pairs, outer+"/"+k)
		}
	}
	sort.Strings(pairs)
	return pairs
}

func nestedUnsorted(mm map[string]map[string]bool) []string {
	var pairs []string
	for _, inner := range mm { // want `maporder: iteration over map "mm" feeds an append to "pairs"`
		for k := range inner { // want `maporder: iteration over map "inner" feeds an append to "pairs"`
			pairs = append(pairs, k)
		}
	}
	return pairs
}

func sumLoop(m map[string]int) int {
	total := 0
	for _, v := range m { // commutative accumulation: not flagged
		total += v
	}
	return total
}

func invert(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m { // map-to-map: not flagged
		inv[v] = k
	}
	return inv
}

func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs { // slice iteration is ordered: not flagged
		out = append(out, x)
	}
	return out
}

func encodeLoop(m map[string]int, enc *gob.Encoder) {
	for k := range m { // want `maporder: .*Encode on "enc"`
		_ = enc.Encode(k)
	}
}

func encodeSortedKeys(m map[string]int, enc *gob.Encoder) {
	// The snapshot-codec idiom (compile/persist.go Save): collect the map
	// keys, sort, then stream into the encoder — deterministic bytes for
	// identical contents, so neither loop is flagged.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		_ = enc.Encode(k)
	}
}

func innerSlice(m map[string]int) {
	for k := range m { // per-iteration local resets each round: not flagged
		var parts []string
		parts = append(parts, k)
		_ = parts
	}
}
