// Command benchcmp compares two benchjson documents and fails (exit 1)
// when any benchmark matching -pattern regressed in ns/op by more than
// -max-regress percent. It is the CI benchmark-regression guard:
//
//	benchcmp -baseline bench-base.json -new bench-head.json \
//	         -pattern 'BenchmarkBatchCompile' -max-regress 20
//
// Benchmarks present on only one side are reported but do not fail the
// comparison (new benchmarks appear, old ones get renamed); pass
// -require-overlap to fail when *no* benchmark matched on both sides,
// which catches a misconfigured pattern.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func load(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]result)
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func main() {
	baselinePath := flag.String("baseline", "", "baseline benchjson file")
	newPath := flag.String("new", "", "candidate benchjson file")
	pattern := flag.String("pattern", ".", "regexp selecting benchmarks to guard")
	maxRegress := flag.Float64("max-regress", 20, "max allowed ns/op regression in percent")
	requireOverlap := flag.Bool("require-overlap", false, "fail when no benchmark matches on both sides")
	flag.Parse()
	if *baselinePath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -baseline and -new are required")
		os.Exit(2)
	}
	re, err := regexp.Compile(*pattern)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp: bad -pattern:", err)
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	cand, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(cand))
	for name := range cand {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	overlap := 0
	failed := false
	fmt.Printf("%-60s %14s %14s %8s\n", "benchmark", "base ns/op", "new ns/op", "delta")
	for _, name := range names {
		n := cand[name]
		b, ok := base[name]
		if !ok || b.NsPerOp == 0 {
			fmt.Printf("%-60s %14s %14.0f %8s\n", name, "-", n.NsPerOp, "new")
			continue
		}
		overlap++
		delta := 100 * (n.NsPerOp - b.NsPerOp) / b.NsPerOp
		mark := ""
		if delta > *maxRegress {
			mark = "  << REGRESSION"
			failed = true
		}
		fmt.Printf("%-60s %14.0f %14.0f %+7.1f%%%s\n", name, b.NsPerOp, n.NsPerOp, delta, mark)
	}
	gone := make([]string, 0, len(base))
	for name := range base {
		if re.MatchString(name) {
			if _, ok := cand[name]; !ok {
				gone = append(gone, name)
			}
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Printf("%-60s %14.0f %14s %8s\n", name, base[name].NsPerOp, "-", "gone")
	}

	if overlap == 0 {
		fmt.Printf("no benchmark matched %q on both sides\n", *pattern)
		if *requireOverlap {
			os.Exit(1)
		}
		return
	}
	if failed {
		fmt.Printf("FAIL: ns/op regression above %.0f%% threshold\n", *maxRegress)
		os.Exit(1)
	}
	fmt.Printf("OK: %d benchmark(s) within %.0f%% of baseline\n", overlap, *maxRegress)
}
