package circuit

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Canonical binary circuit encoding — the wire form of the compile cache's
// content-addressed circuit store. The format is deterministic by
// construction (no maps, no pointer identity, no gob type negotiation):
// content-identical circuits encode to identical bytes, and the bytes
// cover exactly the fields Signature hashes, so
//
//	DecodeCanonical(EncodeCanonical(c)).Signature() == c.Signature()
//
// holds for every valid circuit (the round-trip property pinned by
// encode_test.go). That makes the 128-bit content signature a safe storage
// key: a snapshot can keep one canonical blob per signature and any number
// of cache entries (routed circuits, analyses) referencing it.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic   2 bytes  "fc"
//	version 1 byte   canonicalVersion
//	NumQubits
//	len(Gates)
//	per gate: Kind, len(Qubits), each qubit id, Theta as 8 fixed
//	          little-endian bytes (Float64bits — always present, even for
//	          non-parametric gates, mirroring Signature's unconditional mix)
//
// The version byte is bumped whenever the layout changes; DecodeCanonical
// rejects unknown versions so a newer store never half-decodes on an older
// binary.

// canonicalMagic guards against feeding arbitrary blobs to DecodeCanonical.
const canonicalMagic = "fc"

// canonicalVersion is the canonical-encoding layout version.
const canonicalVersion = 1

// EncodeCanonical serializes the circuit into its canonical binary form.
// The encoding covers NumQubits and every gate's Kind, operand list and
// Theta — exactly the Signature inputs — and nothing else.
func (c *Circuit) EncodeCanonical() []byte {
	// 2 magic + 1 version + ~2 varints + ~(2 varint + 2 qubit + 8 theta)
	// bytes per gate: preallocate generously to keep appends realloc-free.
	buf := make([]byte, 0, 8+14*len(c.Gates))
	buf = append(buf, canonicalMagic...)
	buf = append(buf, canonicalVersion)
	buf = binary.AppendUvarint(buf, uint64(c.NumQubits))
	buf = binary.AppendUvarint(buf, uint64(len(c.Gates)))
	for _, g := range c.Gates {
		buf = binary.AppendUvarint(buf, uint64(g.Kind))
		buf = binary.AppendUvarint(buf, uint64(len(g.Qubits)))
		for _, q := range g.Qubits {
			buf = binary.AppendUvarint(buf, uint64(q))
		}
		var theta [8]byte
		binary.LittleEndian.PutUint64(theta[:], math.Float64bits(g.Theta))
		buf = append(buf, theta[:]...)
	}
	return buf
}

// DecodeCanonical reconstructs a circuit from its canonical binary form.
// It validates structure (magic, version, bounds) but deliberately not
// gate-level invariants beyond operand ranges: the store's integrity check
// is re-signing the decoded circuit and comparing against the storage key,
// which any bit flip fails.
func DecodeCanonical(data []byte) (*Circuit, error) {
	if len(data) < len(canonicalMagic)+1 || string(data[:len(canonicalMagic)]) != canonicalMagic {
		return nil, fmt.Errorf("circuit: canonical decode: bad magic")
	}
	if v := data[len(canonicalMagic)]; v != canonicalVersion {
		return nil, fmt.Errorf("circuit: canonical decode: unknown version %d", v)
	}
	r := data[len(canonicalMagic)+1:]
	next := func(what string) (uint64, error) {
		v, n := binary.Uvarint(r)
		if n <= 0 {
			return 0, fmt.Errorf("circuit: canonical decode: truncated %s", what)
		}
		r = r[n:]
		return v, nil
	}
	nq, err := next("qubit count")
	if err != nil {
		return nil, err
	}
	ng, err := next("gate count")
	if err != nil {
		return nil, err
	}
	const maxReasonable = 1 << 28 // reject absurd counts before allocating
	if nq == 0 || nq > maxReasonable || ng > maxReasonable {
		return nil, fmt.Errorf("circuit: canonical decode: implausible counts (%d qubits, %d gates)", nq, ng)
	}
	c := &Circuit{NumQubits: int(nq), Gates: make([]Gate, 0, ng)}
	for i := uint64(0); i < ng; i++ {
		kind, err := next("gate kind")
		if err != nil {
			return nil, err
		}
		arity, err := next("gate arity")
		if err != nil {
			return nil, err
		}
		if arity == 0 || arity > 2 {
			return nil, fmt.Errorf("circuit: canonical decode: gate %d has arity %d", i, arity)
		}
		qs := make([]int, arity)
		for j := range qs {
			q, err := next("qubit id")
			if err != nil {
				return nil, err
			}
			if q >= nq {
				return nil, fmt.Errorf("circuit: canonical decode: gate %d qubit %d out of range [0,%d)", i, q, nq)
			}
			qs[j] = int(q)
		}
		if len(r) < 8 {
			return nil, fmt.Errorf("circuit: canonical decode: truncated theta")
		}
		theta := math.Float64frombits(binary.LittleEndian.Uint64(r))
		r = r[8:]
		c.Gates = append(c.Gates, Gate{Kind: Kind(kind), Qubits: qs, Theta: theta})
	}
	if len(r) != 0 {
		return nil, fmt.Errorf("circuit: canonical decode: %d trailing bytes", len(r))
	}
	return c, nil
}
