package schedule

import (
	"fastsc/internal/circuit"
	"fastsc/internal/compile"
	"fastsc/internal/graph"
	"fastsc/internal/phys"
	"fastsc/internal/smt"
)

// ColorDynamic is the paper's frequency-aware compiler (Algorithm 1):
// program-specific frequency assignment per time step via circuit slicing,
// noise-aware queueing (line 10–16), active-subgraph coloring (line 17–19),
// and SMT frequency optimization (line 20–22).
type ColorDynamic struct{}

// Name implements Compiler.
func (ColorDynamic) Name() string { return "ColorDynamic" }

// Compile implements Compiler.
func (ColorDynamic) Compile(ctx *compile.Context, c *circuit.Circuit, sys *phys.System, opts Options) (*Schedule, error) {
	return compileColorDynamic(ctx, "ColorDynamic", false, c, sys, opts)
}

// GmonDynamic is the §VIII extension: ColorDynamic's program-specific
// frequency tuning applied on tunable-coupler (gmon) hardware. Couplers are
// switched off outside the active set as in Baseline G, but simultaneous
// gates are additionally spread in frequency by the dynamic coloring, so
// residual coupler leakage (Fig 12) meets detuned rather than resonant
// neighbors. It is not part of the paper's Table I evaluation; see the
// ext-gmon experiment.
type GmonDynamic struct{}

// Name implements Compiler.
func (GmonDynamic) Name() string { return "ColorDynamic-G" }

// Compile implements Compiler.
func (GmonDynamic) Compile(ctx *compile.Context, c *circuit.Circuit, sys *phys.System, opts Options) (*Schedule, error) {
	return compileColorDynamic(ctx, "ColorDynamic-G", true, c, sys, opts)
}

func compileColorDynamic(ctx *compile.Context, name string, gmon bool, c *circuit.Circuit, sys *phys.System, opts Options) (*Schedule, error) {
	b, err := newBuilder(ctx, name, c, sys, opts)
	if err != nil {
		return nil, err
	}
	b.sched.Gmon = gmon
	opts = b.opts
	intCfg := b.part.InteractionConfig(sys.MeanAnharmonicity())
	// The interaction band fits only so many colors; combined with the
	// user's tunability budget (default 2, the Fig 11 sweet spot; -1 for
	// unlimited) this caps each slice's coloring.
	budget := maxColorsFeasible(ctx, intCfg, 16)
	if opts.MaxColors > 0 && opts.MaxColors < budget {
		budget = opts.MaxColors
	}

	f := circuit.NewFrontier(b.circ)
	for !f.Done() {
		ready := f.Ready()
		sortByCriticality(ready, b.crit)

		// Queueing scheduler: admit gates most-critical first, postponing
		// two-qubit gates whose crosstalk neighborhoods are already
		// crowded (noise_conflict, §V-B6).
		var selected []int
		var active []graph.Edge
		var activeVerts []int
		gateOfEdge := make(map[graph.Edge]int)
		for _, idx := range ready {
			g := b.circ.Gates[idx]
			if g.Kind.IsTwoQubit() {
				e := graph.NewEdge(g.Qubits[0], g.Qubits[1])
				if b.xg.ConflictDegree(g.Qubits[0], g.Qubits[1], active) >= opts.ConflictLimit {
					continue // postpone to a later slice
				}
				active = append(active, e)
				activeVerts = append(activeVerts, mustVertex(b, e))
				gateOfEdge[e] = idx
			}
			selected = append(selected, idx)
		}

		// Color the active subgraph of the crosstalk graph within the
		// color budget and solve its frequencies; gates whose vertices
		// cannot be colored are postponed (spectral -> temporal separation
		// trade). The whole slice solution is a pure function of the
		// active subgraph, so it is memoized across slices and jobs.
		sol, err := b.solveSlice(intCfg, budget, active, activeVerts)
		if err != nil {
			return nil, err
		}
		dropped := make(map[int]bool)
		for _, v := range sol.Deferred {
			dropped[gateOfEdge[b.xg.Couplers[v]]] = true
		}

		var events []GateEvent
		sliceFreqs := make(map[int]float64)
		for _, idx := range selected {
			if dropped[idx] {
				continue
			}
			g := b.circ.Gates[idx]
			if g.Kind.IsTwoQubit() {
				e := graph.NewEdge(g.Qubits[0], g.Qubits[1])
				v := mustVertex(b, e)
				col := sol.Coloring[v]
				freq := sol.Assign[col]
				sliceFreqs[g.Qubits[0]] = freq
				sliceFreqs[g.Qubits[1]] = freq
				events = append(events, GateEvent{
					Gate: g, Duration: b.gateDuration(g, freq), Freq: freq, Color: col,
				})
			} else {
				events = append(events, GateEvent{
					Gate: g, Duration: b.gateDuration(g, 0), Freq: b.park[g.Qubits[0]], Color: -1,
				})
			}
			f.Issue(idx)
		}
		b.emitSlice(events, sliceFreqs, sol.NumColors, sol.Delta)
	}
	return b.finish(), nil
}

// solveSlice produces the coloring + frequency assignment for one active
// gate set, through the per-slice cache when one is attached. The key is
// the canonical hash of the active interaction subgraph on this system.
func (b *builder) solveSlice(intCfg smt.Config, budget int, active []graph.Edge, activeVerts []int) (compile.SliceSolution, error) {
	key := compile.SliceKey(b.sig, b.xg.Distance, budget, activeVerts)
	return b.ctx.Slice(key, func() (compile.SliceSolution, error) {
		h := b.xg.ActiveSubgraph(active)
		coloring, deferred := graph.BoundedColoring(h, budget)
		k := coloring.NumColors()
		var freqs []float64
		delta := 0.0
		if k > 0 {
			var err error
			freqs, delta, err = b.ctx.SolveSMT(k, intCfg)
			if err != nil {
				return compile.SliceSolution{}, err
			}
		}
		// Occupancy-ordered color -> frequency map (§V-B3).
		occ := make(map[int]int)
		for _, col := range coloring {
			occ[col]++
		}
		assign := map[int]float64{}
		if k > 0 {
			assign = smt.AssignByOccupancy(occ, freqs)
		}
		return compile.SliceSolution{
			Coloring:  coloring,
			Deferred:  deferred,
			NumColors: k,
			Assign:    assign,
			Delta:     delta,
		}, nil
	})
}

func mustVertex(b *builder, e graph.Edge) int {
	v, ok := b.xg.VertexOf(e.U, e.V)
	if !ok {
		panic("schedule: gate on non-coupler " + e.String())
	}
	return v
}

// maxColorsFeasible probes the largest k for which the solver can place k
// frequencies in the band, up to cap. Solves (including the terminating
// infeasibility) are memoized through ctx.
func maxColorsFeasible(ctx *compile.Context, cfg smt.Config, cap int) int {
	best := 1
	for k := 2; k <= cap; k++ {
		if _, _, err := ctx.SolveSMT(k, cfg); err != nil {
			break
		}
		best = k
	}
	return best
}
