package topology

import (
	"strings"
	"testing"
	"testing/quick"

	"fastsc/internal/graph"
)

func TestGridCounts(t *testing.T) {
	cases := []struct {
		rows, cols, wantEdges int
	}{
		{2, 2, 4},
		{3, 3, 12},
		{4, 4, 24},
		{5, 5, 40},
		{1, 5, 4},
		{2, 3, 7},
	}
	for _, c := range cases {
		d := Grid(c.rows, c.cols)
		if d.Qubits != c.rows*c.cols {
			t.Errorf("Grid(%d,%d) qubits = %d", c.rows, c.cols, d.Qubits)
		}
		if got := d.Coupling.NumEdges(); got != c.wantEdges {
			t.Errorf("Grid(%d,%d) edges = %d, want %d", c.rows, c.cols, got, c.wantEdges)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("Grid(%d,%d) invalid: %v", c.rows, c.cols, err)
		}
	}
}

func TestGridBipartite(t *testing.T) {
	for _, n := range []int{4, 9, 16, 25} {
		d := SquareGrid(n)
		if _, ok := graph.TwoColor(d.Coupling); !ok {
			t.Errorf("grid of %d qubits should be bipartite", n)
		}
	}
}

func TestSquareGridPanicsOnNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SquareGrid(10) did not panic")
		}
	}()
	SquareGrid(10)
}

func TestGridCoordinates(t *testing.T) {
	d := Grid(3, 4)
	if c := d.Coords[0]; c != (Coord{0, 0}) {
		t.Errorf("qubit 0 at %v", c)
	}
	if c := d.Coords[7]; c != (Coord{1, 3}) {
		t.Errorf("qubit 7 at %v, want {1,3}", c)
	}
	if !d.IsGrid() {
		t.Error("Grid device should report IsGrid")
	}
}

func TestLinear(t *testing.T) {
	d := Linear(9)
	if d.Coupling.NumEdges() != 8 {
		t.Fatalf("linear-9 edges = %d", d.Coupling.NumEdges())
	}
	if !d.Coupling.Connected() {
		t.Fatal("linear chain should be connected")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRing(t *testing.T) {
	d := Ring(6)
	if d.Coupling.NumEdges() != 6 {
		t.Fatalf("ring-6 edges = %d", d.Coupling.NumEdges())
	}
	for q := 0; q < 6; q++ {
		if d.Degree(q) != 2 {
			t.Fatalf("ring vertex %d degree %d", q, d.Degree(q))
		}
	}
}

func TestExpress1D(t *testing.T) {
	// 1EX-3 on 9 qubits: path (8 edges) + express (0,3),(3,6) = 10 edges.
	d := Express1D(9, 3)
	if got := d.Coupling.NumEdges(); got != 10 {
		t.Fatalf("1EX-3(9) edges = %d, want 10", got)
	}
	if !d.Coupling.HasEdge(0, 3) || !d.Coupling.HasEdge(3, 6) {
		t.Fatal("express edges missing")
	}
	if d.Coupling.HasEdge(6, 9) {
		t.Fatal("express edge past end")
	}
}

func TestExpress1DDensityMonotone(t *testing.T) {
	// Smaller k => denser graph.
	prev := Linear(16).Coupling.NumEdges()
	for _, k := range []int{5, 4, 3, 2} {
		m := Express1D(16, k).Coupling.NumEdges()
		if m < prev {
			t.Fatalf("1EX-%d has %d edges, less than sparser predecessor %d", k, m, prev)
		}
		prev = m
	}
}

func TestExpress2D(t *testing.T) {
	// 2EX-2 on 4x4: grid 24 edges + per-row (0,2),(1,3)? No: edges every
	// k=2 starting col 0: (c=0 -> c=2), next c=2 -> c=4 (out). So 1 per row
	// (4 rows) + 1 per column (4 cols) = 24+8 = 32.
	d := Express2D(4, 4, 2)
	if got := d.Coupling.NumEdges(); got != 32 {
		t.Fatalf("2EX-2(4x4) edges = %d, want 32", got)
	}
	if !d.Coupling.HasEdge(0, 2) {
		t.Fatal("row express edge missing")
	}
	if !d.Coupling.HasEdge(0, 8) {
		t.Fatal("column express edge missing")
	}
	if d.IsGrid() {
		t.Error("express cube should not report IsGrid")
	}
}

func TestExpressDenserThanGrid(t *testing.T) {
	grid := Grid(4, 4).Coupling.NumEdges()
	for _, k := range []int{5, 4, 3, 2} {
		if k < 4 { // k=5,4 add nothing on a 4-wide grid
			if m := Express2D(4, 4, k).Coupling.NumEdges(); m <= grid {
				t.Errorf("2EX-%d not denser than grid: %d <= %d", k, m, grid)
			}
		}
	}
}

func TestFromEdges(t *testing.T) {
	d := FromEdges("custom", 4, []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(2, 3)})
	if d.Qubits != 4 || d.Coupling.NumEdges() != 2 {
		t.Fatalf("FromEdges built %d qubits %d edges", d.Qubits, d.Coupling.NumEdges())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeIndexDense(t *testing.T) {
	d := Grid(3, 3)
	idx := d.EdgeIndex()
	if len(idx) != d.Coupling.NumEdges() {
		t.Fatalf("EdgeIndex size %d, want %d", len(idx), d.Coupling.NumEdges())
	}
	seen := make(map[int]bool)
	for _, i := range idx {
		if seen[i] {
			t.Fatal("duplicate edge index")
		}
		seen[i] = true
		if i < 0 || i >= len(idx) {
			t.Fatalf("edge index %d out of range", i)
		}
	}
}

// Property: every grid is connected and bipartite; every express cube is
// connected and at least as dense as its base graph.
func TestTopologyPropertyRandomSizes(t *testing.T) {
	prop := func(rRaw, cRaw, kRaw uint8) bool {
		rows := int(rRaw%5) + 1
		cols := int(cRaw%5) + 1
		k := int(kRaw%4) + 2
		g := Grid(rows, cols)
		if !g.Coupling.Connected() {
			return false
		}
		if _, ok := graph.TwoColor(g.Coupling); !ok {
			return false
		}
		ex := Express2D(rows, cols, k)
		return ex.Coupling.NumEdges() >= g.Coupling.NumEdges() && ex.Coupling.Connected()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFromSpec(t *testing.T) {
	cases := []struct {
		spec  string
		n     int
		edges int
		err   string
	}{
		{"grid", 9, 12, ""},
		{"grid", 5, 0, "perfect-square"},
		{"linear", 5, 4, ""},
		{"ring", 5, 5, ""},
		{"1ex-2", 8, 0, ""},
		{"1ex-1", 8, 0, "express interval"},
		{"1ex-x", 8, 0, "express interval"},
		{"2ex-3", 9, 0, ""},
		{"2ex-3", 8, 0, "perfect-square"},
		{"moebius", 8, 0, "unknown spec"},
		{"grid", 0, 0, "invalid qubit count"},
	}
	for _, tc := range cases {
		dev, err := FromSpec(tc.spec, tc.n)
		if tc.err != "" {
			if err == nil || !strings.Contains(err.Error(), tc.err) {
				t.Errorf("FromSpec(%q, %d) error = %v, want mention of %q", tc.spec, tc.n, err, tc.err)
			}
			continue
		}
		if err != nil {
			t.Errorf("FromSpec(%q, %d): %v", tc.spec, tc.n, err)
			continue
		}
		if dev.Qubits != tc.n {
			t.Errorf("FromSpec(%q, %d): %d qubits", tc.spec, tc.n, dev.Qubits)
		}
		if err := dev.Validate(); err != nil {
			t.Errorf("FromSpec(%q, %d): %v", tc.spec, tc.n, err)
		}
		if tc.edges > 0 && dev.Coupling.NumEdges() != tc.edges {
			t.Errorf("FromSpec(%q, %d): %d edges, want %d", tc.spec, tc.n, dev.Coupling.NumEdges(), tc.edges)
		}
	}
}

func TestSpecNamesMatchFromSpec(t *testing.T) {
	// Every concrete (non-parameterized) spec name must round-trip.
	for _, name := range SpecNames() {
		if strings.Contains(name, "K") {
			continue
		}
		if _, err := FromSpec(name, 4); err != nil {
			t.Errorf("FromSpec(%q, 4): %v", name, err)
		}
	}
}
