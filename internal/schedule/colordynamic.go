package schedule

import (
	"sort"

	"fastsc/internal/circuit"
	"fastsc/internal/compile"
	"fastsc/internal/graph"
	"fastsc/internal/phys"
	"fastsc/internal/smt"
)

// ColorDynamic is the paper's frequency-aware compiler (Algorithm 1):
// program-specific frequency assignment per time step via circuit slicing,
// noise-aware queueing (line 10–16), active-subgraph coloring (line 17–19),
// and SMT frequency optimization (line 20–22).
type ColorDynamic struct{}

// Name implements Compiler.
func (ColorDynamic) Name() string { return "ColorDynamic" }

// Compile implements Compiler.
func (ColorDynamic) Compile(ctx *compile.Context, c *circuit.Circuit, sys *phys.System, opts Options) (*Schedule, error) {
	return compileColorDynamic(ctx, "ColorDynamic", false, c, sys, opts)
}

// GmonDynamic is the §VIII extension: ColorDynamic's program-specific
// frequency tuning applied on tunable-coupler (gmon) hardware. Couplers are
// switched off outside the active set as in Baseline G, but simultaneous
// gates are additionally spread in frequency by the dynamic coloring, so
// residual coupler leakage (Fig 12) meets detuned rather than resonant
// neighbors. It is not part of the paper's Table I evaluation; see the
// ext-gmon experiment.
type GmonDynamic struct{}

// Name implements Compiler.
func (GmonDynamic) Name() string { return "ColorDynamic-G" }

// Compile implements Compiler.
func (GmonDynamic) Compile(ctx *compile.Context, c *circuit.Circuit, sys *phys.System, opts Options) (*Schedule, error) {
	return compileColorDynamic(ctx, "ColorDynamic-G", true, c, sys, opts)
}

//fastsc:hotpath the Algorithm 1 slice loop: per-slice state lives in the pooled sliceScratch and the shared Analysis; only what a Slice retains may be freshly allocated
func compileColorDynamic(ctx *compile.Context, name string, gmon bool, c *circuit.Circuit, sys *phys.System, opts Options) (*Schedule, error) {
	b, err := newBuilder(ctx, name, c, sys, opts)
	if err != nil {
		return nil, err
	}
	b.sched.Gmon = gmon
	opts = b.opts
	intCfg := b.part.InteractionConfig(sys.MeanAnharmonicity())
	// The interaction band fits only so many colors; combined with the
	// user's tunability budget (default 2, the Fig 11 sweet spot; -1 for
	// unlimited) this caps each slice's coloring.
	budget := maxColorsFeasible(ctx, intCfg, 16)
	if opts.MaxColors > 0 && opts.MaxColors < budget {
		budget = opts.MaxColors
	}

	scr := b.scr
	f := b.front
	for !f.Done() {
		ready := f.Ready()
		sortByCriticality(ready, b.crit)

		// Queueing scheduler: admit gates most-critical first, postponing
		// two-qubit gates whose crosstalk neighborhoods are already
		// crowded (noise_conflict, §V-B6).
		for _, idx := range ready {
			g := b.circ.Gates[idx]
			vert := int32(-1)
			if g.Kind.IsTwoQubit() {
				e := graph.NewEdge(g.Qubits[0], g.Qubits[1])
				if b.xg.ConflictDegree(g.Qubits[0], g.Qubits[1], scr.active) >= opts.ConflictLimit {
					continue // postpone to a later slice
				}
				v := mustVertex(b, e)
				scr.active = append(scr.active, e)
				scr.activeVerts = append(scr.activeVerts, v)
				vert = int32(v)
			}
			scr.selected = append(scr.selected, int32(idx))
			scr.selVerts = append(scr.selVerts, vert)
		}

		// Color the active subgraph of the crosstalk graph within the
		// color budget and solve its frequencies; gates whose vertices
		// cannot be colored are postponed (spectral -> temporal separation
		// trade). The whole slice solution is a pure function of the
		// active subgraph, so it is memoized across slices and jobs.
		sol, err := b.solveSlice(intCfg, budget)
		if err != nil {
			b.abort()
			return nil, err
		}

		var events []GateEvent
		for i, sidx := range scr.selected {
			idx := int(sidx)
			g := b.circ.Gates[idx]
			if v := scr.selVerts[i]; v >= 0 {
				if deferredContains(sol.Deferred, int(v)) {
					continue // postponed by the color budget
				}
				col := int(sol.Coloring[v])
				freq := sol.Assign[col]
				b.setFreq(g.Qubits[0], freq)
				b.setFreq(g.Qubits[1], freq)
				events = append(events, GateEvent{
					Gate: g, Duration: b.gateDuration(g, freq), Freq: freq, Color: col,
				})
			} else {
				events = append(events, GateEvent{
					Gate: g, Duration: b.gateDuration(g, 0), Freq: b.park[g.Qubits[0]], Color: -1,
				})
			}
			f.Issue(idx)
		}
		b.emitSlice(events, sol.NumColors, sol.Delta)
	}
	return b.finish(), nil
}

// deferredContains reports whether v is in the sorted deferred list.
func deferredContains(deferred []int, v int) bool {
	i := sort.SearchInts(deferred, v)
	return i < len(deferred) && deferred[i] == v
}

// solveSlice produces the coloring + frequency assignment for the active
// gate set staged in the builder's scratch, through the per-slice cache
// when one is attached. The key is the exact sorted active vertex set of
// the interaction subgraph on this system.
func (b *builder) solveSlice(intCfg smt.Config, budget int) (compile.SliceSolution, error) {
	scr := b.scr
	scr.keyVerts = append(scr.keyVerts[:0], scr.activeVerts...)
	sort.Ints(scr.keyVerts)
	key := compile.SliceKey(b.sig, b.xg.Distance, budget, scr.keyVerts)
	return b.ctx.Slice(key, func() (compile.SliceSolution, error) {
		h := b.xg.ActiveSubgraph(scr.active)
		coloring, deferred := graph.BoundedColoring(h, budget)
		k := coloring.NumColors()
		var freqs []float64
		delta := 0.0
		if k > 0 {
			var err error
			freqs, delta, err = b.ctx.SolveSMT(k, intCfg)
			if err != nil {
				return compile.SliceSolution{}, err
			}
		}
		// Occupancy-ordered color -> frequency map (§V-B3).
		var assign []float64
		if k > 0 {
			assign = smt.AssignByOccupancy(coloring.ColorCounts(), freqs)
		}
		return compile.SliceSolution{
			Coloring:  coloring,
			Deferred:  deferred,
			NumColors: k,
			Assign:    assign,
			Delta:     delta,
		}, nil
	})
}

func mustVertex(b *builder, e graph.Edge) int {
	v, ok := b.xg.VertexOf(e.U, e.V)
	if !ok {
		panic("schedule: gate on non-coupler " + e.String())
	}
	return v
}

// maxColorsFeasible probes the largest k for which the solver can place k
// frequencies in the band, up to cap. Solves (including the terminating
// infeasibility) are memoized through ctx.
func maxColorsFeasible(ctx *compile.Context, cfg smt.Config, cap int) int {
	best := 1
	for k := 2; k <= cap; k++ {
		if _, _, err := ctx.SolveSMT(k, cfg); err != nil {
			break
		}
		best = k
	}
	return best
}
