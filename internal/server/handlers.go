package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"fastsc/internal/compile"
)

// routes mounts the API surface documented in docs/api.md.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/compile", s.handleCompileStream)
	s.mux.HandleFunc("POST /v1/batches", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/batches/{id}", s.handlePoll)
	s.mux.HandleFunc("GET /v1/meta", s.handleMeta)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
}

// withBatchDeadline derives the batch's compile context from parent: when
// the request carries deadline_ms, the context expires at that absolute
// time with compile.ErrDeadline as its cause, so every job skipped after
// expiry reports a typed deadline error end to end.
func withBatchDeadline(parent context.Context, pb *parsedBatch) (context.Context, context.CancelFunc) {
	if pb.deadlineAt.IsZero() {
		return context.WithCancel(parent)
	}
	return context.WithDeadlineCause(parent, pb.deadlineAt, compile.ErrDeadline)
}

// decodeRequest reads and validates a CompileRequest body.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*parsedBatch, *apiError) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req CompileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, &apiError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return nil, badRequest("invalid JSON: %v", err)
	}
	return s.parseRequest(&req)
}

// handleCompileStream serves POST /v1/compile: parse, admit, then stream
// one NDJSON ResultLine per job in completion order followed by the
// DoneLine. The HTTP status is committed before the first result, so
// per-job failures arrive as "error" lines, not as an HTTP error.
func (s *Server) handleCompileStream(w http.ResponseWriter, r *http.Request) {
	s.mStreams.Add(1)
	pb, aerr := s.decodeRequest(w, r)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	tkt, release, aerr := s.admit(pb)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	defer release()
	ctx, cancel := withBatchDeadline(r.Context(), pb)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(line any) error {
		if err := enc.Encode(line); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	s.runBatch(ctx, pb, "", tkt, emit, nil)
}

// handleSubmit serves POST /v1/batches: parse, admit, then run the batch
// in the background and acknowledge with 202 and a poll URL. Accepted
// batches always run to completion (they are not tied to the submitting
// connection), including across a drain.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.mSubmits.Add(1)
	pb, aerr := s.decodeRequest(w, r)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	tkt, release, aerr := s.admit(pb)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	rec := s.store.add(len(pb.jobs), pb.prio)
	go func() {
		defer release()
		// Accepted batches are not tied to the submitting connection, so
		// the compile context descends from Background, carrying only the
		// request's own deadline.
		ctx, cancel := withBatchDeadline(context.Background(), pb)
		defer cancel()
		done, status := s.runBatch(ctx, pb, rec.id, tkt, rec.appendLine, rec.setRunning)
		rec.finish(done, status)
	}()
	w.Header().Set("Location", "/v1/batches/"+rec.id)
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		Batch:  rec.id,
		Status: "queued",
		Jobs:   len(pb.jobs),
		URL:    "/v1/batches/" + rec.id,
	})
}

// handlePoll serves GET /v1/batches/{id}.
func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	s.mPolls.Add(1)
	rec := s.store.get(r.PathValue("id"))
	if rec == nil {
		writeError(w, &apiError{status: http.StatusNotFound,
			msg: fmt.Sprintf("unknown batch %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, rec.snapshot())
}

// handleMeta serves GET /v1/meta.
func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, meta())
}

// handleHealth serves GET /healthz: pure liveness. It answers 200 "ok"
// whenever the process can serve HTTP at all — including while draining
// or restoring a snapshot — so supervisors do not kill an instance that
// is merely busy. Traffic routing reads /readyz instead.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReady serves GET /readyz: readiness. 503 "draining" once Drain has
// been called (load balancers rotate the terminating instance out while
// its in-flight batches finish) and 503 "restoring" while the background
// snapshot restore is still warming the cache; 200 "ready" otherwise.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.Draining():
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
	case s.Restoring():
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "restoring\n")
	default:
		io.WriteString(w, "ready\n")
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, aerr *apiError) {
	if aerr.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(aerr.retryAfter))
	}
	writeJSON(w, aerr.status, ErrorResponse{Error: aerr.msg})
}
