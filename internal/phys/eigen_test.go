package phys

import (
	"math"
	"testing"
	"testing/quick"

	"math/rand"
)

func TestJacobiEigenDiagonal(t *testing.T) {
	a := [][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}}
	vals, vecs := jacobiEigen(a)
	seen := map[int]bool{}
	for _, want := range []float64{1, 2, 3} {
		found := false
		for i, v := range vals {
			if !seen[i] && math.Abs(v-want) < 1e-12 {
				seen[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("eigenvalue %v missing from %v", want, vals)
		}
	}
	// Eigenvectors of a diagonal matrix are unit vectors.
	for i := range vecs {
		norm := 0.0
		for j := range vecs {
			norm += vecs[j][i] * vecs[j][i]
		}
		if math.Abs(norm-1) > 1e-12 {
			t.Fatalf("eigenvector %d not normalized: %v", i, norm)
		}
	}
}

func TestJacobiEigenKnown2x2(t *testing.T) {
	// [[0, g], [g, d]] has eigenvalues (d ± √(d²+4g²))/2.
	g, d := 0.03, 0.25
	vals, _ := jacobiEigen([][]float64{{0, g}, {g, d}})
	want1 := (d - math.Sqrt(d*d+4*g*g)) / 2
	want2 := (d + math.Sqrt(d*d+4*g*g)) / 2
	lo, hi := math.Min(vals[0], vals[1]), math.Max(vals[0], vals[1])
	if math.Abs(lo-want1) > 1e-12 || math.Abs(hi-want2) > 1e-12 {
		t.Fatalf("eigenvalues %v, want %v and %v", vals, want1, want2)
	}
}

// Property: reconstruction A = V·diag(λ)·Vᵀ holds for random symmetric
// matrices, and V is orthogonal.
func TestJacobiEigenPropertyReconstruction(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		rng := rand.New(rand.NewSource(seed))
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a[i][j], a[j][i] = v, v
			}
		}
		vals, vecs := jacobiEigen(a)
		// Reconstruct.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				acc := 0.0
				for k := 0; k < n; k++ {
					acc += vecs[i][k] * vals[k] * vecs[j][k]
				}
				if math.Abs(acc-a[i][j]) > 1e-8 {
					return false
				}
			}
		}
		// Orthogonality.
		for c1 := 0; c1 < n; c1++ {
			for c2 := c1; c2 < n; c2++ {
				dot := 0.0
				for r := 0; r < n; r++ {
					dot += vecs[r][c1] * vecs[r][c2]
				}
				want := 0.0
				if c1 == c2 {
					want = 1
				}
				if math.Abs(dot-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
