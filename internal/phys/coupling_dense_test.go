package phys

import (
	"math/rand"
	"testing"

	"fastsc/internal/graph"
	"fastsc/internal/topology"
)

// Property tests pinning the dense per-coupler Coupling slice (indexed by
// Device.Coupling.EdgeID) to the semantics of the old map[graph.Edge]
// representation on randomized devices: G0 agrees with an independently
// built edge->value map on every coupled pair, G0ByID agrees with it
// through the Edges() ordering, and uncoupled pairs panic.

// randomDevice builds a connected random device over n qubits: a spanning
// path plus random extra edges.
func randomDevice(rng *rand.Rand, n int) *topology.Device {
	var edges []graph.Edge
	for q := 0; q+1 < n; q++ {
		edges = append(edges, graph.NewEdge(q, q+1))
	}
	extra := rng.Intn(2 * n)
	for i := 0; i < extra; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			edges = append(edges, graph.NewEdge(a, b))
		}
	}
	return topology.FromEdges("random", n, edges)
}

func TestDenseCouplingMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(14)
		dev := randomDevice(rng, n)
		p := DefaultParams()
		sys := NewSystem(dev, p, rng.Int63())

		// Perturb the couplings (as a calibration would) so the test does
		// not trivially pass on the uniform default, mirroring the write
		// into a reference map keyed the old way.
		ref := make(map[graph.Edge]float64)
		for id, e := range dev.Edges() {
			g := p.G0 * (0.5 + rng.Float64())
			sys.Coupling[id] = g
			ref[e] = g
		}

		if len(sys.Coupling) != dev.Coupling.NumEdges() {
			t.Fatalf("dense coupling has %d entries, device has %d couplers",
				len(sys.Coupling), dev.Coupling.NumEdges())
		}
		// G0ByID must follow the Edges() ordering exactly.
		for id, e := range dev.Edges() {
			if got := sys.G0ByID(int32(id)); got != ref[e] {
				t.Fatalf("G0ByID(%d) = %v, reference map has %v for %v", id, got, ref[e], e)
			}
		}
		// G0 must agree with the map on every pair, in both argument
		// orders, and panic exactly when the map has no entry.
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				want, coupled := ref[graph.NewEdge(a, b)]
				if coupled {
					if got := sys.G0(a, b); got != want {
						t.Fatalf("G0(%d,%d) = %v, reference map has %v", a, b, got, want)
					}
				} else {
					mustPanicG0(t, sys, a, b)
				}
			}
		}
	}
}

func mustPanicG0(t *testing.T, sys *System, a, b int) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("G0(%d,%d) on uncoupled pair did not panic", a, b)
		}
	}()
	sys.G0(a, b)
}
