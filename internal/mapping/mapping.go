// Package mapping is the layout/routing subsystem: it places logical
// circuits onto physical devices (pluggable Placement strategies) and routes
// two-qubit gates through SWAP insertion (pluggable Router implementations).
// Qubit mapping is not the paper's contribution (it cites [34], [39]), but
// every benchmark needs it: QAOA's random MAX-CUT edges and BV's star-shaped
// CNOTs rarely land on couplers — and crosstalk-aware related work (CAMEL,
// Murali et al.) shows the mapping choice shifts which crosstalk pairs the
// scheduler must later serialize, so the stage is configurable end to end.
//
// # Routers
//
// A Router turns a logical circuit plus an initial Mapping into a Result: a
// physical circuit in which every two-qubit gate acts on a coupler, the
// final mapping, and per-gate provenance (Inserted). Two implementations
// ship:
//
//   - GreedyRouter — the classic greedy shortest-path SWAP inserter used by
//     baseline compilers: each uncoupled gate walks its operands together
//     along a shortest coupling path. It is the default and is pinned
//     gate-for-gate to the historical mapping.Route output: paths are the
//     lexicographically smallest shortest paths (exactly what BFS with
//     ascending neighbor exploration produced), resolved against the
//     device's cached graph.DistanceMatrix instead of a per-gate BFS
//     allocation.
//   - LookaheadRouter — a SABRE-style swap search: when the dependency
//     frontier is blocked, candidate SWAPs adjacent to the blocked gates
//     are scored by the summed post-swap distance of the frontier plus a
//     geometrically decaying term over an extended window of upcoming
//     two-qubit gates (window size and decay configurable). It typically
//     inserts substantially fewer SWAPs than the greedy router on
//     irregular interaction graphs (QAOA), at slightly higher routing
//     cost.
//
// # Placements
//
// Placement strategies compute the initial logical→physical embedding:
// identity (logical i on physical i), snake (boustrophedon order, the
// natural chain embedding), and degree (greedy degree-matching: logical
// qubits ranked by their circuit.Analysis interaction counts are seated on
// physical qubits ranked by coupling degree).
//
// # Determinism and sharing
//
// Every router and placement is deterministic: identical inputs produce
// identical Results gate for gate (candidate enumerations iterate sorted
// structures, ties break toward smaller ids). A Result is immutable after
// its router returns — the compile cache's route region shares one Result
// across every strategy of a batch job, so callers must never modify the
// routed circuit, the mappings, or the Inserted slice. On the no-SWAP fast
// path Final aliases the initial mapping rather than cloning it.
package mapping

import (
	"fmt"
	"sort"

	"fastsc/internal/circuit"
	"fastsc/internal/topology"
)

// Mapping is a bijection between logical and physical qubits.
type Mapping struct {
	LogToPhys []int
	PhysToLog []int
}

// Identity returns the identity mapping over n logical qubits on a device
// with at least n physical qubits.
func Identity(nLogical, nPhysical int) *Mapping {
	if nLogical > nPhysical {
		panic(fmt.Sprintf("mapping: %d logical qubits exceed %d physical", nLogical, nPhysical))
	}
	m := &Mapping{
		LogToPhys: make([]int, nLogical),
		PhysToLog: make([]int, nPhysical),
	}
	for p := range m.PhysToLog {
		m.PhysToLog[p] = -1
	}
	for l := 0; l < nLogical; l++ {
		m.LogToPhys[l] = l
		m.PhysToLog[l] = l
	}
	return m
}

// FromOrder places logical qubit i on physical qubit order[i].
func FromOrder(nLogical int, order []int, nPhysical int) *Mapping {
	if nLogical > len(order) {
		panic(fmt.Sprintf("mapping: order has %d entries for %d logical qubits", len(order), nLogical))
	}
	m := &Mapping{
		LogToPhys: make([]int, nLogical),
		PhysToLog: make([]int, nPhysical),
	}
	for p := range m.PhysToLog {
		m.PhysToLog[p] = -1
	}
	for l := 0; l < nLogical; l++ {
		p := order[l]
		if p < 0 || p >= nPhysical {
			panic(fmt.Sprintf("mapping: physical qubit %d out of range", p))
		}
		if m.PhysToLog[p] != -1 {
			panic(fmt.Sprintf("mapping: physical qubit %d assigned twice", p))
		}
		m.LogToPhys[l] = p
		m.PhysToLog[p] = l
	}
	return m
}

// Clone deep-copies the mapping.
func (m *Mapping) Clone() *Mapping {
	c := &Mapping{
		LogToPhys: make([]int, len(m.LogToPhys)),
		PhysToLog: make([]int, len(m.PhysToLog)),
	}
	copy(c.LogToPhys, m.LogToPhys)
	copy(c.PhysToLog, m.PhysToLog)
	return c
}

// SwapPhys updates the mapping after a routing SWAP between physical qubits
// a and b (either may currently be unoccupied).
func (m *Mapping) SwapPhys(a, b int) {
	la, lb := m.PhysToLog[a], m.PhysToLog[b]
	m.PhysToLog[a], m.PhysToLog[b] = lb, la
	if la != -1 {
		m.LogToPhys[la] = b
	}
	if lb != -1 {
		m.LogToPhys[lb] = a
	}
}

// SnakeOrder returns the device qubits in boustrophedon (snake) order by
// coordinates: row 0 left-to-right, row 1 right-to-left, and so on. Placing
// a chain along this order makes every consecutive logical pair physically
// coupled on a grid — the natural embedding for ISING and QGAN chains.
func SnakeOrder(dev *topology.Device) []int {
	qs := dev.QubitsSorted()
	sort.SliceStable(qs, func(i, j int) bool {
		ci, cj := dev.Coords[qs[i]], dev.Coords[qs[j]]
		if ci.Row != cj.Row {
			return ci.Row < cj.Row
		}
		if ci.Row%2 == 0 {
			return ci.Col < cj.Col
		}
		return ci.Col > cj.Col
	})
	return qs
}

// Result is a routed circuit over physical qubits. A Result is immutable
// once returned: the compile cache shares it read-only across jobs.
type Result struct {
	// Routed acts on the device's physical qubits; every two-qubit gate
	// touches a coupler.
	Routed *circuit.Circuit
	// Final is the logical-to-physical mapping after execution. When no
	// SWAPs were inserted it may alias the initial mapping the router was
	// given (the no-SWAP fast path skips the defensive clone).
	Final *Mapping
	// Inserted flags, per gate of Routed, whether the gate is a routing
	// SWAP added by the router (true) or a translated program gate.
	Inserted []bool
	// SwapCount is the number of routing SWAPs inserted.
	SwapCount int
}

// ApproxSize reports the Result's approximate in-memory footprint in bytes;
// the compile cache's size-aware eviction weighs route entries by it.
func (r *Result) ApproxSize() int {
	size := 128 + len(r.Inserted)
	if r.Routed != nil {
		// One Gate struct (~48 B) plus its operand slice (~16-32 B) per gate.
		size += 72 * len(r.Routed.Gates)
	}
	if r.Final != nil {
		size += 8 * (len(r.Final.LogToPhys) + len(r.Final.PhysToLog))
	}
	return size
}

// Validate checks the structural invariants a well-formed Result upholds:
// a routed circuit and final mapping present, per-gate provenance matching
// the gate count, a SWAP count consistent with the provenance flags, and a
// final mapping that is a genuine partial bijection into the physical
// qubit range. Routers establish these by construction; the compile
// cache's snapshot loader re-validates restored results with it so a
// corrupt or hand-edited snapshot entry is dropped instead of served.
func (r *Result) Validate() error {
	if r == nil || r.Routed == nil || r.Final == nil {
		return fmt.Errorf("mapping: incomplete result")
	}
	if len(r.Inserted) != len(r.Routed.Gates) {
		return fmt.Errorf("mapping: %d provenance flags for %d gates", len(r.Inserted), len(r.Routed.Gates))
	}
	swaps := 0
	for _, ins := range r.Inserted {
		if ins {
			swaps++
		}
	}
	if swaps != r.SwapCount {
		return fmt.Errorf("mapping: SwapCount %d, but %d gates flagged inserted", r.SwapCount, swaps)
	}
	nPhys := len(r.Final.PhysToLog)
	if len(r.Final.LogToPhys) > nPhys || nPhys < r.Routed.NumQubits {
		return fmt.Errorf("mapping: final mapping covers %d logical on %d physical qubits (routed circuit has %d)",
			len(r.Final.LogToPhys), nPhys, r.Routed.NumQubits)
	}
	seen := make([]bool, nPhys)
	for l, p := range r.Final.LogToPhys {
		if p < 0 || p >= nPhys || seen[p] {
			return fmt.Errorf("mapping: logical %d mapped to invalid or duplicate physical %d", l, p)
		}
		seen[p] = true
		if r.Final.PhysToLog[p] != l {
			return fmt.Errorf("mapping: PhysToLog[%d] = %d, want %d", p, r.Final.PhysToLog[p], l)
		}
	}
	return nil
}

// Route translates c onto dev starting from the given initial mapping
// (Identity when nil), inserting SWAPs along greedy shortest coupling
// paths. It is the historical entry point, equivalent to
// (&GreedyRouter{}).Route(c, nil, dev, initial); configurable callers
// should go through Plan.
func Route(c *circuit.Circuit, dev *topology.Device, initial *Mapping) (*Result, error) {
	return (&GreedyRouter{}).Route(c, nil, dev, initial)
}

// Plan is the full layout/routing pipeline: it computes the initial
// placement named by opts, then routes c with the configured router. ana
// may be nil; strategies that need the dependency analysis (the lookahead
// router, the degree placement) analyze c themselves when it is missing.
// Batch callers should pass the memoized analysis (compile.Context.Route
// does) so every strategy shares one.
func Plan(c *circuit.Circuit, ana *circuit.Analysis, dev *topology.Device, opts Options) (*Result, error) {
	opts = opts.WithDefaults()
	router, err := NewRouter(opts.Router)
	if err != nil {
		return nil, err
	}
	initial, err := InitialMapping(opts.Placement, c, ana, dev)
	if err != nil {
		return nil, err
	}
	return router.Route(c, ana, dev, initial)
}
