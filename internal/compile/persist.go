package compile

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"fastsc/internal/faultpoint"
	"fastsc/internal/smt"
)

// SnapshotVersion is the on-disk snapshot format version. A snapshot
// written with any other version (or any other KeyVersion) is rejected
// wholesale on load and the cache starts cold — stale keys are never read
// back.
//
// History: v3 switched the cached value shapes to the flat-core
// representation (parking assignments and color→frequency maps became
// dense slices, colorings became []int32), so v2 snapshots no longer
// decode. v4 accompanies the dense phys.System / analyzed-circuit IR
// rewrite (KeyVersion 3): slice keys carry the new key version, so v3
// snapshots would never hit anyway and are rejected wholesale. v5
// accompanies component-decomposed slice solving (KeyVersion 5): the
// slice region now holds two value shapes — whole-slice SliceSolution
// and per-component ComponentSolution — persisted in separate snapshot
// sections so each decodes with its concrete type.
const SnapshotVersion = 5

// snapshotMagic guards against feeding an arbitrary gob stream (or a
// truncated file) to Load.
const snapshotMagic = "fastsc-cache-snapshot"

// PersistRegions are the cache regions included in snapshots: everything
// process-independent. SMT solves, static palettes, parking assignments
// and slice solutions are pure functions of content-hashed inputs (system
// signatures, exact vertex sets), so an entry written by one process is
// valid in every other. RegionXtalk, RegionCircuit and RegionRoute are
// excluded: crosstalk graphs, circuit analyses and routed circuits hold
// pointer-heavy structures that rebuild in milliseconds (or microseconds)
// and would dominate the snapshot size.
var PersistRegions = []string{RegionSMT, RegionStatic, RegionParking, RegionSlice}

// gzipSuffix marks snapshot paths Save writes gzip-compressed. Load does
// not consult the name: it sniffs the gzip magic bytes, so compressed and
// plain snapshots are interchangeable on the read side.
const gzipSuffix = ".gz"

// RegisterSnapshotType registers a concrete type stored in the
// opaque-valued static region with the snapshot codec, so Save can encode
// it and Load can decode it. Packages that put their own types into the
// cache call this from an init function (schedule does for its static
// palette). It is a thin wrapper over gob.Register.
func RegisterSnapshotType(v any) { gob.Register(v) }

// diskSnapshot is the gob payload of a cache snapshot. The typed regions
// decode in one pass; Static carries individually encoded blobs because
// its values are opaque to this package and one unregistered type must
// cost one entry, not the snapshot.
type diskSnapshot struct {
	Magic      string
	Version    int
	KeyVersion int
	SMT        map[string]persistedSMT
	Park       map[string][]float64
	Slice      map[string]SliceSolution
	// SliceComp carries the slice region's per-component entries
	// (ComponentSolution values under SliceComponentKey keys); the region
	// holds two value shapes, and gob needs each in a concretely typed
	// section.
	SliceComp map[string]ComponentSolution
	Static    []diskEntry
}

// diskEntry is one opaque static-region entry; Blob is the value
// gob-encoded on its own.
type diskEntry struct {
	Key  string
	Blob []byte
}

// persistedSMT is the gob form of an smtResult: the error is flattened to
// its message plus an infeasibility flag so errors.Is(err,
// smt.ErrInfeasible) still holds after a round trip.
type persistedSMT struct {
	Xs         []float64
	Delta      float64
	ErrMsg     string
	Infeasible bool
}

// persistedErr restores a flattened error with its ErrInfeasible identity.
type persistedErr struct {
	msg  string
	base error
}

func (e *persistedErr) Error() string { return e.msg }
func (e *persistedErr) Unwrap() error { return e.base }

func toPersistedSMT(r smtResult) persistedSMT {
	p := persistedSMT{Xs: r.xs, Delta: r.delta}
	if r.err != nil {
		p.ErrMsg = r.err.Error()
		p.Infeasible = errors.Is(r.err, smt.ErrInfeasible)
	}
	return p
}

func fromPersistedSMT(p persistedSMT) smtResult {
	r := smtResult{xs: p.Xs, delta: p.Delta}
	if p.ErrMsg != "" {
		if p.Infeasible {
			r.err = &persistedErr{msg: p.ErrMsg, base: smt.ErrInfeasible}
		} else {
			r.err = errors.New(p.ErrMsg)
		}
	}
	return r
}

// Save writes a versioned snapshot of the process-independent cache
// regions (PersistRegions) to path, atomically (temp file + rename). A
// path ending in ".gz" is written gzip-compressed (gob streams of
// repetitive float tables compress several-fold); Load auto-detects the
// compression regardless of name. Static-region entries whose values
// cannot be gob-encoded — an unregistered provider type — are skipped
// silently: a snapshot is a best-effort warm start, never a source of
// truth. Save on a nil cache is a no-op.
func (c *Cache) Save(path string) error {
	if c == nil {
		return nil
	}
	snap := diskSnapshot{
		Magic:      snapshotMagic,
		Version:    SnapshotVersion,
		KeyVersion: KeyVersion,
		SMT:        make(map[string]persistedSMT),
		Park:       make(map[string][]float64),
		Slice:      make(map[string]SliceSolution),
		SliceComp:  make(map[string]ComponentSolution),
	}
	for k, v := range c.regionEntries(RegionSMT) {
		snap.SMT[k] = toPersistedSMT(v.(smtResult))
	}
	for k, v := range c.regionEntries(RegionParking) {
		snap.Park[k] = v.([]float64)
	}
	for k, v := range c.regionEntries(RegionSlice) {
		switch sol := v.(type) {
		case SliceSolution:
			snap.Slice[k] = sol
		case ComponentSolution:
			snap.SliceComp[k] = sol
		}
	}
	// Emit static entries in sorted key order: the other regions are gob
	// maps, but this one is a slice, and appending it in map-range order
	// would make the snapshot bytes differ from run to run for identical
	// cache contents (the fig13 nondeterminism class, caught by the
	// maporder analyzer).
	static := c.regionEntries(RegionStatic)
	staticKeys := make([]string, 0, len(static))
	for k := range static {
		staticKeys = append(staticKeys, k)
	}
	sort.Strings(staticKeys)
	for _, k := range staticKeys {
		v := static[k]
		var blob bytes.Buffer
		if err := gob.NewEncoder(&blob).Encode(&v); err != nil {
			continue
		}
		snap.Static = append(snap.Static, diskEntry{Key: k, Blob: blob.Bytes()})
	}
	var buf bytes.Buffer
	var enc *gob.Encoder
	var gz *gzip.Writer
	if strings.HasSuffix(path, gzipSuffix) {
		gz = gzip.NewWriter(&buf)
		enc = gob.NewEncoder(gz)
	} else {
		enc = gob.NewEncoder(&buf)
	}
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("compile: encode cache snapshot: %w", err)
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return fmt.Errorf("compile: encode cache snapshot: %w", err)
		}
	}
	if err := faultpoint.Err(faultpoint.SnapshotSaveErr); err != nil {
		return fmt.Errorf("compile: write cache snapshot: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, faultpoint.Corrupt(faultpoint.SnapshotSaveCorrupt, buf.Bytes()), 0o644); err != nil {
		return fmt.Errorf("compile: write cache snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("compile: write cache snapshot: %w", err)
	}
	return nil
}

// Load restores a snapshot written by Save into the cache and returns the
// number of entries restored. Compressed snapshots are detected by their
// gzip magic bytes, not their name, so a ".gz" snapshot renamed plain (or
// vice versa) still loads. Degradation is deliberate and silent: a
// missing file, a corrupt or truncated snapshot, a version or key-version
// mismatch, or an undecodable static entry all leave the cache cold (or
// partially warm) and return nil — a compilation must never fail because
// its warm start did. The returned error is non-nil only for genuine I/O
// failures on an existing file. Load on a nil cache is a no-op.
func (c *Cache) Load(path string) (int, error) {
	if c == nil {
		return 0, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("compile: read cache snapshot: %w", err)
	}
	var src io.Reader = bytes.NewReader(data)
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b { // gzip magic
		gz, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return 0, nil // corrupt: cold start
		}
		defer gz.Close()
		src = gz
	}
	var snap diskSnapshot
	if err := gob.NewDecoder(src).Decode(&snap); err != nil {
		return 0, nil // corrupt: cold start
	}
	if snap.Magic != snapshotMagic || snap.Version != SnapshotVersion || snap.KeyVersion != KeyVersion {
		return 0, nil // other format/key generation: cold start
	}
	restored := 0
	for k, p := range snap.SMT {
		c.Put(RegionSMT, k, fromPersistedSMT(p))
		restored++
	}
	for k, v := range snap.Park {
		c.Put(RegionParking, k, v)
		restored++
	}
	for k, v := range snap.Slice {
		c.Put(RegionSlice, k, v)
		restored++
	}
	for k, v := range snap.SliceComp {
		c.Put(RegionSlice, k, v)
		restored++
	}
	for _, ent := range snap.Static {
		var v any
		if err := gob.NewDecoder(bytes.NewReader(ent.Blob)).Decode(&v); err != nil {
			continue
		}
		c.Put(RegionStatic, ent.Key, v)
		restored++
	}
	return restored, nil
}
