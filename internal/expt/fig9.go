package expt

import (
	"fmt"
	"math"

	"fastsc/internal/compile"
	"fastsc/internal/core"
)

// Fig9Result carries the success-rate matrix behind Fig 9 plus the paper's
// headline aggregates.
type Fig9Result struct {
	Table *Table
	// Success[benchmark][strategy].
	Success map[string]map[string]float64
	// MeanCDOverU is the arithmetic mean of per-benchmark ColorDynamic /
	// Baseline U success ratios (the paper reports 13.3×).
	MeanCDOverU float64
	// GeoMeanCDOverU is the geometric mean of the same ratios.
	GeoMeanCDOverU float64
	// GeoMeanCDOverG compares against the tunable-coupler architecture
	// (≈1 means parity, the paper's "matching" claim).
	GeoMeanCDOverG float64
}

// Fig9SuccessRates reproduces Fig 9: worst-case program success rate for
// every benchmark under the five strategies of Table I. The full
// benchmark × strategy matrix is fanned through the batch engine under ctx
// (nil runs with default parallelism and no cache).
func Fig9SuccessRates(ctx *compile.Context) (*Fig9Result, error) {
	strategies := core.Strategies()
	suite := Suite()
	var jobs []core.BatchJob
	for _, b := range suite {
		sys := GridSystem(b.Qubits)
		circ := b.Circuit(sys.Device)
		for _, s := range strategies {
			jobs = append(jobs, core.BatchJob{
				Key:      b.Name + "/" + s,
				Circuit:  circ,
				System:   sys,
				Strategy: s,
				Config:   jobConfig(b),
			})
		}
	}
	results, err := core.BatchCollect(ctx, jobs)
	if err != nil {
		return nil, fmt.Errorf("fig9: %w", err)
	}

	res := &Fig9Result{Success: map[string]map[string]float64{}}
	t := &Table{
		ID:      "fig9",
		Title:   "Worst-case program success rate (log scale in the paper)",
		Columns: append([]string{"benchmark"}, strategies...),
	}
	var sumRatio, sumLogU, sumLogG float64
	var count int
	for _, b := range suite {
		row := []string{b.Name}
		perStrategy := map[string]float64{}
		for _, s := range strategies {
			r := results[b.Name+"/"+s]
			perStrategy[s] = r.Report.Success
			row = append(row, fmtG(r.Report.Success))
		}
		res.Success[b.Name] = perStrategy
		t.Rows = append(t.Rows, row)
		if u := perStrategy[core.BaselineU]; u > 0 {
			ratio := perStrategy[core.ColorDynamic] / u
			sumRatio += ratio
			sumLogU += math.Log(ratio)
			count++
		}
		if g := perStrategy[core.BaselineG]; g > 0 {
			sumLogG += math.Log(perStrategy[core.ColorDynamic] / g)
		}
	}
	if count > 0 {
		res.MeanCDOverU = sumRatio / float64(count)
		res.GeoMeanCDOverU = math.Exp(sumLogU / float64(count))
	}
	res.GeoMeanCDOverG = math.Exp(sumLogG / float64(len(suite)))
	res.Table = t
	t.Notes = append(t.Notes,
		fmt.Sprintf("ColorDynamic vs Baseline U: mean ratio %.1fx, geomean %.1fx (paper: 13.3x mean)",
			res.MeanCDOverU, res.GeoMeanCDOverU),
		fmt.Sprintf("ColorDynamic vs Baseline G (tunable coupler): geomean %.2fx (paper: parity)",
			res.GeoMeanCDOverG),
	)
	return res, nil
}
