package core

import (
	"testing"

	"fastsc/internal/bench"
	"fastsc/internal/circuit"
	"fastsc/internal/noise"
	"fastsc/internal/phys"
	"fastsc/internal/schedule"
	"fastsc/internal/topology"
)

func sys9() *phys.System {
	return phys.NewSystem(topology.SquareGrid(9), phys.DefaultParams(), 42)
}

func TestCompileAllStrategies(t *testing.T) {
	sys := sys9()
	c := bench.QGAN(9, 2, 1)
	results, err := CompileAll(c, sys, Config{Placement: PlaceSnake})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results, want 5", len(results))
	}
	for name, res := range results {
		if res.Report.Success <= 0 || res.Report.Success > 1 {
			t.Fatalf("%s: success %v out of range", name, res.Report.Success)
		}
		if res.Schedule.Strategy != name {
			t.Fatalf("%s: schedule labeled %s", name, res.Schedule.Strategy)
		}
		if err := res.Schedule.Verify(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.CompileTime <= 0 {
			t.Fatalf("%s: compile time not recorded", name)
		}
	}
}

func TestCompileUnknownStrategy(t *testing.T) {
	sys := sys9()
	c := circuit.New(2)
	c.H(0)
	if _, err := Compile(c, sys, "Baseline Z", Config{}); err == nil {
		t.Fatal("unknown strategy should error")
	}
}

func TestCompileRoutesAutomatically(t *testing.T) {
	sys := sys9()
	c := circuit.New(9)
	c.CNOT(0, 8) // needs routing on a 3x3 grid
	res, err := Compile(c, sys, ColorDynamic, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount == 0 {
		t.Fatal("corner-to-corner CNOT should require routing swaps")
	}
}

func TestSnakePlacementHelpsChains(t *testing.T) {
	sys := sys9()
	c := bench.Ising(9, 2)
	id, err := Compile(c, sys, ColorDynamic, Config{})
	if err != nil {
		t.Fatal(err)
	}
	snake, err := Compile(c, sys, ColorDynamic, Config{Placement: PlaceSnake})
	if err != nil {
		t.Fatal(err)
	}
	if snake.SwapCount > id.SwapCount {
		t.Fatalf("snake placement should not need more swaps: %d vs %d",
			snake.SwapCount, id.SwapCount)
	}
	if snake.SwapCount != 0 {
		t.Fatalf("chain on snake should need 0 swaps, got %d", snake.SwapCount)
	}
}

func TestXEBNeedsNoRouting(t *testing.T) {
	sys := sys9()
	c := bench.XEB(sys.Device, 4, 1)
	res, err := Compile(c, sys, BaselineU, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 0 {
		t.Fatalf("device-generated XEB should route trivially, got %d swaps", res.SwapCount)
	}
}

func TestCustomNoiseOptions(t *testing.T) {
	sys := sys9()
	c := bench.XEB(sys.Device, 3, 1)
	opt := noise.DefaultOptions()
	opt.Gate2Error = 0.2 // absurdly high intrinsic error
	res, err := Compile(c, sys, ColorDynamic, Config{Noise: &opt})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Compile(c, sys, ColorDynamic, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Success >= base.Report.Success {
		t.Fatal("higher intrinsic error should lower success")
	}
}

func TestScheduleOptionsPassThrough(t *testing.T) {
	sys := sys9()
	c := bench.XEB(sys.Device, 4, 1)
	res, err := Compile(c, sys, ColorDynamic, Config{
		Schedule: schedule.Options{MaxColors: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.MaxColorsUsed > 1 {
		t.Fatalf("MaxColors=1 not honored: used %d", res.Schedule.MaxColorsUsed)
	}
}

func TestStrategiesList(t *testing.T) {
	ss := Strategies()
	if len(ss) != 5 || ss[4] != ColorDynamic || ss[0] != BaselineN {
		t.Fatalf("strategies = %v", ss)
	}
	for _, s := range ss {
		if schedule.ByName(s) == nil {
			t.Fatalf("strategy %q not registered in schedule package", s)
		}
	}
}
