// Package core is the public entry point of the FastSC-Go library: it takes
// a logical circuit and a characterized device, routes the circuit onto the
// device topology, compiles it with one of the five frequency-tuning
// strategies of Table I, and evaluates the paper's worst-case success-rate
// heuristic (eq. 4) on the resulting schedule.
//
// Typical use:
//
//	dev := topology.Grid(4, 4)
//	sys := phys.NewSystem(dev, phys.DefaultParams(), seed)
//	res, err := core.Compile(circ, sys, core.ColorDynamic, core.Config{})
//	fmt.Println(res.Report.Success)
package core

import (
	"fmt"
	"time"

	"fastsc/internal/circuit"
	"fastsc/internal/mapping"
	"fastsc/internal/noise"
	"fastsc/internal/phys"
	"fastsc/internal/schedule"
)

// Strategy names accepted by Compile.
const (
	BaselineN    = "Baseline N"
	BaselineG    = "Baseline G"
	BaselineU    = "Baseline U"
	BaselineS    = "Baseline S"
	ColorDynamic = "ColorDynamic"
)

// Strategies lists all strategy names in Table I order.
func Strategies() []string {
	return []string{BaselineN, BaselineG, BaselineU, BaselineS, ColorDynamic}
}

// Placement selects the initial logical-to-physical embedding.
type Placement int

const (
	// PlaceIdentity maps logical qubit i to physical qubit i.
	PlaceIdentity Placement = iota
	// PlaceSnake lays logical qubits along the device's boustrophedon
	// order, the natural embedding for chain-structured circuits (ISING,
	// QGAN).
	PlaceSnake
)

// Config tunes a compilation run. The zero value uses the paper's defaults.
type Config struct {
	// Schedule holds the scheduler options (crosstalk distance, color
	// budget, decomposition strategy, gmon residual coupling).
	Schedule schedule.Options
	// Noise holds the evaluator options; the zero value means
	// noise.DefaultOptions.
	Noise *noise.Options
	// Placement selects the initial embedding (default PlaceIdentity).
	Placement Placement
}

// Result bundles everything a compilation produces.
type Result struct {
	// Schedule is the timed, frequency-annotated program.
	Schedule *schedule.Schedule
	// Report is the worst-case success estimate and its error breakdown.
	Report *noise.Report
	// SwapCount is the number of routing SWAPs inserted.
	SwapCount int
	// CompileTime is the wall-clock compilation latency (routing through
	// scheduling; evaluation excluded), the Fig 13 metric.
	CompileTime time.Duration
}

// Compile routes, schedules and evaluates circ on sys under the named
// strategy.
func Compile(circ *circuit.Circuit, sys *phys.System, strategy string, cfg Config) (*Result, error) {
	comp := schedule.ByName(strategy)
	if comp == nil {
		return nil, fmt.Errorf("core: unknown strategy %q (want one of %v)", strategy, Strategies())
	}

	start := time.Now()
	var initial *mapping.Mapping
	if cfg.Placement == PlaceSnake {
		initial = mapping.FromOrder(circ.NumQubits, mapping.SnakeOrder(sys.Device), sys.Device.Qubits)
	}
	routed, err := mapping.Route(circ, sys.Device, initial)
	if err != nil {
		return nil, err
	}
	sched, err := comp.Compile(routed.Routed, sys, cfg.Schedule)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	nopt := noise.DefaultOptions()
	if cfg.Noise != nil {
		nopt = *cfg.Noise
	}
	rep := noise.Evaluate(sched, nopt)
	return &Result{
		Schedule:    sched,
		Report:      rep,
		SwapCount:   routed.SwapCount,
		CompileTime: elapsed,
	}, nil
}

// CompileAll runs every strategy on the same circuit and system, returning
// results keyed by strategy name.
func CompileAll(circ *circuit.Circuit, sys *phys.System, cfg Config) (map[string]*Result, error) {
	out := make(map[string]*Result, 5)
	for _, s := range Strategies() {
		res, err := Compile(circ, sys, s, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: strategy %s: %w", s, err)
		}
		out[s] = res
	}
	return out, nil
}
