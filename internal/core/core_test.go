package core

import (
	"testing"

	"fastsc/internal/bench"
	"fastsc/internal/circuit"
	"fastsc/internal/compile"
	"fastsc/internal/mapping"
	"fastsc/internal/noise"
	"fastsc/internal/phys"
	"fastsc/internal/schedule"
	"fastsc/internal/topology"
)

func sys9() *phys.System {
	return phys.NewSystem(topology.SquareGrid(9), phys.DefaultParams(), 42)
}

func TestCompileAllStrategies(t *testing.T) {
	sys := sys9()
	c := bench.QGAN(9, 2, 1)
	results, err := CompileAll(c, sys, Config{Placement: PlaceSnake})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results, want 5", len(results))
	}
	for name, res := range results {
		if res.Report.Success <= 0 || res.Report.Success > 1 {
			t.Fatalf("%s: success %v out of range", name, res.Report.Success)
		}
		if res.Schedule.Strategy != name {
			t.Fatalf("%s: schedule labeled %s", name, res.Schedule.Strategy)
		}
		if err := res.Schedule.Verify(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.CompileTime <= 0 {
			t.Fatalf("%s: compile time not recorded", name)
		}
	}
}

func TestCompileUnknownStrategy(t *testing.T) {
	sys := sys9()
	c := circuit.New(2)
	c.H(0)
	if _, err := Compile(c, sys, "Baseline Z", Config{}); err == nil {
		t.Fatal("unknown strategy should error")
	}
}

func TestCompileRoutesAutomatically(t *testing.T) {
	sys := sys9()
	c := circuit.New(9)
	c.CNOT(0, 8) // needs routing on a 3x3 grid
	res, err := Compile(c, sys, ColorDynamic, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount == 0 {
		t.Fatal("corner-to-corner CNOT should require routing swaps")
	}
}

func TestSnakePlacementHelpsChains(t *testing.T) {
	sys := sys9()
	c := bench.Ising(9, 2)
	id, err := Compile(c, sys, ColorDynamic, Config{})
	if err != nil {
		t.Fatal(err)
	}
	snake, err := Compile(c, sys, ColorDynamic, Config{Placement: PlaceSnake})
	if err != nil {
		t.Fatal(err)
	}
	if snake.SwapCount > id.SwapCount {
		t.Fatalf("snake placement should not need more swaps: %d vs %d",
			snake.SwapCount, id.SwapCount)
	}
	if snake.SwapCount != 0 {
		t.Fatalf("chain on snake should need 0 swaps, got %d", snake.SwapCount)
	}
}

func TestXEBNeedsNoRouting(t *testing.T) {
	sys := sys9()
	c := bench.XEB(sys.Device, 4, 1)
	res, err := Compile(c, sys, BaselineU, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 0 {
		t.Fatalf("device-generated XEB should route trivially, got %d swaps", res.SwapCount)
	}
}

func TestCustomNoiseOptions(t *testing.T) {
	sys := sys9()
	c := bench.XEB(sys.Device, 3, 1)
	opt := noise.DefaultOptions()
	opt.Gate2Error = 0.2 // absurdly high intrinsic error
	res, err := Compile(c, sys, ColorDynamic, Config{Noise: &opt})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Compile(c, sys, ColorDynamic, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Success >= base.Report.Success {
		t.Fatal("higher intrinsic error should lower success")
	}
}

func TestScheduleOptionsPassThrough(t *testing.T) {
	sys := sys9()
	c := bench.XEB(sys.Device, 4, 1)
	res, err := Compile(c, sys, ColorDynamic, Config{
		Schedule: schedule.Options{MaxColors: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.MaxColorsUsed > 1 {
		t.Fatalf("MaxColors=1 not honored: used %d", res.Schedule.MaxColorsUsed)
	}
}

func TestStrategiesList(t *testing.T) {
	ss := Strategies()
	if len(ss) != 5 || ss[4] != ColorDynamic || ss[0] != BaselineN {
		t.Fatalf("strategies = %v", ss)
	}
	for _, s := range ss {
		if schedule.ByName(s) == nil {
			t.Fatalf("strategy %q not registered in schedule package", s)
		}
	}
}

// TestBatchRoutesOncePerCircuit is the route-region acceptance check: a
// 5-strategy batch over one circuit routes it exactly once (1 miss, 4
// hits — an 80% hit rate), and the cached route produces schedules
// identical to an uncached compile.
func TestBatchRoutesOncePerCircuit(t *testing.T) {
	sys := sys9()
	c := bench.QAOA(9, 3)
	// One worker makes the hit/miss accounting deterministic (with a
	// parallel pool the single-flight layer still computes once, but
	// concurrent callers each record a miss).
	ctx := compile.NewContext(1)
	results, err := CompileAllCtx(ctx, c, sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := ctx.Stats()[compile.RegionRoute]
	if st.Misses != 1 || st.Hits != 4 {
		t.Fatalf("route region stats %+v, want exactly 1 miss / 4 hits (80%% hit rate)", st)
	}
	if rate := st.HitRate(); rate < 0.8 {
		t.Fatalf("route hit rate %.2f, want >= 0.80", rate)
	}
	// Shared routing must not change output: compare against uncached
	// per-strategy compiles.
	for _, s := range Strategies() {
		plain, err := Compile(c, sys, s, Config{})
		if err != nil {
			t.Fatal(err)
		}
		got := results[s]
		if got.SwapCount != plain.SwapCount {
			t.Fatalf("%s: swap count %d != uncached %d", s, got.SwapCount, plain.SwapCount)
		}
		if got.Schedule.Depth() != plain.Schedule.Depth() ||
			got.Schedule.TotalTime != plain.Schedule.TotalTime ||
			got.Schedule.CompiledDepth != plain.Schedule.CompiledDepth {
			t.Fatalf("%s: cached-route schedule diverges from uncached", s)
		}
		for i := range got.Schedule.Slices {
			a, b := got.Schedule.Slices[i], plain.Schedule.Slices[i]
			if len(a.Gates) != len(b.Gates) || a.Duration != b.Duration {
				t.Fatalf("%s: slice %d differs between cached and uncached routing", s, i)
			}
		}
	}
}

// TestConfigRouterSelectsLookahead checks the Config.Router surface: the
// lookahead router compiles end to end and reduces the QAOA swap count
// relative to the default greedy router.
func TestConfigRouterSelectsLookahead(t *testing.T) {
	sys := sys9()
	c := bench.QAOA(9, 7)
	greedy, err := Compile(c, sys, ColorDynamic, Config{})
	if err != nil {
		t.Fatal(err)
	}
	look, err := Compile(c, sys, ColorDynamic, Config{
		Router: mapping.RouterConfig{Algorithm: mapping.RouterLookahead},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := look.Schedule.Verify(); err != nil {
		t.Fatal(err)
	}
	if look.SwapCount > greedy.SwapCount {
		t.Fatalf("lookahead swaps %d > greedy %d on QAOA", look.SwapCount, greedy.SwapCount)
	}
	if _, err := Compile(c, sys, ColorDynamic, Config{
		Router: mapping.RouterConfig{Algorithm: "bogus"},
	}); err == nil {
		t.Fatal("unknown router must fail compilation")
	}
}

// TestDegreePlacementConfig drives the new placement through core.Config.
func TestDegreePlacementConfig(t *testing.T) {
	sys := sys9()
	c := bench.BV(9, 3)
	res, err := Compile(c, sys, ColorDynamic, Config{Placement: PlaceDegree})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(c, sys, ColorDynamic, Config{Placement: "spiral"}); err == nil {
		t.Fatal("unknown placement must fail compilation")
	}
}
