module fastsc

go 1.23.0
