package expt

import (
	"fmt"

	"fastsc/internal/core"
	"fastsc/internal/schedule"
)

// TableStrategies reproduces Table I: the algorithms under evaluation and
// their microarchitectural requirements.
func TableStrategies() *Table {
	t := &Table{
		ID:      "table1",
		Title:   "Algorithms used in the evaluation (Table I)",
		Columns: []string{"algorithm", "microarchitecture features"},
		Rows: [][]string{
			{core.BaselineN, "tunable transmon, fixed coupler, crosstalk-unaware ASAP (Qiskit-style) scheduler"},
			{core.BaselineG, "tunable transmon, tunable coupler (gmon), Sycamore ABCD tiling scheduler"},
			{core.BaselineU, "tunable transmon (single interaction frequency), fixed coupler, serializing scheduler"},
			{core.BaselineS, "tunable transmon, fixed coupler, static (program-independent) crosstalk-aware palette"},
			{core.ColorDynamic, "tunable transmon, fixed coupler, program-specific crosstalk-aware scheduler (this work)"},
		},
	}
	for _, name := range core.Strategies() {
		if schedule.ByName(name) == nil {
			t.Notes = append(t.Notes, fmt.Sprintf("WARNING: %s missing from registry", name))
		}
	}
	return t
}

// TableBenchmarks reproduces Table II: the NISQ benchmark families.
func TableBenchmarks() *Table {
	return &Table{
		ID:      "table2",
		Title:   "Benchmarks used in the evaluation (Table II)",
		Columns: []string{"benchmark", "description"},
		Rows: [][]string{
			{"bv(n)", "Bernstein–Vazirani algorithm on n qubits"},
			{"qaoa(n)", "QAOA for MAX-CUT on an Erdős–Rényi random graph with n vertices"},
			{"ising(n)", "linear Ising-model (spin chain) simulation of length n"},
			{"qgan(n)", "quantum GAN ansatz with training data of dimension 2^n"},
			{"xeb(n,p)", "cross-entropy benchmarking circuit on n qubits with p cycles"},
		},
	}
}
