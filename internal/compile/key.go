package compile

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"fastsc/internal/circuit"
	"fastsc/internal/mapping"
	"fastsc/internal/phys"
	"fastsc/internal/smt"
	"fastsc/internal/topology"
)

// Cache regions. Keeping them as named constants makes hit/miss reports
// and tests self-describing.
const (
	// RegionSMT holds smt.Solve results (including infeasibility verdicts)
	// keyed by (k, band, alpha, minDelta).
	RegionSMT = "smt"
	// RegionSlice holds per-slice coloring/frequency solutions keyed by the
	// exact sorted vertex set of the active interaction subgraph.
	RegionSlice = "slice"
	// RegionXtalk holds crosstalk graphs keyed by (device, distance).
	RegionXtalk = "xtalk"
	// RegionStatic holds program-independent frequency palettes (Baseline
	// S/G calibration tables) keyed by system signature.
	RegionStatic = "static"
	// RegionParking holds parking-frequency assignments keyed by system
	// signature.
	RegionParking = "park"
	// RegionCircuit holds analyzed-circuit IRs (circuit.Analysis: CSR
	// per-qubit gate streams, flat ASAP layers, criticality) keyed by the
	// circuit content signature, so every strategy in a batch shares one
	// analysis per circuit. Snapshots persist only the cheap part — the
	// canonically encoded circuit, deduplicated through the
	// content-addressed pool — and Load re-derives the flat tables with
	// AnalyzeWithSignature (microseconds), so the pointer-heavy IR itself
	// never bloats a snapshot.
	RegionCircuit = "circ"
	// RegionRoute holds routed circuits (mapping.Result) keyed by
	// (circuit signature, device signature, placement, router config), so
	// the 5–7 strategies of a batch route each circuit once instead of
	// once per strategy. Persisted since snapshot v6: the routed circuit
	// is stored as a signature reference into the content-addressed
	// canonical-circuit pool (identical routed circuits cost one blob),
	// with the mapping and provenance flattened beside it.
	RegionRoute = "route"
)

// KeyVersion is the version of the cache-key scheme, folded into SliceKey
// and checked against snapshots on load so that keys built by an older
// scheme can never be read back. Bump it whenever any key or signature
// format changes.
//
// History: v1 reduced the active vertex set to a 64-bit FNV digest (a
// collision would silently serve the wrong frequency assignment) and
// omitted device coordinates from DeviceSignature (the parking stagger
// reads them). v2 encodes the exact vertex set and hashes coordinates.
// v3 accompanies the dense phys.System rewrite: SystemSignature reads the
// per-coupler slice (same values, Edges() order) and the circ region was
// added, keyed by the circuit content signature. v4 accompanies the
// layout/routing subsystem: the route region was added, keyed by
// (circuit signature, device signature, mapping.Options), and RouteKey
// normalizes the options (WithDefaults) before encoding. v5 accompanies
// component-decomposed slice solving: the slice region additionally holds
// per-component solutions under SliceComponentKey (a distinct "c"-tagged
// shape that can never alias a whole-slice key), so snapshots written
// before the decomposition are rejected wholesale. v6 accompanies the
// tiered warm-cache subsystem: route and circ entries persist through the
// content-addressed circuit store, and snapshots from the previous key
// generation are no longer rejected wholesale — Load re-keys them through
// the registered migration step (see migrate.go) instead.
const KeyVersion = 6

type hasher struct{ h uint64 }

func newHasher() *hasher { return &hasher{h: 14695981039346656037} } // FNV-64a offset

func (h *hasher) bytes(p []byte) {
	for _, b := range p {
		h.h ^= uint64(b)
		h.h *= 1099511628211 // FNV-64a prime
	}
}

func (h *hasher) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.bytes(buf[:])
}

func (h *hasher) f64(v float64) { h.u64(math.Float64bits(v)) }

func (h *hasher) str(s string) {
	h.u64(uint64(len(s)))
	h.bytes([]byte(s))
}

// DeviceSignature returns a stable content hash of a device layout: its
// name, qubit count, coupler list and qubit coordinates (the parking
// stagger pattern depends on them). Two Device values describing the same
// chip hash identically even when they are distinct allocations, which is
// what lets independently constructed systems share cache entries.
func DeviceSignature(dev *topology.Device) string {
	h := newHasher()
	h.str(dev.Name)
	h.u64(uint64(dev.Qubits))
	for _, e := range dev.Edges() { // Edges() is sorted by (U, V)
		h.u64(uint64(e.U))
		h.u64(uint64(e.V))
	}
	h.u64(uint64(len(dev.Coords)))
	for q := 0; q < dev.Qubits; q++ {
		if c, ok := dev.Coords[q]; ok {
			h.u64(uint64(q))
			h.u64(uint64(int64(c.Row)))
			h.u64(uint64(int64(c.Col)))
		}
	}
	return fmt.Sprintf("%016x", h.h)
}

// SystemSignature returns a stable content hash of a characterized system:
// the device signature plus every transmon's fabrication draw and every
// coupler's bare coupling — everything the scheduler's frequency math
// depends on. (phys.System.Params is deliberately not hashed: every Params
// field the compilers read is copied into the Transmon draws and the dense
// Coupling slice by phys.NewSystem; see the key-drift guard test.) Systems
// sampled with the same (device, params, seed) hash identically across
// allocations. The dense Coupling slice is indexed by coupler id, i.e.
// Edges() order, so hashing it in index order preserves the signature the
// old map-based iteration produced.
func SystemSignature(sys *phys.System) string {
	h := newHasher()
	h.str(DeviceSignature(sys.Device))
	for _, t := range sys.Qubits {
		h.f64(t.OmegaMax)
		h.f64(t.EC)
		h.f64(t.Asymmetry)
		h.f64(t.T1)
		h.f64(t.T2)
	}
	for _, g := range sys.Coupling {
		h.f64(g)
	}
	return fmt.Sprintf("%016x", h.h)
}

// SMTKey is the cache key of one smt.Solve invocation. The solver is a pure
// function of exactly these inputs; the key is an exact encoding, not a
// hash, so distinct configurations can never collide.
func SMTKey(k int, cfg smt.Config) string {
	return fmt.Sprintf("%d|%x|%x|%x|%x",
		k,
		math.Float64bits(cfg.Lo), math.Float64bits(cfg.Hi),
		math.Float64bits(cfg.Alpha), math.Float64bits(cfg.MinDelta))
}

// XtalkKey is the cache key of a crosstalk-graph construction.
func XtalkKey(dev *topology.Device, distance int) string {
	return fmt.Sprintf("%s|%d", DeviceSignature(dev), distance)
}

// RouteKey is the cache key of one layout/routing invocation: the key
// version, the circuit identity (exact qubit and gate counts plus the
// content signature — the same discipline as the circ region, so a
// hypothetical digest collision between differently-shaped circuits can
// never alias), the device signature, and the normalized mapping options
// (placement, router algorithm, lookahead window and decay). Placement
// and algorithm names are fixed identifiers without '|', the signatures
// are fixed-width hex and the numerics are exact encodings, so distinct
// configurations can never collide. The reflection guard in key_test.go
// pins mapping.Options and mapping.RouterConfig to this key.
func RouteKey(circ *circuit.Circuit, devSig string, opts mapping.Options) string {
	opts = opts.WithDefaults()
	return fmt.Sprintf("v%d|%d|%d|%s|%s|%s|%s|%d|%x",
		KeyVersion, circ.NumQubits, len(circ.Gates), circ.Signature(), devSig,
		opts.Placement, opts.Router.Algorithm, opts.Router.Window,
		math.Float64bits(opts.Router.Decay))
}

// SliceKey returns the canonical cache key of one slice-solve: the key
// version, the system signature (which fixes the crosstalk graph's coupler
// indexing and the interaction band), the crosstalk distance and color
// budget, and the exact sorted vertex set of the active interaction
// subgraph, delta-encoded in hex. Vertex ids index the device's coupler
// list, so the same simultaneous gate pattern maps to the same key in
// every slice of every job on that system.
//
// The encoding is injective: the fixed-arity '|'-separated header cannot
// alias (the signature is fixed-width hex, the ints are decimal), and two
// distinct sorted vertex lists differ in some ','-separated delta token.
// Unlike the v1 key — a 64-bit digest of the vertex set — no pair of
// distinct slices can ever share a key, so a cache hit is always the right
// frequency assignment.
// Callers on the hot path pass an already-sorted slice, which skips the
// defensive copy; unsorted input is copied and sorted, never mutated.
func SliceKey(sysSig string, distance, budget int, activeVertices []int) string {
	return sliceKey("v%d|%s|%d|%d|", sysSig, distance, budget, activeVertices)
}

// SliceComponentKey is the cache key of one connected component of a
// slice's active interaction subgraph, solved (colored) in isolation. It
// lives in the slice region next to whole-slice keys but under a distinct
// shape: the "c" tag after the version makes a component key one
// '|'-separated field longer than any whole-slice key, and since neither
// the signature nor the vertex encoding can contain '|', the two shapes
// can never alias. Sharing the region means component solutions inherit
// the slice region's persistence and size accounting for free.
//
// Component keys are what turn slice caching from whole-pattern matching
// into motif matching: two slices that differ globally but share a local
// gate cluster hit the same component entry, so large circuits whose
// slices recombine a few local motifs stop missing on every new
// combination.
func SliceComponentKey(sysSig string, distance, budget int, componentVerts []int) string {
	return sliceKey("v%d|c|%s|%d|%d|", sysSig, distance, budget, componentVerts)
}

// CircuitKey is the cache key of one analyzed circuit (the circ region):
// the exact qubit and gate counts plus the 128-bit content signature. The
// cheap dimensions are encoded exactly — the same discipline as SliceKey
// and RouteKey — so a hypothetical digest collision between
// differently-shaped circuits can never alias. The memo and the snapshot
// loader both build circ keys through this function, so a persisted
// canonical circuit restores under exactly the key the memo will probe.
func CircuitKey(circ *circuit.Circuit, sig string) string {
	return fmt.Sprintf("%d|%d|%s", circ.NumQubits, len(circ.Gates), sig)
}

func sliceKey(format, sysSig string, distance, budget int, vertices []int) string {
	verts := vertices
	if !sort.IntsAreSorted(verts) {
		verts = append([]int(nil), vertices...)
		sort.Ints(verts)
	}
	var sb strings.Builder
	sb.Grow(len(sysSig) + 18 + 3*len(verts))
	fmt.Fprintf(&sb, format, KeyVersion, sysSig, distance, budget)
	prev := 0
	for i, v := range verts {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatInt(int64(v-prev), 16))
		prev = v
	}
	return sb.String()
}
