// Package xtalk constructs the crosstalk graph G_x^(d) of a device
// (§IV-C2, Algorithm 2): one vertex per coupler (edge of the connectivity
// graph G_c), with two vertices adjacent when the corresponding couplers
// either share a qubit or are connected by a path of length at most d. Two
// simultaneous two-qubit gates whose couplers are adjacent in G_x must be
// separated in frequency (different colors) or in time (different slices).
package xtalk

import (
	"fmt"

	"fastsc/internal/graph"
	"fastsc/internal/topology"
)

// Graph is the crosstalk graph of a device, with coupler-index vertices.
type Graph struct {
	// G has one vertex per coupler, indexed into Couplers.
	G *graph.Graph
	// Couplers maps vertex id -> connectivity-graph edge, sorted by (U,V).
	Couplers []graph.Edge
	// Index is the inverse of Couplers.
	Index map[graph.Edge]int
	// Distance is the crosstalk distance d used to build the graph
	// (d = 1 reproduces the paper's standard construction; §IV-C3
	// generalizes to larger d).
	Distance int
}

// Build constructs the distance-d crosstalk graph of dev. d must be >= 1.
func Build(dev *topology.Device, d int) *Graph {
	if d < 1 {
		panic(fmt.Sprintf("xtalk: crosstalk distance must be >= 1, got %d", d))
	}
	gc := dev.Coupling
	lg, couplers := graph.LineGraph(gc)
	idx := make(map[graph.Edge]int, len(couplers))
	for i, e := range couplers {
		idx[e] = i
	}
	// Vertex distances once, then edge distance = min over endpoint pairs.
	dist := gc.AllPairsDistances()
	for i := 0; i < len(couplers); i++ {
		for j := i + 1; j < len(couplers); j++ {
			if lg.HasEdge(i, j) {
				continue // already adjacent (shared vertex)
			}
			if edgeDist(dist, couplers[i], couplers[j]) <= d {
				lg.AddEdge(i, j)
			}
		}
	}
	return &Graph{G: lg, Couplers: couplers, Index: idx, Distance: d}
}

func edgeDist(dist map[int]map[int]int, e, f graph.Edge) int {
	best := graph.Unreachable
	for _, a := range [2]int{e.U, e.V} {
		for _, b := range [2]int{f.U, f.V} {
			if d := dist[a][b]; d != graph.Unreachable && (best == graph.Unreachable || d < best) {
				best = d
			}
		}
	}
	return best
}

// VertexOf returns the crosstalk-graph vertex for the coupler between
// qubits a and b, and whether that coupler exists.
func (x *Graph) VertexOf(a, b int) (int, bool) {
	v, ok := x.Index[graph.NewEdge(a, b)]
	return v, ok
}

// ActiveSubgraph returns the subgraph of the crosstalk graph induced by the
// given active couplers (the pairs currently executing two-qubit gates) —
// the graph H of §V-B2 whose coloring yields this slice's interaction
// frequencies. Unknown couplers are ignored.
func (x *Graph) ActiveSubgraph(active []graph.Edge) *graph.Graph {
	var verts []int
	for _, e := range active {
		if v, ok := x.Index[e]; ok {
			verts = append(verts, v)
		}
	}
	return x.G.Subgraph(verts)
}

// NeighborsOf returns the couplers adjacent (in the crosstalk graph) to the
// coupler between a and b, i.e. every coupler that would conflict with a
// simultaneous gate on (a,b).
func (x *Graph) NeighborsOf(a, b int) []graph.Edge {
	v, ok := x.VertexOf(a, b)
	if !ok {
		return nil
	}
	nbrs := x.G.Neighbors(v)
	out := make([]graph.Edge, len(nbrs))
	for i, n := range nbrs {
		out[i] = x.Couplers[n]
	}
	return out
}

// ConflictDegree returns, for the coupler (a,b), how many of the couplers in
// active are adjacent to it in the crosstalk graph. The noise-aware queueing
// scheduler postpones gates whose conflict degree is too high (§V-B6).
func (x *Graph) ConflictDegree(a, b int, active []graph.Edge) int {
	v, ok := x.VertexOf(a, b)
	if !ok {
		return 0
	}
	n := 0
	for _, e := range active {
		if w, ok := x.Index[e]; ok && x.G.HasEdge(v, w) {
			n++
		}
	}
	return n
}

// Spectators returns the qubits that neighbor (in the connectivity graph)
// either endpoint of the coupler (a,b) without being part of it. During a
// gate on (a,b), spectators must idle off-resonance from the interaction
// frequency.
func Spectators(dev *topology.Device, a, b int) []int {
	seen := map[int]bool{a: true, b: true}
	var out []int
	for _, q := range [2]int{a, b} {
		for _, n := range dev.NeighborsSorted(q) {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sortInts(out)
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
