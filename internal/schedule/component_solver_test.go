package schedule

import (
	"testing"

	"fastsc/internal/compile"
	"fastsc/internal/graph"
	"fastsc/internal/smt"
)

// TestMaxColorsFeasibleMatchesLinearScan pins the galloping color-budget
// probe to the linear scan it replaced, across band widths (which move the
// answer through the whole 1..cap range) and caps (including caps below,
// at, and above the answer).
func TestMaxColorsFeasibleMatchesLinearScan(t *testing.T) {
	linear := func(cfg smt.Config, cap int) int {
		best := 1
		for k := 2; k <= cap; k++ {
			if _, _, err := smt.Solve(k, cfg); err != nil {
				break
			}
			best = k
		}
		return best
	}
	for _, width := range []float64{0.05, 0.2, 0.5, 0.75, 1.5, 3.0} {
		cfg := smt.Config{Lo: 6.0, Hi: 6.0 + width, Alpha: -0.2, MinDelta: 0.04}
		for cap := 1; cap <= 20; cap++ {
			want := linear(cfg, cap)
			if got := maxColorsFeasible(nil, cfg, cap); got != want {
				t.Fatalf("width=%v cap=%d: galloping probe = %d, linear scan = %d", width, cap, got, want)
			}
		}
	}
}

// TestMergeComponentsAllocBound pins the component-merge hot path's
// allocation count: it may allocate only what the merged SliceSolution
// retains (coloring, occupancy, assignment) plus the occupancy sort — a
// map, fmt call or interface box slipping in would show up here long
// before a benchmark regression does.
func TestMergeComponentsAllocBound(t *testing.T) {
	sys := testSystem(9)
	ctx := compile.NewContext(1)
	b, err := newBuilder(ctx, "test", smallCircuit(), sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.abort()
	intCfg := b.part.InteractionConfig(sys.MeanAnharmonicity())
	// Two single-vertex components at vertices 0 and 5, as a slice with two
	// far-apart gates would produce.
	sols := []compile.ComponentSolution{
		{Coloring: graph.Coloring{0}, NumColors: 1, Counts: []int{1}},
		{Coloring: graph.Coloring{-1, -1, -1, -1, -1, 0}, NumColors: 1, Counts: []int{1}},
	}
	keyVerts := []int{0, 5}
	if _, err := b.mergeComponents(keyVerts, sols, intCfg); err != nil {
		t.Fatal(err) // also warms the SMT cache
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := b.mergeComponents(keyVerts, sols, intCfg); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 12
	if allocs > maxAllocs {
		t.Errorf("mergeComponents allocates %.0f objects per merge, want <= %d", allocs, maxAllocs)
	}
}
