package lint

// The key schema table: the compile-time twin of the reflection guard in
// internal/compile/key_test.go (TestKeySchemaDrift). Every struct that a
// compile cache key or signature hashes is pinned here to its exact field
// set; when a field is added the keyfields analyzer fails `make lint`
// before any test runs, with the same remediation contract as the
// runtime guard: fold the field into the key function (or document its
// exclusion), update this table AND the reflection guard, and bump
// compile.KeyVersion.
//
// Keep this table and TestKeySchemaDrift in lockstep — each backstops the
// other (the test still runs where fastscvet does not, e.g. `go test`
// without `make lint`).

// A KeySchema pins one hashed struct: the key function written against
// its layout and the exact expected field names.
type KeySchema struct {
	// KeyFunc names the key/signature function that consumes the struct,
	// for the remediation message.
	KeyFunc string
	// Fields is the exact expected field set (order-insensitive).
	Fields []string
}

// DefaultKeySchema maps "pkgpath.TypeName" to its pinned layout for every
// struct the compile cache hashes.
var DefaultKeySchema = map[string]KeySchema{
	"fastsc/internal/smt.Config": {
		KeyFunc: "compile.SMTKey",
		Fields:  []string{"Lo", "Hi", "Alpha", "MinDelta"},
	},
	"fastsc/internal/topology.Device": {
		KeyFunc: "compile.DeviceSignature",
		Fields:  []string{"Name", "Qubits", "Coupling", "Coords"},
	},
	"fastsc/internal/topology.Coord": {
		KeyFunc: "compile.DeviceSignature",
		Fields:  []string{"Row", "Col"},
	},
	"fastsc/internal/phys.System": {
		// Params is deliberately excluded from the hash itself; the guard
		// still pins the field so adding a sibling fails vet. See the
		// justification in compile/key_test.go.
		KeyFunc: "compile.SystemSignature",
		Fields:  []string{"Device", "Qubits", "Coupling", "Params"},
	},
	"fastsc/internal/phys.Transmon": {
		KeyFunc: "compile.SystemSignature",
		Fields:  []string{"OmegaMax", "EC", "Asymmetry", "T1", "T2"},
	},
	"fastsc/internal/circuit.Circuit": {
		KeyFunc: "circuit.Signature",
		Fields:  []string{"NumQubits", "Gates"},
	},
	"fastsc/internal/circuit.Gate": {
		KeyFunc: "circuit.Signature",
		Fields:  []string{"Kind", "Qubits", "Theta"},
	},
	"fastsc/internal/mapping.Options": {
		KeyFunc: "compile.RouteKey",
		Fields:  []string{"Placement", "Router"},
	},
	"fastsc/internal/mapping.RouterConfig": {
		KeyFunc: "compile.RouteKey",
		Fields:  []string{"Algorithm", "Window", "Decay"},
	},
	// The snapshot codec structs are pinned for a different failure mode
	// than the key structs above: they are on-disk gob shapes, so a field
	// added to the in-memory type without a matching codec field (plus a
	// SnapshotVersion bump and a migration entry) would silently drop data
	// on the round trip rather than alias a key.
	"fastsc/internal/compile.diskSnapshot": {
		KeyFunc: "the snapshot codec (compile.Save/Load)",
		Fields: []string{"Magic", "Version", "KeyVersion", "SMT", "Park",
			"Slice", "SliceComp", "Static", "Circuits", "Route", "Circ"},
	},
	"fastsc/internal/compile.persistedRoute": {
		KeyFunc: "the snapshot codec (compile.Save/Load)",
		Fields:  []string{"RoutedSig", "LogToPhys", "PhysToLog", "Inserted", "SwapCount"},
	},
	// persistedRoute flattens mapping.Result (and its Mapping) field for
	// field, so those layouts are pinned too: a field added to Result
	// without a persistedRoute twin would vanish across a Save/Load.
	"fastsc/internal/mapping.Result": {
		KeyFunc: "the snapshot codec (compile.persistedRoute)",
		Fields:  []string{"Routed", "Final", "Inserted", "SwapCount"},
	},
	"fastsc/internal/mapping.Mapping": {
		KeyFunc: "the snapshot codec (compile.persistedRoute)",
		Fields:  []string{"LogToPhys", "PhysToLog"},
	},
}
