package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewEdgeNormalizes(t *testing.T) {
	e := NewEdge(5, 2)
	if e.U != 2 || e.V != 5 {
		t.Fatalf("NewEdge(5,2) = %v, want (2,5)", e)
	}
}

func TestNewEdgeSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEdge(3,3) did not panic")
		}
	}()
	NewEdge(3, 3)
}

func TestEdgeOther(t *testing.T) {
	e := NewEdge(1, 4)
	if e.Other(1) != 4 || e.Other(4) != 1 {
		t.Fatalf("Other endpoints wrong for %v", e)
	}
}

func TestEdgeOtherPanicsOnNonEndpoint(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Other(7) on edge (1,4) did not panic")
		}
	}()
	NewEdge(1, 4).Other(7)
}

func TestEdgeSharesVertex(t *testing.T) {
	cases := []struct {
		e, f Edge
		want bool
	}{
		{NewEdge(0, 1), NewEdge(1, 2), true},
		{NewEdge(0, 1), NewEdge(0, 2), true},
		{NewEdge(0, 1), NewEdge(2, 3), false},
		{NewEdge(0, 1), NewEdge(0, 1), true},
	}
	for _, c := range cases {
		if got := c.e.SharesVertex(c.f); got != c.want {
			t.Errorf("SharesVertex(%v,%v) = %v, want %v", c.e, c.f, got, c.want)
		}
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(0, 1)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", g.NumNodes())
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("RemoveEdge removed wrong edge")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	g.RemoveEdge(0, 1) // no-op
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges after double-remove = %d, want 1", g.NumEdges())
	}
}

func TestNodesAndNeighborsSorted(t *testing.T) {
	g := New()
	g.AddEdge(5, 1)
	g.AddEdge(5, 3)
	g.AddEdge(5, 2)
	if got := g.Nodes(); !reflect.DeepEqual(got, []int{1, 2, 3, 5}) {
		t.Fatalf("Nodes = %v", got)
	}
	if got := g.Neighbors(5); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("Neighbors(5) = %v", got)
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New()
	g.AddEdge(3, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 1)
	want := []Edge{{0, 1}, {0, 2}, {1, 3}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges = %v, want %v", got, want)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New()
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("Clone lost an edge")
	}
}

func TestSubgraph(t *testing.T) {
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	s := g.Subgraph([]int{0, 1, 2})
	if s.NumNodes() != 3 || s.NumEdges() != 2 {
		t.Fatalf("Subgraph n=%d m=%d, want 3,2", s.NumNodes(), s.NumEdges())
	}
	if s.HasNode(3) || s.HasEdge(2, 3) {
		t.Fatal("Subgraph leaked excluded vertex")
	}
}

func TestSubgraphIgnoresUnknownVertices(t *testing.T) {
	g := New()
	g.AddEdge(0, 1)
	s := g.Subgraph([]int{0, 99})
	if s.NumNodes() != 1 || s.HasNode(99) {
		t.Fatalf("Subgraph with unknown vertex: %v", s)
	}
}

func TestBFSDistancesPath(t *testing.T) {
	g := New()
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	dist := g.BFSDistances(0)
	for i := 0; i <= 4; i++ {
		if dist[i] != i {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], i)
		}
	}
}

func TestBFSDistancesUnreachable(t *testing.T) {
	g := New()
	g.AddEdge(0, 1)
	g.AddNode(7)
	dist := g.BFSDistances(0)
	if dist[7] != Unreachable {
		t.Fatalf("dist[7] = %d, want Unreachable", dist[7])
	}
}

func TestDistance(t *testing.T) {
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2) // triangle
	g.AddEdge(2, 3)
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 2}, {3, 0, 2},
	}
	for _, c := range cases {
		if got := g.Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	g.AddNode(9)
	if g.Distance(0, 9) != Unreachable {
		t.Error("Distance to isolated vertex should be Unreachable")
	}
}

func TestShortestPath(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		g.AddEdge(i, i+1)
	}
	path := g.ShortestPath(1, 4)
	if !reflect.DeepEqual(path, []int{1, 2, 3, 4}) {
		t.Fatalf("ShortestPath(1,4) = %v", path)
	}
	if p := g.ShortestPath(2, 2); !reflect.DeepEqual(p, []int{2}) {
		t.Fatalf("ShortestPath(2,2) = %v", p)
	}
	g.AddNode(42)
	if g.ShortestPath(0, 42) != nil {
		t.Fatal("path to unreachable vertex should be nil")
	}
}

func TestConnected(t *testing.T) {
	g := New()
	if !g.Connected() {
		t.Fatal("empty graph should be connected")
	}
	g.AddEdge(0, 1)
	if !g.Connected() {
		t.Fatal("single edge should be connected")
	}
	g.AddNode(5)
	if g.Connected() {
		t.Fatal("graph with isolated vertex should be disconnected")
	}
}

func TestEdgeDistance(t *testing.T) {
	// Path 0-1-2-3-4-5.
	g := New()
	for i := 0; i < 5; i++ {
		g.AddEdge(i, i+1)
	}
	cases := []struct {
		e, f Edge
		want int
	}{
		{NewEdge(0, 1), NewEdge(1, 2), 0}, // share vertex 1
		{NewEdge(0, 1), NewEdge(2, 3), 1}, // one hop between
		{NewEdge(0, 1), NewEdge(3, 4), 2},
		{NewEdge(0, 1), NewEdge(4, 5), 3},
	}
	for _, c := range cases {
		if got := g.EdgeDistance(c.e, c.f); got != c.want {
			t.Errorf("EdgeDistance(%v,%v) = %d, want %d", c.e, c.f, got, c.want)
		}
		if got := g.EdgeDistance(c.f, c.e); got != c.want {
			t.Errorf("EdgeDistance(%v,%v) = %d, want %d (symmetry)", c.f, c.e, got, c.want)
		}
	}
}

func TestLineGraphPath(t *testing.T) {
	// Line graph of a path P4 (3 edges) is a path P3.
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	lg, edges := LineGraph(g)
	if lg.NumNodes() != 3 {
		t.Fatalf("line graph nodes = %d, want 3", lg.NumNodes())
	}
	if lg.NumEdges() != 2 {
		t.Fatalf("line graph edges = %d, want 2", lg.NumEdges())
	}
	if len(edges) != 3 {
		t.Fatalf("edge map length = %d, want 3", len(edges))
	}
}

func TestLineGraphStar(t *testing.T) {
	// Line graph of the star K1,4 is the complete graph K4.
	g := New()
	for leaf := 1; leaf <= 4; leaf++ {
		g.AddEdge(0, leaf)
	}
	lg, _ := LineGraph(g)
	if lg.NumNodes() != 4 || lg.NumEdges() != 6 {
		t.Fatalf("line graph of K1,4: n=%d m=%d, want 4,6", lg.NumNodes(), lg.NumEdges())
	}
}

func TestLineGraphEdgeCountIdentity(t *testing.T) {
	// |E(L(G))| = sum_v C(deg(v),2). Check on a random graph.
	rng := rand.New(rand.NewSource(7))
	g := gnp(12, 0.3, rng)
	lg, _ := LineGraph(g)
	want := 0
	for _, v := range g.Nodes() {
		d := g.Degree(v)
		want += d * (d - 1) / 2
	}
	if lg.NumEdges() != want {
		t.Fatalf("line graph edges = %d, want %d", lg.NumEdges(), want)
	}
}

func TestWelshPowellProper(t *testing.T) {
	g := New()
	// 5-cycle: chromatic number 3.
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
	}
	c := WelshPowell(g)
	if !c.Valid(g) {
		t.Fatal("Welsh-Powell produced an improper coloring")
	}
	if n := c.NumColors(); n < 3 || n > 3 {
		t.Fatalf("C5 colored with %d colors, want 3", n)
	}
}

func TestWelshPowellCompleteGraph(t *testing.T) {
	g := New()
	n := 6
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	c := WelshPowell(g)
	if !c.Valid(g) || c.NumColors() != n {
		t.Fatalf("K6 coloring: valid=%v colors=%d", c.Valid(g), c.NumColors())
	}
}

func TestTwoColorBipartite(t *testing.T) {
	g := New()
	// 4x1 path is bipartite.
	for i := 0; i < 3; i++ {
		g.AddEdge(i, i+1)
	}
	c, ok := TwoColor(g)
	if !ok || !c.Valid(g) || c.NumColors() > 2 {
		t.Fatalf("TwoColor on path failed: ok=%v", ok)
	}
}

func TestTwoColorOddCycle(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
	}
	if _, ok := TwoColor(g); ok {
		t.Fatal("TwoColor succeeded on an odd cycle")
	}
}

func TestTwoColorDisconnected(t *testing.T) {
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(10, 11)
	c, ok := TwoColor(g)
	if !ok || !c.Valid(g) {
		t.Fatal("TwoColor failed on disconnected bipartite graph")
	}
}

func TestBoundedColoringDefers(t *testing.T) {
	// K4 needs 4 colors; with budget 2, two vertices must be deferred.
	g := New()
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
		}
	}
	c, deferred := BoundedColoring(g, 2)
	if c.Colored()+len(deferred) != 4 {
		t.Fatalf("partition broken: %d colored + %d deferred", c.Colored(), len(deferred))
	}
	if len(deferred) != 2 {
		t.Fatalf("deferred %d vertices from K4 with budget 2, want 2", len(deferred))
	}
	for v, col := range c {
		if c.Has(v) && (col < 0 || col >= 2) {
			t.Fatalf("vertex %d got out-of-budget color %d", v, col)
		}
	}
	// Colored part must be proper.
	for _, e := range g.Edges() {
		if c.Has(e.U) && c.Has(e.V) && c[e.U] == c[e.V] {
			t.Fatalf("edge %v monochromatic in bounded coloring", e)
		}
	}
}

func TestBoundedColoringNoBudget(t *testing.T) {
	g := New()
	g.AddEdge(0, 1)
	c, deferred := BoundedColoring(g, 0)
	if deferred != nil || !c.Valid(g) {
		t.Fatal("BoundedColoring with no budget should equal WelshPowell")
	}
}

func TestColoringClasses(t *testing.T) {
	c := Coloring{0, 1, 0, 1}
	classes := c.Classes()
	if !reflect.DeepEqual(classes[0], []int{0, 2}) || !reflect.DeepEqual(classes[1], []int{1, 3}) {
		t.Fatalf("Classes = %v", classes)
	}
}

// Classes must tolerate sparse and non-contiguous colors: a color nobody
// uses yields an empty class at its own index (classes[k] always means
// "colored exactly k"), and uncolored vertices are skipped.
func TestColoringClassesSparseColors(t *testing.T) {
	c := Coloring{5, Uncolored, 2, 5, Uncolored, 0}
	classes := c.Classes()
	if len(classes) != 6 {
		t.Fatalf("Classes span = %d, want 6 (max color 5)", len(classes))
	}
	want := [][]int{0: {5}, 2: {2}, 5: {0, 3}}
	for k := range classes {
		if !reflect.DeepEqual(classes[k], want[k]) {
			t.Fatalf("classes[%d] = %v, want %v", k, classes[k], want[k])
		}
	}
	if c.NumColors() != 3 {
		t.Fatalf("NumColors = %d, want 3 distinct", c.NumColors())
	}
	counts := c.ColorCounts()
	if !reflect.DeepEqual(counts, []int{1, 0, 1, 0, 0, 2}) {
		t.Fatalf("ColorCounts = %v", counts)
	}
}

// gnp builds an Erdős–Rényi random graph for property tests.
func gnp(n int, p float64, rng *rand.Rand) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(i)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// Property: Welsh–Powell always produces a proper coloring with at most
// MaxDegree+1 colors, on arbitrary random graphs.
func TestWelshPowellPropertyRandom(t *testing.T) {
	prop := func(seed int64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%20) + 1
		p := float64(pRaw%100) / 100
		rng := rand.New(rand.NewSource(seed))
		g := gnp(n, p, rng)
		c := WelshPowell(g)
		return c.Valid(g) && c.NumColors() <= g.MaxDegree()+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a BFS 2-coloring, when it succeeds, is proper; when it fails the
// graph truly contains an odd cycle (checked indirectly: proper 2-colorings
// found by brute force must then not exist for small n).
func TestTwoColorPropertyRandom(t *testing.T) {
	prop := func(seed int64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%10) + 1
		p := float64(pRaw%100) / 100
		rng := rand.New(rand.NewSource(seed))
		g := gnp(n, p, rng)
		c, ok := TwoColor(g)
		if ok {
			return c.Valid(g) && c.NumColors() <= 2
		}
		return !bruteforceTwoColorable(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func bruteforceTwoColorable(g *Graph) bool {
	nodes := g.Nodes()
	n := len(nodes)
	if n > 16 {
		panic("bruteforce limited to 16 vertices")
	}
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for _, e := range g.Edges() {
			iu, iv := index(nodes, e.U), index(nodes, e.V)
			if (mask>>iu)&1 == (mask>>iv)&1 {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return n == 0
}

func index(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// Property: EdgeDistance is symmetric and satisfies the share-vertex <=> 0
// equivalence.
func TestEdgeDistancePropertyRandom(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gnp(10, 0.35, rng)
		edges := g.Edges()
		if len(edges) < 2 {
			return true
		}
		e := edges[rng.Intn(len(edges))]
		f := edges[rng.Intn(len(edges))]
		d1, d2 := g.EdgeDistance(e, f), g.EdgeDistance(f, e)
		if d1 != d2 {
			return false
		}
		if e.SharesVertex(f) != (d1 == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDistancesMemoized checks the lazily built distance matrix: repeated
// calls on an immutable graph share one allocation, any mutation
// invalidates it, and the cached values match a fresh AllPairsDistances.
func TestDistancesMemoized(t *testing.T) {
	g := gnp(12, 0.3, rand.New(rand.NewSource(3)))
	d1 := g.Distances()
	if d2 := g.Distances(); d2 != d1 {
		t.Fatal("Distances must return the cached matrix on an immutable graph")
	}
	fresh := g.AllPairsDistances()
	for u := 0; u < g.Cap(); u++ {
		for v := 0; v < g.Cap(); v++ {
			if d1.At(u, v) != fresh.At(u, v) {
				t.Fatalf("cached distance (%d,%d)=%d, fresh %d", u, v, d1.At(u, v), fresh.At(u, v))
			}
		}
	}
	// Mutation invalidates: a new edge can only shrink distances, and the
	// rebuilt matrix must see it.
	g.AddEdge(0, g.Cap()-1)
	d3 := g.Distances()
	if d3 == d1 {
		t.Fatal("mutation must invalidate the cached distance matrix")
	}
	if d3.At(0, g.Cap()-1) != 1 {
		t.Fatalf("rebuilt matrix misses the new edge: distance %d", d3.At(0, g.Cap()-1))
	}
	if d1.Stride() != g.Cap() || d3.Stride() != g.Cap() {
		t.Fatalf("stride %d/%d, want %d", d1.Stride(), d3.Stride(), g.Cap())
	}
	// Vertex insertion invalidates too (the matrix span must grow).
	g.AddNode(g.Cap() + 3)
	if d4 := g.Distances(); d4 == d3 || d4.Stride() != g.Cap() {
		t.Fatal("AddNode must invalidate the cached distance matrix")
	}
}
