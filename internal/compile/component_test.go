package compile

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fastsc/internal/graph"
)

func TestSliceComponentKeyDistinctFromSliceKey(t *testing.T) {
	sig := "0123456789abcdef"
	verts := []int{3, 7, 8}
	whole := SliceKey(sig, 2, 2, verts)
	comp := SliceComponentKey(sig, 2, 2, verts)
	if whole == comp {
		t.Fatalf("whole-slice and component keys collide: %q", whole)
	}
	// The shapes are distinguished structurally, not by luck: a component
	// key carries one more '|'-separated field than any whole-slice key,
	// and no field of either can contain '|'.
	if w, c := strings.Count(whole, "|"), strings.Count(comp, "|"); c != w+1 {
		t.Fatalf("component key has %d separators, whole-slice %d, want exactly one more", c, w)
	}
}

func TestSliceComponentKeyCanonicalOverOrder(t *testing.T) {
	sig := "0123456789abcdef"
	a := SliceComponentKey(sig, 2, 2, []int{9, 1, 4})
	b := SliceComponentKey(sig, 2, 2, []int{1, 4, 9})
	if a != b {
		t.Fatalf("component key depends on vertex order: %q vs %q", a, b)
	}
	if c := SliceComponentKey(sig, 2, 2, []int{1, 4, 10}); c == a {
		t.Fatalf("distinct vertex sets share key %q", a)
	}
	if c := SliceComponentKey(sig, 2, 3, []int{1, 4, 9}); c == a {
		t.Fatal("distinct budgets share a component key")
	}
}

func TestSliceComponentMemoization(t *testing.T) {
	ctx := &Context{Cache: NewCache(0), Workers: 1}
	sol := ComponentSolution{
		Coloring:  graph.Coloring{-1, 0, 1},
		Deferred:  []int{2},
		NumColors: 2,
		Counts:    []int{1, 1},
	}
	key := SliceComponentKey("sig", 2, 2, []int{1, 2})
	computes := 0
	for i := 0; i < 3; i++ {
		got, err := ctx.SliceComponent(key, func() (ComponentSolution, error) {
			computes++
			return sol, nil
		})
		if err != nil {
			t.Fatalf("SliceComponent: %v", err)
		}
		if !reflect.DeepEqual(got, sol) {
			t.Fatalf("SliceComponent = %+v, want %+v", got, sol)
		}
	}
	if computes != 1 {
		t.Fatalf("computed %d times, want 1", computes)
	}
	if s := ctx.Cache.StatsByRegion()[RegionSlice]; s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("slice region stats = %+v, want 2 hits / 1 miss", s)
	}
}

func TestSnapshotRoundTripComponentSolutions(t *testing.T) {
	c := NewCache(0)
	whole := SliceSolution{
		Coloring:  graph.Coloring{-1, 0, 1, 0},
		NumColors: 2,
		Assign:    []float64{6.4, 6.1},
		Delta:     0.25,
	}
	comp := ComponentSolution{
		Coloring:  graph.Coloring{-1, -1, 0, 1},
		Deferred:  []int{5},
		NumColors: 2,
		Counts:    []int{1, 1},
	}
	wholeKey := SliceKey("sig", 2, 2, []int{1, 2, 3})
	compKey := SliceComponentKey("sig", 2, 2, []int{2, 3})
	c.Put(RegionSlice, wholeKey, whole)
	c.Put(RegionSlice, compKey, comp)

	path := filepath.Join(t.TempDir(), "cache.snap")
	if err := c.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	fresh := NewCache(0)
	n, err := fresh.Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if n != 2 {
		t.Fatalf("restored %d entries, want 2", n)
	}
	if v, ok := fresh.Get(RegionSlice, wholeKey); !ok || !reflect.DeepEqual(v, whole) {
		t.Fatalf("whole-slice entry after round trip = %+v (ok=%v), want %+v", v, ok, whole)
	}
	if v, ok := fresh.Get(RegionSlice, compKey); !ok || !reflect.DeepEqual(v, comp) {
		t.Fatalf("component entry after round trip = %+v (ok=%v), want %+v", v, ok, comp)
	}
}
