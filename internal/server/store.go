package server

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"fastsc/internal/faultpoint"
)

// storeVersion is the on-disk batch-store snapshot format version. Like
// the cache snapshot (compile.SnapshotVersion), a snapshot with any other
// version is rejected wholesale and the store starts empty — degradation
// over misinterpretation.
const storeVersion = 1

// storeMagic guards against feeding an arbitrary gob stream to Open.
const storeMagic = "fastsc-batch-store"

// appendSaveInterval throttles mid-batch persists: results stream in per
// job, but the store is written at most once per interval on that path
// (add and finish always persist synchronously). A crash loses at most
// the last interval of per-job results of running batches — their batch
// records themselves are already durable.
const appendSaveInterval = 200 * time.Millisecond

// storeSnapshot is the gob payload of a batch-store snapshot.
type storeSnapshot struct {
	Magic   string
	Version int
	// Epoch counts store generations: 1 for a fresh store, incremented on
	// every recovery, so operators can tell "restarted n times" from the
	// /metrics of a fleet.
	Epoch int64
	// Seq is the batch-id counter, restored so recovered and new batch ids
	// never collide.
	Seq     int64
	Records []persistedBatch
}

// persistedBatch is the durable form of one batchRecord.
type persistedBatch struct {
	ID        string
	Status    string
	Jobs      int
	Failed    int
	Priority  int
	Epoch     int64
	Results   []ResultLine
	Cache     *CacheReport
	ElapsedUs int64
}

// batchStore holds async batches for polling, optionally mirrored to a
// versioned snapshot on disk (Open). It is bounded: adding a batch beyond
// the limit evicts the oldest *terminal* batch (running and queued batches
// are never evicted, so an accepted batch can always be polled at least
// until it completes and one poll-window later).
//
// Durability contract: add and finish persist synchronously — a 202 ack
// means the batch record survives kill -9, and a finished batch stays
// pollable across a restart. Per-job result lines persist on a throttle
// (appendSaveInterval). A batch that was queued or running when the
// process died is re-marked "interrupted" by the next Open; it is never
// silently lost and never silently resurrected as runnable.
type batchStore struct {
	mu    sync.Mutex
	m     map[string]*batchRecord
	order []string
	limit int
	seq   int64

	// path is the snapshot file; empty disables persistence entirely.
	path  string
	epoch int64
	// restored / interrupted describe the last Open, for /metrics.
	restored    int64
	interrupted int64

	saveMu       sync.Mutex   // serializes snapshot writes
	saveErrs     atomic.Int64 // failed persists (store kept serving from memory)
	lastSaveNano atomic.Int64 // unix nanos of the last append-path persist
}

func newBatchStore(limit int) *batchStore {
	return &batchStore{m: make(map[string]*batchRecord), limit: limit, epoch: 1}
}

// Open attaches the store to a snapshot file and restores whatever the
// previous process persisted there. Recovery follows the cache-snapshot
// contract: a missing file starts epoch 1 empty; a corrupt, truncated or
// version-mismatched snapshot degrades to an empty store with a nil error
// (the daemon must boot); only genuine I/O errors on an existing file are
// returned. Batches persisted as queued or running are re-marked
// "interrupted" — the process died under them — and count toward the
// interrupted metric. The restored epoch is the persisted epoch + 1.
func (st *batchStore) Open(path string) (restored, interrupted int, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.path = path
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("server: read batch store: %w", err)
	}
	data = faultpoint.Corrupt(faultpoint.StoreLoadCorrupt, data)
	var snap storeSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return 0, 0, nil // corrupt: empty store
	}
	if snap.Magic != storeMagic || snap.Version != storeVersion {
		return 0, 0, nil // other format generation: empty store
	}
	st.epoch = snap.Epoch + 1
	st.seq = snap.Seq
	for _, p := range snap.Records {
		status := p.Status
		if status == "queued" || status == "running" {
			status = "interrupted"
			interrupted++
		}
		rec := &batchRecord{
			id: p.ID, status: status, jobs: p.Jobs, failed: p.Failed,
			prio: p.Priority, epoch: p.Epoch,
			results: p.Results, cache: p.Cache, elapsedUs: p.ElapsedUs,
		}
		st.m[rec.id] = rec
		st.order = append(st.order, rec.id)
		restored++
	}
	st.restored = int64(restored)
	st.interrupted = int64(interrupted)
	return restored, interrupted, nil
}

// add registers a new queued batch, persists the store, and returns the
// record.
func (st *batchStore) add(jobs, prio int) *batchRecord {
	st.mu.Lock()
	st.seq++
	rec := &batchRecord{
		id: fmt.Sprintf("b-%06d", st.seq), status: "queued",
		jobs: jobs, prio: prio, epoch: st.epoch, store: st,
	}
	st.m[rec.id] = rec
	st.order = append(st.order, rec.id)
	if len(st.m) > st.limit {
		for i, oid := range st.order {
			if old := st.m[oid]; old != nil && old.isTerminal() {
				delete(st.m, oid)
				st.order = append(st.order[:i], st.order[i+1:]...)
				break
			}
		}
	}
	st.mu.Unlock()
	st.persist()
	return rec
}

// get returns the record for id, or nil.
func (st *batchStore) get(id string) *batchRecord {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.m[id]
}

// len returns the number of stored batches.
func (st *batchStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// Epoch returns the store generation (1 fresh, +1 per recovery).
func (st *batchStore) Epoch() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.epoch
}

// RecoveryStats returns the restored and interrupted counts of the last
// Open and the persist-failure count.
func (st *batchStore) RecoveryStats() (restored, interrupted, saveErrs int64) {
	st.mu.Lock()
	restored, interrupted = st.restored, st.interrupted
	st.mu.Unlock()
	return restored, interrupted, st.saveErrs.Load()
}

// SaveNow persists the store synchronously (no-op without Open). The
// daemon calls it on shutdown; add/finish call it through persist.
func (st *batchStore) SaveNow() error { return st.persist() }

// persist writes the snapshot atomically (temp file + rename). Persist
// failures are counted and swallowed: the store keeps serving from
// memory, trading durability for availability exactly like cache-snapshot
// saves.
func (st *batchStore) persist() error {
	st.saveMu.Lock()
	defer st.saveMu.Unlock()

	st.mu.Lock()
	if st.path == "" {
		st.mu.Unlock()
		return nil
	}
	path := st.path
	snap := storeSnapshot{Magic: storeMagic, Version: storeVersion, Epoch: st.epoch, Seq: st.seq}
	// Iterate the explicit insertion order, not the map: the snapshot
	// bytes must be identical for identical store contents (the same
	// determinism discipline as the cache snapshot's static section).
	for _, id := range st.order {
		r := st.m[id]
		r.mu.Lock()
		snap.Records = append(snap.Records, persistedBatch{
			ID: r.id, Status: r.status, Jobs: r.jobs, Failed: r.failed,
			Priority: r.prio, Epoch: r.epoch,
			Results: append([]ResultLine(nil), r.results...),
			Cache:   r.cache, ElapsedUs: r.elapsedUs,
		})
		r.mu.Unlock()
	}
	st.mu.Unlock()

	err := writeStoreSnapshot(path, snap)
	if err != nil {
		st.saveErrs.Add(1)
	}
	st.lastSaveNano.Store(time.Now().UnixNano())
	return err
}

// maybePersist is the throttled append-path persist.
func (st *batchStore) maybePersist() {
	last := st.lastSaveNano.Load()
	now := time.Now().UnixNano()
	if now-last < int64(appendSaveInterval) {
		return
	}
	if !st.lastSaveNano.CompareAndSwap(last, now) {
		return // another appender is persisting
	}
	_ = st.persist()
}

func writeStoreSnapshot(path string, snap storeSnapshot) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return fmt.Errorf("server: encode batch store: %w", err)
	}
	if err := faultpoint.Err(faultpoint.StoreSaveErr); err != nil {
		return fmt.Errorf("server: write batch store: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("server: write batch store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: write batch store: %w", err)
	}
	return nil
}

// batchRecord is one async batch's poll state. Results accumulate in
// completion order as the engine streams them.
type batchRecord struct {
	id    string
	store *batchStore // nil for restored records (no further writes)
	mu    sync.Mutex
	// status: "queued" | "running", then a terminal batchStatus ("done",
	// "expired", "shed", "canceled") or "interrupted" after recovery.
	status    string
	jobs      int
	failed    int
	prio      int
	epoch     int64
	results   []ResultLine
	cache     *CacheReport
	elapsedUs int64
}

// appendLine records one emitted stream line; DoneLines are applied by
// finish instead. Appends persist on a throttle.
func (r *batchRecord) appendLine(line any) error {
	rl, ok := line.(ResultLine)
	if !ok {
		return nil
	}
	r.mu.Lock()
	r.results = append(r.results, rl)
	if rl.Type == "error" {
		r.failed++
	}
	st := r.store
	r.mu.Unlock()
	if st != nil {
		st.maybePersist()
	}
	return nil
}

// setRunning marks the batch as holding a compile slot.
func (r *batchRecord) setRunning() {
	r.mu.Lock()
	if r.status == "queued" {
		r.status = "running"
	}
	r.mu.Unlock()
}

// finish applies the terminal DoneLine and status, then persists.
func (r *batchRecord) finish(done DoneLine, status string) {
	r.mu.Lock()
	r.status = status
	r.failed = done.Failed
	r.cache = done.Cache
	r.elapsedUs = done.ElapsedMicros
	st := r.store
	r.mu.Unlock()
	if st != nil {
		_ = st.persist()
	}
}

// isTerminal reports whether the batch can no longer change (and so may
// be evicted under capacity pressure).
func (r *batchRecord) isTerminal() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status != "queued" && r.status != "running"
}

// snapshot renders the record as a poll response.
func (r *batchRecord) snapshot() BatchStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return BatchStatus{
		Batch:         r.id,
		Status:        r.status,
		Jobs:          r.jobs,
		Completed:     len(r.results),
		Failed:        r.failed,
		Results:       append([]ResultLine(nil), r.results...),
		Cache:         r.cache,
		ElapsedMicros: r.elapsedUs,
	}
}
