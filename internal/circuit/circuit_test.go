package circuit

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddValidation(t *testing.T) {
	c := New(3)
	c.H(0).CNOT(0, 1).CZ(1, 2)
	if c.NumGates() != 3 {
		t.Fatalf("NumGates = %d", c.NumGates())
	}
	mustPanic(t, func() { c.H(3) })
	mustPanic(t, func() { c.CZ(0, 0) })
	mustPanic(t, func() { c.CNOT(-1, 0) })
	mustPanic(t, func() { New(0) })
	mustPanic(t, func() { c.Add(Gate{Kind: CZ, Qubits: []int{1}}) })
	mustPanic(t, func() { c.Add(Gate{Kind: H, Qubits: []int{0, 1}}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestCounts(t *testing.T) {
	c := New(4)
	c.H(0).H(1).CNOT(0, 1).CZ(2, 3).ISwap(0, 2)
	if c.TwoQubitGateCount() != 3 {
		t.Fatalf("TwoQubitGateCount = %d", c.TwoQubitGateCount())
	}
	if c.CountKind(H) != 2 || c.CountKind(CZ) != 1 {
		t.Fatal("CountKind wrong")
	}
	if c.IsNative() {
		t.Fatal("circuit with CNOT should not be native")
	}
}

func TestCloneIndependent(t *testing.T) {
	c := New(2)
	c.H(0).CNOT(0, 1)
	d := c.Clone()
	d.Gates[0].Qubits[0] = 1
	if c.Gates[0].Qubits[0] != 0 {
		t.Fatal("Clone shares qubit slices")
	}
	d.H(1)
	if c.NumGates() != 2 {
		t.Fatal("Clone shares gate slice")
	}
}

func TestASAPLayersSimple(t *testing.T) {
	// H(0) and H(1) parallel; CNOT(0,1) depends on both; H(0) after.
	c := New(2)
	c.H(0).H(1).CNOT(0, 1).H(0)
	layers := c.ASAPLayers()
	want := [][]int{{0, 1}, {2}, {3}}
	if !reflect.DeepEqual(layers, want) {
		t.Fatalf("layers = %v, want %v", layers, want)
	}
	if c.Depth() != 3 {
		t.Fatalf("Depth = %d", c.Depth())
	}
}

func TestASAPLayersDisjointGatesShareLayer(t *testing.T) {
	c := New(4)
	c.CZ(0, 1).CZ(2, 3)
	if d := c.Depth(); d != 1 {
		t.Fatalf("disjoint gates should share a layer, depth = %d", d)
	}
}

func TestCriticalityChain(t *testing.T) {
	// Chain on one qubit: criticality counts remaining gates.
	c := New(1)
	c.H(0).X(0).Y(0)
	crit := c.Criticality()
	if !reflect.DeepEqual(crit, []int{3, 2, 1}) {
		t.Fatalf("criticality = %v", crit)
	}
}

func TestCriticalityTwoQubit(t *testing.T) {
	// CNOT(0,1) then long chain on 1: gate 0 inherits chain criticality.
	c := New(3)
	c.CNOT(0, 1).H(1).H(1).H(2)
	crit := c.Criticality()
	if crit[0] != 3 { // CNOT + H + H
		t.Fatalf("crit[0] = %d, want 3", crit[0])
	}
	if crit[3] != 1 {
		t.Fatalf("independent gate criticality = %d, want 1", crit[3])
	}
}

func TestFrontierIssuesInDependencyOrder(t *testing.T) {
	c := New(2)
	c.H(0).CNOT(0, 1).H(1)
	f := NewFrontier(c)
	ready := f.Ready()
	if !reflect.DeepEqual(ready, []int{0}) {
		t.Fatalf("initial ready = %v", ready)
	}
	f.Issue(0)
	if got := f.Ready(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("after H: ready = %v", got)
	}
	f.Issue(1)
	f.Issue(2)
	if !f.Done() {
		t.Fatal("frontier not done after issuing all gates")
	}
}

func TestFrontierTwoQubitNeedsBothHeads(t *testing.T) {
	c := New(2)
	c.H(0).CZ(0, 1)
	f := NewFrontier(c)
	// CZ is head on qubit 1 but not on qubit 0 -> not ready.
	ready := f.Ready()
	if !reflect.DeepEqual(ready, []int{0}) {
		t.Fatalf("ready = %v, want [0]", ready)
	}
}

func TestFrontierPostponement(t *testing.T) {
	c := New(4)
	c.CZ(0, 1).CZ(2, 3)
	f := NewFrontier(c)
	ready := f.Ready()
	if len(ready) != 2 {
		t.Fatalf("both CZs should be ready, got %v", ready)
	}
	// Postpone gate 0, issue only gate 1.
	f.Issue(1)
	if got := f.Ready(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("postponed gate should stay ready, got %v", got)
	}
	f.Issue(0)
	if !f.Done() {
		t.Fatal("not done")
	}
}

func TestFrontierIssuePanics(t *testing.T) {
	c := New(2)
	c.H(0).CZ(0, 1)
	f := NewFrontier(c)
	mustPanic(t, func() { f.Issue(1) }) // dependencies unmet
	f.Issue(0)
	f.Issue(1)
	mustPanic(t, func() { f.Issue(1) }) // double issue
}

// randomCircuit builds an arbitrary circuit for property tests.
func randomCircuit(rng *rand.Rand, nQubits, nGates int) *Circuit {
	c := New(nQubits)
	for i := 0; i < nGates; i++ {
		if nQubits >= 2 && rng.Float64() < 0.4 {
			a := rng.Intn(nQubits)
			b := rng.Intn(nQubits)
			for b == a {
				b = rng.Intn(nQubits)
			}
			kinds := []Kind{CZ, ISwap, SqrtISwap, CNOT, SWAP}
			c.Add(Gate{Kind: kinds[rng.Intn(len(kinds))], Qubits: []int{a, b}})
		} else {
			kinds := []Kind{H, X, S, T, SX}
			c.Add(Gate{Kind: kinds[rng.Intn(len(kinds))], Qubits: []int{rng.Intn(nQubits)}})
		}
	}
	return c
}

// Property: greedily issuing every ready gate reproduces the ASAP layering.
func TestFrontierGreedyEqualsASAP(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 2+rng.Intn(5), 1+rng.Intn(30))
		var layers [][]int
		f := NewFrontier(c)
		for !f.Done() {
			ready := f.Ready()
			if len(ready) == 0 {
				return false // deadlock
			}
			// Ready's slice is the frontier's reusable buffer; copy to keep.
			layers = append(layers, append([]int(nil), ready...))
			for _, idx := range ready {
				f.Issue(idx)
			}
		}
		return reflect.DeepEqual(layers, c.ASAPLayers())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: issuing a random nonempty subset of ready gates each round still
// terminates with every gate issued exactly once (the queueing scheduler
// relies on this liveness).
func TestFrontierRandomSubsetsTerminate(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 2+rng.Intn(4), 1+rng.Intn(25))
		f := NewFrontier(c)
		issued := 0
		for rounds := 0; !f.Done(); rounds++ {
			if rounds > 1000 {
				return false
			}
			ready := f.Ready()
			if len(ready) == 0 {
				return false
			}
			// Issue a random nonempty prefix.
			k := 1 + rng.Intn(len(ready))
			for _, idx := range ready[:k] {
				f.Issue(idx)
				issued++
			}
		}
		return issued == c.NumGates() && f.Remaining() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: decomposition preserves gate dependencies — depth never
// decreases and the two-qubit interaction multiset (as unordered pairs) is
// preserved or expanded on the same pairs.
func TestDecomposePropertyPairsPreserved(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 2+rng.Intn(4), 1+rng.Intn(20))
		for _, s := range []DecomposeStrategy{Hybrid, PureCZ, PureISwap} {
			d := Decompose(c, s)
			if !d.IsNative() {
				return false
			}
			pairsBefore := interactionPairs(c)
			pairsAfter := interactionPairs(d)
			for pair := range pairsAfter {
				if !pairsBefore[pair] {
					return false // decomposition invented a new coupling
				}
			}
			for pair := range pairsBefore {
				if !pairsAfter[pair] {
					return false // decomposition dropped a coupling
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func interactionPairs(c *Circuit) map[[2]int]bool {
	pairs := make(map[[2]int]bool)
	for _, g := range c.Gates {
		if g.Kind.IsTwoQubit() {
			a, b := g.Qubits[0], g.Qubits[1]
			if a > b {
				a, b = b, a
			}
			pairs[[2]int{a, b}] = true
		}
	}
	return pairs
}
