package noise

import (
	"math"
	"testing"

	"fastsc/internal/circuit"
	"fastsc/internal/graph"
	"fastsc/internal/phys"
	"fastsc/internal/schedule"
	"fastsc/internal/topology"
)

// These tests pin the evaluator's channel arithmetic against hand-computed
// values on minimal synthetic schedules.

// lineSystem builds a 1-D chain with exactly known parameters (no
// fabrication spread) so channel inputs are deterministic.
func lineSystem(n int) *phys.System {
	p := phys.DefaultParams()
	p.OmegaSigma = 0
	return phys.NewSystem(topology.Linear(n), p, 1)
}

// makeSchedule assembles a one-slice schedule by hand.
func makeSchedule(sys *phys.System, slice schedule.Slice, compiled *circuit.Circuit) *schedule.Schedule {
	slice.Start = 0
	return &schedule.Schedule{
		System:    sys,
		Strategy:  "synthetic",
		Slices:    []schedule.Slice{slice},
		TotalTime: slice.Duration,
		Compiled:  compiled,
	}
}

func TestAmbientChannelArithmetic(t *testing.T) {
	// Two idle qubits on one coupler, 0.5 GHz apart, 30 ns: the ambient
	// error must equal the direct transfer plus weighted sidebands.
	sys := lineSystem(2)
	g0 := sys.G0ByID(0) // coupler 0 = Edges()[0], via the dense accessor
	ec := sys.Transmon(0).EC
	fu, fv := 5.2, 5.7
	tau := 30.0
	comp := circuit.New(2)
	comp.X(0) // some physical gate so usedQubits is nonempty
	s := makeSchedule(sys, schedule.Slice{
		Duration: tau,
		Freqs:    []float64{fu, fv},
		Gates:    []schedule.GateEvent{{Gate: comp.Gates[0], Duration: 25, Freq: fu}},
	}, comp)

	opt := DefaultOptions()
	opt.FluxNoiseSigma = 0
	opt.Gate1Error, opt.Gate2Error = 0, 0
	rep := Evaluate(s, opt)

	want := phys.TransitionProbability(g0, fu-fv, tau)
	want += opt.SidebandWeight * (phys.TransitionProbability(math.Sqrt2*g0, (fu-ec)-fv, tau) +
		phys.TransitionProbability(math.Sqrt2*g0, fu-(fv-ec), tau))
	if math.Abs(rep.AmbientError-want) > 1e-12 {
		t.Fatalf("ambient error %v, want %v", rep.AmbientError, want)
	}
	if rep.GateGateError != 0 || rep.SpectatorError != 0 {
		t.Fatal("no gate-gate or spectator channels expected")
	}
}

func TestSpectatorChannelArithmetic(t *testing.T) {
	// Chain 0-1-2: gate on (0,1) at 6.5 GHz, qubit 2 parked at 5.3:
	// exactly one spectator channel through coupler (1,2).
	sys := lineSystem(3)
	g0 := sys.G0ByID(1) // coupler 1 = Edges()[1]
	ec := sys.Transmon(1).EC
	fInt, fSpec := 6.5, 5.3
	tau := 40.0
	comp := circuit.New(3)
	comp.CZ(0, 1)
	gate := comp.Gates[0]
	s := makeSchedule(sys, schedule.Slice{
		Duration:       tau,
		Freqs:          []float64{fInt, fInt, fSpec},
		Gates:          []schedule.GateEvent{{Gate: gate, Duration: tau - 2, Freq: fInt}},
		ActiveCouplers: []graph.Edge{edge(0, 1)},
	}, comp)

	opt := DefaultOptions()
	opt.FluxNoiseSigma = 0
	opt.Gate1Error, opt.Gate2Error = 0, 0
	opt.DisableAmbient = true
	rep := Evaluate(s, opt)

	want := phys.TransitionProbability(g0, fInt-fSpec, tau)
	want += opt.SidebandWeight * (phys.TransitionProbability(math.Sqrt2*g0, (fInt-ec)-fSpec, tau) +
		phys.TransitionProbability(math.Sqrt2*g0, fInt-(fSpec-ec), tau))
	if math.Abs(rep.SpectatorError-want) > 1e-12 {
		t.Fatalf("spectator error %v, want %v", rep.SpectatorError, want)
	}
}

func TestGateGateChannelDistanceOne(t *testing.T) {
	// Chain 0-1-2-3: gates on (0,1) and (2,3) — crosstalk distance 1 via
	// coupler (1,2) — at 0.3 GHz separation.
	sys := lineSystem(4)
	f1, f2 := 6.4, 6.7
	tau := 35.0
	comp := circuit.New(4)
	comp.CZ(0, 1).CZ(2, 3)
	ev1 := schedule.GateEvent{Gate: comp.Gates[0], Duration: tau, Freq: f1}
	ev2 := schedule.GateEvent{Gate: comp.Gates[1], Duration: tau, Freq: f2}
	s := makeSchedule(sys, schedule.Slice{
		Duration:       tau,
		Freqs:          []float64{f1, f1, f2, f2},
		Gates:          []schedule.GateEvent{ev1, ev2},
		ActiveCouplers: []graph.Edge{edge(0, 1), edge(2, 3)},
	}, comp)

	opt := DefaultOptions()
	opt.FluxNoiseSigma = 0
	opt.Gate1Error, opt.Gate2Error = 0, 0
	opt.DisableAmbient = true

	rep := Evaluate(s, opt)
	g0 := sys.G0(0, 1)
	ec := sys.Transmon(0).EC
	wantGate := phys.TransitionProbability(g0, f1-f2, tau) +
		phys.TransitionProbability(math.Sqrt2*g0, (f1-f2)-ec, tau) +
		phys.TransitionProbability(math.Sqrt2*g0, (f1-f2)+ec, tau)
	if math.Abs(rep.GateGateError-wantGate) > 1e-12 {
		t.Fatalf("gate-gate error %v, want %v", rep.GateGateError, wantGate)
	}
}

func TestGateGateChannelDistanceTwoScaled(t *testing.T) {
	// Chain 0-1-2-3-4-5: gates on (0,1) and (3,4) are at crosstalk
	// distance 2; the coupling must be scaled by NextNeighborFactor.
	sys := lineSystem(6)
	f := 6.5
	tau := 35.0
	comp := circuit.New(6)
	comp.CZ(0, 1).CZ(3, 4)
	s := makeSchedule(sys, schedule.Slice{
		Duration: tau,
		Freqs:    []float64{f, f, 5.3, f, f, 5.3},
		Gates: []schedule.GateEvent{
			{Gate: comp.Gates[0], Duration: tau, Freq: f},
			{Gate: comp.Gates[1], Duration: tau, Freq: f},
		},
	}, comp)
	s.Slices[0].ActiveCouplers = []graph.Edge{edge(0, 1), edge(3, 4)}

	opt := DefaultOptions()
	opt.FluxNoiseSigma = 0
	opt.Gate1Error, opt.Gate2Error = 0, 0
	opt.DisableAmbient = true
	// Spectators also fire here (qubits 2, 5); isolate the gate-gate part.
	rep := Evaluate(s, opt)

	g0 := sys.G0(0, 1) * opt.NextNeighborFactor
	ec := sys.Transmon(0).EC
	want := phys.TransitionProbability(g0, 0, tau) +
		2*phys.TransitionProbability(math.Sqrt2*g0, ec, tau)
	if math.Abs(rep.GateGateError-want) > 1e-12 {
		t.Fatalf("distance-2 gate-gate error %v, want %v", rep.GateGateError, want)
	}
}

func TestGmonScalesChannels(t *testing.T) {
	// Same synthetic ambient slice, gmon with r = 0.5: the channel must
	// use r·g0.
	sys := lineSystem(2)
	fu, fv := 5.2, 5.7
	tau := 30.0
	comp := circuit.New(2)
	comp.X(0)
	s := makeSchedule(sys, schedule.Slice{
		Duration: tau,
		Freqs:    []float64{fu, fv},
		Gates:    []schedule.GateEvent{{Gate: comp.Gates[0], Duration: 25, Freq: fu}},
	}, comp)
	s.Gmon = true
	s.Residual = 0.5

	opt := DefaultOptions()
	opt.FluxNoiseSigma = 0
	opt.Gate1Error, opt.Gate2Error = 0, 0
	rep := Evaluate(s, opt)

	g0 := 0.5 * sys.G0(0, 1)
	ec := sys.Transmon(0).EC
	want := phys.TransitionProbability(g0, fu-fv, tau)
	want += opt.SidebandWeight * (phys.TransitionProbability(math.Sqrt2*g0, (fu-ec)-fv, tau) +
		phys.TransitionProbability(math.Sqrt2*g0, fu-(fv-ec), tau))
	if math.Abs(rep.AmbientError-want) > 1e-12 {
		t.Fatalf("gmon ambient error %v, want %v", rep.AmbientError, want)
	}
}

func TestDecoherenceArithmetic(t *testing.T) {
	sys := lineSystem(2)
	tau := 500.0
	comp := circuit.New(2)
	comp.X(0).X(1)
	s := makeSchedule(sys, schedule.Slice{
		Duration: tau,
		Freqs:    []float64{5.2, 5.7},
		Gates: []schedule.GateEvent{
			{Gate: comp.Gates[0], Duration: 25, Freq: 5.2},
			{Gate: comp.Gates[1], Duration: 25, Freq: 5.7},
		},
	}, comp)
	opt := DefaultOptions()
	opt.FluxNoiseSigma = 0
	rep := Evaluate(s, opt)
	eq := sys.Transmon(0).DecoherenceError(tau)
	want := 1 - (1-eq)*(1-eq)
	if math.Abs(rep.DecoherenceError-want) > 1e-12 {
		t.Fatalf("decoherence %v, want %v", rep.DecoherenceError, want)
	}
}

func edge(a, b int) graph.Edge { return graph.NewEdge(a, b) }
