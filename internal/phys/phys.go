// Package phys models the superconducting-transmon physics that the
// frequency-aware compiler relies on: flux-tunable qubit spectra (Fig 4),
// qubit-qubit coupling strength versus detuning (Fig 2, eq 5), Rabi
// population transfer and the resulting crosstalk error (eq 6), gate
// durations for the native iSWAP/√iSWAP/CZ set (Appendix B), and a direct
// two-transmon Schrödinger integrator used to reproduce the chevron patterns
// of Fig 15 and to cross-check the analytic formulas.
//
// # Units
//
// All frequencies are linear frequencies in GHz (what experimentalists quote
// as ω/2π), all times are in nanoseconds, and all fluxes are in units of the
// flux quantum Φ₀. Since 1 GHz · 1 ns = 1, a coupling g (GHz) drives an
// oscillation phase of 2π·g·t over t nanoseconds; the 2π factors are applied
// inside this package so callers never touch angular frequencies.
package phys

// Default hardware parameters, set to the realistic values used in the
// paper's evaluation (§VI-C) and its cited experimental literature
// (Krantz et al., Kjaergaard et al., Arute et al.).
const (
	// DefaultOmegaMax is the mean maximum (upper sweet spot) qubit
	// frequency in GHz. Fabrication variation is sampled around this mean.
	DefaultOmegaMax = 7.05
	// DefaultOmegaSigma is the fabrication standard deviation of the
	// maximum frequency (the paper samples Ω ~ N(ω, 0.1)).
	DefaultOmegaSigma = 0.1
	// DefaultEC is the transmon charging energy in GHz; the anharmonicity
	// is α = ω12 − ω01 ≈ −EC ≈ −200 MHz (§VI-C).
	DefaultEC = 0.200
	// DefaultAsymmetry is the junction asymmetry d of the asymmetric
	// transmon, which sets the lower sweet-spot frequency (Fig 4).
	DefaultAsymmetry = 0.48
	// DefaultG0 is the bare qubit-qubit coupling g₀/2π in GHz at the
	// reference frequency. The paper quotes couplings up to g/2π ≈ 30 MHz;
	// we default to 8 MHz, the value at which the always-on couplers of a
	// fixed-coupler chip leave a small ambient crosstalk floor (as in the
	// paper's evaluation, where idle qubits contribute little) while
	// keeping two-qubit gates in the realistic 25–40 ns range.
	DefaultG0 = 0.008
	// DefaultT1 is the relaxation time in ns.
	DefaultT1 = 20_000.0
	// DefaultT2 is the dephasing time in ns.
	DefaultT2 = 15_000.0
	// SingleQubitGateTime is the duration of a microwave-driven
	// single-qubit gate in ns.
	SingleQubitGateTime = 25.0
	// FluxRampTime is the overhead of retuning a qubit frequency in ns
	// (Appendix C: state-of-the-art flux control settles within ~2 ns).
	FluxRampTime = 2.0
)

// TwoPi is 2π, the conversion between linear (GHz) and angular frequency.
const TwoPi = 2 * 3.14159265358979323846

// Params bundles the device-level physical parameters from which a System
// is sampled. The zero value is not useful; start from DefaultParams.
type Params struct {
	OmegaMax   float64 // mean upper sweet-spot frequency, GHz
	OmegaSigma float64 // fabrication spread of OmegaMax, GHz
	EC         float64 // charging energy (≈ |anharmonicity|), GHz
	Asymmetry  float64 // junction asymmetry d ∈ (0,1)
	G0         float64 // bare coupling at reference frequency, GHz
	T1         float64 // relaxation time, ns
	T2         float64 // dephasing time, ns
}

// DefaultParams returns the paper's evaluation parameters.
func DefaultParams() Params {
	return Params{
		OmegaMax:   DefaultOmegaMax,
		OmegaSigma: DefaultOmegaSigma,
		EC:         DefaultEC,
		Asymmetry:  DefaultAsymmetry,
		G0:         DefaultG0,
		T1:         DefaultT1,
		T2:         DefaultT2,
	}
}
