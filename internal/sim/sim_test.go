package sim

import (
	"math"
	"testing"
	"testing/quick"

	"fastsc/internal/bench"
	"fastsc/internal/circuit"
	"fastsc/internal/phys"
	"fastsc/internal/schedule"
	"fastsc/internal/topology"
)

func TestNewStateIsGround(t *testing.T) {
	s := NewState(3)
	if p := s.Probability(0); p != 1 {
		t.Fatalf("P(|000⟩) = %v", p)
	}
	if n := s.Norm(); n != 1 {
		t.Fatalf("norm = %v", n)
	}
}

func TestNewStatePanics(t *testing.T) {
	for _, n := range []int{0, MaxQubits + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewState(%d) should panic", n)
				}
			}()
			NewState(n)
		}()
	}
}

func TestHadamardTwiceIsIdentity(t *testing.T) {
	s := NewState(2)
	h := circuit.Matrix1(circuit.H, 0)
	s.Apply1Q(h, 0)
	s.Apply1Q(h, 0)
	if p := s.Probability(0); math.Abs(p-1) > 1e-12 {
		t.Fatalf("HH|00⟩ should be |00⟩, P = %v", p)
	}
}

func TestBellState(t *testing.T) {
	c := circuit.New(2)
	c.H(0).CNOT(0, 1)
	s := RunIdeal(c)
	// |00⟩ index 0, |11⟩ index 3.
	if math.Abs(s.Probability(0)-0.5) > 1e-12 || math.Abs(s.Probability(3)-0.5) > 1e-12 {
		t.Fatalf("Bell state probabilities: %v %v %v %v",
			s.Probability(0), s.Probability(1), s.Probability(2), s.Probability(3))
	}
}

func TestQubitBitOrder(t *testing.T) {
	// X on qubit 0 of 3 should set the most significant bit: |100⟩ = 4.
	c := circuit.New(3)
	c.X(0)
	s := RunIdeal(c)
	if p := s.Probability(4); p != 1 {
		t.Fatalf("X(0)|000⟩: P(|100⟩) = %v", p)
	}
}

func TestISwapAction(t *testing.T) {
	// Paper convention: iSWAP|01⟩ = −i|10⟩.
	c := circuit.New(2)
	c.X(1) // |01⟩
	s := RunIdeal(c)
	s.Apply2Q(circuit.Matrix2Q(circuit.ISwap), 0, 1)
	if math.Abs(s.Probability(2)-1) > 1e-12 {
		t.Fatalf("iSWAP|01⟩ should have all population in |10⟩, got %v", s.Probability(2))
	}
	if math.Abs(imag(s.Amps[2])+1) > 1e-12 {
		t.Fatalf("iSWAP phase should be −i, amp = %v", s.Amps[2])
	}
}

func TestExcitedPopulation(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	s := RunIdeal(c)
	if p := s.ExcitedPopulation(0); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("H qubit excited pop = %v", p)
	}
	if p := s.ExcitedPopulation(1); p != 0 {
		t.Fatalf("idle qubit excited pop = %v", p)
	}
}

func TestFidelitySelf(t *testing.T) {
	c := circuit.New(3)
	c.H(0).CNOT(0, 1).RZ(2, 0.7)
	s := RunIdeal(c)
	if f := s.Fidelity(s); math.Abs(f-1) > 1e-12 {
		t.Fatalf("self fidelity = %v", f)
	}
	o := NewState(3)
	o.Apply1Q(circuit.Matrix1(circuit.X, 0), 0)
	if f := o.Fidelity(NewState(3)); f != 0 {
		t.Fatalf("orthogonal fidelity = %v", f)
	}
}

// Property: random circuits preserve the norm.
func TestUnitaryEvolutionPreservesNorm(t *testing.T) {
	prop := func(seed int64) bool {
		c := bench.QGAN(4, 2, seed)
		d := circuit.Decompose(c, circuit.Hybrid)
		s := RunIdeal(d)
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Decomposition end-to-end check: decomposed circuits produce the same
// state as the logical circuit up to global phase.
func TestDecomposedCircuitSameState(t *testing.T) {
	logical := circuit.New(3)
	logical.H(0).CNOT(0, 1).SWAP(1, 2).CNOT(2, 0)
	want := RunIdeal(logical)
	for _, strat := range []circuit.DecomposeStrategy{circuit.Hybrid, circuit.PureCZ, circuit.PureISwap} {
		got := RunIdeal(circuit.Decompose(logical, strat))
		if f := want.Fidelity(got); math.Abs(f-1) > 1e-9 {
			t.Fatalf("strategy %v: fidelity to logical state = %v", strat, f)
		}
	}
}

func compileFor(t *testing.T, strategy string, c *circuit.Circuit, sys *phys.System) *schedule.Schedule {
	t.Helper()
	s, err := schedule.ByName(strategy).Compile(nil, c, sys, schedule.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunNoisyNoNoiseIsPerfect(t *testing.T) {
	sys := phys.NewSystem(topology.Grid(2, 2), phys.DefaultParams(), 1)
	c := bench.XEB(sys.Device, 3, 1)
	s := compileFor(t, "ColorDynamic", c, sys)
	res := RunNoisy(s, TrajectoryOptions{
		Shots: 5, Seed: 1,
		DisableCrosstalk: true, DisableDecoherence: true,
	})
	if math.Abs(res.MeanFidelity-1) > 1e-9 {
		t.Fatalf("noiseless trajectories should be perfect, got %v", res.MeanFidelity)
	}
}

func TestRunNoisyDegradesWithNoise(t *testing.T) {
	sys := phys.NewSystem(topology.Grid(2, 2), phys.DefaultParams(), 1)
	c := bench.XEB(sys.Device, 6, 1)
	s := compileFor(t, "ColorDynamic", c, sys)
	res := RunNoisy(s, DefaultTrajectoryOptions(7))
	if res.MeanFidelity >= 1 {
		t.Fatalf("noisy fidelity should be below 1, got %v", res.MeanFidelity)
	}
	if res.MeanFidelity <= 0 {
		t.Fatalf("fidelity collapsed to %v", res.MeanFidelity)
	}
	if res.Shots != 200 {
		t.Fatalf("shots = %d", res.Shots)
	}
}

func TestRunNoisyDeterministicBySeed(t *testing.T) {
	sys := phys.NewSystem(topology.Grid(2, 2), phys.DefaultParams(), 1)
	c := bench.XEB(sys.Device, 3, 1)
	s := compileFor(t, "ColorDynamic", c, sys)
	opt := DefaultTrajectoryOptions(11)
	opt.Shots = 20
	r1 := RunNoisy(s, opt)
	r2 := RunNoisy(s, opt)
	if r1.MeanFidelity != r2.MeanFidelity {
		t.Fatal("same seed should reproduce the same estimate")
	}
}

func TestAmplitudeDampingDrivesToGround(t *testing.T) {
	// A long idle schedule should relax an excited qubit toward |0⟩.
	params := phys.DefaultParams()
	params.T1, params.T2 = 200, 150 // very short for the test
	sys := phys.NewSystem(topology.Grid(2, 2), params, 1)
	c := circuit.New(4)
	c.X(0)
	for i := 0; i < 40; i++ {
		c.X(1) // stretch the schedule with physical gates on another qubit
	}
	s := compileFor(t, "Baseline U", c, sys)
	opt := DefaultTrajectoryOptions(3)
	opt.Shots = 300
	opt.DisableCrosstalk = true
	opt.Gate1Error, opt.Gate2Error = 0, 0
	res := RunNoisy(s, opt)
	// Ideal state keeps qubit 0 excited; damping should push fidelity well
	// below 1 after ~5 T1.
	if res.MeanFidelity > 0.3 {
		t.Fatalf("fidelity after ~5·T1 idle = %v, want strong decay", res.MeanFidelity)
	}
}

func TestXYRotationUnitary(t *testing.T) {
	for _, theta := range []float64{0, 0.3, math.Pi / 4, math.Pi / 2} {
		m := xyRotation(theta)
		if !circuit.IsUnitary4(m, 1e-12) {
			t.Fatalf("xyRotation(%v) not unitary", theta)
		}
	}
	// Transfer probability check: start |01⟩, expect sin²θ in |10⟩.
	theta := 0.4
	s := NewState(2)
	s.Apply1Q(circuit.Matrix1(circuit.X, 0), 1)
	s.Apply2Q(xyRotation(theta), 0, 1)
	want := math.Sin(theta) * math.Sin(theta)
	if got := s.Probability(2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("transfer probability = %v, want %v", got, want)
	}
}
