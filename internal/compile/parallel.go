package compile

import (
	"sync"

	"fastsc/internal/smt"
)

// Intra-job parallelism. The batch engine (engine.go) spends the Context's
// worker budget across jobs; the helpers here let a single job borrow the
// *spare* part of that budget — Workers−1 tokens, the caller's own worker
// being the implicit first — for parallelism inside one compilation:
// fanning the independent components of a slice, speculatively evaluating
// SMT bisection probes, or running the pioneer slice prefetch. Borrowing
// is always non-blocking (a busy pool degrades to inline execution, never
// to waiting), so intra-job parallelism can never deadlock against the
// batch pool, and the worst-case goroutine count is bounded by roughly
// twice the budget: Workers pool workers plus Workers−1 borrowed slots.
//
// A Context with Workers <= 1 has no spare slots, and every helper
// degrades to strictly serial inline execution — the property the
// determinism benchmarks' "serial" variants and the parallel-vs-serial
// equivalence tests rely on.

// spareSlots is the lazily built intra-job worker semaphore of one
// Context. A nil channel means "no spare workers".
type spareSlots struct{ ch chan struct{} }

// slots returns the Context's spare-worker semaphore, building it (once)
// on first use; nil when the budget leaves no spare worker or the Context
// itself is nil.
func (c *Context) slots() chan struct{} {
	if c == nil {
		return nil
	}
	if s := c.spare.Load(); s != nil {
		return s.ch
	}
	s := &spareSlots{}
	if n := c.workers() - 1; n > 0 {
		s.ch = make(chan struct{}, n)
	}
	if !c.spare.CompareAndSwap(nil, s) {
		s = c.spare.Load()
	}
	return s.ch
}

// ForEach runs fn(0), fn(1), …, fn(n−1), fanning iterations across the
// Context's free spare workers and running the rest inline; it returns
// once every iteration has finished. Iterations may run concurrently and
// in any order, so fn must be safe for concurrent invocation and should
// write its result to a caller-owned slot indexed by i — which is what
// makes the fan-out deterministic regardless of scheduling. A panic in
// any iteration is re-raised in the caller after the remaining iterations
// drain. With no spare workers (nil Context, Workers <= 1) the loop is
// strictly serial and allocation-free.
func (c *Context) ForEach(n int, fn func(int)) {
	slots := c.slots()
	if slots == nil || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var panicked any
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicked == nil {
					panicked = r
				}
				panicMu.Unlock()
			}
		}()
		fn(i)
	}
	for i := 0; i < n; i++ {
		if i == n-1 {
			// The caller always runs the last iteration itself instead of
			// parking on the WaitGroup with work still undone.
			run(i)
			break
		}
		select {
		case slots <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-slots }()
				run(i)
			}(i)
		default:
			run(i)
		}
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// parallelFor adapts the Context's spare-worker fan-out to the smt
// package's ParallelFor callback. It returns nil — keeping smt.SolveWith
// on its allocation-free strictly serial path — when the Context has no
// spare workers at all (nil Context or Workers <= 1).
func (c *Context) parallelFor() smt.ParallelFor {
	if c.slots() == nil {
		return nil
	}
	return c.ForEach
}

// TrySpawn runs fn on a spare worker if one is free right now, holding the
// slot for fn's whole duration, and reports whether it spawned. It never
// blocks: when no slot is free (or the Context has no spare budget) it
// returns false without running fn, and the caller proceeds without the
// background work. fn is responsible for its own panic handling — a panic
// escaping fn crashes the process like any unguarded goroutine.
func (c *Context) TrySpawn(fn func()) bool {
	slots := c.slots()
	if slots == nil {
		return false
	}
	select {
	case slots <- struct{}{}:
		go func() {
			defer func() { <-slots }()
			fn()
		}()
		return true
	default:
		return false
	}
}
