// Fixture for the keyfields analyzer, checked against the testdata-local
// schema table in keyfields_test.go: Good matches its pinned layout,
// Drifted gained a field, Missing lost one, NotStruct is pinned as a
// struct but is not one, and the schema also pins an Absent type this
// package never declares (reported at the package clause below).
package keyfields // want `keyfields: key schema pins .*\.Absent \(hashed by fixtureKey\) but this package declares no such type`

type Good struct {
	A int
	B string
}

type Drifted struct { // want `keyfields: Drifted gained field\(s\) Extra not enumerated in the key schema`
	X     int
	Extra int
}

type Missing struct { // want `keyfields: Missing lost field "Gone", which fixtureKey was written against`
	Y int
}

type NotStruct int // want `keyfields: key schema pins NotStruct as a struct hashed by fixtureKey, but it is int`

// Reordered pins the schema's set semantics: the enumeration order in the
// schema table need not match declaration order — only membership drifts
// (gained or lost fields) are findings.
type Reordered struct {
	Earlier int
	Later   int
}

// Unexported structs resolve through the same scope lookup as exported
// ones — the production table pins the snapshot codec shapes
// (compile.diskSnapshot, compile.persistedRoute), which are unexported.
type pinnedCodec struct {
	Blob []byte
	Ver  int
}

type driftedCodec struct { // want `keyfields: driftedCodec gained field\(s\) Extra not enumerated in the key schema`
	Blob  []byte
	Extra int
}
