package circuit

import (
	"math"
	"math/cmplx"
	"testing"
)

var allSingleQubitKinds = []Kind{I, X, Y, Z, H, S, Sdg, T, Tdg, SX, SY, SW, RX, RY, RZ}
var allTwoQubitKinds = []Kind{CZ, ISwap, SqrtISwap, CNOT, SWAP}

func TestAllSingleQubitMatricesUnitary(t *testing.T) {
	for _, k := range allSingleQubitKinds {
		m := Matrix1(k, 0.7)
		if !IsUnitary2(m, 1e-12) {
			t.Errorf("%v matrix not unitary", k)
		}
	}
}

func TestAllTwoQubitMatricesUnitary(t *testing.T) {
	for _, k := range allTwoQubitKinds {
		if !IsUnitary4(Matrix2Q(k), 1e-12) {
			t.Errorf("%v matrix not unitary", k)
		}
	}
}

func TestKindPredicates(t *testing.T) {
	for _, k := range allSingleQubitKinds {
		if k.IsTwoQubit() {
			t.Errorf("%v misclassified as two-qubit", k)
		}
		if !k.IsNative() {
			t.Errorf("single-qubit %v should be native", k)
		}
	}
	for _, k := range allTwoQubitKinds {
		if !k.IsTwoQubit() {
			t.Errorf("%v misclassified as single-qubit", k)
		}
	}
	if CNOT.IsNative() || SWAP.IsNative() {
		t.Error("CNOT/SWAP must not be native")
	}
	if !CZ.IsNative() || !ISwap.IsNative() || !SqrtISwap.IsNative() {
		t.Error("CZ/iSWAP/√iSWAP must be native")
	}
}

func eq2UpToPhase(a, b Mat2, tol float64) bool {
	var tr complex128
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			tr += cmplx.Conj(a[j][i]) * b[j][i]
		}
	}
	return math.Abs(cmplx.Abs(tr)-2) < tol
}

func TestSqrtGatesSquare(t *testing.T) {
	if !eq2UpToPhase(Mul2(Matrix1(SX, 0), Matrix1(SX, 0)), Matrix1(X, 0), 1e-9) {
		t.Error("SX² != X")
	}
	if !eq2UpToPhase(Mul2(Matrix1(SY, 0), Matrix1(SY, 0)), Matrix1(Y, 0), 1e-9) {
		t.Error("SY² != Y")
	}
	// SW² = W = (X+Y)/√2 = [[0, (1−i)/√2], [(1+i)/√2, 0]].
	sq := complex(1/math.Sqrt2, 0)
	w := Mat2{
		{0, sq * complex(1, -1)},
		{sq * complex(1, 1), 0},
	}
	if !eq2UpToPhase(Mul2(Matrix1(SW, 0), Matrix1(SW, 0)), w, 1e-9) {
		t.Error("SW² != (X+Y)/√2")
	}
}

func TestRotationLimits(t *testing.T) {
	if !eq2UpToPhase(Matrix1(RX, math.Pi), Matrix1(X, 0), 1e-9) {
		t.Error("RX(π) != X up to phase")
	}
	if !eq2UpToPhase(Matrix1(RY, math.Pi), Matrix1(Y, 0), 1e-9) {
		t.Error("RY(π) != Y up to phase")
	}
	if !eq2UpToPhase(Matrix1(RZ, math.Pi), Matrix1(Z, 0), 1e-9) {
		t.Error("RZ(π) != Z up to phase")
	}
	if !eq2UpToPhase(Matrix1(RZ, math.Pi/2), Matrix1(S, 0), 1e-9) {
		t.Error("RZ(π/2) != S up to phase")
	}
}

func TestSqrtISwapSquares(t *testing.T) {
	sq := Matrix2Q(SqrtISwap)
	if !EqualUpToGlobalPhase4(Mul4(sq, sq), Matrix2Q(ISwap), 1e-9) {
		t.Error("(√iSWAP)² != iSWAP")
	}
}

func TestISwapPaperConvention(t *testing.T) {
	m := Matrix2Q(ISwap)
	if m[1][2] != complex(0, -1) || m[2][1] != complex(0, -1) {
		t.Errorf("iSWAP off-diagonals should be -i (paper convention), got %v, %v", m[1][2], m[2][1])
	}
}

func TestMatrix1PanicsOnTwoQubitKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Matrix1(CZ) did not panic")
		}
	}()
	Matrix1(CZ, 0)
}

func TestMatrix2QPanicsOnSingleQubitKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Matrix2Q(H) did not panic")
		}
	}()
	Matrix2Q(H)
}

func TestGateString(t *testing.T) {
	g := Gate{Kind: CZ, Qubits: []int{2, 3}}
	if s := g.String(); s != "cz(2,3)" {
		t.Errorf("String = %q", s)
	}
	r := Gate{Kind: RX, Qubits: []int{5}, Theta: math.Pi}
	if s := r.String(); s != "rx(3.1416)(5)" {
		t.Errorf("String = %q", s)
	}
}

func TestGateOn(t *testing.T) {
	g := Gate{Kind: CZ, Qubits: []int{2, 3}}
	if !g.On(2) || !g.On(3) || g.On(4) {
		t.Error("On misreports membership")
	}
}

func TestSwap4Conjugation(t *testing.T) {
	// Swapping qubit roles of CNOT turns control into target.
	sw := Swap4(Matrix2Q(CNOT))
	// CNOT with control=second qubit: |01⟩→|11⟩, |11⟩→|01⟩.
	want := Mat4{{1, 0, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}, {0, 1, 0, 0}}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if sw[i][j] != want[i][j] {
				t.Fatalf("Swap4(CNOT)[%d][%d] = %v, want %v", i, j, sw[i][j], want[i][j])
			}
		}
	}
	// CZ and SWAP are symmetric.
	for _, k := range []Kind{CZ, ISwap, SqrtISwap, SWAP} {
		m := Matrix2Q(k)
		s := Swap4(m)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if cmplx.Abs(m[i][j]-s[i][j]) > 1e-12 {
					t.Fatalf("%v should be symmetric under qubit exchange", k)
				}
			}
		}
	}
}
