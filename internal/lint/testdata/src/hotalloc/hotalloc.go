// Fixture for the hotalloc analyzer: //fastsc:hotpath functions may not
// allocate maps, call fmt, or implicitly box non-pointer values; panic
// subtrees, pointer-shaped conversions and unannotated functions are out
// of scope.
package hotalloc

import "fmt"

func sink(v any) { _ = v }

//fastsc:hotpath fixture
func hotMapLit() map[string]int {
	return map[string]int{"a": 1} // want `hotalloc: map literal allocates`
}

//fastsc:hotpath fixture
func hotMakeMap(n int) int {
	m := make(map[int]int, n) // want `hotalloc: make\(map\) allocates`
	return len(m)
}

//fastsc:hotpath fixture
func hotFmt(x int) string {
	return fmt.Sprintf("%d", x) // want `hotalloc: fmt\.Sprintf on a hot path`
}

//fastsc:hotpath fixture
func hotArgBox(x int) {
	sink(x) // want `hotalloc: implicit boxing: int passed to interface parameter`
}

//fastsc:hotpath fixture
func hotReturnBox(x int) any {
	return x // want `hotalloc: implicit boxing: int returned as interface`
}

//fastsc:hotpath fixture
func hotAppendBox(vals []any, x int) []any {
	return append(vals, x) // want `hotalloc: implicit boxing: int appended as interface`
}

//fastsc:hotpath fixture
func hotAssignBox(x int) {
	var v any
	v = x // want `hotalloc: implicit boxing: int assigned to interface`
	_ = v
}

//fastsc:hotpath fixture
func hotPtr(p *int) {
	sink(p) // pointer-shaped: fits the interface word, not flagged
}

//fastsc:hotpath fixture
func hotPanic(x int) int {
	if x < 0 {
		panic(fmt.Sprintf("negative: %d", x)) // panic path is cold: not flagged
	}
	return x
}

//fastsc:hotpath fixture
func hotClosure(xs []int) error {
	less := func(i, j int) bool {
		return xs[i] < xs[j] // closure's own bool result: not boxing into error
	}
	_ = less(0, 0)
	return nil
}

func coldMap() map[string]int {
	return map[string]int{"a": 1} // unannotated: not checked
}

// solution mirrors the shape of the scheduler's per-component results: the
// merge- and scan-shaped fixtures below pin the analyzer's behavior on the
// component-merge and parallel-probe hot paths.
type solution struct {
	colors []int32
	counts []int
}

//fastsc:hotpath fixture
func hotMergeClean(sols []solution, span int) []int32 {
	merged := make([]int32, span) // slices are fine on hot paths
	var k int
	for i := range sols {
		if len(sols[i].counts) > k {
			k = len(sols[i].counts)
		}
		for v, c := range sols[i].colors {
			if c >= 0 {
				merged[v] = c
			}
		}
	}
	return merged
}

//fastsc:hotpath fixture
func hotMergeMap(sols []solution) map[int]int {
	counts := make(map[int]int) // want `hotalloc: make\(map\) allocates`
	for i := range sols {
		for c, n := range sols[i].counts {
			counts[c] += n
		}
	}
	return counts
}

//fastsc:hotpath fixture
func hotScanClean(deltas *[3]float64, ok *[3]bool, par func(int, func(int))) {
	par(3, func(i int) {
		ok[i] = deltas[i] > 0 // closure does arithmetic only: not flagged
	})
}

//fastsc:hotpath fixture
func hotScanBoxInClosure(deltas *[3]float64, par func(int, func(int))) {
	par(3, func(i int) {
		sink(deltas[i]) // want `hotalloc: implicit boxing: float64 passed to interface parameter`
	})
}
