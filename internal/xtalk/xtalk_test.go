package xtalk

import (
	"reflect"
	"testing"
	"testing/quick"

	"fastsc/internal/graph"
	"fastsc/internal/topology"
)

func TestBuildPanicsOnBadDistance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build with d=0 did not panic")
		}
	}()
	Build(topology.Grid(2, 2), 0)
}

func TestBuildLinearChain(t *testing.T) {
	// Path 0-1-2-3: couplers (0,1),(1,2),(2,3).
	// d=1: (0,1)-(1,2) share vertex; (0,1)-(2,3) at edge distance 1 -> also
	// adjacent. So the crosstalk graph is K3.
	x := Build(topology.Linear(4), 1)
	if x.G.NumNodes() != 3 {
		t.Fatalf("crosstalk vertices = %d, want 3", x.G.NumNodes())
	}
	if x.G.NumEdges() != 3 {
		t.Fatalf("crosstalk edges = %d, want 3 (K3)", x.G.NumEdges())
	}
}

func TestBuildLongerChainDistance(t *testing.T) {
	// Path of 6 qubits: couplers e0..e4. With d=1, e0=(0,1) conflicts with
	// e1 (shared) and e2 (distance 1) but NOT e3 (distance 2).
	x := Build(topology.Linear(6), 1)
	v0, _ := x.VertexOf(0, 1)
	v3, _ := x.VertexOf(3, 4)
	if x.G.HasEdge(v0, v3) {
		t.Fatal("distance-2 couplers should not conflict at d=1")
	}
	// With d=2 they do.
	x2 := Build(topology.Linear(6), 2)
	if !x2.G.HasEdge(v0, v3) {
		t.Fatal("distance-2 couplers should conflict at d=2")
	}
}

func TestCrosstalkGraphDenserWithDistance(t *testing.T) {
	dev := topology.Grid(4, 4)
	m1 := Build(dev, 1).G.NumEdges()
	m2 := Build(dev, 2).G.NumEdges()
	if m2 <= m1 {
		t.Fatalf("d=2 crosstalk graph should be denser: %d <= %d", m2, m1)
	}
}

func TestMeshCrosstalkColoring(t *testing.T) {
	// The paper (Fig 7) colors the 2-D mesh crosstalk graph with 8 colors
	// (the minimum). Welsh–Powell is approximate; it must produce a valid
	// coloring with at least 8 and not absurdly many colors.
	for _, n := range []int{4, 5} {
		x := Build(topology.Grid(n, n), 1)
		c := graph.WelshPowell(x.G)
		if !c.Valid(x.G) {
			t.Fatalf("invalid coloring of %dx%d crosstalk graph", n, n)
		}
		k := c.NumColors()
		if k < 8 {
			t.Fatalf("%dx%d mesh crosstalk graph colored with %d < 8 colors; paper proves 8 is minimum", n, n, k)
		}
		if k > 12 {
			t.Fatalf("greedy used %d colors on %dx%d; expected near-optimal (8-12)", k, n, n)
		}
	}
}

func TestCrosstalkLocalized(t *testing.T) {
	// §IV-C2: crosstalk is localized — the max degree of the crosstalk
	// graph does not grow with mesh size.
	d5 := Build(topology.Grid(5, 5), 1).G.MaxDegree()
	d7 := Build(topology.Grid(7, 7), 1).G.MaxDegree()
	d9 := Build(topology.Grid(9, 9), 1).G.MaxDegree()
	if d7 != d9 || d5 > d7 {
		t.Fatalf("crosstalk degree should saturate: %d, %d, %d", d5, d7, d9)
	}
}

func TestVertexOf(t *testing.T) {
	x := Build(topology.Grid(2, 2), 1)
	if _, ok := x.VertexOf(0, 1); !ok {
		t.Fatal("coupler (0,1) missing")
	}
	if _, ok := x.VertexOf(0, 3); ok {
		t.Fatal("diagonal (0,3) should not be a coupler")
	}
	// Order-insensitive.
	v1, _ := x.VertexOf(0, 1)
	v2, _ := x.VertexOf(1, 0)
	if v1 != v2 {
		t.Fatal("VertexOf should normalize qubit order")
	}
}

func TestActiveSubgraph(t *testing.T) {
	// 2x3 grid: qubits 0-1-2 / 3-4-5. Gates on (0,1) and (4,5): couplers at
	// edge distance 1, so they conflict in the active subgraph.
	dev := topology.Grid(2, 3)
	x := Build(dev, 1)
	h := x.ActiveSubgraph([]graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(4, 5)})
	if h.NumNodes() != 2 {
		t.Fatalf("active subgraph nodes = %d", h.NumNodes())
	}
	if h.NumEdges() != 1 {
		t.Fatalf("couplers (0,1),(4,5) should conflict on a 2x3 grid, edges = %d", h.NumEdges())
	}
	// Unknown couplers ignored.
	h2 := x.ActiveSubgraph([]graph.Edge{graph.NewEdge(0, 5)})
	if h2.NumNodes() != 0 {
		t.Fatal("unknown coupler should be ignored")
	}
}

func TestConflictDegree(t *testing.T) {
	dev := topology.Grid(2, 3)
	x := Build(dev, 1)
	active := []graph.Edge{graph.NewEdge(4, 5)}
	if d := x.ConflictDegree(0, 1, active); d != 1 {
		t.Fatalf("ConflictDegree = %d, want 1", d)
	}
	if d := x.ConflictDegree(0, 1, nil); d != 0 {
		t.Fatalf("ConflictDegree with no active = %d", d)
	}
}

func TestNeighborsOfSymmetric(t *testing.T) {
	dev := topology.Grid(3, 3)
	x := Build(dev, 1)
	for _, e := range dev.Edges() {
		for _, f := range x.NeighborsOf(e.U, e.V) {
			found := false
			for _, back := range x.NeighborsOf(f.U, f.V) {
				if back == e {
					found = true
				}
			}
			if !found {
				t.Fatalf("crosstalk adjacency not symmetric: %v -> %v", e, f)
			}
		}
	}
}

func TestSpectators(t *testing.T) {
	dev := topology.Grid(3, 3)
	// Coupler (4,5): qubit 4 is the center (neighbors 1,3,5,7), qubit 5 has
	// neighbors 2,4,8. Spectators: 1,2,3,7,8.
	got := Spectators(dev, 4, 5)
	want := []int{1, 2, 3, 7, 8}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Spectators = %v, want %v", got, want)
	}
}

// Property: the crosstalk graph always contains the line graph (every
// shared-vertex pair is adjacent), and adjacency is monotone in d.
func TestCrosstalkContainsLineGraphProperty(t *testing.T) {
	prop := func(rRaw, cRaw uint8) bool {
		rows := int(rRaw%4) + 2
		cols := int(cRaw%4) + 2
		dev := topology.Grid(rows, cols)
		x1 := Build(dev, 1)
		lg, _ := graph.LineGraph(dev.Coupling)
		for _, e := range lg.Edges() {
			if !x1.G.HasEdge(e.U, e.V) {
				return false
			}
		}
		x2 := Build(dev, 2)
		for _, e := range x1.G.Edges() {
			if !x2.G.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestActiveComponents(t *testing.T) {
	// Path of 10 qubits, d=1: couplers e0..e8. Active couplers e0, e1 and
	// e5 split into two components — e0/e1 share qubit 1, while e5 sits at
	// edge distance 3 from e1, beyond d=1.
	x := Build(topology.Linear(10), 1)
	v0, _ := x.VertexOf(0, 1)
	v1, _ := x.VertexOf(1, 2)
	v5, _ := x.VertexOf(5, 6)
	want := [][]int{{v0, v1}, {v5}}
	if got := x.ActiveComponents([]int{v5, v1, v0}); !reflect.DeepEqual(got, want) {
		t.Fatalf("ActiveComponents = %v, want %v", got, want)
	}
}

func TestActiveComponentsMatchActiveSubgraph(t *testing.T) {
	// The components of the active vertex set must be exactly the
	// components of the subgraph ActiveSubgraph builds from the
	// corresponding couplers — the two entry points describe one graph.
	x := Build(topology.Grid(4, 4), 2)
	active := []graph.Edge{
		graph.NewEdge(0, 1), graph.NewEdge(2, 3),
		graph.NewEdge(12, 13), graph.NewEdge(14, 15),
	}
	verts := make([]int, 0, len(active))
	for _, e := range active {
		v, ok := x.VertexOf(e.U, e.V)
		if !ok {
			t.Fatalf("no coupler for %v", e)
		}
		verts = append(verts, v)
	}
	got := x.ActiveComponents(verts)
	want := x.ActiveSubgraph(active).Components()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ActiveComponents = %v, ActiveSubgraph components = %v", got, want)
	}
}
