package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fastsc/internal/core"
)

// TestGracefulDrain exercises the drain contract end to end: batches
// admitted before the drain — one running, one still queued for a compile
// slot — run to completion, new submissions are rejected with 503,
// read-only endpoints stay available, and Shutdown returns cleanly once
// the backlog empties.
func TestGracefulDrain(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1})
	gate := make(chan struct{})
	srv.startGate = func() { <-gate }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	submit := func() SubmitResponse {
		t.Helper()
		code, body := postJSON(t, ts, "/v1/batches", testRequest(core.ColorDynamic))
		if code != http.StatusAccepted {
			t.Fatalf("submit: status %d: %s", code, body)
		}
		var ack SubmitResponse
		if err := json.Unmarshal(body, &ack); err != nil {
			t.Fatal(err)
		}
		return ack
	}
	running := submit() // takes the only compile slot, blocks in the gate
	queued := submit()  // admitted, waiting for the slot

	deadline := time.Now().Add(10 * time.Second)
	for {
		var st BatchStatus
		getJSON(t, ts, running.URL, &st)
		if st.Status == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first batch never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}

	srv.Drain()

	// Readiness flips to draining immediately; liveness stays 200 — a
	// draining instance is rotated out of traffic, not restarted.
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("readyz while draining = %d %q", resp.StatusCode, body)
	}
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining = %d %q, want 200 (liveness only)", resp.StatusCode, body)
	}

	// New submissions — streaming and async — are refused with 503.
	for _, path := range []string{"/v1/batches", "/v1/compile"} {
		code, body := postJSON(t, ts, path, testRequest(core.ColorDynamic))
		if code != http.StatusServiceUnavailable {
			t.Fatalf("%s while draining: status %d, want 503 (%s)", path, code, body)
		}
	}

	// Read-only endpoints keep serving so clients can collect results.
	if code := getJSON(t, ts, "/v1/meta", nil); code != http.StatusOK {
		t.Fatalf("meta while draining: status %d", code)
	}
	var st BatchStatus
	if code := getJSON(t, ts, queued.URL, &st); code != http.StatusOK || st.Status == "done" {
		t.Fatalf("queued batch poll while draining: %d %+v", code, st)
	}

	// Shutdown blocks on the backlog...
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned %v with batches in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	// ...and completes once the gate releases the backlog. The queued
	// batch passes through the same gate after the running one.
	close(gate)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown = %v, want nil after a clean drain", err)
	}

	for _, ack := range []SubmitResponse{running, queued} {
		st := pollUntilDone(t, ts, ack.URL)
		if st.Failed != 0 || st.Completed != st.Jobs {
			t.Errorf("batch %s after drain: %+v", ack.Batch, st)
		}
	}
}

// TestShutdownTimeout: a Shutdown whose context expires before the
// backlog empties reports the interruption instead of hanging.
func TestShutdownTimeout(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1})
	gate := make(chan struct{})
	srv.startGate = func() { <-gate }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := postJSON(t, ts, "/v1/batches", testRequest(core.ColorDynamic))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Fatalf("Shutdown = nil, want context error with a blocked batch")
	}
	close(gate) // let the blocked batch finish so the test server can close
	srv.wg.Wait()
}

// TestDrainIdempotent: draining twice and shutting down an idle server
// are both no-ops.
func TestDrainIdempotent(t *testing.T) {
	srv := New(Config{})
	srv.Drain()
	srv.Drain()
	if !srv.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown idle = %v", err)
	}
}
