package phys

import (
	"fmt"
	"math/rand"

	"fastsc/internal/topology"
)

// System is a fully characterized device: the topology plus one Transmon per
// qubit (with fabrication spread applied) and one bare coupling strength per
// coupler. It is the hardware description consumed by the compiler.
type System struct {
	Device *topology.Device
	Qubits []Transmon // indexed by qubit id
	// Coupling holds the bare g₀ per coupler in GHz, indexed by the dense
	// coupler id of Device.Coupling.EdgeID — i.e. the coupler's position in
	// Device.Edges(). The flat layout makes G0 a binary-search edge-id
	// lookup and G0ByID a direct index, with zero map probes on the
	// compile hot path.
	Coupling []float64
	Params   Params
}

// NewSystem samples a System from the given parameters. Maximum frequencies
// are drawn from N(OmegaMax, OmegaSigma²) — the paper's model of fabrication
// variation and initial detuning (§VI-C) — using the provided seed, so a
// fixed seed reproduces the same chip.
func NewSystem(dev *topology.Device, p Params, seed int64) *System {
	rng := rand.New(rand.NewSource(seed))
	qubits := make([]Transmon, dev.Qubits)
	for q := range qubits {
		qubits[q] = Transmon{
			OmegaMax:  p.OmegaMax + p.OmegaSigma*rng.NormFloat64(),
			EC:        p.EC,
			Asymmetry: p.Asymmetry,
			T1:        p.T1,
			T2:        p.T2,
		}
	}
	coupling := make([]float64, dev.Coupling.NumEdges())
	for i := range coupling {
		coupling[i] = p.G0
	}
	return &System{Device: dev, Qubits: qubits, Coupling: coupling, Params: p}
}

// DefaultSystem builds a System with DefaultParams and a fixed seed derived
// from the device name, convenient for examples and tests.
func DefaultSystem(dev *topology.Device) *System {
	var seed int64 = 1
	for _, r := range dev.Name {
		seed = seed*31 + int64(r)
	}
	return NewSystem(dev, DefaultParams(), seed)
}

// G0 returns the bare coupling of the coupler between qubits a and b,
// resolved through the device's dense edge index (a binary search over the
// smaller endpoint's neighbor slice — no map probe). It panics if the
// qubits are not coupled: callers must only ask about physical couplers,
// and an uncoupled pair reaching this lookup is a compiler bug, not a
// recoverable condition.
//
//fastsc:hotpath gate-duration and noise math resolve couplings per gate; the panic path is the only formatting allowed here
func (s *System) G0(a, b int) float64 {
	id, ok := s.Device.Coupling.EdgeID(a, b)
	if !ok {
		panic(fmt.Sprintf("phys: qubits %d and %d are not coupled", a, b))
	}
	return s.Coupling[id]
}

// G0ByID returns the bare coupling of the coupler with the given dense id
// (its position in Device.Edges()). Hot loops that already hold a coupler
// id — static palettes, crosstalk weights, noise channels iterating
// Device.Edges() — use this to skip even the edge-id binary search. It
// panics (slice bounds) on ids outside [0, NumEdges).
//
//fastsc:hotpath direct dense-slice index; must stay alloc- and probe-free
func (s *System) G0ByID(id int32) float64 { return s.Coupling[id] }

// Transmon returns the transmon parameters of qubit q.
func (s *System) Transmon(q int) Transmon { return s.Qubits[q] }

// CommonRange returns the intersection of all qubits' tunable ranges —
// frequencies every qubit on the chip can reach.
func (s *System) CommonRange() (lo, hi float64) {
	lo, hi = 0, 1e18
	for _, t := range s.Qubits {
		l, h := t.TunableRange()
		if l > lo {
			lo = l
		}
		if h < hi {
			hi = h
		}
	}
	return lo, hi
}

// MeanAnharmonicity returns the average anharmonicity α (GHz, negative).
func (s *System) MeanAnharmonicity() float64 {
	if len(s.Qubits) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range s.Qubits {
		sum += t.Anharmonicity()
	}
	return sum / float64(len(s.Qubits))
}
