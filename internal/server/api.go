package server

import (
	"fmt"
	"slices"
	"time"

	"fastsc/internal/circuit"
	"fastsc/internal/compile"
	"fastsc/internal/core"
	"fastsc/internal/mapping"
	"fastsc/internal/phys"
	"fastsc/internal/qasm"
	"fastsc/internal/schedule"
	"fastsc/internal/topology"
)

// CompileRequest is the body of POST /v1/compile and POST /v1/batches: a
// named device, shared compilation options, and one job per (circuit,
// strategy) pair. Circuits arrive either as OpenQASM 2.0 source or in the
// native gate-list form; exactly one of the two must be set per job.
type CompileRequest struct {
	Device  DeviceSpec  `json:"device"`
	Options OptionsSpec `json:"options"`
	Jobs    []JobSpec   `json:"jobs"`
	// Workers caps this request's worker budget below the server's
	// per-request default; 0 keeps the default.
	Workers int `json:"workers,omitempty"`
	// Verbose includes per-slice frequency detail in every result.
	Verbose bool `json:"verbose,omitempty"`
	// DeadlineMS is the batch's deadline in milliseconds from arrival; 0
	// means none. Work not started by the deadline is abandoned with a
	// typed not-started error instead of occupying a compile slot, and an
	// expired batch waiting in the admission queue is shed first.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Priority orders admission: 0 (lowest) to 9; omitted selects
	// DefaultPriority. When the queue is full, an arriving batch may shed
	// a queued batch of strictly lower priority; equal priorities are FIFO
	// and running batches are never preempted.
	Priority *int `json:"priority,omitempty"`
}

// DeviceSpec names the target chip: a topology spec (see
// topology.FromSpec), its qubit count, and the fabrication seed that fixes
// the simulated calibration draw (defaults to 42, the CLIs' default).
type DeviceSpec struct {
	Topology string `json:"topology"`
	Qubits   int    `json:"qubits"`
	Seed     *int64 `json:"seed,omitempty"`
}

// OptionsSpec tunes the shared compilation pipeline; the zero value is the
// paper's defaults (identity placement, greedy router, 2 colors, d = 2).
type OptionsSpec struct {
	Placement string  `json:"placement,omitempty"`
	Router    string  `json:"router,omitempty"`
	Window    int     `json:"window,omitempty"`
	Decay     float64 `json:"decay,omitempty"`
	MaxColors int     `json:"max_colors,omitempty"`
	Distance  int     `json:"distance,omitempty"`
	Residual  float64 `json:"residual,omitempty"`
}

// JobSpec is one compilation job: a circuit (QASM or native) under one
// Table I strategy (default ColorDynamic). IDs default to "job-<index>"
// and identify results within the batch.
type JobSpec struct {
	ID       string       `json:"id,omitempty"`
	Strategy string       `json:"strategy,omitempty"`
	QASM     string       `json:"qasm,omitempty"`
	Circuit  *CircuitSpec `json:"circuit,omitempty"`
}

// CircuitSpec is the native circuit wire form: a qubit count and an
// ordered gate list.
type CircuitSpec struct {
	Qubits int        `json:"qubits"`
	Gates  []GateSpec `json:"gates"`
}

// GateSpec is one gate: the lowercase mnemonic of circuit.Kind ("h", "cz",
// "rx", ...), its operand qubits, and the angle for rotation gates.
type GateSpec struct {
	Op     string  `json:"op"`
	Qubits []int   `json:"qubits"`
	Theta  float64 `json:"theta,omitempty"`
}

// ResultLine is one NDJSON line of a result stream (type "result" or
// "error"); poll responses carry the same shape in their results array.
type ResultLine struct {
	Type     string        `json:"type"`
	ID       string        `json:"id"`
	Index    int           `json:"index"`
	Strategy string        `json:"strategy"`
	Error    string        `json:"error,omitempty"`
	Result   *ResultDetail `json:"result,omitempty"`
}

// ResultDetail is the compiled-schedule summary of one successful job —
// the fields cmd/fastsc prints, in wire form.
type ResultDetail struct {
	Success          float64       `json:"success"`
	CrosstalkError   float64       `json:"crosstalk_error"`
	DecoherenceError float64       `json:"decoherence_error"`
	IntrinsicError   float64       `json:"intrinsic_error"`
	Depth            int           `json:"depth"`
	CompiledDepth    int           `json:"compiled_depth"`
	TotalNs          float64       `json:"total_ns"`
	MaxColorsUsed    int           `json:"max_colors_used"`
	SwapCount        int           `json:"swap_count"`
	CompileMicros    int64         `json:"compile_us"`
	Slices           []SliceDetail `json:"slices,omitempty"`
}

// SliceDetail is one schedule slice (Verbose requests only).
type SliceDetail struct {
	StartNs    float64      `json:"start_ns"`
	DurationNs float64      `json:"duration_ns"`
	Colors     int          `json:"colors"`
	Gates      []GateDetail `json:"gates"`
}

// GateDetail is one scheduled gate; Freq is the interaction frequency of
// two-qubit gates (GHz), omitted for single-qubit gates.
type GateDetail struct {
	Gate string  `json:"gate"`
	Freq float64 `json:"freq_ghz,omitempty"`
}

// DoneLine terminates every result stream: job totals plus the
// request-scoped cache report.
type DoneLine struct {
	Type          string       `json:"type"` // "done"
	Batch         string       `json:"batch,omitempty"`
	Jobs          int          `json:"jobs"`
	Failed        int          `json:"failed"`
	ElapsedMicros int64        `json:"elapsed_us"`
	Cache         *CacheReport `json:"cache"`
}

// CacheReport is the request-scoped cache accounting of one batch: totals,
// the derived hit rate, and the per-region split. Misses count computes
// this request actually performed — a lookup served by another request's
// in-flight computation records a hit (see compile.Recorder).
type CacheReport struct {
	Hits     uint64                 `json:"hits"`
	WarmHits uint64                 `json:"warm_hits,omitempty"`
	Misses   uint64                 `json:"misses"`
	HitRate  float64                `json:"hit_rate"`
	Regions  map[string]RegionStats `json:"regions"`
}

// RegionStats is one cache region's request-scoped counters. WarmHits
// counts lookups served by the attached read-only warm set (tier 3).
type RegionStats struct {
	Hits     uint64 `json:"hits"`
	WarmHits uint64 `json:"warm_hits,omitempty"`
	Misses   uint64 `json:"misses"`
}

// SubmitResponse acknowledges an async POST /v1/batches submission.
type SubmitResponse struct {
	Batch  string `json:"batch"`
	Status string `json:"status"`
	Jobs   int    `json:"jobs"`
	URL    string `json:"url"`
}

// BatchStatus is the poll response of GET /v1/batches/{id}. Status is
// "queued" or "running" while live; terminal states are "done", "expired"
// (deadline passed), "shed" (evicted for higher-priority work), "canceled"
// (submission aborted), and "interrupted" (the daemon restarted while the
// batch was in flight; its results are whatever had been persisted).
type BatchStatus struct {
	Batch         string       `json:"batch"`
	Status        string       `json:"status"`
	Jobs          int          `json:"jobs"`
	Completed     int          `json:"completed"`
	Failed        int          `json:"failed"`
	Results       []ResultLine `json:"results"`
	Cache         *CacheReport `json:"cache,omitempty"`
	ElapsedMicros int64        `json:"elapsed_us,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// MetaResponse enumerates the vocabulary the API accepts.
type MetaResponse struct {
	Strategies []string `json:"strategies"`
	Topologies []string `json:"topologies"`
	Placements []string `json:"placements"`
	Routers    []string `json:"routers"`
}

// DefaultDeviceSeed seeds the simulated fabrication draw when a request
// omits device.seed, matching the CLIs' -device-seed default.
const DefaultDeviceSeed = 42

// DefaultPriority is the admission priority of a request that omits
// "priority" — the middle of the 0..9 range, so callers can go both up
// and down from the default.
const DefaultPriority = 5

// MaxPriority is the highest admission priority.
const MaxPriority = 9

// apiError is an error with an HTTP status; retryAfter, when non-zero,
// becomes a Retry-After header (seconds).
type apiError struct {
	status     int
	msg        string
	retryAfter int
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: 400, msg: fmt.Sprintf(format, args...)}
}

// parsedBatch is a validated CompileRequest, ready for the batch engine.
type parsedBatch struct {
	jobs    []core.BatchJob
	ids     []string
	sys     *phys.System
	verbose bool
	workers int
	// prio is the admission priority (0..9, DefaultPriority when omitted).
	prio int
	// deadlineAt is the absolute batch deadline, fixed at parse time from
	// deadline_ms; zero means none.
	deadlineAt time.Time
}

// parseRequest validates a CompileRequest and resolves it against the
// server's system cache. All validation happens here, before admission, so
// a malformed request is rejected with a 400 without consuming a compile
// slot.
func (s *Server) parseRequest(req *CompileRequest) (*parsedBatch, *apiError) {
	if len(req.Jobs) == 0 {
		return nil, badRequest("request has no jobs")
	}
	if max := s.cfg.MaxJobs; len(req.Jobs) > max {
		return nil, badRequest("request has %d jobs, limit is %d", len(req.Jobs), max)
	}
	if req.DeadlineMS < 0 {
		return nil, badRequest("deadline_ms must be >= 0, got %d", req.DeadlineMS)
	}
	prio := DefaultPriority
	if req.Priority != nil {
		prio = *req.Priority
		if prio < 0 || prio > MaxPriority {
			return nil, badRequest("priority must be in [0, %d], got %d", MaxPriority, prio)
		}
	}
	seed := int64(DefaultDeviceSeed)
	if req.Device.Seed != nil {
		seed = *req.Device.Seed
	}
	sys, err := s.systems.get(req.Device.Topology, req.Device.Qubits, seed)
	if err != nil {
		return nil, badRequest("device: %v", err)
	}
	cfg, aerr := buildConfig(req.Options)
	if aerr != nil {
		return nil, aerr
	}
	pb := &parsedBatch{
		sys:     sys,
		verbose: req.Verbose,
		workers: req.Workers,
		prio:    prio,
		jobs:    make([]core.BatchJob, 0, len(req.Jobs)),
		ids:     make([]string, 0, len(req.Jobs)),
	}
	if req.DeadlineMS > 0 {
		pb.deadlineAt = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	for i, js := range req.Jobs {
		id := js.ID
		if id == "" {
			id = fmt.Sprintf("job-%d", i)
		}
		strat := js.Strategy
		if strat == "" {
			strat = core.ColorDynamic
		}
		if schedule.ByName(strat) == nil {
			return nil, badRequest("job %q: unknown strategy %q (want one of %v)", id, strat, core.Strategies())
		}
		circ, aerr := buildJobCircuit(js)
		if aerr != nil {
			return nil, &apiError{status: aerr.status, msg: fmt.Sprintf("job %q: %s", id, aerr.msg)}
		}
		if circ.NumQubits > sys.Device.Qubits {
			return nil, badRequest("job %q: circuit has %d qubits but device has %d", id, circ.NumQubits, sys.Device.Qubits)
		}
		pb.ids = append(pb.ids, id)
		pb.jobs = append(pb.jobs, core.BatchJob{
			Key:      id,
			Circuit:  circ,
			System:   sys,
			Strategy: strat,
			Config:   cfg,
		})
	}
	return pb, nil
}

// buildConfig translates the wire options into a core.Config, validating
// the placement and router names.
func buildConfig(o OptionsSpec) (core.Config, *apiError) {
	rc := mapping.RouterConfig{Algorithm: o.Router, Window: o.Window, Decay: o.Decay}
	if _, err := mapping.NewRouter(rc); err != nil {
		return core.Config{}, badRequest("options: %v", err)
	}
	if o.Placement != "" && !slices.Contains(mapping.PlacementNames(), o.Placement) {
		return core.Config{}, badRequest("options: unknown placement %q (want one of %v)", o.Placement, mapping.PlacementNames())
	}
	return core.Config{
		Placement: core.Placement(o.Placement),
		Router:    rc,
		Schedule: schedule.Options{
			MaxColors:     o.MaxColors,
			XtalkDistance: o.Distance,
			Residual:      o.Residual,
		},
	}, nil
}

// buildJobCircuit decodes one job's circuit from whichever form it uses.
func buildJobCircuit(js JobSpec) (*circuit.Circuit, *apiError) {
	switch {
	case js.QASM != "" && js.Circuit != nil:
		return nil, badRequest("both qasm and circuit set; want exactly one")
	case js.QASM != "":
		parsed, err := qasm.Parse(js.QASM)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		return parsed.Circuit, nil
	case js.Circuit != nil:
		return buildNativeCircuit(js.Circuit)
	}
	return nil, badRequest("neither qasm nor circuit set; want exactly one")
}

// buildNativeCircuit validates and assembles a native gate list. It
// re-implements circuit.Add's operand checks with error returns, because
// the library constructor panics on invalid input and this input is
// untrusted.
func buildNativeCircuit(cs *CircuitSpec) (*circuit.Circuit, *apiError) {
	if cs.Qubits <= 0 {
		return nil, badRequest("circuit: invalid qubit count %d", cs.Qubits)
	}
	if len(cs.Gates) == 0 {
		return nil, badRequest("circuit: no gates")
	}
	circ := circuit.New(cs.Qubits)
	for i, gs := range cs.Gates {
		kind, ok := circuit.KindByName(gs.Op)
		if !ok {
			return nil, badRequest("circuit: gate %d: unknown op %q", i, gs.Op)
		}
		want := 1
		if kind.IsTwoQubit() {
			want = 2
		}
		if len(gs.Qubits) != want {
			return nil, badRequest("circuit: gate %d (%s): want %d qubits, got %d", i, gs.Op, want, len(gs.Qubits))
		}
		for _, q := range gs.Qubits {
			if q < 0 || q >= cs.Qubits {
				return nil, badRequest("circuit: gate %d (%s): qubit %d out of range [0,%d)", i, gs.Op, q, cs.Qubits)
			}
		}
		if want == 2 && gs.Qubits[0] == gs.Qubits[1] {
			return nil, badRequest("circuit: gate %d (%s): two-qubit gate on a single qubit %d", i, gs.Op, gs.Qubits[0])
		}
		circ.Add(circuit.Gate{Kind: kind, Qubits: gs.Qubits, Theta: gs.Theta})
	}
	return circ, nil
}

// toResultLine converts one engine result to its wire form.
func toResultLine(r core.BatchResult, id string, verbose bool) ResultLine {
	line := ResultLine{ID: id, Index: r.Index, Strategy: r.Strategy}
	if r.Err != nil {
		line.Type = "error"
		line.Error = r.Err.Error()
		return line
	}
	line.Type = "result"
	line.Result = toResultDetail(r.Result, verbose)
	return line
}

func toResultDetail(res *core.Result, verbose bool) *ResultDetail {
	rep := res.Report
	d := &ResultDetail{
		Success:          rep.Success,
		CrosstalkError:   rep.CrosstalkError,
		DecoherenceError: rep.DecoherenceError,
		IntrinsicError:   rep.IntrinsicError,
		Depth:            res.Schedule.Depth(),
		CompiledDepth:    res.Schedule.CompiledDepth,
		TotalNs:          res.Schedule.TotalTime,
		MaxColorsUsed:    res.Schedule.MaxColorsUsed,
		SwapCount:        res.SwapCount,
		CompileMicros:    res.CompileTime.Microseconds(),
	}
	if verbose {
		for _, sl := range res.Schedule.Slices {
			sd := SliceDetail{
				StartNs:    sl.Start,
				DurationNs: sl.Duration,
				Colors:     sl.Colors,
				Gates:      make([]GateDetail, 0, len(sl.Gates)),
			}
			for _, ev := range sl.Gates {
				gd := GateDetail{Gate: ev.Gate.String()}
				if ev.Gate.Kind.IsTwoQubit() {
					gd.Freq = ev.Freq
				}
				sd.Gates = append(sd.Gates, gd)
			}
			d.Slices = append(d.Slices, sd)
		}
	}
	return d
}

// toCacheReport converts a request-scoped Recorder into its wire form.
func toCacheReport(rec *compile.Recorder) *CacheReport {
	regions := rec.StatsByRegion()
	total := rec.Total()
	rep := &CacheReport{
		Hits:     total.Hits,
		WarmHits: total.WarmHits,
		Misses:   total.Misses,
		HitRate:  total.HitRate(),
		Regions:  make(map[string]RegionStats, len(regions)),
	}
	for name, st := range regions {
		rep.Regions[name] = RegionStats{Hits: st.Hits, WarmHits: st.WarmHits, Misses: st.Misses}
	}
	return rep
}

// meta builds the vocabulary listing of GET /v1/meta.
func meta() MetaResponse {
	return MetaResponse{
		Strategies: core.Strategies(),
		Topologies: topology.SpecNames(),
		Placements: mapping.PlacementNames(),
		Routers:    mapping.RouterNames(),
	}
}
