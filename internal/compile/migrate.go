package compile

import "strings"

// Snapshot migrations: instead of rejecting any snapshot whose version (or
// key generation) differs from the binary's, Load walks it forward one
// registered step at a time — each step re-keys and re-validates the
// entries it carries, drops what it cannot vouch for, and bumps the
// version fields. A warm set built for the previous release therefore
// degrades to a *partial* warm start after an upgrade, not a cold one; a
// snapshot with no registered path (two releases old, or written by a
// future binary) still degrades safely to cold.
//
// Contract for a step registered under version N: it is called only when
// snap.Version == N; it must leave snap at Version N+1 with every
// surviving key valid under the new scheme (bumping snap.KeyVersion
// whenever the key generation advanced in lockstep), and return the
// number of entries it re-keyed. Entries whose old key does not parse as
// the expected shape are dropped, never guessed at. decodeSnapshot
// verifies the final KeyVersion after the walk, so a step that cannot
// translate the keys (unexpected KeyVersion on disk) simply leaves it
// stale and the load degrades with DegradedKeySkew.

// snapshotMigration advances a snapshot from one version to the next,
// returning how many entries it re-keyed.
type snapshotMigration func(*diskSnapshot) int

// snapshotMigrations maps a from-version to its forward step. Dropping an
// entry from this table retires its migration path: snapshots that old
// degrade to cold.
var snapshotMigrations = map[int]snapshotMigration{
	5: migrateSnapshotV5toV6,
}

// migrateSnapshotV5toV6 carries a v5 snapshot (KeyVersion 5) into the v6
// format. The v5→v6 bump changed no key *payload* — only the generation
// prefix of the versioned slice keys — so the step rewrites "v5|…" to
// "v6|…" for whole-slice and component entries and passes the unversioned
// regions (SMT, park, static) through untouched. The v6-only sections
// (circuit pool, route, circ) start empty: a v5 snapshot never carried
// them, so those regions warm up cold. Keys that do not carry the exact
// "v5|" prefix are dropped rather than guessed at.
func migrateSnapshotV5toV6(snap *diskSnapshot) int {
	if snap.KeyVersion != 5 {
		// Not the key generation this step knows how to re-key: advance
		// the format version only and let the KeyVersion check degrade the
		// load. Guessing at unknown keys could alias live ones.
		snap.Version = 6
		return 0
	}
	n := 0
	snap.Slice = rekeyVersionPrefix(snap.Slice, "v5|", "v6|", &n)
	snap.SliceComp = rekeyVersionPrefix(snap.SliceComp, "v5|", "v6|", &n)
	snap.Version = 6
	snap.KeyVersion = 6
	return n
}

// rekeyVersionPrefix rewrites the version prefix of every key in m,
// dropping keys that do not carry exactly the old prefix (re-validation:
// a key that does not parse is never carried forward). The re-key count
// is accumulated into n.
func rekeyVersionPrefix[V any](m map[string]V, from, to string, n *int) map[string]V {
	if len(m) == 0 {
		return m
	}
	out := make(map[string]V, len(m))
	for k, v := range m {
		rest, ok := strings.CutPrefix(k, from)
		if !ok || rest == "" {
			continue
		}
		out[to+rest] = v
		*n++
	}
	return out
}
