// Package calib implements the "Crosstalk Model Characterization" stage of
// the paper's flow (Fig 3): it measures a device's parameters the way an
// experimentalist would — by driving the actual dynamics and fitting the
// response — rather than reading the fabrication values. Couplings are
// extracted from simulated chevron experiments (the Fig 15 oscillations:
// bring a pair on resonance, scan hold time, fit the first full-transfer
// peak at t = 1/(4g)); sweet spots from flux scans. The resulting
// Calibration can be applied to a phys.System so the compiler operates on
// measured rather than nominal numbers, exactly as a real control stack
// recalibrates between runs.
package calib

import (
	"fmt"
	"math"

	"fastsc/internal/graph"
	"fastsc/internal/phys"
)

// Calibration holds measured device parameters.
type Calibration struct {
	// Coupling maps each coupler to its measured strength in GHz.
	Coupling map[graph.Edge]float64
	// OmegaMax holds each qubit's measured upper sweet-spot frequency.
	OmegaMax []float64
}

// Options tunes the characterization procedure.
type Options struct {
	// TimePoints is the number of samples in each chevron time scan.
	TimePoints int
	// MaxHold is the longest hold time probed, ns. It bounds the smallest
	// measurable coupling at g = 1/(4·MaxHold).
	MaxHold float64
	// FluxPoints is the resolution of the sweet-spot flux scan.
	FluxPoints int
}

// DefaultOptions covers couplings down to ~1.6 MHz.
func DefaultOptions() Options {
	return Options{TimePoints: 160, MaxHold: 160, FluxPoints: 101}
}

// Characterize measures every coupler and qubit of the system.
func Characterize(sys *phys.System, opt Options) (*Calibration, error) {
	if opt.TimePoints <= 2 || opt.MaxHold <= 0 || opt.FluxPoints <= 2 {
		return nil, fmt.Errorf("calib: invalid options %+v", opt)
	}
	cal := &Calibration{
		Coupling: make(map[graph.Edge]float64, len(sys.Coupling)),
		OmegaMax: make([]float64, sys.Device.Qubits),
	}
	for q := 0; q < sys.Device.Qubits; q++ {
		cal.OmegaMax[q] = measureSweetSpot(sys.Transmon(q), opt)
	}
	for _, e := range sys.Device.Edges() {
		g, err := MeasureCoupling(sys, e, opt)
		if err != nil {
			return nil, fmt.Errorf("calib: coupler %v: %w", e, err)
		}
		cal.Coupling[e] = g
	}
	return cal, nil
}

// measureSweetSpot scans flux and returns the peak 0-1 frequency.
func measureSweetSpot(tr phys.Transmon, opt Options) float64 {
	best := 0.0
	for i := 0; i < opt.FluxPoints; i++ {
		phi := -0.5 + float64(i)/float64(opt.FluxPoints-1)
		if f := tr.Freq01(phi); f > best {
			best = f
		}
	}
	return best
}

// MeasureCoupling runs a simulated resonant-exchange experiment on one
// coupler: both qubits are flux-tuned to a common probe frequency, the
// |01⟩→|10⟩ transfer is recorded against hold time (a cut through the
// Fig 15 chevron), and the first full-transfer time t* gives g = 1/(4t*).
func MeasureCoupling(sys *phys.System, e graph.Edge, opt Options) (float64, error) {
	trA, trB := sys.Transmon(e.U), sys.Transmon(e.V)
	probe, err := commonProbe(trA, trB)
	if err != nil {
		return 0, err
	}
	phiA, err := trA.FluxFor(probe)
	if err != nil {
		return 0, err
	}
	phiB, err := trB.FluxFor(probe)
	if err != nil {
		return 0, err
	}
	tt := phys.TwoTransmon{A: trA, B: trB, PhiA: phiA, PhiB: phiB, G: sys.G0(e.U, e.V)}

	// Coarse scan for the first transfer maximum.
	dt := opt.MaxHold / float64(opt.TimePoints)
	bestT, bestP := 0.0, -1.0
	prev := 0.0
	for i := 1; i <= opt.TimePoints; i++ {
		t := float64(i) * dt
		p := tt.SwapTransfer(t)
		if p > bestP {
			bestT, bestP = t, p
		}
		// Stop once clearly past the first peak.
		if bestP > 0.9 && p < prev {
			break
		}
		prev = p
	}
	if bestP < 0.5 {
		return 0, fmt.Errorf("no resonant transfer observed (peak %.3f); coupling below measurable floor", bestP)
	}
	// Refine by ternary search around the coarse peak.
	lo, hi := math.Max(dt/2, bestT-dt), bestT+dt
	for i := 0; i < 40; i++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if tt.SwapTransfer(m1) < tt.SwapTransfer(m2) {
			lo = m1
		} else {
			hi = m2
		}
	}
	tPeak := (lo + hi) / 2
	return 1 / (4 * tPeak), nil
}

// commonProbe picks a probe frequency reachable by both qubits, just below
// the smaller sweet spot (staying clear of the band edge).
func commonProbe(a, b phys.Transmon) (float64, error) {
	hi := math.Min(a.OmegaMax, b.OmegaMax) - 0.05
	loA, _ := a.TunableRange()
	loB, _ := b.TunableRange()
	lo := math.Max(loA, loB)
	if hi <= lo {
		return 0, fmt.Errorf("qubit ranges do not overlap")
	}
	return hi, nil
}

// Apply returns a copy of the system with measured parameters substituted:
// coupler strengths from the chevron fits and qubit maxima from the flux
// scans. Measured couplings land in the system's dense per-coupler slice at
// their device edge ids; couplers the calibration did not measure keep
// their nominal value. The compiler can then be driven entirely by
// characterization data.
func (c *Calibration) Apply(sys *phys.System) *phys.System {
	out := &phys.System{
		Device:   sys.Device,
		Qubits:   make([]phys.Transmon, len(sys.Qubits)),
		Coupling: append([]float64(nil), sys.Coupling...),
		Params:   sys.Params,
	}
	copy(out.Qubits, sys.Qubits)
	for q := range out.Qubits {
		out.Qubits[q].OmegaMax = c.OmegaMax[q]
	}
	for e, g := range c.Coupling {
		if id, ok := sys.Device.Coupling.EdgeID(e.U, e.V); ok {
			out.Coupling[id] = g
		}
	}
	return out
}

// MaxCouplingError returns the largest relative deviation between the
// calibration and the system's nominal couplings — a quality measure for
// the characterization procedure.
func (c *Calibration) MaxCouplingError(sys *phys.System) float64 {
	worst := 0.0
	for e, g := range c.Coupling {
		id, ok := sys.Device.Coupling.EdgeID(e.U, e.V)
		if !ok {
			continue
		}
		nominal := sys.G0ByID(int32(id))
		if nominal == 0 {
			continue
		}
		if rel := math.Abs(g-nominal) / nominal; rel > worst {
			worst = rel
		}
	}
	return worst
}
