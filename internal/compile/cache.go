package compile

// DefaultCacheCapacity is the capacity (in cost units, see entryCost) used
// when NewCache is given a non-positive capacity. One unit covers a small
// entry — a slice solution or SMT solve of a few hundred bytes — so
// thousands of entries cost single-digit megabytes; bulky values
// (crosstalk graphs, whole-device palettes) report their approximate byte
// size and occupy proportionally many units, so eviction under pressure
// sheds them at their real weight.
const DefaultCacheCapacity = 8192

// Stats are the hit/miss/eviction counters of one cache region.
type Stats struct {
	Hits, Misses, Evictions uint64
}

// HitRate returns hits / (hits + misses), or 0 when the region is unused.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// add accumulates counters (used to aggregate regions and shards).
func (s Stats) add(o Stats) Stats {
	return Stats{
		Hits:      s.Hits + o.Hits,
		Misses:    s.Misses + o.Misses,
		Evictions: s.Evictions + o.Evictions,
	}
}

// Cache is a concurrency-safe sharded LRU cache shared across compilation
// jobs. Entries are namespaced by region (e.g. "smt", "slice", "xtalk") so
// that hit/miss accounting can be reported per pipeline stage.
//
// Keys are hashed onto a power-of-two number of independently locked
// shards, each with its own LRU list, so concurrent lookups from a large
// worker pool do not serialize on one mutex. LRU ordering and the capacity
// bound therefore hold per shard, not globally: an eviction removes the
// least-recently-used entry of the full shard, which is only
// approximately the globally least-recently-used entry. Use shards=1
// (NewCacheSharded) when exact global LRU order matters.
//
// Do deduplicates concurrent misses on the same key through a
// single-flight group: one caller computes, everyone else blocks and
// shares the result.
//
// Values stored in the cache are shared between goroutines and MUST be
// treated as immutable by every consumer.
type Cache struct {
	shards []*cacheShard
	mask   uint64
	flight flightGroup
}

// NewCache returns a cache holding at most ~capacity cost units (~entries,
// for small values), sharded for the current GOMAXPROCS. capacity <= 0
// selects DefaultCacheCapacity.
func NewCache(capacity int) *Cache {
	return NewCacheSharded(capacity, 0)
}

// NewCacheSharded returns a cache with an explicit shard count, which is
// rounded up to a power of two, clamped to [1, maxShards], then halved
// until it does not exceed capacity. shards <= 0 selects the
// GOMAXPROCS-derived default. Capacity is split evenly across shards
// (rounding up), so the effective total capacity is
// shards * ceil(capacity/shards).
func NewCacheSharded(capacity, shards int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	if shards <= 0 {
		shards = defaultShardCount()
	}
	n := 1
	for n < shards && n < maxShards {
		n <<= 1
	}
	for n > capacity {
		n >>= 1
	}
	perShard := (capacity + n - 1) / n
	c := &Cache{shards: make([]*cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = newCacheShard(perShard)
	}
	return c
}

func namespaced(region, key string) string { return region + "\x00" + key }

// shardFor hashes a namespaced key onto its shard (FNV-64a).
func (c *Cache) shardFor(nk string) *cacheShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(nk); i++ {
		h ^= uint64(nk[i])
		h *= 1099511628211
	}
	return c.shards[h&c.mask]
}

// NumShards returns the shard count (useful for tests and benchmarks).
func (c *Cache) NumShards() int {
	if c == nil {
		return 0
	}
	return len(c.shards)
}

// Get looks up key in region, promoting it to most-recently-used on a hit.
// Nil caches always miss without accounting.
func (c *Cache) Get(region, key string) (any, bool) {
	return c.get(region, key, true)
}

// peek is Get without hit/miss accounting, used by the single-flight
// re-check (whose caller already recorded its miss).
func (c *Cache) peek(region, key string) (any, bool) {
	return c.get(region, key, false)
}

func (c *Cache) get(region, key string, account bool) (any, bool) {
	if c == nil {
		return nil, false
	}
	nk := namespaced(region, key)
	s := c.shardFor(nk)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.get(region, nk, account)
}

// Put stores value under (region, key), evicting the least-recently-used
// entry of the key's shard when that shard is full. Storing an existing
// key refreshes its value and recency. Put on a nil cache is a no-op.
func (c *Cache) Put(region, key string, value any) {
	if c == nil {
		return
	}
	nk := namespaced(region, key)
	s := c.shardFor(nk)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.put(region, nk, value)
}

// Do returns the cached value for (region, key), computing and storing it
// on a miss. Concurrent misses on the same key are deduplicated through a
// single-flight group: exactly one caller runs compute while the others
// block and share its result (including its error). Errors are shared
// with in-flight waiters but never cached — the next caller after a
// failed flight computes afresh; use a value type that embeds the error
// (as the SMT memo does) when negative caching is wanted.
func (c *Cache) Do(region, key string, compute func() (any, error)) (any, error) {
	if c == nil {
		return compute()
	}
	if v, ok := c.Get(region, key); ok {
		return v, nil
	}
	return c.flight.do(namespaced(region, key), func() (any, error) {
		// Re-check: a previous flight may have stored the value between
		// this caller's miss and its turn as leader. Without this, a
		// caller overlapping the tail of a finished flight would compute
		// a second time.
		if v, ok := c.peek(region, key); ok {
			return v, nil
		}
		v, err := compute()
		if err != nil {
			return nil, err
		}
		c.Put(region, key, v)
		return v, nil
	})
}

// Len returns the current number of entries across all shards.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// StatsByRegion returns the per-region counters aggregated across shards.
func (c *Cache) StatsByRegion() map[string]Stats {
	if c == nil {
		return nil
	}
	out := make(map[string]Stats)
	for _, s := range c.shards {
		s.mu.Lock()
		for r, st := range s.stats {
			out[r] = out[r].add(*st)
		}
		s.mu.Unlock()
	}
	return out
}

// TotalStats aggregates the counters across all regions.
func (c *Cache) TotalStats() Stats {
	var total Stats
	for _, s := range c.StatsByRegion() {
		total = total.add(s)
	}
	return total
}

// regionEntries returns a copy of one region's (bare key -> value) map,
// used by the snapshot writer. Values are the shared immutable cache
// values; callers must not mutate them.
func (c *Cache) regionEntries(region string) map[string]any {
	if c == nil {
		return nil
	}
	prefix := namespaced(region, "")
	out := make(map[string]any)
	for _, s := range c.shards {
		s.mu.Lock()
		for nk, el := range s.items {
			ent := el.Value.(*cacheEntry)
			if ent.region == region {
				out[nk[len(prefix):]] = ent.value
			}
		}
		s.mu.Unlock()
	}
	return out
}
