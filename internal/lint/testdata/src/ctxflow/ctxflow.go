// Fixture for the ctxflow analyzer: functions holding a context.Context
// may not sever it with context.Background/TODO (outside the sanctioned
// nil-guard) or by calling X where an XCtx sibling exists.
package ctxflow

import "context"

func work() {}

func workCtx(ctx context.Context) { _ = ctx }

type runner struct{}

func (runner) Run() {}

func (runner) RunCtx(ctx context.Context) { _ = ctx }

func background(ctx context.Context) {
	_ = context.Background() // want `ctxflow: background already receives ctx; pass it .* instead of context\.Background`
}

func todo(ctx context.Context) {
	_ = context.TODO() // want `ctxflow: todo already receives ctx; pass it .* instead of context\.TODO`
}

func nilGuard(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background() // sanctioned nil-guard: not flagged
	}
	workCtx(ctx)
}

func detaches(ctx context.Context) {
	work() // want `ctxflow: detaches holds ctx but calls work, which detaches from cancellation; call ctxflow\.workCtx`
}

func detachesMethod(ctx context.Context, r runner) {
	r.Run() // want `ctxflow: detachesMethod holds ctx but calls Run, .* call runner\.RunCtx`
}

func threads(ctx context.Context, r runner) {
	workCtx(ctx) // threading the context: not flagged
	r.RunCtx(ctx)
}

func noCtx() {
	work() // caller holds no context: not checked
	_ = context.Background()
}
