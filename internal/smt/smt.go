// Package smt assigns concrete frequencies to crosstalk-graph colors — the
// paper's "SMT solver optimization" step (§V-B3). The constraint system
// (eqs. 1–3) asks for |C| frequencies inside a band such that every pair is
// separated by at least δ both directly and through the ω12 sideband
// shifted by the anharmonicity α:
//
//	∀c:       lo ≤ x_c ≤ hi                 (1)
//	∀i≠j:     |x_i − x_j| ≥ δ               (2)
//	∀i≠j:     |x_i + α − x_j| ≥ δ           (3)
//
// smt_find (here Solve) binary-searches the largest δ for which a feasible
// assignment exists. Because colors are interchangeable, we break symmetry
// by ordering x_0 ≤ x_1 ≤ … and place frequencies greedily bottom-up,
// skipping the sideband-forbidden zones — an exact decision procedure for
// this difference-logic fragment under the fixed ordering.
package smt

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Config bounds a frequency-assignment problem.
type Config struct {
	// Lo, Hi delimit the allowed band in GHz (eq. 1).
	Lo, Hi float64
	// Alpha is the transmon anharmonicity in GHz (negative; |α| ≈ 0.2).
	Alpha float64
	// MinDelta is the smallest separation worth searching for; below this
	// the assignment is reported infeasible. Defaults to 1 MHz when zero.
	MinDelta float64
}

func (c Config) minDelta() float64 {
	if c.MinDelta > 0 {
		return c.MinDelta
	}
	return 0.001
}

// ErrInfeasible is returned when no assignment exists with at least the
// configured minimum separation.
var ErrInfeasible = errors.New("smt: no feasible frequency assignment")

// Feasible attempts to place k frequencies with separation delta under cfg.
// It returns the frequencies in ascending order and whether placement
// succeeded. The placement is greedy bottom-up: each frequency takes the
// smallest value that respects the direct separation (≥ previous + δ) and
// avoids every earlier frequency's sideband-forbidden zone
// (x_j + |α| − δ, x_j + |α| + δ).
func Feasible(k int, cfg Config, delta float64) ([]float64, bool) {
	if k <= 0 {
		return nil, true
	}
	if delta <= 0 || cfg.Hi < cfg.Lo {
		return nil, false
	}
	absAlpha := math.Abs(cfg.Alpha)
	xs := make([]float64, 0, k)
	v := cfg.Lo
	for i := 0; i < k; i++ {
		if i > 0 {
			v = xs[i-1] + delta
		}
		// Bump v past any sideband-forbidden zone of earlier placements.
		// The zones (x_j+|α|−δ, x_j+|α|+δ) are sorted (xs is ascending), and
		// v only ever increases past a zone's upper edge, so one ascending
		// scan reaches the fixpoint the repeated rescan used to: after
		// bumping to zone j's end, every earlier zone's end lies at or
		// below it, so no earlier zone can contain v again.
		for _, xj := range xs {
			lo := xj + absAlpha - delta
			hi := xj + absAlpha + delta
			if v > lo && v < hi {
				v = hi
			}
		}
		if v > cfg.Hi+1e-12 {
			return nil, false
		}
		xs = append(xs, v)
	}
	return xs, true
}

// ParallelFor evaluates fn(0), …, fn(n−1), possibly concurrently, and
// returns once every call has finished. Callers hand one to SolveWith to
// lend the solver spare workers (compile.Context.ForEach satisfies it); a
// nil ParallelFor means strictly serial evaluation.
type ParallelFor func(n int, fn func(int))

// Solve finds k frequencies in cfg's band maximizing the separation
// threshold δ by binary search (the paper's smt_find). It returns the
// ascending frequencies and the achieved δ, or ErrInfeasible when even the
// minimum separation cannot be met. Solve is SolveWith without parallelism.
func Solve(k int, cfg Config) ([]float64, float64, error) {
	return SolveWith(k, cfg, nil)
}

// SolveWith is Solve with an optional parallel evaluator for the
// feasibility probes of the binary search. The result is byte-identical to
// the serial search regardless of par: instead of reordering probes, the
// parallel path speculates — each round evaluates the serial search's next
// midpoint m0 together with both midpoints the round after could need
// ((lo+m0)/2 if m0 fails, (m0+hi)/2 if it succeeds), then walks two serial
// steps through the answers. All three candidate deltas are computed with
// the exact float expressions the serial loop would use, so 25 speculative
// rounds reproduce the serial loop's 50 iterations bit-for-bit, one of the
// three probes per round being discarded. Feasibility is monotone in δ, so
// no other probe outcome can disagree with the serial path.
func SolveWith(k int, cfg Config, par ParallelFor) ([]float64, float64, error) {
	if k <= 0 {
		return nil, 0, nil
	}
	if cfg.Hi < cfg.Lo {
		return nil, 0, fmt.Errorf("smt: empty band [%v, %v]", cfg.Lo, cfg.Hi)
	}
	minD := cfg.minDelta()
	if _, ok := Feasible(k, cfg, minD); !ok {
		return nil, 0, fmt.Errorf("%w: %d colors in [%.3f, %.3f] GHz", ErrInfeasible, k, cfg.Lo, cfg.Hi)
	}
	// Upper bound: spreading k points over the band plus one sideband hop
	// can never beat span + |α|.
	lo, hi := minD, cfg.Hi-cfg.Lo+math.Abs(cfg.Alpha)+1
	if k == 1 {
		// A single frequency trivially satisfies any δ; report the band
		// floor with the search ceiling as separation.
		xs, _ := Feasible(1, cfg, minD)
		return xs, hi, nil
	}
	if par == nil {
		for i := 0; i < 50; i++ {
			mid := (lo + hi) / 2
			if _, ok := Feasible(k, cfg, mid); ok {
				lo = mid
			} else {
				hi = mid
			}
		}
	} else {
		var deltas [3]float64
		var ok [3]bool
		for r := 0; r < 25; r++ {
			m0 := (lo + hi) / 2
			deltas[0] = m0
			deltas[1] = (lo + m0) / 2 // next midpoint if m0 is infeasible
			deltas[2] = (m0 + hi) / 2 // next midpoint if m0 is feasible
			feasibleScan(k, cfg, &deltas, &ok, par)
			if ok[0] {
				lo = m0
				if ok[2] {
					lo = deltas[2]
				} else {
					hi = deltas[2]
				}
			} else {
				hi = m0
				if ok[1] {
					lo = deltas[1]
				} else {
					hi = deltas[1]
				}
			}
		}
	}
	xs, ok := Feasible(k, cfg, lo)
	if !ok {
		// Numerical edge: fall back to the known-feasible floor.
		xs, _ = Feasible(k, cfg, minD)
		return xs, minD, nil
	}
	return xs, lo, nil
}

// feasibleScan evaluates the three speculative probes of one bisection
// round through par, writing each verdict to ok[i].
//
//fastsc:hotpath the probe fan-out runs 25 times per SMT solve on the slice-miss path (BenchmarkSMTSolve guards it); nothing here may allocate a map, call fmt, or box
func feasibleScan(k int, cfg Config, deltas *[3]float64, ok *[3]bool, par ParallelFor) {
	par(3, func(i int) {
		_, ok[i] = Feasible(k, cfg, deltas[i])
	})
}

// Verify checks that xs satisfies the constraint system at separation delta
// (useful for tests and debugging).
func Verify(xs []float64, cfg Config, delta float64) error {
	absAlpha := math.Abs(cfg.Alpha)
	for i, x := range xs {
		if x < cfg.Lo-1e-9 || x > cfg.Hi+1e-9 {
			return fmt.Errorf("smt: x[%d]=%v outside band [%v, %v]", i, x, cfg.Lo, cfg.Hi)
		}
		for j, y := range xs {
			if i == j {
				continue
			}
			if math.Abs(x-y) < delta-1e-9 {
				return fmt.Errorf("smt: |x[%d]−x[%d]| = %v < δ=%v", i, j, math.Abs(x-y), delta)
			}
			if math.Abs(x-absAlpha-y) < delta-1e-9 {
				return fmt.Errorf("smt: sideband |x[%d]+α−x[%d]| = %v < δ=%v",
					i, j, math.Abs(x-absAlpha-y), delta)
			}
		}
	}
	return nil
}

// AssignByOccupancy maps colors to frequencies using the paper's total
// ordering (§V-B3): colors used by more gates receive higher frequencies,
// because higher interaction frequency means stronger coupling and faster
// gates (t_gate ~ 1/ω). freqs must be ascending (as returned by Solve);
// occupancy[c] is the use count of color c (as graph.Coloring.ColorCounts
// produces). The result is dense: out[c] is color c's frequency. Ties break
// toward the smaller color id for determinism.
func AssignByOccupancy(occupancy []int, freqs []float64) []float64 {
	colors := make([]int, len(occupancy))
	for c := range colors {
		colors[c] = c
	}
	sort.Slice(colors, func(i, j int) bool {
		if occupancy[colors[i]] != occupancy[colors[j]] {
			return occupancy[colors[i]] > occupancy[colors[j]]
		}
		return colors[i] < colors[j]
	})
	if len(colors) > len(freqs) {
		panic(fmt.Sprintf("smt: %d colors but only %d frequencies", len(colors), len(freqs)))
	}
	out := make([]float64, len(colors))
	for rank, c := range colors {
		// Highest frequency to the most-used color.
		out[c] = freqs[len(freqs)-1-rank]
	}
	return out
}
