package circuit

// Dependency analysis. Two gates depend on each other when they share a
// qubit; the earlier one (program order) must complete first. This induces
// the layered view of a circuit ("circuit slicing", §V-B2) and the
// critical-path criticality used by the noise-aware queueing scheduler
// (§V-B6).

// ASAPLayers partitions gate indices into as-soon-as-possible layers: a gate
// is placed one layer after the latest layer among the gates it depends on.
// The result is the standard "sliced" circuit; len(result) is the depth.
func (c *Circuit) ASAPLayers() [][]int {
	lastLayer := make([]int, c.NumQubits) // per qubit: layer of its last gate + 1
	for i := range lastLayer {
		lastLayer[i] = 0
	}
	var layers [][]int
	for idx, g := range c.Gates {
		layer := 0
		for _, q := range g.Qubits {
			if lastLayer[q] > layer {
				layer = lastLayer[q]
			}
		}
		for len(layers) <= layer {
			layers = append(layers, nil)
		}
		layers[layer] = append(layers[layer], idx)
		for _, q := range g.Qubits {
			lastLayer[q] = layer + 1
		}
	}
	return layers
}

// Depth returns the number of ASAP layers.
func (c *Circuit) Depth() int { return len(c.ASAPLayers()) }

// Criticality returns, for each gate index, the length (in gates) of the
// longest dependency chain starting at that gate, itself included. Gates
// with larger criticality lie on the program critical path and are
// scheduled first by the queueing scheduler.
func (c *Circuit) Criticality() []int {
	n := len(c.Gates)
	crit := make([]int, n)
	// nextOnQubit[q] tracks, while scanning backwards, the criticality of
	// the next gate touching q.
	nextCrit := make([]int, c.NumQubits)
	for i := n - 1; i >= 0; i-- {
		g := c.Gates[i]
		best := 0
		for _, q := range g.Qubits {
			if nextCrit[q] > best {
				best = nextCrit[q]
			}
		}
		crit[i] = best + 1
		for _, q := range g.Qubits {
			nextCrit[q] = crit[i]
		}
	}
	return crit
}

// Frontier iterates a circuit in dependency order while letting the caller
// postpone ready gates — exactly the queueing discipline of Algorithm 1. At
// any point, Ready() lists the gates whose per-qubit predecessors have all
// been issued; the scheduler issues a subset and the rest remain ready in
// later rounds.
type Frontier struct {
	c *Circuit
	// nextIdx[q] is the position in perQubit[q] of the next unissued gate.
	perQubit [][]int
	nextIdx  []int
	issued   []bool
	remain   int
}

// NewFrontier builds the per-qubit dependency streams for c.
func NewFrontier(c *Circuit) *Frontier {
	f := &Frontier{
		c:        c,
		perQubit: make([][]int, c.NumQubits),
		nextIdx:  make([]int, c.NumQubits),
		issued:   make([]bool, len(c.Gates)),
		remain:   len(c.Gates),
	}
	for i, g := range c.Gates {
		for _, q := range g.Qubits {
			f.perQubit[q] = append(f.perQubit[q], i)
		}
	}
	return f
}

// Ready returns the indices of gates whose dependencies are satisfied, in
// ascending program order.
func (f *Frontier) Ready() []int {
	var ready []int
	seen := make(map[int]bool)
	for q := 0; q < f.c.NumQubits; q++ {
		if f.nextIdx[q] >= len(f.perQubit[q]) {
			continue
		}
		idx := f.perQubit[q][f.nextIdx[q]]
		if seen[idx] {
			continue
		}
		seen[idx] = true
		// A two-qubit gate is ready only if it is the head on both qubits.
		g := f.c.Gates[idx]
		ok := true
		for _, qq := range g.Qubits {
			if f.nextIdx[qq] >= len(f.perQubit[qq]) || f.perQubit[qq][f.nextIdx[qq]] != idx {
				ok = false
				break
			}
		}
		if ok {
			ready = append(ready, idx)
		}
	}
	sortInts(ready)
	return ready
}

// Issue marks gate idx as executed. It panics if the gate is not ready.
func (f *Frontier) Issue(idx int) {
	if f.issued[idx] {
		panic("circuit: gate issued twice")
	}
	g := f.c.Gates[idx]
	for _, q := range g.Qubits {
		if f.nextIdx[q] >= len(f.perQubit[q]) || f.perQubit[q][f.nextIdx[q]] != idx {
			panic("circuit: issuing gate with unmet dependencies")
		}
	}
	for _, q := range g.Qubits {
		f.nextIdx[q]++
	}
	f.issued[idx] = true
	f.remain--
}

// Done reports whether every gate has been issued.
func (f *Frontier) Done() bool { return f.remain == 0 }

// Remaining returns the number of unissued gates.
func (f *Frontier) Remaining() int { return f.remain }

func sortInts(xs []int) {
	// insertion sort; frontiers are small.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
