package compile

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"fastsc/internal/faultpoint"
)

// ErrDeadline is the typed cause a serving layer attaches to per-request
// deadlines (context.WithDeadlineCause); jobs skipped because the deadline
// expired report an error wrapping it, so callers can distinguish "request
// ran out of budget" from a plain cancellation with errors.Is.
var ErrDeadline = errors.New("compile: request deadline exceeded")

// ErrJobPanic is the base error of an outcome whose job panicked; the
// engine converts per-job panics into this error instead of tearing down
// the batch (or the process), and servers count them with errors.Is.
var ErrJobPanic = errors.New("compile: job panicked")

// Job is one unit of batch work: typically "compile this circuit with this
// strategy on this system", but any function of the shared Context fits.
// Typed wrappers live next to their domain (core.BatchCompile builds Jobs
// from (circuit, strategy, system) triples).
type Job struct {
	// Key identifies the job in its Outcome, e.g. "bv(4)/ColorDynamic".
	Key string
	// Run performs the work. It receives the batch's shared Context (cache
	// + parallelism budget) and may be called from any worker goroutine.
	Run func(*Context) (any, error)
}

// Outcome is one finished job, streamed in completion order.
type Outcome struct {
	// Index is the job's position in the submitted slice, so callers can
	// reassemble deterministic output from completion-ordered results.
	Index int
	// Key echoes Job.Key.
	Key string
	// Value is Run's result when Err is nil.
	Value any
	// Err is Run's error, or a wrapped panic.
	Err error
	// Elapsed is the job's wall-clock run time.
	Elapsed time.Duration
}

// RunBatch fans jobs across a bounded worker pool (ctx.Workers, defaulting
// to GOMAXPROCS) and streams outcomes over the returned channel as they
// complete. The channel is closed after the last outcome. A panicking job
// is reported as that job's Err rather than tearing down the batch. Safe on
// a nil receiver.
func (c *Context) RunBatch(jobs []Job) <-chan Outcome {
	return c.RunBatchCtx(context.Background(), jobs)
}

// RunBatchCtx is RunBatch under a cancellation context: when ctx is
// canceled, jobs already running finish normally (their outcomes are still
// streamed) and every job not yet started is reported with Err wrapping
// ctx's cancellation cause instead of being run — a skipped job costs no
// worker time. When the context carries a typed cause (the server arms
// request deadlines with ErrDeadline via context.WithDeadlineCause), that
// cause survives into each skipped job's error, so errors.Is(err,
// compile.ErrDeadline) identifies deadline-shed work end to end. Every
// submitted job yields exactly one outcome either way, so
// CollectBatch-style consumers never block. This is the primitive a
// serving layer builds drain, deadline and client-disconnect semantics on.
func (c *Context) RunBatchCtx(ctx context.Context, jobs []Job) <-chan Outcome {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make(chan Outcome, len(jobs))
	workers := c.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		close(out)
		return out
	}
	feed := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range feed {
				if ctx.Err() != nil {
					out <- Outcome{
						Index: i,
						Key:   jobs[i].Key,
						Err:   fmt.Errorf("compile: job %q not started: %w", jobs[i].Key, context.Cause(ctx)),
					}
					continue
				}
				out <- c.runOne(i, jobs[i])
			}
		}()
	}
	go func() {
		for i := range jobs {
			feed <- i
		}
		close(feed)
		wg.Wait()
		close(out)
	}()
	return out
}

func (c *Context) runOne(index int, job Job) (o Outcome) {
	o = Outcome{Index: index, Key: job.Key}
	start := time.Now()
	defer func() {
		o.Elapsed = time.Since(start)
		if r := recover(); r != nil {
			o.Err = fmt.Errorf("%w: job %q: %v", ErrJobPanic, job.Key, r)
		}
	}()
	faultpoint.MaybePanic(faultpoint.JobPanic)
	o.Value, o.Err = job.Run(c)
	return o
}

// CollectBatch runs jobs and returns their outcomes ordered by submission
// index — the deterministic counterpart of RunBatch for callers that want
// the whole batch before proceeding.
func (c *Context) CollectBatch(jobs []Job) []Outcome {
	out := make([]Outcome, len(jobs))
	for o := range c.RunBatch(jobs) {
		out[o.Index] = o
	}
	return out
}

// FirstError returns the first error among outcomes in submission order,
// or nil.
func FirstError(outcomes []Outcome) error {
	for _, o := range outcomes {
		if o.Err != nil {
			return fmt.Errorf("compile: job %q: %w", o.Key, o.Err)
		}
	}
	return nil
}
