package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"fastsc/internal/compile"
	"fastsc/internal/core"
)

// mustGrant reserves a ticket that must take a free slot immediately.
func mustGrant(t *testing.T, a *admitter, prio int) *ticket {
	t.Helper()
	tkt, err := a.reserve(prio, time.Time{})
	if err != nil {
		t.Fatalf("reserve: %v", err)
	}
	if err := tkt.wait(context.Background()); err != nil {
		t.Fatalf("wait: %v", err)
	}
	return tkt
}

func TestAdmitterGrantsByPriorityThenFIFO(t *testing.T) {
	a := newAdmitter(1, 4)
	holder := mustGrant(t, a, DefaultPriority)

	reserve := func(prio int) *ticket {
		tkt, err := a.reserve(prio, time.Time{})
		if err != nil {
			t.Fatalf("reserve prio %d: %v", prio, err)
		}
		return tkt
	}
	low, hiA, hiB := reserve(1), reserve(7), reserve(7)

	order := make(chan string, 3)
	waiter := func(name string, tkt *ticket) {
		if err := tkt.wait(context.Background()); err != nil {
			t.Errorf("%s: wait = %v", name, err)
			return
		}
		order <- name
		tkt.release()
	}
	go waiter("low", low)
	go waiter("hiA", hiA)
	go waiter("hiB", hiB)

	time.Sleep(10 * time.Millisecond) // let the waiters block
	holder.release()
	got := []string{<-order, <-order, <-order}
	// Priority first; FIFO within a priority class.
	want := []string{"hiA", "hiB", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", got, want)
		}
	}
}

func TestAdmitterShedsLowestPriority(t *testing.T) {
	a := newAdmitter(1, 1)
	holder := mustGrant(t, a, DefaultPriority)
	defer holder.release()

	victim, err := a.reserve(3, time.Time{})
	if err != nil {
		t.Fatalf("reserve victim: %v", err)
	}
	// Equal priority must NOT displace the victim: the queue is full.
	if _, err := a.reserve(3, time.Time{}); !errors.Is(err, errQueueFull) {
		t.Fatalf("equal-priority reserve = %v, want errQueueFull", err)
	}
	// Strictly higher priority does.
	bumper, err := a.reserve(7, time.Time{})
	if err != nil {
		t.Fatalf("higher-priority reserve = %v, want shed of the victim", err)
	}
	if err := victim.wait(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("victim wait = %v, want ErrShed", err)
	}
	// The bumper occupies the queue; lower-priority arrivals bounce.
	if _, err := a.reserve(1, time.Time{}); !errors.Is(err, errQueueFull) {
		t.Fatalf("low-priority reserve = %v, want errQueueFull", err)
	}
	_ = bumper
}

func TestAdmitterShedsExpiredFirst(t *testing.T) {
	a := newAdmitter(1, 1)
	holder := mustGrant(t, a, DefaultPriority)
	defer holder.release()

	// The queued waiter has the HIGHER priority but an already-passed
	// deadline: it is dead weight and is shed even for a lower-priority
	// arrival, with the deadline (not shed) cause.
	expired, err := a.reserve(9, time.Now().Add(-time.Second))
	if err != nil {
		t.Fatalf("reserve expired: %v", err)
	}
	if _, err := a.reserve(0, time.Time{}); err != nil {
		t.Fatalf("arrival = %v, want expired waiter shed", err)
	}
	if err := expired.wait(context.Background()); !errors.Is(err, compile.ErrDeadline) {
		t.Fatalf("expired wait = %v, want compile.ErrDeadline", err)
	}
}

func TestAdmitterCanceledWaiterLeavesQueue(t *testing.T) {
	a := newAdmitter(1, 2)
	holder := mustGrant(t, a, DefaultPriority)

	tkt, err := a.reserve(DefaultPriority, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("client gave up")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	if err := tkt.wait(ctx); !errors.Is(err, cause) {
		t.Fatalf("wait = %v, want the cancel cause", err)
	}
	if d := a.depth(); d != 0 {
		t.Fatalf("queue depth after canceled waiter = %d, want 0", d)
	}
	// The abandoned reservation must not leak the slot accounting: the
	// holder's release leaves a grantable slot.
	holder.release()
	next := mustGrant(t, a, DefaultPriority)
	next.release()
}

// TestAdmitterExpiredNeverHoldsSlot: a waiter whose deadline passes while
// queued is shed at grant time instead of being handed a slot, so expired
// work cannot occupy workers (under -race this also exercises the
// grant/shed interleaving).
func TestAdmitterExpiredNeverHoldsSlot(t *testing.T) {
	a := newAdmitter(1, 2)
	holder := mustGrant(t, a, DefaultPriority)

	expired, err := a.reserve(9, time.Now().Add(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	live, err := a.reserve(0, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the first waiter's deadline pass
	holder.release()
	if err := live.wait(context.Background()); err != nil {
		t.Fatalf("live waiter = %v, want the slot", err)
	}
	live.release()
	if err := expired.wait(context.Background()); !errors.Is(err, compile.ErrDeadline) {
		t.Fatalf("expired waiter = %v, want compile.ErrDeadline", err)
	}
}

func TestPriorityAndDeadlineValidation(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name   string
		mutate func(*CompileRequest)
	}{
		{"priority too high", func(r *CompileRequest) { p := 10; r.Priority = &p }},
		{"priority negative", func(r *CompileRequest) { p := -1; r.Priority = &p }},
		{"negative deadline", func(r *CompileRequest) { r.DeadlineMS = -5 }},
	} {
		req := testRequest(core.ColorDynamic)
		tc.mutate(&req)
		if code, body := postJSON(t, ts, "/v1/batches", req); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, code, body)
		}
	}
}

// TestQueueFullRetryAfter: a 429 carries a Retry-After hint derived from
// queue depth and the batch-duration EWMA, always at least one second.
func TestQueueFullRetryAfter(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1, MaxQueue: -1})
	gate := make(chan struct{})
	defer close(gate)
	srv.startGate = func() { <-gate }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, _ := postJSON(t, ts, "/v1/batches", testRequest(core.ColorDynamic))
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	raw := `{"device":{"topology":"linear","qubits":4},"jobs":[{"qasm":` + strconv.Quote(testQASM) + `}]}`
	resp, err := ts.Client().Post(ts.URL+"/v1/batches", "application/json", strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("second submit: %d (%s), want 429", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 120 {
		t.Fatalf("Retry-After = %q, want an integer in [1, 120]", resp.Header.Get("Retry-After"))
	}
}

// TestDeadlineExpiredBatchReleasesAdmission: an async batch whose deadline
// passes while it waits for a slot terminates as "expired" with typed
// not-started job errors, and the slot accounting stays intact — the next
// submission still runs. Run under -race this is the deadline-path
// regression test the issue calls for.
func TestDeadlineExpiredBatchReleasesAdmission(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1})
	gate := make(chan struct{})
	srv.startGate = func() { <-gate }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, _ := postJSON(t, ts, "/v1/batches", testRequest(core.ColorDynamic))
	if code != http.StatusAccepted {
		t.Fatalf("holder submit: %d", code)
	}

	req := testRequest(core.ColorDynamic)
	req.DeadlineMS = 30 // expires while queued behind the gated holder
	code, body := postJSON(t, ts, "/v1/batches", req)
	if code != http.StatusAccepted {
		t.Fatalf("deadline submit: %d (%s)", code, body)
	}
	var ack SubmitResponse
	mustUnmarshal(t, body, &ack)

	st := pollUntilTerminal(t, ts, ack.URL)
	if st.Status != "expired" {
		t.Fatalf("status = %q, want expired", st.Status)
	}
	if st.Failed != st.Jobs || len(st.Results) != st.Jobs {
		t.Fatalf("expired batch results: %+v", st)
	}
	for _, r := range st.Results {
		if r.Type != "error" || !strings.Contains(r.Error, "deadline") {
			t.Fatalf("expired job line = %+v, want a typed deadline error", r)
		}
	}

	close(gate) // release the holder; the slot must be reusable
	code, body = postJSON(t, ts, "/v1/batches", testRequest(core.ColorDynamic))
	if code != http.StatusAccepted {
		t.Fatalf("post-expiry submit: %d (%s)", code, body)
	}
	mustUnmarshal(t, body, &ack)
	if st := pollUntilTerminal(t, ts, ack.URL); st.Status != "done" || st.Failed != 0 {
		t.Fatalf("post-expiry batch: %+v", st)
	}

	// The expiry is visible on /metrics.
	if !metricAtLeast(t, ts, "fastscd_batches_expired_total", 1) {
		t.Error("fastscd_batches_expired_total not incremented")
	}
}

// pollUntilTerminal polls a batch until it reaches any terminal status.
func pollUntilTerminal(t *testing.T, ts *httptest.Server, url string) BatchStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st BatchStatus
		if code := getJSON(t, ts, url, &st); code != http.StatusOK {
			t.Fatalf("poll %s: status %d", url, code)
		}
		switch st.Status {
		case "queued", "running":
		default:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("poll %s: still %q after 30s", url, st.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func mustUnmarshal(t *testing.T, data []byte, into any) {
	t.Helper()
	if err := json.Unmarshal(data, into); err != nil {
		t.Fatalf("unmarshal %q: %v", data, err)
	}
}

// metricAtLeast scrapes /metrics and reports whether the named sample is
// at least want.
func metricAtLeast(t *testing.T, ts *httptest.Server, name string, want int) bool {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			n, err := strconv.Atoi(fields[1])
			return err == nil && n >= want
		}
	}
	return false
}
