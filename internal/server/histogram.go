package server

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// durationBuckets are the upper bounds (seconds) of the request-duration
// histograms: log-spaced from 5ms to 60s so p50/p99 of both millisecond
// cache-hit batches and multi-second cold solves land inside the range
// rather than in +Inf.
var durationBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// histogram is a fixed-bucket duration histogram in the Prometheus
// cumulative exposition shape, safe for concurrent observers. Counts are
// stored per bucket (not cumulative) and summed at render time; the sum is
// kept in microseconds so observation is a single atomic add with no CAS
// loop on float bits.
type histogram struct {
	counts    []atomic.Int64 // one per bucket, +1 for +Inf
	sumMicros atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(durationBuckets)+1)}
}

// observe records one duration in seconds.
func (h *histogram) observe(seconds float64) {
	i := 0
	for i < len(durationBuckets) && seconds > durationBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumMicros.Add(int64(seconds * 1e6))
}

// writeTo renders the histogram in Prometheus text format under name.
func (h *histogram) writeTo(b *strings.Builder, name, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, le := range durationBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, formatBucket(le), cum)
	}
	cum += h.counts[len(durationBuckets)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %g\n", name, float64(h.sumMicros.Load())/1e6)
	fmt.Fprintf(b, "%s_count %d\n", name, cum)
}

// formatBucket renders a bucket bound the way Prometheus clients do
// ("0.005", "1", "60") — %g, which never emits a trailing zero fraction.
func formatBucket(le float64) string {
	return fmt.Sprintf("%g", le)
}
