package compile

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestScopedRecorderAttribution(t *testing.T) {
	base := NewContext(2)

	// Two scoped contexts share the cache but not the recorder.
	a := base.Scoped(1)
	b := base.Scoped(1)
	if a.Cache != base.Cache || b.Cache != base.Cache {
		t.Fatal("Scoped must share the base cache")
	}
	if a.Record == nil || b.Record == nil || a.Record == b.Record {
		t.Fatal("Scoped must hand out fresh recorders")
	}

	computes := 0
	lookup := func(c *Context) {
		_, _ = c.Static("k", func() (any, error) {
			computes++
			return 1, nil
		})
	}
	lookup(a) // cold: a records the miss
	lookup(b) // warm: b records a hit
	lookup(b)

	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	at, bt := a.Record.Total(), b.Record.Total()
	if at.Misses != 1 || at.Hits != 0 {
		t.Errorf("a recorded %+v, want 1 miss", at)
	}
	if bt.Hits != 2 || bt.Misses != 0 {
		t.Errorf("b recorded %+v, want 2 hits", bt)
	}
	regions := a.Record.StatsByRegion()
	if regions[RegionStatic].Misses != 1 {
		t.Errorf("a region stats = %+v", regions)
	}
	// The base context has no recorder; its lookups must not panic.
	lookup(base)
}

func TestScopedWithoutCacheRecordsMisses(t *testing.T) {
	c := (&Context{}).Scoped(1)
	if _, err := c.Static("k", func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if tot := c.Record.Total(); tot.Misses != 1 || tot.Hits != 0 {
		t.Errorf("cacheless lookup recorded %+v, want 1 miss", tot)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				rec.record(RegionSMT, j%2 == 0)
			}
		}()
	}
	wg.Wait()
	if tot := rec.Total(); tot.Hits != 400 || tot.Misses != 400 {
		t.Errorf("total = %+v, want 400/400", tot)
	}
}

func TestRunBatchCtxCancelSkipsUnstarted(t *testing.T) {
	c := NewContext(1) // one worker: jobs run strictly in order
	ctx, cancel := context.WithCancel(context.Background())

	started := make(chan struct{})
	release := make(chan struct{})
	jobs := []Job{
		{Key: "first", Run: func(*Context) (any, error) {
			close(started)
			<-release
			return "ok", nil
		}},
		{Key: "second", Run: func(*Context) (any, error) { return "ran", nil }},
	}
	out := c.RunBatchCtx(ctx, jobs)

	<-started // first job is running
	cancel()  // second job must not start
	close(release)

	got := map[string]Outcome{}
	for o := range out {
		got[o.Key] = o
	}
	if len(got) != 2 {
		t.Fatalf("got %d outcomes, want one per job", len(got))
	}
	if got["first"].Err != nil || got["first"].Value != "ok" {
		t.Errorf("running job must finish: %+v", got["first"])
	}
	if err := got["second"].Err; err == nil || !errors.Is(err, context.Canceled) {
		t.Errorf("unstarted job error = %v, want context.Canceled", err)
	} else if !strings.Contains(err.Error(), "not started") {
		t.Errorf("unstarted job error %q does not say so", err)
	}
}

func TestRunBatchCtxNilAndBackground(t *testing.T) {
	c := NewContext(2)
	jobs := []Job{{Key: "a", Run: func(*Context) (any, error) { return 1, nil }}}
	for _, ctx := range []context.Context{nil, context.Background()} {
		n := 0
		for o := range c.RunBatchCtx(ctx, jobs) {
			if o.Err != nil {
				t.Fatal(o.Err)
			}
			n++
		}
		if n != 1 {
			t.Fatalf("got %d outcomes", n)
		}
	}
}
