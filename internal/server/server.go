package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fastsc/internal/compile"
	"fastsc/internal/core"
	"fastsc/internal/phys"
	"fastsc/internal/topology"
)

// Config tunes a compile server. The zero value selects sensible defaults
// for a single-node daemon; see withDefaults.
type Config struct {
	// Workers is the per-request worker budget: each admitted batch runs
	// on its own bounded pool of at most this many workers (instead of the
	// CLI's one global pool), so a wide batch cannot starve its neighbors.
	// <= 0 selects GOMAXPROCS.
	Workers int
	// MaxConcurrent bounds the number of batches compiling simultaneously;
	// admitted batches beyond it wait in FIFO order for a slot. <= 0
	// selects 2.
	MaxConcurrent int
	// MaxQueue bounds the batches waiting for a slot; a submission beyond
	// MaxConcurrent+MaxQueue is rejected with 429. < 0 means no queue
	// (reject whenever all slots are busy); 0 selects 16.
	MaxQueue int
	// MaxJobs bounds the jobs of one batch (400 beyond it). <= 0 selects
	// 256.
	MaxJobs int
	// MaxBodyBytes bounds a request body. <= 0 selects 8 MiB.
	MaxBodyBytes int64
	// CacheCapacity is the process-wide compile cache capacity in cost
	// units (see compile.NewCache). <= 0 selects the default.
	CacheCapacity int
	// StoredBatches bounds the finished async batches kept for polling;
	// the oldest finished batch is evicted beyond it. <= 0 selects 256.
	StoredBatches int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	switch {
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	case c.MaxQueue == 0:
		c.MaxQueue = 16
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.StoredBatches <= 0 {
		c.StoredBatches = 256
	}
	return c
}

// Server is the compilation service: one process-wide compile.Context
// (sharded single-flight cache) shared by every request, an admission
// controller in front of it, and the HTTP handlers of docs/api.md on top.
// Create one with New, mount Handler on an http.Server, and call Shutdown
// (or Drain) when terminating.
type Server struct {
	cfg     Config
	base    *compile.Context
	adm     *admitter
	wg      sync.WaitGroup
	store   *batchStore
	systems systemCache
	mux     *http.ServeMux
	started time.Time

	admitted  atomic.Int64 // batches admitted and not yet finished
	running   atomic.Int64 // batches holding a compile slot
	draining  atomic.Bool
	restoring atomic.Bool // background snapshot restore in progress

	snapshotRestored atomic.Int64
	// degraded counts snapshot loads (local or warm-set) that fell back to
	// cold, by compile.LoadResult.Degraded reason — the "silent degrade"
	// signal exported as fastscd_snapshot_degraded_total{reason=...}.
	degradedMu     sync.Mutex
	degradedTotals map[string]int64
	mStreams       atomic.Int64
	mSubmits       atomic.Int64
	mPolls         atomic.Int64
	mBatchesDone   atomic.Int64
	mJobs          atomic.Int64
	mJobsFailed    atomic.Int64
	mJobPanics     atomic.Int64
	mRejectQueue   atomic.Int64
	mRejectDrain   atomic.Int64
	mShed          atomic.Int64
	mExpired       atomic.Int64

	// batchEWMA holds the float64 bits of an exponentially weighted moving
	// average of batch wall time (seconds), feeding Retry-After.
	batchEWMA atomic.Uint64

	hBatchSeconds *histogram
	hWaitSeconds  *histogram

	// startGate, when set (tests only), runs after a batch acquires its
	// compile slot and before any job starts.
	startGate func()
}

// New returns a Server with a fresh process-wide cache.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:            cfg,
		base:           &compile.Context{Cache: compile.NewCache(cfg.CacheCapacity)},
		adm:            newAdmitter(cfg.MaxConcurrent, cfg.MaxQueue),
		store:          newBatchStore(cfg.StoredBatches),
		systems:        systemCache{m: make(map[sysKey]*phys.System)},
		started:        time.Now(),
		hBatchSeconds:  newHistogram(),
		hWaitSeconds:   newHistogram(),
		degradedTotals: make(map[string]int64),
	}
	s.routes()
	return s
}

// Cache exposes the process-wide cache for snapshot warm-start and
// shutdown persistence (compile.Cache.Load/Save).
func (s *Server) Cache() *compile.Cache { return s.base.Cache }

// SetRestored records how many snapshot entries warmed the cache at
// startup, exported as fastscd_snapshot_restored_entries.
func (s *Server) SetRestored(n int) { s.snapshotRestored.Store(int64(n)) }

// NoteSnapshotDegraded records one snapshot load (local cache file or
// warm set) that degraded to cold, by reason (a compile.Degraded*
// constant). Exported as fastscd_snapshot_degraded_total{reason=...} so a
// fleet silently serving cold from a truncated snapshot is visible.
func (s *Server) NoteSnapshotDegraded(reason string) {
	if reason == "" {
		return
	}
	s.degradedMu.Lock()
	s.degradedTotals[reason]++
	s.degradedMu.Unlock()
}

// snapshotDegraded returns a copy of the per-reason degraded-load counts.
func (s *Server) snapshotDegraded() map[string]int64 {
	s.degradedMu.Lock()
	defer s.degradedMu.Unlock()
	out := make(map[string]int64, len(s.degradedTotals))
	for k, v := range s.degradedTotals {
		out[k] = v
	}
	return out
}

// AttachWarmSet attaches a read-only shared warm set as the compile
// cache's third tier (see compile.Cache.AttachWarmSet); warm-set traffic
// shows up as fastscd_cache_warm_hits_total and the warmset gauges.
func (s *Server) AttachWarmSet(w *compile.WarmSet) { s.base.Cache.AttachWarmSet(w) }

// SetRestoring flags that a background snapshot restore is in progress.
// While set, /readyz reports 503 (the instance serves but is not warm);
// /healthz is unaffected. The daemon sets it around its background cache
// Load so load balancers keep traffic on warm peers during a fleet roll.
func (s *Server) SetRestoring(v bool) { s.restoring.Store(v) }

// Restoring reports whether a background snapshot restore is in progress.
func (s *Server) Restoring() bool { return s.restoring.Load() }

// Store exposes the async batch store for durable open/save at the daemon
// boundary (see batchStore.Open and batchStore.SaveNow).
func (s *Server) Store() *batchStore { return s.store }

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain puts the server into draining mode: every subsequent submission
// (streaming or async) is rejected with 503, while batches already
// admitted — including those still waiting for a compile slot — run to
// completion and read-only endpoints (poll, metrics, meta) stay available.
// Drain is idempotent.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server and blocks until every admitted batch has
// finished or ctx expires. On a clean drain it returns nil and the caller
// can persist the cache snapshot; on timeout it returns ctx's error with
// batches possibly still running.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Drain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted with %d batches in flight: %w", s.admitted.Load(), ctx.Err())
	}
}

// admit reserves a place for one batch: the drain gate, then a slot or
// queue position from the priority admitter. On success the caller must
// redeem the ticket with runBatch (which waits for the slot) and call the
// returned release exactly once after the batch finishes. The draining
// check runs after the WaitGroup reservation so a concurrent Drain+Shutdown
// can never miss a batch that passed the check. A full queue is a 429
// whose Retry-After estimates when a slot should free (see retryAfter).
func (s *Server) admit(pb *parsedBatch) (tkt *ticket, release func(), aerr *apiError) {
	s.wg.Add(1)
	s.admitted.Add(1)
	release = func() {
		s.admitted.Add(-1)
		s.wg.Done()
	}
	if s.draining.Load() {
		release()
		s.mRejectDrain.Add(1)
		return nil, nil, &apiError{status: http.StatusServiceUnavailable,
			msg: "server is draining", retryAfter: 1}
	}
	tkt, err := s.adm.reserve(pb.prio, pb.deadlineAt)
	if err != nil {
		release()
		s.mRejectQueue.Add(1)
		return nil, nil, &apiError{status: http.StatusTooManyRequests, msg: fmt.Sprintf(
			"queue full: %d running and %d queued batches at equal or higher priority (limit %d running + %d queued)",
			s.cfg.MaxConcurrent, s.cfg.MaxQueue, s.cfg.MaxConcurrent, s.cfg.MaxQueue),
			retryAfter: s.retryAfter()}
	}
	return tkt, release, nil
}

// ewmaBatchSeconds returns the smoothed batch wall time, defaulting to one
// second before any batch has finished.
func (s *Server) ewmaBatchSeconds() float64 {
	if bits := s.batchEWMA.Load(); bits != 0 {
		return math.Float64frombits(bits)
	}
	return 1
}

// observeBatchSeconds folds one batch duration into the EWMA (α = 0.2).
func (s *Server) observeBatchSeconds(d float64) {
	for {
		old := s.batchEWMA.Load()
		next := d
		if old != 0 {
			next = 0.8*math.Float64frombits(old) + 0.2*d
		}
		if s.batchEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// retryAfter derives a Retry-After hint (seconds) from the queue depth and
// the smoothed batch duration: with depth waiters ahead and MaxConcurrent
// slots draining one EWMA-duration batch each, a slot should free in about
// (depth+1)·ewma/slots seconds. Clamped to [1, 120] so a misbehaving EWMA
// can never tell clients to go away for an hour.
func (s *Server) retryAfter() int {
	secs := float64(s.adm.depth()+1) * s.ewmaBatchSeconds() / float64(s.cfg.MaxConcurrent)
	n := int(math.Ceil(secs))
	if n < 1 {
		n = 1
	}
	if n > 120 {
		n = 120
	}
	return n
}

// batchStatus maps the cause a batch stopped for to its terminal wire
// status: "expired" (its deadline passed), "shed" (evicted for
// higher-priority work), "canceled" (client disconnect or server
// shutdown), or "done".
func batchStatus(cause error) string {
	switch {
	case cause == nil:
		return "done"
	case errors.Is(cause, compile.ErrDeadline):
		return "expired"
	case errors.Is(cause, ErrShed):
		return "shed"
	default:
		return "canceled"
	}
}

// runBatch compiles one admitted batch: it redeems the admission ticket
// (waiting for a compile slot), fans the jobs through the engine on a
// request-scoped Context (shared cache, per-request worker budget and
// stats Recorder), and emits one ResultLine per job in completion order
// followed by the DoneLine. ctx aborts jobs not yet started (client
// disconnect or deadline, with context.Cause carried into each skipped
// job's error); emit errors likewise abort the remainder. The returned
// status is the terminal batchStatus of this run.
func (s *Server) runBatch(ctx context.Context, pb *parsedBatch, batchID string, tkt *ticket, emit func(line any) error, onRunning func()) (DoneLine, string) {
	start := time.Now()
	if err := tkt.wait(ctx); err != nil {
		// Shed, expired or abandoned without ever holding a slot. Shedding
		// is counted here, off the wait error, so an admitter-shed batch
		// and a self-expired one are each counted exactly once.
		s.hWaitSeconds.observe(time.Since(start).Seconds())
		switch {
		case errors.Is(err, compile.ErrDeadline):
			s.mExpired.Add(1)
		case errors.Is(err, ErrShed):
			s.mShed.Add(1)
		}
		return s.finishAborted(err, pb, batchID, emit, start), batchStatus(err)
	}
	s.hWaitSeconds.observe(time.Since(start).Seconds())
	s.running.Add(1)
	defer func() {
		s.running.Add(-1)
		tkt.release()
	}()
	if onRunning != nil {
		onRunning()
	}
	if s.startGate != nil {
		s.startGate()
	}

	workers := s.cfg.Workers
	if pb.workers > 0 && pb.workers < workers {
		workers = pb.workers
	}
	cctx := s.base.Scoped(workers)

	failed := 0
	for r := range core.BatchCompileCtx(ctx, cctx, pb.jobs) {
		line := toResultLine(r, pb.ids[r.Index], pb.verbose)
		if r.Err != nil {
			failed++
			if errors.Is(r.Err, compile.ErrJobPanic) {
				s.mJobPanics.Add(1)
			}
		}
		if emit != nil {
			if err := emit(line); err != nil {
				emit = nil // client gone; drain the channel, drop output
			}
		}
	}
	s.mJobs.Add(int64(len(pb.jobs)))
	s.mJobsFailed.Add(int64(failed))
	s.mBatchesDone.Add(1)
	elapsed := time.Since(start)
	s.hBatchSeconds.observe(elapsed.Seconds())
	s.observeBatchSeconds(elapsed.Seconds())

	status := batchStatus(context.Cause(ctx))
	if status == "expired" {
		s.mExpired.Add(1)
	}
	done := DoneLine{
		Type:          "done",
		Batch:         batchID,
		Jobs:          len(pb.jobs),
		Failed:        failed,
		ElapsedMicros: elapsed.Microseconds(),
		Cache:         toCacheReport(cctx.Record),
	}
	if emit != nil {
		_ = emit(done)
	}
	return done, status
}

// finishAborted reports a batch that stopped before it got a compile slot
// — shed, expired, or its client disconnected: every job is an error line
// carrying the cause, nothing is computed.
func (s *Server) finishAborted(cause error, pb *parsedBatch, batchID string, emit func(line any) error, start time.Time) DoneLine {
	for i := range pb.jobs {
		line := ResultLine{
			Type: "error", ID: pb.ids[i], Index: i, Strategy: pb.jobs[i].Strategy,
			Error: fmt.Sprintf("not started: %v", cause),
		}
		if emit != nil {
			if err := emit(line); err != nil {
				emit = nil
			}
		}
	}
	s.mBatchesDone.Add(1)
	s.mJobs.Add(int64(len(pb.jobs)))
	s.mJobsFailed.Add(int64(len(pb.jobs)))
	done := DoneLine{
		Type: "done", Batch: batchID, Jobs: len(pb.jobs), Failed: len(pb.jobs),
		ElapsedMicros: time.Since(start).Microseconds(),
		Cache:         toCacheReport(compile.NewRecorder()),
	}
	if emit != nil {
		_ = emit(done)
	}
	return done
}

// sysKey identifies one simulated system: the textual topology spec, the
// qubit count and the fabrication seed.
type sysKey struct {
	topo string
	n    int
	seed int64
}

// systemCache memoizes characterized systems across requests, so repeat
// submissions against the same named device share one *phys.System (and
// therefore hash its content signature over identical memory). Bounded by
// sysCacheLimit; eviction is arbitrary — rebuilding a system is cheap, the
// cache only exists to keep the common case allocation-free.
type systemCache struct {
	mu sync.Mutex
	m  map[sysKey]*phys.System
}

const sysCacheLimit = 64

func (c *systemCache) get(topo string, n int, seed int64) (*phys.System, error) {
	key := sysKey{topo: topo, n: n, seed: seed}
	c.mu.Lock()
	if sys, ok := c.m[key]; ok {
		c.mu.Unlock()
		return sys, nil
	}
	c.mu.Unlock()
	dev, err := topology.FromSpec(topo, n)
	if err != nil {
		return nil, err
	}
	sys := phys.NewSystem(dev, phys.DefaultParams(), seed)
	c.mu.Lock()
	defer c.mu.Unlock()
	if have, ok := c.m[key]; ok { // lost a build race: share the winner
		return have, nil
	}
	if len(c.m) >= sysCacheLimit {
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[key] = sys
	return sys, nil
}
