package xtalk

// Construction-equivalence tests: the distance-bounded BFS build must
// produce exactly the crosstalk graph the original algorithm produced —
// line graph plus every coupler pair at edge distance <= d, computed from
// a full all-pairs distance matrix. The reference below is that original
// O(c²) construction, kept verbatim (modulo the flat distance matrix API).

import (
	"testing"

	"fastsc/internal/graph"
	"fastsc/internal/topology"
)

// referenceBuild is the pre-flat-core Build: line graph, then an all-pairs
// probe of every coupler pair.
func referenceBuild(dev *topology.Device, d int) *graph.Graph {
	gc := dev.Coupling
	lg, couplers := graph.LineGraph(gc)
	dist := gc.AllPairsDistances()
	edgeDist := func(e, f graph.Edge) int {
		best := graph.Unreachable
		for _, a := range [2]int{e.U, e.V} {
			for _, b := range [2]int{f.U, f.V} {
				if dd := dist.At(a, b); dd != graph.Unreachable && (best == graph.Unreachable || dd < best) {
					best = dd
				}
			}
		}
		return best
	}
	for i := 0; i < len(couplers); i++ {
		for j := i + 1; j < len(couplers); j++ {
			if lg.HasEdge(i, j) {
				continue // already adjacent (shared vertex)
			}
			if dd := edgeDist(couplers[i], couplers[j]); dd != graph.Unreachable && dd <= d {
				lg.AddEdge(i, j)
			}
		}
	}
	return lg
}

func sameGraph(t *testing.T, label string, got, want *graph.Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: n=%d m=%d, reference n=%d m=%d",
			label, got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	ge, we := got.Edges(), want.Edges()
	for i := range we {
		if ge[i] != we[i] {
			t.Fatalf("%s: edge %d is %v, reference %v", label, i, ge[i], we[i])
		}
	}
}

// TestBuildMatchesAllPairsReference checks the BFS construction against the
// all-pairs reference on the device families the paper evaluates — meshes,
// linear chains/rings, and 1-D/2-D express cubes — for d in {1,2,3}.
func TestBuildMatchesAllPairsReference(t *testing.T) {
	devices := []*topology.Device{
		topology.Grid(3, 3),
		topology.Grid(4, 5),
		topology.Grid(5, 5),
		topology.Linear(9),
		topology.Ring(8),
		topology.Express1D(12, 3),
		topology.Express1D(10, 2),
		topology.Express2D(4, 4, 2),
		topology.Express2D(5, 4, 3),
	}
	for _, dev := range devices {
		for d := 1; d <= 3; d++ {
			got := Build(dev, d)
			want := referenceBuild(dev, d)
			sameGraph(t, dev.Name+"/d="+string(rune('0'+d)), got.G, want)
			// Coupler indexing must match the device edge enumeration.
			for id, e := range dev.Edges() {
				if got.Couplers[id] != e {
					t.Fatalf("%s: coupler %d is %v, want %v", dev.Name, id, got.Couplers[id], e)
				}
				if v, ok := got.VertexOf(e.U, e.V); !ok || v != id {
					t.Fatalf("%s: VertexOf(%v) = %d,%v, want %d", dev.Name, e, v, ok, id)
				}
			}
		}
	}
}

// TestBuildDisconnectedDevice checks the BFS construction on a device with
// two components: couplers in different components must never conflict.
func TestBuildDisconnectedDevice(t *testing.T) {
	// Two 3-qubit chains: qubits 0-1-2 and 3-4-5, no bridge.
	dev := topology.FromEdges("two-chains", 6, []graph.Edge{
		graph.NewEdge(0, 1), graph.NewEdge(1, 2),
		graph.NewEdge(3, 4), graph.NewEdge(4, 5),
	})
	for d := 1; d <= 3; d++ {
		got := Build(dev, d)
		want := referenceBuild(dev, d)
		sameGraph(t, "two-chains", got.G, want)
		v01, _ := got.VertexOf(0, 1)
		v34, _ := got.VertexOf(3, 4)
		if got.G.HasEdge(v01, v34) {
			t.Fatal("couplers in different components must not conflict")
		}
	}
}
