package mapping_test

// The state-vector equivalence check lives in an external test package:
// internal/sim transitively imports internal/mapping (sim → schedule →
// compile → mapping), so an in-package test would form an import cycle.

import (
	"math/rand"
	"testing"

	"fastsc/internal/circuit"
	"fastsc/internal/mapping"
	"fastsc/internal/sim"
	"fastsc/internal/topology"
)

// simRandomCircuit mirrors the in-package randomCircuit generator.
func simRandomCircuit(rng *rand.Rand, n int) *circuit.Circuit {
	c := circuit.New(n)
	gates := 1 + rng.Intn(24)
	for i := 0; i < gates; i++ {
		switch rng.Intn(4) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.RZ(rng.Intn(n), rng.Float64())
		default:
			a, b := rng.Intn(n), rng.Intn(n)
			for b == a {
				b = rng.Intn(n)
			}
			if rng.Intn(2) == 0 {
				c.CNOT(a, b)
			} else {
				c.CZ(a, b)
			}
		}
	}
	return c
}

// TestRoutedUnitaryEquivalence verifies the strongest validity property by
// direct state-vector simulation: running the routed circuit (SWAPs
// included) and permuting the result through Final yields the same state
// as the logical circuit, for both routers on small devices, with and
// without a non-identity initial placement.
func TestRoutedUnitaryEquivalence(t *testing.T) {
	devs := []*topology.Device{
		topology.Grid(2, 2),
		topology.Linear(5),
		topology.Ring(6),
		topology.Express1D(6, 2),
	}
	routers := []mapping.Router{
		&mapping.GreedyRouter{},
		&mapping.LookaheadRouter{Window: 6, Decay: 0.5},
	}
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 60; iter++ {
		dev := devs[iter%len(devs)]
		n := 2 + rng.Intn(dev.Qubits-1)
		c := simRandomCircuit(rng, n)
		var initial *mapping.Mapping
		if rng.Intn(2) == 1 {
			initial = mapping.FromOrder(n, rng.Perm(dev.Qubits)[:n], dev.Qubits)
		}
		// The logical reference: the circuit relabeled by the initial
		// placement (identity when nil), widened to the device, then
		// permuted back so virtual qubit l is logical qubit l.
		start := initial
		if start == nil {
			start = mapping.Identity(n, dev.Qubits)
		}
		relab := circuit.New(dev.Qubits)
		for _, g := range c.Gates {
			qs := make([]int, len(g.Qubits))
			for j, q := range g.Qubits {
				qs[j] = start.LogToPhys[q]
			}
			relab.Add(circuit.Gate{Kind: g.Kind, Qubits: qs, Theta: g.Theta})
		}
		want := permuteToLogical(sim.RunIdeal(relab), start, n)
		for _, r := range routers {
			res, err := r.Route(c, nil, dev, initial)
			if err != nil {
				t.Fatalf("%s on %s: %v", r.Name(), dev.Name, err)
			}
			got := permuteToLogical(sim.RunIdeal(res.Routed), res.Final, n)
			if f := got.Fidelity(want); f < 1-1e-9 {
				t.Fatalf("%s on %s iter %d: routed-state fidelity %v != 1", r.Name(), dev.Name, iter, f)
			}
		}
	}
}

// permuteToLogical reorders a physical state's qubits so that virtual
// qubit l is logical qubit l (wire final.LogToPhys[l]); unoccupied wires
// fill the remaining positions in ascending order (they stay |0⟩).
func permuteToLogical(st *sim.State, final *mapping.Mapping, nLogical int) *sim.State {
	n := st.N
	physFor := make([]int, n)
	for l := 0; l < nLogical; l++ {
		physFor[l] = final.LogToPhys[l]
	}
	v := nLogical
	for p := 0; p < n; p++ {
		if final.PhysToLog[p] == -1 {
			physFor[v] = p
			v++
		}
	}
	out := sim.NewState(n)
	out.Amps[0] = 0
	for idx, a := range st.Amps {
		if a == 0 {
			continue
		}
		widx := 0
		for vq := 0; vq < n; vq++ {
			bit := (idx >> uint(n-1-physFor[vq])) & 1
			widx |= bit << uint(n-1-vq)
		}
		out.Amps[widx] += a
	}
	return out
}
