package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fastsc/internal/compile"
	"fastsc/internal/core"
	"fastsc/internal/phys"
	"fastsc/internal/topology"
)

// Config tunes a compile server. The zero value selects sensible defaults
// for a single-node daemon; see withDefaults.
type Config struct {
	// Workers is the per-request worker budget: each admitted batch runs
	// on its own bounded pool of at most this many workers (instead of the
	// CLI's one global pool), so a wide batch cannot starve its neighbors.
	// <= 0 selects GOMAXPROCS.
	Workers int
	// MaxConcurrent bounds the number of batches compiling simultaneously;
	// admitted batches beyond it wait in FIFO order for a slot. <= 0
	// selects 2.
	MaxConcurrent int
	// MaxQueue bounds the batches waiting for a slot; a submission beyond
	// MaxConcurrent+MaxQueue is rejected with 429. < 0 means no queue
	// (reject whenever all slots are busy); 0 selects 16.
	MaxQueue int
	// MaxJobs bounds the jobs of one batch (400 beyond it). <= 0 selects
	// 256.
	MaxJobs int
	// MaxBodyBytes bounds a request body. <= 0 selects 8 MiB.
	MaxBodyBytes int64
	// CacheCapacity is the process-wide compile cache capacity in cost
	// units (see compile.NewCache). <= 0 selects the default.
	CacheCapacity int
	// StoredBatches bounds the finished async batches kept for polling;
	// the oldest finished batch is evicted beyond it. <= 0 selects 256.
	StoredBatches int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	switch {
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	case c.MaxQueue == 0:
		c.MaxQueue = 16
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.StoredBatches <= 0 {
		c.StoredBatches = 256
	}
	return c
}

// Server is the compilation service: one process-wide compile.Context
// (sharded single-flight cache) shared by every request, an admission
// controller in front of it, and the HTTP handlers of docs/api.md on top.
// Create one with New, mount Handler on an http.Server, and call Shutdown
// (or Drain) when terminating.
type Server struct {
	cfg     Config
	base    *compile.Context
	sem     chan struct{}
	wg      sync.WaitGroup
	store   *batchStore
	systems systemCache
	mux     *http.ServeMux
	started time.Time

	admitted atomic.Int64 // batches admitted and not yet finished
	running  atomic.Int64 // batches holding a compile slot
	draining atomic.Bool

	snapshotRestored atomic.Int64
	mStreams         atomic.Int64
	mSubmits         atomic.Int64
	mPolls           atomic.Int64
	mBatchesDone     atomic.Int64
	mJobs            atomic.Int64
	mJobsFailed      atomic.Int64
	mRejectQueue     atomic.Int64
	mRejectDrain     atomic.Int64

	// startGate, when set (tests only), runs after a batch acquires its
	// compile slot and before any job starts.
	startGate func()
}

// New returns a Server with a fresh process-wide cache.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		base:    &compile.Context{Cache: compile.NewCache(cfg.CacheCapacity)},
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		store:   newBatchStore(cfg.StoredBatches),
		systems: systemCache{m: make(map[sysKey]*phys.System)},
		started: time.Now(),
	}
	s.routes()
	return s
}

// Cache exposes the process-wide cache for snapshot warm-start and
// shutdown persistence (compile.Cache.Load/Save).
func (s *Server) Cache() *compile.Cache { return s.base.Cache }

// SetRestored records how many snapshot entries warmed the cache at
// startup, exported as fastscd_snapshot_restored_entries.
func (s *Server) SetRestored(n int) { s.snapshotRestored.Store(int64(n)) }

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain puts the server into draining mode: every subsequent submission
// (streaming or async) is rejected with 503, while batches already
// admitted — including those still waiting for a compile slot — run to
// completion and read-only endpoints (poll, metrics, meta) stay available.
// Drain is idempotent.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server and blocks until every admitted batch has
// finished or ctx expires. On a clean drain it returns nil and the caller
// can persist the cache snapshot; on timeout it returns ctx's error with
// batches possibly still running.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Drain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted with %d batches in flight: %w", s.admitted.Load(), ctx.Err())
	}
}

// admit reserves an admission slot for one batch. On success the caller
// owns a place in the bounded queue and must call the returned release
// exactly once after the batch finishes. The draining check runs after the
// reservation so a concurrent Drain+Shutdown can never miss a batch that
// passed the check.
func (s *Server) admit() (release func(), aerr *apiError) {
	s.wg.Add(1)
	n := s.admitted.Add(1)
	release = func() {
		s.admitted.Add(-1)
		s.wg.Done()
	}
	if s.draining.Load() {
		release()
		s.mRejectDrain.Add(1)
		return nil, &apiError{status: http.StatusServiceUnavailable, msg: "server is draining"}
	}
	if n > int64(s.cfg.MaxConcurrent+s.cfg.MaxQueue) {
		release()
		s.mRejectQueue.Add(1)
		return nil, &apiError{status: http.StatusTooManyRequests, msg: fmt.Sprintf(
			"queue full: %d batches admitted (limit %d running + %d queued)",
			n-1, s.cfg.MaxConcurrent, s.cfg.MaxQueue)}
	}
	return release, nil
}

// runBatch compiles one admitted batch: it waits for a compile slot, fans
// the jobs through the engine on a request-scoped Context (shared cache,
// per-request worker budget and stats Recorder), and emits one ResultLine
// per job in completion order followed by the DoneLine. ctx aborts jobs
// not yet started (client disconnect); emit errors likewise abort the
// remainder. The returned DoneLine is also emitted.
func (s *Server) runBatch(ctx context.Context, pb *parsedBatch, batchID string, emit func(line any) error, onRunning func()) DoneLine {
	start := time.Now()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		// Client gone before a slot freed: report every job unstarted.
		return s.finishAborted(ctx, pb, batchID, emit, start)
	}
	s.running.Add(1)
	defer func() {
		s.running.Add(-1)
		<-s.sem
	}()
	if onRunning != nil {
		onRunning()
	}
	if s.startGate != nil {
		s.startGate()
	}

	workers := s.cfg.Workers
	if pb.workers > 0 && pb.workers < workers {
		workers = pb.workers
	}
	cctx := s.base.Scoped(workers)

	failed := 0
	for r := range core.BatchCompileCtx(ctx, cctx, pb.jobs) {
		line := toResultLine(r, pb.ids[r.Index], pb.verbose)
		if r.Err != nil {
			failed++
		}
		if emit != nil {
			if err := emit(line); err != nil {
				emit = nil // client gone; drain the channel, drop output
			}
		}
	}
	s.mJobs.Add(int64(len(pb.jobs)))
	s.mJobsFailed.Add(int64(failed))
	s.mBatchesDone.Add(1)

	done := DoneLine{
		Type:          "done",
		Batch:         batchID,
		Jobs:          len(pb.jobs),
		Failed:        failed,
		ElapsedMicros: time.Since(start).Microseconds(),
		Cache:         toCacheReport(cctx.Record),
	}
	if emit != nil {
		_ = emit(done)
	}
	return done
}

// finishAborted reports a batch whose client disconnected before it got a
// compile slot: every job is an error line, nothing is computed.
func (s *Server) finishAborted(ctx context.Context, pb *parsedBatch, batchID string, emit func(line any) error, start time.Time) DoneLine {
	for i := range pb.jobs {
		line := ResultLine{
			Type: "error", ID: pb.ids[i], Index: i, Strategy: pb.jobs[i].Strategy,
			Error: fmt.Sprintf("not started: %v", ctx.Err()),
		}
		if emit != nil {
			if err := emit(line); err != nil {
				emit = nil
			}
		}
	}
	s.mBatchesDone.Add(1)
	s.mJobs.Add(int64(len(pb.jobs)))
	s.mJobsFailed.Add(int64(len(pb.jobs)))
	done := DoneLine{
		Type: "done", Batch: batchID, Jobs: len(pb.jobs), Failed: len(pb.jobs),
		ElapsedMicros: time.Since(start).Microseconds(),
		Cache:         toCacheReport(compile.NewRecorder()),
	}
	if emit != nil {
		_ = emit(done)
	}
	return done
}

// sysKey identifies one simulated system: the textual topology spec, the
// qubit count and the fabrication seed.
type sysKey struct {
	topo string
	n    int
	seed int64
}

// systemCache memoizes characterized systems across requests, so repeat
// submissions against the same named device share one *phys.System (and
// therefore hash its content signature over identical memory). Bounded by
// sysCacheLimit; eviction is arbitrary — rebuilding a system is cheap, the
// cache only exists to keep the common case allocation-free.
type systemCache struct {
	mu sync.Mutex
	m  map[sysKey]*phys.System
}

const sysCacheLimit = 64

func (c *systemCache) get(topo string, n int, seed int64) (*phys.System, error) {
	key := sysKey{topo: topo, n: n, seed: seed}
	c.mu.Lock()
	if sys, ok := c.m[key]; ok {
		c.mu.Unlock()
		return sys, nil
	}
	c.mu.Unlock()
	dev, err := topology.FromSpec(topo, n)
	if err != nil {
		return nil, err
	}
	sys := phys.NewSystem(dev, phys.DefaultParams(), seed)
	c.mu.Lock()
	defer c.mu.Unlock()
	if have, ok := c.m[key]; ok { // lost a build race: share the winner
		return have, nil
	}
	if len(c.m) >= sysCacheLimit {
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[key] = sys
	return sys, nil
}
