package schedule

import (
	"fastsc/internal/circuit"
	"fastsc/internal/compile"
	"fastsc/internal/graph"
	"fastsc/internal/phys"
	"fastsc/internal/topology"
)

// Gmon is Baseline G (Table I): tunable-qubit, tunable-coupler hardware in
// the style of Google's Sycamore. Couplers are switched off except for the
// pairs gated in the current slice, so spectral collisions between
// simultaneous gates are suppressed at the hardware level; the cost is
// fabrication complexity and sensitivity to coupler control noise, modeled
// by the Residual option (a fraction of the bare coupling that leaks
// through "off" couplers — Fig 12 sweeps it).
//
// Two-qubit layers follow the Sycamore tiling: the coupler set is
// partitioned into matchings (the ABCD patterns on a grid) and each slice
// activates gates from a single pattern.
type Gmon struct{}

// Name implements Compiler.
func (Gmon) Name() string { return "Baseline G" }

// Compile implements Compiler.
func (Gmon) Compile(ctx *compile.Context, c *circuit.Circuit, sys *phys.System, opts Options) (*Schedule, error) {
	b, err := newBuilder(ctx, "Baseline G", c, sys, opts)
	if err != nil {
		return nil, err
	}
	b.sched.Gmon = true
	// Sycamore's calibration gives every coupler its own interaction
	// frequency (the paper matches "the reported values in [2]"); we model
	// that as the static nearest-neighbor palette, so simultaneous gates
	// stay spectrally spread even when couplers leak (Fig 12).
	freqOf, err := staticPalette(b, sys)
	if err != nil {
		b.abort()
		return nil, err
	}
	gc := sys.Device.Coupling
	pattern := tilingPatterns(sys.Device)
	patternOf := func(e graph.Edge) int {
		id, _ := gc.EdgeID(e.U, e.V)
		return pattern[id]
	}

	f := b.front
	for !f.Done() {
		ready := f.Ready()
		sortByCriticality(ready, b.crit)

		// Bucket ready two-qubit gates by tiling pattern; activate the
		// pattern carrying the most critical work this slice. Scores are
		// running totals, updated as each gate lands in its bucket (the
		// most-critical pattern at any prefix matches a full re-sum, so
		// the selection is unchanged).
		byPattern := make(map[int]int) // pattern -> summed criticality
		bestPattern, bestScore := -1, -1
		for _, idx := range ready {
			g := b.circ.Gates[idx]
			if !g.Kind.IsTwoQubit() {
				continue
			}
			p := patternOf(graph.NewEdge(g.Qubits[0], g.Qubits[1]))
			byPattern[p] += int(b.crit[idx])
			if byPattern[p] > bestScore {
				bestScore, bestPattern = byPattern[p], p
			}
		}

		var events []GateEvent
		for _, idx := range ready {
			g := b.circ.Gates[idx]
			if g.Kind.IsTwoQubit() {
				e := graph.NewEdge(g.Qubits[0], g.Qubits[1])
				if patternOf(e) != bestPattern {
					continue // wait for this pattern's turn
				}
				omega := freqOf(e)
				b.setFreq(g.Qubits[0], omega)
				b.setFreq(g.Qubits[1], omega)
				events = append(events, GateEvent{
					Gate: g, Duration: b.gateDuration(g, omega), Freq: omega, Color: 0,
				})
			} else {
				events = append(events, GateEvent{
					Gate: g, Duration: b.gateDuration(g, 0), Freq: b.park[g.Qubits[0]], Color: -1,
				})
			}
			f.Issue(idx)
		}
		colors := 0
		if bestPattern >= 0 && byPattern[bestPattern] > 0 {
			colors = 1
		}
		b.emitSlice(events, colors, 0)
	}
	return b.finish(), nil
}

// tilingPatterns partitions the device couplers into matchings, returning
// the pattern of each coupler indexed by its dense edge id. On a grid this
// is the Sycamore ABCD pattern (horizontal/vertical alternating by
// parity); on arbitrary topologies it falls back to a greedy matching
// decomposition (proper edge coloring via the line graph).
func tilingPatterns(dev *topology.Device) []int {
	out := make([]int, dev.Coupling.NumEdges())
	if dev.IsGrid() {
		for id, e := range dev.Edges() {
			cu, cv := dev.Coords[e.U], dev.Coords[e.V]
			if cu.Row == cv.Row { // horizontal coupler
				out[id] = min(cu.Col, cv.Col) % 2
			} else { // vertical coupler
				out[id] = 2 + min(cu.Row, cv.Row)%2
			}
		}
		return out
	}
	lg, _ := graph.LineGraph(dev.Coupling)
	coloring := graph.WelshPowell(lg)
	for v, col := range coloring {
		if col >= 0 {
			out[v] = int(col)
		}
	}
	return out
}

// Registry returns the five strategies of Table I in presentation order.
func Registry() []Compiler {
	return []Compiler{Naive{}, Gmon{}, Uniform{}, Static{}, ColorDynamic{}}
}

// Extended returns Registry plus the extensions beyond the paper's Table I
// (currently GmonDynamic, the §VIII ColorDynamic-on-gmon combination).
func Extended() []Compiler {
	return append(Registry(), GmonDynamic{})
}

// ByName returns the compiler with the given Name (including extensions),
// or nil.
func ByName(name string) Compiler {
	for _, c := range Extended() {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

// Names returns the strategy names in Registry order.
func Names() []string {
	rs := Registry()
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Name()
	}
	return out
}
