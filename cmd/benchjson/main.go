// Command benchjson converts `go test -bench` text output (read from
// stdin) into a machine-readable JSON document mapping benchmark name to
// its measurements, so the perf trajectory can be tracked across PRs and
// diffed by cmd/benchcmp.
//
// Usage:
//
//	go test -bench=. -benchmem -benchtime=1x -run='^$' ./... | benchjson > BENCH.json
//
// When a benchmark appears multiple times (-count=N), the minimum of each
// measurement is kept — the least-noise estimate of the true cost — and
// Runs records how many samples were folded in. Names are kept verbatim
// (including any -GOMAXPROCS suffix): a "-8" cannot be distinguished from
// a legitimate name ending in a number, and meaningful ns/op comparisons
// happen on one machine with one GOMAXPROCS anyway (the CI regression
// guard benches base and head on the same runner). Keys in the emitted
// JSON are sorted by encoding/json.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's folded measurements.
type Result struct {
	Runs        int     `json:"runs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values by unit (e.g.
	// "cache-hit-%").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	results := make(map[string]*Result)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r, ok := results[name]
		if !ok {
			r = &Result{}
			results[name] = r
		}
		r.Runs++
		if r.Runs == 1 || iters > r.Iterations {
			r.Iterations = iters
		}
		first := r.Runs == 1
		// The remainder is (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				if first || val < r.NsPerOp {
					r.NsPerOp = val
				}
			case "B/op":
				if first || val < r.BytesPerOp {
					r.BytesPerOp = val
				}
			case "allocs/op":
				if first || val < r.AllocsPerOp {
					r.AllocsPerOp = val
				}
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				if prev, ok := r.Metrics[unit]; !ok || val < prev {
					r.Metrics[unit] = val
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
}
