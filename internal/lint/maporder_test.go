package lint_test

import (
	"testing"

	"fastsc/internal/lint"
	"fastsc/internal/lint/linttest"
)

func TestMapOrderFixture(t *testing.T) {
	res := linttest.Run(t, "maporder", lint.MapOrderAnalyzer)
	if len(res.Suppressed) != 0 {
		t.Errorf("maporder fixture honored %d suppressions, want 0", len(res.Suppressed))
	}
}
