package bench

import (
	"fmt"
	"reflect"
	"testing"

	"fastsc/internal/circuit"
	"fastsc/internal/topology"
)

// Equivalence tests pinning circuit.Analysis to the reference
// implementations on the paper's benchmark families (QAOA, XEB, Ising —
// the satellite workloads of the Fig 9 sweep), both as generated and after
// native decomposition, which is what the schedulers actually analyze.
func TestAnalysisMatchesReferenceOnBenchmarks(t *testing.T) {
	grid := topology.Grid(4, 4)
	cases := []struct {
		name string
		c    *circuit.Circuit
	}{
		{"qaoa(9)", QAOA(9, 7)},
		{"qaoa(16)", QAOA(16, 3)},
		{"ising(8)", Ising(8, 0)},
		{"ising(16)", Ising(16, 4)},
		{"xeb(16,5)", XEB(grid, 5, 7)},
		{"xeb(16,10)", XEB(grid, 10, 11)},
		{"bv(9)", BV(9, 5)},
		{"qgan(12)", QGAN(12, 3, 9)},
	}
	for _, tc := range cases {
		for _, variant := range []struct {
			suffix string
			c      *circuit.Circuit
		}{
			{"", tc.c},
			{"/decomposed", circuit.Decompose(tc.c, circuit.Hybrid)},
		} {
			t.Run(tc.name+variant.suffix, func(t *testing.T) {
				c := variant.c
				a := circuit.Analyze(c)
				if got, want := a.Layers(), c.ASAPLayers(); !reflect.DeepEqual(got, want) {
					t.Fatalf("Analysis layers diverge from ASAPLayers (depth %d vs %d)",
						a.Depth(), len(want))
				}
				crit := c.Criticality()
				acrit := a.Criticality()
				for i := range crit {
					if int(acrit[i]) != crit[i] {
						t.Fatalf("criticality[%d] = %d, reference %d", i, acrit[i], crit[i])
					}
				}
				// Greedy frontier drain must reproduce the ASAP layers
				// (ready order per round = one ASAP layer, ascending).
				f := a.NewFrontier()
				defer f.Release()
				layer := 0
				for !f.Done() {
					ready := append([]int(nil), f.Ready()...)
					if !reflect.DeepEqual(ready, a.Layers()[layer]) {
						t.Fatalf("frontier round %d = %v, ASAP layer %v", layer, ready, a.Layers()[layer])
					}
					for _, idx := range ready {
						f.Issue(idx)
					}
					layer++
				}
				if layer != a.Depth() {
					t.Fatalf("frontier drained in %d rounds, depth %d", layer, a.Depth())
				}
			})
		}
	}
}

// TestAnalysisSignatureDistinguishesBenchmarks checks no two distinct
// benchmark circuits share a content signature (the circ cache key).
func TestAnalysisSignatureDistinguishesBenchmarks(t *testing.T) {
	grid := topology.Grid(4, 4)
	seen := make(map[string]string)
	for i, c := range []*circuit.Circuit{
		QAOA(9, 7), QAOA(9, 8), QAOA(16, 3), Ising(8, 0), Ising(16, 4),
		XEB(grid, 5, 7), XEB(grid, 5, 8), BV(9, 5), QGAN(12, 3, 9),
	} {
		name := fmt.Sprintf("case-%d", i)
		sig := c.Signature()
		if prev, dup := seen[sig]; dup {
			t.Fatalf("%s and %s share signature %s", prev, name, sig)
		}
		seen[sig] = name
	}
}
