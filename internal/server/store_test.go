package server

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"fastsc/internal/faultpoint"
)

func storeWithPath(t *testing.T) (*batchStore, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "batches.store")
	st := newBatchStore(16)
	if _, _, err := st.Open(path); err != nil {
		t.Fatal(err)
	}
	return st, path
}

func TestStoreRoundTrip(t *testing.T) {
	st, path := storeWithPath(t)
	if st.Epoch() != 1 {
		t.Fatalf("fresh epoch = %d, want 1", st.Epoch())
	}
	done := st.add(2, 7)
	_ = done.appendLine(ResultLine{Type: "result", ID: "a", Index: 0, Strategy: "s"})
	_ = done.appendLine(ResultLine{Type: "error", ID: "b", Index: 1, Strategy: "s", Error: "boom"})
	done.finish(DoneLine{Type: "done", Jobs: 2, Failed: 1, ElapsedMicros: 123}, "done")
	running := st.add(1, 5)
	running.setRunning()
	queued := st.add(1, 5)
	if err := st.SaveNow(); err != nil {
		t.Fatal(err)
	}

	// A new store (the restarted process) restores everything: the done
	// batch verbatim, the in-flight ones re-marked interrupted.
	st2 := newBatchStore(16)
	restored, interrupted, err := st2.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 3 || interrupted != 2 {
		t.Fatalf("restored %d interrupted %d, want 3 and 2", restored, interrupted)
	}
	if st2.Epoch() != 2 {
		t.Fatalf("epoch after recovery = %d, want 2", st2.Epoch())
	}
	got := st2.get(done.id).snapshot()
	if got.Status != "done" || got.Failed != 1 || got.Completed != 2 || got.ElapsedMicros != 123 {
		t.Fatalf("restored done batch: %+v", got)
	}
	if got.Results[1].Error != "boom" {
		t.Fatalf("restored results: %+v", got.Results)
	}
	for _, id := range []string{running.id, queued.id} {
		if s := st2.get(id).snapshot().Status; s != "interrupted" {
			t.Fatalf("batch %s status = %q, want interrupted", id, s)
		}
	}
	// The id counter is restored too: new ids never collide with old ones.
	fresh := st2.add(1, 5)
	if st2.get(fresh.id) != st2.m[fresh.id] || fresh.id == done.id || fresh.id == queued.id {
		t.Fatalf("post-recovery id %q collides", fresh.id)
	}
}

// TestStoreCorruptSnapshotDegradesToEmpty covers the whole degrade
// contract: corrupt bytes, a truncated file, and a version-mismatched
// snapshot each produce an empty store with a nil error.
func TestStoreCorruptSnapshotDegradesToEmpty(t *testing.T) {
	makeSnapshot := func(t *testing.T) (string, []byte) {
		st, path := storeWithPath(t)
		st.add(1, 5).finish(DoneLine{Type: "done", Jobs: 1}, "done")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return path, data
	}

	for _, tc := range []struct {
		name   string
		mutate func(t *testing.T, data []byte) []byte
	}{
		{"corrupt header", func(t *testing.T, data []byte) []byte {
			for i := 0; i < 16 && i < len(data); i++ {
				data[i] ^= 0xff
			}
			return data
		}},
		{"truncated", func(t *testing.T, data []byte) []byte {
			return data[:len(data)/2]
		}},
		{"version mismatch", func(t *testing.T, data []byte) []byte {
			var buf bytes.Buffer
			err := gob.NewEncoder(&buf).Encode(storeSnapshot{
				Magic: storeMagic, Version: storeVersion + 1, Epoch: 9, Seq: 9,
				Records: []persistedBatch{{ID: "b-000001", Status: "done", Jobs: 1}},
			})
			if err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path, data := makeSnapshot(t)
			if err := os.WriteFile(path, tc.mutate(t, data), 0o644); err != nil {
				t.Fatal(err)
			}
			st := newBatchStore(16)
			restored, interrupted, err := st.Open(path)
			if err != nil {
				t.Fatalf("Open must degrade silently, got %v", err)
			}
			if restored != 0 || interrupted != 0 || st.len() != 0 {
				t.Fatalf("restored %d interrupted %d len %d, want empty", restored, interrupted, st.len())
			}
			// A degraded store starts a fresh epoch and keeps working.
			if st.Epoch() != 1 {
				t.Fatalf("epoch = %d, want 1 after degrade", st.Epoch())
			}
			rec := st.add(1, 5)
			rec.finish(DoneLine{Type: "done", Jobs: 1}, "done")
			if err := st.SaveNow(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestStoreMissingFileStartsEmpty(t *testing.T) {
	st := newBatchStore(16)
	restored, interrupted, err := st.Open(filepath.Join(t.TempDir(), "absent.store"))
	if err != nil || restored != 0 || interrupted != 0 {
		t.Fatalf("Open(missing) = %d, %d, %v", restored, interrupted, err)
	}
}

// TestStoreFaultpointSaveErr: an injected persist failure is counted and
// swallowed — the store keeps serving from memory and the next persist
// succeeds.
func TestStoreFaultpointSaveErr(t *testing.T) {
	defer faultpoint.Reset()
	faultpoint.Reset()
	st, path := storeWithPath(t)
	if err := faultpoint.Arm(faultpoint.StoreSaveErr + "*1"); err != nil {
		t.Fatal(err)
	}
	rec := st.add(1, 5) // this add's persist hits the fault point
	if _, _, saveErrs := st.RecoveryStats(); saveErrs != 1 {
		t.Fatalf("saveErrs = %d, want 1", saveErrs)
	}
	if st.get(rec.id) == nil {
		t.Fatal("record lost after failed persist")
	}
	rec.finish(DoneLine{Type: "done", Jobs: 1}, "done")
	st2 := newBatchStore(16)
	restored, _, err := st2.Open(path)
	if err != nil || restored != 1 {
		t.Fatalf("after recovered persist: restored %d, %v", restored, err)
	}
}

// TestStoreFaultpointLoadCorrupt: the store.load.corrupt point flips the
// snapshot bytes on read, forcing the degrade path without touching the
// file — the chaos harness uses this to prove a daemon boots through a
// corrupt store.
func TestStoreFaultpointLoadCorrupt(t *testing.T) {
	defer faultpoint.Reset()
	faultpoint.Reset()
	st, path := storeWithPath(t)
	st.add(1, 5).finish(DoneLine{Type: "done", Jobs: 1}, "done")

	if err := faultpoint.Arm(faultpoint.StoreLoadCorrupt + "*1"); err != nil {
		t.Fatal(err)
	}
	st2 := newBatchStore(16)
	restored, _, err := st2.Open(path)
	if err != nil || restored != 0 {
		t.Fatalf("corrupt-injected Open: restored %d, %v; want empty, nil", restored, err)
	}
	if faultpoint.Fired(faultpoint.StoreLoadCorrupt) != 1 {
		t.Fatal("fault point did not fire")
	}
	// Disarmed, the same file restores fine: the corruption was injected,
	// not real.
	st3 := newBatchStore(16)
	if restored, _, err := st3.Open(path); err != nil || restored != 1 {
		t.Fatalf("clean Open: restored %d, %v", restored, err)
	}
}

// TestStoreSaveErrIsInjected asserts the injected error identity so a
// genuine I/O failure can never masquerade as an armed fault point.
func TestStoreSaveErrIsInjected(t *testing.T) {
	defer faultpoint.Reset()
	faultpoint.Reset()
	if err := faultpoint.Arm(faultpoint.StoreSaveErr); err != nil {
		t.Fatal(err)
	}
	err := writeStoreSnapshot(filepath.Join(t.TempDir(), "s"), storeSnapshot{Magic: storeMagic, Version: storeVersion})
	if !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}
