// Package xtalk constructs the crosstalk graph G_x^(d) of a device
// (§IV-C2, Algorithm 2): one vertex per coupler (edge of the connectivity
// graph G_c), with two vertices adjacent when the corresponding couplers
// either share a qubit or are connected by a path of length at most d. Two
// simultaneous two-qubit gates whose couplers are adjacent in G_x must be
// separated in frequency (different colors) or in time (different slices).
//
// Construction is distance-bounded: instead of the naive O(c²) all-pairs
// coupler loop over a full vertex-distance matrix, Build runs one bounded
// BFS (depth d) from each coupler's two endpoints and connects it to every
// coupler with an endpoint inside that ball — O(c · reach(d)) work, where
// reach(d) is constant on bounded-degree devices. Coupler ids are the
// device connectivity graph's dense edge ids (Edges() order), so the
// edge→vertex lookup is a binary search over a neighbor slice, not a map.
package xtalk

import (
	"fmt"
	"slices"

	"fastsc/internal/graph"
	"fastsc/internal/topology"
)

// Graph is the crosstalk graph of a device, with coupler-index vertices.
type Graph struct {
	// G has one vertex per coupler, indexed into Couplers.
	G *graph.Graph
	// Couplers maps vertex id -> connectivity-graph edge, sorted by (U,V).
	Couplers []graph.Edge
	// Distance is the crosstalk distance d used to build the graph
	// (d = 1 reproduces the paper's standard construction; §IV-C3
	// generalizes to larger d).
	Distance int
	// gc is the device connectivity graph; its dense EdgeID ordering is
	// exactly the Couplers ordering, which is what makes VertexOf a
	// map-free lookup.
	gc *graph.Graph
}

// Build constructs the distance-d crosstalk graph of dev. d must be >= 1.
//
//fastsc:hotpath the per-coupler bounded-BFS loop is the cache-miss cost of the xtalk region (BenchmarkXtalkBuild guards it); nothing in it may allocate a map or box
func Build(dev *topology.Device, d int) *Graph {
	if d < 1 {
		panic(fmt.Sprintf("xtalk: crosstalk distance must be >= 1, got %d", d))
	}
	gc := dev.Coupling
	couplers := gc.Edges()
	nc := len(couplers)
	nq := gc.Cap()

	// Incidence CSR: coupler ids attached to each qubit.
	incOff := make([]int32, nq+1)
	for _, e := range couplers {
		incOff[e.U+1]++
		incOff[e.V+1]++
	}
	for q := 0; q < nq; q++ {
		incOff[q+1] += incOff[q]
	}
	inc := make([]int32, 2*nc)
	fill := make([]int32, nq)
	for i, e := range couplers {
		inc[incOff[e.U]+fill[e.U]] = int32(i)
		fill[e.U]++
		inc[incOff[e.V]+fill[e.V]] = int32(i)
		fill[e.V]++
	}

	// Scratch reused across couplers: two bounded-BFS distance fields
	// (reset via touched lists), a seen stamp per candidate coupler, and
	// the per-coupler neighbor list.
	distA := make([]int32, nq)
	distB := make([]int32, nq)
	for q := range distA {
		distA[q] = graph.Unreachable
		distB[q] = graph.Unreachable
	}
	var queue, touchedA, touchedB []int32
	seen := make([]int32, nc)
	for i := range seen {
		seen[i] = -1
	}
	var nbrs []int32

	const far = int32(1 << 30) // strictly above any admissible bound
	distAt := func(dist []int32, q int) int32 {
		if d := dist[q]; d >= 0 {
			return d
		}
		return far
	}

	g := graph.NewDense(nc)
	for i := 0; i < nc; i++ {
		e := couplers[i]
		queue, touchedA = gc.BoundedBFS(e.U, d, distA, queue, touchedA[:0])
		queue, touchedB = gc.BoundedBFS(e.V, d, distB, queue, touchedB[:0])

		nbrs = nbrs[:0]
		for _, touched := range [2][]int32{touchedA, touchedB} {
			for _, w := range touched {
				for _, j := range inc[incOff[w]:incOff[w+1]] {
					if int(j) <= i || seen[j] == int32(i) {
						continue
					}
					seen[j] = int32(i)
					f := couplers[j]
					dij := min(
						min(distAt(distA, f.U), distAt(distA, f.V)),
						min(distAt(distB, f.U), distAt(distB, f.V)),
					)
					if int(dij) <= d {
						nbrs = append(nbrs, j)
					}
				}
			}
		}
		slices.Sort(nbrs)
		for _, j := range nbrs {
			g.AddEdge(i, int(j)) // ascending i then j: O(1) appends
		}

		for _, w := range touchedA {
			distA[w] = graph.Unreachable
		}
		for _, w := range touchedB {
			distB[w] = graph.Unreachable
		}
	}
	return &Graph{G: g, Couplers: couplers, Distance: d, gc: gc}
}

// VertexOf returns the crosstalk-graph vertex for the coupler between
// qubits a and b, and whether that coupler exists. Coupler ids equal the
// connectivity graph's dense edge ids, so this is a binary search, not a
// map probe.
func (x *Graph) VertexOf(a, b int) (int, bool) {
	if a == b {
		return 0, false
	}
	return x.gc.EdgeID(a, b)
}

// ActiveSubgraph returns the subgraph of the crosstalk graph induced by the
// given active couplers (the pairs currently executing two-qubit gates) —
// the graph H of §V-B2 whose coloring yields this slice's interaction
// frequencies. Unknown couplers are ignored.
func (x *Graph) ActiveSubgraph(active []graph.Edge) *graph.Graph {
	verts := make([]int, 0, len(active))
	for _, e := range active {
		if v, ok := x.gc.EdgeID(e.U, e.V); ok {
			verts = append(verts, v)
		}
	}
	return x.G.Subgraph(verts)
}

// ActiveComponents splits an active vertex set into the connected
// components of its induced crosstalk subgraph (the same graph
// ActiveSubgraph builds, here addressed by vertex ids directly). Each
// component lists its vertices ascending; components are ordered by their
// smallest vertex. Because the active subgraph is vertex-induced, coloring
// each component's own induced subgraph independently and merging is
// exactly equivalent to coloring the whole active subgraph — no crosstalk
// edge crosses a component boundary by construction — which is what lets
// the scheduler solve (and memoize) components in isolation.
func (x *Graph) ActiveComponents(activeVerts []int) [][]int {
	return x.G.Subgraph(activeVerts).Components()
}

// NeighborsOf returns the couplers adjacent (in the crosstalk graph) to the
// coupler between a and b, i.e. every coupler that would conflict with a
// simultaneous gate on (a,b).
func (x *Graph) NeighborsOf(a, b int) []graph.Edge {
	v, ok := x.VertexOf(a, b)
	if !ok {
		return nil
	}
	adj := x.G.Adj(v)
	out := make([]graph.Edge, len(adj))
	for i, n := range adj {
		out[i] = x.Couplers[n]
	}
	return out
}

// ConflictDegree returns, for the coupler (a,b), how many of the couplers in
// active are adjacent to it in the crosstalk graph. The noise-aware queueing
// scheduler postpones gates whose conflict degree is too high (§V-B6).
func (x *Graph) ConflictDegree(a, b int, active []graph.Edge) int {
	v, ok := x.VertexOf(a, b)
	if !ok {
		return 0
	}
	n := 0
	for _, e := range active {
		if w, ok := x.gc.EdgeID(e.U, e.V); ok && x.G.HasEdge(v, w) {
			n++
		}
	}
	return n
}

// ApproxSize reports the approximate in-memory footprint in bytes; the
// compile cache's size-aware eviction weighs crosstalk graphs by it.
func (x *Graph) ApproxSize() int {
	return x.G.ApproxSize() + 16*len(x.Couplers) + 48
}

// Spectators returns the qubits that neighbor (in the connectivity graph)
// either endpoint of the coupler (a,b) without being part of it. During a
// gate on (a,b), spectators must idle off-resonance from the interaction
// frequency.
func Spectators(dev *topology.Device, a, b int) []int {
	var out []int
	for _, q := range [2]int{a, b} {
		for _, n := range dev.Coupling.Adj(q) {
			if int(n) == a || int(n) == b || containsInt(out, int(n)) {
				continue
			}
			out = append(out, int(n))
		}
	}
	slices.Sort(out)
	return out
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
