package graph

import (
	"math/bits"
	"sort"
)

// Uncolored marks a vertex that has no color assigned.
const Uncolored int32 = -1

// Coloring assigns a color (small non-negative integer) to each vertex,
// stored densely: c[v] is the color of vertex v, or Uncolored (-1) for
// vertices outside the colored set (absent from the graph, or deferred by a
// color budget). Index a Coloring directly — c[v] — on the vertex ids of
// the graph it was produced from; len(c) covers that graph's Cap().
type Coloring []int32

// NewColoring returns an all-Uncolored coloring spanning vertices 0..n-1.
func NewColoring(n int) Coloring {
	c := make(Coloring, n)
	for i := range c {
		c[i] = Uncolored
	}
	return c
}

// Has reports whether vertex v has a color.
func (c Coloring) Has(v int) bool {
	return v >= 0 && v < len(c) && c[v] >= 0
}

// Colored returns the number of vertices with a color.
func (c Coloring) Colored() int {
	n := 0
	for _, col := range c {
		if col >= 0 {
			n++
		}
	}
	return n
}

// MaxColor returns the largest color used, or -1 when nothing is colored.
func (c Coloring) MaxColor() int {
	max := -1
	for _, col := range c {
		if int(col) > max {
			max = int(col)
		}
	}
	return max
}

// NumColors returns the number of distinct colors used.
func (c Coloring) NumColors() int {
	max := c.MaxColor()
	if max < 0 {
		return 0
	}
	seen := newBitset(max + 1)
	n := 0
	for _, col := range c {
		if col >= 0 && !seen.has(int(col)) {
			seen.set(int(col))
			n++
		}
	}
	return n
}

// ColorCounts returns the occupancy of each color: counts[k] is the number
// of vertices colored k, for k in [0, MaxColor]. Colors the greedy colorers
// produce are contiguous (0..NumColors-1), but sparse colorings are
// tolerated — unused colors simply count zero.
func (c Coloring) ColorCounts() []int {
	counts := make([]int, c.MaxColor()+1)
	for _, col := range c {
		if col >= 0 {
			counts[col]++
		}
	}
	return counts
}

// Classes groups vertices by color: classes[k] lists the vertices with
// color k in ascending order, for every k in [0, MaxColor]. The colors need
// not be contiguous — a color that no vertex uses yields an empty (nil)
// class rather than shifting later classes, so classes[k] always means
// "the vertices colored exactly k". Uncolored vertices appear in no class.
func (c Coloring) Classes() [][]int {
	classes := make([][]int, c.MaxColor()+1)
	for v, col := range c {
		if col >= 0 {
			classes[col] = append(classes[col], v) // v ascending -> sorted
		}
	}
	return classes
}

// Valid reports whether c is a proper coloring of g: every vertex of g is
// colored and no edge is monochromatic.
func (c Coloring) Valid(g *Graph) bool {
	for v := 0; v < g.Cap(); v++ {
		if !g.HasNode(v) {
			continue
		}
		if !c.Has(v) {
			return false
		}
		for _, u := range g.Adj(v) {
			if int(u) > v && c[u] == c[v] {
				return false
			}
		}
	}
	return true
}

// bitset is a small reusable bit vector for used-color scans.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear() {
	for i := range b {
		b[i] = 0
	}
}

// firstClear returns the smallest index < limit whose bit is unset, or -1.
func (b bitset) firstClear(limit int) int {
	for w := 0; w*64 < limit; w++ {
		inv := ^b[w]
		if inv == 0 {
			continue
		}
		i := w*64 + bits.TrailingZeros64(inv)
		if i >= limit {
			return -1
		}
		return i
	}
	return -1
}

// greedyInto colors g's vertices in the given order, assigning each vertex
// the smallest color not used by an already-colored neighbor and at most
// maxColors colors (maxColors <= 0 means unbounded). Vertices that cannot
// be colored within the budget are returned in ascending order. The used
// bitset is the only per-call scratch: cleared per vertex, never
// reallocated, which is what makes the coloring path allocation-lean.
func greedyInto(c Coloring, g *Graph, order []int, maxColors int) []int {
	// A vertex of degree d needs at most color d; the scan never looks past
	// MaxDegree+1 bits.
	limit := g.MaxDegree() + 1
	if maxColors > 0 && maxColors < limit {
		limit = maxColors
	}
	used := newBitset(limit)
	var deferred []int
	for _, v := range order {
		used.clear()
		for _, u := range g.Adj(v) {
			if col := c[u]; col >= 0 && int(col) < limit {
				used.set(int(col))
			}
		}
		col := used.firstClear(limit)
		if col < 0 {
			deferred = append(deferred, v)
			continue
		}
		c[v] = int32(col)
	}
	sortInts(deferred)
	return deferred
}

// GreedyColoring colors the vertices of g in the given order, assigning
// each vertex the smallest color not used by an already-colored neighbor.
// The order must contain every vertex of g exactly once.
func GreedyColoring(g *Graph, order []int) Coloring {
	c := NewColoring(g.Cap())
	greedyInto(c, g, order, 0)
	return c
}

// welshPowellOrder returns g's vertices by non-increasing degree, breaking
// degree ties by ascending vertex id.
func welshPowellOrder(g *Graph) []int {
	order := g.Nodes()
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	return order
}

// WelshPowell colors g greedily in order of non-increasing degree, breaking
// degree ties by ascending vertex id. This is the polynomial-time
// approximation named by the paper (§V-B2); it uses at most MaxDegree+1
// colors.
func WelshPowell(g *Graph) Coloring {
	c := NewColoring(g.Cap())
	greedyInto(c, g, welshPowellOrder(g), 0)
	return c
}

// BoundedColoring colors g with at most maxColors colors, dropping vertices
// that cannot be colored within the budget. It colors in Welsh–Powell order
// and returns the partial coloring plus the list of deferred (uncolored)
// vertices in ascending order. With maxColors <= 0 it behaves like
// WelshPowell (no budget) and defers nothing.
//
// The compiler uses this to honor the tunability budget of Fig 11: gates
// whose crosstalk-graph vertices are deferred get postponed to a later slice.
func BoundedColoring(g *Graph, maxColors int) (Coloring, []int) {
	c := NewColoring(g.Cap())
	deferred := greedyInto(c, g, welshPowellOrder(g), maxColors)
	return c, deferred
}

// TwoColor attempts to 2-color g by BFS. It returns (coloring, true) when g
// is bipartite, and (nil, false) otherwise. A 2-colorable connectivity graph
// (e.g. any 2-D mesh) needs only two idle frequencies (§IV-C1).
func TwoColor(g *Graph) (Coloring, bool) {
	c := NewColoring(g.Cap())
	queue := make([]int32, 0, g.NumNodes())
	for start := 0; start < g.Cap(); start++ {
		if !g.HasNode(start) || c[start] >= 0 {
			continue
		}
		c[start] = 0
		queue = append(queue[:0], int32(start))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Adj(int(v)) {
				if cu := c[u]; cu >= 0 {
					if cu == c[v] {
						return nil, false
					}
					continue
				}
				c[u] = 1 - c[v]
				queue = append(queue, u)
			}
		}
	}
	return c, true
}
