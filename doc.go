// Package fastsc is a Go reproduction of "Systematic Crosstalk Mitigation
// for Superconducting Qubits via Frequency-Aware Compilation" (Ding et al.,
// MICRO 2020): the ColorDynamic frequency-aware compiler, its four baseline
// strategies, the transmon-physics substrate, NISQ benchmark generators, a
// noisy state-vector simulator, and a harness regenerating every table and
// figure of the paper's evaluation.
//
// The library lives under internal/; see internal/core for the compilation
// entry point, cmd/fastsc for the CLI, cmd/fastscd for the compile daemon,
// cmd/experiments for the paper harness, and bench_test.go for the
// per-figure benchmarks. docs/architecture.md maps the layers, the cache
// regions and their key schemas; docs/api.md documents the daemon's HTTP
// API.
//
// # Batch compilation
//
// internal/compile is the throughput layer: a batch engine that fans
// (circuit, compiler, system) jobs across a bounded worker pool and a
// concurrency-safe sharded LRU cache that memoizes the solver stages — SMT
// frequency solutions keyed by (k, band, anharmonicity), crosstalk graphs
// and static palettes keyed by the device's content signature, and
// per-slice coloring/frequency assignments keyed by the exact sorted
// vertex set of the active interaction subgraph (collision-proof by
// construction: a cache hit is always the right frequency assignment). A
// compile.Context carries both and is injected into every
// schedule.Compiler; core.BatchCompile streams results over a channel, and
// the experiment harness (internal/expt) runs the full Fig 9–13 sweeps
// through it.
//
// The cache deduplicates concurrent misses on the same key through a
// single-flight group (one solve per key no matter how many workers need
// it), shards its lock across a power of two of independent LRU lists so
// large worker pools do not serialize, weighs entries by approximate byte
// size when evicting (a crosstalk graph pays for the slice entries it
// displaces), and snapshots its process-independent regions to disk
// (versioned gob; see compile.Cache.Save/Load). Both CLIs expose the
// snapshot as -cache-file, so repeated sweeps start warm; a missing,
// corrupt or version-mismatched snapshot silently degrades to a cold
// cache.
//
// # Intra-circuit parallelism
//
// One deep circuit cannot be helped by batch-level parallelism, so the
// worker budget is also spent inside a single compilation: ColorDynamic
// splits each slice's active subgraph into connected components and
// solves them concurrently over the Context's spare worker slots
// (memoized per component in the slice cache region), smt.SolveWith runs
// the frequency bisection as a speculative probe tree when slots are
// free, and a pioneer goroutine replays the slice loop one slice ahead
// of the main loop to warm the cache. All three produce schedules
// byte-identical to the serial path; the "Intra-circuit parallelism"
// section of docs/architecture.md gives the component key schema, the
// determinism argument and the prefetch policy.
//
// # Compilation as a service
//
// cmd/fastscd serves the same pipeline as a long-running HTTP daemon
// (internal/server): batches of QASM or native-format circuits compile
// against a named device and stream back as NDJSON result lines, with
// async submit/poll, admission control (bounded queue plus a per-request
// worker budget instead of one global pool), request-scoped cache
// accounting in every response, a Prometheus /metrics endpoint over the
// cache-region counters, and graceful drain on SIGTERM that persists a
// snapshot to warm the next start. docs/api.md is the wire contract;
// docs/architecture.md shows where the daemon sits in the layer map.
//
// # Flat graph core
//
// internal/graph stores graphs as sorted per-vertex neighbor slices over
// dense non-negative vertex ids (adjacency-slice/CSR style) rather than
// nested maps: neighbor iteration is O(deg) over contiguous int32s
// (Graph.Adj), HasEdge is a binary search, BFS runs over flat distance
// arrays, AllPairsDistances returns a flat n×n matrix, and colorings are
// []int32 indexed by vertex with -1 for uncolored (graph.Coloring). The
// representation is immutable-by-convention once built and every
// iteration order is sorted ascending, so compilation output is
// deterministic and cache keys can consume vertex sets as sorted slices
// natively (compile.SliceKey skips its defensive copy for sorted input).
// Graph.EdgeID gives each edge the dense id of its position in the sorted
// Edges() enumeration — the coupler numbering shared by xtalk.Graph, the
// static palettes and the tiling patterns — via a lazily built, mutation-
// invalidated index, so edge→index lookups are map-free too.
//
// internal/xtalk builds the distance-d crosstalk graph by bounded BFS from
// each coupler's endpoints — O(couplers · reach(d)) instead of the old
// all-pairs O(couplers²) probe — and internal/schedule compiles slices
// against reusable sync.Pool scratch buffers, so the cold (cache-miss)
// path allocates only what the finished Schedule retains.
//
// # Dense device model
//
// phys.System stores its per-coupler bare couplings as a flat []float64
// indexed by the dense coupler id of Device.Coupling.EdgeID (the coupler's
// position in Device.Edges()), not as an edge-keyed map. System.G0(a, b)
// resolves the id by binary search over a neighbor slice and panics on
// uncoupled pairs (an uncoupled pair reaching a coupling lookup is a
// compiler bug); System.G0ByID serves hot loops that already hold a
// coupler id — noise channels iterating Device.Edges(), crosstalk weights,
// static palettes — with a direct index. The compile hot path performs
// zero map probes per gate. compile.SystemSignature hashes the dense slice
// in coupler-id order, which preserves the signatures the old map-based
// iteration produced.
//
// # Layout and routing
//
// internal/mapping is the pluggable layout/routing subsystem. A
// mapping.Router translates a logical circuit onto a device's physical
// qubits through SWAP insertion: GreedyRouter (the default) walks each
// uncoupled gate's operands together along the lexicographically smallest
// shortest path — resolved against the device graph's cached, lazily
// built DistanceMatrix (graph.Graph.Distances) instead of a per-gate BFS
// — and LookaheadRouter runs a SABRE-style swap search scoring candidate
// SWAPs over the blocked dependency frontier plus a decaying extended
// window of upcoming gates (window and decay configurable), which roughly
// halves the SWAP count on random-interaction workloads like QAOA.
// Initial placements are pluggable too: identity, snake (boustrophedon
// chains) and degree (high-interaction logical qubits, per the Analysis
// interaction counts, seated on high-degree physical qubits). Both
// routers are deterministic, so routed results are shareable: the compile
// cache's route region memoizes one immutable mapping.Result per
// (circuit signature, device signature, placement, router config) —
// process-local like circ, size-aware via ApproxSize — and
// core.CompileCtx routes through it, so the 5–7 strategies of a batch
// route each circuit once. Both CLIs expose -router and -placement; the
// ext-routers experiment tabulates the greedy/lookahead comparison.
//
// # Analyzed-circuit IR
//
// circuit.Analyze computes the analyzed-circuit IR once per circuit: CSR
// per-qubit gate streams (one flat []int32 plus offsets instead of a
// ragged [][]int), the ASAP layers and depth in the same flat layer-offset
// form, per-gate criticality, and a content signature (Circuit.Signature)
// over qubit count and every gate's kind/operands/angle. An Analysis is
// immutable after construction and shared read-only; the compile cache's
// circ region memoizes one per signature, so every strategy of a batch
// sweep consumes the same analysis instead of re-deriving the dependency
// structure per compile (the circ region, like xtalk, is process-local and
// never persisted — an analysis rebuilds in microseconds). The queueing
// frontier (circuit.Frontier) is a cheap resettable view over the shared
// CSR: its cursor state comes from a sync.Pool and Ready() fills a
// reusable buffer with no map and no per-call allocation — the returned
// slice is valid until the next Ready call.
//
// # Static enforcement
//
// The invariants above — deterministic output, exact cache keys,
// zero-alloc hot loops, paired pool scratch, threaded contexts — are
// enforced at vet time by fastscvet (cmd/fastscvet, analyzers in
// internal/lint), the repo's own go/analysis-style suite run by `make
// lint` and CI through go vet -vettool. The "Invariants & enforcement"
// section of docs/architecture.md maps each invariant to its analyzer
// and to the runtime test that backstops it.
package fastsc
