// Package graph provides the undirected-graph machinery used throughout the
// crosstalk-mitigation compiler: device connectivity graphs, their line
// graphs, crosstalk graphs, breadth-first distances, and greedy vertex
// coloring (Welsh–Powell).
//
// Graphs are simple (no self loops, no parallel edges) and undirected, with
// dense non-negative integer vertex identifiers. The representation is flat:
// one sorted neighbor slice per vertex (adjacency-slice / CSR-style), so
// neighbor iteration is O(deg) with zero map probes, HasEdge is a binary
// search, and the whole structure is a handful of contiguous allocations.
// All iteration orders are deterministic (sorted ascending) so that
// compilation results are reproducible run to run.
//
// Vertex ids index into the adjacency table directly, so they should be
// small and dense (qubit ids 0..n-1, coupler ids 0..m-1 — which is how every
// caller in this codebase numbers vertices). Sparse id sets still work —
// Subgraph keeps original ids, with absent ids simply marked not-present —
// but the table spans [0, max id], so ids in the millions would waste
// memory. Negative ids panic.
package graph

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Edge is an undirected edge between vertices U and V, normalized U < V.
type Edge struct {
	U, V int
}

// NewEdge returns the normalized edge between a and b.
// It panics if a == b, since the graphs here are simple.
func NewEdge(a, b int) Edge {
	if a == b {
		panic(fmt.Sprintf("graph: self loop on vertex %d", a))
	}
	if a > b {
		a, b = b, a
	}
	return Edge{U: a, V: b}
}

// Other returns the endpoint of e that is not v.
// It panics if v is not an endpoint of e.
func (e Edge) Other(v int) int {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d not on edge %v", v, e))
}

// Has reports whether v is an endpoint of e.
func (e Edge) Has(v int) bool { return e.U == v || e.V == v }

// SharesVertex reports whether e and f have a common endpoint.
func (e Edge) SharesVertex(f Edge) bool {
	return e.Has(f.U) || e.Has(f.V)
}

func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// Graph is a simple undirected graph over dense non-negative integer
// vertices, stored as sorted per-vertex neighbor slices.
// The zero value is an empty graph; construct with New or NewDense.
type Graph struct {
	adj     [][]int32
	present []bool
	n       int // vertex count
	m       int // edge count

	// edgeIDs caches the dense forward-edge index built lazily by EdgeID;
	// any mutation clears it. atomic so concurrent readers of an immutable
	// graph can build it on demand without a lock.
	edgeIDs atomic.Pointer[edgeIndex]

	// dists caches the all-pairs distance matrix built lazily by Distances;
	// like edgeIDs it is cleared by any mutation and safe to build
	// concurrently on an immutable graph.
	dists atomic.Pointer[DistanceMatrix]
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{}
}

// NewDense returns a graph with vertices 0..n-1 and no edges.
func NewDense(n int) *Graph {
	g := &Graph{
		adj:     make([][]int32, n),
		present: make([]bool, n),
		n:       n,
	}
	for v := range g.present {
		g.present[v] = true
	}
	return g
}

// FromEdges builds a graph containing the given edges (and their endpoints).
func FromEdges(edges []Edge) *Graph {
	g := New()
	for _, e := range edges {
		g.AddEdge(e.U, e.V)
	}
	return g
}

func checkVertex(v int) {
	if v < 0 {
		panic(fmt.Sprintf("graph: negative vertex id %d", v))
	}
}

// grow extends the adjacency table to cover vertex v.
func (g *Graph) grow(v int) {
	if v < len(g.adj) {
		return
	}
	adj := make([][]int32, v+1)
	copy(adj, g.adj)
	present := make([]bool, v+1)
	copy(present, g.present)
	g.adj, g.present = adj, present
}

// AddNode inserts an isolated vertex; it is a no-op if v already exists.
// It panics on negative ids.
func (g *Graph) AddNode(v int) {
	checkVertex(v)
	g.grow(v)
	if !g.present[v] {
		g.present[v] = true
		g.n++
		g.invalidate()
	}
}

// AddEdge inserts the undirected edge {a,b}, adding endpoints as needed.
// Adding an existing edge is a no-op. It panics on self loops and negative
// ids. Inserting edges in ascending neighbor order appends in O(1); out of
// order inserts shift the neighbor slice (O(deg)).
func (g *Graph) AddEdge(a, b int) {
	if a == b {
		panic(fmt.Sprintf("graph: self loop on vertex %d", a))
	}
	g.AddNode(a)
	g.AddNode(b)
	if !insertSorted(&g.adj[a], int32(b)) {
		return
	}
	insertSorted(&g.adj[b], int32(a))
	g.m++
	g.invalidate()
}

// invalidate clears every lazily built derived index (edge ids, distance
// matrix) after a mutation.
func (g *Graph) invalidate() {
	g.edgeIDs.Store(nil)
	g.dists.Store(nil)
}

// insertSorted inserts x into the sorted slice *s, reporting whether it was
// absent. Appending in ascending order is O(1).
func insertSorted(s *[]int32, x int32) bool {
	t := *s
	if n := len(t); n == 0 || t[n-1] < x {
		*s = append(t, x)
		return true
	}
	i := searchInt32(t, x)
	if i < len(t) && t[i] == x {
		return false
	}
	t = append(t, 0)
	copy(t[i+1:], t[i:])
	t[i] = x
	*s = t
	return true
}

// searchInt32 returns the insertion index of x in the sorted slice s.
func searchInt32(s []int32, x int32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// RemoveEdge deletes the edge {a,b} if present.
func (g *Graph) RemoveEdge(a, b int) {
	if !g.HasEdge(a, b) {
		return
	}
	removeSorted(&g.adj[a], int32(b))
	removeSorted(&g.adj[b], int32(a))
	g.m--
	g.invalidate()
}

func removeSorted(s *[]int32, x int32) {
	t := *s
	i := searchInt32(t, x)
	copy(t[i:], t[i+1:])
	*s = t[:len(t)-1]
}

// HasNode reports whether v is a vertex of g.
func (g *Graph) HasNode(v int) bool {
	return v >= 0 && v < len(g.present) && g.present[v]
}

// HasEdge reports whether the edge {a,b} is present (binary search over the
// smaller endpoint's neighbor slice).
func (g *Graph) HasEdge(a, b int) bool {
	if a < 0 || b < 0 || a >= len(g.adj) || b >= len(g.adj) {
		return false
	}
	s, x := g.adj[a], int32(b)
	if len(g.adj[b]) < len(s) {
		s, x = g.adj[b], int32(a)
	}
	i := searchInt32(s, x)
	return i < len(s) && s[i] == x
}

// NumNodes returns the vertex count.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.m }

// Cap returns the adjacency-table span: one greater than the largest vertex
// id ever added. Dense per-vertex scratch buffers (BFS distances, colorings)
// are sized by Cap, so slots for absent ids exist but are marked absent.
func (g *Graph) Cap() int { return len(g.adj) }

// Degree returns the number of neighbors of v (0 if v is absent).
func (g *Graph) Degree(v int) int {
	if v < 0 || v >= len(g.adj) {
		return 0
	}
	return len(g.adj[v])
}

// MaxDegree returns the largest vertex degree in g (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nbrs := range g.adj {
		if len(nbrs) > max {
			max = len(nbrs)
		}
	}
	return max
}

// Adj returns v's neighbors in ascending order as a shared slice — the
// graph's own storage, valid until the next mutation. Callers must not
// modify it. This is the zero-allocation iteration primitive the hot paths
// use; Neighbors returns a copy as []int for convenience.
func (g *Graph) Adj(v int) []int32 {
	if v < 0 || v >= len(g.adj) {
		return nil
	}
	return g.adj[v]
}

// Nodes returns the vertices in ascending order.
func (g *Graph) Nodes() []int {
	vs := make([]int, 0, g.n)
	for v, ok := range g.present {
		if ok {
			vs = append(vs, v)
		}
	}
	return vs
}

// Neighbors returns a copy of the neighbors of v in ascending order.
func (g *Graph) Neighbors(v int) []int {
	if v < 0 || v >= len(g.adj) {
		return []int{}
	}
	ns := make([]int, len(g.adj[v]))
	for i, u := range g.adj[v] {
		ns[i] = int(u)
	}
	return ns
}

// Edges returns all edges sorted by (U, V).
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for v, nbrs := range g.adj {
		for _, u := range nbrs {
			if int(u) > v {
				es = append(es, Edge{U: v, V: int(u)})
			}
		}
	}
	return es
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		adj:     make([][]int32, len(g.adj)),
		present: make([]bool, len(g.present)),
		n:       g.n,
		m:       g.m,
	}
	copy(c.present, g.present)
	for v, nbrs := range g.adj {
		if len(nbrs) > 0 {
			c.adj[v] = append([]int32(nil), nbrs...)
		}
	}
	return c
}

// Subgraph returns the subgraph induced by the given vertex set. Vertices
// keep their original ids; ids not present in g are ignored.
func (g *Graph) Subgraph(vertices []int) *Graph {
	maxV := -1
	keep := make([]bool, len(g.adj))
	kept := 0
	for _, v := range vertices {
		if g.HasNode(v) && !keep[v] {
			keep[v] = true
			kept++
			if v > maxV {
				maxV = v
			}
		}
	}
	s := &Graph{
		adj:     make([][]int32, maxV+1),
		present: make([]bool, maxV+1),
		n:       kept,
	}
	for v := 0; v <= maxV; v++ {
		if !keep[v] {
			continue
		}
		s.present[v] = true
		for _, u := range g.adj[v] {
			if int(u) < len(keep) && keep[u] {
				s.adj[v] = append(s.adj[v], u) // g.adj[v] sorted -> s.adj[v] sorted
				if int(u) > v {
					s.m++
				}
			}
		}
	}
	return s
}

// ApproxSize returns the approximate in-memory footprint of g in bytes,
// used by the compile cache's size-aware eviction.
func (g *Graph) ApproxSize() int {
	size := 64 + len(g.adj)*24 + len(g.present)
	for _, nbrs := range g.adj {
		size += 4 * cap(nbrs)
	}
	return size
}

// edgeIndex is the lazily built dense edge-id table: fwd[v] is the id of
// the first edge {v, u} with u > v, in Edges() order.
type edgeIndex struct {
	fwd []int32
}

// EdgeID returns the dense id of edge {a,b} — its position in Edges() —
// and whether the edge exists. The index is built lazily on first use and
// invalidated by any mutation; on an immutable (fully built) graph it is
// safe to call concurrently.
func (g *Graph) EdgeID(a, b int) (int, bool) {
	if a > b {
		a, b = b, a
	}
	if a < 0 || b >= len(g.adj) || a == b {
		return 0, false
	}
	idx := g.edgeIDs.Load()
	if idx == nil {
		idx = g.buildEdgeIndex()
	}
	nbrs := g.adj[a]
	i := searchInt32(nbrs, int32(b))
	if i >= len(nbrs) || nbrs[i] != int32(b) {
		return 0, false
	}
	firstFwd := searchInt32(nbrs, int32(a)) // b > a, so forward nbrs start past a
	return int(idx.fwd[a]) + i - firstFwd, true
}

func (g *Graph) buildEdgeIndex() *edgeIndex {
	fwd := make([]int32, len(g.adj))
	next := int32(0)
	for v, nbrs := range g.adj {
		fwd[v] = next
		for _, u := range nbrs {
			if int(u) > v {
				next++
			}
		}
	}
	idx := &edgeIndex{fwd: fwd}
	g.edgeIDs.Store(idx)
	return idx
}

// String renders the graph as "n=<nodes> m=<edges> [edge list]".
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d m=%d [", g.NumNodes(), g.NumEdges())
	for i, e := range g.Edges() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(e.String())
	}
	b.WriteByte(']')
	return b.String()
}

// sortInts sorts xs ascending (tiny helper shared by this package).
func sortInts(xs []int) { sort.Ints(xs) }
