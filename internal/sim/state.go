// Package sim provides a state-vector quantum circuit simulator with
// Monte-Carlo noise trajectories. The paper validates its success-rate
// heuristic (eq. 4) against full noisy simulation on small circuits
// (§VI-C); this package is that reference simulator: it executes compiled
// schedules slice by slice, injecting amplitude damping (T1), dephasing
// (T2), coherent crosstalk exchange kicks, and intrinsic gate error, then
// reports fidelity against the ideal state.
package sim

import (
	"fmt"
	"math"
	"math/cmplx"

	"fastsc/internal/circuit"
)

// MaxQubits bounds the simulator size (2^20 amplitudes ≈ 16 MB).
const MaxQubits = 20

// State is a pure state over n qubits. Qubit 0 is the most significant bit
// of the basis index, so |q0 q1 … q(n−1)⟩ has index q0·2^(n−1) + … + q(n−1).
type State struct {
	N    int
	Amps []complex128
}

// NewState returns |0…0⟩ over n qubits.
func NewState(n int) *State {
	if n < 1 || n > MaxQubits {
		panic(fmt.Sprintf("sim: unsupported qubit count %d", n))
	}
	amps := make([]complex128, 1<<n)
	amps[0] = 1
	return &State{N: n, Amps: amps}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	amps := make([]complex128, len(s.Amps))
	copy(amps, s.Amps)
	return &State{N: s.N, Amps: amps}
}

// bitOf returns the bit position of qubit q.
func (s *State) bitOf(q int) uint {
	if q < 0 || q >= s.N {
		panic(fmt.Sprintf("sim: qubit %d out of range [0,%d)", q, s.N))
	}
	return uint(s.N - 1 - q)
}

// Apply1Q applies a single-qubit unitary to qubit q.
func (s *State) Apply1Q(m circuit.Mat2, q int) {
	bit := s.bitOf(q)
	mask := 1 << bit
	for i := 0; i < len(s.Amps); i++ {
		if i&mask != 0 {
			continue
		}
		j := i | mask
		a0, a1 := s.Amps[i], s.Amps[j]
		s.Amps[i] = m[0][0]*a0 + m[0][1]*a1
		s.Amps[j] = m[1][0]*a0 + m[1][1]*a1
	}
}

// Apply2Q applies a two-qubit unitary with qubit a as the high-order
// operand (matching circuit.Matrix2Q's basis convention).
func (s *State) Apply2Q(m circuit.Mat4, a, b int) {
	if a == b {
		panic("sim: two-qubit gate on one qubit")
	}
	bitA, bitB := s.bitOf(a), s.bitOf(b)
	maskA, maskB := 1<<bitA, 1<<bitB
	for i := 0; i < len(s.Amps); i++ {
		if i&maskA != 0 || i&maskB != 0 {
			continue
		}
		i00 := i
		i01 := i | maskB
		i10 := i | maskA
		i11 := i | maskA | maskB
		a00, a01, a10, a11 := s.Amps[i00], s.Amps[i01], s.Amps[i10], s.Amps[i11]
		s.Amps[i00] = m[0][0]*a00 + m[0][1]*a01 + m[0][2]*a10 + m[0][3]*a11
		s.Amps[i01] = m[1][0]*a00 + m[1][1]*a01 + m[1][2]*a10 + m[1][3]*a11
		s.Amps[i10] = m[2][0]*a00 + m[2][1]*a01 + m[2][2]*a10 + m[2][3]*a11
		s.Amps[i11] = m[3][0]*a00 + m[3][1]*a01 + m[3][2]*a10 + m[3][3]*a11
	}
}

// ApplyGate applies a circuit gate.
func (s *State) ApplyGate(g circuit.Gate) {
	if g.Kind.IsTwoQubit() {
		s.Apply2Q(circuit.Matrix2Q(g.Kind), g.Qubits[0], g.Qubits[1])
		return
	}
	s.Apply1Q(circuit.Matrix1(g.Kind, g.Theta), g.Qubits[0])
}

// Norm returns ⟨ψ|ψ⟩.
func (s *State) Norm() float64 {
	n := 0.0
	for _, a := range s.Amps {
		n += real(a)*real(a) + imag(a)*imag(a)
	}
	return n
}

// Renormalize rescales to unit norm (no-op for the zero vector).
func (s *State) Renormalize() {
	n := math.Sqrt(s.Norm())
	if n == 0 {
		return
	}
	inv := complex(1/n, 0)
	for i := range s.Amps {
		s.Amps[i] *= inv
	}
}

// Fidelity returns |⟨a|b⟩|².
func (s *State) Fidelity(o *State) float64 {
	if s.N != o.N {
		panic("sim: fidelity between different-width states")
	}
	var ip complex128
	for i := range s.Amps {
		ip += cmplx.Conj(s.Amps[i]) * o.Amps[i]
	}
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// Probability returns |⟨basis|ψ⟩|² for the basis state with the given
// index (qubit 0 = most significant bit).
func (s *State) Probability(basis int) float64 {
	a := s.Amps[basis]
	return real(a)*real(a) + imag(a)*imag(a)
}

// ExcitedPopulation returns the probability that qubit q is |1⟩.
func (s *State) ExcitedPopulation(q int) float64 {
	mask := 1 << s.bitOf(q)
	p := 0.0
	for i, a := range s.Amps {
		if i&mask != 0 {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// RunIdeal executes every gate of c on |0…0⟩ without noise.
func RunIdeal(c *circuit.Circuit) *State {
	s := NewState(c.NumQubits)
	for _, g := range c.Gates {
		s.ApplyGate(g)
	}
	return s
}
