package compile

import (
	"fmt"
	"path/filepath"
	"testing"

	"fastsc/internal/graph"
)

// BenchmarkWarmSetLoad times the one-time lazy load of a warm set: reading
// a populated snapshot from disk and indexing it into the immutable
// region maps. This is the latency the first cache miss of a warm-attached
// process pays (CLIs attach for free and defer the read until then), so a
// regression here directly delays a fleet's first compilation.
func BenchmarkWarmSetLoad(b *testing.B) {
	src := NewCache(0)
	for i := 0; i < 512; i++ {
		src.Put(RegionSMT, fmt.Sprintf("3|sig%04d|a|b|c", i), smtResult{xs: []float64{6.1, 6.3, 6.5}, delta: 0.2})
		src.Put(RegionSlice, SliceKey(fmt.Sprintf("%016x", i), 2, 3, []int{i % 7, i%7 + 9}), SliceSolution{
			Coloring: graph.Coloring{0, 1}, NumColors: 2, Assign: []float64{6.2, 6.6}, Delta: 0.4,
		})
		src.Put(RegionParking, fmt.Sprintf("park%04d", i), []float64{5.0, 5.2, 5.4, 5.6})
	}
	path := filepath.Join(b.TempDir(), "warm.snap")
	if err := src.Save(path); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := OpenWarmSet(path)
		if w.Len() == 0 {
			b.Fatal("warm set loaded empty")
		}
	}
}
