package bench

import (
	"testing"

	"fastsc/internal/circuit"
	"fastsc/internal/topology"
)

func TestBVStructure(t *testing.T) {
	for _, n := range []int{4, 9, 16, 25} {
		c := BV(n, 1)
		if c.NumQubits != n {
			t.Fatalf("BV(%d) qubits = %d", n, c.NumQubits)
		}
		nCNOT := c.CountKind(circuit.CNOT)
		if nCNOT < 1 || nCNOT > n-1 {
			t.Fatalf("BV(%d) has %d CNOTs, want 1..%d", n, nCNOT, n-1)
		}
		// All CNOTs target the ancilla.
		for _, g := range c.Gates {
			if g.Kind == circuit.CNOT && g.Qubits[1] != n-1 {
				t.Fatalf("BV CNOT targets %d, want ancilla %d", g.Qubits[1], n-1)
			}
		}
		// 2(n-1) data Hadamards + 1 ancilla H.
		if h := c.CountKind(circuit.H); h != 2*(n-1)+1 {
			t.Fatalf("BV(%d) has %d H gates, want %d", n, h, 2*(n-1)+1)
		}
		if c.CountKind(circuit.X) != 1 {
			t.Fatal("BV should X the ancilla exactly once")
		}
	}
}

func TestBVDeterministicBySeed(t *testing.T) {
	a, b := BV(9, 3), BV(9, 3)
	if a.NumGates() != b.NumGates() {
		t.Fatal("same seed, different circuits")
	}
	c := BV(9, 4)
	if a.NumGates() == c.NumGates() {
		// Different secret strings usually differ in CNOT count; tolerate
		// rare collisions by checking gate-by-gate equality too.
		same := true
		for i := range a.Gates {
			if a.Gates[i].Kind != c.Gates[i].Kind || a.Gates[i].Qubits[0] != c.Gates[i].Qubits[0] {
				same = false
				break
			}
		}
		if same {
			t.Skip("seeds collided on the same secret; acceptable")
		}
	}
}

func TestBVNonTrivialOracle(t *testing.T) {
	// Even for a seed producing the all-zero secret, at least one CNOT.
	for seed := int64(0); seed < 30; seed++ {
		if BV(4, seed).CountKind(circuit.CNOT) < 1 {
			t.Fatalf("seed %d produced trivial oracle", seed)
		}
	}
}

func TestQAOAStructure(t *testing.T) {
	c := QAOA(9, 1)
	if c.CountKind(circuit.H) != 9 {
		t.Fatalf("QAOA should open with 9 Hadamards, got %d", c.CountKind(circuit.H))
	}
	if c.CountKind(circuit.RX) != 9 {
		t.Fatalf("QAOA should close with 9 RX mixers, got %d", c.CountKind(circuit.RX))
	}
	nCNOT := c.CountKind(circuit.CNOT)
	nRZ := c.CountKind(circuit.RZ)
	if nCNOT != 2*nRZ {
		t.Fatalf("each ZZ term is CNOT-RZ-CNOT: %d CNOTs vs %d RZs", nCNOT, nRZ)
	}
	if nRZ < 1 {
		t.Fatal("QAOA must contain at least one edge term")
	}
}

func TestIsingStructure(t *testing.T) {
	n, steps := 9, 4
	c := Ising(n, steps)
	// Per step: n RX + (n-1) ZZ terms (CNOT-RZ-CNOT each).
	if got := c.CountKind(circuit.RX); got != n*steps {
		t.Fatalf("Ising RX count = %d, want %d", got, n*steps)
	}
	if got := c.CountKind(circuit.RZ); got != (n-1)*steps {
		t.Fatalf("Ising RZ count = %d, want %d", got, (n-1)*steps)
	}
	if got := c.CountKind(circuit.CNOT); got != 2*(n-1)*steps {
		t.Fatalf("Ising CNOT count = %d, want %d", got, 2*(n-1)*steps)
	}
	// Bonds are nearest-neighbor on the chain.
	for _, g := range c.Gates {
		if g.Kind == circuit.CNOT {
			d := g.Qubits[1] - g.Qubits[0]
			if d != 1 {
				t.Fatalf("Ising bond %v is not nearest-neighbor", g)
			}
		}
	}
}

func TestIsingDefaultSteps(t *testing.T) {
	c := Ising(5, 0)
	if got := c.CountKind(circuit.RX); got != 5*5 {
		t.Fatalf("default steps should equal n: RX count %d", got)
	}
}

func TestQGANStructure(t *testing.T) {
	n, layers := 8, 3
	c := QGAN(n, layers, 1)
	// Brickwork entangler: n-1 CNOTs per layer.
	if got := c.CountKind(circuit.CNOT); got != (n-1)*layers {
		t.Fatalf("QGAN CNOT count = %d, want %d", got, (n-1)*layers)
	}
	if got := c.CountKind(circuit.RY); got != n*(layers+1) {
		t.Fatalf("QGAN RY count = %d, want %d", got, n*(layers+1))
	}
	// Brickwork parallelism: the first layer's even bonds share a slice.
	layers2 := c.ASAPLayers()
	found := false
	for _, layer := range layers2 {
		n2q := 0
		for _, idx := range layer {
			if c.Gates[idx].Kind == circuit.CNOT {
				n2q++
			}
		}
		if n2q >= 2 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("QGAN brickwork should have parallel entangling gates")
	}
}

func TestXEBStructure(t *testing.T) {
	dev := topology.SquareGrid(16)
	cycles := 6
	c := XEB(dev, cycles, 1)
	// One single-qubit gate per qubit per cycle.
	n1q := c.CountKind(circuit.SX) + c.CountKind(circuit.SY) + c.CountKind(circuit.SW)
	if n1q != 16*cycles {
		t.Fatalf("XEB 1q count = %d, want %d", n1q, 16*cycles)
	}
	// Two-qubit gates are native iSWAPs on couplers.
	for _, g := range c.Gates {
		if g.Kind.IsTwoQubit() {
			if g.Kind != circuit.ISwap {
				t.Fatalf("XEB two-qubit gate should be iSWAP, got %v", g.Kind)
			}
			if !dev.Coupling.HasEdge(g.Qubits[0], g.Qubits[1]) {
				t.Fatalf("XEB gate %v not on a coupler", g)
			}
		}
	}
	if c.CountKind(circuit.ISwap) == 0 {
		t.Fatal("XEB must contain entangling layers")
	}
}

func TestXEBNoRepeatedSingleQubitGate(t *testing.T) {
	dev := topology.SquareGrid(9)
	c := XEB(dev, 10, 3)
	last := make(map[int]circuit.Kind)
	for _, g := range c.Gates {
		if g.Arity() == 1 {
			q := g.Qubits[0]
			if k, ok := last[q]; ok && k == g.Kind {
				t.Fatalf("qubit %d repeats %v in consecutive cycles", q, g.Kind)
			}
			last[q] = g.Kind
		}
	}
}

func TestXEBPatternsCycle(t *testing.T) {
	dev := topology.SquareGrid(16)
	// With 4 patterns and 8 cycles, every coupler is used exactly twice.
	c := XEB(dev, 8, 1)
	uses := make(map[[2]int]int)
	for _, g := range c.Gates {
		if g.Kind == circuit.ISwap {
			a, b := g.Qubits[0], g.Qubits[1]
			if a > b {
				a, b = b, a
			}
			uses[[2]int{a, b}]++
		}
	}
	if len(uses) != dev.Coupling.NumEdges() {
		t.Fatalf("XEB exercised %d couplers, want all %d", len(uses), dev.Coupling.NumEdges())
	}
	for e, n := range uses {
		if n != 2 {
			t.Fatalf("coupler %v used %d times, want 2", e, n)
		}
	}
}

func TestXEBOnNonGridDevice(t *testing.T) {
	dev := topology.Express1D(9, 3)
	c := XEB(dev, 4, 1)
	for _, g := range c.Gates {
		if g.Kind.IsTwoQubit() && !dev.Coupling.HasEdge(g.Qubits[0], g.Qubits[1]) {
			t.Fatalf("XEB gate %v off-coupler on express cube", g)
		}
	}
}

func TestGeneratorsPanicOnTinyInputs(t *testing.T) {
	for name, f := range map[string]func(){
		"bv":    func() { BV(1, 0) },
		"qaoa":  func() { QAOA(1, 0) },
		"ising": func() { Ising(1, 1) },
		"qgan":  func() { QGAN(1, 1, 0) },
		"xeb":   func() { XEB(topology.Grid(2, 2), 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic on invalid input", name)
				}
			}()
			f()
		}()
	}
}
