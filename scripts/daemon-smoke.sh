#!/usr/bin/env bash
# daemon-smoke.sh — end-to-end smoke test of fastscd (run from repo root,
# or via `make daemon-smoke`). Mirrors the CI daemon-smoke job:
#
#   1. build fastscd and start it with a snapshot file
#   2. submit a 5-strategy QASM batch on a 9-qubit grid; validate every
#      result line carries a sane schedule summary
#   3. resubmit the identical batch; assert the request-scoped cache hit
#      rate exceeds 0.90
#   4. assert /metrics exports nonzero cache-region hit counters
#   5. submit one deep 36-qubit circuit with workers > 1 (the
#      intra-circuit parallel path) and assert it completes and reports
#      into the fastscd_batch_duration_seconds histogram
#   6. SIGTERM; assert a clean exit that persisted the snapshot
#   7. restart against the snapshot; assert a warm start
#      (fastscd_snapshot_restored_entries > 0)
set -euo pipefail

PORT="${PORT:-8077}"
BASE="http://localhost:$PORT"
WORKDIR="$(mktemp -d)"
SNAP="$WORKDIR/cache.snap.gz"
DAEMON_PID=""

cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() { echo "daemon-smoke: FAIL: $*" >&2; exit 1; }

# Readiness (not liveness): /readyz stays 503 while the daemon restores a
# cache snapshot in the background, so a warm restart is only "up" once the
# restored entries are actually queryable.
wait_ready() {
    for _ in $(seq 1 100); do
        if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    fail "daemon did not become ready on $BASE"
}

start_daemon() {
    "$WORKDIR/fastscd" -addr ":$PORT" -cache-file "$SNAP" >"$WORKDIR/daemon.log" 2>&1 &
    DAEMON_PID=$!
    wait_ready
}

echo "== build"
go build -o "$WORKDIR/fastscd" ./cmd/fastscd

REQ="$WORKDIR/request.json"
python3 - "$REQ" <<'PYEOF'
import json, sys
qasm = "\n".join([
    "OPENQASM 2.0;",
    'include "qelib1.inc";',
    "qreg q[9];",
    "h q[0];", "h q[4];",
    "cz q[0],q[1];", "cz q[3],q[4];", "cz q[7],q[8];",
    "cz q[1],q[2];", "cz q[4],q[5];",
    "rz(pi/2) q[2];",
    "cz q[2],q[5];",
]) + "\n"
req = {
    "device": {"topology": "grid", "qubits": 9},
    "jobs": [
        {"id": s.lower().replace(" ", "-"), "strategy": s, "qasm": qasm}
        for s in ["Baseline N", "Baseline G", "Baseline U", "Baseline S", "ColorDynamic"]
    ],
}
with open(sys.argv[1], "w") as f:
    json.dump(req, f)
PYEOF

echo "== start (cold)"
start_daemon

echo "== submit batch (cold)"
curl -fsS -N "$BASE/v1/compile" -d @"$REQ" > "$WORKDIR/cold.ndjson"
python3 - "$WORKDIR/cold.ndjson" cold <<'PYEOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
results = [l for l in lines if l["type"] == "result"]
errors = [l for l in lines if l["type"] == "error"]
dones = [l for l in lines if l["type"] == "done"]
assert not errors, f"error lines: {errors}"
assert len(results) == 5, f"{len(results)} results, want 5"
assert len(dones) == 1, "want exactly one done line"
for r in results:
    d = r["result"]
    assert 0 < d["success"] <= 1, f"{r['id']}: success {d['success']}"
    assert d["depth"] > 0 and d["total_ns"] > 0, f"{r['id']}: empty schedule"
done = dones[0]
assert done["jobs"] == 5 and done["failed"] == 0, done
mode = sys.argv[2]
rate = done["cache"]["hit_rate"]
if mode == "warm":
    assert rate > 0.90, f"warm hit rate {rate} is not > 0.90"
print(f"{mode}: 5 strategies ok, hit rate {rate:.3f}")
PYEOF

echo "== resubmit identical batch (must be >90% cache hits)"
curl -fsS -N "$BASE/v1/compile" -d @"$REQ" > "$WORKDIR/warm.ndjson"
python3 - "$WORKDIR/warm.ndjson" warm <"/dev/null" <<'PYEOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
done = [l for l in lines if l["type"] == "done"][0]
assert done["failed"] == 0, done
rate = done["cache"]["hit_rate"]
assert rate > 0.90, f"repeat-request hit rate {rate} is not > 0.90"
print(f"warm: hit rate {rate:.3f}")
PYEOF

echo "== /metrics must export nonzero cache hits"
curl -fsS "$BASE/metrics" > "$WORKDIR/metrics.txt"
python3 - "$WORKDIR/metrics.txt" <<'PYEOF'
import sys
hits = 0
for line in open(sys.argv[1]):
    if line.startswith("fastscd_cache_hits_total{"):
        hits += int(float(line.split()[-1]))
assert hits > 0, "no cache hits exported on /metrics"
print(f"metrics: {hits} cache hits across regions")
PYEOF
grep -q '^fastscd_batches_done_total 2$' "$WORKDIR/metrics.txt" \
    || fail "expected fastscd_batches_done_total 2 on /metrics"

echo "== single large circuit with workers > 1 must compile and report batch duration"
LARGE_REQ="$WORKDIR/large-request.json"
python3 - "$LARGE_REQ" <<'PYEOF'
import json, random, sys
# One deep circuit on a 6x6 grid: enough scattered slices that the
# request exercises the intra-circuit parallel path (component fan-out,
# pioneer prefetch) that workers > 1 enables for a single job.
rows = cols = 6
n = rows * cols
couplers = []
for r in range(rows):
    for c in range(cols):
        q = r * cols + c
        if c + 1 < cols:
            couplers.append((q, q + 1))
        if r + 1 < rows:
            couplers.append((q, q + cols))
rng = random.Random(7)
gates = []
for _ in range(600):
    roll = rng.randrange(4)
    if roll == 0:
        gates.append(f"h q[{rng.randrange(n)}];")
    elif roll == 1:
        gates.append(f"rz({rng.random():.6f}) q[{rng.randrange(n)}];")
    else:
        a, b = rng.choice(couplers)
        gates.append(f"cz q[{a}],q[{b}];")
qasm = "\n".join(
    ["OPENQASM 2.0;", 'include "qelib1.inc";', f"qreg q[{n}];"] + gates
) + "\n"
req = {
    "device": {"topology": "grid", "qubits": n},
    "workers": 4,
    "jobs": [{"id": "large-parallel", "strategy": "ColorDynamic", "qasm": qasm}],
}
with open(sys.argv[1], "w") as f:
    json.dump(req, f)
PYEOF
count_before=$(awk '/^fastscd_batch_duration_seconds_count / {print $2}' "$WORKDIR/metrics.txt")
curl -fsS -N "$BASE/v1/compile" -d @"$LARGE_REQ" > "$WORKDIR/large.ndjson"
python3 - "$WORKDIR/large.ndjson" <<'PYEOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
errors = [l for l in lines if l["type"] == "error"]
results = [l for l in lines if l["type"] == "result"]
assert not errors, f"error lines: {errors}"
assert len(results) == 1, f"{len(results)} results, want 1"
d = results[0]["result"]
assert d["depth"] > 0 and d["total_ns"] > 0, "empty schedule from large circuit"
done = [l for l in lines if l["type"] == "done"][0]
assert done["jobs"] == 1 and done["failed"] == 0, done
print("large-parallel: compiled ok")
PYEOF
curl -fsS "$BASE/metrics" > "$WORKDIR/metrics-large.txt"
count_after=$(awk '/^fastscd_batch_duration_seconds_count / {print $2}' "$WORKDIR/metrics-large.txt")
sum_after=$(awk '/^fastscd_batch_duration_seconds_sum / {print $2}' "$WORKDIR/metrics-large.txt")
[ -n "$count_before" ] && [ -n "$count_after" ] && [ "$count_after" -eq $((count_before + 1)) ] \
    || fail "fastscd_batch_duration_seconds_count went $count_before -> $count_after, want +1 for the workers>1 batch"
awk -v s="$sum_after" 'BEGIN { if (s == "" || s + 0 <= 0) exit 1 }' \
    || fail "fastscd_batch_duration_seconds_sum = '$sum_after', want > 0"
echo "large-parallel: batch duration histogram count $count_before -> $count_after, sum ${sum_after}s"

echo "== SIGTERM must drain cleanly and persist the snapshot"
kill -TERM "$DAEMON_PID"
for _ in $(seq 1 100); do
    kill -0 "$DAEMON_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$DAEMON_PID" 2>/dev/null; then
    fail "daemon still running 10s after SIGTERM"
fi
wait "$DAEMON_PID" 2>/dev/null && rc=0 || rc=$?
[ "$rc" -eq 0 ] || fail "daemon exited with status $rc (want 0); log: $(cat "$WORKDIR/daemon.log")"
[ -s "$SNAP" ] || fail "no cache snapshot at $SNAP after drain"
DAEMON_PID=""

echo "== restart must warm-start from the snapshot"
start_daemon
curl -fsS "$BASE/metrics" > "$WORKDIR/metrics2.txt"
restored=$(awk '/^fastscd_snapshot_restored_entries / {print $2}' "$WORKDIR/metrics2.txt")
[ -n "$restored" ] && [ "$restored" -gt 0 ] \
    || fail "fastscd_snapshot_restored_entries = '$restored', want > 0"
echo "restart: $restored entries restored"

echo "== warm-start requests must hit the restored cache"
curl -fsS -N "$BASE/v1/compile" -d @"$REQ" > "$WORKDIR/restart.ndjson"
python3 - "$WORKDIR/restart.ndjson" <<'PYEOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
done = [l for l in lines if l["type"] == "done"][0]
assert done["failed"] == 0, done
rate = done["cache"]["hit_rate"]
# Since v6 route and circ persist too, so after a restart only xtalk
# rebuilds: the floor sits just under the same-process 0.90.
assert rate > 0.8, f"post-restart hit rate {rate} is not > 0.8"
print(f"post-restart: hit rate {rate:.3f}")
PYEOF

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "== warm-set-only daemon must serve from the read-only tier"
"$WORKDIR/fastscd" -addr ":$PORT" -warm-set "$SNAP" >"$WORKDIR/warmset-daemon.log" 2>&1 &
DAEMON_PID=$!
wait_ready
curl -fsS -N "$BASE/v1/compile" -d @"$REQ" > "$WORKDIR/warmset.ndjson"
python3 - "$WORKDIR/warmset.ndjson" <<'PYEOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
done = [l for l in lines if l["type"] == "done"][0]
assert done["failed"] == 0, done
cache = done["cache"]
warm = cache.get("warm_hits", 0)
assert warm > 0, f"warm-set-only batch reported no warm hits: {cache}"
rate = cache["hit_rate"]
assert rate > 0.8, f"warm-set-only hit rate {rate} is not > 0.8"
print(f"warm-set-only: {warm} warm hits, hit rate {rate:.3f}")
PYEOF
curl -fsS "$BASE/metrics" > "$WORKDIR/metrics-warmset.txt"
python3 - "$WORKDIR/metrics-warmset.txt" <<'PYEOF'
import sys
warm = 0
entries = None
for line in open(sys.argv[1]):
    if line.startswith("fastscd_cache_warm_hits_total{"):
        warm += int(float(line.split()[-1]))
    elif line.startswith("fastscd_warmset_entries "):
        entries = int(float(line.split()[-1]))
assert warm > 0, "no warm-set hits exported on /metrics"
assert entries and entries > 0, f"fastscd_warmset_entries = {entries}, want > 0"
print(f"metrics: {warm} warm-set hits, {entries} warm-set entries")
PYEOF

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "daemon-smoke: PASS"
