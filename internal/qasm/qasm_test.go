package qasm

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"fastsc/internal/circuit"
)

func TestParseBasicProgram(t *testing.T) {
	src := `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
rz(pi/2) q[2];
swap q[1], q[2];
`
	res, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Circuit
	if c.NumQubits != 3 || c.NumGates() != 4 {
		t.Fatalf("parsed %d qubits %d gates", c.NumQubits, c.NumGates())
	}
	if c.Gates[1].Kind != circuit.CNOT || c.Gates[1].Qubits[0] != 0 || c.Gates[1].Qubits[1] != 1 {
		t.Fatalf("gate 1 = %v", c.Gates[1])
	}
	if math.Abs(c.Gates[2].Theta-math.Pi/2) > 1e-12 {
		t.Fatalf("rz angle = %v", c.Gates[2].Theta)
	}
}

func TestParseComments(t *testing.T) {
	src := `qreg q[2]; // register
// full line comment
h q[0]; cx q[0],q[1]; // two statements on one line`
	res, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit.NumGates() != 2 {
		t.Fatalf("gates = %d", res.Circuit.NumGates())
	}
}

func TestParseSkipsClassical(t *testing.T) {
	src := `qreg q[2];
creg c[2];
h q[0];
barrier q[0],q[1];
measure q[0] -> c[0];`
	res, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit.NumGates() != 1 {
		t.Fatalf("gates = %d", res.Circuit.NumGates())
	}
	if len(res.Skipped) != 3 {
		t.Fatalf("skipped = %v", res.Skipped)
	}
}

func TestParseAngles(t *testing.T) {
	cases := map[string]float64{
		"pi":     math.Pi,
		"-pi/4":  -math.Pi / 4,
		"3*pi/2": 3 * math.Pi / 2,
		"0.25":   0.25,
		"2*0.5":  1,
	}
	for expr, want := range cases {
		src := "qreg q[1];\nrz(" + expr + ") q[0];"
		res, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		if got := res.Circuit.Gates[0].Theta; math.Abs(got-want) > 1e-12 {
			t.Fatalf("angle %q = %v, want %v", expr, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"h q[0];",                         // gate before qreg
		"qreg q[0];",                      // empty register
		"qreg q[2];\nfoo q[0];",           // unknown gate
		"qreg q[2];\nh q[5];",             // out of range
		"qreg q[2];\nh r[0];",             // unknown register
		"qreg q[2];\ncx q[0];",            // wrong arity
		"qreg q[2];\nrz(pi/0) q[0];",      // division by zero
		"qreg q[2];\nqreg r[2];\nh q[0];", // double qreg
		"qreg q[2];\nrz(banana) q[0];",    // bad token
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestWriteRoundTrip(t *testing.T) {
	c := circuit.New(4)
	c.H(0).CNOT(0, 1).RZ(2, 1.25).SqrtISwap(2, 3).SWAP(0, 3).Tdg(1)
	src, err := Write(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Parse(src)
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, src)
	}
	if res.Circuit.NumGates() != c.NumGates() {
		t.Fatalf("round trip lost gates: %d -> %d", c.NumGates(), res.Circuit.NumGates())
	}
	for i := range c.Gates {
		a, b := c.Gates[i], res.Circuit.Gates[i]
		if a.Kind != b.Kind || math.Abs(a.Theta-b.Theta) > 1e-9 {
			t.Fatalf("gate %d: %v != %v", i, a, b)
		}
		for j := range a.Qubits {
			if a.Qubits[j] != b.Qubits[j] {
				t.Fatalf("gate %d operands: %v != %v", i, a, b)
			}
		}
	}
}

func TestWriteRejectsUnsupportedKinds(t *testing.T) {
	c := circuit.New(1)
	c.SqrtW(0)
	if _, err := Write(c); err == nil {
		t.Fatal("SW has no QASM form and should be rejected")
	}
}

// Property: random circuits over the QASM-expressible gate set round-trip
// exactly.
func TestRoundTripProperty(t *testing.T) {
	kinds1q := []circuit.Kind{circuit.H, circuit.X, circuit.S, circuit.Tdg, circuit.RX, circuit.RZ}
	kinds2q := []circuit.Kind{circuit.CNOT, circuit.CZ, circuit.SWAP, circuit.ISwap}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		c := circuit.New(n)
		for i := 0; i < 1+rng.Intn(25); i++ {
			if rng.Float64() < 0.5 {
				k := kinds1q[rng.Intn(len(kinds1q))]
				theta := 0.0
				if k.IsParametric() {
					theta = rng.Float64()
				}
				c.Add(circuit.Gate{Kind: k, Qubits: []int{rng.Intn(n)}, Theta: theta})
			} else {
				a, b := rng.Intn(n), rng.Intn(n)
				for b == a {
					b = rng.Intn(n)
				}
				c.Add(circuit.Gate{Kind: kinds2q[rng.Intn(len(kinds2q))], Qubits: []int{a, b}})
			}
		}
		src, err := Write(c)
		if err != nil {
			return false
		}
		res, err := Parse(src)
		if err != nil {
			return false
		}
		if res.Circuit.NumGates() != c.NumGates() || res.Circuit.NumQubits != c.NumQubits {
			return false
		}
		for i := range c.Gates {
			a, b := c.Gates[i], res.Circuit.Gates[i]
			if a.Kind != b.Kind || math.Abs(a.Theta-b.Theta) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteHeader(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	src, err := Write(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(src, "OPENQASM 2.0;") || !strings.Contains(src, "qreg q[2];") {
		t.Fatalf("malformed header:\n%s", src)
	}
}
