// Command fastscd serves frequency-aware compilation over HTTP: it keeps
// one process-wide compile cache warm across requests and streams batch
// results as NDJSON. See docs/api.md for the API and docs/architecture.md
// for how the daemon sits on top of the compilation stack (including the
// "Failure model & recovery" section for what survives a crash).
//
// Start a daemon, compile against it, then stop it gracefully:
//
//	fastscd -addr :8077 -cache-file /var/lib/fastsc/cache.snap.gz \
//	        -store-file /var/lib/fastsc/batches.store &
//	curl -N -d @batch.json http://localhost:8077/v1/compile
//	kill -TERM $!   # drains in-flight batches, then saves the snapshot
//
// On SIGTERM/SIGINT the daemon stops admitting work (/readyz turns 503 so
// load balancers rotate it out; /healthz stays 200 — the process is alive),
// lets every admitted batch finish (bounded by -drain-timeout), and — when
// a -cache-file is set — saves a cache snapshot that warms the next start.
// A second signal aborts the drain immediately.
//
// With a -store-file, async batch records are durable: a batch 202-acked
// before a kill -9 is still pollable after restart, finished batches keep
// their results, and batches that were in flight when the process died
// poll as "interrupted". With -snapshot-interval the cache snapshot is
// also written periodically, so even an unclean death leaves a warm start
// behind.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fastsc/internal/compile"
	"fastsc/internal/faultpoint"
	"fastsc/internal/server"
)

func main() {
	var (
		addr          = flag.String("addr", ":8077", "listen address")
		workers       = flag.Int("workers", 0, "per-request worker budget (0 = GOMAXPROCS)")
		maxConcurrent = flag.Int("max-concurrent", 0, "batches compiling at once (0 = default 2)")
		maxQueue      = flag.Int("max-queue", 0, "batches waiting for a slot before 429 (0 = default 16, -1 = none)")
		maxJobs       = flag.Int("max-jobs", 0, "jobs per batch (0 = default 256)")
		cacheFile     = flag.String("cache-file", "", "cache snapshot path: loaded at startup (cold start if missing/stale) and saved after a clean drain; a .gz suffix writes it compressed")
		warmSetFile   = flag.String("warm-set", "", "read-only shared warm-set snapshot: probed after a local cache miss, never written; typically one file served to a whole fleet")
		cacheCap      = flag.Int("cache-capacity", 0, "compile cache capacity in cost units (0 = default)")
		storeFile     = flag.String("store-file", "", "durable batch-store path: async batch records survive restarts (in-flight ones poll as \"interrupted\")")
		snapInterval  = flag.Duration("snapshot-interval", 0, "also save the cache snapshot periodically (0 = only on clean shutdown); makes warm starts survive kill -9")
		drainTimeout  = flag.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for in-flight batches")
		faultSpec     = flag.String("faultpoints", "", "arm fault-injection points, e.g. \"job.panic*1,solve.slow=50ms\" (chaos testing; also read from "+faultpoint.EnvVar+")")
	)
	flag.Parse()

	if err := faultpoint.ArmFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "fastscd:", err)
		os.Exit(2)
	}
	if err := faultpoint.Arm(*faultSpec); err != nil {
		fmt.Fprintln(os.Stderr, "fastscd:", err)
		os.Exit(2)
	}

	srv := server.New(server.Config{
		Workers:       *workers,
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		MaxJobs:       *maxJobs,
		CacheCapacity: *cacheCap,
	})

	// The batch store opens synchronously before the listener: a 202 ack
	// must never be issued by a process that would forget the batch, so
	// the daemon either has its durable store or knows it degraded.
	if *storeFile != "" {
		restored, interrupted, err := srv.Store().Open(*storeFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fastscd: batch store: %v (starting empty)\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "fastscd: batch store: %d records restored (%d interrupted), epoch %d\n",
				restored, interrupted, srv.Store().Epoch())
		}
	}

	// The shared warm set attaches before the listener: its lazy load means
	// attaching is free, and the first cache miss pays the one-time read.
	// The eager Result check in the background surfaces a degraded file on
	// stderr and /metrics instead of silently serving cold forever.
	if *warmSetFile != "" {
		ws := compile.OpenWarmSet(*warmSetFile)
		srv.AttachWarmSet(ws)
		go func() {
			res, err := ws.Result()
			switch {
			case err != nil:
				fmt.Fprintf(os.Stderr, "fastscd: warm set: %v (serving without it)\n", err)
			case res.Degraded != "":
				srv.NoteSnapshotDegraded(res.Degraded)
				fmt.Fprintf(os.Stderr, "fastscd: warm set %s degraded (%s): serving without it\n", *warmSetFile, res.Degraded)
			case res.Missing:
				fmt.Fprintf(os.Stderr, "fastscd: warm set %s missing: serving without it\n", *warmSetFile)
			default:
				fmt.Fprintf(os.Stderr, "fastscd: warm set: %d entries from %s (read-only tier)\n", ws.Len(), *warmSetFile)
			}
		}()
	}

	// The cache snapshot loads in the background: restoring a large
	// snapshot can take seconds, and the daemon should accept (cold)
	// traffic immediately. /readyz reports 503 "restoring" until the load
	// finishes, so rolling fleets keep traffic on warm peers meanwhile.
	restoreDone := make(chan struct{})
	if *cacheFile != "" {
		srv.SetRestoring(true)
		go func() {
			defer close(restoreDone)
			defer srv.SetRestoring(false)
			res, err := srv.Cache().LoadSnapshot(*cacheFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fastscd: cache snapshot: %v (starting cold)\n", err)
				return
			}
			if res.Degraded != "" {
				srv.NoteSnapshotDegraded(res.Degraded)
				fmt.Fprintf(os.Stderr, "fastscd: cache snapshot %s degraded (%s): starting cold\n", *cacheFile, res.Degraded)
				return
			}
			srv.SetRestored(res.Restored)
			fmt.Fprintf(os.Stderr, "fastscd: warm start: %d cache entries restored from %s\n", res.Restored, *cacheFile)
		}()
	} else {
		close(restoreDone)
	}

	// The periodic saver makes the warm start crash-proof: waiting for the
	// restore first so a slow load cannot be clobbered by an early save of
	// a still-cold cache.
	saverStop := make(chan struct{})
	if *cacheFile != "" && *snapInterval > 0 {
		go func() {
			<-restoreDone
			tick := time.NewTicker(*snapInterval)
			defer tick.Stop()
			for {
				select {
				case <-saverStop:
					return
				case <-tick.C:
					if err := srv.Cache().Save(*cacheFile); err != nil {
						fmt.Fprintln(os.Stderr, "fastscd: periodic snapshot:", err)
					}
				}
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "fastscd: listening on %s\n", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "fastscd:", err)
		os.Exit(1)
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "fastscd: %v: draining (in-flight batches run to completion; repeat to abort)\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "fastscd: second signal: aborting drain")
		cancel()
	}()

	srv.Drain() // refuse new submissions; readyz turns 503 immediately
	drainErr := srv.Shutdown(ctx)
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "fastscd:", drainErr)
	}
	close(saverStop)
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "fastscd: http shutdown:", err)
	}
	<-errCh // ListenAndServe has returned http.ErrServerClosed

	if *storeFile != "" {
		if err := srv.Store().SaveNow(); err != nil {
			fmt.Fprintln(os.Stderr, "fastscd: batch store:", err)
		}
	}
	if *cacheFile != "" && drainErr == nil {
		if err := srv.Cache().Save(*cacheFile); err != nil {
			fmt.Fprintln(os.Stderr, "fastscd: cache snapshot:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fastscd: cache snapshot saved to %s\n", *cacheFile)
	}
	if drainErr != nil {
		os.Exit(1)
	}
}
