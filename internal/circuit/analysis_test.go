package circuit

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Property tests pinning circuit.Analysis to the reference implementations
// it replaces on the hot path: Layers to ASAPLayers, Criticality to
// Circuit.Criticality, and the CSR-backed Frontier to a test-local replica
// of the old map-based frontier, driven with identical postponement
// choices.

func TestAnalysisLayersEqualASAPLayers(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 2+rng.Intn(6), rng.Intn(40))
		a := Analyze(c)
		want := c.ASAPLayers()
		if a.Depth() != len(want) {
			return false
		}
		got := a.Layers()
		return reflect.DeepEqual(got, want) || (len(got) == 0 && len(want) == 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalysisCriticalityEqualsReference(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 2+rng.Intn(6), rng.Intn(40))
		a := Analyze(c)
		want := c.Criticality()
		got := a.Criticality()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if int(got[i]) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalysisQubitStreamsMatchGateOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		c := randomCircuit(rng, 2+rng.Intn(6), rng.Intn(40))
		a := Analyze(c)
		want := make([][]int32, c.NumQubits)
		for i, g := range c.Gates {
			for _, q := range g.Qubits {
				want[q] = append(want[q], int32(i))
			}
		}
		for q := 0; q < c.NumQubits; q++ {
			got := a.QubitStream(q)
			if len(got) != len(want[q]) {
				t.Fatalf("qubit %d stream %v, want %v", q, got, want[q])
			}
			for i := range got {
				if got[i] != want[q][i] {
					t.Fatalf("qubit %d stream %v, want %v", q, got, want[q])
				}
			}
		}
	}
}

// refFrontier is the old map-based frontier, kept test-side as the
// behavioral reference for the CSR rewrite.
type refFrontier struct {
	c        *Circuit
	perQubit [][]int
	nextIdx  []int
	issued   []bool
	remain   int
}

func newRefFrontier(c *Circuit) *refFrontier {
	f := &refFrontier{
		c:        c,
		perQubit: make([][]int, c.NumQubits),
		nextIdx:  make([]int, c.NumQubits),
		issued:   make([]bool, len(c.Gates)),
		remain:   len(c.Gates),
	}
	for i, g := range c.Gates {
		for _, q := range g.Qubits {
			f.perQubit[q] = append(f.perQubit[q], i)
		}
	}
	return f
}

func (f *refFrontier) Ready() []int {
	var ready []int
	seen := make(map[int]bool)
	for q := 0; q < f.c.NumQubits; q++ {
		if f.nextIdx[q] >= len(f.perQubit[q]) {
			continue
		}
		idx := f.perQubit[q][f.nextIdx[q]]
		if seen[idx] {
			continue
		}
		seen[idx] = true
		g := f.c.Gates[idx]
		ok := true
		for _, qq := range g.Qubits {
			if f.nextIdx[qq] >= len(f.perQubit[qq]) || f.perQubit[qq][f.nextIdx[qq]] != idx {
				ok = false
				break
			}
		}
		if ok {
			ready = append(ready, idx)
		}
	}
	sortInts(ready)
	return ready
}

func (f *refFrontier) Issue(idx int) {
	g := f.c.Gates[idx]
	for _, q := range g.Qubits {
		f.nextIdx[q]++
	}
	f.issued[idx] = true
	f.remain--
}

func (f *refFrontier) Done() bool { return f.remain == 0 }

// TestFrontierMatchesReferenceUnderPostponement drives the CSR frontier and
// the old map-based frontier with identical random subset choices and
// requires identical Ready sets every round.
func TestFrontierMatchesReferenceUnderPostponement(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 2+rng.Intn(6), 1+rng.Intn(40))
		f := NewFrontier(c)
		defer f.Release()
		ref := newRefFrontier(c)
		for rounds := 0; !f.Done() || !ref.Done(); rounds++ {
			if rounds > 1000 {
				return false
			}
			got := f.Ready()
			want := ref.Ready()
			if !reflect.DeepEqual(append([]int(nil), got...), want) {
				return false
			}
			if len(got) == 0 {
				return false // deadlock
			}
			// Issue an identical random nonempty subset on both.
			k := 1 + rng.Intn(len(got))
			picks := append([]int(nil), got[:k]...)
			for _, idx := range picks {
				f.Issue(idx)
				ref.Issue(idx)
			}
		}
		return f.Remaining() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestFrontierResetReplaysIdentically checks that Reset rewinds a frontier
// to a state indistinguishable from a fresh one.
func TestFrontierResetReplaysIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := randomCircuit(rng, 5, 30)
	f := NewFrontier(c)
	defer f.Release()
	var first [][]int
	for !f.Done() {
		ready := f.Ready()
		first = append(first, append([]int(nil), ready...))
		for _, idx := range ready {
			f.Issue(idx)
		}
	}
	f.Reset()
	var second [][]int
	for !f.Done() {
		ready := f.Ready()
		second = append(second, append([]int(nil), ready...))
		for _, idx := range ready {
			f.Issue(idx)
		}
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("replay after Reset diverged:\nfirst  %v\nsecond %v", first, second)
	}
}

// TestFrontierReadyZeroAlloc is the alloc-count regression test for the
// old Ready(): it allocated a map[int]bool plus a fresh result slice per
// call. The CSR rewrite must drain a circuit with zero allocations once
// its reusable buffer has grown.
func TestFrontierReadyZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := randomCircuit(rng, 8, 120)
	f := NewFrontier(c)
	defer f.Release()
	// Warm the ready buffer to the widest frontier.
	for !f.Done() {
		for _, idx := range f.Ready() {
			f.Issue(idx)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		f.Reset()
		for !f.Done() {
			ready := f.Ready()
			for _, idx := range ready {
				f.Issue(idx)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("draining the frontier allocated %v times per run, want 0", allocs)
	}
}

// TestAnalysisSignatureContent checks the signature distinguishes every
// content component and ignores allocation identity.
func TestAnalysisSignatureContent(t *testing.T) {
	base := func() *Circuit { c := New(3); c.H(0).CZ(0, 1).RZ(2, 0.5); return c }
	if base().Signature() != base().Signature() {
		t.Fatal("content-identical circuits must share a signature")
	}
	a := Analyze(base())
	if a.Sig != base().Signature() {
		t.Fatal("Analysis.Sig must carry the circuit signature")
	}
	mutants := []*Circuit{
		func() *Circuit { c := New(4); c.H(0).CZ(0, 1).RZ(2, 0.5); return c }(),  // qubit count
		func() *Circuit { c := New(3); c.X(0).CZ(0, 1).RZ(2, 0.5); return c }(),  // kind
		func() *Circuit { c := New(3); c.H(0).CZ(0, 2).RZ(2, 0.5); return c }(),  // operand
		func() *Circuit { c := New(3); c.H(0).CZ(1, 0).RZ(2, 0.5); return c }(),  // operand order
		func() *Circuit { c := New(3); c.H(0).CZ(0, 1).RZ(2, 0.25); return c }(), // angle
		func() *Circuit { c := New(3); c.H(0).CZ(0, 1); return c }(),             // gate count
	}
	sig := base().Signature()
	for i, m := range mutants {
		if m.Signature() == sig {
			t.Fatalf("mutant %d shares the base signature", i)
		}
	}
}

// TestAnalysisInteractionCounts pins the exported interaction counts to a
// direct count over the gate list, and Operands to the Gate operand
// slices, on randomized circuits.
func TestAnalysisInteractionCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 50; iter++ {
		c := randomCircuit(rng, 2+rng.Intn(6), rng.Intn(40))
		a := Analyze(c)
		want := make([]int32, c.NumQubits)
		for i, g := range c.Gates {
			if len(g.Qubits) == 2 {
				want[g.Qubits[0]]++
				want[g.Qubits[1]]++
			}
			q0, q1 := a.Operands(i)
			if q0 != g.Qubits[0] {
				t.Fatalf("Operands(%d) first = %d, want %d", i, q0, g.Qubits[0])
			}
			if len(g.Qubits) == 2 {
				if q1 != g.Qubits[1] {
					t.Fatalf("Operands(%d) second = %d, want %d", i, q1, g.Qubits[1])
				}
			} else if q1 != -1 {
				t.Fatalf("Operands(%d) second = %d for a 1q gate, want -1", i, q1)
			}
		}
		got := a.InteractionCounts()
		if len(got) != len(want) {
			t.Fatalf("InteractionCounts length %d, want %d", len(got), len(want))
		}
		for q := range want {
			if got[q] != want[q] {
				t.Fatalf("qubit %d interaction count %d, want %d", q, got[q], want[q])
			}
		}
	}
}
