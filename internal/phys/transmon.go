package phys

import (
	"fmt"
	"math"
)

// Transmon is one flux-tunable asymmetric transmon qubit. Its 0-1 transition
// frequency is tuned by an external flux φ (in units of Φ₀) between two
// sweet spots: the upper spot at φ=0 (frequency OmegaMax) and the lower spot
// at φ=0.5 (frequency OmegaMin), as shown in Fig 4 of the paper.
type Transmon struct {
	// OmegaMax is the 0-1 frequency at zero flux (upper sweet spot), GHz.
	OmegaMax float64
	// EC is the charging energy, GHz. The anharmonicity is −EC.
	EC float64
	// Asymmetry is the junction asymmetry d = (EJ1−EJ2)/(EJ1+EJ2).
	Asymmetry float64
	// T1 and T2 are the relaxation and dephasing times in ns.
	T1, T2 float64
}

// Anharmonicity returns α = ω12 − ω01 in GHz. It is negative for transmons
// (ω12 is slightly below ω01); the paper quotes |α|/2π ≈ 200 MHz.
func (t Transmon) Anharmonicity() float64 { return -t.EC }

// ejSum returns the total Josephson energy E_JΣ implied by OmegaMax and EC
// through ω01(0) = √(8·EC·EJΣ) − EC.
func (t Transmon) ejSum() float64 {
	s := t.OmegaMax + t.EC
	return s * s / (8 * t.EC)
}

// ejAt returns the flux-dependent Josephson energy of the asymmetric SQUID:
//
//	EJ(φ) = EJΣ·|cos(πφ)|·√(1 + d²·tan²(πφ))
func (t Transmon) ejAt(phi float64) float64 {
	c := math.Cos(math.Pi * phi)
	s := math.Sin(math.Pi * phi)
	d := t.Asymmetry
	return t.ejSum() * math.Sqrt(c*c+d*d*s*s)
}

// Freq01 returns the 0-1 transition frequency at flux phi (GHz):
//
//	ω01(φ) = √(8·EC·EJ(φ)) − EC
func (t Transmon) Freq01(phi float64) float64 {
	return math.Sqrt(8*t.EC*t.ejAt(phi)) - t.EC
}

// Freq12 returns the 1-2 transition frequency at flux phi (GHz):
// ω12 = ω01 + α = ω01 − EC.
func (t Transmon) Freq12(phi float64) float64 {
	return t.Freq01(phi) - t.EC
}

// OmegaMin returns the 0-1 frequency at the lower sweet spot (φ = 0.5).
func (t Transmon) OmegaMin() float64 { return t.Freq01(0.5) }

// TunableRange returns the frequency interval [OmegaMin, OmegaMax] the qubit
// can reach.
func (t Transmon) TunableRange() (lo, hi float64) {
	return t.OmegaMin(), t.OmegaMax
}

// FluxSensitivity returns |dω01/dφ| at flux phi in GHz per Φ₀, evaluated
// numerically. It vanishes at the two sweet spots and peaks in between — the
// shaded flux-noise-sensitive region of Fig 4.
func (t Transmon) FluxSensitivity(phi float64) float64 {
	const h = 1e-6
	return math.Abs(t.Freq01(phi+h)-t.Freq01(phi-h)) / (2 * h)
}

// FluxFor returns a flux φ ∈ [0, 0.5] at which the qubit's 0-1 frequency
// equals freq. It reports an error when freq lies outside the tunable range.
// Freq01 is strictly decreasing on [0, 0.5], so bisection converges.
func (t Transmon) FluxFor(freq float64) (float64, error) {
	lo, hi := t.OmegaMin(), t.OmegaMax
	if freq < lo-1e-9 || freq > hi+1e-9 {
		return 0, fmt.Errorf("phys: frequency %.4f GHz outside tunable range [%.4f, %.4f]",
			freq, lo, hi)
	}
	a, b := 0.0, 0.5 // Freq01(a) = hi, Freq01(b) = lo
	for i := 0; i < 60; i++ {
		mid := (a + b) / 2
		if t.Freq01(mid) > freq {
			a = mid
		} else {
			b = mid
		}
	}
	return (a + b) / 2, nil
}

// Reaches reports whether the qubit can be tuned to freq.
func (t Transmon) Reaches(freq float64) bool {
	lo, hi := t.TunableRange()
	return freq >= lo-1e-9 && freq <= hi+1e-9
}

// DecoherenceError returns the qubit's decoherence error after idling or
// gating for duration t ns, using the paper's combined model (§II-B1):
//
//	ε_q(t) = (1 − e^{−t/T1})·(1 − e^{−t/T2})
func (t Transmon) DecoherenceError(dur float64) float64 {
	if dur <= 0 {
		return 0
	}
	return (1 - math.Exp(-dur/t.T1)) * (1 - math.Exp(-dur/t.T2))
}

// LevelEnergy returns the energy of level n (n = 0, 1, 2) relative to the
// ground state at flux phi, in GHz: E(n) = n·ω01 + α·n(n−1)/2.
func (t Transmon) LevelEnergy(n int, phi float64) float64 {
	w := t.Freq01(phi)
	a := t.Anharmonicity()
	fn := float64(n)
	return fn*w + a*fn*(fn-1)/2
}
