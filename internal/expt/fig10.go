package expt

import (
	"fmt"

	"fastsc/internal/compile"
	"fastsc/internal/core"
)

// Fig10Result carries the depth and decoherence comparison of Fig 10.
type Fig10Result struct {
	DepthTable       *Table
	DecoherenceTable *Table
	// Depth[benchmark][strategy] and Decoherence[benchmark][strategy].
	Depth       map[string]map[string]int
	Decoherence map[string]map[string]float64
	// MeanDecCDOverU and MeanDecCDOverG are mean ratios of ColorDynamic's
	// decoherence error to the baselines' (paper: 0.90x vs U, 1.02x vs G).
	MeanDecCDOverU, MeanDecCDOverG float64
}

// fig10Strategies are the algorithms Fig 10 compares.
var fig10Strategies = []string{core.BaselineG, core.BaselineU, core.ColorDynamic}

// Fig10DepthDecoherence reproduces Fig 10: circuit depth (left) and
// decoherence error (right) for the XEB workloads under Baseline G,
// Baseline U and ColorDynamic, run through the batch engine.
func Fig10DepthDecoherence(ctx *compile.Context) (*Fig10Result, error) {
	suite := XEBSuite()
	var jobs []core.BatchJob
	for _, b := range suite {
		sys := GridSystem(b.Qubits)
		circ := b.Circuit(sys.Device)
		for _, s := range fig10Strategies {
			jobs = append(jobs, core.BatchJob{
				Key:      b.Name + "/" + s,
				Circuit:  circ,
				System:   sys,
				Strategy: s,
				Config:   jobConfig(b),
			})
		}
	}
	results, err := core.BatchCollect(ctx, jobs)
	if err != nil {
		return nil, fmt.Errorf("fig10: %w", err)
	}

	res := &Fig10Result{
		Depth:       map[string]map[string]int{},
		Decoherence: map[string]map[string]float64{},
	}
	dt := &Table{
		ID:      "fig10-depth",
		Title:   "Circuit depth (slices) after compilation",
		Columns: append([]string{"benchmark"}, fig10Strategies...),
	}
	et := &Table{
		ID:      "fig10-decoherence",
		Title:   "Program decoherence error (lower is better)",
		Columns: append([]string{"benchmark"}, fig10Strategies...),
	}
	var sumU, sumG float64
	var count int
	for _, b := range suite {
		drow := []string{b.Name}
		erow := []string{b.Name}
		res.Depth[b.Name] = map[string]int{}
		res.Decoherence[b.Name] = map[string]float64{}
		for _, s := range fig10Strategies {
			r := results[b.Name+"/"+s]
			res.Depth[b.Name][s] = r.Schedule.Depth()
			res.Decoherence[b.Name][s] = r.Report.DecoherenceError
			drow = append(drow, fmt.Sprintf("%d", r.Schedule.Depth()))
			erow = append(erow, fmtG(r.Report.DecoherenceError))
		}
		dt.Rows = append(dt.Rows, drow)
		et.Rows = append(et.Rows, erow)
		if u := res.Decoherence[b.Name][core.BaselineU]; u > 0 {
			sumU += res.Decoherence[b.Name][core.ColorDynamic] / u
		}
		if g := res.Decoherence[b.Name][core.BaselineG]; g > 0 {
			sumG += res.Decoherence[b.Name][core.ColorDynamic] / g
		}
		count++
	}
	res.MeanDecCDOverU = sumU / float64(count)
	res.MeanDecCDOverG = sumG / float64(count)
	et.Notes = append(et.Notes,
		fmt.Sprintf("ColorDynamic decoherence: %.2fx of Baseline U, %.2fx of Baseline G (paper: 0.90x, 1.02x)",
			res.MeanDecCDOverU, res.MeanDecCDOverG))
	res.DepthTable, res.DecoherenceTable = dt, et
	return res, nil
}
