package server

import (
	"net/http/httptest"
	"sync"
	"testing"

	"fastsc/internal/core"
)

// TestConcurrentSingleFlight hits one daemon with many concurrent
// identical batches and asserts the single-flight guarantee through the
// request-scoped stats: a miss is recorded only when a request's own
// compute function ran, so the miss total across ALL concurrent requests
// must equal the miss total of one request against a fresh server —
// every key is computed exactly once process-wide, no matter how many
// requests race for it. Run under -race (the repo's make test does) this
// also shakes the admission path, the scoped recorders and the shared
// cache for data races.
func TestConcurrentSingleFlight(t *testing.T) {
	const clients = 8

	// Baseline: one request against a fresh server defines the workload's
	// deterministic lookup profile (misses = unique keys computed).
	baseline := New(Config{})
	bts := httptest.NewServer(baseline.Handler())
	_, baseDone := doStream(t, bts, testRequest(core.Strategies()...))
	bts.Close()
	if baseDone.Cache == nil || baseDone.Cache.Misses == 0 {
		t.Fatalf("baseline cache report = %+v", baseDone.Cache)
	}
	baseTotal := baseDone.Cache.Hits + baseDone.Cache.Misses

	// Fire the same request from many clients at once against one server
	// with enough compile slots that they genuinely overlap.
	srv := New(Config{MaxConcurrent: clients})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dones := make([]DoneLine, clients)
	var wg sync.WaitGroup
	for i := range dones {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, dones[i] = doStream(t, ts, testRequest(core.Strategies()...))
		}()
	}
	wg.Wait()

	var misses uint64
	for i, d := range dones {
		if d.Failed != 0 {
			t.Fatalf("client %d: %d failed jobs", i, d.Failed)
		}
		if d.Cache == nil {
			t.Fatalf("client %d: no cache report", i)
		}
		if total := d.Cache.Hits + d.Cache.Misses; total == 0 || total > baseTotal {
			// Warm requests may do FEWER lookups than the cold baseline
			// (an outer-level hit short-circuits the nested lookups its
			// compute would have made), but never more.
			t.Errorf("client %d: %d lookups, want 1..%d", i, total, baseTotal)
		}
		misses += d.Cache.Misses
	}

	// Single-flight: the compute count across all clients equals one
	// cold run — concurrent requests joined in-flight computations (and
	// later ones hit the warm cache) instead of recomputing.
	if misses != baseDone.Cache.Misses {
		t.Errorf("total misses across %d concurrent clients = %d, want %d (single-flight violated)",
			clients, misses, baseDone.Cache.Misses)
	}

	// The per-region split must agree with the totals.
	var regionMisses uint64
	for _, d := range dones {
		for _, st := range d.Cache.Regions {
			regionMisses += st.Misses
		}
	}
	if regionMisses != misses {
		t.Errorf("region miss sum %d != total misses %d", regionMisses, misses)
	}
}
