package noise

import (
	"math"
	"testing"

	"fastsc/internal/bench"
	"fastsc/internal/circuit"
	"fastsc/internal/phys"
	"fastsc/internal/schedule"
	"fastsc/internal/topology"
)

func compiled(t *testing.T, strategy string, c *circuit.Circuit, sys *phys.System, opts schedule.Options) *schedule.Schedule {
	t.Helper()
	comp := schedule.ByName(strategy)
	if comp == nil {
		t.Fatalf("unknown strategy %s", strategy)
	}
	s, err := comp.Compile(nil, c, sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func xebSystem(t *testing.T, n, cycles int) (*phys.System, *circuit.Circuit) {
	t.Helper()
	sys := phys.NewSystem(topology.SquareGrid(n), phys.DefaultParams(), 42)
	return sys, bench.XEB(sys.Device, cycles, 5)
}

func TestEvaluateBounds(t *testing.T) {
	sys, c := xebSystem(t, 9, 4)
	for _, strat := range schedule.Names() {
		s := compiled(t, strat, c, sys, schedule.Options{})
		rep := Evaluate(s, DefaultOptions())
		if rep.Success < 0 || rep.Success > 1 {
			t.Fatalf("%s: success %v out of range", strat, rep.Success)
		}
		for name, v := range map[string]float64{
			"crosstalk": rep.CrosstalkError, "gategate": rep.GateGateError,
			"spectator": rep.SpectatorError, "ambient": rep.AmbientError,
			"flux": rep.FluxError, "decoherence": rep.DecoherenceError,
			"intrinsic": rep.IntrinsicError,
		} {
			if v < 0 || v > 1 {
				t.Fatalf("%s: %s error %v out of range", strat, name, v)
			}
		}
	}
}

func TestEvaluateFactorization(t *testing.T) {
	sys, c := xebSystem(t, 9, 4)
	s := compiled(t, schedule.ColorDynamic{}.Name(), c, sys, schedule.Options{})
	rep := Evaluate(s, DefaultOptions())
	// Success must equal the product of the survival factors.
	want := (1 - rep.CrosstalkError) * (1 - rep.FluxError) *
		(1 - rep.DecoherenceError) * (1 - rep.IntrinsicError)
	if math.Abs(rep.Success-want) > 1e-9 {
		t.Fatalf("success %v != factor product %v", rep.Success, want)
	}
	// Crosstalk aggregates the three families.
	wantX := 1 - (1-rep.GateGateError)*(1-rep.SpectatorError)*(1-rep.AmbientError)
	if math.Abs(rep.CrosstalkError-wantX) > 1e-9 {
		t.Fatalf("crosstalk %v != family product %v", rep.CrosstalkError, wantX)
	}
}

func TestGateCountsMatchSchedule(t *testing.T) {
	sys, c := xebSystem(t, 9, 3)
	s := compiled(t, "ColorDynamic", c, sys, schedule.Options{})
	rep := Evaluate(s, DefaultOptions())
	if rep.NumGates != s.Compiled.NumGates() {
		t.Fatalf("NumGates %d != compiled %d", rep.NumGates, s.Compiled.NumGates())
	}
	if rep.Num2Q != s.Compiled.TwoQubitGateCount() {
		t.Fatalf("Num2Q %d != compiled %d", rep.Num2Q, s.Compiled.TwoQubitGateCount())
	}
	if rep.Depth != s.Depth() || rep.Duration != s.TotalTime {
		t.Fatal("depth/duration mismatch")
	}
}

func TestPerfectGmonHasNoCrosstalk(t *testing.T) {
	sys, c := xebSystem(t, 16, 5)
	s := compiled(t, "Baseline G", c, sys, schedule.Options{Residual: 0})
	rep := Evaluate(s, DefaultOptions())
	if rep.CrosstalkError > 1e-12 {
		t.Fatalf("perfectly deactivated couplers should yield zero crosstalk, got %v",
			rep.CrosstalkError)
	}
	if rep.Success <= 0 {
		t.Fatal("gmon success should be positive")
	}
}

func TestGmonDegradesWithResidual(t *testing.T) {
	sys, c := xebSystem(t, 16, 8)
	prev := math.Inf(1)
	for _, r := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
		s := compiled(t, "Baseline G", c, sys, schedule.Options{Residual: r})
		rep := Evaluate(s, DefaultOptions())
		if rep.Success > prev+1e-12 {
			t.Fatalf("gmon success should decay with residual coupling: r=%v gives %v > %v",
				r, rep.Success, prev)
		}
		prev = rep.Success
	}
	// The decay must be substantial across the sweep (Fig 12).
	s0 := Evaluate(compiled(t, "Baseline G", c, sys, schedule.Options{Residual: 0}), DefaultOptions())
	s9 := Evaluate(compiled(t, "Baseline G", c, sys, schedule.Options{Residual: 0.9}), DefaultOptions())
	if s9.Success > s0.Success/5 {
		t.Fatalf("residual sweep too flat: %v -> %v", s0.Success, s9.Success)
	}
}

func TestColorDynamicBeatsNaiveAndUniformOnParallelCircuit(t *testing.T) {
	// The paper's robust per-benchmark claims: ColorDynamic clearly beats
	// both the crosstalk-unaware and the serializing baselines on parallel
	// workloads (N-vs-U ordering varies instance to instance because N's
	// uncoordinated frequencies are a lottery).
	sys, c := xebSystem(t, 16, 10)
	cd := Evaluate(compiled(t, "ColorDynamic", c, sys, schedule.Options{}), DefaultOptions())
	n := Evaluate(compiled(t, "Baseline N", c, sys, schedule.Options{}), DefaultOptions())
	u := Evaluate(compiled(t, "Baseline U", c, sys, schedule.Options{}), DefaultOptions())
	if cd.Success <= 2*u.Success {
		t.Fatalf("ColorDynamic (%v) should clearly beat Baseline U (%v) on XEB", cd.Success, u.Success)
	}
	if cd.Success <= 2*n.Success {
		t.Fatalf("ColorDynamic (%v) should clearly beat Baseline N (%v) on XEB", cd.Success, n.Success)
	}
}

func TestColorDynamicMatchesGmon(t *testing.T) {
	// The headline claim: tunable-qubit fixed-coupler hardware with
	// ColorDynamic stays within a small factor of the tunable-coupler
	// architecture (§I, Fig 9).
	sys, c := xebSystem(t, 16, 10)
	cd := Evaluate(compiled(t, "ColorDynamic", c, sys, schedule.Options{}), DefaultOptions())
	g := Evaluate(compiled(t, "Baseline G", c, sys, schedule.Options{}), DefaultOptions())
	if cd.Success < g.Success/5 {
		t.Fatalf("ColorDynamic (%v) should be within 5x of Baseline G (%v)", cd.Success, g.Success)
	}
}

func TestDisableAmbient(t *testing.T) {
	sys, c := xebSystem(t, 9, 4)
	s := compiled(t, "ColorDynamic", c, sys, schedule.Options{})
	opt := DefaultOptions()
	opt.DisableAmbient = true
	rep := Evaluate(s, opt)
	if rep.AmbientError != 0 {
		t.Fatalf("ambient channel should be disabled, got %v", rep.AmbientError)
	}
	full := Evaluate(s, DefaultOptions())
	if rep.Success < full.Success {
		t.Fatal("removing a channel cannot decrease success")
	}
}

func TestZeroIntrinsicErrors(t *testing.T) {
	sys, c := xebSystem(t, 9, 4)
	s := compiled(t, "ColorDynamic", c, sys, schedule.Options{})
	opt := DefaultOptions()
	opt.Gate1Error, opt.Gate2Error = 0, 0
	rep := Evaluate(s, opt)
	if rep.IntrinsicError != 0 {
		t.Fatalf("intrinsic error should vanish, got %v", rep.IntrinsicError)
	}
}

func TestFluxNoiseDisable(t *testing.T) {
	sys, c := xebSystem(t, 9, 4)
	s := compiled(t, "ColorDynamic", c, sys, schedule.Options{})
	opt := DefaultOptions()
	opt.FluxNoiseSigma = 0
	rep := Evaluate(s, opt)
	if rep.FluxError != 0 {
		t.Fatalf("flux channel should be disabled, got %v", rep.FluxError)
	}
}

func TestDecoherenceGrowsWithDepth(t *testing.T) {
	sys := phys.NewSystem(topology.SquareGrid(9), phys.DefaultParams(), 42)
	short := bench.XEB(sys.Device, 2, 5)
	long := bench.XEB(sys.Device, 12, 5)
	rs := Evaluate(compiled(t, "ColorDynamic", short, sys, schedule.Options{}), DefaultOptions())
	rl := Evaluate(compiled(t, "ColorDynamic", long, sys, schedule.Options{}), DefaultOptions())
	if rl.DecoherenceError <= rs.DecoherenceError {
		t.Fatalf("deeper circuit should decohere more: %v vs %v",
			rl.DecoherenceError, rs.DecoherenceError)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	sys, c := xebSystem(t, 9, 4)
	s := compiled(t, "ColorDynamic", c, sys, schedule.Options{})
	r1 := Evaluate(s, DefaultOptions())
	r2 := Evaluate(s, DefaultOptions())
	if r1.Success != r2.Success || r1.CrosstalkError != r2.CrosstalkError {
		t.Fatal("evaluation not deterministic")
	}
}

func TestSerialCircuitHasNoGateGateError(t *testing.T) {
	// A strictly serial two-qubit circuit can never have simultaneous
	// gates, so the gate-gate channel must be empty.
	sys := phys.NewSystem(topology.SquareGrid(4), phys.DefaultParams(), 42)
	c := circuit.New(4)
	c.CZ(0, 1).CZ(1, 3).CZ(3, 2).CZ(2, 0)
	s := compiled(t, "ColorDynamic", c, sys, schedule.Options{})
	rep := Evaluate(s, DefaultOptions())
	if rep.GateGateError != 0 {
		t.Fatalf("serial circuit has gate-gate error %v", rep.GateGateError)
	}
	if rep.SpectatorError <= 0 {
		t.Fatal("active gates next to parked qubits should register spectator channels")
	}
}
