package compile

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"fastsc/internal/faultpoint"
)

func TestRunBatchDeliversEveryJob(t *testing.T) {
	ctx := NewContext(4)
	const n = 50
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Key: fmt.Sprintf("job%d", i),
			Run: func(*Context) (any, error) { return i * i, nil },
		}
	}
	seen := make(map[int]bool)
	for o := range ctx.RunBatch(jobs) {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
		if o.Value.(int) != o.Index*o.Index {
			t.Fatalf("job %d returned %v", o.Index, o.Value)
		}
		if seen[o.Index] {
			t.Fatalf("job %d delivered twice", o.Index)
		}
		seen[o.Index] = true
	}
	if len(seen) != n {
		t.Fatalf("delivered %d outcomes, want %d", len(seen), n)
	}
}

func TestRunBatchRespectsWorkerBudget(t *testing.T) {
	const workers = 3
	const n = 12
	ctx := NewContext(workers)
	var inFlight, peak int64
	started := make(chan struct{}, n)
	gate := make(chan struct{})
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Key: fmt.Sprintf("job%d", i),
			Run: func(*Context) (any, error) {
				cur := atomic.AddInt64(&inFlight, 1)
				for {
					old := atomic.LoadInt64(&peak)
					if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
						break
					}
				}
				started <- struct{}{}
				<-gate // hold the worker so concurrency actually peaks
				atomic.AddInt64(&inFlight, -1)
				return nil, nil
			},
		}
	}
	done := make(chan struct{})
	go func() {
		for range ctx.RunBatch(jobs) {
		}
		close(done)
	}()
	// Wait until the full worker pool is occupied, then release all jobs.
	for i := 0; i < workers; i++ {
		<-started
	}
	for i := 0; i < n; i++ {
		gate <- struct{}{}
	}
	<-done
	if p := atomic.LoadInt64(&peak); p != workers {
		t.Fatalf("observed peak of %d concurrent jobs, budget is %d", p, workers)
	}
}

func TestRunBatchPropagatesErrors(t *testing.T) {
	ctx := NewContext(2)
	boom := errors.New("boom")
	jobs := []Job{
		{Key: "ok", Run: func(*Context) (any, error) { return 1, nil }},
		{Key: "bad", Run: func(*Context) (any, error) { return nil, boom }},
	}
	outcomes := ctx.CollectBatch(jobs)
	if outcomes[0].Err != nil || outcomes[0].Value.(int) != 1 {
		t.Fatalf("ok job: %+v", outcomes[0])
	}
	if !errors.Is(outcomes[1].Err, boom) {
		t.Fatalf("bad job err = %v", outcomes[1].Err)
	}
	if err := FirstError(outcomes); !errors.Is(err, boom) {
		t.Fatalf("FirstError = %v", err)
	}
}

func TestRunBatchRecoversPanics(t *testing.T) {
	ctx := NewContext(2)
	jobs := []Job{
		{Key: "panics", Run: func(*Context) (any, error) { panic("kaboom") }},
		{Key: "fine", Run: func(*Context) (any, error) { return "ok", nil }},
	}
	outcomes := ctx.CollectBatch(jobs)
	if outcomes[0].Err == nil {
		t.Fatal("panic was not converted to an error")
	}
	if outcomes[1].Err != nil || outcomes[1].Value != "ok" {
		t.Fatalf("sibling job was damaged: %+v", outcomes[1])
	}
}

// TestRunBatchCtxDeadlineCause: when the context carries a typed deadline
// cause (the server's per-request deadline_ms), jobs skipped after expiry
// report an error wrapping that cause — errors.Is identifies deadline-shed
// work through the whole engine — and skipped jobs burn no worker time.
func TestRunBatchCtxDeadlineCause(t *testing.T) {
	cctx := NewContext(1)
	ctx, cancel := context.WithDeadlineCause(context.Background(),
		time.Now().Add(10*time.Millisecond), ErrDeadline)
	defer cancel()

	var ran atomic.Int64
	block := make(chan struct{})
	jobs := []Job{
		{Key: "running", Run: func(*Context) (any, error) {
			ran.Add(1)
			<-block // outlive the deadline; started jobs finish normally
			return "done", nil
		}},
		{Key: "skipped", Run: func(*Context) (any, error) { ran.Add(1); return nil, nil }},
	}
	out := cctx.RunBatchCtx(ctx, jobs)
	<-ctx.Done() // deadline passes while job 0 is still running
	close(block)

	outcomes := make([]Outcome, len(jobs))
	for o := range out {
		outcomes[o.Index] = o
	}
	if outcomes[0].Err != nil || outcomes[0].Value != "done" {
		t.Fatalf("started job: %+v", outcomes[0])
	}
	if !errors.Is(outcomes[1].Err, ErrDeadline) {
		t.Fatalf("skipped job err = %v, want errors.Is(_, ErrDeadline)", outcomes[1].Err)
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("%d jobs ran, want 1 (expired job must not occupy a worker)", got)
	}
}

// TestRunBatchPanicSentinel: a panicking job's outcome wraps ErrJobPanic so
// serving layers can count panics without string matching.
func TestRunBatchPanicSentinel(t *testing.T) {
	ctx := NewContext(1)
	outcomes := ctx.CollectBatch([]Job{
		{Key: "panics", Run: func(*Context) (any, error) { panic("kaboom") }},
	})
	if !errors.Is(outcomes[0].Err, ErrJobPanic) {
		t.Fatalf("err = %v, want errors.Is(_, ErrJobPanic)", outcomes[0].Err)
	}
}

// TestRunBatchFaultpointPanic: the job.panic fault point fires inside a
// worker and is recovered per job — one job fails, its siblings and the
// batch survive. This is the unit-level twin of the chaos smoke's
// daemon-survives-a-panicking-job assertion.
func TestRunBatchFaultpointPanic(t *testing.T) {
	defer faultpoint.Reset()
	faultpoint.Reset()
	if err := faultpoint.Arm(faultpoint.JobPanic + "*1"); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(1) // serial: the single armed firing hits job 0
	outcomes := ctx.CollectBatch([]Job{
		{Key: "victim", Run: func(*Context) (any, error) { return "unreached", nil }},
		{Key: "survivor", Run: func(*Context) (any, error) { return "ok", nil }},
	})
	if !errors.Is(outcomes[0].Err, ErrJobPanic) {
		t.Fatalf("victim err = %v, want ErrJobPanic", outcomes[0].Err)
	}
	if outcomes[1].Err != nil || outcomes[1].Value != "ok" {
		t.Fatalf("survivor: %+v", outcomes[1])
	}
	if faultpoint.Fired(faultpoint.JobPanic) != 1 {
		t.Fatalf("fired %d, want 1", faultpoint.Fired(faultpoint.JobPanic))
	}
}

func TestCollectBatchPreservesSubmissionOrder(t *testing.T) {
	ctx := NewContext(8)
	jobs := make([]Job, 20)
	for i := range jobs {
		i := i
		jobs[i] = Job{Key: fmt.Sprintf("j%d", i), Run: func(*Context) (any, error) { return i, nil }}
	}
	outcomes := ctx.CollectBatch(jobs)
	for i, o := range outcomes {
		if o.Index != i || o.Value.(int) != i {
			t.Fatalf("outcome %d = %+v", i, o)
		}
	}
}

func TestRunBatchNilContextAndEmptyBatch(t *testing.T) {
	var ctx *Context
	outcomes := ctx.CollectBatch([]Job{
		{Key: "a", Run: func(c *Context) (any, error) {
			if c != nil {
				return nil, errors.New("nil context should stay nil in jobs")
			}
			return 42, nil
		}},
	})
	if outcomes[0].Err != nil || outcomes[0].Value.(int) != 42 {
		t.Fatalf("nil-context batch: %+v", outcomes[0])
	}
	for range ctx.RunBatch(nil) {
		t.Fatal("empty batch emitted an outcome")
	}
}

// TestBatchSharedCacheUnderRace runs many jobs that all hit the same cache
// keys; with -race this validates the engine/cache combination end to end.
func TestBatchSharedCacheUnderRace(t *testing.T) {
	ctx := NewContext(8)
	jobs := make([]Job, 64)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Key: fmt.Sprintf("j%d", i),
			Run: func(c *Context) (any, error) {
				return c.Cache.Do("shared", fmt.Sprintf("k%d", i%4), func() (any, error) {
					return i % 4, nil
				})
			},
		}
	}
	for _, o := range ctx.CollectBatch(jobs) {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
		if o.Value.(int) != o.Index%4 {
			t.Fatalf("job %d: cached value %v", o.Index, o.Value)
		}
	}
	total := ctx.Cache.TotalStats()
	if total.Hits == 0 {
		t.Fatal("shared cache recorded no hits across the batch")
	}
}
