package compile

import (
	"fmt"
	"testing"

	"fastsc/internal/graph"
)

// bulkyValue is a test stand-in for a crosstalk graph or palette: a cached
// value that reports a large approximate size.
type bulkyValue struct{ bytes int }

func (b *bulkyValue) ApproxSize() int { return b.bytes }

func TestEntryCostWeighsByApproximateSize(t *testing.T) {
	if c := entryCost("small string"); c != 1 {
		t.Fatalf("plain value cost = %d, want 1", c)
	}
	if c := entryCost(smtResult{xs: []float64{6.1, 6.4}}); c != 1 {
		t.Fatalf("smt result cost = %d, want 1", c)
	}
	small := entryCost(SliceSolution{Coloring: graph.NewColoring(8), Assign: []float64{6.2, 6.6}})
	big := entryCost(&bulkyValue{bytes: 64 * 1024})
	if small != 1 {
		t.Fatalf("typical slice solution cost = %d, want 1", small)
	}
	if big <= 10*small {
		t.Fatalf("a 64 KB value costs %d units, want far above a slice entry's %d", big, small)
	}
}

// TestSizeAwareEvictionShedsBulkyEntries fills a single-shard cache with
// small entries, then inserts one bulky value: the bulky entry must pay
// for itself by evicting proportionally many small entries, not just one.
func TestSizeAwareEvictionShedsBulkyEntries(t *testing.T) {
	const capUnits = 32
	c := NewCacheSharded(capUnits, 1)
	for i := 0; i < capUnits; i++ {
		c.Put("r", fmt.Sprintf("small-%d", i), i)
	}
	if c.Len() != capUnits {
		t.Fatalf("cache holds %d entries, want %d", c.Len(), capUnits)
	}
	// ~10 units of bulk must displace ~10 small entries.
	bulky := &bulkyValue{bytes: 10 * costUnitBytes} // 11 units: 1 + 10·unit
	c.Put("r", "bulky", bulky)
	wantLen := capUnits + 1 - entryCost(bulky)
	if c.Len() != wantLen {
		t.Fatalf("after bulky insert: %d entries, want %d", c.Len(), wantLen)
	}
	if v, ok := c.Get("r", "bulky"); !ok || v != bulky {
		t.Fatal("bulky entry missing after insert")
	}
	// The survivors must be the most recently used small entries.
	if _, ok := c.Get("r", "small-0"); ok {
		t.Fatal("oldest small entry survived size-aware eviction")
	}
	if _, ok := c.Get("r", fmt.Sprintf("small-%d", capUnits-1)); !ok {
		t.Fatal("newest small entry was evicted")
	}
	ev := c.StatsByRegion()["r"].Evictions
	if int(ev) != entryCost(bulky) {
		t.Fatalf("evictions = %d, want %d", ev, entryCost(bulky))
	}
}

// TestOversizedEntryStillCaches pins the degenerate case: a value larger
// than the whole shard evicts everything else but is itself retained.
func TestOversizedEntryStillCaches(t *testing.T) {
	c := NewCacheSharded(4, 1)
	c.Put("r", "a", 1)
	c.Put("r", "b", 2)
	c.Put("r", "huge", &bulkyValue{bytes: 1 << 20})
	if v, ok := c.Get("r", "huge"); !ok || v.(*bulkyValue).bytes != 1<<20 {
		t.Fatal("oversized entry was not cached")
	}
	if c.Len() != 1 {
		t.Fatalf("oversized entry should hold the shard alone, len = %d", c.Len())
	}
}

// TestXtalkGraphReportsSize checks the Sizer plumbing end to end for the
// values the eviction policy is about: crosstalk graphs weigh much more
// than slice solutions.
func TestXtalkGraphSizerPlumbing(t *testing.T) {
	g := graph.NewDense(64)
	for i := 0; i+1 < 64; i++ {
		g.AddEdge(i, i+1)
	}
	if g.ApproxSize() < 64*4 {
		t.Fatalf("graph ApproxSize = %d, implausibly small", g.ApproxSize())
	}
}
