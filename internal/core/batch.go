package core

import (
	"context"
	"fmt"

	"fastsc/internal/circuit"
	"fastsc/internal/compile"
	"fastsc/internal/phys"
)

// BatchJob is one (circuit, compiler, system) triple for the batch engine.
type BatchJob struct {
	// Key identifies the job in its BatchResult; keys should be unique
	// within a batch (BatchCollect maps results by key).
	Key string
	// Circuit is the logical circuit to route and schedule.
	Circuit *circuit.Circuit
	// System is the characterized target chip.
	System *phys.System
	// Strategy is the Table I strategy name (see Strategies).
	Strategy string
	// Config tunes the compilation as in Compile.
	Config Config
}

// BatchResult is one finished batch job, streamed in completion order.
type BatchResult struct {
	// Index is the job's position in the submitted slice.
	Index int
	// Key echoes BatchJob.Key.
	Key string
	// Strategy echoes BatchJob.Strategy.
	Strategy string
	// Result is the compilation output when Err is nil.
	Result *Result
	// Err is the compilation error.
	Err error
}

// BatchCompile fans jobs across ctx's worker pool (nil ctx: GOMAXPROCS
// workers, no cache) and streams results over the returned channel as they
// complete. All jobs share ctx's cache, so recurring device-level solver
// work (SMT solutions, crosstalk graphs, static palettes) and recurring
// slice subgraphs are computed once across the whole batch — including
// when many workers miss on the same key simultaneously: the cache's
// single-flight layer blocks the duplicates on the one computation.
// Warm-starting the batch from a previous process's snapshot
// (compile.Cache.Load / the CLIs' -cache-file flag) removes even the
// first computation of each recurring entry.
func BatchCompile(ctx *compile.Context, jobs []BatchJob) <-chan BatchResult {
	return BatchCompileCtx(context.Background(), ctx, jobs)
}

// BatchCompileCtx is BatchCompile under a cancellation context: when stdctx
// is canceled, in-flight compilations run to completion (partial schedules
// are never streamed) and jobs not yet started are reported with Err
// wrapping the cancellation cause. The compile server uses this to abort
// the remainder of a batch when its client disconnects and to drain
// gracefully on shutdown.
func BatchCompileCtx(stdctx context.Context, ctx *compile.Context, jobs []BatchJob) <-chan BatchResult {
	ejobs := make([]compile.Job, len(jobs))
	for i, j := range jobs {
		job := j
		ejobs[i] = compile.Job{
			Key: job.Key,
			Run: func(c *compile.Context) (any, error) {
				return CompileCtx(c, job.Circuit, job.System, job.Strategy, job.Config)
			},
		}
	}
	out := make(chan BatchResult, len(jobs))
	go func() {
		defer close(out)
		for o := range ctx.RunBatchCtx(stdctx, ejobs) {
			br := BatchResult{
				Index:    o.Index,
				Key:      o.Key,
				Strategy: jobs[o.Index].Strategy,
				Err:      o.Err,
			}
			if o.Err == nil {
				br.Result = o.Value.(*Result)
			}
			out <- br
		}
	}()
	return out
}

// BatchCollect runs jobs to completion and returns the results keyed by
// job key, or the first error (in submission order) if any job failed.
func BatchCollect(ctx *compile.Context, jobs []BatchJob) (map[string]*Result, error) {
	results := make([]BatchResult, len(jobs))
	for r := range BatchCompile(ctx, jobs) {
		results[r.Index] = r
	}
	out := make(map[string]*Result, len(jobs))
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("core: job %q (%s): %w", r.Key, r.Strategy, r.Err)
		}
		out[r.Key] = r.Result
	}
	return out, nil
}
