package sim

import (
	"math"
	"math/rand"
	"testing"

	"fastsc/internal/bench"
	"fastsc/internal/circuit"
	"fastsc/internal/topology"
)

func TestSampleDistribution(t *testing.T) {
	// H|0⟩ on one of two qubits: samples split ~50/50 between |00⟩ and |10⟩.
	c := circuit.New(2)
	c.H(0)
	s := RunIdeal(c)
	rng := rand.New(rand.NewSource(1))
	samples := s.Sample(4000, rng)
	counts := map[int]int{}
	for _, x := range samples {
		counts[x]++
	}
	if counts[1] != 0 || counts[3] != 0 {
		t.Fatalf("impossible outcomes sampled: %v", counts)
	}
	frac := float64(counts[0]) / 4000
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("P(|00⟩) sampled as %v, want ~0.5", frac)
	}
}

func TestSampleEdgeCases(t *testing.T) {
	s := NewState(2)
	if got := s.Sample(0, rand.New(rand.NewSource(1))); got != nil {
		t.Fatal("zero samples should return nil")
	}
	// Deterministic state: all samples identical.
	for _, x := range s.Sample(50, rand.New(rand.NewSource(2))) {
		if x != 0 {
			t.Fatalf("sampled %d from |00⟩", x)
		}
	}
}

func TestLinearXEBIdealRandomCircuit(t *testing.T) {
	// Sampling the ideal distribution of a random (Porter–Thomas-like)
	// circuit yields F ≈ 1.
	dev := topology.SquareGrid(9)
	c := circuit.Decompose(bench.XEB(dev, 8, 3), circuit.Hybrid)
	ideal := RunIdeal(c)
	f, err := XEBExperiment(ideal, ideal, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-1) > 0.15 {
		t.Fatalf("ideal linear XEB = %v, want ≈1", f)
	}
}

func TestLinearXEBUniformNoise(t *testing.T) {
	// Scoring uniformly random bitstrings against a random circuit's
	// distribution yields F ≈ 0.
	dev := topology.SquareGrid(9)
	c := circuit.Decompose(bench.XEB(dev, 8, 3), circuit.Hybrid)
	ideal := RunIdeal(c)
	rng := rand.New(rand.NewSource(11))
	samples := make([]int, 20000)
	for i := range samples {
		samples[i] = rng.Intn(1 << 9)
	}
	f, err := LinearXEB(ideal, samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f) > 0.1 {
		t.Fatalf("uniform-noise linear XEB = %v, want ≈0", f)
	}
}

func TestLinearXEBErrors(t *testing.T) {
	s := NewState(2)
	if _, err := LinearXEB(s, nil); err == nil {
		t.Fatal("empty samples should error")
	}
	if _, err := LinearXEB(s, []int{99}); err == nil {
		t.Fatal("out-of-range sample should error")
	}
	o := NewState(3)
	if _, err := XEBExperiment(s, o, 10, 1); err == nil {
		t.Fatal("width mismatch should error")
	}
}

func TestXEBFidelityTracksNoise(t *testing.T) {
	// A noisy final state must score a lower linear-XEB fidelity than the
	// ideal one.
	dev := topology.SquareGrid(4)
	c := circuit.Decompose(bench.XEB(dev, 6, 3), circuit.Hybrid)
	ideal := RunIdeal(c)
	// Corrupt: mix with a depolarized copy by applying random Paulis.
	noisy := ideal.Clone()
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 4; q++ {
		if rng.Float64() < 0.8 {
			applyRandomPauli(noisy, q, rng)
		}
	}
	fIdeal, err := XEBExperiment(ideal, ideal, 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	fNoisy, err := XEBExperiment(ideal, noisy, 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if fNoisy >= fIdeal {
		t.Fatalf("noisy XEB fidelity %v should be below ideal %v", fNoisy, fIdeal)
	}
}
