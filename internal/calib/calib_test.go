package calib

import (
	"math"
	"testing"

	"fastsc/internal/circuit"
	"fastsc/internal/core"
	"fastsc/internal/graph"
	"fastsc/internal/phys"
	"fastsc/internal/topology"
)

func TestMeasureCouplingRecoversG0(t *testing.T) {
	sys := phys.NewSystem(topology.Grid(2, 2), phys.DefaultParams(), 42)
	for _, e := range sys.Device.Edges() {
		g, err := MeasureCoupling(sys, e, DefaultOptions())
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		nominal := sys.G0(e.U, e.V)
		if rel := math.Abs(g-nominal) / nominal; rel > 0.05 {
			t.Fatalf("coupler %v: measured %.5f vs nominal %.5f (%.1f%% off)",
				e, g, nominal, rel*100)
		}
	}
}

func TestCharacterizeFullDevice(t *testing.T) {
	sys := phys.NewSystem(topology.Grid(2, 2), phys.DefaultParams(), 7)
	cal, err := Characterize(sys, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.Coupling) != sys.Device.Coupling.NumEdges() {
		t.Fatalf("measured %d couplers, want %d", len(cal.Coupling), sys.Device.Coupling.NumEdges())
	}
	if cal.MaxCouplingError(sys) > 0.05 {
		t.Fatalf("coupling characterization error %.2f%% too high", cal.MaxCouplingError(sys)*100)
	}
	for q := 0; q < sys.Device.Qubits; q++ {
		want := sys.Transmon(q).OmegaMax
		if math.Abs(cal.OmegaMax[q]-want) > 0.01 {
			t.Fatalf("qubit %d sweet spot: %.4f vs %.4f", q, cal.OmegaMax[q], want)
		}
	}
}

func TestCharacterizeRejectsBadOptions(t *testing.T) {
	sys := phys.NewSystem(topology.Grid(2, 2), phys.DefaultParams(), 7)
	if _, err := Characterize(sys, Options{}); err == nil {
		t.Fatal("zero options should be rejected")
	}
}

func TestApplyProducesWorkingSystem(t *testing.T) {
	sys := phys.NewSystem(topology.Grid(3, 3), phys.DefaultParams(), 42)
	cal, err := Characterize(sys, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	measured := cal.Apply(sys)
	// The measured system must drive the full compiler pipeline.
	circ := quickCircuit()
	res, err := core.Compile(circ, measured, core.ColorDynamic, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Success <= 0 {
		t.Fatal("compilation on measured system failed to produce a success estimate")
	}
	// Nominal and measured compilations should agree closely (the
	// characterization is accurate).
	nom, err := core.Compile(circ, sys, core.ColorDynamic, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Report.Success-nom.Report.Success) > 0.05 {
		t.Fatalf("measured vs nominal success: %v vs %v", res.Report.Success, nom.Report.Success)
	}
}

func TestApplyDoesNotMutateOriginal(t *testing.T) {
	sys := phys.NewSystem(topology.Grid(2, 2), phys.DefaultParams(), 42)
	cal, err := Characterize(sys, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	before := sys.G0(0, 1)
	m := cal.Apply(sys)
	id01, _ := sys.Device.Coupling.EdgeID(0, 1)
	m.Coupling[id01] = 99
	m.Qubits[0].OmegaMax = 1
	if sys.G0(0, 1) != before {
		t.Fatal("Apply shares coupling storage with the original")
	}
	if sys.Qubits[0].OmegaMax == 1 {
		t.Fatal("Apply shares qubit storage with the original")
	}
}

func TestMeasureCouplingDetectsWeakCoupler(t *testing.T) {
	// A coupler far below the measurable floor must be reported, not
	// silently mis-fit.
	sys := phys.NewSystem(topology.Grid(2, 2), phys.DefaultParams(), 42)
	e := graph.NewEdge(0, 1)
	id, _ := sys.Device.Coupling.EdgeID(0, 1)
	sys.Coupling[id] = 1e-5 // 10 kHz: first transfer at 25 µs >> MaxHold
	if _, err := MeasureCoupling(sys, e, DefaultOptions()); err == nil {
		t.Fatal("immeasurably weak coupling should error")
	}
}

func quickCircuit() *circuit.Circuit {
	c := circuit.New(9)
	c.H(0).CNOT(0, 1).CNOT(4, 5).CZ(7, 8)
	return c
}
