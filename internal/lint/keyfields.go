package lint

import (
	"go/types"
	"sort"
	"strings"
)

// KeyFieldsAnalyzer verifies, in the package that declares each hashed
// struct, that its field set exactly matches the key schema table
// (keyschema.go). Adding a field to smt.Config, topology.Device,
// phys.System, mapping.Options, circuit.Gate, ... without folding it into
// the corresponding key function would silently alias cache entries
// across configurations that differ only in that field; this analyzer
// turns that mistake into a vet failure, before the reflection guard in
// compile/key_test.go ever runs.
var KeyFieldsAnalyzer = MakeKeyFieldsAnalyzer(DefaultKeySchema)

// MakeKeyFieldsAnalyzer builds a keyfields analyzer over an explicit
// schema table; the fixture tests use it with a testdata-local table.
func MakeKeyFieldsAnalyzer(schema map[string]KeySchema) *Analyzer {
	a := &Analyzer{
		Name: "keyfields",
		Doc: "structs hashed into compile cache keys must match the key " +
			"schema table exactly (the compile-time twin of TestKeySchemaDrift)",
	}
	a.Run = func(pass *Pass) { runKeyFields(pass, schema) }
	return a
}

func runKeyFields(pass *Pass, schema map[string]KeySchema) {
	prefix := pass.Pkg.Path() + "."
	names := make([]string, 0, len(schema))
	for qual := range schema {
		if strings.HasPrefix(qual, prefix) {
			names = append(names, strings.TrimPrefix(qual, prefix))
		}
	}
	sort.Strings(names)
	for _, name := range names {
		ks := schema[prefix+name]
		obj := pass.Pkg.Scope().Lookup(name)
		if obj == nil {
			pass.Reportf(pass.Files[0].Package,
				"key schema pins %s%s (hashed by %s) but this package declares no such type; update internal/lint/keyschema.go",
				prefix, name, ks.KeyFunc)
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			pass.Reportf(obj.Pos(),
				"key schema pins %s as a struct hashed by %s, but it is %s; update internal/lint/keyschema.go",
				name, ks.KeyFunc, obj.Type().Underlying())
			continue
		}
		got := map[string]bool{}
		for i := 0; i < st.NumFields(); i++ {
			got[st.Field(i).Name()] = true
		}
		want := map[string]bool{}
		for _, f := range ks.Fields {
			want[f] = true
		}
		var extra, missing []string
		for f := range got {
			if !want[f] {
				extra = append(extra, f)
			}
		}
		for f := range want {
			if !got[f] {
				missing = append(missing, f)
			}
		}
		sort.Strings(extra)
		sort.Strings(missing)
		for _, f := range missing {
			pass.Reportf(obj.Pos(),
				"%s lost field %s, which %s was written against; update the key, the schema table (internal/lint/keyschema.go), the reflection guard (compile/key_test.go) and bump compile.KeyVersion",
				name, quote(f), ks.KeyFunc)
		}
		if len(extra) > 0 {
			pass.Reportf(obj.Pos(),
				"%s gained field(s) %s not enumerated in the key schema; fold them into %s (or document their exclusion), update internal/lint/keyschema.go and compile/key_test.go, and bump compile.KeyVersion",
				name, strings.Join(extra, ", "), ks.KeyFunc)
		}
	}
}
