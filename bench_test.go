// Benchmark harness: one testing.B benchmark per table and figure of the
// paper, plus ablations of the design choices DESIGN.md calls out and
// scalability micro-benchmarks. Run with:
//
//	go test -bench=. -benchmem
//
// Headline quantities (success rates, improvement ratios) are attached to
// the benchmark output via b.ReportMetric.
package fastsc_test

import (
	"testing"

	"fastsc/internal/bench"
	"fastsc/internal/circuit"
	"fastsc/internal/compile"
	"fastsc/internal/core"
	"fastsc/internal/expt"
	"fastsc/internal/graph"
	"fastsc/internal/phys"
	"fastsc/internal/schedule"
	"fastsc/internal/sim"
	"fastsc/internal/smt"
	"fastsc/internal/topology"
	"fastsc/internal/xtalk"
)

// benchCtx returns a fresh batch-engine context per figure run, so each
// iteration measures the engine end-to-end from a cold cache.
func benchCtx() *compile.Context { return compile.NewContext(0) }

// --- Tables ---

func BenchmarkTable1Strategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := expt.TableStrategies(); len(t.Rows) != 5 {
			b.Fatal("table I must list five strategies")
		}
	}
}

func BenchmarkTable2Benchmarks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := expt.TableBenchmarks(); len(t.Rows) != 5 {
			b.Fatal("table II must list five benchmark families")
		}
	}
}

// --- Figures ---

func BenchmarkFig2InteractionStrength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := expt.Fig2InteractionStrength(); len(t.Rows) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

func BenchmarkFig4TransmonSpectrum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := expt.Fig4TransmonSpectrum(); len(t.Rows) == 0 {
			b.Fatal("empty spectrum")
		}
	}
}

func BenchmarkFig6Toy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig6Toy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7MeshColoring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := expt.Fig7MeshColoring(); len(t.Rows) != 3 {
			b.Fatal("mesh coloring rows missing")
		}
	}
}

func BenchmarkFig9SuccessRates(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		r, err := expt.Fig9SuccessRates(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		mean = r.MeanCDOverU
	}
	b.ReportMetric(mean, "CD/U-mean-ratio")
}

func BenchmarkFig10DepthDecoherence(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := expt.Fig10DepthDecoherence(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.MeanDecCDOverU
	}
	b.ReportMetric(ratio, "CD/U-decoherence")
}

func BenchmarkFig11ColorSweep(b *testing.B) {
	best := 0.0
	for i := 0; i < b.N; i++ {
		r, err := expt.Fig11ColorSweep(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		sum := 0
		for _, k := range r.BestColors {
			sum += k
		}
		best = float64(sum) / float64(len(r.BestColors))
	}
	b.ReportMetric(best, "mean-best-colors")
}

func BenchmarkFig12ResidualCoupling(b *testing.B) {
	var drop float64
	for i := 0; i < b.N; i++ {
		r, err := expt.Fig12ResidualCoupling(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		s := r.Success["xeb(16,15)"]
		if len(s) > 0 && s[len(s)-1] > 0 {
			drop = s[0] / s[len(s)-1]
		}
	}
	b.ReportMetric(drop, "xeb(16,15)-r0/r0.9")
}

func BenchmarkFig13Connectivity(b *testing.B) {
	var geo float64
	for i := 0; i < b.N; i++ {
		r, err := expt.Fig13Connectivity(benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		geo = r.GeoMeanCDOverU
	}
	b.ReportMetric(geo, "CD/U-geomean")
}

func BenchmarkFig14ExampleFrequencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig14ExampleFrequencies(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15Chevrons(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := expt.Fig15Chevrons(); len(t.Rows) == 0 {
			b.Fatal("empty chevron scan")
		}
	}
}

func BenchmarkValidationHeuristic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.ValidationHeuristic(benchCtx(), 40); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationDecomposition compares the hybrid decomposition of
// §V-B5 against forcing a single native family, on a SWAP-heavy routed
// workload.
func BenchmarkAblationDecomposition(b *testing.B) {
	for _, strat := range []circuit.DecomposeStrategy{circuit.Hybrid, circuit.PureCZ, circuit.PureISwap} {
		b.Run(strat.String(), func(b *testing.B) {
			sys := phys.NewSystem(topology.SquareGrid(9), phys.DefaultParams(), 42)
			circ := bench.QAOA(9, 7)
			var success float64
			for i := 0; i < b.N; i++ {
				res, err := core.Compile(circ, sys, core.ColorDynamic, core.Config{
					Schedule: schedule.Options{Decompose: strat},
				})
				if err != nil {
					b.Fatal(err)
				}
				success = res.Report.Success
			}
			b.ReportMetric(success, "success")
		})
	}
}

// BenchmarkAblationXtalkDistance compares nearest-neighbor-only coloring
// (d=1, Fig 7) with the default distance-2 coloring (§IV-C3).
func BenchmarkAblationXtalkDistance(b *testing.B) {
	for _, d := range []int{1, 2} {
		b.Run(map[int]string{1: "d1", 2: "d2"}[d], func(b *testing.B) {
			sys := phys.NewSystem(topology.SquareGrid(16), phys.DefaultParams(), 42)
			circ := bench.XEB(sys.Device, 10, 7)
			var success float64
			for i := 0; i < b.N; i++ {
				res, err := core.Compile(circ, sys, core.ColorDynamic, core.Config{
					Schedule: schedule.Options{XtalkDistance: d},
				})
				if err != nil {
					b.Fatal(err)
				}
				success = res.Report.Success
			}
			b.ReportMetric(success, "success")
		})
	}
}

// BenchmarkAblationQueueing sweeps the noise_conflict threshold of the
// queueing scheduler (§V-B6): 1 serializes aggressively, 99 never defers.
func BenchmarkAblationQueueing(b *testing.B) {
	for _, limit := range []int{1, 4, 99} {
		b.Run(map[int]string{1: "aggressive", 4: "default", 99: "off"}[limit], func(b *testing.B) {
			sys := phys.NewSystem(topology.SquareGrid(16), phys.DefaultParams(), 42)
			circ := bench.XEB(sys.Device, 10, 7)
			var success float64
			for i := 0; i < b.N; i++ {
				res, err := core.Compile(circ, sys, core.ColorDynamic, core.Config{
					Schedule: schedule.Options{ConflictLimit: limit},
				})
				if err != nil {
					b.Fatal(err)
				}
				success = res.Report.Success
			}
			b.ReportMetric(success, "success")
		})
	}
}

// --- Scalability micro-benchmarks ---

// BenchmarkCompileColorDynamic81 measures compilation latency on an
// 81-qubit chip (the paper reports <30 s in Python; §VII-C).
func BenchmarkCompileColorDynamic81(b *testing.B) {
	sys := phys.NewSystem(topology.SquareGrid(81), phys.DefaultParams(), 42)
	circ := bench.XEB(sys.Device, 10, 7)
	comp := schedule.ColorDynamic{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.Compile(nil, circ, sys, schedule.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrosstalkGraph9x9(b *testing.B) {
	dev := topology.Grid(9, 9)
	for i := 0; i < b.N; i++ {
		xtalk.Build(dev, 2)
	}
}

func BenchmarkSMTSolve8Colors(b *testing.B) {
	cfg := smt.Config{Lo: 6.15, Hi: 6.95, Alpha: -0.2}
	for i := 0; i < b.N; i++ {
		if _, _, err := smt.Solve(8, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWelshPowellMeshXtalk(b *testing.B) {
	x := xtalk.Build(topology.Grid(8, 8), 1)
	for i := 0; i < b.N; i++ {
		if c := graph.WelshPowell(x.G); !c.Valid(x.G) {
			b.Fatal("invalid coloring")
		}
	}
}

func BenchmarkStatevector14Qubits(b *testing.B) {
	dev := topology.Grid(2, 7)
	c := bench.XEB(dev, 4, 3)
	for i := 0; i < b.N; i++ {
		sim.RunIdeal(c)
	}
}

func BenchmarkNoisyTrajectory9Qubits(b *testing.B) {
	sys := phys.NewSystem(topology.SquareGrid(9), phys.DefaultParams(), 42)
	circ := bench.XEB(sys.Device, 5, 7)
	sched, err := schedule.ColorDynamic{}.Compile(nil, circ, sys, schedule.Options{})
	if err != nil {
		b.Fatal(err)
	}
	opt := sim.DefaultTrajectoryOptions(1)
	opt.Shots = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunNoisy(sched, opt)
	}
}
