package circuit

import (
	"testing"
)

// unitary4 multiplies out a circuit over exactly two qubits {0, 1} into its
// 4×4 unitary (qubit 0 is the high-order bit).
func unitary4(t *testing.T, c *Circuit) Mat4 {
	t.Helper()
	if c.NumQubits != 2 {
		t.Fatalf("unitary4 needs a 2-qubit circuit, got %d", c.NumQubits)
	}
	u := Identity4()
	id := Matrix1(I, 0)
	for _, g := range c.Gates {
		var m Mat4
		if g.Kind.IsTwoQubit() {
			m = Matrix2Q(g.Kind)
			if g.Qubits[0] == 1 { // reversed operand order
				m = Swap4(m)
			}
		} else {
			u1 := Matrix1(g.Kind, g.Theta)
			if g.Qubits[0] == 0 {
				m = Kron(u1, id)
			} else {
				m = Kron(id, u1)
			}
		}
		u = Mul4(m, u)
	}
	return u
}

func decomposeSingle(t *testing.T, k Kind, qs []int, s DecomposeStrategy) *Circuit {
	t.Helper()
	c := New(2)
	c.Add(Gate{Kind: k, Qubits: qs})
	return Decompose(c, s)
}

func TestCNOTViaCZExact(t *testing.T) {
	d := decomposeSingle(t, CNOT, []int{0, 1}, PureCZ)
	if !EqualUpToGlobalPhase4(unitary4(t, d), Matrix2Q(CNOT), 1e-9) {
		t.Fatal("CNOT via CZ is not unitarily equivalent to CNOT")
	}
	if d.CountKind(CZ) != 1 || d.CountKind(H) != 2 {
		t.Fatalf("CNOT via CZ should be H·CZ·H, got %v", d)
	}
}

func TestCNOTViaISwapExact(t *testing.T) {
	d := decomposeSingle(t, CNOT, []int{0, 1}, PureISwap)
	if !EqualUpToGlobalPhase4(unitary4(t, d), Matrix2Q(CNOT), 1e-9) {
		t.Fatal("CNOT via iSWAP is not unitarily equivalent to CNOT")
	}
	if d.CountKind(ISwap) != 2 {
		t.Fatalf("CNOT via iSWAP should use exactly 2 iSWAPs, got %d", d.CountKind(ISwap))
	}
}

func TestCNOTViaISwapReversedOperands(t *testing.T) {
	d := decomposeSingle(t, CNOT, []int{1, 0}, PureISwap)
	want := Swap4(Matrix2Q(CNOT))
	if !EqualUpToGlobalPhase4(unitary4(t, d), want, 1e-9) {
		t.Fatal("reversed-operand CNOT via iSWAP incorrect")
	}
}

func TestSWAPViaSqrtISwapExact(t *testing.T) {
	d := decomposeSingle(t, SWAP, []int{0, 1}, Hybrid)
	if !EqualUpToGlobalPhase4(unitary4(t, d), Matrix2Q(SWAP), 1e-9) {
		t.Fatal("SWAP via √iSWAP is not unitarily equivalent to SWAP")
	}
	if d.CountKind(SqrtISwap) != 3 {
		t.Fatalf("SWAP via √iSWAP should use exactly 3 √iSWAPs, got %d", d.CountKind(SqrtISwap))
	}
}

func TestSWAPViaCZExact(t *testing.T) {
	d := decomposeSingle(t, SWAP, []int{0, 1}, PureCZ)
	if !EqualUpToGlobalPhase4(unitary4(t, d), Matrix2Q(SWAP), 1e-9) {
		t.Fatal("SWAP via CZ is not unitarily equivalent to SWAP")
	}
	if d.CountKind(CZ) != 3 {
		t.Fatalf("SWAP via CZ should use 3 CZs, got %d", d.CountKind(CZ))
	}
}

func TestSWAPViaISwapExact(t *testing.T) {
	d := decomposeSingle(t, SWAP, []int{0, 1}, PureISwap)
	if !EqualUpToGlobalPhase4(unitary4(t, d), Matrix2Q(SWAP), 1e-9) {
		t.Fatal("SWAP via iSWAP is not unitarily equivalent to SWAP")
	}
	if d.CountKind(ISwap) != 6 {
		t.Fatalf("SWAP via pure iSWAP uses 3 CNOTs = 6 iSWAPs, got %d", d.CountKind(ISwap))
	}
}

func TestHybridCNOTUsesCZ(t *testing.T) {
	d := decomposeSingle(t, CNOT, []int{0, 1}, Hybrid)
	if d.CountKind(CZ) != 1 || d.CountKind(ISwap) != 0 {
		t.Fatal("hybrid must route CNOT through CZ")
	}
}

func TestDecomposeProducesNativeCircuit(t *testing.T) {
	c := New(2)
	c.H(0).CNOT(0, 1).SWAP(0, 1).CZ(0, 1).RZ(1, 0.3)
	for _, s := range []DecomposeStrategy{Hybrid, PureCZ, PureISwap} {
		d := Decompose(c, s)
		if !d.IsNative() {
			t.Fatalf("strategy %v left non-native gates", s)
		}
		// The unitaries must agree regardless of strategy.
		if !EqualUpToGlobalPhase4(unitary4(t, d), unitary4(t, Decompose(c, PureCZ)), 1e-9) {
			t.Fatalf("strategy %v changed the circuit unitary", s)
		}
	}
}

func TestDecomposePassesNativeGatesThrough(t *testing.T) {
	c := New(2)
	c.ISwap(0, 1).CZ(0, 1).SqrtISwap(0, 1).H(0)
	d := Decompose(c, Hybrid)
	if d.NumGates() != c.NumGates() {
		t.Fatalf("native circuit modified: %d -> %d gates", c.NumGates(), d.NumGates())
	}
}

func TestHybridCheaperTwoQubitTime(t *testing.T) {
	// The motivation for hybrid decomposition: total native two-qubit gate
	// count (weighted by relative duration CZ≈1.41·√iSWAP·... in units of
	// 1/g: iSWAP=0.25, √iSWAP=0.125, CZ≈0.354) is lower for hybrid than
	// for either pure strategy on a CNOT+SWAP workload.
	cost := func(d *Circuit) float64 {
		total := 0.0
		for _, g := range d.Gates {
			switch g.Kind {
			case ISwap:
				total += 0.25
			case SqrtISwap:
				total += 0.125
			case CZ:
				total += 0.3536
			}
		}
		return total
	}
	c := New(2)
	c.CNOT(0, 1).SWAP(0, 1)
	hybrid := cost(Decompose(c, Hybrid))
	pureCZ := cost(Decompose(c, PureCZ))
	pureIS := cost(Decompose(c, PureISwap))
	if hybrid >= pureCZ || hybrid >= pureIS {
		t.Fatalf("hybrid cost %v should beat pure-CZ %v and pure-iSWAP %v", hybrid, pureCZ, pureIS)
	}
}

func TestDecomposeStrategyString(t *testing.T) {
	if Hybrid.String() != "hybrid" || PureCZ.String() != "pure-cz" || PureISwap.String() != "pure-iswap" {
		t.Error("strategy names wrong")
	}
	if DecomposeStrategy(99).String() != "unknown" {
		t.Error("unknown strategy name wrong")
	}
}
