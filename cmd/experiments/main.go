// Command experiments regenerates the tables and figures of the paper's
// evaluation, running every benchmark × compiler sweep through the batch
// compilation engine (bounded worker pool + cross-job solver caches). With
// no arguments it runs everything; otherwise pass one or more experiment
// ids:
//
//	experiments fig9 fig13
//	experiments -workers 4 -cache-stats all
//	experiments -cache-file sweep.snap fig9   # second run starts warm
//
// Available ids: table1, table2, fig2, fig4, fig6, fig7, fig9, fig10,
// fig11, fig12, fig13, fig14, fig15, ext-gmon, ext-routers, validation.
//
// The layout/routing stage is configurable: -router selects the SWAP
// insertion algorithm (greedy | lookahead) and -placement overrides every
// benchmark's natural initial layout (identity | snake | degree).
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"sort"

	"fastsc/internal/compile"
	"fastsc/internal/core"
	"fastsc/internal/expt"
	"fastsc/internal/mapping"
)

type runner struct {
	id  string
	run func(ctx *compile.Context) error
}

func main() {
	var (
		workers    = flag.Int("workers", 0, "batch-engine worker pool size (0 = GOMAXPROCS)")
		cacheSize  = flag.Int("cache-size", 0, "solver cache capacity in entries (0 = default)")
		cacheStats = flag.Bool("cache-stats", false, "print cache hit/miss counters after the run")
		cacheFile  = flag.String("cache-file", "", "cache snapshot path: loaded before the run (cold start if missing/stale) and saved after it, so repeated sweeps skip recurring solver work; a .gz suffix writes it compressed")
		warmSet    = flag.String("warm-set", "", "read-only shared warm-set snapshot: probed after a local cache miss, never written")
		router     = flag.String("router", "", "routing algorithm for every job: greedy (default) | lookahead")
		placement  = flag.String("placement", "", "override every benchmark's initial placement: identity | snake | degree (default: per-benchmark)")
	)
	flag.Parse()

	if _, err := mapping.NewRouter(mapping.RouterConfig{Algorithm: *router}); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	if *placement != "" && !slices.Contains(mapping.PlacementNames(), *placement) {
		fmt.Fprintf(os.Stderr, "experiments: unknown placement %q (want one of %v)\n",
			*placement, mapping.PlacementNames())
		os.Exit(2)
	}
	expt.Routing = expt.RoutingOptions{
		Router:    mapping.RouterConfig{Algorithm: *router},
		Placement: core.Placement(*placement),
	}

	// One shared context for the whole run: every experiment's jobs reuse
	// the same SMT solutions, crosstalk graphs and slice colorings.
	ctx := &compile.Context{Cache: compile.NewCache(*cacheSize), Workers: *workers}
	if *cacheFile != "" {
		res, err := ctx.Cache.LoadSnapshot(*cacheFile)
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "experiments: cache snapshot: %v (starting cold)\n", err)
		case res.Degraded != "":
			fmt.Fprintf(os.Stderr, "experiments: cache snapshot %s degraded (%s): starting cold\n", *cacheFile, res.Degraded)
		case res.Restored > 0:
			fmt.Fprintf(os.Stderr, "experiments: warmed solver cache with %d entries from %s\n", res.Restored, *cacheFile)
		}
	}
	if *warmSet != "" {
		ws := compile.OpenWarmSet(*warmSet)
		if res, err := ws.Result(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: warm set: %v (ignored)\n", err)
		} else if res.Degraded != "" {
			fmt.Fprintf(os.Stderr, "experiments: warm set %s degraded (%s): ignored\n", *warmSet, res.Degraded)
		} else {
			fmt.Fprintf(os.Stderr, "experiments: warm set: %d entries from %s (read-only tier)\n", ws.Len(), *warmSet)
		}
		ctx.Cache.AttachWarmSet(ws)
	}

	runners := []runner{
		{"table1", func(*compile.Context) error { show(expt.TableStrategies()); return nil }},
		{"table2", func(*compile.Context) error { show(expt.TableBenchmarks()); return nil }},
		{"fig2", func(*compile.Context) error { show(expt.Fig2InteractionStrength()); return nil }},
		{"fig4", func(*compile.Context) error { show(expt.Fig4TransmonSpectrum()); return nil }},
		{"fig6", func(*compile.Context) error {
			t, err := expt.Fig6Toy()
			if err != nil {
				return err
			}
			show(t)
			return nil
		}},
		{"fig7", func(*compile.Context) error { show(expt.Fig7MeshColoring()); return nil }},
		{"fig9", func(ctx *compile.Context) error {
			r, err := expt.Fig9SuccessRates(ctx)
			if err != nil {
				return err
			}
			show(r.Table)
			return nil
		}},
		{"fig10", func(ctx *compile.Context) error {
			r, err := expt.Fig10DepthDecoherence(ctx)
			if err != nil {
				return err
			}
			show(r.DepthTable)
			show(r.DecoherenceTable)
			return nil
		}},
		{"fig11", func(ctx *compile.Context) error {
			r, err := expt.Fig11ColorSweep(ctx)
			if err != nil {
				return err
			}
			show(r.Table)
			return nil
		}},
		{"fig12", func(ctx *compile.Context) error {
			r, err := expt.Fig12ResidualCoupling(ctx)
			if err != nil {
				return err
			}
			show(r.Table)
			return nil
		}},
		{"fig13", func(ctx *compile.Context) error {
			r, err := expt.Fig13Connectivity(ctx)
			if err != nil {
				return err
			}
			show(r.Table)
			return nil
		}},
		{"fig14", func(*compile.Context) error {
			t, err := expt.Fig14ExampleFrequencies()
			if err != nil {
				return err
			}
			show(t)
			return nil
		}},
		{"fig15", func(*compile.Context) error { show(expt.Fig15Chevrons()); return nil }},
		{"ext-gmon", func(ctx *compile.Context) error {
			r, err := expt.ExtGmonDynamic(ctx)
			if err != nil {
				return err
			}
			show(r.Table)
			return nil
		}},
		{"ext-routers", func(ctx *compile.Context) error {
			r, err := expt.ExtRouterComparison(ctx)
			if err != nil {
				return err
			}
			show(r.Table)
			return nil
		}},
		{"validation", func(ctx *compile.Context) error {
			r, err := expt.ValidationHeuristic(ctx, 150)
			if err != nil {
				return err
			}
			show(r.Table)
			return nil
		}},
	}

	want := flag.Args()
	if len(want) == 0 || (len(want) == 1 && want[0] == "all") {
		want = nil
		for _, r := range runners {
			want = append(want, r.id)
		}
	}
	byID := map[string]runner{}
	for _, r := range runners {
		byID[r.id] = r
	}
	for _, id := range want {
		r, ok := byID[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
		if err := r.run(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
	}
	if *cacheFile != "" {
		if err := ctx.Cache.Save(*cacheFile); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: cache snapshot: %v\n", err)
		}
	}
	if *cacheStats {
		printCacheStats(ctx)
	}
}

func show(t *expt.Table) {
	fmt.Println(t.String())
}

func printCacheStats(ctx *compile.Context) {
	stats := ctx.Stats()
	regions := make([]string, 0, len(stats))
	for r := range stats {
		regions = append(regions, r)
	}
	sort.Strings(regions)
	fmt.Println("== solver cache ==")
	for _, r := range regions {
		s := stats[r]
		fmt.Printf("%-8s hits %-8d warm %-8d misses %-8d evictions %-6d hit-rate %.1f%%\n",
			r, s.Hits, s.WarmHits, s.Misses, s.Evictions, 100*s.HitRate())
	}
	t := ctx.Cache.TotalStats()
	fmt.Printf("%-8s hits %-8d warm %-8d misses %-8d evictions %-6d hit-rate %.1f%%\n",
		"total", t.Hits, t.WarmHits, t.Misses, t.Evictions, 100*t.HitRate())
}
