package compile

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"fastsc/internal/circuit"
	"fastsc/internal/faultpoint"
	"fastsc/internal/mapping"
	"fastsc/internal/smt"
)

// SnapshotVersion is the on-disk snapshot format version. A snapshot
// written at an older version is migrated forward on load, one registered
// step at a time (see migrate.go); a version with no registered migration
// path — or a future version — degrades to a cold start. Stale keys are
// never read back verbatim: every migration step re-keys and re-validates
// the entries it carries forward.
//
// History: v3 switched the cached value shapes to the flat-core
// representation (parking assignments and color→frequency maps became
// dense slices, colorings became []int32), so v2 snapshots no longer
// decode. v4 accompanies the dense phys.System / analyzed-circuit IR
// rewrite (KeyVersion 3): slice keys carry the new key version, so v3
// snapshots would never hit anyway and are rejected wholesale. v5
// accompanies component-decomposed slice solving (KeyVersion 5): the
// slice region now holds two value shapes — whole-slice SliceSolution
// and per-component ComponentSolution — persisted in separate snapshot
// sections so each decodes with its concrete type. v6 accompanies the
// tiered warm-cache subsystem (KeyVersion 6): the snapshot gains a
// content-addressed pool of canonically encoded circuits plus route and
// circ sections referencing it, and v5 snapshots are the first to migrate
// forward (slice keys re-keyed v5|→v6|) instead of being dropped.
const SnapshotVersion = 6

// snapshotMagic guards against feeding an arbitrary gob stream (or a
// truncated file) to Load.
const snapshotMagic = "fastsc-cache-snapshot"

// PersistRegions are the cache regions included in snapshots: everything
// process-independent. SMT solves, static palettes, parking assignments
// and slice solutions are pure functions of content-hashed inputs (system
// signatures, exact vertex sets), so an entry written by one process is
// valid in every other. Since v6, routed circuits and analyzed circuits
// persist too: both flatten through the content-addressed pool of
// canonically encoded circuits (route entries store the mapping plus a
// signature reference; circ entries store only the signature and re-derive
// the flat analysis tables on load). RegionXtalk remains excluded:
// crosstalk graphs rebuild in milliseconds from the device alone and
// would dominate the snapshot size.
var PersistRegions = []string{RegionSMT, RegionStatic, RegionParking, RegionSlice, RegionRoute, RegionCircuit}

// maxCanonicalCircuitBytes bounds the canonical blobs admitted into a
// snapshot's circuit pool: a route or circ entry whose circuit encodes
// larger is skipped (size-aware sections — one pathological million-gate
// circuit must not balloon every fleet warm set that includes it).
const maxCanonicalCircuitBytes = 1 << 20

// gzipSuffix marks snapshot paths Save writes gzip-compressed. Load does
// not consult the name: it sniffs the gzip magic bytes, so compressed and
// plain snapshots are interchangeable on the read side.
const gzipSuffix = ".gz"

// RegisterSnapshotType registers a concrete type stored in the
// opaque-valued static region with the snapshot codec, so Save can encode
// it and Load can decode it. Packages that put their own types into the
// cache call this from an init function (schedule does for its static
// palette). It is a thin wrapper over gob.Register.
func RegisterSnapshotType(v any) { gob.Register(v) }

// diskSnapshot is the gob payload of a cache snapshot. The typed regions
// decode in one pass; Static carries individually encoded blobs because
// its values are opaque to this package and one unregistered type must
// cost one entry, not the snapshot. Circuits is the content-addressed
// pool: canonical circuit bytes keyed by the 128-bit content signature,
// referenced by the Route and Circ sections so identical circuits cost
// one blob no matter how many entries share them. The field set is pinned
// by the keyfields analyzer (this struct is an on-disk codec: adding a
// field without considering migration is a format change).
type diskSnapshot struct {
	Magic      string
	Version    int
	KeyVersion int
	SMT        map[string]persistedSMT
	Park       map[string][]float64
	Slice      map[string]SliceSolution
	// SliceComp carries the slice region's per-component entries
	// (ComponentSolution values under SliceComponentKey keys); the region
	// holds two value shapes, and gob needs each in a concretely typed
	// section.
	SliceComp map[string]ComponentSolution
	Static    []diskEntry
	// Circuits is the content-addressed canonical-circuit pool
	// (signature → circuit.EncodeCanonical bytes), populated since v6.
	Circuits map[string][]byte
	// Route carries the route region: flattened mapping.Results whose
	// routed circuit lives in the pool.
	Route map[string]persistedRoute
	// Circ lists the content signatures of the circ region's analyzed
	// circuits, sorted (the analysis itself is re-derived on load). Sorted
	// emission keeps snapshot bytes deterministic for identical contents —
	// the same discipline as the Static section.
	Circ []string
}

// diskEntry is one opaque static-region entry; Blob is the value
// gob-encoded on its own.
type diskEntry struct {
	Key  string
	Blob []byte
}

// persistedRoute is the gob form of one route-region mapping.Result: the
// routed circuit is replaced by its content signature into the snapshot's
// canonical pool, and the final mapping and SWAP provenance are flattened
// to plain slices. The field set is pinned by the keyfields analyzer
// alongside mapping.Result and mapping.Mapping, whose fields it must
// mirror.
type persistedRoute struct {
	RoutedSig string
	LogToPhys []int
	PhysToLog []int
	Inserted  []bool
	SwapCount int
}

// persistedSMT is the gob form of an smtResult: the error is flattened to
// its message plus an infeasibility flag so errors.Is(err,
// smt.ErrInfeasible) still holds after a round trip.
type persistedSMT struct {
	Xs         []float64
	Delta      float64
	ErrMsg     string
	Infeasible bool
}

// persistedErr restores a flattened error with its ErrInfeasible identity.
type persistedErr struct {
	msg  string
	base error
}

func (e *persistedErr) Error() string { return e.msg }
func (e *persistedErr) Unwrap() error { return e.base }

func toPersistedSMT(r smtResult) persistedSMT {
	p := persistedSMT{Xs: r.xs, Delta: r.delta}
	if r.err != nil {
		p.ErrMsg = r.err.Error()
		p.Infeasible = errors.Is(r.err, smt.ErrInfeasible)
	}
	return p
}

func fromPersistedSMT(p persistedSMT) smtResult {
	r := smtResult{xs: p.Xs, delta: p.Delta}
	if p.ErrMsg != "" {
		if p.Infeasible {
			r.err = &persistedErr{msg: p.ErrMsg, base: smt.ErrInfeasible}
		} else {
			r.err = errors.New(p.ErrMsg)
		}
	}
	return r
}

// poolCircuit admits one circuit into the content-addressed pool, keyed by
// sig (which must be the circuit's content signature). It reports whether
// the circuit is in the pool after the call — false only when the
// canonical encoding exceeds the size bound, in which case the caller must
// drop the referencing entry.
func poolCircuit(pool map[string][]byte, sig string, c *circuit.Circuit) bool {
	if _, ok := pool[sig]; ok {
		return true
	}
	blob := c.EncodeCanonical()
	if len(blob) > maxCanonicalCircuitBytes {
		return false
	}
	pool[sig] = blob
	return true
}

// Save writes a versioned snapshot of the process-independent cache
// regions (PersistRegions) to path, atomically (temp file + rename). A
// path ending in ".gz" is written gzip-compressed (gob streams of
// repetitive float tables compress several-fold); Load auto-detects the
// compression regardless of name. Static-region entries whose values
// cannot be gob-encoded — an unregistered provider type — are skipped
// silently, as are route/circ entries whose circuit exceeds the canonical
// size bound: a snapshot is a best-effort warm start, never a source of
// truth. Save on a nil cache is a no-op.
func (c *Cache) Save(path string) error {
	if c == nil {
		return nil
	}
	snap := diskSnapshot{
		Magic:      snapshotMagic,
		Version:    SnapshotVersion,
		KeyVersion: KeyVersion,
		SMT:        make(map[string]persistedSMT),
		Park:       make(map[string][]float64),
		Slice:      make(map[string]SliceSolution),
		SliceComp:  make(map[string]ComponentSolution),
		Circuits:   make(map[string][]byte),
		Route:      make(map[string]persistedRoute),
	}
	for k, v := range c.regionEntries(RegionSMT) {
		snap.SMT[k] = toPersistedSMT(v.(smtResult))
	}
	for k, v := range c.regionEntries(RegionParking) {
		snap.Park[k] = v.([]float64)
	}
	for k, v := range c.regionEntries(RegionSlice) {
		switch sol := v.(type) {
		case SliceSolution:
			snap.Slice[k] = sol
		case ComponentSolution:
			snap.SliceComp[k] = sol
		}
	}
	for k, v := range c.regionEntries(RegionRoute) {
		r, ok := v.(*mapping.Result)
		if !ok || r == nil || r.Routed == nil || r.Final == nil {
			continue
		}
		sig := r.Routed.Signature()
		if !poolCircuit(snap.Circuits, sig, r.Routed) {
			continue
		}
		snap.Route[k] = persistedRoute{
			RoutedSig: sig,
			LogToPhys: r.Final.LogToPhys,
			PhysToLog: r.Final.PhysToLog,
			Inserted:  r.Inserted,
			SwapCount: r.SwapCount,
		}
	}
	for _, v := range c.regionEntries(RegionCircuit) {
		a, ok := v.(*circuit.Analysis)
		if !ok || a.Source() == nil {
			continue
		}
		if poolCircuit(snap.Circuits, a.Sig, a.Source()) {
			snap.Circ = append(snap.Circ, a.Sig)
		}
	}
	// Sort the circ signatures: the section is a slice built from a map
	// range, and emitting it unsorted would make the snapshot bytes differ
	// from run to run for identical cache contents (the fig13
	// nondeterminism class, caught by the maporder analyzer).
	sort.Strings(snap.Circ)
	// Emit static entries in sorted key order, for the same reason.
	static := c.regionEntries(RegionStatic)
	staticKeys := make([]string, 0, len(static))
	for k := range static {
		staticKeys = append(staticKeys, k)
	}
	sort.Strings(staticKeys)
	for _, k := range staticKeys {
		v := static[k]
		var blob bytes.Buffer
		if err := gob.NewEncoder(&blob).Encode(&v); err != nil {
			continue
		}
		snap.Static = append(snap.Static, diskEntry{Key: k, Blob: blob.Bytes()})
	}
	var buf bytes.Buffer
	var enc *gob.Encoder
	var gz *gzip.Writer
	if strings.HasSuffix(path, gzipSuffix) {
		gz = gzip.NewWriter(&buf)
		enc = gob.NewEncoder(gz)
	} else {
		enc = gob.NewEncoder(&buf)
	}
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("compile: encode cache snapshot: %w", err)
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return fmt.Errorf("compile: encode cache snapshot: %w", err)
		}
	}
	if err := faultpoint.Err(faultpoint.SnapshotSaveErr); err != nil {
		return fmt.Errorf("compile: write cache snapshot: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, faultpoint.Corrupt(faultpoint.SnapshotSaveCorrupt, buf.Bytes()), 0o644); err != nil {
		return fmt.Errorf("compile: write cache snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("compile: write cache snapshot: %w", err)
	}
	return nil
}

// Degradation reasons reported in LoadResult.Degraded (and exported by
// fastscd as fastscd_snapshot_degraded_total{reason=...}). Empty means the
// load was clean (including the missing-file cold-by-choice case).
const (
	// DegradedCorrupt: the file exists but is not a decodable snapshot
	// (truncated, bit-flipped, or not gob at all).
	DegradedCorrupt = "corrupt"
	// DegradedBadMagic: a well-formed gob stream that is not a cache
	// snapshot.
	DegradedBadMagic = "bad-magic"
	// DegradedFutureVersion: written by a newer binary; this one cannot
	// know how to read it.
	DegradedFutureVersion = "future-version"
	// DegradedNoMigration: an old version with no registered migration
	// path to the current format.
	DegradedNoMigration = "no-migration-path"
	// DegradedKeySkew: the snapshot (after any migrations) still carries a
	// key generation this binary does not use — its keys could never hit.
	DegradedKeySkew = "key-version-skew"
)

// LoadResult describes one snapshot load: how many entries were restored,
// how many passed through a re-key migration, which on-disk version the
// file carried, and — when the cache stayed cold — whether that was by
// choice (Missing: no file) or by degradation (Degraded: a reason
// constant). Operators use the distinction to tell "first boot" from
// "corrupt snapshot silently discarded".
type LoadResult struct {
	Restored    int
	Migrated    int
	FromVersion int
	Missing     bool
	Degraded    string
}

// decodeSnapshot sniffs, decompresses, decodes and migrates one snapshot
// payload. On success the returned snapshot is at the current
// SnapshotVersion/KeyVersion; on degradation it is nil and the result
// carries the reason.
func decodeSnapshot(data []byte) (*diskSnapshot, LoadResult) {
	var res LoadResult
	var src io.Reader = bytes.NewReader(data)
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b { // gzip magic
		gz, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			res.Degraded = DegradedCorrupt
			return nil, res
		}
		defer gz.Close()
		src = gz
	}
	var snap diskSnapshot
	if err := gob.NewDecoder(src).Decode(&snap); err != nil {
		res.Degraded = DegradedCorrupt
		return nil, res
	}
	if snap.Magic != snapshotMagic {
		res.Degraded = DegradedBadMagic
		return nil, res
	}
	res.FromVersion = snap.Version
	if snap.Version > SnapshotVersion {
		res.Degraded = DegradedFutureVersion
		return nil, res
	}
	for snap.Version < SnapshotVersion {
		step, ok := snapshotMigrations[snap.Version]
		if !ok {
			res.Degraded = DegradedNoMigration
			return nil, res
		}
		res.Migrated += step(&snap)
	}
	if snap.KeyVersion != KeyVersion {
		res.Degraded = DegradedKeySkew
		return nil, res
	}
	return &snap, res
}

// decodeCircuitPool materializes and re-validates the content-addressed
// pool: every blob must decode and re-sign to exactly the signature it is
// stored under, so a corrupted or tampered blob can never surface as a
// plausible wrong circuit. Invalid blobs are dropped (with their
// referencing entries), never fatal.
func (snap *diskSnapshot) decodeCircuitPool() map[string]*circuit.Circuit {
	pool := make(map[string]*circuit.Circuit, len(snap.Circuits))
	for sig, blob := range snap.Circuits {
		c, err := circuit.DecodeCanonical(blob)
		if err != nil || c.Signature() != sig {
			continue
		}
		pool[sig] = c
	}
	return pool
}

// restore walks every entry of a decoded snapshot, materializing values
// (static blobs decoded, route results rebuilt from the pool, circ
// analyses re-derived) and handing them to put. It returns the number of
// entries restored; undecodable or inconsistent entries are skipped.
func (snap *diskSnapshot) restore(put func(region, key string, value any)) int {
	restored := 0
	for k, p := range snap.SMT {
		put(RegionSMT, k, fromPersistedSMT(p))
		restored++
	}
	for k, v := range snap.Park {
		put(RegionParking, k, v)
		restored++
	}
	for k, v := range snap.Slice {
		put(RegionSlice, k, v)
		restored++
	}
	for k, v := range snap.SliceComp {
		put(RegionSlice, k, v)
		restored++
	}
	for _, ent := range snap.Static {
		var v any
		if err := gob.NewDecoder(bytes.NewReader(ent.Blob)).Decode(&v); err != nil {
			continue
		}
		put(RegionStatic, ent.Key, v)
		restored++
	}
	pool := snap.decodeCircuitPool()
	for k, pr := range snap.Route {
		routed, ok := pool[pr.RoutedSig]
		if !ok {
			continue
		}
		r := &mapping.Result{
			Routed:    routed,
			Final:     &mapping.Mapping{LogToPhys: pr.LogToPhys, PhysToLog: pr.PhysToLog},
			Inserted:  pr.Inserted,
			SwapCount: pr.SwapCount,
		}
		if r.Validate() != nil {
			continue
		}
		put(RegionRoute, k, r)
		restored++
	}
	for _, sig := range snap.Circ {
		c, ok := pool[sig]
		if !ok {
			continue
		}
		put(RegionCircuit, CircuitKey(c, sig), circuit.AnalyzeWithSignature(c, sig))
		restored++
	}
	return restored
}

// readSnapshot reads and decodes path. A missing file is a clean cold
// start (Missing set, no error); only genuine I/O failures on an existing
// file return an error.
func readSnapshot(path string) (*diskSnapshot, LoadResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		var res LoadResult
		if os.IsNotExist(err) {
			res.Missing = true
			return nil, res, nil
		}
		return nil, res, fmt.Errorf("compile: read cache snapshot: %w", err)
	}
	snap, res := decodeSnapshot(data)
	return snap, res, nil
}

// LoadSnapshot restores a snapshot written by Save into the cache.
// Compressed snapshots are detected by their gzip magic bytes, not their
// name, so a ".gz" snapshot renamed plain (or vice versa) still loads.
// Snapshots written at an older version are migrated forward — re-keyed
// and re-validated — by the registered per-version steps, so a KeyVersion
// bump degrades to a partial warm start instead of a cold one.
// Degradation is deliberate and never fatal: a missing file, a corrupt or
// truncated snapshot, an unknown version, or an undecodable entry all
// leave the cache cold (or partially warm) with the reason in
// LoadResult.Degraded — a compilation must never fail because its warm
// start did. The returned error is non-nil only for genuine I/O failures
// on an existing file. LoadSnapshot on a nil cache is a no-op.
func (c *Cache) LoadSnapshot(path string) (LoadResult, error) {
	if c == nil {
		return LoadResult{}, nil
	}
	snap, res, err := readSnapshot(path)
	if snap == nil || err != nil {
		return res, err
	}
	res.Restored = snap.restore(func(region, key string, value any) {
		c.Put(region, key, value)
	})
	return res, nil
}

// Load is LoadSnapshot reduced to the restored-entry count, for callers
// that do not report degradation reasons.
func (c *Cache) Load(path string) (int, error) {
	res, err := c.LoadSnapshot(path)
	return res.Restored, err
}
