# Targets mirror .github/workflows/ci.yml so local runs and CI stay in
# lockstep.

GO ?= go

.PHONY: all build test lint bench warm-cache-check

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... | tee bench-results.txt

# Mirrors the CI warm-cache job: a second Fig 9 sweep against the same
# cache snapshot must report a total hit rate above 95%.
warm-cache-check:
	@snap=$$(mktemp -u)/fastsc-cache.snap; mkdir -p $$(dirname $$snap); \
	$(GO) run ./cmd/experiments -cache-file "$$snap" -cache-stats fig9 > /dev/null; \
	$(GO) run ./cmd/experiments -cache-file "$$snap" -cache-stats fig9 | tee warm-run.txt; \
	rate=$$(awk '/^total / {gsub(/%/,"",$$NF); rate=$$NF} END {print rate}' warm-run.txt); \
	echo "warm-run total hit rate: $$rate%"; \
	awk -v r="$$rate" 'BEGIN { if (r == "" || r <= 95) { print "warm hit rate " r "% is not > 95%"; exit 1 } }'
