package compile

import (
	"fastsc/internal/circuit"
	"fastsc/internal/faultpoint"
	"fastsc/internal/graph"
	"fastsc/internal/mapping"
	"fastsc/internal/smt"
	"fastsc/internal/topology"
	"fastsc/internal/xtalk"
)

// smtResult stores a Solve outcome including its error: infeasibility
// verdicts are as expensive to rediscover as solutions (the color-budget
// probe walks k upward until the first failure), so they are cached too.
type smtResult struct {
	xs    []float64
	delta float64
	err   error
}

// SolveSMT is a memoizing smt.Solve: identical (k, cfg) pairs — which recur
// across slices, strategies and jobs on the same device — are solved once,
// including under concurrency (misses go through the cache's single-flight
// layer; the solve outcome embeds its error, so infeasibility verdicts are
// cached and deduplicated like solutions). The returned slice is shared;
// callers must not mutate it. Misses evaluate the solver's bisection
// probes on the Context's spare workers when any are free — SolveWith's
// speculative tree is byte-identical to the serial search, so the cached
// value does not depend on how many workers happened to be idle.
func (c *Context) SolveSMT(k int, cfg smt.Config) ([]float64, float64, error) {
	cache := c.cache()
	if cache == nil {
		c.record(RegionSMT, false)
		return smt.SolveWith(k, cfg, c.parallelFor())
	}
	v, tier, _ := cache.DoTiered(RegionSMT, SMTKey(k, cfg), func() (any, error) {
		faultpoint.Sleep(faultpoint.SolveSlow)
		xs, delta, err := smt.SolveWith(k, cfg, c.parallelFor())
		return smtResult{xs: xs, delta: delta, err: err}, nil
	})
	c.recordTier(RegionSMT, tier)
	r := v.(smtResult)
	return r.xs, r.delta, r.err
}

// Xtalk is a memoizing xtalk.Build: the distance-d crosstalk graph of a
// device is built once — single-flighted under concurrent misses — and
// shared read-only by every job. Building it is quadratic in couplers
// (all-pairs distances), so sharing it across a batch matters on large
// chips.
func (c *Context) Xtalk(dev *topology.Device, distance int) *xtalk.Graph {
	cache := c.cache()
	if cache == nil {
		c.record(RegionXtalk, false)
		return xtalk.Build(dev, distance)
	}
	v, tier, _ := cache.DoTiered(RegionXtalk, XtalkKey(dev, distance), func() (any, error) {
		return xtalk.Build(dev, distance), nil
	})
	c.recordTier(RegionXtalk, tier)
	return v.(*xtalk.Graph)
}

// Analysis is a memoizing circuit.Analyze: the analyzed-circuit IR (CSR
// per-qubit gate streams, flat ASAP layers, criticality, content
// signature) is computed once per circuit content signature and shared
// read-only by every strategy compiling that circuit — in a Fig 9–13
// sweep, the 5–7 strategies of a batch all consume the same analysis
// instead of re-deriving the dependency structure per compile. Without a
// cache the analysis is computed directly (the gate list is still hashed
// once — Analysis.Sig is part of the IR — but no key is built).
func (c *Context) Analysis(circ *circuit.Circuit) *circuit.Analysis {
	cache := c.cache()
	if cache == nil {
		c.record(RegionCircuit, false)
		return circuit.Analyze(circ)
	}
	// The key (CircuitKey) is the 128-bit content signature plus the exact
	// qubit and gate counts — the cheap dimensions are encoded exactly
	// (the same discipline as SliceKey), so a hypothetical digest
	// collision between differently-shaped circuits can never alias. The
	// signature computed here is reused on the miss path, so a miss hashes
	// the gate list once.
	sig := circ.Signature()
	v, tier, _ := cache.DoTiered(RegionCircuit, CircuitKey(circ, sig), func() (any, error) {
		return circuit.AnalyzeWithSignature(circ, sig), nil
	})
	c.recordTier(RegionCircuit, tier)
	return v.(*circuit.Analysis)
}

// Route is the memoizing layout/routing stage: the routed circuit of
// (circuit, device, mapping options) is computed once per process and
// shared read-only by every strategy compiling that circuit — a 5-strategy
// batch routes each (circuit, placement, router) exactly once instead of
// five times. Routing is deterministic, so sharing cannot change output.
// The route region persists across processes (snapshot v6 flattens each
// Result against the content-addressed circuit pool; see persist.go) and
// is size-aware through mapping.Result.ApproxSize. Routers that read the
// dependency analysis (lookahead, degree placement) draw it from the circ
// region, so route and schedule share one Analysis per circuit signature.
func (c *Context) Route(circ *circuit.Circuit, dev *topology.Device, opts mapping.Options) (*mapping.Result, error) {
	opts = opts.WithDefaults()
	cache := c.cache()
	if cache == nil {
		c.record(RegionRoute, false)
		var ana *circuit.Analysis
		if opts.NeedsAnalysis() {
			ana = c.Analysis(circ)
		}
		return mapping.Plan(circ, ana, dev, opts)
	}
	key := RouteKey(circ, DeviceSignature(dev), opts)
	v, tier, err := cache.DoTiered(RegionRoute, key, func() (any, error) {
		var ana *circuit.Analysis
		if opts.NeedsAnalysis() {
			ana = c.Analysis(circ)
		}
		return mapping.Plan(circ, ana, dev, opts)
	})
	c.recordTier(RegionRoute, tier)
	if err != nil {
		return nil, err
	}
	return v.(*mapping.Result), nil
}

// SliceSolution is a cached per-slice solver outcome: the coloring of the
// active interaction subgraph, the vertices deferred by the color budget,
// and the occupancy-ordered color→frequency assignment. All fields are
// shared read-only between jobs.
type SliceSolution struct {
	// Coloring assigns each crosstalk-graph vertex of the active subgraph
	// its color, densely indexed by vertex id (Uncolored outside the
	// colored set).
	Coloring graph.Coloring
	// Deferred lists, in ascending order, the vertices that did not fit
	// the color budget and must be postponed to a later slice.
	Deferred []int
	// NumColors is the number of colors used (0 for an empty subgraph).
	NumColors int
	// Assign holds each color's interaction frequency (GHz), indexed by
	// color.
	Assign []float64
	// Delta is the frequency separation achieved by the solver.
	Delta float64
}

// Slice returns the memoized solution for one active-subgraph key,
// computing it on a miss. Compute must be a pure function of the key.
func (c *Context) Slice(key string, compute func() (SliceSolution, error)) (SliceSolution, error) {
	cache := c.cache()
	if cache == nil {
		c.record(RegionSlice, false)
		return compute()
	}
	v, tier, err := cache.DoTiered(RegionSlice, key, func() (any, error) {
		return compute()
	})
	c.recordTier(RegionSlice, tier)
	if err != nil {
		return SliceSolution{}, err
	}
	return v.(SliceSolution), nil
}

// ComponentSolution is the cached coloring of one connected component of a
// slice's active interaction subgraph, solved in isolation (keyed by
// SliceComponentKey, stored in the slice region). It deliberately carries
// no frequency assignment: frequencies depend on the whole slice's color
// count, so the scheduler merges component colorings first and runs one
// SMT solve on the merged result. All fields are shared read-only.
type ComponentSolution struct {
	// Coloring assigns each crosstalk-graph vertex of the component its
	// color, densely indexed by vertex id up to the component's maximum
	// vertex (Uncolored elsewhere). Colors are contiguous from 0.
	Coloring graph.Coloring
	// Deferred lists, in ascending order, the component vertices that did
	// not fit the color budget.
	Deferred []int
	// NumColors is the number of colors used (0 for an empty component).
	NumColors int
	// Counts holds each color's occupancy within the component, indexed by
	// color; the merged slice's occupancy is the per-color sum over its
	// components.
	Counts []int
}

// SliceComponent returns the memoized solution for one connected component
// of a slice's active subgraph, computing it on a miss. Compute must be a
// pure function of the key. Component entries share the slice region —
// and therefore its persistence — with whole-slice solutions; the key
// shapes are disjoint (see SliceComponentKey).
func (c *Context) SliceComponent(key string, compute func() (ComponentSolution, error)) (ComponentSolution, error) {
	cache := c.cache()
	if cache == nil {
		c.record(RegionSlice, false)
		return compute()
	}
	v, tier, err := cache.DoTiered(RegionSlice, key, func() (any, error) {
		return compute()
	})
	c.recordTier(RegionSlice, tier)
	if err != nil {
		return ComponentSolution{}, err
	}
	return v.(ComponentSolution), nil
}

// Parking returns the memoized parking-frequency assignment for a system
// (keyed by its signature), computing it on a miss. The returned slice is
// indexed by qubit id and shared read-only.
func (c *Context) Parking(sysSig string, compute func() ([]float64, error)) ([]float64, error) {
	cache := c.cache()
	if cache == nil {
		c.record(RegionParking, false)
		return compute()
	}
	v, tier, err := cache.DoTiered(RegionParking, sysSig, func() (any, error) {
		return compute()
	})
	c.recordTier(RegionParking, tier)
	if err != nil {
		return nil, err
	}
	return v.([]float64), nil
}

// Static returns the memoized program-independent palette (the Baseline
// S/G calibration table) for a key, computing it on a miss. The cached
// value is opaque to this package; schedule stores its own table type and
// treats it as immutable.
func (c *Context) Static(key string, compute func() (any, error)) (any, error) {
	cache := c.cache()
	if cache == nil {
		c.record(RegionStatic, false)
		return compute()
	}
	v, tier, err := cache.DoTiered(RegionStatic, key, func() (any, error) {
		return compute()
	})
	c.recordTier(RegionStatic, tier)
	return v, err
}
