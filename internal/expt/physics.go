package expt

import (
	"fmt"

	"fastsc/internal/graph"
	"fastsc/internal/phys"
	"fastsc/internal/topology"
	"fastsc/internal/xtalk"
)

// Fig2InteractionStrength reproduces Fig 2: the effective interaction
// strength between two coupled transmons as qubit A's frequency is swept
// across qubit B's. The analytic dressed-coupling curve is cross-checked
// against the exact single-excitation diagonalization of the two-transmon
// Hamiltonian.
func Fig2InteractionStrength() *Table {
	const (
		wB = 5.44
		g0 = phys.DefaultG0
	)
	t := &Table{
		ID:      "fig2",
		Title:   fmt.Sprintf("Interaction strength vs ωA (ωB = %.2f GHz, g0 = %.4f GHz)", wB, g0),
		Columns: []string{"ωA (GHz)", "g_eff analytic", "g_eff exact (2-transmon)", "residual g0²/δω"},
	}
	for wA := 5.38; wA <= 5.5001; wA += 0.005 {
		tt := phys.TwoTransmon{
			A: phys.Transmon{OmegaMax: wA, EC: phys.DefaultEC, Asymmetry: phys.DefaultAsymmetry, T1: 1, T2: 1},
			B: phys.Transmon{OmegaMax: wB, EC: phys.DefaultEC, Asymmetry: phys.DefaultAsymmetry, T1: 1, T2: 1},
			G: g0,
		}
		delta := wA - wB
		analytic := phys.DressedCoupling(g0, delta)
		// MinimumGap returns √(δ²+4g²)/2; convert to the dressed coupling
		// (2·gap − |δ|)/2 so it matches DressedCoupling's definition.
		exact := (2*tt.MinimumGap() - absF(delta)) / 2
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", wA),
			fmt.Sprintf("%.6f", analytic),
			fmt.Sprintf("%.6f", exact),
			fmt.Sprintf("%.6f", phys.ResidualCoupling(g0, delta)),
		})
	}
	t.Notes = append(t.Notes,
		"strength peaks at g0 on resonance and decays as g0²/δω — the frequency-separation principle behind the compiler")
	return t
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Fig4TransmonSpectrum reproduces Fig 4: ω01 and ω12 of an asymmetric
// transmon versus external flux, with the flux-noise sensitivity that
// defines the two sweet spots.
func Fig4TransmonSpectrum() *Table {
	tr := phys.Transmon{
		OmegaMax:  phys.DefaultOmegaMax,
		EC:        phys.DefaultEC,
		Asymmetry: phys.DefaultAsymmetry,
		T1:        phys.DefaultT1,
		T2:        phys.DefaultT2,
	}
	t := &Table{
		ID:      "fig4",
		Title:   "Asymmetric transmon spectrum vs external flux",
		Columns: []string{"flux (Φ0)", "ω01 (GHz)", "ω12 (GHz)", "|dω/dφ| (GHz/Φ0)"},
	}
	for i := -20; i <= 20; i++ {
		phi := float64(i) / 20
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", phi),
			fmt.Sprintf("%.4f", tr.Freq01(phi)),
			fmt.Sprintf("%.4f", tr.Freq12(phi)),
			fmt.Sprintf("%.3f", tr.FluxSensitivity(phi)),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("sweet spots at φ=0 (%.3f GHz) and φ=±0.5 (%.3f GHz); sensitivity vanishes at both",
			tr.OmegaMax, tr.OmegaMin()))
	return t
}

// Fig7MeshColoring reproduces Fig 7: the 5×5 mesh connectivity graph is
// 2-colorable (idle frequencies), and its crosstalk graph is colored with
// 8 colors (interaction frequencies; 8 is the minimum, §IV-C2).
func Fig7MeshColoring() *Table {
	dev := topology.Grid(5, 5)
	conn, ok := graph.TwoColor(dev.Coupling)
	x := xtalk.Build(dev, 1)
	xc := graph.WelshPowell(x.G)
	t := &Table{
		ID:      "fig7",
		Title:   "Coloring the 5x5 mesh: idle (connectivity) and interaction (crosstalk) palettes",
		Columns: []string{"graph", "vertices", "edges", "colors", "proper"},
	}
	t.Rows = append(t.Rows, []string{
		"connectivity G_c", fmt.Sprintf("%d", dev.Coupling.NumNodes()),
		fmt.Sprintf("%d", dev.Coupling.NumEdges()),
		fmt.Sprintf("%d", conn.NumColors()), fmt.Sprintf("%v", ok && conn.Valid(dev.Coupling)),
	})
	t.Rows = append(t.Rows, []string{
		"crosstalk G_x(d=1)", fmt.Sprintf("%d", x.G.NumNodes()),
		fmt.Sprintf("%d", x.G.NumEdges()),
		fmt.Sprintf("%d", xc.NumColors()), fmt.Sprintf("%v", xc.Valid(x.G)),
	})
	x2 := xtalk.Build(dev, 2)
	xc2 := graph.WelshPowell(x2.G)
	t.Rows = append(t.Rows, []string{
		"crosstalk G_x(d=2)", fmt.Sprintf("%d", x2.G.NumNodes()),
		fmt.Sprintf("%d", x2.G.NumEdges()),
		fmt.Sprintf("%d", xc2.NumColors()), fmt.Sprintf("%v", xc2.Valid(x2.G)),
	})
	t.Notes = append(t.Notes,
		"paper: the mesh is 2-colorable; the d=1 crosstalk graph needs exactly 8 colors (greedy may use slightly more)",
		"program-specific compilation colors only the active subgraph, needing far fewer colors (Fig 11)")
	return t
}

// Fig15Chevrons reproduces Fig 15: the probability of the |01⟩→|10⟩ (left,
// iSWAP channel) and |11⟩→|20⟩ (right, CZ channel) transitions as functions
// of qubit A's frequency (via flux) and hold time, computed by exact
// evolution of the coupled two-transmon Hamiltonian.
func Fig15Chevrons() *Table {
	const (
		wB = 6.0
		g0 = phys.DefaultG0
	)
	mk := func(w float64) phys.Transmon {
		return phys.Transmon{OmegaMax: w, EC: phys.DefaultEC, Asymmetry: phys.DefaultAsymmetry, T1: 1, T2: 1}
	}
	t := &Table{
		ID:      "fig15",
		Title:   "State-transition chevrons for two coupled transmons (exact evolution)",
		Columns: []string{"ωA (GHz)", "t (ns)", "P(01→10)", "P(11→20)"},
	}
	iswapTime := phys.ISwapTime(g0)
	for _, dw := range []float64{-0.03, -0.015, 0, 0.015, 0.03} {
		for _, frac := range []float64{0.25, 0.5, 1.0, 1.5} {
			dur := frac * iswapTime
			// iSWAP channel: resonance at ωA = ωB.
			swap := phys.TwoTransmon{A: mk(wB + dw), B: mk(wB), G: g0}
			// CZ channel: resonance at ωB = ωA + αA, i.e. ωA = ωB + EC.
			cz := phys.TwoTransmon{A: mk(wB + phys.DefaultEC + dw), B: mk(wB), G: g0}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%+.3f vs res.", dw),
				fmt.Sprintf("%.1f", dur),
				fmt.Sprintf("%.4f", swap.SwapTransfer(dur)),
				fmt.Sprintf("%.4f", cz.LeakTransfer(dur)),
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("complete iSWAP at t = 1/(4g) = %.1f ns on resonance; complete CZ cycle at t = 1/(2√2g) = %.1f ns",
			iswapTime, phys.CZTime(g0)),
		"off-resonance columns show the chevron's V-shaped amplitude decay")
	return t
}
