package bench_test

import (
	"path/filepath"
	"testing"

	"fastsc/internal/compile"
	"fastsc/internal/core"
	"fastsc/internal/expt"
)

// fig9Jobs builds the full Fig 9 sweep (every Table II benchmark × every
// Table I strategy) as one batch.
func fig9Jobs() []core.BatchJob {
	var jobs []core.BatchJob
	for _, bm := range expt.Suite() {
		sys := expt.GridSystem(bm.Qubits)
		circ := bm.Circuit(sys.Device)
		for _, s := range core.Strategies() {
			jobs = append(jobs, core.BatchJob{
				Key:      bm.Name + "/" + s,
				Circuit:  circ,
				System:   sys,
				Strategy: s,
				Config:   core.Config{Placement: bm.Placement},
			})
		}
	}
	return jobs
}

// BenchmarkBatchCompile compares three ways of running the Fig 9 sweep:
//
//   - serial: one core.Compile call after another, no cache — the
//     pre-engine behavior of internal/expt.
//   - cached-1worker: the engine pinned to one worker, isolating the
//     memoization win from the parallelism win.
//   - parallel: the engine at full parallelism with a shared cache — the
//     production configuration.
func BenchmarkBatchCompile(b *testing.B) {
	jobs := fig9Jobs()

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, j := range jobs {
				if _, err := core.Compile(j.Circuit, j.System, j.Strategy, j.Config); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("cached-1worker", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := compile.NewContext(1)
			if _, err := core.BatchCollect(ctx, jobs); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("parallel", func(b *testing.B) {
		var hitRate float64
		for i := 0; i < b.N; i++ {
			ctx := compile.NewContext(0)
			if _, err := core.BatchCollect(ctx, jobs); err != nil {
				b.Fatal(err)
			}
			hitRate = ctx.Cache.TotalStats().HitRate()
		}
		b.ReportMetric(100*hitRate, "cache-hit-%")
	})
}

// BenchmarkWarmStartBatchCompile compares a cold Fig 9 sweep against one
// warmed from a cache snapshot on disk (the cmd/experiments -cache-file
// path): each warm iteration starts from a fresh cache, restores the
// snapshot, and runs the full sweep. The warm run should report a higher
// hit rate and lower wall time than the cold run.
func BenchmarkWarmStartBatchCompile(b *testing.B) {
	jobs := fig9Jobs()
	path := filepath.Join(b.TempDir(), "cache.snap")
	seed := compile.NewContext(0)
	if _, err := core.BatchCollect(seed, jobs); err != nil {
		b.Fatal(err)
	}
	if err := seed.Cache.Save(path); err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, warm bool) {
		var hitRate float64
		for i := 0; i < b.N; i++ {
			ctx := compile.NewContext(0)
			if warm {
				if n, err := ctx.Cache.Load(path); err != nil || n == 0 {
					b.Fatalf("snapshot load: n=%d err=%v", n, err)
				}
			}
			if _, err := core.BatchCollect(ctx, jobs); err != nil {
				b.Fatal(err)
			}
			hitRate = ctx.Cache.TotalStats().HitRate()
		}
		b.ReportMetric(100*hitRate, "cache-hit-%")
	}
	b.Run("cold", func(b *testing.B) { run(b, false) })
	b.Run("warm", func(b *testing.B) { run(b, true) })
}

// BenchmarkCompileAllCtx measures the five-strategy comparison on one
// workload through the engine (the cmd/fastsc -compare path).
func BenchmarkCompileAllCtx(b *testing.B) {
	bm := expt.Suite()[len(expt.Suite())-1] // xeb(25,15), the heaviest
	sys := expt.GridSystem(bm.Qubits)
	circ := bm.Circuit(sys.Device)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := compile.NewContext(0)
		if _, err := core.CompileAllCtx(ctx, circ, sys, core.Config{Placement: bm.Placement}); err != nil {
			b.Fatal(err)
		}
	}
}
