// Fixture for the //fastsc:ignore machinery: a well-formed suppression
// silences its finding (and is counted — suppress_test.go asserts the
// audit trail), while a reasonless directive, an unknown analyzer name and
// an unused directive are themselves findings.
package suppress

func suppressed(m map[string]int) []string {
	var keys []string
	//fastsc:ignore maporder -- fixture: key order is irrelevant to the caller
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func reasonless(m map[string]int) []string {
	var keys []string
	//fastsc:ignore maporder want `fastscvet: suppression without a reason`
	for k := range m { // want `maporder: iteration over map "m" feeds an append to "keys"`
		keys = append(keys, k)
	}
	return keys
}

func unknownAnalyzer(m map[string]int) []string {
	var keys []string
	//fastsc:ignore nosuch -- not a real analyzer; want `fastscvet: suppression names unknown analyzer "nosuch"`
	for k := range m { // want `maporder: iteration over map "m" feeds an append to "keys"`
		keys = append(keys, k)
	}
	return keys
}

func unused() int {
	//fastsc:ignore maporder -- nothing to silence here; want `fastscvet: unused suppression for "maporder"`
	return 0
}
