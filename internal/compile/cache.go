package compile

import (
	"container/list"
	"sync"
)

// DefaultCacheCapacity is the entry capacity used when NewCache is given a
// non-positive capacity. Slice solutions and SMT solves are small (a few
// hundred bytes), so thousands of entries cost single-digit megabytes;
// crosstalk graphs and static palettes are larger but number one per
// (device, distance).
const DefaultCacheCapacity = 8192

// Stats are the hit/miss/eviction counters of one cache region.
type Stats struct {
	Hits, Misses, Evictions uint64
}

// HitRate returns hits / (hits + misses), or 0 when the region is unused.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// add accumulates counters (used to aggregate regions).
func (s Stats) add(o Stats) Stats {
	return Stats{
		Hits:      s.Hits + o.Hits,
		Misses:    s.Misses + o.Misses,
		Evictions: s.Evictions + o.Evictions,
	}
}

// Cache is a concurrency-safe LRU cache shared across compilation jobs.
// Entries are namespaced by region (e.g. "smt", "slice", "xtalk") so that
// hit/miss accounting can be reported per pipeline stage. Values stored in
// the cache are shared between goroutines and MUST be treated as immutable
// by every consumer.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	stats map[string]*Stats
}

type cacheEntry struct {
	key    string // namespaced: region + "\x00" + key
	region string
	value  any
}

// NewCache returns an LRU cache holding at most capacity entries.
// capacity <= 0 selects DefaultCacheCapacity.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		stats: make(map[string]*Stats),
	}
}

func namespaced(region, key string) string { return region + "\x00" + key }

func (c *Cache) regionStats(region string) *Stats {
	s, ok := c.stats[region]
	if !ok {
		s = &Stats{}
		c.stats[region] = s
	}
	return s
}

// Get looks up key in region, promoting it to most-recently-used on a hit.
// Nil caches always miss without accounting.
func (c *Cache) Get(region, key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.regionStats(region)
	el, ok := c.items[namespaced(region, key)]
	if !ok {
		s.Misses++
		return nil, false
	}
	s.Hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).value, true
}

// Put stores value under (region, key), evicting the least-recently-used
// entry when the cache is full. Storing an existing key refreshes its value
// and recency. Put on a nil cache is a no-op.
func (c *Cache) Put(region, key string, value any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	nk := namespaced(region, key)
	if el, ok := c.items[nk]; ok {
		el.Value.(*cacheEntry).value = value
		c.ll.MoveToFront(el)
		return
	}
	c.items[nk] = c.ll.PushFront(&cacheEntry{key: nk, region: region, value: value})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		ent := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, ent.key)
		c.regionStats(ent.region).Evictions++
	}
}

// Do returns the cached value for (region, key), computing and storing it on
// a miss. Errors are not cached by Do — use a value type that embeds the
// error (as the SMT memo does) when negative caching is wanted. Concurrent
// misses on the same key may compute redundantly; both results are
// identical by construction (only deterministic pure functions are
// memoized), so the last Put simply wins.
func (c *Cache) Do(region, key string, compute func() (any, error)) (any, error) {
	if v, ok := c.Get(region, key); ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		return nil, err
	}
	c.Put(region, key, v)
	return v, nil
}

// Len returns the current number of entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// StatsByRegion returns a copy of the per-region counters.
func (c *Cache) StatsByRegion() map[string]Stats {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]Stats, len(c.stats))
	for r, s := range c.stats {
		out[r] = *s
	}
	return out
}

// TotalStats aggregates the counters across all regions.
func (c *Cache) TotalStats() Stats {
	var total Stats
	for _, s := range c.StatsByRegion() {
		total = total.add(s)
	}
	return total
}
