// Command fastscload drives a fastscd daemon with concurrent batch
// submissions and reports throughput and latency percentiles. It is the
// load half of the chaos harness (scripts/chaos-smoke.sh): it speaks the
// public API only — submit, honor 429 Retry-After with jittered
// exponential backoff, poll to a terminal status — so whatever it observes
// a real client would observe too.
//
// Modes:
//
//	fastscload -addr http://localhost:8077 -clients 16 -batches 200
//	    drive the daemon; print throughput, p50/p99, per-status counts.
//	    With -ids-out, write every acked batch id (one per line) for a
//	    later -check pass.
//
//	fastscload -addr ... -check ids.txt
//	    verify every id recorded by a previous run is still pollable and
//	    terminal — across a daemon restart this asserts no acked batch was
//	    lost — and that the file holds no duplicate ids. Exit 1 on any
//	    violation.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// submitBody is the subset of the CompileRequest wire shape the load
// generator emits; the daemon owns the authoritative definition.
type submitBody struct {
	Device struct {
		Topology string `json:"topology"`
		Qubits   int    `json:"qubits"`
	} `json:"device"`
	Jobs       []jobBody `json:"jobs"`
	DeadlineMS int64     `json:"deadline_ms,omitempty"`
	Priority   *int      `json:"priority,omitempty"`
}

type jobBody struct {
	ID       string `json:"id"`
	Strategy string `json:"strategy,omitempty"`
	QASM     string `json:"qasm"`
}

type submitAck struct {
	Batch string `json:"batch"`
	URL   string `json:"url"`
}

type pollStatus struct {
	Batch  string `json:"batch"`
	Status string `json:"status"`
	Jobs   int    `json:"jobs"`
	Failed int    `json:"failed"`
}

// outcome is one driven batch's lifecycle as the client saw it.
type outcome struct {
	id      string
	status  string
	latency time.Duration
	retries int
}

func main() {
	var (
		addr       = flag.String("addr", "http://localhost:8077", "daemon base URL")
		clients    = flag.Int("clients", 8, "concurrent client goroutines")
		batches    = flag.Int("batches", 64, "total batches to submit")
		jobs       = flag.Int("jobs", 2, "jobs per batch")
		qubits     = flag.Int("qubits", 6, "qubits per circuit")
		deadlineMS = flag.Int64("deadline-ms", 0, "per-batch deadline_ms (0 = none)")
		priority   = flag.Int("priority", -1, "priority 0..9 (-1 = omit, server default)")
		unique     = flag.Bool("unique", false, "make every batch's circuits unique (defeats the cache, maximizes solver load)")
		timeout    = flag.Duration("timeout", 5*time.Minute, "overall run deadline")
		idsOut     = flag.String("ids-out", "", "append acked batch ids to this file")
		checkFile  = flag.String("check", "", "check mode: verify every id in this file is pollable and terminal")
	)
	flag.Parse()

	client := &http.Client{Timeout: 30 * time.Second}
	if *checkFile != "" {
		os.Exit(runCheck(client, *addr, *checkFile))
	}
	os.Exit(runLoad(client, *addr, loadConfig{
		clients: *clients, batches: *batches, jobs: *jobs, qubits: *qubits,
		deadlineMS: *deadlineMS, priority: *priority, unique: *unique,
		timeout: *timeout, idsOut: *idsOut,
	}))
}

type loadConfig struct {
	clients, batches, jobs, qubits int
	deadlineMS                     int64
	priority                       int
	unique                         bool
	timeout                        time.Duration
	idsOut                         string
}

func runLoad(client *http.Client, addr string, cfg loadConfig) int {
	var (
		mu       sync.Mutex
		outcomes []outcome
		rejected int
	)
	deadline := time.Now().Add(cfg.timeout)
	work := make(chan int)
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			for n := range work {
				o, rej := driveBatch(client, addr, cfg, n, rng, deadline)
				mu.Lock()
				rejected += rej
				if o.id != "" {
					outcomes = append(outcomes, o)
				}
				mu.Unlock()
			}
		}(c)
	}
	start := time.Now()
	for n := 0; n < cfg.batches; n++ {
		work <- n
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	byStatus := map[string]int{}
	var latencies []time.Duration
	for _, o := range outcomes {
		byStatus[o.status]++
		latencies = append(latencies, o.latency)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	statuses := make([]string, 0, len(byStatus))
	for s := range byStatus {
		statuses = append(statuses, s)
	}
	sort.Strings(statuses)

	fmt.Printf("fastscload: %d batches acked in %.2fs (%.1f/s), %d transient rejections retried\n",
		len(outcomes), elapsed.Seconds(), float64(len(outcomes))/elapsed.Seconds(), rejected)
	for _, s := range statuses {
		fmt.Printf("  status %-12s %d\n", s, byStatus[s])
	}
	if len(latencies) > 0 {
		fmt.Printf("  latency p50 %s  p99 %s  max %s\n",
			percentile(latencies, 0.50), percentile(latencies, 0.99), latencies[len(latencies)-1])
	}

	if cfg.idsOut != "" {
		f, err := os.OpenFile(cfg.idsOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fastscload:", err)
			return 1
		}
		for _, o := range outcomes {
			fmt.Fprintln(f, o.id)
		}
		f.Close()
	}
	if len(outcomes) < cfg.batches {
		fmt.Fprintf(os.Stderr, "fastscload: only %d of %d batches were acked before the run deadline\n",
			len(outcomes), cfg.batches)
		return 1
	}
	return 0
}

// driveBatch submits one batch with backoff and polls it to a terminal
// status. It returns the outcome (zero id if never acked) and how many
// transient rejections (429/503) it retried through.
func driveBatch(client *http.Client, addr string, cfg loadConfig, n int, rng *rand.Rand, deadline time.Time) (outcome, int) {
	body := buildBody(cfg, n)
	raw, _ := json.Marshal(body)

	var ack submitAck
	retries := 0
	backoff := 100 * time.Millisecond
	start := time.Now()
	for {
		if time.Now().After(deadline) {
			return outcome{}, retries
		}
		resp, err := client.Post(addr+"/v1/batches", "application/json", bytes.NewReader(raw))
		if err != nil {
			time.Sleep(backoff)
			continue
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			if err := json.Unmarshal(data, &ack); err != nil {
				fmt.Fprintf(os.Stderr, "fastscload: bad ack %q: %v\n", data, err)
				return outcome{}, retries
			}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			// Honor the server's Retry-After estimate, jittered so a
			// thundering herd of rejected clients does not re-arrive in
			// lockstep; fall back to exponential backoff without one.
			retries++
			wait := backoff
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				wait = time.Duration(ra) * time.Second
			}
			wait = wait/2 + time.Duration(rng.Int63n(int64(wait)))
			if max := time.Until(deadline); wait > max {
				wait = max
			}
			time.Sleep(wait)
			if backoff < 5*time.Second {
				backoff *= 2
			}
			continue
		default:
			fmt.Fprintf(os.Stderr, "fastscload: submit: %d %s\n", resp.StatusCode, data)
			return outcome{}, retries
		}
		break
	}

	for {
		if time.Now().After(deadline) {
			return outcome{id: ack.Batch, status: "poll-timeout", latency: time.Since(start), retries: retries}, retries
		}
		resp, err := client.Get(addr + ack.URL)
		if err != nil {
			time.Sleep(200 * time.Millisecond)
			continue
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st pollStatus
		if resp.StatusCode != http.StatusOK || json.Unmarshal(data, &st) != nil {
			time.Sleep(200 * time.Millisecond)
			continue
		}
		if st.Status != "queued" && st.Status != "running" {
			return outcome{id: ack.Batch, status: st.Status, latency: time.Since(start), retries: retries}, retries
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// buildBody assembles batch n's request: a hardware-efficient-style chain
// circuit. With unique set, a per-batch rotation angle makes every circuit
// (and so every solver key) distinct, defeating the cache.
func buildBody(cfg loadConfig, n int) submitBody {
	var b submitBody
	b.Device.Topology = "linear"
	b.Device.Qubits = cfg.qubits
	b.DeadlineMS = cfg.deadlineMS
	if cfg.priority >= 0 {
		p := cfg.priority
		b.Priority = &p
	}
	theta := "pi/2"
	if cfg.unique {
		theta = fmt.Sprintf("%d*pi/%d", (n%97)+1, 199)
	}
	var q strings.Builder
	fmt.Fprintf(&q, "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[%d];\n", cfg.qubits)
	for i := 0; i < cfg.qubits; i++ {
		fmt.Fprintf(&q, "h q[%d];\n", i)
	}
	for i := 0; i+1 < cfg.qubits; i++ {
		fmt.Fprintf(&q, "cz q[%d],q[%d];\n", i, i+1)
	}
	fmt.Fprintf(&q, "rz(%s) q[0];\n", theta)
	for j := 0; j < cfg.jobs; j++ {
		b.Jobs = append(b.Jobs, jobBody{ID: fmt.Sprintf("b%d-j%d", n, j), QASM: q.String()})
	}
	return b
}

// runCheck verifies every batch id in file is still pollable with a
// terminal status and that the file holds no duplicates.
func runCheck(client *http.Client, addr, file string) int {
	f, err := os.Open(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fastscload:", err)
		return 1
	}
	defer f.Close()
	seen := map[string]bool{}
	var lost, dup, live, checked int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		id := strings.TrimSpace(sc.Text())
		if id == "" {
			continue
		}
		checked++
		if seen[id] {
			fmt.Fprintf(os.Stderr, "fastscload: duplicate batch id %s\n", id)
			dup++
			continue
		}
		seen[id] = true
		resp, err := client.Get(addr + "/v1/batches/" + id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fastscload: poll %s: %v\n", id, err)
			lost++
			continue
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			fmt.Fprintf(os.Stderr, "fastscload: batch %s LOST (404 after ack)\n", id)
			lost++
			continue
		}
		var st pollStatus
		if resp.StatusCode != http.StatusOK || json.Unmarshal(data, &st) != nil {
			fmt.Fprintf(os.Stderr, "fastscload: poll %s: %d %s\n", id, resp.StatusCode, data)
			lost++
			continue
		}
		if st.Status == "queued" || st.Status == "running" {
			fmt.Fprintf(os.Stderr, "fastscload: batch %s still %s\n", id, st.Status)
			live++
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "fastscload:", err)
		return 1
	}
	fmt.Printf("fastscload: checked %d ids: %d lost, %d duplicated, %d non-terminal\n", checked, lost, dup, live)
	if lost > 0 || dup > 0 {
		return 1
	}
	return 0
}

// percentile returns the p-quantile of sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i].Round(time.Millisecond)
}
