package mapping

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastsc/internal/circuit"
	"fastsc/internal/topology"
)

func TestIdentityMapping(t *testing.T) {
	m := Identity(4, 9)
	for l := 0; l < 4; l++ {
		if m.LogToPhys[l] != l || m.PhysToLog[l] != l {
			t.Fatalf("identity broken at %d", l)
		}
	}
	for p := 4; p < 9; p++ {
		if m.PhysToLog[p] != -1 {
			t.Fatalf("unoccupied physical qubit %d mapped to %d", p, m.PhysToLog[p])
		}
	}
}

func TestIdentityPanicsWhenTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Identity(5, 4)
}

func TestFromOrderValidates(t *testing.T) {
	m := FromOrder(2, []int{3, 1}, 4)
	if m.LogToPhys[0] != 3 || m.PhysToLog[1] != 1 {
		t.Fatal("FromOrder placement wrong")
	}
	mustPanic(t, func() { FromOrder(2, []int{0, 0}, 4) })
	mustPanic(t, func() { FromOrder(2, []int{0, 9}, 4) })
	mustPanic(t, func() { FromOrder(3, []int{0, 1}, 4) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestSwapPhys(t *testing.T) {
	m := Identity(2, 3)
	m.SwapPhys(1, 2) // logical 1 moves to physical 2
	if m.LogToPhys[1] != 2 || m.PhysToLog[2] != 1 || m.PhysToLog[1] != -1 {
		t.Fatalf("SwapPhys wrong: %+v", m)
	}
	m.SwapPhys(0, 2) // logical 0 <-> logical 1
	if m.LogToPhys[0] != 2 || m.LogToPhys[1] != 0 {
		t.Fatalf("SwapPhys occupied-occupied wrong: %+v", m)
	}
}

func TestSnakeOrderGrid(t *testing.T) {
	dev := topology.Grid(3, 3)
	order := SnakeOrder(dev)
	want := []int{0, 1, 2, 5, 4, 3, 6, 7, 8}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("snake order = %v, want %v", order, want)
		}
	}
	// Consecutive snake qubits must be coupled on a grid.
	for i := 0; i+1 < len(order); i++ {
		if !dev.Coupling.HasEdge(order[i], order[i+1]) {
			t.Fatalf("snake order breaks adjacency at %d-%d", order[i], order[i+1])
		}
	}
}

func TestRouteAdjacentGatesUnchanged(t *testing.T) {
	dev := topology.Grid(2, 2)
	c := circuit.New(4)
	c.H(0).CNOT(0, 1).CZ(2, 3)
	res, err := Route(c, dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 0 {
		t.Fatalf("adjacent gates should need no swaps, got %d", res.SwapCount)
	}
	if res.Routed.NumGates() != 3 {
		t.Fatalf("gate count changed: %d", res.Routed.NumGates())
	}
}

func TestRouteInsertsSwaps(t *testing.T) {
	dev := topology.Grid(3, 3)
	c := circuit.New(9)
	c.CNOT(0, 8) // opposite corners: distance 4, needs 3 swaps
	res, err := Route(c, dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 3 {
		t.Fatalf("corner-to-corner CNOT on 3x3 should insert 3 swaps, got %d", res.SwapCount)
	}
	// Every two-qubit gate must act on a coupler.
	for _, g := range res.Routed.Gates {
		if g.Arity() == 2 && !dev.Coupling.HasEdge(g.Qubits[0], g.Qubits[1]) {
			t.Fatalf("gate %v not on a coupler", g)
		}
	}
}

func TestRouteChainWithSnakePlacement(t *testing.T) {
	// A nearest-neighbor chain circuit placed along the snake needs no
	// routing at all.
	dev := topology.Grid(3, 3)
	c := circuit.New(9)
	for i := 0; i+1 < 9; i++ {
		c.CZ(i, i+1)
	}
	res, err := Route(c, dev, FromOrder(9, SnakeOrder(dev), 9))
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 0 {
		t.Fatalf("snake-placed chain should need 0 swaps, got %d", res.SwapCount)
	}
}

func TestRouteTooManyQubits(t *testing.T) {
	dev := topology.Grid(2, 2)
	c := circuit.New(5)
	c.H(0)
	if _, err := Route(c, dev, nil); err == nil {
		t.Fatal("expected error for oversized circuit")
	}
}

// reconstruct replays a routed circuit and recovers the logical gate list.
func reconstruct(t *testing.T, res *Result, nLogical, nPhysical int, initial *Mapping) []circuit.Gate {
	t.Helper()
	m := initial
	if m == nil {
		m = Identity(nLogical, nPhysical)
	} else {
		m = m.Clone()
	}
	var logical []circuit.Gate
	for i, g := range res.Routed.Gates {
		if res.Inserted[i] {
			m.SwapPhys(g.Qubits[0], g.Qubits[1])
			continue
		}
		qs := make([]int, len(g.Qubits))
		for j, p := range g.Qubits {
			qs[j] = m.PhysToLog[p]
		}
		logical = append(logical, circuit.Gate{Kind: g.Kind, Qubits: qs, Theta: g.Theta})
	}
	return logical
}

func TestRouteReconstruction(t *testing.T) {
	dev := topology.Grid(3, 3)
	c := circuit.New(9)
	c.H(0).CNOT(0, 8).CZ(4, 7).SWAP(1, 6).RZ(3, 0.5)
	res, err := Route(c, dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	logical := reconstruct(t, res, 9, 9, nil)
	if len(logical) != c.NumGates() {
		t.Fatalf("reconstructed %d gates, want %d", len(logical), c.NumGates())
	}
	for i, g := range logical {
		orig := c.Gates[i]
		if g.Kind != orig.Kind || g.Theta != orig.Theta {
			t.Fatalf("gate %d: %v != %v", i, g, orig)
		}
		for j := range g.Qubits {
			if g.Qubits[j] != orig.Qubits[j] {
				t.Fatalf("gate %d operands: %v != %v", i, g, orig)
			}
		}
	}
}

// Property: routing arbitrary circuits on arbitrary grids always yields
// coupler-respecting circuits that reconstruct to the original.
func TestRoutePropertyRandom(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 2+rng.Intn(3), 2+rng.Intn(3)
		dev := topology.Grid(rows, cols)
		n := dev.Qubits
		c := circuit.New(n)
		for i := 0; i < 1+rng.Intn(15); i++ {
			if rng.Float64() < 0.5 {
				c.H(rng.Intn(n))
			} else {
				a, b := rng.Intn(n), rng.Intn(n)
				for b == a {
					b = rng.Intn(n)
				}
				c.CNOT(a, b)
			}
		}
		res, err := Route(c, dev, nil)
		if err != nil {
			return false
		}
		for _, g := range res.Routed.Gates {
			if g.Arity() == 2 && !dev.Coupling.HasEdge(g.Qubits[0], g.Qubits[1]) {
				return false
			}
		}
		logical := reconstruct(t, res, n, n, nil)
		if len(logical) != c.NumGates() {
			return false
		}
		for i, g := range logical {
			orig := c.Gates[i]
			if g.Kind != orig.Kind {
				return false
			}
			for j := range g.Qubits {
				if g.Qubits[j] != orig.Qubits[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
