package compile

import "sync"

// Recorder accumulates request-scoped cache counters. The process-wide
// Cache keeps global hit/miss statistics; a Recorder attached to a Context
// (Context.Record, see Scoped) additionally attributes each memoized lookup
// made *through that Context* to the request that issued it, so a server
// handling many tenants on one shared cache can report per-request hit
// rates and compute counts.
//
// Counting semantics: a lookup is recorded as a miss only when this
// caller's compute function actually ran. A caller that blocks on another
// request's in-flight computation of the same key (the cache's
// single-flight layer) records a hit — it did not pay for the compute. The
// sum of recorded misses across every Recorder in a process therefore
// equals the number of computations actually performed, which is what the
// single-flight concurrency test asserts on.
//
// A nil *Recorder is valid and records nothing. Recorder is safe for
// concurrent use by the worker goroutines of one batch.
type Recorder struct {
	mu      sync.Mutex
	regions map[string]Stats
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{regions: make(map[string]Stats)}
}

// record counts one lookup against region.
func (r *Recorder) record(region string, hit bool) {
	if hit {
		r.recordTier(region, TierLocal)
	} else {
		r.recordTier(region, TierMiss)
	}
}

// recordTier counts one tiered lookup against region: local hits, warm-set
// hits and misses are attributed separately (Stats.HitRate folds warm hits
// into the rate, since they spared the compute).
func (r *Recorder) recordTier(region string, tier Tier) {
	if r == nil {
		return
	}
	r.mu.Lock()
	s := r.regions[region]
	switch tier {
	case TierLocal:
		s.Hits++
	case TierWarm:
		s.WarmHits++
	default:
		s.Misses++
	}
	r.regions[region] = s
	r.mu.Unlock()
}

// StatsByRegion returns a copy of the per-region counters recorded so far.
func (r *Recorder) StatsByRegion() map[string]Stats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]Stats, len(r.regions))
	for k, v := range r.regions {
		out[k] = v
	}
	return out
}

// Total aggregates the counters across all regions.
func (r *Recorder) Total() Stats {
	var total Stats
	for _, s := range r.StatsByRegion() {
		total = total.add(s)
	}
	return total
}

// record is the Context-level hook the memoizing methods call; nil-safe on
// both the Context and its Recorder.
func (c *Context) record(region string, hit bool) {
	if c == nil || c.Record == nil {
		return
	}
	c.Record.record(region, hit)
}

// recordTier is record with warm-set attribution, used by the memo methods
// that go through Cache.DoTiered.
func (c *Context) recordTier(region string, tier Tier) {
	if c == nil || c.Record == nil {
		return
	}
	c.Record.recordTier(region, tier)
}

// Scoped returns a child Context for one request: it shares c's cache (and
// therefore its single-flight deduplication with every other request) but
// carries its own worker budget and a fresh Recorder, so the request's
// cache traffic is accounted separately from the process totals. workers
// <= 0 selects GOMAXPROCS. Scoped on a nil Context returns a cacheless
// scoped Context.
func (c *Context) Scoped(workers int) *Context {
	scoped := &Context{Workers: workers, Record: NewRecorder()}
	if c != nil {
		scoped.Cache = c.Cache
	}
	return scoped
}
