package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlowAnalyzer enforces context threading: a function that receives a
// context.Context must pass it along. Two bug shapes are flagged inside
// such functions:
//
//   - calling context.Background() or context.TODO(), which severs the
//     cancellation chain (the one sanctioned exception: a nil-guard
//     `if ctx == nil { ctx = context.Background() }`, which engine-style
//     entry points use to make nil contexts valid);
//   - calling X(...) when a sibling XCtx(...) exists that accepts a
//     context.Context — the RunBatch/RunBatchCtx and
//     BatchCompile/BatchCompileCtx family — which silently detaches the
//     callee's work from the caller's cancellation.
//
// Note the repo also abbreviates *compile.Context as "ctx"; this analyzer
// keys on the types, not the names, so only the standard context is
// tracked and a sibling whose extra parameter is *compile.Context does
// not count as a Ctx variant.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc: "functions taking a context.Context must thread it: no " +
		"context.Background/TODO, no calling X where XCtx exists",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	forEachFuncDecl(pass.Files, func(fn *ast.FuncDecl) {
		def, _ := pass.Info.Defs[fn.Name].(*types.Func)
		if def == nil {
			return
		}
		ctxParam := contextParam(def.Signature())
		if ctxParam == nil {
			return
		}
		checkCtxBody(pass, fn, ctxParam)
	})
}

// contextParam returns sig's first context.Context parameter, or nil.
func contextParam(sig *types.Signature) *types.Var {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContext(params.At(i).Type()) {
			return params.At(i)
		}
	}
	return nil
}

func checkCtxBody(pass *Pass, fn *ast.FuncDecl, ctxParam *types.Var) {
	inspectStack([]*ast.File{wrapBody(fn)}, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		callee := calleeObject(pass.Info, call)
		if callee == nil {
			return
		}
		if callee.Pkg() != nil && callee.Pkg().Path() == "context" &&
			(callee.Name() == "Background" || callee.Name() == "TODO") {
			if !underNilGuard(pass, stack, ctxParam) {
				pass.Reportf(call.Pos(),
					"%s already receives ctx; pass it (or derive from it) instead of context.%s",
					fn.Name.Name, callee.Name())
			}
			return
		}
		if sib := ctxSibling(callee); sib != "" {
			pass.Reportf(call.Pos(),
				"%s holds ctx but calls %s, which detaches from cancellation; call %s and pass ctx",
				fn.Name.Name, callee.Name(), sib)
		}
	})
}

// underNilGuard reports whether the node whose ancestor stack is given
// sits inside an `if ctx == nil` (or `nil == ctx`) branch testing the
// function's own context parameter.
func underNilGuard(pass *Pass, stack []ast.Node, ctxParam *types.Var) bool {
	for _, anc := range stack {
		ifs, ok := anc.(*ast.IfStmt)
		if !ok {
			continue
		}
		bin, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok || bin.Op.String() != "==" {
			continue
		}
		for _, pair := range [2][2]ast.Expr{{bin.X, bin.Y}, {bin.Y, bin.X}} {
			id, ok := ast.Unparen(pair[0]).(*ast.Ident)
			if !ok || pass.ObjectOf(id) != ctxParam {
				continue
			}
			if tv, ok := pass.Info.Types[pair[1]]; ok && tv.IsNil() {
				return true
			}
		}
	}
	return false
}

// ctxSibling returns the qualified name of callee's Ctx variant — a
// function or method named callee.Name()+"Ctx" in the same scope (package
// scope for functions, the receiver's method set for methods) that takes
// a context.Context — when callee itself does not. Empty when none.
func ctxSibling(callee *types.Func) string {
	sig := callee.Signature()
	if contextParam(sig) != nil {
		return ""
	}
	want := callee.Name() + "Ctx"
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		obj, _, _ := types.LookupFieldOrMethod(t, true, callee.Pkg(), want)
		if m, ok := obj.(*types.Func); ok && contextParam(m.Signature()) != nil {
			return typeName(t) + "." + want
		}
		return ""
	}
	if callee.Pkg() == nil {
		return ""
	}
	if m, ok := callee.Pkg().Scope().Lookup(want).(*types.Func); ok && contextParam(m.Signature()) != nil {
		return callee.Pkg().Name() + "." + want
	}
	return ""
}

func typeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
