// Package core is the public entry point of the FastSC-Go library: it takes
// a logical circuit and a characterized device, routes the circuit onto the
// device topology, compiles it with one of the five frequency-tuning
// strategies of Table I, and evaluates the paper's worst-case success-rate
// heuristic (eq. 4) on the resulting schedule.
//
// Typical use:
//
//	dev := topology.Grid(4, 4)
//	sys := phys.NewSystem(dev, phys.DefaultParams(), seed)
//	res, err := core.Compile(circ, sys, core.ColorDynamic, core.Config{})
//	fmt.Println(res.Report.Success)
package core

import (
	"fmt"
	"time"

	"fastsc/internal/circuit"
	"fastsc/internal/compile"
	"fastsc/internal/mapping"
	"fastsc/internal/noise"
	"fastsc/internal/phys"
	"fastsc/internal/schedule"
)

// Strategy names accepted by Compile.
const (
	BaselineN    = "Baseline N"
	BaselineG    = "Baseline G"
	BaselineU    = "Baseline U"
	BaselineS    = "Baseline S"
	ColorDynamic = "ColorDynamic"
)

// Strategies lists all strategy names in Table I order.
func Strategies() []string {
	return []string{BaselineN, BaselineG, BaselineU, BaselineS, ColorDynamic}
}

// Placement names the initial logical-to-physical embedding strategy; the
// names are mapping's placement identifiers and the zero value means
// PlaceIdentity.
type Placement string

const (
	// PlaceIdentity maps logical qubit i to physical qubit i.
	PlaceIdentity Placement = mapping.PlaceIdentity
	// PlaceSnake lays logical qubits along the device's boustrophedon
	// order, the natural embedding for chain-structured circuits (ISING,
	// QGAN).
	PlaceSnake Placement = mapping.PlaceSnake
	// PlaceDegree seats high-interaction logical qubits on high-degree
	// physical qubits (greedy degree matching over the circuit's
	// interaction counts).
	PlaceDegree Placement = mapping.PlaceDegree
)

// Config tunes a compilation run. The zero value uses the paper's defaults.
type Config struct {
	// Schedule holds the scheduler options (crosstalk distance, color
	// budget, decomposition strategy, gmon residual coupling).
	Schedule schedule.Options
	// Noise holds the evaluator options; the zero value means
	// noise.DefaultOptions.
	Noise *noise.Options
	// Placement selects the initial embedding (default PlaceIdentity).
	Placement Placement
	// Router selects and tunes the routing algorithm; the zero value is
	// the greedy shortest-path SWAP inserter (mapping.RouterGreedy).
	Router mapping.RouterConfig
}

// routing assembles the mapping options of a run.
func (c Config) routing() mapping.Options {
	return mapping.Options{Placement: string(c.Placement), Router: c.Router}
}

// Result bundles everything a compilation produces.
type Result struct {
	// Schedule is the timed, frequency-annotated program.
	Schedule *schedule.Schedule
	// Report is the worst-case success estimate and its error breakdown.
	Report *noise.Report
	// SwapCount is the number of routing SWAPs inserted.
	SwapCount int
	// CompileTime is the wall-clock compilation latency (routing through
	// scheduling; evaluation excluded), the Fig 13 metric.
	CompileTime time.Duration
}

// Compile routes, schedules and evaluates circ on sys under the named
// strategy, without cross-job memoization. It is shorthand for
// CompileCtx(nil, ...); batch callers should share a compile.Context.
func Compile(circ *circuit.Circuit, sys *phys.System, strategy string, cfg Config) (*Result, error) {
	return CompileCtx(nil, circ, sys, strategy, cfg)
}

// CompileCtx routes, schedules and evaluates circ on sys under the named
// strategy, memoizing the solver stages through ctx (nil disables caching).
func CompileCtx(ctx *compile.Context, circ *circuit.Circuit, sys *phys.System, strategy string, cfg Config) (*Result, error) {
	comp := schedule.ByName(strategy)
	if comp == nil {
		return nil, fmt.Errorf("core: unknown strategy %q (want one of %v)", strategy, Strategies())
	}

	start := time.Now()
	// Layout + routing run through the compile cache's route region: the
	// 5–7 strategies of a batch share one routed circuit per (circuit,
	// placement, router) instead of re-routing per strategy.
	routed, err := ctx.Route(circ, sys.Device, cfg.routing())
	if err != nil {
		return nil, err
	}
	sched, err := comp.Compile(ctx, routed.Routed, sys, cfg.Schedule)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	nopt := noise.DefaultOptions()
	if cfg.Noise != nil {
		nopt = *cfg.Noise
	}
	rep := noise.Evaluate(sched, nopt)
	return &Result{
		Schedule:    sched,
		Report:      rep,
		SwapCount:   routed.SwapCount,
		CompileTime: elapsed,
	}, nil
}

// CompileAll runs every strategy on the same circuit and system through the
// batch engine, returning results keyed by strategy name.
func CompileAll(circ *circuit.Circuit, sys *phys.System, cfg Config) (map[string]*Result, error) {
	return CompileAllCtx(nil, circ, sys, cfg)
}

// CompileAllCtx is CompileAll with a shared compilation context: the five
// strategies run concurrently under ctx's parallelism budget and share its
// cache (parking assignments, SMT solves and the static palette are
// computed once for all of them).
func CompileAllCtx(ctx *compile.Context, circ *circuit.Circuit, sys *phys.System, cfg Config) (map[string]*Result, error) {
	jobs := make([]BatchJob, 0, len(Strategies()))
	for _, s := range Strategies() {
		jobs = append(jobs, BatchJob{
			Key: s, Circuit: circ, System: sys, Strategy: s, Config: cfg,
		})
	}
	return BatchCollect(ctx, jobs)
}
