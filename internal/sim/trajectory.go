package sim

import (
	"math"
	"math/rand"

	"fastsc/internal/circuit"
	"fastsc/internal/graph"
	"fastsc/internal/phys"
	"fastsc/internal/schedule"
)

// TrajectoryOptions tunes the Monte-Carlo noisy simulation.
type TrajectoryOptions struct {
	// Shots is the number of stochastic trajectories to average.
	Shots int
	// Seed makes runs reproducible.
	Seed int64
	// Gate1Error and Gate2Error inject a random Pauli after each gate with
	// this probability (intrinsic control error).
	Gate1Error, Gate2Error float64
	// SidebandWeight mirrors noise.Options.SidebandWeight for the coherent
	// crosstalk kicks.
	SidebandWeight float64
	// DisableCrosstalk turns off coherent exchange kicks (for isolating
	// decoherence in tests).
	DisableCrosstalk bool
	// DisableDecoherence turns off T1/T2 trajectories.
	DisableDecoherence bool
}

// DefaultTrajectoryOptions matches noise.DefaultOptions where the two
// models share parameters.
func DefaultTrajectoryOptions(seed int64) TrajectoryOptions {
	return TrajectoryOptions{
		Shots:          200,
		Seed:           seed,
		Gate1Error:     0.0005,
		Gate2Error:     0.002,
		SidebandWeight: 0.15,
	}
}

// TrajectoryResult aggregates the Monte-Carlo estimate.
type TrajectoryResult struct {
	// MeanFidelity is the average |⟨ψ_ideal|ψ_noisy⟩|² over shots.
	MeanFidelity float64
	// StdErr is the standard error of the mean.
	StdErr float64
	Shots  int
}

// RunNoisy executes a compiled schedule with Monte-Carlo noise and returns
// the mean fidelity against the ideal (noiseless) execution of the same
// compiled circuit. This is the §VI-C validation reference for the eq. 4
// heuristic.
func RunNoisy(s *schedule.Schedule, opt TrajectoryOptions) *TrajectoryResult {
	n := s.Compiled.NumQubits
	ideal := RunIdeal(s.Compiled)
	rng := rand.New(rand.NewSource(opt.Seed))
	if opt.Shots <= 0 {
		opt.Shots = 100
	}

	sum, sumSq := 0.0, 0.0
	for shot := 0; shot < opt.Shots; shot++ {
		st := NewState(n)
		for si := range s.Slices {
			runSlice(st, s, &s.Slices[si], opt, rng)
		}
		f := ideal.Fidelity(st)
		sum += f
		sumSq += f * f
	}
	mean := sum / float64(opt.Shots)
	variance := sumSq/float64(opt.Shots) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return &TrajectoryResult{
		MeanFidelity: mean,
		StdErr:       math.Sqrt(variance / float64(opt.Shots)),
		Shots:        opt.Shots,
	}
}

func runSlice(st *State, s *schedule.Schedule, sl *schedule.Slice, opt TrajectoryOptions, rng *rand.Rand) {
	// 1. Intended gates.
	for _, ev := range sl.Gates {
		st.ApplyGate(ev.Gate)
		p := opt.Gate1Error
		if ev.Gate.Kind.IsTwoQubit() {
			p = opt.Gate2Error
		}
		if p > 0 && rng.Float64() < p {
			q := ev.Gate.Qubits[rng.Intn(len(ev.Gate.Qubits))]
			applyRandomPauli(st, q, rng)
		}
	}
	// 2. Coherent crosstalk kicks on parasitic coupler channels.
	if !opt.DisableCrosstalk {
		applyCrosstalkKicks(st, s, sl, opt)
	}
	// 3. Decoherence trajectories.
	if !opt.DisableDecoherence {
		applyDecoherence(st, s, sl, rng)
	}
}

// applyCrosstalkKicks applies a partial exchange on every parasitic coupler
// channel: couplers not executing a gate whose endpoints sit δω apart swap
// population with probability TransitionProbability(g, δω, τ); we realize
// that as a coherent XY(θ) rotation with sin²θ matching the probability —
// the worst-case coherent error the heuristic counts.
func applyCrosstalkKicks(st *State, s *schedule.Schedule, sl *schedule.Slice, opt TrajectoryOptions) {
	active := make(map[graph.Edge]bool, len(sl.ActiveCouplers))
	for _, e := range sl.ActiveCouplers {
		active[e] = true
	}
	for id, e := range s.System.Device.Edges() {
		if active[e] {
			continue
		}
		g0 := s.System.G0ByID(int32(id))
		if s.Gmon {
			g0 *= s.Residual
		}
		if g0 == 0 {
			continue
		}
		fu, fv := sl.Freqs[e.U], sl.Freqs[e.V]
		ec := s.System.Transmon(e.U).EC
		tau := sl.Duration
		p := phys.TransitionProbability(g0, fu-fv, tau)
		p += opt.SidebandWeight * (phys.TransitionProbability(math.Sqrt2*g0, (fu-ec)-fv, tau) +
			phys.TransitionProbability(math.Sqrt2*g0, fu-(fv-ec), tau))
		if p <= 0 {
			continue
		}
		if p > 1 {
			p = 1
		}
		theta := math.Asin(math.Sqrt(p))
		st.Apply2Q(xyRotation(theta), e.U, e.V)
	}
}

// xyRotation returns the partial-iSWAP unitary exp(−iθ(XX+YY)/2) acting on
// the {|01⟩, |10⟩} block, with transfer probability sin²θ.
func xyRotation(theta float64) circuit.Mat4 {
	c := complex(math.Cos(theta), 0)
	s := complex(0, -math.Sin(theta))
	return circuit.Mat4{
		{1, 0, 0, 0},
		{0, c, s, 0},
		{0, s, c, 0},
		{0, 0, 0, 1},
	}
}

// applyDecoherence applies one amplitude-damping and one dephasing
// trajectory step per qubit for the slice duration.
func applyDecoherence(st *State, s *schedule.Schedule, sl *schedule.Slice, rng *rand.Rand) {
	for q := 0; q < st.N; q++ {
		tr := s.System.Transmon(q)
		tau := sl.Duration
		// Amplitude damping (T1): jump/no-jump unraveling.
		p1 := 1 - math.Exp(-tau/tr.T1)
		if p1 > 0 {
			pJump := p1 * st.ExcitedPopulation(q)
			if rng.Float64() < pJump {
				// Jump: |1⟩ → |0⟩ collapse.
				st.Apply1Q(circuit.Mat2{{0, 1}, {0, 0}}, q)
			} else {
				// No-jump back-action.
				st.Apply1Q(circuit.Mat2{{1, 0}, {0, complex(math.Sqrt(1-p1), 0)}}, q)
			}
			st.Renormalize()
		}
		// Pure dephasing (the T2 component beyond T1): phase-flip channel.
		if tr.T2 > 0 {
			rPhi := 1/tr.T2 - 1/(2*tr.T1)
			if rPhi > 0 {
				pPhi := (1 - math.Exp(-tau*rPhi)) / 2
				if rng.Float64() < pPhi {
					st.Apply1Q(circuit.Matrix1(circuit.Z, 0), q)
				}
			}
		}
	}
}

func applyRandomPauli(st *State, q int, rng *rand.Rand) {
	switch rng.Intn(3) {
	case 0:
		st.Apply1Q(circuit.Matrix1(circuit.X, 0), q)
	case 1:
		st.Apply1Q(circuit.Matrix1(circuit.Y, 0), q)
	default:
		st.Apply1Q(circuit.Matrix1(circuit.Z, 0), q)
	}
}
