// Package server implements fastscd's compilation service: an HTTP+JSON
// front end over the batch engine, sharing one process-wide
// compile.Context so every request warms the same sharded single-flight
// cache.
//
// # Endpoints
//
// The API (reference: docs/api.md) is mounted by Handler:
//
//	POST /v1/compile        compile a batch, streaming NDJSON results
//	POST /v1/batches        submit a batch asynchronously (202 + poll URL)
//	GET  /v1/batches/{id}   poll an async batch
//	GET  /v1/meta           accepted strategies/topologies/placements/routers
//	GET  /metrics           Prometheus text metrics (cache region counters)
//	GET  /healthz           200 "ok", or 503 "draining"
//
// # Admission control
//
// Instead of the CLI's single global worker pool, the server bounds work
// in two dimensions. Config.MaxConcurrent batches may compile at once;
// up to Config.MaxQueue more wait in FIFO order for a slot, and anything
// beyond that is rejected immediately with 429 — backpressure is visible
// to clients instead of silently queueing without bound. Each admitted
// batch then runs on its own worker budget (Config.Workers, optionally
// lowered per request), so one wide batch cannot monopolize the process.
// Requests are fully parsed and validated *before* admission: a malformed
// request never consumes a slot.
//
// # Request-scoped cache stats
//
// Every batch runs on a Context derived with compile.Context.Scoped: the
// cache is shared, but hit/miss accounting lands in a per-request
// compile.Recorder that is reported in the stream's terminal "done" line.
// A miss is counted only when this request's compute function actually
// ran — a lookup that joined another request's in-flight computation is a
// hit — so summing misses across concurrent identical requests measures
// real work, which the single-flight tests rely on.
//
// # Drain contract
//
// Drain flips the server into draining mode: new submissions (streaming
// or async) get 503 and healthz reports draining, while every batch
// already admitted — including batches still waiting for a compile
// slot — runs to completion, and read-only endpoints stay available so
// clients can collect results. Shutdown drains and then waits for the
// in-flight batches (bounded by its context). On a clean Shutdown the
// caller persists the cache with Cache().Save; the next boot loads the
// snapshot and records the restored-entry count via SetRestored, exported
// as fastscd_snapshot_restored_entries.
package server
