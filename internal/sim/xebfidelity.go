package sim

import (
	"fmt"
	"math/rand"
)

// This file implements the measurement side of cross-entropy benchmarking
// (XEB, Arute et al.): sampling bitstrings from a state and estimating the
// circuit fidelity from how strongly the sampled bitstrings concentrate on
// the ideal output distribution. It closes the loop on the paper's XEB
// workloads: the compiled, noise-simulated circuit can be "measured" and
// its linear-XEB fidelity compared with the eq. 4 estimate.

// Sample draws n computational-basis measurement outcomes from the state.
func (s *State) Sample(n int, rng *rand.Rand) []int {
	if n <= 0 {
		return nil
	}
	// Cumulative distribution over basis states.
	cum := make([]float64, len(s.Amps))
	total := 0.0
	for i, a := range s.Amps {
		total += real(a)*real(a) + imag(a)*imag(a)
		cum[i] = total
	}
	out := make([]int, n)
	for k := 0; k < n; k++ {
		r := rng.Float64() * total
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[k] = lo
	}
	return out
}

// LinearXEB computes the linear cross-entropy fidelity estimator
//
//	F = 2^n · ⟨P_ideal(x)⟩_samples − 1
//
// where P_ideal is the noiseless output distribution and the average runs
// over measured bitstrings. For samples drawn from the ideal distribution
// of a Porter–Thomas (random) circuit F → 1; for uniformly random noise
// F → 0.
func LinearXEB(ideal *State, samples []int) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("sim: no samples")
	}
	dim := len(ideal.Amps)
	mean := 0.0
	for _, x := range samples {
		if x < 0 || x >= dim {
			return 0, fmt.Errorf("sim: sample %d out of range", x)
		}
		mean += ideal.Probability(x)
	}
	mean /= float64(len(samples))
	return float64(dim)*mean - 1, nil
}

// XEBExperiment runs the full measurement protocol against a noisy state:
// sample bitstrings from the noisy state and score them against the ideal
// distribution. Returns the linear-XEB fidelity estimate.
func XEBExperiment(ideal, noisy *State, shots int, seed int64) (float64, error) {
	if ideal.N != noisy.N {
		return 0, fmt.Errorf("sim: state widths differ")
	}
	rng := rand.New(rand.NewSource(seed))
	samples := noisy.Sample(shots, rng)
	return LinearXEB(ideal, samples)
}
