package lint_test

import (
	"testing"

	"fastsc/internal/lint"
	"fastsc/internal/lint/linttest"
)

func TestKeyFieldsFixture(t *testing.T) {
	const pkg = "fastsc/internal/lint/testdata/src/keyfields."
	ana := lint.MakeKeyFieldsAnalyzer(map[string]lint.KeySchema{
		pkg + "Good":      {KeyFunc: "fixtureKey", Fields: []string{"A", "B"}},
		pkg + "Reordered": {KeyFunc: "fixtureKey", Fields: []string{"Later", "Earlier"}},
		pkg + "Drifted":   {KeyFunc: "fixtureKey", Fields: []string{"X"}},
		pkg + "Missing":   {KeyFunc: "fixtureKey", Fields: []string{"Y", "Gone"}},
		pkg + "NotStruct": {KeyFunc: "fixtureKey", Fields: []string{"Z"}},
		pkg + "Absent":    {KeyFunc: "fixtureKey", Fields: []string{"Q"}},
		// Unexported, mirroring the production pins on the compile
		// snapshot codec structs.
		pkg + "pinnedCodec":  {KeyFunc: "fixtureCodec", Fields: []string{"Blob", "Ver"}},
		pkg + "driftedCodec": {KeyFunc: "fixtureCodec", Fields: []string{"Blob"}},
	})
	linttest.Run(t, "keyfields", ana)
}

// TestDefaultKeySchemaCovered runs the production keyfields analyzer the
// way `make lint` does not: over the real packages it pins, asserting
// zero findings. This is the lockstep check between keyschema.go and the
// structs it describes, independent of the reflection guard in
// compile/key_test.go.
func TestDefaultKeySchemaCovered(t *testing.T) {
	pkgs, err := lint.Load(".", []string{
		"fastsc/internal/smt", "fastsc/internal/topology", "fastsc/internal/phys",
		"fastsc/internal/circuit", "fastsc/internal/mapping", "fastsc/internal/compile",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		res := lint.Analyze(p, []*lint.Analyzer{lint.KeyFieldsAnalyzer})
		for _, d := range res.Diagnostics {
			t.Errorf("%s", d)
		}
	}
}
