package expt

import (
	"fmt"

	"fastsc/internal/compile"
	"fastsc/internal/core"
	"fastsc/internal/noise"
	"fastsc/internal/sim"
)

// ValidationResult compares the eq. 4 heuristic against full noisy
// state-vector simulation (§VI-C).
type ValidationResult struct {
	Table *Table
	// Pairs of (heuristic, simulated) per benchmark/strategy row.
	Heuristic, Simulated []float64
}

// validationSuite lists the small circuits for which noisy simulation is
// tractable.
func validationSuite() []Benchmark {
	return []Benchmark{
		bvBench(4),
		isingBench(4),
		qganBench(4),
		xebBench(4, 5),
		xebBench(4, 10),
		xebBench(9, 5),
	}
}

// ValidationHeuristic runs the §VI-C validation: for small circuits, the
// worst-case heuristic (evaluated without the flux-noise channel, which the
// trajectory simulator does not model) is compared against the mean
// trajectory fidelity. The heuristic is a worst-case bound, so it should
// track — and generally lie below — the simulated fidelity.
func ValidationHeuristic(ctx *compile.Context, shots int) (*ValidationResult, error) {
	if shots <= 0 {
		shots = 150
	}
	strategies := []string{core.BaselineN, core.ColorDynamic}
	nopt := noise.DefaultOptions()
	nopt.FluxNoiseSigma = 0 // the trajectory simulator has no flux channel
	suite := validationSuite()
	var jobs []core.BatchJob
	for _, b := range suite {
		sys := GridSystem(b.Qubits)
		circ := b.Circuit(sys.Device)
		for _, strat := range strategies {
			cfg := jobConfig(b)
			cfg.Noise = &nopt
			jobs = append(jobs, core.BatchJob{
				Key:      b.Name + "/" + strat,
				Circuit:  circ,
				System:   sys,
				Strategy: strat,
				Config:   cfg,
			})
		}
	}
	results, err := core.BatchCollect(ctx, jobs)
	if err != nil {
		return nil, fmt.Errorf("validation: %w", err)
	}

	res := &ValidationResult{}
	t := &Table{
		ID:      "validation",
		Title:   "Heuristic success estimate vs noisy state-vector simulation (§VI-C)",
		Columns: []string{"benchmark", "strategy", "heuristic", "simulated", "±stderr"},
	}
	for _, b := range suite {
		for _, strat := range strategies {
			r := results[b.Name+"/"+strat]
			opt := sim.DefaultTrajectoryOptions(benchSeed)
			opt.Shots = shots
			traj := sim.RunNoisy(r.Schedule, opt)
			res.Heuristic = append(res.Heuristic, r.Report.Success)
			res.Simulated = append(res.Simulated, traj.MeanFidelity)
			t.Rows = append(t.Rows, []string{
				b.Name, strat,
				fmtG(r.Report.Success),
				fmtG(traj.MeanFidelity),
				fmt.Sprintf("%.4f", traj.StdErr),
			})
		}
	}
	t.Notes = append(t.Notes,
		"the heuristic tracks the simulated fidelity and ranks strategies identically;",
		"on crosstalk-dominated schedules (Baseline N) its worst-case channels make it a lower bound")
	res.Table = t
	return res, nil
}
