// Topology explorer: the §VII-F scenario as a library user would run it.
// Builds a family of device connectivities of increasing density (linear →
// express cubes → grid → 2-D express cubes), compiles a parallel workload
// on each, and reports where the sweet spot between connectivity (less
// routing) and frequency crowding (more crosstalk) falls.
//
// Run with: go run ./examples/topology_explorer
package main

import (
	"fmt"
	"log"

	"fastsc/internal/bench"
	"fastsc/internal/core"
	"fastsc/internal/phys"
	"fastsc/internal/topology"
)

func main() {
	const n = 16
	devices := []*topology.Device{
		topology.Linear(n),
		topology.Express1D(n, 4),
		topology.Express1D(n, 2),
		topology.Grid(4, 4),
		topology.Express2D(4, 4, 3),
		topology.Express2D(4, 4, 2),
	}

	fmt.Printf("%-12s %8s %8s %12s %12s %8s\n",
		"device", "couplers", "swaps", "U success", "CD success", "CD/U")
	for _, dev := range devices {
		sys := phys.NewSystem(dev, phys.DefaultParams(), 42)
		// A chain-structured variational workload routed onto each device.
		prog := bench.QGAN(n, 3, 9)
		u, err := core.Compile(prog, sys, core.BaselineU, core.Config{Placement: core.PlaceSnake})
		if err != nil {
			log.Fatal(err)
		}
		cd, err := core.Compile(prog, sys, core.ColorDynamic, core.Config{Placement: core.PlaceSnake})
		if err != nil {
			log.Fatal(err)
		}
		ratio := 0.0
		if u.Report.Success > 0 {
			ratio = cd.Report.Success / u.Report.Success
		}
		fmt.Printf("%-12s %8d %8d %12.4g %12.4g %8.2f\n",
			dev.Name, dev.Coupling.NumEdges(), cd.SwapCount,
			u.Report.Success, cd.Report.Success, ratio)
	}
	fmt.Println("\ndense connectivity reduces routing but crowds the spectrum;")
	fmt.Println("frequency-aware compilation recovers most of the loss (paper §VII-F).")
}
