package expt

import (
	"fmt"
	"math"
	"time"

	"fastsc/internal/compile"
	"fastsc/internal/core"
	"fastsc/internal/topology"
)

// Fig13Point is one benchmark × topology measurement.
type Fig13Point struct {
	Benchmark   string
	Topology    string
	Colors      int
	CompileTime time.Duration
	SuccessU    float64
	SuccessCD   float64
}

// Fig13Result carries the general-device-connectivity study of §VII-F.
type Fig13Result struct {
	Table  *Table
	Points []Fig13Point
	// GeoMeanCDOverU is the geometric-mean success improvement of
	// ColorDynamic over Baseline U across all points (paper: 3.97×).
	GeoMeanCDOverU float64
}

// fig13Suite matches the five benchmarks of Fig 13.
func fig13Suite() []Benchmark {
	return []Benchmark{
		bvBench(9),
		qaoaBench(4),
		isingBench(4),
		qganBench(16),
		xebBench(16, 1),
	}
}

// fig13Topologies builds the x-axis device family for n qubits: linear,
// 1EX-5…1EX-2, grid, 2EX-5…2EX-2 (density increasing left to right).
func fig13Topologies(n int) []*topology.Device {
	side := 1
	for side*side < n {
		side++
	}
	devs := []*topology.Device{topology.Linear(n)}
	for _, k := range []int{5, 4, 3, 2} {
		devs = append(devs, topology.Express1D(n, k))
	}
	if side*side == n {
		devs = append(devs, topology.Grid(side, side))
		for _, k := range []int{5, 4, 3, 2} {
			devs = append(devs, topology.Express2D(side, side, k))
		}
	}
	return devs
}

// Fig13Connectivity reproduces Fig 13: for each benchmark and device
// connectivity, the number of interaction colors ColorDynamic uses, its
// compilation time, and the success rates of Baseline U and ColorDynamic,
// run through the batch engine.
func Fig13Connectivity(ctx *compile.Context) (*Fig13Result, error) {
	suite := fig13Suite()
	var jobs []core.BatchJob
	for _, b := range suite {
		for _, dev := range fig13Topologies(b.Qubits) {
			sys := SystemFor(dev)
			circ := b.Circuit(dev)
			for _, s := range []string{core.BaselineU, core.ColorDynamic} {
				jobs = append(jobs, core.BatchJob{
					Key:      b.Name + "@" + dev.Name + "/" + s,
					Circuit:  circ,
					System:   sys,
					Strategy: s,
					Config:   jobConfig(b),
				})
			}
		}
	}
	results, err := core.BatchCollect(ctx, jobs)
	if err != nil {
		return nil, fmt.Errorf("fig13: %w", err)
	}

	res := &Fig13Result{}
	t := &Table{
		ID:      "fig13",
		Title:   "General device connectivity: colors, compile time, success (U vs ColorDynamic)",
		Columns: []string{"benchmark", "topology", "colors", "compile", "U success", "CD success", "CD/U"},
	}
	var sumLog float64
	var count int
	for _, b := range suite {
		for _, dev := range fig13Topologies(b.Qubits) {
			u := results[b.Name+"@"+dev.Name+"/"+core.BaselineU]
			cd := results[b.Name+"@"+dev.Name+"/"+core.ColorDynamic]
			p := Fig13Point{
				Benchmark:   b.Name,
				Topology:    dev.Name,
				Colors:      cd.Schedule.MaxColorsUsed,
				CompileTime: cd.CompileTime,
				SuccessU:    u.Report.Success,
				SuccessCD:   cd.Report.Success,
			}
			res.Points = append(res.Points, p)
			ratio := math.Inf(1)
			if p.SuccessU > 0 {
				ratio = p.SuccessCD / p.SuccessU
				sumLog += math.Log(ratio)
				count++
			}
			t.Rows = append(t.Rows, []string{
				b.Name, dev.Name, fmt.Sprintf("%d", p.Colors),
				p.CompileTime.Round(time.Microsecond).String(),
				fmtG(p.SuccessU), fmtG(p.SuccessCD), fmt.Sprintf("%.2f", ratio),
			})
		}
	}
	if count > 0 {
		res.GeoMeanCDOverU = math.Exp(sumLog / float64(count))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("geomean ColorDynamic/U improvement: %.2fx (paper: 3.97x)", res.GeoMeanCDOverU),
		"compile time stays low because per-slice colorings remain small (§VII-C)")
	res.Table = t
	return res, nil
}
