# Targets mirror .github/workflows/ci.yml so local runs and CI stay in
# lockstep.

GO ?= go

# The committed machine-readable benchmark record for this PR generation
# (bench-json writes it; bench-regress compares a fresh run against it).
BENCH_JSON ?= BENCH_8.json

# The benchmarks the regression guard watches: the batch-compilation cold
# path, the single-large-circuit intra-parallelism path, the SMT bisection,
# the tiered warm-cache paths (warm-set load/index, warm-served routing),
# and the flat-core hot spots they are built on (crosstalk construction,
# circuit analysis, frontier drain, layout/routing). Keep the pattern and
# the package list in lockstep with .github/workflows/ci.yml's
# bench-regression job.
BENCH_GUARD_PATTERN = BenchmarkBatchCompile|BenchmarkLargeCircuitCompile|BenchmarkSMTSolve|BenchmarkXtalkBuild|BenchmarkCircuitAnalysis|BenchmarkFrontier|BenchmarkRoute|BenchmarkWarmSetLoad|BenchmarkRouteWarmStart
BENCH_GUARD_PKGS = ./internal/bench/ ./internal/smt/ ./internal/xtalk/ ./internal/circuit/ ./internal/compile/

.PHONY: all build test lint lint-smoke fastscvet bench bench-json bench-regress warm-cache-check daemon daemon-smoke chaos-smoke

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# fastscvet builds the repo's own analyzer suite (internal/lint, five
# analyzers: maporder, hotalloc, poolpair, keyfields, ctxflow) as a
# go vet -vettool binary. docs/architecture.md ("Invariants &
# enforcement") maps each analyzer to the invariant it guards.
fastscvet:
	$(GO) build -o bin/fastscvet ./cmd/fastscvet

# lint = gofmt + go vet + fastscvet, in lockstep with ci.yml. Running
# fastscvet through go vet's -vettool protocol (rather than standalone)
# covers _test.go files too. CI's lint job additionally runs staticcheck
# and govulncheck, which need network to install and so do not run here.
lint: fastscvet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) vet -vettool=$(abspath bin/fastscvet) ./...

# lint-smoke proves the lint gate can actually fail: fastscvet over the
# deliberately-violating fixture package (which wildcard builds never
# see — it lives under testdata) must exit nonzero, or the wiring is
# decorative.
lint-smoke: fastscvet
	@if $(GO) vet -vettool=$(abspath bin/fastscvet) ./internal/lint/testdata/src/lintsmoke >/dev/null 2>&1; then \
		echo "lint-smoke: fastscvet passed the seeded-violation fixture; the lint gate is not wired" >&2; exit 1; \
	else \
		echo "lint-smoke: fastscvet correctly failed the seeded-violation fixture"; \
	fi

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' ./... | tee bench-results.txt

# bench-json runs the full benchmark suite and writes both the raw text
# (bench-results.txt) and the machine-readable $(BENCH_JSON) map of
# benchmark -> {ns/op, B/op, allocs/op, custom metrics}. CI uploads both
# as artifacts so the perf trajectory is tracked across PRs. -count=3 lets
# cmd/benchjson min-fold the samples (the committed record is the
# least-noise estimate, not one lucky or unlucky draw). The two steps are
# separate commands (not a pipeline) so a failing benchmark run fails the
# target instead of being masked by the parser's exit status.
bench-json:
	$(GO) test -bench=. -benchmem -benchtime=1x -count=3 -run='^$$' ./... > bench-results.txt
	$(GO) run ./cmd/benchjson < bench-results.txt > $(BENCH_JSON)
	@echo "wrote $(BENCH_JSON)"

# bench-regress re-runs the guarded benchmarks (batch compilation, xtalk
# build, circuit analysis, frontier drain) and fails when any regressed
# >30% in ns/op against the committed $(BENCH_JSON). The local threshold
# is looser than CI's 20%: the committed record min-folds samples, so the
# microsecond-scale benchmarks sit at their observed floor and an honest
# re-run can land 20–25% above it on a loaded machine. CI's regression job
# benches base and head on the same runner with the same methodology,
# which removes that bias; this target is only the local smoke check.
bench-regress:
	$(GO) test -bench='$(BENCH_GUARD_PATTERN)' -benchmem -benchtime=10x -count=6 -run='^$$' $(BENCH_GUARD_PKGS) > /tmp/bench-head.txt
	$(GO) run ./cmd/benchjson < /tmp/bench-head.txt > /tmp/bench-head.json
	$(GO) run ./cmd/benchcmp -baseline $(BENCH_JSON) -new /tmp/bench-head.json \
		-pattern '$(BENCH_GUARD_PATTERN)' -max-regress 30 -require-overlap

# Run the compile daemon locally (docs/api.md documents the endpoints).
daemon:
	$(GO) run ./cmd/fastscd

# Mirrors the CI daemon-smoke job: build fastscd, start it, submit a
# batch over HTTP, assert valid schedules, a >90% cache hit rate on a
# repeat submission, nonzero /metrics hit counters, a single deep
# circuit with workers > 1 reporting into the batch-duration histogram,
# a clean SIGTERM drain that persists a snapshot, and a warm restart
# from it.
daemon-smoke:
	./scripts/daemon-smoke.sh

# Mirrors the CI chaos-smoke job: run fastscd with fault points armed
# (injected job panic, slow solves) and a durable batch store, drive it
# with cmd/fastscload, kill -9 mid-batch, restart, and assert the store
# recovered (epoch 2, finished batches intact, the mid-flight batch
# "interrupted", no acked id lost) and the periodic cache snapshot left a
# warm start behind.
chaos-smoke:
	./scripts/chaos-smoke.sh

# Mirrors the CI warm-cache job: a second Fig 9 sweep against the same
# cache snapshot must report a total hit rate above 95%, and a third
# process given that snapshot only as a read-only -warm-set (no local
# snapshot at all) must still reach >90% on the route region and >95%
# overall — proving the shared tier alone carries a fleet warm start.
warm-cache-check:
	@snap=$$(mktemp -u)/fastsc-cache.snap; mkdir -p $$(dirname $$snap); \
	$(GO) run ./cmd/experiments -cache-file "$$snap" -cache-stats fig9 > /dev/null; \
	$(GO) run ./cmd/experiments -cache-file "$$snap" -cache-stats fig9 | tee warm-run.txt; \
	rate=$$(awk '/^total / {gsub(/%/,"",$$NF); rate=$$NF} END {print rate}' warm-run.txt); \
	echo "warm-run total hit rate: $$rate%"; \
	awk -v r="$$rate" 'BEGIN { if (r == "" || r <= 95) { print "warm hit rate " r "% is not > 95%"; exit 1 } }'; \
	$(GO) run ./cmd/experiments -warm-set "$$snap" -cache-stats fig9 | tee warmset-run.txt; \
	total=$$(awk '/^total / {gsub(/%/,"",$$NF); rate=$$NF} END {print rate}' warmset-run.txt); \
	route=$$(awk '/^route / {gsub(/%/,"",$$NF); rate=$$NF} END {print rate}' warmset-run.txt); \
	echo "warm-set-only run: total $$total%, route $$route%"; \
	awk -v r="$$total" 'BEGIN { if (r == "" || r <= 95) { print "warm-set-only total hit rate " r "% is not > 95%"; exit 1 } }'; \
	awk -v r="$$route" 'BEGIN { if (r == "" || r <= 90) { print "warm-set-only route hit rate " r "% is not > 90%"; exit 1 } }'
