package compile

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"fastsc/internal/phys"
	"fastsc/internal/smt"
	"fastsc/internal/topology"
)

// Cache regions. Keeping them as named constants makes hit/miss reports
// and tests self-describing.
const (
	// RegionSMT holds smt.Solve results (including infeasibility verdicts)
	// keyed by (k, band, alpha, minDelta).
	RegionSMT = "smt"
	// RegionSlice holds per-slice coloring/frequency solutions keyed by the
	// canonical hash of the active interaction subgraph.
	RegionSlice = "slice"
	// RegionXtalk holds crosstalk graphs keyed by (device, distance).
	RegionXtalk = "xtalk"
	// RegionStatic holds program-independent frequency palettes (Baseline
	// S/G calibration tables) keyed by system signature.
	RegionStatic = "static"
	// RegionParking holds parking-frequency assignments keyed by system
	// signature.
	RegionParking = "park"
)

type hasher struct{ h uint64 }

func newHasher() *hasher { return &hasher{h: 14695981039346656037} } // FNV-64a offset

func (h *hasher) bytes(p []byte) {
	for _, b := range p {
		h.h ^= uint64(b)
		h.h *= 1099511628211 // FNV-64a prime
	}
}

func (h *hasher) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.bytes(buf[:])
}

func (h *hasher) f64(v float64) { h.u64(math.Float64bits(v)) }

func (h *hasher) str(s string) {
	h.u64(uint64(len(s)))
	h.bytes([]byte(s))
}

// DeviceSignature returns a stable content hash of a device layout: its
// name, qubit count and coupler list. Two Device values describing the same
// chip hash identically even when they are distinct allocations, which is
// what lets independently constructed systems share cache entries.
func DeviceSignature(dev *topology.Device) string {
	h := newHasher()
	h.str(dev.Name)
	h.u64(uint64(dev.Qubits))
	for _, e := range dev.Edges() { // Edges() is sorted by (U, V)
		h.u64(uint64(e.U))
		h.u64(uint64(e.V))
	}
	return fmt.Sprintf("%016x", h.h)
}

// SystemSignature returns a stable content hash of a characterized system:
// the device signature plus every transmon's fabrication draw and every
// coupler's bare coupling — everything the scheduler's frequency math
// depends on. Systems sampled with the same (device, params, seed) hash
// identically across allocations.
func SystemSignature(sys *phys.System) string {
	h := newHasher()
	h.str(DeviceSignature(sys.Device))
	for _, t := range sys.Qubits {
		h.f64(t.OmegaMax)
		h.f64(t.EC)
		h.f64(t.Asymmetry)
		h.f64(t.T1)
		h.f64(t.T2)
	}
	for _, e := range sys.Device.Edges() {
		h.f64(sys.Coupling[e])
	}
	return fmt.Sprintf("%016x", h.h)
}

// SMTKey is the cache key of one smt.Solve invocation. The solver is a pure
// function of exactly these inputs.
func SMTKey(k int, cfg smt.Config) string {
	return fmt.Sprintf("%d|%x|%x|%x|%x",
		k,
		math.Float64bits(cfg.Lo), math.Float64bits(cfg.Hi),
		math.Float64bits(cfg.Alpha), math.Float64bits(cfg.MinDelta))
}

// XtalkKey is the cache key of a crosstalk-graph construction.
func XtalkKey(dev *topology.Device, distance int) string {
	return fmt.Sprintf("%s|%d", DeviceSignature(dev), distance)
}

// SliceKey returns the canonical cache key of one slice-solve: the system
// signature (which fixes the crosstalk graph's coupler indexing and the
// interaction band), the crosstalk distance and color budget, and the
// sorted vertex set of the active interaction subgraph. Vertex ids index
// the device's coupler list, so the same simultaneous gate pattern maps to
// the same key in every slice of every job on that system.
func SliceKey(sysSig string, distance, budget int, activeVertices []int) string {
	verts := append([]int(nil), activeVertices...)
	sort.Ints(verts)
	h := newHasher()
	h.str(sysSig)
	h.u64(uint64(distance))
	h.u64(uint64(uint(budget)))
	for _, v := range verts {
		h.u64(uint64(v))
	}
	return fmt.Sprintf("%016x|%d", h.h, len(verts))
}
