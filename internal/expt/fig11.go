package expt

import (
	"fmt"

	"fastsc/internal/compile"
	"fastsc/internal/core"
	"fastsc/internal/schedule"
)

// Fig11Result carries the tunability sweep of Fig 11.
type Fig11Result struct {
	Table *Table
	// Success[benchmark][maxColors].
	Success map[string]map[int]float64
	// BestColors[benchmark] is the color budget maximizing success.
	BestColors map[string]int
}

// fig11MaxColors is the sweep range (the paper plots 1–4).
var fig11MaxColors = []int{1, 2, 3, 4}

// fig11Suite returns the benchmarks Fig 11 sweeps.
func fig11Suite() []Benchmark {
	return []Benchmark{
		bvBench(16),
		qaoaBench(4),
		isingBench(4),
		qganBench(4),
		qganBench(16),
		xebBench(16, 5),
		xebBench(16, 10),
		xebBench(16, 15),
	}
}

// Fig11ColorSweep reproduces Fig 11: program success rate as a function of
// the maximum number of interaction colors (i.e. frequencies) ColorDynamic
// may use per slice, run through the batch engine. The paper finds the
// sweet spot at 1–2 colors.
func Fig11ColorSweep(ctx *compile.Context) (*Fig11Result, error) {
	suite := fig11Suite()
	var jobs []core.BatchJob
	for _, b := range suite {
		sys := GridSystem(b.Qubits)
		circ := b.Circuit(sys.Device)
		for _, k := range fig11MaxColors {
			cfg := jobConfig(b)
			cfg.Schedule = schedule.Options{MaxColors: k}
			jobs = append(jobs, core.BatchJob{
				Key:      fmt.Sprintf("%s/k=%d", b.Name, k),
				Circuit:  circ,
				System:   sys,
				Strategy: core.ColorDynamic,
				Config:   cfg,
			})
		}
	}
	results, err := core.BatchCollect(ctx, jobs)
	if err != nil {
		return nil, fmt.Errorf("fig11: %w", err)
	}

	res := &Fig11Result{
		Success:    map[string]map[int]float64{},
		BestColors: map[string]int{},
	}
	cols := []string{"benchmark"}
	for _, k := range fig11MaxColors {
		cols = append(cols, fmt.Sprintf("%d colors", k))
	}
	t := &Table{
		ID:      "fig11",
		Title:   "ColorDynamic success rate vs tunability (max colors)",
		Columns: append(cols, "best"),
	}
	for _, b := range suite {
		row := []string{b.Name}
		res.Success[b.Name] = map[int]float64{}
		best, bestV := 0, -1.0
		for _, k := range fig11MaxColors {
			r := results[fmt.Sprintf("%s/k=%d", b.Name, k)]
			res.Success[b.Name][k] = r.Report.Success
			row = append(row, fmtG(r.Report.Success))
			if r.Report.Success > bestV {
				bestV, best = r.Report.Success, k
			}
		}
		res.BestColors[b.Name] = best
		row = append(row, fmt.Sprintf("%d", best))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: optimal operating point at 1 or 2 colors; more colors give diminishing returns")
	res.Table = t
	return res, nil
}
