// Package bench generates the NISQ benchmark circuits of Table II:
// Bernstein–Vazirani (BV), QAOA MAX-CUT on Erdős–Rényi graphs, linear Ising
// chain simulation, quantum GAN ansatz circuits, and Sycamore-style XEB
// (cross-entropy benchmarking) cycles. All generators are deterministic for
// a given seed.
package bench

import (
	"fmt"
	"math"
	"math/rand"

	"fastsc/internal/circuit"
	"fastsc/internal/graph"
	"fastsc/internal/topology"
)

// BV returns the Bernstein–Vazirani circuit on n qubits (n−1 data qubits
// plus the oracle ancilla, qubit n−1). The secret string is drawn from the
// seed. Structure: X+H on the ancilla, H on data, CNOTs from the secret
// bits into the ancilla, H on data.
func BV(n int, seed int64) *circuit.Circuit {
	if n < 2 {
		panic(fmt.Sprintf("bench: BV needs >= 2 qubits, got %d", n))
	}
	rng := rand.New(rand.NewSource(seed))
	anc := n - 1
	c := circuit.New(n)
	c.X(anc)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	secretBits := 0
	for q := 0; q < n-1; q++ {
		if rng.Intn(2) == 1 {
			c.CNOT(q, anc)
			secretBits++
		}
	}
	if secretBits == 0 { // guarantee a non-trivial oracle
		c.CNOT(0, anc)
	}
	for q := 0; q < n-1; q++ {
		c.H(q)
	}
	return c
}

// QAOA returns a depth-1 QAOA MAX-CUT circuit for an Erdős–Rényi random
// graph G(n, 1/2): H on all qubits, a ZZ-phase (CNOT·RZ·CNOT) per graph
// edge, then the RX mixer.
func QAOA(n int, seed int64) *circuit.Circuit {
	if n < 2 {
		panic(fmt.Sprintf("bench: QAOA needs >= 2 qubits, got %d", n))
	}
	rng := rand.New(rand.NewSource(seed))
	gamma := rng.Float64() * math.Pi
	beta := rng.Float64() * math.Pi
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.5 {
				edges = append(edges, graph.NewEdge(i, j))
			}
		}
	}
	if len(edges) == 0 {
		edges = append(edges, graph.NewEdge(0, 1))
	}
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for _, e := range edges {
		c.CNOT(e.U, e.V)
		c.RZ(e.V, 2*gamma)
		c.CNOT(e.U, e.V)
	}
	for q := 0; q < n; q++ {
		c.RX(q, 2*beta)
	}
	return c
}

// Ising returns a digitized adiabatic simulation of a transverse-field
// Ising spin chain of length n (Barends et al. 2016): `steps` Trotter steps,
// each applying single-qubit RZ/RX fields followed by nearest-neighbor ZZ
// couplings along the chain. steps <= 0 defaults to n (circuit depth grows
// with system size, as in the paper where ising(16) decoheres away).
func Ising(n, steps int) *circuit.Circuit {
	if n < 2 {
		panic(fmt.Sprintf("bench: Ising needs >= 2 qubits, got %d", n))
	}
	if steps <= 0 {
		steps = n
	}
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.H(q) // ground state of the initial transverse field
	}
	const (
		dt = 0.25
		j  = 1.0 // coupling strength
		h  = 0.8 // transverse field
	)
	for s := 0; s < steps; s++ {
		for q := 0; q < n; q++ {
			c.RX(q, 2*h*dt)
		}
		// Even bonds then odd bonds, the standard brickwork.
		for parity := 0; parity < 2; parity++ {
			for q := parity; q+1 < n; q += 2 {
				c.CNOT(q, q+1)
				c.RZ(q+1, 2*j*dt)
				c.CNOT(q, q+1)
			}
		}
	}
	return c
}

// QGAN returns a quantum-GAN generator ansatz over n qubits (training data
// of dimension 2^n, Lloyd & Weedbrook): `layers` alternating layers of RY
// rotations and a brickwork CNOT entangler (even bonds then odd bonds along
// the chain, so entangling gates run in parallel), with a final RY layer.
// layers <= 0 defaults to 2.
func QGAN(n int, layers int, seed int64) *circuit.Circuit {
	if n < 2 {
		panic(fmt.Sprintf("bench: QGAN needs >= 2 qubits, got %d", n))
	}
	if layers <= 0 {
		layers = 2
	}
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.RY(q, rng.Float64()*math.Pi)
		}
		for parity := 0; parity < 2; parity++ {
			for q := parity; q+1 < n; q += 2 {
				c.CNOT(q, q+1)
			}
		}
	}
	for q := 0; q < n; q++ {
		c.RY(q, rng.Float64()*math.Pi)
	}
	return c
}

// XEB returns a cross-entropy-benchmarking circuit with `cycles` cycles,
// generated directly on the device (Arute et al.): each cycle applies a
// random single-qubit gate from {√X, √Y, √W} to every qubit (never
// repeating the previous cycle's gate on the same qubit) followed by iSWAP
// gates on one tiling pattern of couplers, cycling through the patterns.
func XEB(dev *topology.Device, cycles int, seed int64) *circuit.Circuit {
	if cycles < 1 {
		panic(fmt.Sprintf("bench: XEB needs >= 1 cycle, got %d", cycles))
	}
	rng := rand.New(rand.NewSource(seed))
	patterns := xebPatterns(dev)
	c := circuit.New(dev.Qubits)
	kinds := []circuit.Kind{circuit.SX, circuit.SY, circuit.SW}
	last := make([]int, dev.Qubits)
	for q := range last {
		last[q] = -1
	}
	for cy := 0; cy < cycles; cy++ {
		for q := 0; q < dev.Qubits; q++ {
			k := rng.Intn(len(kinds))
			for k == last[q] {
				k = rng.Intn(len(kinds))
			}
			last[q] = k
			c.Add(circuit.Gate{Kind: kinds[k], Qubits: []int{q}})
		}
		if len(patterns) > 0 {
			for _, e := range patterns[cy%len(patterns)] {
				c.ISwap(e.U, e.V)
			}
		}
	}
	return c
}

// xebPatterns partitions the device couplers into the tiling layers used by
// the XEB cycles: ABCD parity patterns on grids, greedy matchings elsewhere.
func xebPatterns(dev *topology.Device) [][]graph.Edge {
	byClass := make(map[int][]graph.Edge)
	maxClass := -1
	if dev.IsGrid() {
		for _, e := range dev.Edges() {
			cu, cv := dev.Coords[e.U], dev.Coords[e.V]
			var cl int
			if cu.Row == cv.Row {
				cl = min2(cu.Col, cv.Col) % 2
			} else {
				cl = 2 + min2(cu.Row, cv.Row)%2
			}
			byClass[cl] = append(byClass[cl], e)
			if cl > maxClass {
				maxClass = cl
			}
		}
	} else {
		lg, couplers := graph.LineGraph(dev.Coupling)
		coloring := graph.WelshPowell(lg)
		for v, cl := range coloring {
			if cl < 0 {
				continue
			}
			byClass[int(cl)] = append(byClass[int(cl)], couplers[v])
			if int(cl) > maxClass {
				maxClass = int(cl)
			}
		}
	}
	var out [][]graph.Edge
	for cl := 0; cl <= maxClass; cl++ {
		if len(byClass[cl]) > 0 {
			out = append(out, byClass[cl])
		}
	}
	return out
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
