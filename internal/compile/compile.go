// Package compile is the batch-compilation engine of FastSC-Go: a bounded
// worker pool that fans (circuit, compiler, system) jobs across CPUs and a
// concurrency-safe LRU cache that memoizes the expensive inner stages of
// the ColorDynamic pipeline across jobs.
//
// Two observations make the cache effective (cf. Murali et al., ASPLOS
// 2020; the per-slice solver work of Ding et al., MICRO 2020 dominates
// compilation cost):
//
//   - SMT frequency solutions depend only on (k, band, anharmonicity) — a
//     pure function of the device signature — so every strategy and every
//     benchmark compiled against the same chip shares them.
//   - Per-slice coloring/frequency assignments depend only on the active
//     interaction subgraph of the crosstalk graph, and real workloads
//     (brickwork entanglers, XEB tilings, Trotter layers) re-issue the same
//     few subgraphs over and over.
//
// A Context bundles the cache with a parallelism budget and is injected
// into schedule.Compiler.Compile; a nil *Context is always valid and means
// "no cache, default parallelism". All cached values are treated as
// immutable after insertion — callers must never mutate what they get back.
//
// # Cache v2: sharding, single-flight, persistence
//
// The cache is sharded: keys hash onto a power of two of independently
// locked LRU shards (one per GOMAXPROCS by default, NewCacheSharded to
// override), so a >32-core worker pool does not serialize on one mutex.
// LRU order and the capacity bound hold per shard.
//
// Cache.Do deduplicates concurrent misses on the same key through a
// single-flight group: exactly one caller computes, every concurrent
// caller for that key blocks and shares the result (errors included;
// errors are still never cached). A slice subgraph issued by 32 jobs at
// once is solved once, not 32 times.
//
// The process-independent regions (SMT solves, static palettes, parking
// assignments, slice solutions, routed circuits, analyzed-circuit
// signatures — see PersistRegions) snapshot to disk via Cache.Save/Load
// as a versioned gob stream; both CLIs expose it as -cache-file, so
// repeated sweeps start warm. A missing, corrupt or unmigratable snapshot
// degrades to a cold cache rather than an error (LoadSnapshot reports the
// reason), snapshots carry KeyVersion so keys from an older key scheme
// can never satisfy a current lookup, and a snapshot exactly one key
// version behind is re-keyed on load via the migration table in
// migrate.go. Cache keys are exact encodings (not hashes) of their inputs
// wherever collision would change compilation output: SliceKey encodes
// the full sorted active-vertex set.
//
// # Cache v3: the tiered warm set
//
// A Cache can additionally attach a read-only warm set (OpenWarmSet +
// AttachWarmSet): a shared snapshot probed lock-free after a local-shard
// miss and before compute, with hits promoted into the local shards and
// counted per region as Stats.WarmHits. The warm set file is never
// written, so one snapshot on shared storage warm-starts any number of
// processes; all three binaries expose it as -warm-set. See
// docs/architecture.md, "Tiered cache & migration", for the tier order,
// the re-key version table and the degradation contract.
package compile

import (
	"runtime"
	"sync/atomic"
)

// Context carries the shared compilation state injected into every
// compiler: the memoization cache and the parallelism budget for batch
// runs. The zero value and the nil pointer are both valid (no cache,
// default workers); every method is nil-safe.
type Context struct {
	// Cache memoizes SMT solutions, crosstalk graphs, static palettes and
	// per-slice coloring solutions. Nil disables memoization.
	Cache *Cache
	// Workers bounds the batch engine's worker pool. <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Record, when non-nil, attributes every memoized lookup made through
	// this Context to a request-scoped Recorder in addition to the cache's
	// global counters. Use Scoped to derive a per-request Context from a
	// process-wide one.
	Record *Recorder

	// spare is the lazily built semaphore of borrowable intra-job workers
	// (Workers−1 tokens; see ForEach/TrySpawn in parallel.go). It is scoped
	// to this Context, so every request derived via Scoped gets its own
	// budget.
	spare atomic.Pointer[spareSlots]
}

// NewContext returns a Context with the given parallelism budget and a
// fresh default-capacity cache. workers <= 0 selects GOMAXPROCS.
func NewContext(workers int) *Context {
	return &Context{Cache: NewCache(0), Workers: workers}
}

// workers resolves the effective worker count.
func (c *Context) workers() int {
	if c != nil && c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// cache returns the cache, or nil when memoization is disabled.
func (c *Context) cache() *Cache {
	if c == nil {
		return nil
	}
	return c.Cache
}

// Stats reports the cache counters, or the zero map when no cache is
// attached.
func (c *Context) Stats() map[string]Stats {
	if c == nil || c.Cache == nil {
		return nil
	}
	return c.Cache.StatsByRegion()
}
