package core_test

import (
	"math"
	"testing"

	"fastsc/internal/bench"
	"fastsc/internal/circuit"
	"fastsc/internal/core"
	"fastsc/internal/graph"
	"fastsc/internal/phys"
	"fastsc/internal/pulse"
	"fastsc/internal/schedule"
	"fastsc/internal/sim"
	"fastsc/internal/topology"
)

// TestFullPipelineMatrix drives every strategy over every benchmark family
// on several topologies, checking the complete chain: routing → scheduling
// → invariants → pulse lowering → evaluation.
func TestFullPipelineMatrix(t *testing.T) {
	devices := []*topology.Device{
		topology.SquareGrid(9),
		topology.Linear(9),
		topology.Express1D(9, 3),
		topology.Ring(9),
	}
	for _, dev := range devices {
		sys := phys.NewSystem(dev, phys.DefaultParams(), 42)
		workloads := map[string]struct {
			c *circuit.Circuit
			p core.Placement
		}{
			"bv":    {bench.BV(9, 1), core.PlaceIdentity},
			"ising": {bench.Ising(9, 2), core.PlaceSnake},
			"qgan":  {bench.QGAN(9, 2, 1), core.PlaceSnake},
			"xeb":   {bench.XEB(dev, 3, 1), core.PlaceIdentity},
		}
		for wname, w := range workloads {
			for _, strat := range core.Strategies() {
				res, err := core.Compile(w.c, sys, strat, core.Config{Placement: w.p})
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", dev.Name, wname, strat, err)
				}
				if err := res.Schedule.Verify(); err != nil {
					t.Fatalf("%s/%s/%s: %v", dev.Name, wname, strat, err)
				}
				prog, err := pulse.Lower(res.Schedule)
				if err != nil {
					t.Fatalf("%s/%s/%s: pulse: %v", dev.Name, wname, strat, err)
				}
				if err := prog.Validate(res.Schedule); err != nil {
					t.Fatalf("%s/%s/%s: pulse validate: %v", dev.Name, wname, strat, err)
				}
				if s := res.Report.Success; s < 0 || s > 1 || math.IsNaN(s) {
					t.Fatalf("%s/%s/%s: success %v", dev.Name, wname, strat, s)
				}
			}
		}
	}
}

// TestCompiledCircuitsStayUnitarilyCorrect routes+decomposes a logical
// circuit through the full compiler and re-simulates the compiled gate list
// against the logical one.
func TestCompiledCircuitsStayUnitarilyCorrect(t *testing.T) {
	dev := topology.SquareGrid(4)
	sys := phys.NewSystem(dev, phys.DefaultParams(), 42)
	logical := circuit.New(4)
	logical.H(0).CNOT(0, 1).SWAP(1, 3).CZ(3, 2).CNOT(2, 0).RZ(1, 0.7)
	want := sim.RunIdeal(logical)

	for _, strat := range core.Strategies() {
		res, err := core.Compile(logical, sys, strat, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		// Replay the compiled circuit and undo the routing permutation by
		// tracking logical positions through inserted SWAPs — here we know
		// no routing swaps occurred (all pairs coupled on the 2x2? (1,3)
		// and (3,2) and (2,0) are couplers; (0,1) too).
		if res.SwapCount != 0 {
			t.Fatalf("%s: unexpected routing swaps %d", strat, res.SwapCount)
		}
		got := sim.RunIdeal(res.Schedule.Compiled)
		if f := want.Fidelity(got); math.Abs(f-1) > 1e-9 {
			t.Fatalf("%s: compiled circuit fidelity to logical = %v", strat, f)
		}
	}
}

// TestScheduleGateOrderRespectsDependencies replays each schedule and
// verifies that per-qubit gate order matches the compiled circuit's
// program order.
func TestScheduleGateOrderRespectsDependencies(t *testing.T) {
	dev := topology.SquareGrid(16)
	sys := phys.NewSystem(dev, phys.DefaultParams(), 42)
	c := bench.XEB(dev, 5, 3)
	for _, strat := range core.Strategies() {
		res, err := core.Compile(c, sys, strat, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		// Build the per-qubit expected streams from the compiled circuit.
		expect := make(map[int][]circuit.Gate)
		for _, g := range res.Schedule.Compiled.Gates {
			for _, q := range g.Qubits {
				expect[q] = append(expect[q], g)
			}
		}
		cursor := make(map[int]int)
		for si, sl := range res.Schedule.Slices {
			for _, ev := range sl.Gates {
				for _, q := range ev.Gate.Qubits {
					idx := cursor[q]
					if idx >= len(expect[q]) {
						t.Fatalf("%s: qubit %d overflows its gate stream at slice %d", strat, q, si)
					}
					want := expect[q][idx]
					if want.Kind != ev.Gate.Kind {
						t.Fatalf("%s: qubit %d slice %d: got %v, want %v", strat, q, si, ev.Gate, want)
					}
					cursor[q]++
				}
			}
		}
	}
}

// --- failure injection ---

func TestDisconnectedDeviceRoutingFails(t *testing.T) {
	// Two disconnected pairs: a CNOT across components must error, not
	// hang or panic.
	dev := topology.FromEdges("split", 4, []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(2, 3)})
	sys := phys.NewSystem(dev, phys.DefaultParams(), 1)
	c := circuit.New(4)
	c.CNOT(0, 3)
	if _, err := core.Compile(c, sys, core.ColorDynamic, core.Config{}); err == nil {
		t.Fatal("routing across disconnected components should fail")
	}
}

func TestNarrowTunableRangeFails(t *testing.T) {
	// A nearly untunable chip cannot host the frequency partition.
	p := phys.DefaultParams()
	p.Asymmetry = 0.999 // OmegaMin ≈ OmegaMax: no room to partition
	sys := phys.NewSystem(topology.Grid(2, 2), p, 1)
	c := circuit.New(4)
	c.CZ(0, 1)
	if _, err := core.Compile(c, sys, core.ColorDynamic, core.Config{}); err == nil {
		t.Fatal("compilation should fail when the tunable range cannot host the partition")
	}
}

func TestHugeFabricationSpreadFails(t *testing.T) {
	// Absurd fabrication spread can invert the common range.
	p := phys.DefaultParams()
	p.OmegaSigma = 3.0
	sys := phys.NewSystem(topology.Grid(3, 3), p, 5)
	lo, hi := sys.CommonRange()
	if hi > lo {
		t.Skip("this seed still has a usable common range")
	}
	c := circuit.New(9)
	c.CZ(0, 1)
	if _, err := core.Compile(c, sys, core.ColorDynamic, core.Config{}); err == nil {
		t.Fatal("inverted common range should fail cleanly")
	}
}

func TestSingleQubitDeviceTrivialProgram(t *testing.T) {
	// Degenerate device: one qubit, no couplers. Single-qubit programs
	// must still compile.
	dev := topology.Linear(1)
	sys := phys.NewSystem(dev, phys.DefaultParams(), 1)
	c := circuit.New(1)
	c.H(0).RZ(0, 0.3).H(0)
	res, err := core.Compile(c, sys, core.ColorDynamic, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Success <= 0.9 {
		t.Fatalf("trivial program success %v", res.Report.Success)
	}
}

func TestEmptyCircuitCompiles(t *testing.T) {
	sys := phys.NewSystem(topology.Grid(2, 2), phys.DefaultParams(), 1)
	c := circuit.New(4)
	res, err := core.Compile(c, sys, core.ColorDynamic, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Depth() != 0 || res.Report.Success != 1 {
		t.Fatalf("empty program: depth %d success %v", res.Schedule.Depth(), res.Report.Success)
	}
}

func TestMaxColorsOneStillCompletes(t *testing.T) {
	// The tightest tunability budget must still schedule everything.
	sys := phys.NewSystem(topology.SquareGrid(16), phys.DefaultParams(), 42)
	c := bench.XEB(sys.Device, 8, 3)
	res, err := core.Compile(c, sys, core.ColorDynamic, core.Config{
		Schedule: schedule.Options{MaxColors: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Schedule.MaxColorsUsed > 1 {
		t.Fatalf("budget violated: %d colors", res.Schedule.MaxColorsUsed)
	}
}
