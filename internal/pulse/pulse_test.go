package pulse

import (
	"math"
	"testing"

	"fastsc/internal/bench"
	"fastsc/internal/circuit"
	"fastsc/internal/phys"
	"fastsc/internal/schedule"
	"fastsc/internal/topology"
)

func loweredSchedule(t *testing.T, strategy string, c *circuit.Circuit, sys *phys.System) (*schedule.Schedule, *Program) {
	t.Helper()
	s, err := schedule.ByName(strategy).Compile(nil, c, sys, schedule.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Lower(s)
	if err != nil {
		t.Fatal(err)
	}
	return s, p
}

func TestLowerValidatesOnAllStrategies(t *testing.T) {
	sys := phys.NewSystem(topology.SquareGrid(9), phys.DefaultParams(), 42)
	c := bench.XEB(sys.Device, 4, 3)
	for _, strat := range schedule.Names() {
		s, p := loweredSchedule(t, strat, c, sys)
		if err := p.Validate(s); err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if p.Total != s.TotalTime {
			t.Fatalf("%s: program duration %v != schedule %v", strat, p.Total, s.TotalTime)
		}
	}
}

func TestFluxStepsMerge(t *testing.T) {
	// A long serial circuit keeps idle qubits parked: their flux sequence
	// must be a single merged step, not one step per slice.
	sys := phys.NewSystem(topology.SquareGrid(9), phys.DefaultParams(), 42)
	c := circuit.New(9)
	for i := 0; i < 10; i++ {
		c.X(0)
	}
	s, p := loweredSchedule(t, "ColorDynamic", c, sys)
	if err := p.Validate(s); err != nil {
		t.Fatal(err)
	}
	// Qubit 8 never moves: exactly one flux step.
	if n := len(p.Qubits[8].Flux); n != 1 {
		t.Fatalf("idle qubit has %d flux steps, want 1", n)
	}
	// Qubit 0 is driven but never retuned either.
	if n := len(p.Qubits[0].Flux); n != 1 {
		t.Fatalf("driven-but-parked qubit has %d flux steps, want 1", n)
	}
	if len(p.Qubits[0].Drives) != 10 {
		t.Fatalf("qubit 0 should have 10 drive pulses, got %d", len(p.Qubits[0].Drives))
	}
}

func TestCZOperatingPoint(t *testing.T) {
	sys := phys.NewSystem(topology.SquareGrid(4), phys.DefaultParams(), 42)
	c := circuit.New(4)
	c.CZ(0, 1)
	s, p := loweredSchedule(t, "ColorDynamic", c, sys)
	if err := p.Validate(s); err != nil {
		t.Fatal(err)
	}
	if len(p.Interactions) != 1 {
		t.Fatalf("want 1 interaction window, got %d", len(p.Interactions))
	}
	iw := p.Interactions[0]
	ec := sys.Transmon(1).EC
	if math.Abs((iw.FreqB-ec)-iw.FreqA) > 1e-9 {
		t.Fatalf("CZ pair not on the avoided crossing: %v vs %v", iw.FreqA, iw.FreqB-ec)
	}
}

func TestISwapOperatingPoint(t *testing.T) {
	sys := phys.NewSystem(topology.SquareGrid(4), phys.DefaultParams(), 42)
	c := circuit.New(4)
	c.ISwap(0, 1)
	s, p := loweredSchedule(t, "ColorDynamic", c, sys)
	if err := p.Validate(s); err != nil {
		t.Fatal(err)
	}
	iw := p.Interactions[0]
	if iw.FreqA != iw.FreqB {
		t.Fatalf("iSWAP pair detuned: %v vs %v", iw.FreqA, iw.FreqB)
	}
}

func TestVirtualGatesBecomeFrameUpdates(t *testing.T) {
	sys := phys.NewSystem(topology.SquareGrid(4), phys.DefaultParams(), 42)
	c := circuit.New(4)
	c.RZ(0, 0.5).S(1).H(2)
	s, p := loweredSchedule(t, "ColorDynamic", c, sys)
	if err := p.Validate(s); err != nil {
		t.Fatal(err)
	}
	if len(p.Qubits[0].Frames) != 1 || len(p.Qubits[1].Frames) != 1 {
		t.Fatal("RZ/S should lower to frame updates")
	}
	if len(p.Qubits[0].Drives) != 0 {
		t.Fatal("virtual gate must not produce a microwave drive")
	}
	if len(p.Qubits[2].Drives) != 1 {
		t.Fatal("H should produce a microwave drive")
	}
}

func TestRetuneAccounting(t *testing.T) {
	sys := phys.NewSystem(topology.SquareGrid(4), phys.DefaultParams(), 42)
	c := circuit.New(4)
	// The X layer between the CZs forces the pair back to parking, so both
	// active qubits retune at least twice.
	c.CZ(0, 1).X(0).X(1).CZ(0, 1)
	s, p := loweredSchedule(t, "ColorDynamic", c, sys)
	if err := p.Validate(s); err != nil {
		t.Fatal(err)
	}
	per := p.RetunesPerQubit()
	// Qubits 0 and 1 retune at least park->interaction->... steps; idle
	// qubits 2,3 never retune.
	if per[2] != 0 || per[3] != 0 {
		t.Fatalf("idle qubits retuned: %v", per)
	}
	if per[0] == 0 || per[1] == 0 {
		t.Fatalf("active qubits should retune: %v", per)
	}
	if p.TotalRampOverhead() <= 0 {
		t.Fatal("ramp overhead should be positive")
	}
}

func TestMaxFluxExcursionBounded(t *testing.T) {
	sys := phys.NewSystem(topology.SquareGrid(9), phys.DefaultParams(), 42)
	c := bench.XEB(sys.Device, 6, 1)
	s, p := loweredSchedule(t, "ColorDynamic", c, sys)
	if err := p.Validate(s); err != nil {
		t.Fatal(err)
	}
	if exc := p.MaxFluxExcursion(); exc <= 0 || exc > 0.5 {
		t.Fatalf("max flux excursion %v outside (0, 0.5]", exc)
	}
}

func TestLowerDeterministic(t *testing.T) {
	sys := phys.NewSystem(topology.SquareGrid(9), phys.DefaultParams(), 42)
	c := bench.XEB(sys.Device, 3, 3)
	_, p1 := loweredSchedule(t, "ColorDynamic", c, sys)
	_, p2 := loweredSchedule(t, "ColorDynamic", c, sys)
	if p1.Retunes != p2.Retunes || len(p1.Interactions) != len(p2.Interactions) {
		t.Fatal("lowering not deterministic")
	}
}
