package lint

import (
	"go/token"
	"strings"
)

// ignorePrefix is the single auditable suppression form:
//
//	//fastsc:ignore <analyzer> -- <reason>
//
// placed on the offending line or the line immediately above it. The
// reason is mandatory (a bare ignore is itself a finding), the analyzer
// name must be one of the suite's, and a directive that suppresses
// nothing is reported as unused — suppressions may not rot in place.
const ignorePrefix = "//fastsc:ignore"

// metaAnalyzer labels the findings the suppression machinery itself
// produces (malformed or unused directives). They are not suppressible.
const metaAnalyzer = "fastscvet"

type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Position // position of the directive comment
	used     bool
	bad      string // non-empty: why the directive is malformed
}

// parseIgnores scans every comment in pkg for ignore directives and
// indexes them by (file, line): a directive suppresses findings on its
// own line and on the line immediately following it.
func parseIgnores(pkg *Package, known map[string]bool) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				d := &ignoreDirective{pos: pkg.Fset.Position(c.Pos())}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				name, reason, ok := strings.Cut(rest, "--")
				d.analyzer = strings.TrimSpace(name)
				d.reason = strings.TrimSpace(reason)
				switch {
				case !ok || d.reason == "":
					d.bad = "suppression without a reason; use //fastsc:ignore <analyzer> -- <reason>"
				case d.analyzer == "":
					d.bad = "suppression without an analyzer name; use //fastsc:ignore <analyzer> -- <reason>"
				case !known[d.analyzer]:
					d.bad = "suppression names unknown analyzer " + quote(d.analyzer)
				}
				out = append(out, d)
			}
		}
	}
	return out
}

func quote(s string) string { return "\"" + s + "\"" }

// applyIgnores filters raw findings through the package's ignore
// directives: a finding is suppressed (and counted) when a well-formed
// directive for its analyzer sits on the same line or the line above in
// the same file. Malformed directives become meta-findings, as do
// directives left unused by an analyzer in ran (for analyzers that did
// not run, unused-ness is undecidable and the directive is left alone).
func applyIgnores(pkg *Package, known, ran map[string]bool, raw []Diagnostic) Result {
	directives := parseIgnores(pkg, known)
	type key struct {
		file string
		line int
		name string
	}
	index := map[key]*ignoreDirective{}
	for _, d := range directives {
		if d.bad != "" {
			continue
		}
		for _, line := range [2]int{d.pos.Line, d.pos.Line + 1} {
			k := key{d.pos.Filename, line, d.analyzer}
			if index[k] == nil {
				index[k] = d
			}
		}
	}

	var res Result
	for _, diag := range raw {
		if d := index[key{diag.Pos.Filename, diag.Pos.Line, diag.Analyzer}]; d != nil {
			d.used = true
			res.Suppressed = append(res.Suppressed, Suppression{
				Analyzer: diag.Analyzer,
				Pos:      diag.Pos,
				Reason:   d.reason,
			})
			continue
		}
		res.Diagnostics = append(res.Diagnostics, diag)
	}
	for _, d := range directives {
		switch {
		case d.bad != "":
			res.Diagnostics = append(res.Diagnostics, Diagnostic{
				Analyzer: metaAnalyzer, Pos: d.pos, Message: d.bad,
			})
		case !d.used && ran[d.analyzer]:
			res.Diagnostics = append(res.Diagnostics, Diagnostic{
				Analyzer: metaAnalyzer, Pos: d.pos,
				Message: "unused suppression for " + quote(d.analyzer) + "; the finding it silenced is gone — delete the directive",
			})
		}
	}
	return res
}
