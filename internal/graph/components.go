package graph

// Components returns the connected components of g, one sorted vertex list
// per component. The decomposition is canonical: within a component the
// vertices are ascending, and components are ordered by their smallest
// vertex (the BFS scans roots in ascending id order, so each root is its
// component's minimum). Callers that solve components independently — the
// per-slice component solver — rely on this order to merge results
// deterministically. An empty graph yields nil.
func (g *Graph) Components() [][]int {
	var comps [][]int
	visited := make([]bool, len(g.adj))
	var queue []int32
	for start := 0; start < len(g.adj); start++ {
		if !g.present[start] || visited[start] {
			continue
		}
		comp := []int{start}
		visited[start] = true
		queue = append(queue[:0], int32(start))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, u := range g.adj[v] {
				if !visited[u] {
					visited[u] = true
					comp = append(comp, int(u))
					queue = append(queue, u)
				}
			}
		}
		sortInts(comp)
		comps = append(comps, comp)
	}
	return comps
}
