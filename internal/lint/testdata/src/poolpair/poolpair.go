// Fixture for the poolpair analyzer: pool.Get bindings must reach a
// Put/Release on every path; intentional escapes carry the standard
// suppression with an escapes: reason.
package poolpair

import "sync"

type scratch struct{ buf []int }

var pool = sync.Pool{New: func() any { return new(scratch) }}

func (s *scratch) Release() { pool.Put(s) }

func leak() {
	s := pool.Get().(*scratch) // want `poolpair: s acquired from pool is never released`
	s.buf = s.buf[:0]
}

func deferredRelease() int {
	s := pool.Get().(*scratch)
	defer s.Release()
	return len(s.buf)
}

func putDirect() {
	s := pool.Get().(*scratch)
	pool.Put(s)
}

func earlyReturn(fail bool) error {
	s := pool.Get().(*scratch) // want `poolpair: s acquired from pool may leak on the return at`
	if fail {
		return errFixture
	}
	s.Release()
	return nil
}

func releaseBeforeEveryReturn(fail bool) error {
	s := pool.Get().(*scratch)
	if fail {
		s.Release()
		return errFixture
	}
	s.Release()
	return nil
}

func escapes() *scratch {
	//fastsc:ignore poolpair -- escapes: fixture constructor hands the pooled value to its caller
	s := pool.Get().(*scratch)
	return s
}

type fixtureError struct{}

func (fixtureError) Error() string { return "fixture" }

var errFixture error = fixtureError{}
