// Package pulse lowers a compiled schedule to device-level control
// sequences — the final "Low-level Control Pulses" stage of the paper's
// compilation flow (Fig 3). Each qubit receives a flux waveform (a series
// of flux setpoints realizing its frequency trajectory through the
// schedule) and a microwave drive sequence (one pulse per physical
// single-qubit gate); each two-qubit gate becomes an interaction window
// during which the pair is held on resonance.
//
// Operating points follow §II-B2: iSWAP-family gates bring both qubits to
// the interaction frequency (ω01A = ω01B); CZ gates bring the pair onto the
// |11⟩↔|20⟩ avoided crossing (ω12 of one qubit aligned with ω01 of the
// other, i.e. the first operand is parked one anharmonicity below).
package pulse

import (
	"fmt"
	"math"

	"fastsc/internal/circuit"
	"fastsc/internal/phys"
	"fastsc/internal/schedule"
)

// FluxStep holds one flux setpoint: the qubit sits at Phi (units of Φ₀)
// realizing frequency Freq from Start for Duration nanoseconds.
type FluxStep struct {
	Start, Duration float64
	Phi             float64
	Freq            float64
}

// DriveEvent is one microwave pulse implementing a physical single-qubit
// gate at the qubit's current frequency.
type DriveEvent struct {
	Start, Duration float64
	Freq            float64
	Gate            circuit.Gate
}

// FrameUpdate is a virtual Z-axis gate: a software phase-frame rotation
// with zero duration (Appendix C's fast Rz).
type FrameUpdate struct {
	Start float64
	Gate  circuit.Gate
}

// InteractionWindow is a two-qubit gate: the pair held at its operating
// points for the gate duration.
type InteractionWindow struct {
	Start, Duration float64
	Gate            circuit.Gate
	// FreqA and FreqB are the operating frequencies of Gate.Qubits[0] and
	// Gate.Qubits[1]; they differ by one anharmonicity for CZ.
	FreqA, FreqB float64
}

// QubitSequence is the full control program of one qubit.
type QubitSequence struct {
	Qubit  int
	Flux   []FluxStep
	Drives []DriveEvent
	Frames []FrameUpdate
}

// Program is the lowered control program for a whole schedule.
type Program struct {
	Qubits       []QubitSequence
	Interactions []InteractionWindow
	// Total is the program duration in ns.
	Total float64
	// Retunes counts flux setpoint changes across all qubits (each costs
	// the FluxRampTime already accounted in the schedule).
	Retunes int
}

// Lower translates a schedule into per-qubit control sequences.
func Lower(s *schedule.Schedule) (*Program, error) {
	n := s.System.Device.Qubits
	prog := &Program{Total: s.TotalTime}
	seqs := make([]QubitSequence, n)
	for q := range seqs {
		seqs[q].Qubit = q
	}

	// Per-slice frequency targets, adjusted for CZ operating points.
	for si := range s.Slices {
		sl := &s.Slices[si]
		target := make(map[int]float64, n)
		for q := 0; q < n; q++ {
			target[q] = sl.Freqs[q]
		}
		for _, ev := range sl.Gates {
			if ev.Gate.Kind == circuit.CZ {
				a, b := ev.Gate.Qubits[0], ev.Gate.Qubits[1]
				// Preferred leg: hold b at the label frequency and a one
				// anharmonicity of b below it, ω12(b) = ω01(a). If the gate
				// sits within one anharmonicity of a's range floor (naive
				// compilers do this), use the upper leg instead:
				// ω12(a) = ω01(b), i.e. a one anharmonicity of a above.
				down := ev.Freq - s.System.Transmon(b).EC
				up := ev.Freq + s.System.Transmon(a).EC
				switch {
				case s.System.Transmon(a).Reaches(down):
					target[a] = down
				case s.System.Transmon(a).Reaches(up):
					target[a] = up
				default:
					return nil, fmt.Errorf("pulse: slice %d: CZ %v has no reachable avoided-crossing leg (%.4f / %.4f GHz)",
						si, ev.Gate, down, up)
				}
			}
		}
		for q := 0; q < n; q++ {
			freq := target[q]
			phi, err := s.System.Transmon(q).FluxFor(freq)
			if err != nil {
				return nil, fmt.Errorf("pulse: slice %d qubit %d: %w", si, q, err)
			}
			appendFluxStep(&seqs[q], sl.Start, sl.Duration, phi, freq, &prog.Retunes)
		}
		for _, ev := range sl.Gates {
			switch {
			case ev.Gate.Kind.IsTwoQubit():
				a, b := ev.Gate.Qubits[0], ev.Gate.Qubits[1]
				prog.Interactions = append(prog.Interactions, InteractionWindow{
					Start: sl.Start, Duration: ev.Duration, Gate: ev.Gate,
					FreqA: target[a], FreqB: target[b],
				})
			case ev.Gate.Kind.IsVirtual():
				q := ev.Gate.Qubits[0]
				seqs[q].Frames = append(seqs[q].Frames, FrameUpdate{Start: sl.Start, Gate: ev.Gate})
			default:
				q := ev.Gate.Qubits[0]
				seqs[q].Drives = append(seqs[q].Drives, DriveEvent{
					Start: sl.Start, Duration: ev.Duration, Freq: target[q], Gate: ev.Gate,
				})
			}
		}
	}
	prog.Qubits = seqs
	return prog, nil
}

// appendFluxStep extends the previous step when the setpoint is unchanged,
// otherwise opens a new one (counting a retune).
func appendFluxStep(seq *QubitSequence, start, dur, phi, freq float64, retunes *int) {
	if n := len(seq.Flux); n > 0 {
		last := &seq.Flux[n-1]
		if math.Abs(last.Phi-phi) < 1e-12 {
			last.Duration = start + dur - last.Start
			return
		}
	}
	if len(seq.Flux) > 0 {
		*retunes++
	}
	seq.Flux = append(seq.Flux, FluxStep{Start: start, Duration: dur, Phi: phi, Freq: freq})
}

// Validate checks program invariants: flux setpoints within the physical
// range [0, 0.5], contiguous per-qubit flux coverage of [0, Total], drives
// inside their flux windows, and CZ windows on the |11⟩↔|20⟩ resonance.
func (p *Program) Validate(s *schedule.Schedule) error {
	for _, seq := range p.Qubits {
		cursor := 0.0
		for i, st := range p.Qubits[seq.Qubit].Flux {
			if st.Phi < -1e-12 || st.Phi > 0.5+1e-12 {
				return fmt.Errorf("pulse: qubit %d step %d flux %v outside [0, 0.5]", seq.Qubit, i, st.Phi)
			}
			if math.Abs(st.Start-cursor) > 1e-6 {
				return fmt.Errorf("pulse: qubit %d step %d starts at %v, want %v", seq.Qubit, i, st.Start, cursor)
			}
			cursor = st.Start + st.Duration
		}
		if len(seq.Flux) > 0 && math.Abs(cursor-p.Total) > 1e-6 {
			return fmt.Errorf("pulse: qubit %d flux coverage ends at %v, want %v", seq.Qubit, cursor, p.Total)
		}
		for _, d := range seq.Drives {
			if d.Start < 0 || d.Start+d.Duration > p.Total+1e-6 {
				return fmt.Errorf("pulse: qubit %d drive outside program", seq.Qubit)
			}
		}
	}
	for _, iw := range p.Interactions {
		switch iw.Gate.Kind {
		case circuit.CZ:
			a, b := iw.Gate.Qubits[0], iw.Gate.Qubits[1]
			ecA := s.System.Transmon(a).EC
			ecB := s.System.Transmon(b).EC
			// Either leg of the |11⟩↔|20⟩ crossing is acceptable:
			// ω12(b) = ω01(a) (lower leg) or ω12(a) = ω01(b) (upper leg).
			lower := math.Abs((iw.FreqB - ecB) - iw.FreqA)
			upper := math.Abs((iw.FreqA - ecA) - iw.FreqB)
			if lower > 1e-9 && upper > 1e-9 {
				return fmt.Errorf("pulse: CZ window %v off the |11⟩↔|20⟩ resonance: %v vs %v",
					iw.Gate, iw.FreqA, iw.FreqB)
			}
		case circuit.ISwap, circuit.SqrtISwap:
			if math.Abs(iw.FreqA-iw.FreqB) > 1e-9 {
				return fmt.Errorf("pulse: exchange window %v detuned: %v vs %v", iw.Gate, iw.FreqA, iw.FreqB)
			}
		}
	}
	return nil
}

// MaxFluxExcursion returns the largest flux swing any qubit performs
// between consecutive setpoints — a proxy for control-line slew demands.
func (p *Program) MaxFluxExcursion() float64 {
	max := 0.0
	for _, seq := range p.Qubits {
		for i := 1; i < len(seq.Flux); i++ {
			if d := math.Abs(seq.Flux[i].Phi - seq.Flux[i-1].Phi); d > max {
				max = d
			}
		}
	}
	return max
}

// RetunesPerQubit returns the number of flux setpoint changes per qubit.
func (p *Program) RetunesPerQubit() []int {
	out := make([]int, len(p.Qubits))
	for q, seq := range p.Qubits {
		if len(seq.Flux) > 0 {
			out[q] = len(seq.Flux) - 1
		}
	}
	return out
}

// TotalRampOverhead estimates the cumulative retuning time (Appendix C).
func (p *Program) TotalRampOverhead() float64 {
	return float64(p.Retunes) * phys.FluxRampTime
}
