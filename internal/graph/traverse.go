package graph

// Unreachable is the distance reported by BFS for vertices that cannot be
// reached from the source.
const Unreachable = -1

// BFSDistances returns the unweighted shortest-path distance from src to
// every vertex slot of g: the result has length Cap() and is indexed by
// vertex id. Vertices not reachable from src (including absent ids) hold
// Unreachable.
func (g *Graph) BFSDistances(src int) []int {
	dist := make([]int, g.Cap())
	for i := range dist {
		dist[i] = Unreachable
	}
	if !g.HasNode(src) {
		return dist
	}
	dist[src] = 0
	queue := make([]int32, 1, g.NumNodes())
	queue[0] = int32(src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		for _, u := range g.adj[v] {
			if dist[u] == Unreachable {
				dist[u] = dv + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// BoundedBFS fills dist (length >= g.Cap(), pre-set to Unreachable on every
// slot it will touch) with distances from src up to maxDist hops, appending
// every reached vertex (src included) to touched. queue is scratch; both
// slices grow as needed and are returned for reuse. Callers reset the
// touched slots to Unreachable afterwards — that is O(reach), not O(n),
// which is what makes distance-bounded sweeps (the crosstalk-graph build)
// linear in reached volume rather than graph size.
func (g *Graph) BoundedBFS(src, maxDist int, dist []int32, queue, touched []int32) (q, t []int32) {
	queue = append(queue[:0], int32(src))
	touched = append(touched, int32(src))
	dist[src] = 0
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		if int(dv) >= maxDist {
			continue
		}
		for _, u := range g.adj[v] {
			if dist[u] == Unreachable {
				dist[u] = dv + 1
				queue = append(queue, u)
				touched = append(touched, u)
			}
		}
	}
	return queue, touched
}

// Distance returns the unweighted shortest-path distance between a and b,
// or Unreachable if no path exists.
func (g *Graph) Distance(a, b int) int {
	if !g.HasNode(a) || !g.HasNode(b) {
		return Unreachable
	}
	if a == b {
		return 0
	}
	dist := make([]int, g.Cap())
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[a] = 0
	queue := make([]int32, 1, g.NumNodes())
	queue[0] = int32(a)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, u := range g.adj[v] {
			if dist[u] == Unreachable {
				dist[u] = dist[v] + 1
				if int(u) == b {
					return dist[u]
				}
				queue = append(queue, u)
			}
		}
	}
	return Unreachable
}

// ShortestPath returns one shortest path from a to b inclusive of both
// endpoints, or nil if b is unreachable from a.
func (g *Graph) ShortestPath(a, b int) []int {
	if !g.HasNode(a) || !g.HasNode(b) {
		return nil
	}
	if a == b {
		return []int{a}
	}
	const unseen = int32(-2)
	prev := make([]int32, g.Cap())
	for i := range prev {
		prev[i] = unseen
	}
	prev[a] = int32(a)
	queue := make([]int32, 1, g.NumNodes())
	queue[0] = int32(a)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		// Ascending neighbor order keeps routed circuits stable.
		for _, u := range g.adj[v] {
			if prev[u] != unseen {
				continue
			}
			prev[u] = v
			if int(u) == b {
				return reconstruct(prev, a, b)
			}
			queue = append(queue, u)
		}
	}
	return nil
}

func reconstruct(prev []int32, a, b int) []int {
	n := 1
	for v := b; v != a; v = int(prev[v]) {
		n++
	}
	path := make([]int, n)
	for i, v := n-1, b; ; i, v = i-1, int(prev[v]) {
		path[i] = v
		if v == a {
			break
		}
	}
	return path
}

// Connected reports whether g is connected (the empty graph counts as
// connected).
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	first := -1
	for v := 0; v < g.Cap(); v++ {
		if g.HasNode(v) {
			first = v
			break
		}
	}
	dist := g.BFSDistances(first)
	for v, d := range dist {
		if g.HasNode(v) && d == Unreachable {
			return false
		}
	}
	return true
}

// DistanceMatrix is the flat all-pairs BFS distance table of a graph:
// row-major n×n int32 storage indexed by vertex id.
type DistanceMatrix struct {
	stride int
	d      []int32
}

// At returns the distance from u to v (Unreachable when either id is
// absent or no path exists).
func (m *DistanceMatrix) At(u, v int) int {
	if u < 0 || v < 0 || u >= m.stride || v >= m.stride {
		return Unreachable
	}
	return int(m.d[u*m.stride+v])
}

// Stride returns the matrix dimension (the Cap() of the graph it was built
// from).
func (m *DistanceMatrix) Stride() int { return m.stride }

// Distances returns the graph's all-pairs distance matrix, built lazily on
// first use and cached until the next mutation — the same discipline as
// EdgeID. On an immutable (fully built) graph it is safe to call
// concurrently, and repeated callers (the routing hot path resolves every
// SWAP against it) share one allocation instead of re-running n BFS sweeps.
func (g *Graph) Distances() *DistanceMatrix {
	if d := g.dists.Load(); d != nil {
		return d
	}
	d := g.AllPairsDistances()
	g.dists.Store(d)
	return d
}

// AllPairsDistances computes BFS distances from every vertex into one flat
// Cap()×Cap() matrix, reusing a single queue across sources. Rows of absent
// vertices are all Unreachable.
func (g *Graph) AllPairsDistances() *DistanceMatrix {
	n := g.Cap()
	m := &DistanceMatrix{stride: n, d: make([]int32, n*n)}
	for i := range m.d {
		m.d[i] = Unreachable
	}
	queue := make([]int32, 0, g.NumNodes())
	for src := 0; src < n; src++ {
		if !g.HasNode(src) {
			continue
		}
		row := m.d[src*n : (src+1)*n]
		row[src] = 0
		queue = append(queue[:0], int32(src))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			dv := row[v]
			for _, u := range g.adj[v] {
				if row[u] == Unreachable {
					row[u] = dv + 1
					queue = append(queue, u)
				}
			}
		}
	}
	return m
}

// EdgeDistance returns the distance between two edges of g, defined (as in
// the paper, §IV-C) as the length of the shortest path connecting the two
// edges: 0 if they share a vertex, otherwise the minimum vertex distance
// between any pair of their endpoints. Returns Unreachable when the edges
// lie in different components.
func (g *Graph) EdgeDistance(e, f Edge) int {
	if e.SharesVertex(f) {
		return 0
	}
	best := Unreachable
	for _, a := range [2]int{e.U, e.V} {
		dist := g.BFSDistances(a)
		for _, b := range [2]int{f.U, f.V} {
			if b >= len(dist) {
				continue
			}
			if d := dist[b]; d != Unreachable && (best == Unreachable || d < best) {
				best = d
			}
		}
	}
	return best
}
