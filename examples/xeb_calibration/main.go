// XEB calibration study: the paper's motivating workload. Sweeps the number
// of XEB cycles on a 4×4 chip and reports how each strategy's estimated
// success decays — the per-cycle decay rate is the "cycle fidelity" an
// experimentalist would extract from cross-entropy benchmarking.
//
// Run with: go run ./examples/xeb_calibration
package main

import (
	"fmt"
	"log"
	"math"

	"fastsc/internal/bench"
	"fastsc/internal/core"
	"fastsc/internal/phys"
	"fastsc/internal/topology"
)

func main() {
	dev := topology.Grid(4, 4)
	sys := phys.NewSystem(dev, phys.DefaultParams(), 42)
	cycleCounts := []int{2, 4, 6, 8, 10, 12, 14}

	fmt.Printf("XEB on %s: success vs cycles\n\n", dev.Name)
	fmt.Printf("%-8s", "cycles")
	for _, s := range core.Strategies() {
		fmt.Printf("  %-13s", s)
	}
	fmt.Println()

	decay := map[string][]float64{}
	for _, p := range cycleCounts {
		circ := bench.XEB(dev, p, 7)
		fmt.Printf("%-8d", p)
		for _, s := range core.Strategies() {
			res, err := core.Compile(circ, sys, s, core.Config{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-13.4g", res.Report.Success)
			decay[s] = append(decay[s], res.Report.Success)
		}
		fmt.Println()
	}

	fmt.Println("\nfitted per-cycle fidelity (exp decay fit):")
	for _, s := range core.Strategies() {
		fmt.Printf("  %-13s %.4f\n", s, fitPerCycle(cycleCounts, decay[s]))
	}
	fmt.Println("\nhigher per-cycle fidelity means more usable circuit depth before")
	fmt.Println("the signal drowns; ColorDynamic approaches the tunable-coupler bound.")
}

// fitPerCycle least-squares fits log(success) = a + p·log(f) and returns f.
func fitPerCycle(cycles []int, success []float64) float64 {
	var sx, sy, sxx, sxy float64
	n := 0.0
	for i, p := range cycles {
		if success[i] <= 0 {
			continue
		}
		x, y := float64(p), math.Log(success[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n < 2 {
		return 0
	}
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	return math.Exp(slope)
}
