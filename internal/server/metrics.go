package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"fastsc/internal/faultpoint"
)

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (text/plain version 0.0.4), without depending on a client
// library. Cache counters are the process-wide totals since start (or
// since snapshot restore for entry counts); per-request attribution is
// carried in each batch's done line instead.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder

	writeHelp := func(name, help, typ string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	stats := s.base.Cache.StatsByRegion()
	regions := make([]string, 0, len(stats))
	for region := range stats {
		regions = append(regions, region)
	}
	sort.Strings(regions)

	writeHelp("fastscd_cache_hits_total", "Memoized lookups served from the compile cache, by region.", "counter")
	for _, region := range regions {
		fmt.Fprintf(&b, "fastscd_cache_hits_total{region=%q} %d\n", region, stats[region].Hits)
	}
	writeHelp("fastscd_cache_warm_hits_total", "Memoized lookups served by the read-only warm set (and promoted), by region.", "counter")
	for _, region := range regions {
		fmt.Fprintf(&b, "fastscd_cache_warm_hits_total{region=%q} %d\n", region, stats[region].WarmHits)
	}
	writeHelp("fastscd_cache_misses_total", "Memoized lookups that ran their compute function, by region.", "counter")
	for _, region := range regions {
		fmt.Fprintf(&b, "fastscd_cache_misses_total{region=%q} %d\n", region, stats[region].Misses)
	}
	writeHelp("fastscd_cache_evictions_total", "Cache entries evicted under capacity pressure, by region.", "counter")
	for _, region := range regions {
		fmt.Fprintf(&b, "fastscd_cache_evictions_total{region=%q} %d\n", region, stats[region].Evictions)
	}
	writeHelp("fastscd_cache_entries", "Entries currently resident in the compile cache.", "gauge")
	fmt.Fprintf(&b, "fastscd_cache_entries %d\n", s.base.Cache.Len())
	writeHelp("fastscd_snapshot_restored_entries", "Cache entries restored from the warm-start snapshot at boot.", "gauge")
	fmt.Fprintf(&b, "fastscd_snapshot_restored_entries %d\n", s.snapshotRestored.Load())
	if degraded := s.snapshotDegraded(); len(degraded) > 0 {
		reasons := make([]string, 0, len(degraded))
		for reason := range degraded {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		writeHelp("fastscd_snapshot_degraded_total", "Snapshot or warm-set loads that degraded to a cold start, by reason.", "counter")
		for _, reason := range reasons {
			fmt.Fprintf(&b, "fastscd_snapshot_degraded_total{reason=%q} %d\n", reason, degraded[reason])
		}
	}
	if ws := s.base.Cache.WarmSet(); ws != nil {
		writeHelp("fastscd_warmset_entries", "Entries resident in the attached read-only warm set.", "gauge")
		fmt.Fprintf(&b, "fastscd_warmset_entries %d\n", ws.Len())
	}

	writeHelp("fastscd_requests_total", "HTTP requests accepted for decoding, by endpoint.", "counter")
	fmt.Fprintf(&b, "fastscd_requests_total{endpoint=\"compile\"} %d\n", s.mStreams.Load())
	fmt.Fprintf(&b, "fastscd_requests_total{endpoint=\"submit\"} %d\n", s.mSubmits.Load())
	fmt.Fprintf(&b, "fastscd_requests_total{endpoint=\"poll\"} %d\n", s.mPolls.Load())

	writeHelp("fastscd_batches_rejected_total", "Batches refused admission, by reason.", "counter")
	fmt.Fprintf(&b, "fastscd_batches_rejected_total{reason=\"queue_full\"} %d\n", s.mRejectQueue.Load())
	fmt.Fprintf(&b, "fastscd_batches_rejected_total{reason=\"draining\"} %d\n", s.mRejectDrain.Load())

	writeHelp("fastscd_batches_admitted", "Batches admitted and not yet finished (running + queued).", "gauge")
	fmt.Fprintf(&b, "fastscd_batches_admitted %d\n", s.admitted.Load())
	writeHelp("fastscd_batches_running", "Batches currently holding a compile slot.", "gauge")
	fmt.Fprintf(&b, "fastscd_batches_running %d\n", s.running.Load())
	writeHelp("fastscd_queue_depth", "Batches waiting in the admission queue for a compile slot.", "gauge")
	fmt.Fprintf(&b, "fastscd_queue_depth %d\n", s.adm.depth())
	writeHelp("fastscd_batches_done_total", "Batches that ran to completion.", "counter")
	fmt.Fprintf(&b, "fastscd_batches_done_total %d\n", s.mBatchesDone.Load())
	writeHelp("fastscd_batches_shed_total", "Queued batches evicted to make room for higher-priority work.", "counter")
	fmt.Fprintf(&b, "fastscd_batches_shed_total %d\n", s.mShed.Load())
	writeHelp("fastscd_batches_expired_total", "Batches whose deadline passed before or during execution.", "counter")
	fmt.Fprintf(&b, "fastscd_batches_expired_total %d\n", s.mExpired.Load())
	writeHelp("fastscd_jobs_total", "Compile jobs finished, successful or not.", "counter")
	fmt.Fprintf(&b, "fastscd_jobs_total %d\n", s.mJobs.Load())
	writeHelp("fastscd_jobs_failed_total", "Compile jobs that finished with an error.", "counter")
	fmt.Fprintf(&b, "fastscd_jobs_failed_total %d\n", s.mJobsFailed.Load())
	writeHelp("fastscd_job_panics_total", "Compile jobs that panicked and were recovered per job.", "counter")
	fmt.Fprintf(&b, "fastscd_job_panics_total %d\n", s.mJobPanics.Load())

	s.hBatchSeconds.writeTo(&b, "fastscd_batch_duration_seconds",
		"Wall time of finished batches, admission wait included.")
	s.hWaitSeconds.writeTo(&b, "fastscd_admission_wait_seconds",
		"Time batches spent waiting for a compile slot.")

	writeHelp("fastscd_stored_batches", "Async batches retained for polling.", "gauge")
	fmt.Fprintf(&b, "fastscd_stored_batches %d\n", s.store.len())
	writeHelp("fastscd_store_epoch", "Batch-store generation: 1 fresh, incremented by every recovery.", "gauge")
	fmt.Fprintf(&b, "fastscd_store_epoch %d\n", s.store.Epoch())
	restored, interrupted, saveErrs := s.store.RecoveryStats()
	writeHelp("fastscd_store_restored_batches", "Batch records restored from the durable store at boot.", "gauge")
	fmt.Fprintf(&b, "fastscd_store_restored_batches %d\n", restored)
	writeHelp("fastscd_store_interrupted_batches", "Restored batches that were in flight when the previous process died.", "gauge")
	fmt.Fprintf(&b, "fastscd_store_interrupted_batches %d\n", interrupted)
	writeHelp("fastscd_store_save_errors_total", "Batch-store persists that failed (store kept serving from memory).", "counter")
	fmt.Fprintf(&b, "fastscd_store_save_errors_total %d\n", saveErrs)

	if fired := faultpoint.FiredAll(); len(fired) > 0 {
		names := make([]string, 0, len(fired))
		for name := range fired {
			names = append(names, name)
		}
		sort.Strings(names)
		writeHelp("fastscd_faultpoints_fired_total", "Armed fault-point firings, by point name.", "counter")
		for _, name := range names {
			fmt.Fprintf(&b, "fastscd_faultpoints_fired_total{point=%q} %d\n", name, fired[name])
		}
	}
	writeHelp("fastscd_draining", "1 while the server refuses new submissions ahead of shutdown.", "gauge")
	draining := 0
	if s.Draining() {
		draining = 1
	}
	fmt.Fprintf(&b, "fastscd_draining %d\n", draining)
	writeHelp("fastscd_restoring", "1 while the background snapshot restore is still warming the cache.", "gauge")
	restoring := 0
	if s.Restoring() {
		restoring = 1
	}
	fmt.Fprintf(&b, "fastscd_restoring %d\n", restoring)
	writeHelp("fastscd_uptime_seconds", "Seconds since the server was created.", "gauge")
	fmt.Fprintf(&b, "fastscd_uptime_seconds %.0f\n", time.Since(s.started).Seconds())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
