package expt

import (
	"fmt"

	"fastsc/internal/compile"
	"fastsc/internal/core"
	"fastsc/internal/mapping"
)

// ExtRouterResult carries the router-comparison extension study: the
// greedy shortest-path router versus the SABRE-style lookahead router on
// the map-heavy workloads.
type ExtRouterResult struct {
	Table *Table
	// Swaps[benchmark][router] is the routing SWAP count.
	Swaps map[string]map[string]int
	// Depth[benchmark][router] is the compiled schedule depth (slices)
	// under ColorDynamic.
	Depth map[string]map[string]int
}

// extRouterSuite lists the workloads whose interaction graphs do not embed
// in the mesh: QAOA's random MAX-CUT edges (the router stress test of the
// related mapping literature), BV's star-shaped CNOTs, and a dense-chip
// XEB control that needs no routing at all.
func extRouterSuite() []Benchmark {
	return []Benchmark{
		qaoaBench(4),
		qaoaBench(9),
		qaoaBench(16),
		bvBench(9),
		bvBench(16),
		qganBench(16),
		xebBench(16, 10),
	}
}

// extRouters are the routing algorithms under comparison.
var extRouters = []string{mapping.RouterGreedy, mapping.RouterLookahead}

// ExtRouterComparison runs the routing extension experiment: every
// extRouterSuite workload is compiled with ColorDynamic under each router,
// and the inserted SWAP counts and resulting schedule depths are
// tabulated. The lookahead router searches SWAPs jointly for the blocked
// dependency frontier (plus a decaying extended window), so it should
// insert markedly fewer SWAPs than the per-gate greedy walk on the random
// QAOA interaction graphs.
func ExtRouterComparison(ctx *compile.Context) (*ExtRouterResult, error) {
	suite := extRouterSuite()
	var jobs []core.BatchJob
	for _, b := range suite {
		sys := GridSystem(b.Qubits)
		circ := b.Circuit(sys.Device)
		for _, r := range extRouters {
			cfg := jobConfig(b)
			cfg.Router = mapping.RouterConfig{Algorithm: r}
			jobs = append(jobs, core.BatchJob{
				Key:      b.Name + "/" + r,
				Circuit:  circ,
				System:   sys,
				Strategy: core.ColorDynamic,
				Config:   cfg,
			})
		}
	}
	results, err := core.BatchCollect(ctx, jobs)
	if err != nil {
		return nil, fmt.Errorf("ext-routers: %w", err)
	}

	res := &ExtRouterResult{
		Swaps: map[string]map[string]int{},
		Depth: map[string]map[string]int{},
	}
	t := &Table{
		ID:    "ext-routers",
		Title: "Routing extension: greedy shortest-path vs SABRE-style lookahead router",
		Columns: []string{"benchmark",
			"greedy swaps", "lookahead swaps", "swap ratio",
			"greedy depth", "lookahead depth"},
	}
	for _, b := range suite {
		res.Swaps[b.Name] = map[string]int{}
		res.Depth[b.Name] = map[string]int{}
		for _, r := range extRouters {
			out := results[b.Name+"/"+r]
			res.Swaps[b.Name][r] = out.SwapCount
			res.Depth[b.Name][r] = out.Schedule.Depth()
		}
		g, l := res.Swaps[b.Name][mapping.RouterGreedy], res.Swaps[b.Name][mapping.RouterLookahead]
		ratio := "n/a"
		if g > 0 {
			ratio = fmt.Sprintf("%.2f", float64(l)/float64(g))
		}
		t.Rows = append(t.Rows, []string{
			b.Name,
			fmt.Sprintf("%d", g), fmt.Sprintf("%d", l), ratio,
			fmt.Sprintf("%d", res.Depth[b.Name][mapping.RouterGreedy]),
			fmt.Sprintf("%d", res.Depth[b.Name][mapping.RouterLookahead]),
		})
	}
	t.Notes = append(t.Notes,
		"lookahead scores candidate SWAPs over the blocked frontier plus a decaying extended window (SABRE-style)",
		"fewer SWAPs mean fewer two-qubit gates for the scheduler to separate spectrally")
	res.Table = t
	return res, nil
}
