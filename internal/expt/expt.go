// Package expt regenerates every table and figure of the paper's
// evaluation (§VI–§VII and the appendices). Each Fig*/Table* function
// returns a Table of the same rows/series the paper plots; cmd/experiments
// prints them and bench_test.go drives them as benchmarks.
package expt

import (
	"fmt"
	"strings"

	"fastsc/internal/circuit"
	"fastsc/internal/core"
	"fastsc/internal/mapping"
	"fastsc/internal/phys"
	"fastsc/internal/topology"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string // e.g. "fig9"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// DeviceSeed is the fixed chip-sampling seed used across experiments so
// that every strategy sees the same fabricated device.
const DeviceSeed = 42

// GridSystem returns the standard n-qubit square-grid system.
func GridSystem(n int) *phys.System {
	return phys.NewSystem(topology.SquareGrid(n), phys.DefaultParams(), DeviceSeed)
}

// SystemFor returns a system over an arbitrary device.
func SystemFor(dev *topology.Device) *phys.System {
	return phys.NewSystem(dev, phys.DefaultParams(), DeviceSeed)
}

// RoutingOptions is the layout/routing configuration applied to every
// experiment job (cmd/experiments' -router/-placement flags set Routing).
// The zero value reproduces the paper: the greedy shortest-path router and
// each benchmark's natural placement.
type RoutingOptions struct {
	// Router selects and tunes the routing algorithm for every job.
	Router mapping.RouterConfig
	// Placement, when non-empty, overrides every benchmark's natural
	// placement (identity for most, snake for the chain workloads).
	Placement core.Placement
}

// Routing is the process-wide routing configuration the experiment
// builders fold into every job via jobConfig.
var Routing RoutingOptions

// routingConfig returns a core.Config carrying the current Routing
// configuration over a benchmark's natural placement.
func routingConfig(natural core.Placement) core.Config {
	cfg := core.Config{Placement: natural, Router: Routing.Router}
	if Routing.Placement != "" {
		cfg.Placement = Routing.Placement
	}
	return cfg
}

// jobConfig returns the core.Config of one benchmark job under the current
// Routing configuration.
func jobConfig(b Benchmark) core.Config { return routingConfig(b.Placement) }

// Benchmark describes one evaluation workload (a Table II entry instance).
type Benchmark struct {
	Name      string
	Qubits    int
	Placement core.Placement
	// Build generates the logical circuit for the given device. Most
	// generators ignore the device; XEB is generated on it directly.
	Build func(dev *topology.Device, seed int64) *circuit.Circuit
}

// Circuit builds the benchmark circuit for a device.
func (b Benchmark) Circuit(dev *topology.Device) *circuit.Circuit {
	return b.Build(dev, benchSeed)
}

// benchSeed fixes the workload instances (secret strings, random graphs,
// variational angles, XEB gate draws).
const benchSeed = 7

func fmtG(v float64) string {
	if v != 0 && (v < 1e-3 || v >= 1e4) {
		return fmt.Sprintf("%.3e", v)
	}
	return fmt.Sprintf("%.4f", v)
}
