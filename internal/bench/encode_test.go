package bench

import (
	"testing"

	"fastsc/internal/circuit"
	"fastsc/internal/topology"
)

// TestWorkloadsCanonicalRoundTrip runs the content-addressing property —
// encode→decode→re-sign equals the original signature — over every
// workload generator, so the canonical encoding is proven against the
// exact circuits the warm set will carry (BV's star CNOTs, QAOA's random
// parametric layers, Ising's Trotter steps, QGAN's entangling ladders,
// XEB's supremacy-style tilings), not just synthetic random circuits.
func TestWorkloadsCanonicalRoundTrip(t *testing.T) {
	dev := topology.SquareGrid(4)
	workloads := map[string]*circuit.Circuit{
		"bv":    BV(12, 7),
		"qaoa":  QAOA(10, 11),
		"ising": Ising(9, 4),
		"qgan":  QGAN(8, 3, 13),
		"xeb":   XEB(dev, 6, 17),
	}
	for name, c := range workloads {
		blob := c.EncodeCanonical()
		got, err := circuit.DecodeCanonical(blob)
		if err != nil {
			t.Errorf("%s: decode: %v", name, err)
			continue
		}
		if got.Signature() != c.Signature() {
			t.Errorf("%s: decoded signature %s != original %s", name, got.Signature(), c.Signature())
		}
	}
}
