package lint_test

import (
	"strings"
	"testing"

	"fastsc/internal/lint"
	"fastsc/internal/lint/linttest"
)

func TestPoolPairFixture(t *testing.T) {
	res := linttest.Run(t, "poolpair", lint.PoolPairAnalyzer)
	// The escapes() case must come through as one honored, audited
	// suppression, not as a silent hole.
	if len(res.Suppressed) != 1 {
		t.Fatalf("poolpair fixture honored %d suppressions, want 1: %+v", len(res.Suppressed), res.Suppressed)
	}
	s := res.Suppressed[0]
	if s.Analyzer != "poolpair" || !strings.HasPrefix(s.Reason, "escapes:") {
		t.Errorf("suppression = %+v, want analyzer poolpair with an escapes: reason", s)
	}
}
