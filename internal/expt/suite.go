package expt

import (
	"fmt"

	"fastsc/internal/bench"
	"fastsc/internal/circuit"
	"fastsc/internal/core"
	"fastsc/internal/topology"
)

// Suite returns the Fig 9 benchmark list: the Table II generators at the
// paper's sizes. qaoa(16) and ising(16) are excluded exactly as the paper
// excludes them (estimated success below 10⁻⁴ for every strategy).
func Suite() []Benchmark {
	var out []Benchmark
	for _, n := range []int{4, 9, 16} {
		out = append(out, bvBench(n))
	}
	for _, n := range []int{4, 9} {
		out = append(out, qaoaBench(n))
	}
	out = append(out, isingBench(4))
	for _, n := range []int{4, 9, 16, 25} {
		out = append(out, qganBench(n))
	}
	for _, p := range []int{5, 10, 15} {
		for _, n := range []int{4, 9, 16, 25} {
			out = append(out, xebBench(n, p))
		}
	}
	return out
}

func bvBench(n int) Benchmark {
	return Benchmark{
		Name:   fmt.Sprintf("bv(%d)", n),
		Qubits: n,
		Build: func(dev *topology.Device, seed int64) *circuit.Circuit {
			return bench.BV(n, seed)
		},
	}
}

func qaoaBench(n int) Benchmark {
	return Benchmark{
		Name:   fmt.Sprintf("qaoa(%d)", n),
		Qubits: n,
		Build: func(dev *topology.Device, seed int64) *circuit.Circuit {
			return bench.QAOA(n, seed)
		},
	}
}

func isingBench(n int) Benchmark {
	return Benchmark{
		Name:      fmt.Sprintf("ising(%d)", n),
		Qubits:    n,
		Placement: core.PlaceSnake,
		Build: func(dev *topology.Device, seed int64) *circuit.Circuit {
			return bench.Ising(n, 0)
		},
	}
}

func qganBench(n int) Benchmark {
	return Benchmark{
		Name:      fmt.Sprintf("qgan(%d)", n),
		Qubits:    n,
		Placement: core.PlaceSnake,
		Build: func(dev *topology.Device, seed int64) *circuit.Circuit {
			return bench.QGAN(n, 0, seed)
		},
	}
}

func xebBench(n, p int) Benchmark {
	return Benchmark{
		Name:   fmt.Sprintf("xeb(%d,%d)", n, p),
		Qubits: n,
		Build: func(dev *topology.Device, seed int64) *circuit.Circuit {
			return bench.XEB(dev, p, seed)
		},
	}
}

// XEBSuite returns the Fig 10 workload list (XEB only, all sizes × cycles).
func XEBSuite() []Benchmark {
	var out []Benchmark
	for _, p := range []int{5, 10, 15} {
		for _, n := range []int{4, 9, 16, 25} {
			out = append(out, xebBench(n, p))
		}
	}
	return out
}
