// Package lint implements fastscvet, fastsc's repo-specific static
// analysis suite: five analyzers that enforce, at vet time, the
// load-bearing invariants the compiler's correctness and performance
// depend on and that would otherwise be guarded only by runtime tests
// and reviewer memory:
//
//   - maporder: no map iteration may feed an order-sensitive sink
//     (appends, writers, hashes) without sorting — the class of
//     nondeterminism bug that once made fig13's express-XEB rows depend
//     on Go map iteration order.
//   - hotalloc: functions annotated //fastsc:hotpath must stay free of
//     map allocation, fmt calls and implicit interface boxing.
//   - poolpair: values acquired from a sync.Pool must reach a Put/Release
//     on every path, or carry an explicit escape suppression.
//   - keyfields: structs hashed into compile cache keys must have every
//     field enumerated in the key schema table (keyschema.go), the
//     compile-time twin of the reflection guard in compile/key_test.go.
//   - ctxflow: a function that receives a context.Context must thread it
//     (no context.Background/TODO, no calling X when XCtx exists).
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the suite can migrate onto the real framework the
// day the dependency is available; this repo vendors nothing and builds
// offline, so the driver (cmd/fastscvet), the package loader (load.go),
// the go vet -vettool unitchecker protocol (unitchecker.go) and the
// fixture test harness (linttest) are small stdlib-only reimplementations
// of the x/tools surface they need.
//
// Findings are suppressed with a single auditable form, placed on the
// offending line or the line immediately above:
//
//	//fastsc:ignore <analyzer> -- <reason>
//
// A suppression without a reason, naming an unknown analyzer, or
// matching no finding is itself a finding; the driver counts and prints
// every suppression it honors, so the audit trail is part of every lint
// run.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one analysis: a name, prose documentation, and a
// Run function reporting findings on one package through its Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Pass connects an Analyzer to the single package being analyzed. The
// analyzer reads the syntax trees and type information and reports
// findings via Reportf; it must not retain the Pass after Run returns.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if not found.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object denoted by identifier id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Package is one loaded, type-checked package: the unit of analysis.
// load.go builds them from `go list` output, unitchecker.go from a go vet
// config, and linttest from fixture directories.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map the analyzers read.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// A Suppression is one honored //fastsc:ignore directive: the finding it
// silenced plus the audit reason. The driver counts and prints these.
type Suppression struct {
	Analyzer string
	Pos      token.Position // position of the suppressed finding
	Reason   string
}

// A Result is the outcome of analyzing one package: the findings to
// report (including meta-findings about malformed or unused suppressions)
// and the suppressions that were honored.
type Result struct {
	Diagnostics []Diagnostic
	Suppressed  []Suppression
}

// Analyzers is the fastscvet suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrderAnalyzer,
		HotAllocAnalyzer,
		PoolPairAnalyzer,
		KeyFieldsAnalyzer,
		CtxFlowAnalyzer,
	}
}

// Analyze runs the given analyzers over pkg, applies the //fastsc:ignore
// suppressions found in its files, and returns the surviving findings
// (sorted by position) plus the honored suppressions.
func Analyze(pkg *Package, analyzers []*Analyzer) Result {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			diags:    &raw,
		}
		a.Run(pass)
	}
	// A directive may name any analyzer in the suite (plus any extra
	// analyzer passed in), but staleness is only decidable for analyzers
	// that actually ran: a poolpair suppression is not "unknown" — or
	// "unused" — just because this invocation ran keyfields alone.
	known := make(map[string]bool, len(analyzers))
	ran := make(map[string]bool, len(analyzers))
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
		ran[a.Name] = true
	}
	res := applyIgnores(pkg, known, ran, raw)
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return res
}
