package circuit

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Analysis is the analyzed-circuit IR: every derived structure the
// schedulers consume — per-qubit gate streams, ASAP layers, depth,
// criticality and a content signature — computed in one pass and stored
// flat. An Analysis is immutable after Analyze returns and is shared
// read-only between compilation jobs (the compile cache memoizes one per
// circuit signature), so callers must never modify the slices it hands
// out.
//
// Layout: the per-qubit gate streams and the ASAP layers are CSR-style —
// one flat []int32 of gate indices plus an offsets slice — replacing the
// ragged [][]int the per-compile analysis used to rebuild. Gate indices
// ascend within every qubit stream (program order) and within every layer.
type Analysis struct {
	// NumQubits and NumGates mirror the analyzed circuit.
	NumQubits int
	NumGates  int
	// Sig is the circuit's content signature (Circuit.Signature), the
	// compile cache key under which this analysis is shared.
	Sig string

	// streamOff/stream: CSR per-qubit gate streams. Qubit q's gates, in
	// program order, are stream[streamOff[q]:streamOff[q+1]].
	streamOff []int32
	stream    []int32

	// layerOff/layer: CSR ASAP layers. Layer l's gate indices, ascending,
	// are layer[layerOff[l]:layerOff[l+1]]; len(layerOff)-1 is the depth.
	layerOff []int32
	layer    []int32

	// crit[i] is the length (in gates) of the longest dependency chain
	// starting at gate i, itself included (the queueing scheduler's
	// priority).
	crit []int32

	// gq[i] holds gate i's operand qubits; gq[i][1] is -1 for single-qubit
	// gates. The frontier's head checks read these instead of chasing the
	// Gate.Qubits slices.
	gq [][2]int32

	// inter[q] counts the two-qubit gates touching qubit q — the
	// interaction degree the degree-matching placement reads.
	inter []int32

	// src is the analyzed circuit, retained so the compile cache's
	// snapshot writer can canonically encode it (the circ region persists
	// as signature-keyed canonical blobs; see Source). Like every other
	// field it is shared read-only: the analysis contract already forbids
	// mutating an analyzed circuit.
	src *Circuit
}

// Analyze computes the full dependency analysis of c. The result is
// immutable; compute it once per circuit and share it (the compile cache
// does, keyed by c.Signature()).
func Analyze(c *Circuit) *Analysis { return AnalyzeWithSignature(c, c.Signature()) }

// AnalyzeWithSignature is Analyze for callers that already computed the
// content signature (the compile cache key is derived from it before the
// miss path runs), sparing a second hash pass over the gate list. sig must
// equal c.Signature().
func AnalyzeWithSignature(c *Circuit, sig string) *Analysis {
	n := len(c.Gates)
	a := &Analysis{
		NumQubits: c.NumQubits,
		NumGates:  n,
		Sig:       sig,
		streamOff: make([]int32, c.NumQubits+1),
		stream:    make([]int32, 0),
		crit:      make([]int32, n),
		gq:        make([][2]int32, n),
		inter:     make([]int32, c.NumQubits),
		src:       c,
	}

	// Operand table + stream counting pass.
	total := 0
	for i, g := range c.Gates {
		a.gq[i][0] = int32(g.Qubits[0])
		a.gq[i][1] = -1
		if len(g.Qubits) == 2 {
			a.gq[i][1] = int32(g.Qubits[1])
			a.inter[g.Qubits[0]]++
			a.inter[g.Qubits[1]]++
		}
		for _, q := range g.Qubits {
			a.streamOff[q+1]++
			total++
		}
	}
	for q := 0; q < c.NumQubits; q++ {
		a.streamOff[q+1] += a.streamOff[q]
	}
	a.stream = make([]int32, total)
	fill := make([]int32, c.NumQubits)
	for i, g := range c.Gates {
		for _, q := range g.Qubits {
			a.stream[a.streamOff[q]+fill[q]] = int32(i)
			fill[q]++
		}
	}

	// ASAP layering: a gate lands one layer after the latest layer among
	// the gates it depends on (fill reused as the per-qubit "layer of the
	// last gate + 1" cursor).
	for q := range fill {
		fill[q] = 0
	}
	layerOf := make([]int32, n)
	depth := int32(0)
	for i, g := range c.Gates {
		l := int32(0)
		for _, q := range g.Qubits {
			if fill[q] > l {
				l = fill[q]
			}
		}
		layerOf[i] = l
		if l+1 > depth {
			depth = l + 1
		}
		for _, q := range g.Qubits {
			fill[q] = l + 1
		}
	}
	a.layerOff = make([]int32, depth+1)
	for _, l := range layerOf {
		a.layerOff[l+1]++
	}
	for l := int32(0); l < depth; l++ {
		a.layerOff[l+1] += a.layerOff[l]
	}
	a.layer = make([]int32, n)
	cursor := make([]int32, depth)
	for i, l := range layerOf { // ascending i -> ascending within layers
		a.layer[a.layerOff[l]+cursor[l]] = int32(i)
		cursor[l]++
	}

	// Criticality: backward pass; fill reused as the per-qubit "criticality
	// of the next gate touching q" tracker.
	for q := range fill {
		fill[q] = 0
	}
	for i := n - 1; i >= 0; i-- {
		best := int32(0)
		for _, q := range c.Gates[i].Qubits {
			if fill[q] > best {
				best = fill[q]
			}
		}
		a.crit[i] = best + 1
		for _, q := range c.Gates[i].Qubits {
			fill[q] = a.crit[i]
		}
	}
	return a
}

// Depth returns the number of ASAP layers.
func (a *Analysis) Depth() int { return len(a.layerOff) - 1 }

// Layer returns the gate indices of ASAP layer l, ascending, as a shared
// slice of the analysis — callers must not modify it.
func (a *Analysis) Layer(l int) []int32 {
	return a.layer[a.layerOff[l]:a.layerOff[l+1]]
}

// Layers materializes the ASAP layers as [][]int (a fresh copy, convenient
// for tests and reports; hot paths should iterate Layer).
func (a *Analysis) Layers() [][]int {
	out := make([][]int, a.Depth())
	for l := range out {
		src := a.Layer(l)
		dst := make([]int, len(src))
		for i, g := range src {
			dst[i] = int(g)
		}
		out[l] = dst
	}
	return out
}

// QubitStream returns the gate indices touching qubit q in program order,
// as a shared slice of the analysis — callers must not modify it.
func (a *Analysis) QubitStream(q int) []int32 {
	return a.stream[a.streamOff[q]:a.streamOff[q+1]]
}

// Criticality returns the per-gate criticality, shared read-only.
func (a *Analysis) Criticality() []int32 { return a.crit }

// Operands returns gate i's operand qubits; q1 is -1 for single-qubit
// gates. Routers walk the gate list through this flat table instead of
// chasing the Gate.Qubits slices.
func (a *Analysis) Operands(i int) (q0, q1 int) {
	return int(a.gq[i][0]), int(a.gq[i][1])
}

// Source returns the circuit this analysis was computed from, shared
// read-only (callers must not modify its gate list — the analysis indexes
// it). The compile cache's snapshot writer uses it to persist the circ
// region by canonical encoding.
func (a *Analysis) Source() *Circuit { return a.src }

// InteractionCounts returns, per qubit, the number of two-qubit gates
// touching it — the circuit's interaction degree. The degree-matching
// placement seats high-interaction logical qubits on high-degree physical
// qubits using it. Shared read-only.
func (a *Analysis) InteractionCounts() []int32 { return a.inter }

// ApproxSize reports the approximate in-memory footprint in bytes; the
// compile cache's size-aware eviction weighs analyses by it.
func (a *Analysis) ApproxSize() int {
	return 4*(len(a.streamOff)+len(a.stream)+len(a.layerOff)+len(a.layer)+len(a.crit)+len(a.inter)) +
		8*len(a.gq) + len(a.Sig) + 96
}

// Signature returns a stable content hash of the circuit: qubit count plus
// every gate's kind, operands and angle — exactly the inputs the dependency
// analysis and the schedulers read. Content-identical circuits hash
// identically across allocations, which is what lets every strategy in a
// batch share one Analysis through the compile cache's circ region. The
// digest is 128 bits (two independently seeded FNV-64a streams over the
// same bytes): a colliding pair would silently serve one circuit's
// Analysis to another, so the space is sized to make that as improbable
// as any content-addressed store's.
func (c *Circuit) Signature() string {
	h1 := uint64(14695981039346656037)                      // FNV-64a offset basis
	h2 := uint64(14695981039346656037) ^ 0x9E3779B97F4A7C15 // independently seeded stream
	mix := func(v uint64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		for _, b := range buf {
			h1 ^= uint64(b)
			h1 *= 1099511628211 // FNV-64a prime
			h2 ^= uint64(b)
			h2 *= 1099511628211
		}
	}
	mix(uint64(c.NumQubits))
	mix(uint64(len(c.Gates)))
	for _, g := range c.Gates {
		mix(uint64(g.Kind))
		mix(uint64(len(g.Qubits)))
		for _, q := range g.Qubits {
			mix(uint64(q))
		}
		mix(math.Float64bits(g.Theta))
	}
	return fmt.Sprintf("%016x%016x", h1, h2)
}
