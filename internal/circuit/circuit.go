package circuit

import (
	"fmt"
	"strings"
)

// Circuit is an ordered list of gates over qubits 0..NumQubits-1. The order
// is program order; dependency analysis (layers, depth) derives parallelism
// from per-qubit data dependencies.
type Circuit struct {
	NumQubits int
	Gates     []Gate
}

// New returns an empty circuit over n qubits.
func New(n int) *Circuit {
	if n <= 0 {
		panic(fmt.Sprintf("circuit: invalid qubit count %d", n))
	}
	return &Circuit{NumQubits: n}
}

// Add appends a gate after validating its qubit operands.
func (c *Circuit) Add(g Gate) *Circuit {
	want := 1
	if g.Kind.IsTwoQubit() {
		want = 2
	}
	if len(g.Qubits) != want {
		panic(fmt.Sprintf("circuit: gate %v wants %d qubits, got %d", g.Kind, want, len(g.Qubits)))
	}
	for _, q := range g.Qubits {
		if q < 0 || q >= c.NumQubits {
			panic(fmt.Sprintf("circuit: qubit %d out of range [0,%d)", q, c.NumQubits))
		}
	}
	if want == 2 && g.Qubits[0] == g.Qubits[1] {
		panic(fmt.Sprintf("circuit: two-qubit gate %v on a single qubit %d", g.Kind, g.Qubits[0]))
	}
	c.Gates = append(c.Gates, g)
	return c
}

// Convenience constructors. Each appends the gate and returns the circuit
// for chaining.

func (c *Circuit) I(q int) *Circuit     { return c.Add(Gate{Kind: I, Qubits: []int{q}}) }
func (c *Circuit) X(q int) *Circuit     { return c.Add(Gate{Kind: X, Qubits: []int{q}}) }
func (c *Circuit) Y(q int) *Circuit     { return c.Add(Gate{Kind: Y, Qubits: []int{q}}) }
func (c *Circuit) Z(q int) *Circuit     { return c.Add(Gate{Kind: Z, Qubits: []int{q}}) }
func (c *Circuit) H(q int) *Circuit     { return c.Add(Gate{Kind: H, Qubits: []int{q}}) }
func (c *Circuit) S(q int) *Circuit     { return c.Add(Gate{Kind: S, Qubits: []int{q}}) }
func (c *Circuit) Sdg(q int) *Circuit   { return c.Add(Gate{Kind: Sdg, Qubits: []int{q}}) }
func (c *Circuit) T(q int) *Circuit     { return c.Add(Gate{Kind: T, Qubits: []int{q}}) }
func (c *Circuit) Tdg(q int) *Circuit   { return c.Add(Gate{Kind: Tdg, Qubits: []int{q}}) }
func (c *Circuit) SqrtX(q int) *Circuit { return c.Add(Gate{Kind: SX, Qubits: []int{q}}) }
func (c *Circuit) SqrtY(q int) *Circuit { return c.Add(Gate{Kind: SY, Qubits: []int{q}}) }
func (c *Circuit) SqrtW(q int) *Circuit { return c.Add(Gate{Kind: SW, Qubits: []int{q}}) }

func (c *Circuit) RX(q int, theta float64) *Circuit {
	return c.Add(Gate{Kind: RX, Qubits: []int{q}, Theta: theta})
}
func (c *Circuit) RY(q int, theta float64) *Circuit {
	return c.Add(Gate{Kind: RY, Qubits: []int{q}, Theta: theta})
}
func (c *Circuit) RZ(q int, theta float64) *Circuit {
	return c.Add(Gate{Kind: RZ, Qubits: []int{q}, Theta: theta})
}

func (c *Circuit) CZ(a, b int) *Circuit    { return c.Add(Gate{Kind: CZ, Qubits: []int{a, b}}) }
func (c *Circuit) ISwap(a, b int) *Circuit { return c.Add(Gate{Kind: ISwap, Qubits: []int{a, b}}) }
func (c *Circuit) SqrtISwap(a, b int) *Circuit {
	return c.Add(Gate{Kind: SqrtISwap, Qubits: []int{a, b}})
}
func (c *Circuit) CNOT(control, target int) *Circuit {
	return c.Add(Gate{Kind: CNOT, Qubits: []int{control, target}})
}
func (c *Circuit) SWAP(a, b int) *Circuit { return c.Add(Gate{Kind: SWAP, Qubits: []int{a, b}}) }

// NumGates returns the total gate count.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// TwoQubitGateCount returns the number of two-qubit gates.
func (c *Circuit) TwoQubitGateCount() int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind.IsTwoQubit() {
			n++
		}
	}
	return n
}

// CountKind returns how many gates of kind k the circuit contains.
func (c *Circuit) CountKind(k Kind) int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind == k {
			n++
		}
	}
	return n
}

// IsNative reports whether every gate is directly implementable on the
// tunable-transmon architecture (no CNOT/SWAP remaining).
func (c *Circuit) IsNative() bool {
	for _, g := range c.Gates {
		if !g.Kind.IsNative() {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (c *Circuit) Clone() *Circuit {
	out := New(c.NumQubits)
	out.Gates = make([]Gate, len(c.Gates))
	for i, g := range c.Gates {
		qs := make([]int, len(g.Qubits))
		copy(qs, g.Qubits)
		out.Gates[i] = Gate{Kind: g.Kind, Qubits: qs, Theta: g.Theta}
	}
	return out
}

// String renders one gate per line.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit(%d qubits, %d gates)\n", c.NumQubits, len(c.Gates))
	for _, g := range c.Gates {
		fmt.Fprintf(&b, "  %s\n", g)
	}
	return b.String()
}
