// Command fastscd serves frequency-aware compilation over HTTP: it keeps
// one process-wide compile cache warm across requests and streams batch
// results as NDJSON. See docs/api.md for the API and docs/architecture.md
// for how the daemon sits on top of the compilation stack.
//
// Start a daemon, compile against it, then stop it gracefully:
//
//	fastscd -addr :8077 -cache-file /var/lib/fastsc/cache.snap.gz &
//	curl -N -d @batch.json http://localhost:8077/v1/compile
//	kill -TERM $!   # drains in-flight batches, then saves the snapshot
//
// On SIGTERM/SIGINT the daemon stops admitting work (healthz turns 503
// so load balancers rotate it out), lets every admitted batch finish
// (bounded by -drain-timeout), and — when a -cache-file is set — saves a
// cache snapshot that warms the next start. A second signal aborts the
// drain immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fastsc/internal/server"
)

func main() {
	var (
		addr          = flag.String("addr", ":8077", "listen address")
		workers       = flag.Int("workers", 0, "per-request worker budget (0 = GOMAXPROCS)")
		maxConcurrent = flag.Int("max-concurrent", 0, "batches compiling at once (0 = default 2)")
		maxQueue      = flag.Int("max-queue", 0, "batches waiting for a slot before 429 (0 = default 16, -1 = none)")
		maxJobs       = flag.Int("max-jobs", 0, "jobs per batch (0 = default 256)")
		cacheFile     = flag.String("cache-file", "", "cache snapshot path: loaded at startup (cold start if missing/stale) and saved after a clean drain; a .gz suffix writes it compressed")
		cacheCap      = flag.Int("cache-capacity", 0, "compile cache capacity in cost units (0 = default)")
		drainTimeout  = flag.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for in-flight batches")
	)
	flag.Parse()

	srv := server.New(server.Config{
		Workers:       *workers,
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		MaxJobs:       *maxJobs,
		CacheCapacity: *cacheCap,
	})
	if *cacheFile != "" {
		n, err := srv.Cache().Load(*cacheFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fastscd: cache snapshot: %v (starting cold)\n", err)
		} else {
			srv.SetRestored(n)
			fmt.Fprintf(os.Stderr, "fastscd: warm start: %d cache entries restored from %s\n", n, *cacheFile)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "fastscd: listening on %s\n", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "fastscd:", err)
		os.Exit(1)
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "fastscd: %v: draining (in-flight batches run to completion; repeat to abort)\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "fastscd: second signal: aborting drain")
		cancel()
	}()

	srv.Drain() // refuse new submissions; healthz turns 503 immediately
	drainErr := srv.Shutdown(ctx)
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "fastscd:", drainErr)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "fastscd: http shutdown:", err)
	}
	<-errCh // ListenAndServe has returned http.ErrServerClosed

	if *cacheFile != "" && drainErr == nil {
		if err := srv.Cache().Save(*cacheFile); err != nil {
			fmt.Fprintln(os.Stderr, "fastscd: cache snapshot:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fastscd: cache snapshot saved to %s\n", *cacheFile)
	}
	if drainErr != nil {
		os.Exit(1)
	}
}
