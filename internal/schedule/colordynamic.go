package schedule

import (
	"sort"

	"fastsc/internal/circuit"
	"fastsc/internal/compile"
	"fastsc/internal/graph"
	"fastsc/internal/phys"
	"fastsc/internal/smt"
)

// ColorDynamic is the paper's frequency-aware compiler (Algorithm 1):
// program-specific frequency assignment per time step via circuit slicing,
// noise-aware queueing (line 10–16), active-subgraph coloring (line 17–19),
// and SMT frequency optimization (line 20–22).
type ColorDynamic struct{}

// Name implements Compiler.
func (ColorDynamic) Name() string { return "ColorDynamic" }

// Compile implements Compiler.
func (ColorDynamic) Compile(ctx *compile.Context, c *circuit.Circuit, sys *phys.System, opts Options) (*Schedule, error) {
	return compileColorDynamic(ctx, "ColorDynamic", false, c, sys, opts)
}

// GmonDynamic is the §VIII extension: ColorDynamic's program-specific
// frequency tuning applied on tunable-coupler (gmon) hardware. Couplers are
// switched off outside the active set as in Baseline G, but simultaneous
// gates are additionally spread in frequency by the dynamic coloring, so
// residual coupler leakage (Fig 12) meets detuned rather than resonant
// neighbors. It is not part of the paper's Table I evaluation; see the
// ext-gmon experiment.
type GmonDynamic struct{}

// Name implements Compiler.
func (GmonDynamic) Name() string { return "ColorDynamic-G" }

// Compile implements Compiler.
func (GmonDynamic) Compile(ctx *compile.Context, c *circuit.Circuit, sys *phys.System, opts Options) (*Schedule, error) {
	return compileColorDynamic(ctx, "ColorDynamic-G", true, c, sys, opts)
}

//fastsc:hotpath the Algorithm 1 slice loop: per-slice state lives in the pooled sliceScratch and the shared Analysis; only what a Slice retains may be freshly allocated
func compileColorDynamic(ctx *compile.Context, name string, gmon bool, c *circuit.Circuit, sys *phys.System, opts Options) (*Schedule, error) {
	b, err := newBuilder(ctx, name, c, sys, opts)
	if err != nil {
		return nil, err
	}
	b.sched.Gmon = gmon
	opts = b.opts
	intCfg := b.part.InteractionConfig(sys.MeanAnharmonicity())
	// The interaction band fits only so many colors; combined with the
	// user's tunability budget (default 2, the Fig 11 sweet spot; -1 for
	// unlimited) this caps each slice's coloring.
	budget := maxColorsFeasible(ctx, intCfg, 16)
	if opts.MaxColors > 0 && opts.MaxColors < budget {
		budget = opts.MaxColors
	}
	// Speculatively warm the slice cache one step ahead of the main loop
	// when a spare worker is free (no-op otherwise); stopped before return.
	b.startPioneer(intCfg, budget)
	defer b.stopPioneer()

	scr := b.scr
	f := b.front
	for !f.Done() {
		ready := f.Ready()
		sortByCriticality(ready, b.crit)
		b.admitReady(ready, scr)

		// Color the active subgraph of the crosstalk graph within the
		// color budget and solve its frequencies; gates whose vertices
		// cannot be colored are postponed (spectral -> temporal separation
		// trade). The whole slice solution is a pure function of the
		// active subgraph, so it is memoized across slices and jobs.
		sol, err := b.solveSlice(scr, intCfg, budget)
		if err != nil {
			b.abort()
			return nil, err
		}

		var events []GateEvent
		for i, sidx := range scr.selected {
			idx := int(sidx)
			g := b.circ.Gates[idx]
			if v := scr.selVerts[i]; v >= 0 {
				if deferredContains(sol.Deferred, int(v)) {
					continue // postponed by the color budget
				}
				col := int(sol.Coloring[v])
				freq := sol.Assign[col]
				b.setFreq(g.Qubits[0], freq)
				b.setFreq(g.Qubits[1], freq)
				events = append(events, GateEvent{
					Gate: g, Duration: b.gateDuration(g, freq), Freq: freq, Color: col,
				})
			} else {
				events = append(events, GateEvent{
					Gate: g, Duration: b.gateDuration(g, 0), Freq: b.park[g.Qubits[0]], Color: -1,
				})
			}
			f.Issue(idx)
		}
		b.emitSlice(events, sol.NumColors, sol.Delta)
	}
	return b.finish(), nil
}

// deferredContains reports whether v is in the sorted deferred list.
func deferredContains(deferred []int, v int) bool {
	i := sort.SearchInts(deferred, v)
	return i < len(deferred) && deferred[i] == v
}

// admitReady runs the queueing scheduler's admission loop (Algorithm 1
// lines 10–16) over the criticality-sorted ready list, staging the admitted
// gates in scr: most-critical first, postponing two-qubit gates whose
// crosstalk neighborhoods are already crowded (noise_conflict, §V-B6). It
// is shared by the main slice loop and the pioneer prefetch, so the
// pioneer's prediction of the next slices can never drift from what the
// main loop will admit.
func (b *builder) admitReady(ready []int, scr *sliceScratch) {
	for _, idx := range ready {
		g := b.circ.Gates[idx]
		vert := int32(-1)
		if g.Kind.IsTwoQubit() {
			e := graph.NewEdge(g.Qubits[0], g.Qubits[1])
			if b.xg.ConflictDegree(g.Qubits[0], g.Qubits[1], scr.active) >= b.opts.ConflictLimit {
				continue // postpone to a later slice
			}
			v := mustVertex(b, e)
			scr.active = append(scr.active, e)
			scr.activeVerts = append(scr.activeVerts, v)
			vert = int32(v)
		}
		scr.selected = append(scr.selected, int32(idx))
		scr.selVerts = append(scr.selVerts, vert)
	}
}

// solveSlice produces the coloring + frequency assignment for the active
// gate set staged in scr, through the per-slice cache when one is attached.
// The key is the exact sorted active vertex set of the interaction subgraph
// on this system. A whole-slice miss decomposes the subgraph into its
// connected components, solves (and memoizes) each independently, and
// merges — see computeSlice.
func (b *builder) solveSlice(scr *sliceScratch, intCfg smt.Config, budget int) (compile.SliceSolution, error) {
	scr.keyVerts = append(scr.keyVerts[:0], scr.activeVerts...)
	sort.Ints(scr.keyVerts)
	key := compile.SliceKey(b.sig, b.xg.Distance, budget, scr.keyVerts)
	return b.ctx.Slice(key, func() (compile.SliceSolution, error) {
		return b.computeSlice(scr, intCfg, budget)
	})
}

// computeSlice is the whole-slice miss path: it splits the active
// interaction subgraph into connected components, solves each in isolation
// (fanning independent components across the Context's spare workers —
// results land in index-addressed slots, so scheduling cannot affect the
// merge), and merges them. Decomposition is exact, not heuristic: the
// active subgraph is vertex-induced, so no crosstalk edge crosses a
// component boundary, and the greedy coloring of a component is identical
// whether the rest of the slice exists or not (Welsh–Powell order and
// greedy color choice only read intra-component degrees and neighbors).
// Component solutions are what turn the slice cache into a motif cache:
// two globally distinct slices that share a local gate cluster reuse its
// entry.
func (b *builder) computeSlice(scr *sliceScratch, intCfg smt.Config, budget int) (compile.SliceSolution, error) {
	comps := b.xg.ActiveComponents(scr.keyVerts)
	sols := make([]compile.ComponentSolution, len(comps))
	errs := make([]error, len(comps))
	b.ctx.ForEach(len(comps), func(i int) {
		sols[i], errs[i] = b.solveComponent(comps[i], budget)
	})
	for _, err := range errs {
		if err != nil {
			return compile.SliceSolution{}, err
		}
	}
	return b.mergeComponents(scr.keyVerts, sols, intCfg)
}

// solveComponent colors one connected component of the active subgraph in
// isolation, through the slice region's component cache.
func (b *builder) solveComponent(verts []int, budget int) (compile.ComponentSolution, error) {
	key := compile.SliceComponentKey(b.sig, b.xg.Distance, budget, verts)
	return b.ctx.SliceComponent(key, func() (compile.ComponentSolution, error) {
		h := b.xg.G.Subgraph(verts)
		coloring, deferred := graph.BoundedColoring(h, budget)
		return compile.ComponentSolution{
			Coloring:  coloring,
			Deferred:  deferred,
			NumColors: coloring.NumColors(),
			Counts:    coloring.ColorCounts(),
		}, nil
	})
}

// mergeComponents reassembles a whole-slice solution from its component
// solutions. The merge reproduces the monolithic solve field for field:
// greedy colors are contiguous from 0 within every component, so the
// slice's color count is the max over components; per-color occupancy is
// the per-color sum; the deferred set is the sorted union; and exactly one
// SMT solve runs, for the merged color count — the frequencies depend on
// the whole slice's k, never on any single component, which is why
// ComponentSolution carries no frequencies. The merged coloring spans
// vertices 0..max(keyVerts), matching graph.Subgraph's capacity convention
// on the monolithic path (an empty slice yields the empty non-nil
// coloring, same as NewColoring(0)).
//
//fastsc:hotpath the merge runs once per whole-slice miss between the component fan-out and the schedule's issue loop (BenchmarkLargeCircuitCompile guards it); nothing here may allocate a map, call fmt, or box
func (b *builder) mergeComponents(keyVerts []int, sols []compile.ComponentSolution, intCfg smt.Config) (compile.SliceSolution, error) {
	span := 0
	if len(keyVerts) > 0 {
		span = keyVerts[len(keyVerts)-1] + 1
	}
	merged := graph.NewColoring(span)
	k := 0
	var deferred []int
	for i := range sols {
		sol := &sols[i]
		if sol.NumColors > k {
			k = sol.NumColors
		}
		for v, c := range sol.Coloring {
			if c != graph.Uncolored {
				merged[v] = c
			}
		}
		deferred = append(deferred, sol.Deferred...)
	}
	sort.Ints(deferred)
	var freqs []float64
	delta := 0.0
	if k > 0 {
		var err error
		freqs, delta, err = b.ctx.SolveSMT(k, intCfg)
		if err != nil {
			return compile.SliceSolution{}, err
		}
	}
	// Occupancy-ordered color -> frequency map (§V-B3), over the summed
	// per-color occupancy of all components.
	var assign []float64
	if k > 0 {
		counts := make([]int, k)
		for i := range sols {
			for c, n := range sols[i].Counts {
				counts[c] += n
			}
		}
		assign = smt.AssignByOccupancy(counts, freqs)
	}
	return compile.SliceSolution{
		Coloring:  merged,
		Deferred:  deferred,
		NumColors: k,
		Assign:    assign,
		Delta:     delta,
	}, nil
}

// startPioneer spawns the speculative slice-prefetch goroutine on a spare
// worker if the Context has both a cache (the pioneer's only output
// channel) and a free slot; otherwise it is a no-op. The pioneer replays
// the main loop's slice sequence exactly — same admission, same deferral —
// on its own frontier and scratch, so every slice key it computes is one
// the main loop is about to ask for; the main loop then hits the cache (or
// joins the in-flight computation through the single-flight layer) instead
// of solving serially.
func (b *builder) startPioneer(intCfg smt.Config, budget int) {
	if b.ctx == nil || b.ctx.Cache == nil {
		return
	}
	done := make(chan struct{})
	spawned := b.ctx.TrySpawn(func() {
		defer close(done)
		defer func() {
			// A pioneer panic is swallowed deliberately: the main loop
			// re-runs the same computes, re-encounters the panic on its own
			// goroutine (the single-flight layer re-raises a leader's panic
			// in every waiter), and the engine's per-job guard reports it.
			_ = recover()
		}()
		b.runPioneer(intCfg, budget)
	})
	if spawned {
		b.pioneerDone = done
	}
}

// runPioneer is the pioneer's replay loop: admit, solve (warming the slice,
// component and SMT caches), issue the non-deferred gates on its private
// frontier, repeat — checking the stop flag between slices.
func (b *builder) runPioneer(intCfg smt.Config, budget int) {
	f := b.ana.NewFrontier()
	defer f.Release()
	scr := acquireScratch(b.sys.Device.Qubits)
	defer scr.release()
	for !f.Done() && !b.pioneerStop.Load() {
		ready := f.Ready()
		sortByCriticality(ready, b.crit)
		b.admitReady(ready, scr)
		sol, err := b.solveSlice(scr, intCfg, budget)
		if err != nil {
			return
		}
		for i, sidx := range scr.selected {
			if v := scr.selVerts[i]; v >= 0 && deferredContains(sol.Deferred, int(v)) {
				continue // postponed by the color budget, same as the main loop
			}
			f.Issue(int(sidx))
		}
		scr.resetSlice()
	}
}

// stopPioneer signals the pioneer to stop and waits for it to exit; a
// no-op when none was spawned. Called (deferred) before compileColorDynamic
// returns so no speculation outlives its compilation.
func (b *builder) stopPioneer() {
	if b.pioneerDone == nil {
		return
	}
	b.pioneerStop.Store(true)
	<-b.pioneerDone
	b.pioneerDone = nil
}

func mustVertex(b *builder, e graph.Edge) int {
	v, ok := b.xg.VertexOf(e.U, e.V)
	if !ok {
		panic("schedule: gate on non-coupler " + e.String())
	}
	return v
}

// maxColorsFeasible probes the largest k for which the solver can place k
// frequencies in the band, up to cap. Feasibility is monotone in k — the
// greedy placement for k−1 frequencies is a prefix of the placement for k,
// so a feasible k implies every smaller count is feasible — which lets the
// probe gallop (2, 4, 8, …) to the first infeasible count and then
// binary-search the bracket: O(log cap) solves instead of O(cap). Solves
// (including the terminating infeasibility verdicts) are memoized through
// ctx.
func maxColorsFeasible(ctx *compile.Context, cfg smt.Config, cap int) int {
	feasible := func(k int) bool {
		_, _, err := ctx.SolveSMT(k, cfg)
		return err == nil
	}
	if cap < 2 || !feasible(2) {
		return 1
	}
	lo := 2       // highest count known feasible
	hi := cap + 1 // lowest count known (or assumed) infeasible
	for probe := 4; probe <= cap; probe *= 2 {
		if !feasible(probe) {
			hi = probe
			break
		}
		lo = probe
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
