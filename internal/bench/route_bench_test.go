package bench_test

import (
	"testing"

	"fastsc/internal/circuit"
	"fastsc/internal/expt"
	"fastsc/internal/mapping"
	"fastsc/internal/topology"
)

// routeWorkload is one Fig 9 circuit with its device and natural placement,
// prebuilt so the benchmark times routing alone.
type routeWorkload struct {
	circ    *circuit.Circuit
	dev     *topology.Device
	initial *mapping.Mapping
}

func routeWorkloads(b *testing.B) []routeWorkload {
	b.Helper()
	var out []routeWorkload
	for _, bm := range expt.Suite() {
		dev := topology.SquareGrid(bm.Qubits)
		circ := bm.Circuit(dev)
		initial, err := mapping.InitialMapping(string(bm.Placement), circ, nil, dev)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, routeWorkload{circ: circ, dev: dev, initial: initial})
	}
	return out
}

// BenchmarkRoute times the layout/routing stage over the full Fig 9
// workload set for each router — the work the compile cache's route region
// memoizes away for all but the first strategy of a batch. The greedy
// variant is the hot path of every default compile; the lookahead variant
// bounds the cost of the swap search. Distance matrices are warmed first
// (they are cached per device), so the numbers isolate routing itself.
func BenchmarkRoute(b *testing.B) {
	work := routeWorkloads(b)
	for _, w := range work {
		w.dev.Coupling.Distances()
	}
	routers := map[string]mapping.Router{
		"greedy":    &mapping.GreedyRouter{},
		"lookahead": &mapping.LookaheadRouter{},
	}
	for _, name := range []string{"greedy", "lookahead"} {
		r := routers[name]
		b.Run(name, func(b *testing.B) {
			swaps := 0
			for i := 0; i < b.N; i++ {
				swaps = 0
				for _, w := range work {
					res, err := r.Route(w.circ, nil, w.dev, w.initial)
					if err != nil {
						b.Fatal(err)
					}
					swaps += res.SwapCount
				}
			}
			b.ReportMetric(float64(swaps), "swaps")
		})
	}
}
