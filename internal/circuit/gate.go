// Package circuit defines the quantum-circuit intermediate representation of
// the compiler: the gate set (single-qubit rotations and the native
// two-qubit family CZ/iSWAP/√iSWAP plus the logical CNOT/SWAP), circuit
// containers, dependency analysis (layering, depth, criticality), and the
// hybrid gate decompositions of Fig 8.
package circuit

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Kind enumerates the supported gate types.
type Kind int

const (
	// Single-qubit gates.
	I Kind = iota
	X
	Y
	Z
	H
	S
	Sdg
	T
	Tdg
	SX // √X, the XEB single-qubit gate family (Arute et al.)
	SY // √Y
	SW // √W, W = (X+Y)/√2
	RX // rotation about x by Theta
	RY // rotation about y by Theta
	RZ // rotation about z by Theta
	// Two-qubit gates. CZ, ISwap and SqrtISwap are native to the tunable
	// transmon architecture (implemented by frequency resonance); CNOT and
	// SWAP are logical gates that must be decomposed before scheduling.
	CZ
	ISwap
	SqrtISwap
	CNOT
	SWAP
)

var kindNames = map[Kind]string{
	I: "i", X: "x", Y: "y", Z: "z", H: "h", S: "s", Sdg: "sdg",
	T: "t", Tdg: "tdg", SX: "sx", SY: "sy", SW: "sw",
	RX: "rx", RY: "ry", RZ: "rz",
	CZ: "cz", ISwap: "iswap", SqrtISwap: "sqiswap", CNOT: "cnot", SWAP: "swap",
}

// String returns the lowercase mnemonic, e.g. "cz".
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// namedKinds is the reverse of kindNames, built once for KindByName.
var namedKinds = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// KindByName resolves a lowercase gate mnemonic (the String form, e.g.
// "cz", "rx") back to its Kind. It is the lookup wire formats use to decode
// gates by name.
func KindByName(name string) (Kind, bool) {
	k, ok := namedKinds[name]
	return k, ok
}

// IsTwoQubit reports whether the kind acts on two qubits.
func (k Kind) IsTwoQubit() bool {
	switch k {
	case CZ, ISwap, SqrtISwap, CNOT, SWAP:
		return true
	}
	return false
}

// IsNative reports whether the kind is directly implementable on the
// tunable-transmon architecture (all single-qubit gates plus CZ, iSWAP and
// √iSWAP; CNOT and SWAP require decomposition).
func (k Kind) IsNative() bool {
	switch k {
	case CNOT, SWAP:
		return false
	}
	return true
}

// IsParametric reports whether the kind carries a rotation angle.
func (k Kind) IsParametric() bool { return k == RX || k == RY || k == RZ }

// IsVirtual reports whether the gate is a pure phase (Z-axis) rotation,
// implemented in software as a frame update with zero duration and no
// control error (the "virtual Z" of transmon control stacks; the paper's
// fast flux Rz gates, Appendix C).
func (k Kind) IsVirtual() bool {
	switch k {
	case I, Z, S, Sdg, T, Tdg, RZ:
		return true
	}
	return false
}

// Gate is one circuit operation. Qubits holds one id for single-qubit gates
// and two for two-qubit gates (for CNOT, Qubits[0] is the control).
type Gate struct {
	Kind   Kind
	Qubits []int
	// Theta is the rotation angle for RX/RY/RZ; ignored otherwise.
	Theta float64
}

// Arity returns the number of qubits the gate touches.
func (g Gate) Arity() int { return len(g.Qubits) }

// On reports whether the gate acts on qubit q.
func (g Gate) On(q int) bool {
	for _, x := range g.Qubits {
		if x == q {
			return true
		}
	}
	return false
}

// String renders e.g. "cz(2,3)" or "rx(0.7854)(5)".
func (g Gate) String() string {
	if g.Kind.IsParametric() {
		return fmt.Sprintf("%s(%.4f)(%s)", g.Kind, g.Theta, joinInts(g.Qubits))
	}
	return fmt.Sprintf("%s(%s)", g.Kind, joinInts(g.Qubits))
}

func joinInts(xs []int) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", x)
	}
	return s
}

// Matrix1 returns the 2×2 unitary of a single-qubit gate kind (with angle
// theta for the rotation kinds). It panics for two-qubit kinds.
func Matrix1(k Kind, theta float64) Mat2 {
	sq := complex(1/math.Sqrt2, 0)
	i_ := complex(0, 1)
	switch k {
	case I:
		return Mat2{{1, 0}, {0, 1}}
	case X:
		return Mat2{{0, 1}, {1, 0}}
	case Y:
		return Mat2{{0, -i_}, {i_, 0}}
	case Z:
		return Mat2{{1, 0}, {0, -1}}
	case H:
		return Mat2{{sq, sq}, {sq, -sq}}
	case S:
		return Mat2{{1, 0}, {0, i_}}
	case Sdg:
		return Mat2{{1, 0}, {0, -i_}}
	case T:
		return Mat2{{1, 0}, {0, cmplx.Exp(complex(0, math.Pi/4))}}
	case Tdg:
		return Mat2{{1, 0}, {0, cmplx.Exp(complex(0, -math.Pi/4))}}
	case SX:
		// √X = e^{iπ/4}·Rx(π/2)
		return Mat2{
			{complex(0.5, 0.5), complex(0.5, -0.5)},
			{complex(0.5, -0.5), complex(0.5, 0.5)},
		}
	case SY:
		// √Y = e^{iπ/4}·Ry(π/2)
		return Mat2{
			{complex(0.5, 0.5), complex(-0.5, -0.5)},
			{complex(0.5, 0.5), complex(0.5, 0.5)},
		}
	case SW:
		// √W with W = (X+Y)/√2: cos(π/4)·I − i·sin(π/4)·(X+Y)/√2.
		return Mat2{
			{sq, complex(-0.5, -0.5)},
			{complex(0.5, -0.5), sq},
		}
	case RX:
		c, s := complex(math.Cos(theta/2), 0), complex(0, -math.Sin(theta/2))
		return Mat2{{c, s}, {s, c}}
	case RY:
		c, s := math.Cos(theta/2), math.Sin(theta/2)
		return Mat2{
			{complex(c, 0), complex(-s, 0)},
			{complex(s, 0), complex(c, 0)},
		}
	case RZ:
		return Mat2{
			{cmplx.Exp(complex(0, -theta/2)), 0},
			{0, cmplx.Exp(complex(0, theta/2))},
		}
	}
	panic(fmt.Sprintf("circuit: Matrix1 on two-qubit kind %v", k))
}

// Matrix2Q returns the 4×4 unitary of a two-qubit gate kind in the basis
// {|00⟩, |01⟩, |10⟩, |11⟩} with Qubits[0] as the high-order bit. The iSWAP
// convention follows the paper (§II-B2): off-diagonal elements −i.
func Matrix2Q(k Kind) Mat4 {
	i_ := complex(0, 1)
	r := complex(1/math.Sqrt2, 0)
	switch k {
	case CZ:
		return Mat4{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, -1}}
	case ISwap:
		return Mat4{{1, 0, 0, 0}, {0, 0, -i_, 0}, {0, -i_, 0, 0}, {0, 0, 0, 1}}
	case SqrtISwap:
		return Mat4{{1, 0, 0, 0}, {0, r, -i_ * r, 0}, {0, -i_ * r, r, 0}, {0, 0, 0, 1}}
	case CNOT:
		return Mat4{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}}
	case SWAP:
		return Mat4{{1, 0, 0, 0}, {0, 0, 1, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}}
	}
	panic(fmt.Sprintf("circuit: Matrix2Q on single-qubit kind %v", k))
}

// Matrix returns the unitary of g: a Mat2 for single-qubit gates or a Mat4
// for two-qubit gates, as an interface value.
func (g Gate) Matrix() interface{} {
	if g.Kind.IsTwoQubit() {
		return Matrix2Q(g.Kind)
	}
	return Matrix1(g.Kind, g.Theta)
}
